package churntomo

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), each regenerating the corresponding rows/series over a
// shared small-scale pipeline, plus kernels for the expensive stages
// (routing trees, measurement, CNF solving). Run with:
//
//	go test -bench=. -benchmem
//
// Each table/figure benchmark prints its artifact once (on the first
// iteration) so `go test -bench` output doubles as the reproduction log;
// the timed loop then measures the analysis cost itself.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"churntomo/internal/analysis"
	"churntomo/internal/dataset"
	"churntomo/internal/iclab"
	"churntomo/internal/leakage"
	"churntomo/internal/report"
	"churntomo/internal/routing"
	"churntomo/internal/sat"
	"churntomo/internal/stream"
	"churntomo/internal/tomo"
)

var (
	benchOnce sync.Once
	benchPipe *Pipeline
)

// benchPipeline builds one shared pipeline for all benchmarks. Scale: the
// small config stretched to 90 days so month/year slices are populated.
func benchPipeline(b *testing.B) *Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		cfg := SmallConfig()
		cfg.Days = 90
		p, err := Run(cfg)
		if err != nil {
			panic(err)
		}
		benchPipe = p
	})
	return benchPipe
}

var printedArtifact = map[string]bool{}

// printOnce emits an artifact the first time a benchmark runs.
func printOnce(name, artifact string) {
	if printedArtifact[name] {
		return
	}
	printedArtifact[name] = true
	fmt.Fprintf(os.Stderr, "\n===== %s =====\n%s\n", name, artifact)
}

// BenchmarkDatasetEncodeDecode measures the on-disk codec's round-trip
// throughput over the shared pipeline's dataset: one encode to the
// versioned gzipped-JSONL format plus one decode per iteration, with
// bytes/sec reporting the compressed stream size.
func BenchmarkDatasetEncodeDecode(b *testing.B) {
	p := benchPipeline(b)
	f, err := pipelineToFile(p)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.Encode(&buf, f); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportMetric(float64(len(p.Dataset.Records)), "records")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := dataset.Encode(&buf, f); err != nil {
			b.Fatal(err)
		}
		if _, err := dataset.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_DatasetCharacteristics(b *testing.B) {
	p := benchPipeline(b)
	printOnce("Table 1: dataset characteristics", p.Dataset.Stats.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iclab.ComputeTable1(p.Dataset)
	}
}

func BenchmarkFigure1a_SolutionsByGranularity(b *testing.B) {
	p := benchPipeline(b)
	rows := analysis.Figure1a(p.Outcomes)
	var art string
	for _, r := range rows {
		art += fmt.Sprintf("%-6s (%4d CNFs): 0=%.1f%% 1=%.1f%% 2+=%.1f%%\n",
			r.Group, r.CNFs, 100*r.Frac[0], 100*r.Frac[1], 100*r.Frac[2])
	}
	printOnce("Figure 1a: CNF solutions by granularity", art)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure1a(p.Outcomes)
	}
}

func BenchmarkFigure1b_SolutionsByAnomaly(b *testing.B) {
	p := benchPipeline(b)
	rows := analysis.Figure1b(p.Outcomes)
	var art string
	for _, r := range rows {
		art += fmt.Sprintf("%-6s (%4d CNFs): 0=%.1f%% 1=%.1f%% 2+=%.1f%%\n",
			r.Group, r.CNFs, 100*r.Frac[0], 100*r.Frac[1], 100*r.Frac[2])
	}
	printOnce("Figure 1b: CNF solutions by anomaly", art)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure1b(p.Outcomes)
	}
}

func BenchmarkFigure2_ReductionCDF(b *testing.B) {
	p := benchPipeline(b)
	d := analysis.Figure2(p.Outcomes)
	printOnce("Figure 2: candidate-set reduction CDF",
		report.CDF(d.CDF, "reduction %")+
			fmt.Sprintf("mean %.1f%%, no-elimination %.1f%%, n=%d\n", 100*d.Mean, 100*d.NoElimFrac, d.Samples))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure2(p.Outcomes)
	}
}

func BenchmarkFigure3_PathChurn(b *testing.B) {
	p := benchPipeline(b)
	var art string
	for _, d := range analysis.Figure3(p.Dataset.Records) {
		art += fmt.Sprintf("%-6s changed=%.1f%% (1:%.1f%% 2:%.1f%% 3:%.1f%% 4:%.1f%% 5+:%.1f%%) n=%d\n",
			d.Gran, 100*d.ChangedFrac(), 100*d.Buckets[1], 100*d.Buckets[2],
			100*d.Buckets[3], 100*d.Buckets[4], 100*d.Buckets[5], d.Samples)
	}
	printOnce("Figure 3: path churn", art)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure3(p.Dataset.Records)
	}
}

func BenchmarkFigure4_NoChurnAblation(b *testing.B) {
	p := benchPipeline(b)
	rows := analysis.Figure4(p.Dataset.Records, 0)
	var art string
	for _, r := range rows {
		art += fmt.Sprintf("%-6s: 0=%.1f%% 1=%.1f%% 2=%.1f%% 3=%.1f%% 4=%.1f%% 5+=%.1f%% (n=%d)\n",
			r.Gran, 100*r.Frac[0], 100*r.Frac[1], 100*r.Frac[2],
			100*r.Frac[3], 100*r.Frac[4], 100*r.Frac[5], r.CNFs)
	}
	printOnce("Figure 4: solutions without churn", art)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure4(p.Dataset.Records, 0)
	}
}

func BenchmarkTable2_CensorsByRegion(b *testing.B) {
	p := benchPipeline(b)
	var art string
	for _, r := range analysis.Table2(p.Identified, p.Graph, 8) {
		art += fmt.Sprintf("%-3s %d ASes, anomalies: %v\n", r.Country, len(r.ASNs), r.Kinds)
	}
	printOnce("Table 2: regions with most censoring ASes", art)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Table2(p.Identified, p.Graph, 8)
	}
}

func BenchmarkTable3_TopLeakers(b *testing.B) {
	p := benchPipeline(b)
	var art string
	for _, l := range analysis.Table3(p.Leakage, p.Graph, 5) {
		art += fmt.Sprintf("%-9v %-20s %s leaks: %d ASes, %d countries\n",
			l.ASN, l.Name, l.Country, l.LeakedASes, l.LeakedCountries)
	}
	printOnce("Table 3: top leakers", art)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Table3(p.Leakage, p.Graph, 5)
	}
}

func BenchmarkFigure5_LeakageFlow(b *testing.B) {
	p := benchPipeline(b)
	var art string
	for _, e := range p.Leakage.FlowEdges() {
		art += fmt.Sprintf("%s -> %s: %d\n", e.Edge.From, e.Edge.To, e.Weight)
	}
	art += fmt.Sprintf("regional fraction (excl CN): %.0f%%\n", 100*p.Leakage.RegionalFrac(p.Graph, "CN"))
	printOnce("Figure 5: leakage flow", art)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leakage.Analyze(p.Outcomes, p.Graph)
	}
}

// --- Stage kernels ---

func BenchmarkKernel_MeasurementDay(b *testing.B) {
	p := benchPipeline(b)
	cfg := iclab.PlatformConfig{Seed: 99, URLsPerDay: 2, RepeatsPerDay: 1}
	// One day's worth of measurements over the prepared scenario.
	short := *p.Scenario
	short.End = short.Start.AddDate(0, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iclab.Run(&short, cfg)
	}
}

func BenchmarkKernel_CNFBuild(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tomo.Build(p.Dataset.Records, tomo.BuildConfig{})
	}
}

func BenchmarkKernel_SolveAll(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tomo.SolveAll(p.Instances)
	}
}

func BenchmarkKernel_RoutingTree(b *testing.B) {
	p := benchPipeline(b)
	down := func(int32) bool { return false }
	salt := func(int32) uint64 { return 0 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.ComputeTree(p.Graph, int32(i%len(p.Graph.ASes)), down, salt)
	}
}

func BenchmarkKernel_SATClassify(b *testing.B) {
	p := benchPipeline(b)
	// Pick the largest instance as the representative hard case.
	var biggest *tomo.Instance
	for _, in := range p.Instances {
		if biggest == nil || len(in.CNF.Clauses) > len(biggest.CNF.Clauses) {
			biggest = in
		}
	}
	if biggest == nil {
		b.Skip("no instances")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat.Classify(biggest.CNF)
	}
}

// --- Engine: serial vs parallel ---

// benchMeasureScenario is a 30-day sub-window of the shared scenario, so
// the serial/parallel comparison runs in benchmark-friendly time.
func benchMeasureScenario(b *testing.B) *iclab.Scenario {
	p := benchPipeline(b)
	short := *p.Scenario
	short.End = short.Start.AddDate(0, 0, 30)
	return &short
}

func BenchmarkEngine_MeasureSerial(b *testing.B) {
	s := benchMeasureScenario(b)
	cfg := iclab.PlatformConfig{Seed: 5, URLsPerDay: 4, RepeatsPerDay: 2, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iclab.Run(s, cfg)
	}
}

func BenchmarkEngine_MeasureParallel(b *testing.B) {
	s := benchMeasureScenario(b)
	// Workers is pinned (not GOMAXPROCS): on a single-core host the default
	// degrades to the serial inline path and the benchmark silently measures
	// the same thing as MeasureSerial. An explicit pool always exercises the
	// worker dispatch, the sharded oracle cache and the merge.
	cfg := iclab.PlatformConfig{Seed: 5, URLsPerDay: 4, RepeatsPerDay: 2, Workers: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iclab.Run(s, cfg)
	}
}

func BenchmarkEngine_BuildSolveSerial(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tomo.BuildAndSolve(p.Dataset.Records, tomo.BuildConfig{Workers: 1})
	}
}

func BenchmarkEngine_BuildSolveStreaming(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tomo.BuildAndSolve(p.Dataset.Records, tomo.BuildConfig{})
	}
}

// --- Streaming: incremental windowed solve vs full rebuild per window ---

var (
	benchShardsOnce sync.Once
	benchShards     [][]iclab.Record
)

// benchDayShards reproduces the shared pipeline's measurement schedule
// sharded by day — the input shape of the streaming engine.
func benchDayShards(b *testing.B) [][]iclab.Record {
	p := benchPipeline(b)
	benchShardsOnce.Do(func() {
		benchShards = iclab.RunByDay(p.Scenario, p.Config.platformConfig())
	})
	return benchShards
}

const benchWindowDays = 30

// BenchmarkStream_WindowedIncremental replays a 30-day sliding window over
// the 90-day scenario through the incremental engine: each window re-solves
// only the CNFs its day boundary touched.
func BenchmarkStream_WindowedIncremental(b *testing.B) {
	shards := benchDayShards(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := stream.NewEngine(stream.Config{Window: benchWindowDays, Build: tomo.BuildConfig{Workers: 1}})
		windows, solved, reused := 0, 0, 0
		for _, day := range shards {
			if w := eng.Push(day); w != nil {
				windows++
				solved += w.Solved
				reused += w.Reused
			}
		}
		if i == 0 {
			b.Logf("%d windows: %d CNF solves, %d cache reuses", windows, solved, reused)
		}
	}
}

// BenchmarkStream_WindowedRebuild is the baseline the incremental engine
// must beat: the same window sequence, each solved from scratch by the
// batch builder over the window's records.
func BenchmarkStream_WindowedRebuild(b *testing.B) {
	shards := benchDayShards(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solved := 0
		for end := benchWindowDays - 1; end < len(shards); end++ {
			var flat []iclab.Record
			for _, day := range shards[end-benchWindowDays+1 : end+1] {
				flat = append(flat, day...)
			}
			_, outs := tomo.BuildAndSolve(flat, tomo.BuildConfig{Workers: 1})
			solved += len(outs)
		}
		if i == 0 {
			b.Logf("%d CNF solves across rebuilds", solved)
		}
	}
}

// --- Evaluation: ground-truth grading ---

var (
	benchEvalOnce sync.Once
	benchEvalRes  *Result
)

// benchEvalResult builds one small-scale graded Result shared by the
// evaluation benchmarks.
func benchEvalResult(b *testing.B) *Result {
	b.Helper()
	benchEvalOnce.Do(func() {
		exp, err := New(WithConfig(SmallConfig()))
		if err != nil {
			panic(err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			panic(err)
		}
		benchEvalRes = res
	})
	return benchEvalRes
}

// BenchmarkKernel_Evaluate measures the ground-truth grading kernel: one
// truth extraction (a walk over every record's TrueActs/TruePath) plus
// one full Evaluate per iteration — the cost singleResult adds to every
// run by self-grading.
func BenchmarkKernel_Evaluate(b *testing.B) {
	res := benchEvalResult(b)
	b.ReportMetric(float64(len(res.Pipelines[0].Dataset.Records)), "records")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truth := res.Truth()
		if ev := Evaluate(res, truth); ev == nil {
			b.Fatal("nil evaluation")
		}
	}
}

// BenchmarkEngine_ChokepointE2E runs the chokepoint preset end to end
// per iteration — betweenness ranking, pinned censor placement, full
// measure/solve/grade — the new-preset datapoint alongside the matrix
// sweep below.
func BenchmarkEngine_ChokepointE2E(b *testing.B) {
	cfg := SmallConfig()
	cfg.Days = 6
	cfg.Vantages = 8
	cfg.URLs = 10
	cfg.URLsPerDay = 4
	cfg.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp, err := New(WithConfig(cfg), WithScenario("chokepoint"))
		if err != nil {
			b.Fatal(err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Evaluation == nil {
			b.Fatal("run not graded")
		}
	}
}

// BenchmarkEngine_MatrixSeedSweep exercises the Runner layer end to end:
// three tiny whole pipelines per iteration, run concurrently.
func BenchmarkEngine_MatrixSeedSweep(b *testing.B) {
	base := SmallConfig()
	base.Days = 6
	base.Vantages = 8
	base.URLs = 10
	base.URLsPerDay = 4
	base.Workers = 1 // the matrix supplies the concurrency, as churnlab does
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := (&Runner{}).RunMatrix(SeedSweep(base, 3))
		if agg := AggregateMatrix(results); agg.Failed > 0 {
			b.Fatalf("%d matrix cells failed", agg.Failed)
		}
	}
}

// BenchmarkEngine_MatrixDistributed runs the same four-cell seed sweep
// through the multi-process runner at increasing worker counts, against
// the in-process baseline. The output is byte-identical across all of
// them; the series measures how the wall-clock scales with processes
// (expect ~flat on a single-core host — the speedup needs real cores —
// and the procs=1 point prices the envelope/IPC overhead itself). The
// worker is this test binary re-executed via MaybeWorker, exactly as
// churnlab -procs re-executes itself. scripts/bench-scaling.sh renders
// the series as a speedup curve.
func BenchmarkEngine_MatrixDistributed(b *testing.B) {
	base := SmallConfig()
	base.Days = 6
	base.Vantages = 8
	base.URLs = 10
	base.URLsPerDay = 4
	base.Workers = 1 // one serial pipeline per cell, as churnlab does
	sweep := func(b *testing.B, extra ...Option) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			exp, err := New(append([]Option{WithConfig(base), WithSeedSweep(4)}, extra...)...)
			if err != nil {
				b.Fatal(err)
			}
			res, err := exp.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if res.Matrix.Failed > 0 {
				b.Fatalf("%d matrix cells failed", res.Matrix.Failed)
			}
		}
	}
	b.Run("inprocess", func(b *testing.B) { sweep(b) })
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			sweep(b, WithDistributed(procs))
		})
	}
}
