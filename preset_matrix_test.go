package churntomo

// The table-driven preset matrix: every registered preset, at two seeds,
// through the full public pipeline. Three invariants per (preset, seed)
// cell: the run succeeds, the same seed reproduces a byte-identical
// dataset, and a cumulative streaming replay's final identifications
// equal batch's. The golden suite (golden_eval_test.go) pins WHAT each
// preset finds at one seed; this matrix pins that every preset behaves
// lawfully at any seed.

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// datasetFingerprint serializes the measured records into a canonical
// byte string — "byte-identical dataset" is compared literally.
func datasetFingerprint(r *Result) string {
	if len(r.Pipelines) != 1 || r.Pipelines[0] == nil || r.Pipelines[0].Dataset == nil {
		return "<no dataset>"
	}
	var b strings.Builder
	for i := range r.Pipelines[0].Dataset.Records {
		rec := &r.Pipelines[0].Dataset.Records[i]
		fmt.Fprintf(&b, "%d %v %s %v %v path=%v true=%v unreach=%v\n",
			rec.ID, rec.Vantage, rec.URL, rec.At.Unix(), rec.Anomalies,
			rec.ASPath, rec.TruePath, rec.Unreachable)
	}
	return b.String()
}

func TestPresetMatrixTwoSeedsDeterministicStreamingEqualsBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full preset x seed matrix in -short mode")
	}
	for _, info := range Scenarios() {
		preset := info.Name
		for _, seed := range []uint64{1, 7} {
			t.Run(fmt.Sprintf("%s/seed%d", preset, seed), func(t *testing.T) {
				t.Parallel()
				run := func(opts ...Option) *Result {
					t.Helper()
					opts = append([]Option{WithConfig(smokeConfig()), WithScenario(preset), WithSeed(seed)}, opts...)
					exp, err := New(opts...)
					if err != nil {
						t.Fatal(err)
					}
					res, err := exp.Run(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				a, b := run(), run()
				if fa, fb := datasetFingerprint(a), datasetFingerprint(b); fa != fb {
					t.Fatal("same preset + seed produced different datasets")
				}
				if censorFingerprint(a.Identified) != censorFingerprint(b.Identified) {
					t.Fatal("same preset + seed produced different identifications")
				}
				if a.Summary.Measurements == 0 || a.Summary.CNFs == 0 {
					t.Fatalf("degenerate run: %+v", a.Summary)
				}
				s := run(WithWindow(0))
				if got, want := censorFingerprint(s.Identified), censorFingerprint(a.Identified); got != want {
					t.Fatalf("streaming final window differs from batch:\n--- stream ---\n%s--- batch ---\n%s", got, want)
				}
			})
		}
	}
}
