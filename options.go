package churntomo

// Functional options for New. Every option validates its argument and
// returns a descriptive error from New instead of silently misbehaving at
// run time — the construction-time counterpart of StreamConfig.Validate.

import (
	"fmt"
	"time"
)

// Option configures an Experiment under construction; see New.
type Option func(*Experiment) error

// Scale names one of the preset experiment sizes.
type Scale int

const (
	// ScaleDefault is DefaultConfig: a mid-scale year-long run.
	ScaleDefault Scale = iota
	// ScaleSmall is SmallConfig: a seconds-scale run for tests/examples.
	ScaleSmall
	// ScalePaper is PaperScaleConfig: the paper's dataset dimensions.
	ScalePaper
)

// String returns the scale's churnlab flag spelling.
func (s Scale) String() string {
	switch s {
	case ScaleDefault:
		return "default"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// ParseScale converts a churnlab-style scale name ("small", "default",
// "paper") to a Scale.
func ParseScale(name string) (Scale, error) {
	for _, s := range []Scale{ScaleDefault, ScaleSmall, ScalePaper} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("churntomo: unknown scale %q (want small, default or paper)", name)
}

// WithConfig replaces the experiment's base configuration wholesale. A
// non-nil cfg.Progress is converted to a registered TextObserver, so
// legacy configs migrate without behaviour change. Later dimension options
// (WithSeed, WithScale, WithDays, ...) still apply on top.
func WithConfig(cfg Config) Option {
	return func(e *Experiment) error {
		if cfg.Progress != nil {
			e.observers = append(e.observers, TextObserver(cfg.Progress))
			cfg.Progress = nil
		}
		e.base = cfg
		return nil
	}
}

// WithScale sets the experiment's dimensions (topology and platform scale)
// from a preset, leaving seed, workers and start time untouched.
func WithScale(s Scale) Option {
	return func(e *Experiment) error {
		var c Config
		switch s {
		case ScaleSmall:
			c = SmallConfig()
		case ScaleDefault:
			c = DefaultConfig()
		case ScalePaper:
			c = PaperScaleConfig()
		default:
			return fmt.Errorf("churntomo: WithScale: unknown scale %d", int(s))
		}
		e.base.ASes, e.base.Countries = c.ASes, c.Countries
		e.base.Vantages, e.base.URLs = c.Vantages, c.URLs
		e.base.Days, e.base.URLsPerDay, e.base.RepeatsPerDay = c.Days, c.URLsPerDay, c.RepeatsPerDay
		return nil
	}
}

// WithScenario selects a named world-construction preset from the
// scenario registry (see Scenarios for the catalog). The preset decides
// how the four generator axes behave — topology shape, churn process,
// censor regime, platform profile — while WithScale/WithSeed keep deciding
// the dimensions and randomness. Same preset + same seed is bit-identical
// across runs and across serial/parallel/streaming execution.
//
// Scenario selection is position-independent: like WithScenarioSpec, it
// survives a later WithConfig (the last scenario option wins over any
// Config.Scenario a WithConfig carries).
func WithScenario(name string) Option {
	return func(e *Experiment) error {
		if name == "" {
			return fmt.Errorf("churntomo: WithScenario: empty scenario name (omit the option for %q)", ScenarioBaseline)
		}
		if _, err := resolveScenario(name); err != nil {
			return err
		}
		e.base.Scenario = name
		e.scenarioName = name
		e.specOverride = nil // a later name wins over an earlier spec
		return nil
	}
}

// WithScenarioSpec drives world construction through an explicitly
// composed spec instead of a registered preset — mix and match the
// provider axes (spec fields left nil use the paper-baseline provider for
// that axis). The spec's name is recorded in results; it defaults to
// "custom".
func WithScenarioSpec(spec ScenarioSpec) Option {
	return func(e *Experiment) error {
		if spec.Name == "" {
			spec.Name = "custom"
		}
		e.specOverride = &spec
		e.scenarioName = ""
		e.base.Scenario = spec.Name
		return nil
	}
}

// WithSeed sets the master random seed. Seed 0 is rejected: by the Config
// zero-value rule a zero Seed field means "use the default" (seed 1), so
// an explicit WithSeed(0) would silently run under a different seed than
// the one named — name the seed you want, or omit the option for the
// default.
func WithSeed(seed uint64) Option {
	return func(e *Experiment) error {
		if seed == 0 {
			return fmt.Errorf("churntomo: WithSeed(0): seed 0 is the Config zero value and would silently become the default seed 1; pass the seed to run under, or omit the option")
		}
		e.base.Seed = seed
		return nil
	}
}

// WithSource sets where the experiment's measurements come from: a
// ScenarioSource (the default — synthesize from the configured scenario),
// a FileSource (replay an exported dataset), an in-memory *Dataset, or
// any external Source implementation. Every execution mode consumes the
// source's day batches: batch localizes them at once, streaming replays
// them day by day through the incremental engine, and each matrix cell
// opens the source under its own cell config.
func WithSource(src Source) Option {
	return func(e *Experiment) error {
		if src == nil {
			return fmt.Errorf("churntomo: WithSource(nil): source must be non-nil")
		}
		e.source = src
		return nil
	}
}

// WithSources switches the experiment to matrix mode with one cell per
// source, all analyzed under the base configuration — comparing datasets
// (several exported files, a synthesis next to a recording) under
// identical analysis knobs. Mutually exclusive with the other matrix
// shapes (WithSeedSweep, WithScaleSweep, WithConfigs) and with WithSource.
func WithSources(srcs ...Source) Option {
	return func(e *Experiment) error {
		if len(srcs) == 0 {
			return fmt.Errorf("churntomo: WithSources: at least one source required")
		}
		for i, src := range srcs {
			if src == nil {
				return fmt.Errorf("churntomo: WithSources: source %d is nil", i)
			}
		}
		e.cellSources = append([]Source(nil), srcs...)
		return nil
	}
}

// WithInput analyzes the dataset file at path instead of synthesizing
// measurements — shorthand for WithSource(&FileSource{Path: path}). The
// file is one written by Result.Export or genlab -export; its world
// metadata (scenario label, seed, period, vantage/target/AS tables)
// overrides the corresponding Config dimensions at run time.
func WithInput(path string) Option {
	return func(e *Experiment) error {
		if path == "" {
			return fmt.Errorf("churntomo: WithInput: empty dataset path")
		}
		e.source = &FileSource{Path: path}
		return nil
	}
}

// WithWorkers bounds the per-stage parallelism of each pipeline:
// measurement-day sharding, CNF grouping, materialization and solving.
// 0 uses GOMAXPROCS, 1 forces fully serial execution; results are
// identical at every setting.
func WithWorkers(n int) Option {
	return func(e *Experiment) error {
		if n < 0 {
			return fmt.Errorf("churntomo: WithWorkers(%d): worker count must be >= 0 (0 = GOMAXPROCS)", n)
		}
		e.base.Workers = n
		return nil
	}
}

// WithDays sets the measurement window length in days.
func WithDays(n int) Option {
	return func(e *Experiment) error {
		if n < 1 {
			return fmt.Errorf("churntomo: WithDays(%d): day count must be >= 1", n)
		}
		e.base.Days = n
		return nil
	}
}

// WithStart anchors the measurement period (the zero value means
// 2016-05-01, the paper's window).
func WithStart(t time.Time) Option {
	return func(e *Experiment) error {
		e.base.Start = t
		return nil
	}
}

// WithWindow switches the experiment to streaming mode with a sliding
// window of the given width in days. 0 means cumulative: every window
// starts at day 0 and only the end advances, so the final window
// reproduces the batch pipeline exactly.
func WithWindow(days int) Option {
	return func(e *Experiment) error {
		if days < 0 {
			return fmt.Errorf("churntomo: WithWindow(%d): window must be >= 0 days (0 = cumulative)", days)
		}
		e.streaming = true
		e.window = days
		return nil
	}
}

// WithStride switches the experiment to streaming mode and sets how many
// days the window advances between localizations (0 means 1: a window per
// day once the first fills).
func WithStride(days int) Option {
	return func(e *Experiment) error {
		if days < 0 {
			return fmt.Errorf("churntomo: WithStride(%d): stride must be >= 0 days (0 = every day)", days)
		}
		e.streaming = true
		e.stride = days
		return nil
	}
}

// WithStreaming switches the experiment to streaming mode with the default
// cumulative window and per-day stride — shorthand for WithWindow(0).
func WithStreaming() Option {
	return func(e *Experiment) error {
		e.streaming = true
		return nil
	}
}

// WithMinCNFs sets the corroboration threshold for naming a censor: an AS
// must be the unique solution of at least n distinct CNFs. 0 means the
// pipeline default (8). Applies to batch identification and to every
// streaming window.
func WithMinCNFs(n int) Option {
	return func(e *Experiment) error {
		if n < 0 {
			return fmt.Errorf("churntomo: WithMinCNFs(%d): threshold must be >= 0 (0 = pipeline default)", n)
		}
		e.minCNFs = n
		return nil
	}
}

// WithSeedSweep switches the experiment to matrix mode: n whole pipelines
// with consecutive seeds starting at the base seed, run concurrently and
// aggregated — the standard way to measure identification stability under
// substrate resampling. n == 1 is equivalent to a single batch run.
func WithSeedSweep(n int) Option {
	return func(e *Experiment) error {
		if n < 1 {
			return fmt.Errorf("churntomo: WithSeedSweep(%d): sweep size must be >= 1", n)
		}
		e.seedSweep = n
		return nil
	}
}

// WithScaleSweep switches the experiment to matrix mode: one cell per
// factor, scaling the base config's platform dimensions (vantages, URLs,
// days) while keeping its seed and topology fixed.
func WithScaleSweep(factors ...float64) Option {
	return func(e *Experiment) error {
		if len(factors) == 0 {
			return fmt.Errorf("churntomo: WithScaleSweep: at least one factor required")
		}
		for _, f := range factors {
			if f <= 0 {
				return fmt.Errorf("churntomo: WithScaleSweep: factor %v must be > 0", f)
			}
		}
		e.scaleFactors = append([]float64(nil), factors...)
		return nil
	}
}

// WithConfigs switches the experiment to matrix mode over an explicit,
// hand-built grid of configurations (an ablation grid, a mixed sweep).
// Cell Progress writers are ignored; register observers instead.
func WithConfigs(cfgs ...Config) Option {
	return func(e *Experiment) error {
		if len(cfgs) == 0 {
			return fmt.Errorf("churntomo: WithConfigs: at least one config required")
		}
		e.cells = append([]Config(nil), cfgs...)
		return nil
	}
}

// WithMatrixWorkers bounds how many matrix cells run concurrently — as
// goroutines sharing this process; 0 uses GOMAXPROCS. For wide matrices it
// usually pays to combine this with WithWorkers(1) and let the matrix
// supply the concurrency. To run cells in separate worker processes
// instead (isolated heaps, multi-process parallelism), use
// WithDistributed; the two are mutually exclusive, since each claims the
// same concurrency budget. churnlab exposes them as -parallel/-matrix vs
// -procs under the same rule.
func WithMatrixWorkers(n int) Option {
	return func(e *Experiment) error {
		if n < 0 {
			return fmt.Errorf("churntomo: WithMatrixWorkers(%d): worker count must be >= 0 (0 = GOMAXPROCS)", n)
		}
		e.matrixWorkers = n
		return nil
	}
}

// WithDistributed executes the experiment across n worker subprocesses
// instead of in-process goroutines: each matrix cell — or, for a single
// batch run, each contiguous range of its measurement days — is serialized
// as a self-contained job envelope, dispatched to a pooled worker over a
// length-prefixed pipe protocol, and merged back through the same
// deterministic aggregation, so the output is byte-identical to in-process
// execution at any n. Workers stream progress events back live, a crashed
// worker is respawned and its job retried once (then surfaces as a typed
// per-cell error, never a hang), and cancellation kills the pool.
//
// By default the worker command is this very binary re-executed with a
// magic argument — the embedding program must call MaybeWorker first thing
// in main (churnlab does; so does `go test` via the package's TestMain) —
// or point WithWorkerBinary at a dedicated worker such as cmd/churnworker.
// Mutually exclusive with streaming (days must arrive in order in one
// process), with WithMatrixWorkers (one concurrency budget), and with
// replay sources in batch mode (nothing left to measure). n == 1 is valid:
// one worker process, useful for isolating a cell's heap.
func WithDistributed(n int) Option {
	return func(e *Experiment) error {
		if n < 1 {
			return fmt.Errorf("churntomo: WithDistributed(%d): worker process count must be >= 1 (omit the option for in-process execution)", n)
		}
		e.procs = n
		return nil
	}
}

// WithWorkerBinary sets the worker command a distributed run spawns, in
// place of re-executing the current binary: path is the executable,
// args its arguments. The process must speak the worker protocol on
// stdin/stdout — cmd/churnworker does with no arguments, and any binary
// that calls MaybeWorker does when passed churntomo's magic worker
// argument. Requires WithDistributed.
func WithWorkerBinary(path string, args ...string) Option {
	return func(e *Experiment) error {
		if path == "" {
			return fmt.Errorf("churntomo: WithWorkerBinary: empty worker binary path")
		}
		e.workerCmd = append([]string{path}, args...)
		return nil
	}
}

// WithWorkerMemoryMB hints each distributed worker's soft memory budget in
// mebibytes, applied as the worker runtime's memory limit — a fleet of
// workers on one host degrades to harder GC instead of the OOM killer.
// Requires WithDistributed.
func WithWorkerMemoryMB(mb int) Option {
	return func(e *Experiment) error {
		if mb < 1 {
			return fmt.Errorf("churntomo: WithWorkerMemoryMB(%d): memory budget must be >= 1 MiB (omit the option for the runtime default)", mb)
		}
		e.workerMemMB = mb
		return nil
	}
}

// WithObserver registers an observer for the experiment's event stream;
// repeat to register several. See Observer for the delivery contract.
func WithObserver(obs Observer) Option {
	return func(e *Experiment) error {
		if obs == nil {
			return fmt.Errorf("churntomo: WithObserver(nil): observer must be non-nil")
		}
		e.observers = append(e.observers, obs)
		return nil
	}
}

// WithChurnAblation additionally runs the no-churn ablation (the paper's
// Figure 4): CNFs are rebuilt from first-observed-path records only and
// their model counts bucketed, populating Result.NoChurn. Costs one extra
// build+count pass over the dataset.
func WithChurnAblation() Option {
	return func(e *Experiment) error {
		e.ablation = true
		return nil
	}
}
