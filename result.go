package churntomo

// The public Result surface. Everything an experiment learns — identified
// censors, dataset summary, leakage, churn, streaming timeline, matrix
// aggregate — is expressed here in exported types, so external consumers
// (the examples compile as such, enforced by `make api-check`) never need
// a churntomo/internal import. Small value types that already have stable
// public behaviour are re-exported as aliases rather than copied.

import (
	"sort"

	"churntomo/internal/analysis"
	"churntomo/internal/anomaly"
	"churntomo/internal/churn"
	"churntomo/internal/leakage"
	"churntomo/internal/sat"
	"churntomo/internal/stream"
	"churntomo/internal/timeslice"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
)

// ASN is an autonomous system number; its String form is "AS<n>".
type ASN = topology.ASN

// AnomalyKind is one of the platform's five censorship anomaly classes.
type AnomalyKind = anomaly.Kind

// AnomalySet is a bitmask of anomaly kinds; Has/Members/String are public.
type AnomalySet = anomaly.Set

// The five anomaly kinds, re-exported for external consumers.
const (
	AnomalyDNS   AnomalyKind = anomaly.DNS   // injected DNS responses (dual replies)
	AnomalyRST   AnomalyKind = anomaly.RST   // spurious TCP reset injection
	AnomalySEQ   AnomalyKind = anomaly.SEQ   // overlapping/gapped TCP sequence numbers
	AnomalyTTL   AnomalyKind = anomaly.TTL   // IP TTL inconsistent with the SYNACK
	AnomalyBlock AnomalyKind = anomaly.Block // censor blockpage in the HTTP response
)

// IdentifiedCensor aggregates everything the tomography learned about one
// censoring AS from unique-solution CNFs: the anomaly kinds it was
// identified for, the URLs involved, and the corroborating CNF count.
type IdentifiedCensor = tomo.IdentifiedCensor

// Censor is one identified censoring AS, enriched with topology context
// and the scenario's ground truth (which the paper lacked).
type Censor struct {
	ASN ASN
	// Name and Country describe the AS in the synthetic topology;
	// CountryName is the country's display name.
	Name, Country, CountryName string
	// Kinds unions the anomaly kinds the AS was identified for.
	Kinds AnomalySet
	// CNFs counts the unique-solution CNFs corroborating the
	// identification.
	CNFs int
	// URLs lists the censored URLs involved, sorted.
	URLs []string
	// TrueCensor reports whether the scenario's ground-truth registry
	// actually assigned this AS a censorship policy (false = spurious).
	TrueCensor bool
}

// Summary condenses the measured dataset and the solve outcome.
type Summary struct {
	// Scenario names the world-construction preset the run built under
	// ("paper-baseline" unless WithScenario/WithScenarioSpec changed it).
	Scenario string
	// Period is the measurement period, e.g. "2016-05-01..2017-05-02".
	Period string
	// Measurements counts all platform measurements.
	Measurements int
	// VantageASes/DestinationASes/UniqueURLs/Countries are the paper's
	// Table 1 dataset characteristics.
	VantageASes, DestinationASes, UniqueURLs, Countries int
	// CNFs counts constructed CNFs; the next three split them by the §3.2
	// solution trichotomy (unsatisfiable / unique / 2+ models).
	CNFs, UnsatCNFs, UniqueCNFs, MultipleCNFs int
}

// Leaker is one censoring AS that leaks its policy beyond itself
// (Table 3's row shape), with its victims resolved against the topology.
type Leaker struct {
	ASN           ASN
	Name, Country string
	// LeakedASes/LeakedCountries count distinct victim ASes and victim
	// countries other than the censor's own.
	LeakedASes, LeakedCountries int
	// Victims lists the affected upstream ASes, sorted by ASN.
	Victims []Victim
}

// Victim is one AS affected by another AS's censorship policy.
type Victim struct {
	ASN           ASN
	Name, Country string
}

// CountryFlow is one directed country-level leakage edge (Figure 5).
type CountryFlow struct {
	// From/To are ISO-style country codes; FromName/ToName display names.
	From, To, FromName, ToName string
	Weight                     int
}

// LeakageSummary is the §3.3 analysis in public form.
type LeakageSummary struct {
	// LeakToOtherASes counts censors with at least one victim AS;
	// LeakToOtherCountries counts those whose leakage crosses a border.
	LeakToOtherASes, LeakToOtherCountries int
	// Leakers ranks every leaking censor, most victims first.
	Leakers []Leaker
	// Flow lists the country-level leakage edges, heaviest first.
	Flow []CountryFlow
	// RegionalFracNonCN is the fraction of cross-border leakage (China
	// excluded) that stays within the censor's region.
	RegionalFracNonCN float64
}

// ChurnPeriod is one granularity of the paper's Figure 3: how many
// distinct AS paths a (vantage, URL) pair observes per period.
type ChurnPeriod struct {
	// Period is the granularity name: "day", "week", "month" or "year".
	Period string
	// Buckets[b] is the fraction of pair-periods with exactly b distinct
	// paths (b = 5 means "5 or more"); index 0 is unused.
	Buckets [6]float64
	// ChangedFrac is the fraction with 2+ distinct paths.
	ChangedFrac float64
	// Samples counts pair-periods.
	Samples int
}

// ClassChurn is churn split by the destination's CAIDA-style class — the
// paper's observation that churn does not depend on it.
type ClassChurn struct {
	Class       string
	ChangedFrac float64
	Samples     int
}

// AblationPeriod is one granularity of the no-churn ablation (Figure 4):
// solution-count fractions when CNFs see only each pair's first observed
// path. Populated only under WithChurnAblation.
type AblationPeriod struct {
	Period string
	// Frac[n] is the fraction of CNFs with n models (n = 5 means "5+").
	Frac [6]float64
	CNFs int
}

// WindowResult is one streaming window's localization.
type WindowResult struct {
	// Index is the window ordinal; StartDay/EndDay its inclusive range.
	Index, StartDay, EndDay int
	// CNFs counts the window's instances; Solved/Reused split the
	// incremental engine's work (re-solved vs served from cache).
	CNFs, Solved, Reused int
	// Identified is the window's censor set at the configured threshold.
	Identified map[ASN]*IdentifiedCensor
}

// Convergence describes how one censor's identification evolved across
// the window timeline.
type Convergence struct {
	ASN ASN
	// FirstWindow/LastWindow bound the windows that identified the AS;
	// Windows counts them.
	FirstWindow, LastWindow, Windows int
	// StableFrom is the earliest window from which the AS stays
	// identified through the end of the timeline, or -1 if the final
	// window no longer names it.
	StableFrom int
}

// MatrixCensor is one AS's identification record across a matrix.
type MatrixCensor struct {
	ASN           ASN
	Name, Country string
	// Runs counts the cells that identified the AS; CNFs sums their
	// corroborating CNFs; Kinds unions the anomaly kinds.
	Runs, CNFs int
	Kinds      AnomalySet
}

// MatrixSummary fuses a matrix run's cells.
type MatrixSummary struct {
	// Runs/Failed count successful and failed cells.
	Runs, Failed int
	// TotalCNFs/UniqueCNFs count all and unique-solution CNFs summed over
	// successful cells; LeakASes/LeakCountries sum the leakage headlines.
	TotalCNFs, UniqueCNFs   int
	LeakASes, LeakCountries int
	// Censors ranks every AS identified by at least one cell,
	// most-corroborated first; Stable lists those identified by every
	// successful cell, ascending.
	Censors []MatrixCensor
	Stable  []ASN
}

// CellStatus is one matrix cell's outcome summary.
type CellStatus struct {
	Index  int
	Config Config
	// Err is the cell's failure, nil on success. A failed cell does not
	// abort the matrix; it is counted in MatrixSummary.Failed.
	Err error
	// Censors/CNFs summarize a successful cell.
	Censors, CNFs int
}

// Result is what Experiment.Run returns: one experiment's complete public
// outcome, regardless of execution mode. Mode-specific sections are nil
// when not applicable.
type Result struct {
	// Config is the effective base configuration (defaults filled).
	Config Config
	// Mode records how the experiment executed.
	Mode Mode

	// Identified maps each identified censoring AS to its raw
	// identification record — in streaming mode, the final window's. It
	// is byte-identical to what the deprecated Run/StreamSweep produce
	// for matching options (pinned by TestExperimentMatchesLegacyRun).
	// Nil in matrix mode; see Matrix instead.
	Identified map[ASN]*IdentifiedCensor
	// Censors is Identified enriched with topology context and ground
	// truth, sorted by ASN.
	Censors []Censor

	// Summary condenses the dataset and solve outcome (single-cell modes).
	Summary Summary
	// Leakage is the §3.3 analysis; nil when nothing was localized.
	Leakage *LeakageSummary
	// Churn is the Figure 3 path-churn distribution per granularity;
	// ChurnByClass splits monthly churn by destination class.
	Churn        []ChurnPeriod
	ChurnByClass []ClassChurn
	// NoChurn is the Figure 4 ablation; only under WithChurnAblation.
	NoChurn []AblationPeriod

	// Windows is the streaming timeline in emission order, and
	// Convergence its per-censor stabilization stats (streaming mode).
	Windows     []WindowResult
	Convergence []Convergence

	// Evaluation grades the verdict against the scenario's ground truth
	// (precision/recall/F1, leakage rate, candidate reduction,
	// convergence days). Nil when no ground truth is available: matrix
	// mode, or a replayed dataset without a censor registry. See
	// Evaluate/Truth to score against external or modified truth.
	Evaluation *Evaluation

	// Matrix aggregates a matrix run; Cells reports per-cell outcomes in
	// input order (matrix mode).
	Matrix *MatrixSummary
	Cells  []CellStatus

	// Pipelines exposes the full internal artifacts, one per cell (nil
	// entries for failed cells). It exists for in-repo tooling (churnlab's
	// figure printers) and deprecated-shim compatibility; external
	// consumers should not need it — everything above is self-contained.
	Pipelines []*Pipeline

	// reductionFracs caches the per-CNF candidate-elimination fractions
	// of the run's Multiple outcomes for Evaluate — in streaming mode
	// the final window's outcomes are not otherwise retained.
	reductionFracs []float64
}

// FinalWindow returns the last emitted streaming window, or nil outside
// streaming mode (or when the replay was too short to fill one).
func (r *Result) FinalWindow() *WindowResult {
	if len(r.Windows) == 0 {
		return nil
	}
	return &r.Windows[len(r.Windows)-1]
}

// censorsOf enriches an identification map against the pipeline's
// topology and ground-truth registry, sorted by ASN.
func censorsOf(identified map[topology.ASN]*tomo.IdentifiedCensor, p *Pipeline) []Censor {
	out := make([]Censor, 0, len(identified))
	for asn, c := range identified {
		urls := make([]string, 0, len(c.URLs))
		for u := range c.URLs {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		cc := Censor{ASN: asn, Kinds: c.Kinds, CNFs: c.CNFs, URLs: urls}
		if as, ok := p.Graph.ByASN(asn); ok {
			cc.Name, cc.Country = as.Name, as.Country
			if country, ok := topology.CountryByCode(as.Country); ok {
				cc.CountryName = country.Name
			}
		}
		_, cc.TrueCensor = p.Censors.Policy(asn)
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// summaryOf condenses Table 1 and the outcome classes.
func summaryOf(ds *Pipeline, outcomes []tomo.Outcome) Summary {
	t := ds.Dataset.Stats
	s := Summary{
		Scenario:     ds.Config.Scenario,
		Period:       t.Period,
		Measurements: t.Measurements,
		VantageASes:  t.VantageASes, DestinationASes: t.DestinationASes,
		UniqueURLs: t.UniqueURLs, Countries: t.Countries,
		CNFs: len(outcomes),
	}
	for _, o := range outcomes {
		switch o.Class {
		case sat.Unsat:
			s.UnsatCNFs++
		case sat.Unique:
			s.UniqueCNFs++
		case sat.Multiple:
			s.MultipleCNFs++
		}
	}
	return s
}

// leakageSummaryOf converts the internal analysis into the public form.
func leakageSummaryOf(a *leakage.Analysis, g *topology.Graph) *LeakageSummary {
	ls := &LeakageSummary{
		LeakToOtherASes:      a.LeakToOtherASes(),
		LeakToOtherCountries: a.LeakToOtherCountries(),
		RegionalFracNonCN:    a.RegionalFrac(g, "CN"),
	}
	for _, l := range a.TopLeakers(g, 0) {
		leaker := Leaker{
			ASN: l.ASN, Name: l.Name, Country: l.Country,
			LeakedASes: l.LeakedASes, LeakedCountries: l.LeakedCountries,
		}
		if detail := a.ByCensor[l.ASN]; detail != nil {
			for victim := range detail.VictimASes {
				v := Victim{ASN: victim}
				if as, ok := g.ByASN(victim); ok {
					v.Name, v.Country = as.Name, as.Country
				}
				leaker.Victims = append(leaker.Victims, v)
			}
			sort.Slice(leaker.Victims, func(i, j int) bool {
				return leaker.Victims[i].ASN < leaker.Victims[j].ASN
			})
		}
		ls.Leakers = append(ls.Leakers, leaker)
	}
	for _, e := range a.FlowEdges() {
		cf := CountryFlow{From: e.Edge.From, To: e.Edge.To, Weight: e.Weight}
		if c, ok := topology.CountryByCode(e.Edge.From); ok {
			cf.FromName = c.Name
		}
		if c, ok := topology.CountryByCode(e.Edge.To); ok {
			cf.ToName = c.Name
		}
		ls.Flow = append(ls.Flow, cf)
	}
	return ls
}

// churnOf measures the Figure 3 distributions over the dataset.
func churnOf(p *Pipeline) []ChurnPeriod {
	var out []ChurnPeriod
	for _, d := range churn.Measure(p.Dataset.Records, nil) {
		cp := ChurnPeriod{
			Period:      d.Gran.String(),
			ChangedFrac: d.ChangedFrac(),
			Samples:     d.Samples,
		}
		copy(cp.Buckets[:], d.Buckets[:])
		out = append(out, cp)
	}
	return out
}

// churnByClassOf splits monthly churn by destination class.
func churnByClassOf(p *Pipeline) []ClassChurn {
	byClass := churn.ByDestinationClass(p.Dataset.Records, p.Graph, timeslice.Month)
	var out []ClassChurn
	for _, class := range churn.Classes(byClass) {
		d := byClass[class]
		out = append(out, ClassChurn{
			Class: class.String(), ChangedFrac: d.ChangedFrac(), Samples: d.Samples,
		})
	}
	return out
}

// ablationOf runs the Figure 4 no-churn rebuild.
func ablationOf(p *Pipeline, workers int) []AblationPeriod {
	var out []AblationPeriod
	for _, row := range analysis.Figure4(p.Dataset.Records, workers) {
		ap := AblationPeriod{Period: row.Gran.String(), CNFs: row.CNFs}
		copy(ap.Frac[:], row.Frac[:])
		out = append(out, ap)
	}
	return out
}

// windowResultsOf converts the internal window timeline.
func windowResultsOf(windows []*stream.Window) []WindowResult {
	out := make([]WindowResult, 0, len(windows))
	for _, w := range windows {
		out = append(out, WindowResult{
			Index: w.Index, StartDay: w.StartDay, EndDay: w.EndDay,
			CNFs: len(w.Outcomes), Solved: w.Solved, Reused: w.Reused,
			Identified: w.Identified,
		})
	}
	return out
}

// convergencesOf converts the internal convergence stats.
func convergencesOf(cs []stream.Convergence) []Convergence {
	out := make([]Convergence, 0, len(cs))
	for _, c := range cs {
		out = append(out, Convergence{
			ASN: c.ASN, FirstWindow: c.FirstWindow, LastWindow: c.LastWindow,
			Windows: c.Windows, StableFrom: c.StableFrom,
		})
	}
	return out
}

// matrixSummaryOf converts an aggregate, resolving names against any
// successful cell's topology (cells share no graph, but ASN->name is
// seed-dependent, so names come from the first cell that knows the AS).
func matrixSummaryOf(agg *MatrixAggregate, results []MatrixResult) *MatrixSummary {
	ms := &MatrixSummary{
		Runs: agg.Runs, Failed: agg.Failed,
		TotalCNFs: agg.TotalCNFs, UniqueCNFs: agg.UniqueCNFs,
		LeakASes: agg.LeakASes, LeakCountries: agg.LeakCountries,
		Stable: agg.StableCensors(),
	}
	nameOf := func(asn topology.ASN) (string, string) {
		for _, res := range results {
			// A distributed cell ships its full AS table in the summary, so
			// the lookup resolves from the same cell an in-process run's
			// Graph lookup would — keeping the aggregate byte-identical.
			if res.Pipeline != nil {
				if as, ok := res.Pipeline.Graph.ByASN(asn); ok {
					return as.Name, as.Country
				}
				continue
			}
			if res.Summary != nil {
				if as, ok := res.Summary.ASes[asn]; ok {
					return as.Name, as.Country
				}
			}
		}
		return "", ""
	}
	for _, c := range agg.RankedCensors() {
		mc := MatrixCensor{ASN: c.ASN, Runs: c.Runs, CNFs: c.CNFs, Kinds: c.Kinds}
		mc.Name, mc.Country = nameOf(c.ASN)
		ms.Censors = append(ms.Censors, mc)
	}
	return ms
}
