package churntomo

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// exportTestConfig is a fast configuration for export/import round trips.
func exportTestConfig() Config {
	cfg := testConfig()
	cfg.Days = 20
	return cfg
}

// runDirect executes one experiment over the live ScenarioSource.
func runDirect(t *testing.T, opts ...Option) *Result {
	t.Helper()
	exp, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDatasetRoundTripIdentifications is the acceptance gate: exporting a
// run's dataset, re-importing it through FileSource and localizing again
// must produce identifications byte-identical to the direct run — in
// batch mode here, in streaming mode below. `make dataset-check` runs it.
func TestDatasetRoundTripIdentifications(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end round trip")
	}
	direct := runDirect(t, WithConfig(exportTestConfig()))

	path := filepath.Join(t.TempDir(), "ds.jsonl.gz")
	if err := direct.Export(path); err != nil {
		t.Fatal(err)
	}
	replayed := runDirect(t, WithInput(path))

	if len(direct.Identified) == 0 {
		t.Fatal("direct run identified no censors; round trip is vacuous")
	}
	if !reflect.DeepEqual(direct.Identified, replayed.Identified) {
		t.Errorf("identifications diverge: direct %v, replayed %v", direct.Identified, replayed.Identified)
	}
	// The reconstructed metadata graph and truth registry must enrich
	// identically: names, countries, ground-truth bits, leakage victims.
	if !reflect.DeepEqual(direct.Censors, replayed.Censors) {
		t.Errorf("censor enrichment diverges:\ndirect   %+v\nreplayed %+v", direct.Censors, replayed.Censors)
	}
	if !reflect.DeepEqual(direct.Summary, replayed.Summary) {
		t.Errorf("summaries diverge:\ndirect   %+v\nreplayed %+v", direct.Summary, replayed.Summary)
	}
	if !reflect.DeepEqual(direct.Leakage, replayed.Leakage) {
		t.Error("leakage analyses diverge")
	}
	if !reflect.DeepEqual(direct.Churn, replayed.Churn) {
		t.Error("churn distributions diverge")
	}
	if !reflect.DeepEqual(direct.ChurnByClass, replayed.ChurnByClass) {
		t.Error("churn-by-class distributions diverge")
	}
}

// TestDatasetRoundTripStreaming pins the streaming half of the acceptance
// criterion: a FileSource replay through the incremental engine emits the
// same window timeline and final identifications as streaming over the
// live ScenarioSource.
func TestDatasetRoundTripStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end round trip")
	}
	cfg := exportTestConfig()
	direct := runDirect(t, WithConfig(cfg), WithWindow(8), WithStride(4))

	path := filepath.Join(t.TempDir(), "ds.jsonl.gz")
	if err := direct.Export(path); err != nil {
		t.Fatal(err)
	}
	replayed := runDirect(t, WithInput(path), WithWindow(8), WithStride(4))

	if len(direct.Windows) == 0 {
		t.Fatal("direct streaming run emitted no windows")
	}
	if !reflect.DeepEqual(direct.Windows, replayed.Windows) {
		t.Errorf("window timelines diverge: direct %d windows, replayed %d", len(direct.Windows), len(replayed.Windows))
	}
	if !reflect.DeepEqual(direct.Convergence, replayed.Convergence) {
		t.Error("convergence stats diverge")
	}
	if !reflect.DeepEqual(direct.Identified, replayed.Identified) {
		t.Error("final identifications diverge")
	}
}

// TestInMemoryDatasetSource drives the public Source contract end to end:
// Result.Dataset's exported form, fed back through the generic (non
// fast-path) adapter as an in-memory *Dataset source, localizes
// identically. This is the path an external real-data ingester exercises.
func TestInMemoryDatasetSource(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end round trip")
	}
	direct := runDirect(t, WithConfig(exportTestConfig()))
	ds, err := direct.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Info.Days != direct.Config.Days || len(ds.Days) != ds.Info.Days {
		t.Fatalf("dataset period: Info.Days %d, batches %d, config %d", ds.Info.Days, len(ds.Days), direct.Config.Days)
	}
	replayed := runDirect(t, WithSource(ds))
	if len(direct.Identified) == 0 || !reflect.DeepEqual(direct.Identified, replayed.Identified) {
		t.Errorf("identifications diverge through the public Dataset source (direct %d, replayed %d)",
			len(direct.Identified), len(replayed.Identified))
	}
	if !reflect.DeepEqual(direct.Censors, replayed.Censors) {
		t.Error("censor enrichment diverges through the public Dataset source")
	}
}

// TestScenarioSourceOpenMatchesExport pins that the two public ways of
// obtaining a dataset — ScenarioSource.Open and Result.Dataset after a
// run — agree on the data for the same Config.
func TestScenarioSourceOpenMatchesExport(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end generation")
	}
	cfg := exportTestConfig()
	opened, err := (&ScenarioSource{}).Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromRun, err := runDirect(t, WithConfig(cfg)).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(opened.Days) != len(fromRun.Days) {
		t.Fatalf("day batches: Open %d, run export %d", len(opened.Days), len(fromRun.Days))
	}
	total := 0
	for day := range opened.Days {
		if len(opened.Days[day]) != len(fromRun.Days[day]) {
			t.Fatalf("day %d: Open %d records, run export %d", day, len(opened.Days[day]), len(fromRun.Days[day]))
		}
		total += len(opened.Days[day])
		for i := range opened.Days[day] {
			a, b := opened.Days[day][i], fromRun.Days[day][i]
			if a.Vantage != b.Vantage || a.URL != b.URL || !a.At.Equal(b.At) ||
				a.Anomalies != b.Anomalies || a.Fail != b.Fail || !reflect.DeepEqual(a.ASPath, b.ASPath) {
				t.Fatalf("day %d record %d diverges: %+v vs %+v", day, i, a, b)
			}
		}
	}
	if total == 0 {
		t.Fatal("no records generated")
	}
	if !reflect.DeepEqual(opened.Info.Targets, fromRun.Info.Targets) ||
		!reflect.DeepEqual(opened.Info.Vantages, fromRun.Info.Vantages) {
		t.Error("world metadata diverges between Open and run export")
	}
}

// TestWithSourcesMatrix runs a matrix with one cell per source — two
// replays of the same exported file — and expects every identification to
// be stable across cells.
func TestWithSourcesMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end matrix")
	}
	direct := runDirect(t, WithConfig(exportTestConfig()))
	path := filepath.Join(t.TempDir(), "ds.jsonl.gz")
	if err := direct.Export(path); err != nil {
		t.Fatal(err)
	}
	res := runDirect(t, WithConfig(exportTestConfig()),
		WithSources(&FileSource{Path: path}, &FileSource{Path: path}))
	if res.Mode != ModeMatrix {
		t.Fatalf("mode = %v, want matrix", res.Mode)
	}
	if res.Matrix.Runs != 2 || res.Matrix.Failed != 0 {
		t.Fatalf("matrix runs %d failed %d", res.Matrix.Runs, res.Matrix.Failed)
	}
	if len(res.Matrix.Stable) != len(direct.Identified) {
		t.Errorf("stable censors %d, want %d (every cell replays the same data)",
			len(res.Matrix.Stable), len(direct.Identified))
	}
	for _, asn := range res.Matrix.Stable {
		if _, ok := direct.Identified[asn]; !ok {
			t.Errorf("stable censor %v not identified by the direct run", asn)
		}
	}
}

// TestSourceOptionValidation covers the construction-time contracts of
// the source options and the WithSeed zero-value rule.
func TestSourceOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"nil source", []Option{WithSource(nil)}, "WithSource"},
		{"empty input", []Option{WithInput("")}, "WithInput"},
		{"no sources", []Option{WithSources()}, "WithSources"},
		{"nil cell source", []Option{WithSources(&FileSource{Path: "x"}, nil)}, "source 1 is nil"},
		{"source plus sources", []Option{WithSource(&FileSource{Path: "x"}), WithSources(&FileSource{Path: "y"})}, "mutually exclusive"},
		{"sources plus seed sweep", []Option{WithSources(&FileSource{Path: "x"}), WithSeedSweep(3)}, "at most one"},
		{"sources plus streaming", []Option{WithSources(&FileSource{Path: "x"}), WithStreaming()}, "mutually exclusive"},
		{"scenario plus file source", []Option{WithScenario(ScenarioBaseline), WithInput("x")}, "replays recorded data"},
		{"seed sweep over a replay", []Option{WithInput("x"), WithSeedSweep(4)}, "same recorded data into every cell"},
		{"config grid over a replay", []Option{WithInput("x"), WithConfigs(SmallConfig(), DefaultConfig())}, "same recorded data into every cell"},
		{"seed zero", []Option{WithSeed(0)}, "WithSeed(0)"},
	}
	for _, tc := range cases {
		if _, err := New(tc.opts...); err == nil {
			t.Errorf("%s: New accepted invalid options", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// A scenario selection combined with the default-synthesis source is
	// fine — the source is what the selection steers.
	if _, err := New(WithScenario(ScenarioBaseline), WithSource(&ScenarioSource{})); err != nil {
		t.Errorf("WithScenario + WithSource(ScenarioSource): %v", err)
	}
	// So is a seed sweep over a synthesizing source — each cell builds its
	// own world.
	if _, err := New(WithSource(&ScenarioSource{}), WithSeedSweep(2)); err != nil {
		t.Errorf("WithSource(ScenarioSource) + WithSeedSweep: %v", err)
	}
}

// TestScenarioSourceSpecNamesResult pins that a ScenarioSource carrying
// an explicit Spec records the spec's name — not the config's default —
// in the result and in exports.
func TestScenarioSourceSpecNamesResult(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	spec, err := ScenarioByName("transit-leakage")
	if err != nil {
		t.Fatal(err)
	}
	cfg := exportTestConfig()
	cfg.Days = 6
	res := runDirect(t, WithConfig(cfg), WithSource(&ScenarioSource{Spec: &spec}))
	if res.Summary.Scenario != "transit-leakage" {
		t.Errorf("Summary.Scenario = %q, want transit-leakage", res.Summary.Scenario)
	}
	ds, err := res.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Info.Scenario != "transit-leakage" {
		t.Errorf("exported Info.Scenario = %q, want transit-leakage", ds.Info.Scenario)
	}
	// An unnamed ad-hoc spec defaults to "custom", like WithScenarioSpec.
	anon := spec
	anon.Name = ""
	res = runDirect(t, WithConfig(cfg), WithSource(&ScenarioSource{Spec: &anon}))
	if res.Summary.Scenario != "custom" {
		t.Errorf("unnamed spec Summary.Scenario = %q, want custom", res.Summary.Scenario)
	}
}

// TestFileSourceLoadEvent pins the StageLoad event and its TextObserver
// rendering for dataset-backed runs.
func TestFileSourceLoadEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	direct := runDirect(t, WithConfig(exportTestConfig()))
	path := filepath.Join(t.TempDir(), "ds.jsonl.gz")
	if err := direct.Export(path); err != nil {
		t.Fatal(err)
	}
	var loads []Event
	runDirect(t, WithInput(path), WithObserver(func(ev Event) {
		if ev.Stage == StageLoad {
			loads = append(loads, ev)
		}
	}))
	if len(loads) != 1 {
		t.Fatalf("got %d StageLoad events, want 1", len(loads))
	}
	if loads[0].Source != path {
		t.Errorf("StageLoad.Source = %q, want %q", loads[0].Source, path)
	}
	if got := StageLoad.String(); got != "load" {
		t.Errorf("StageLoad.String() = %q", got)
	}

	var buf strings.Builder
	TextObserver(&buf)(loads[0])
	if want := "loading dataset from " + path + "\n"; buf.String() != want {
		t.Errorf("TextObserver rendering = %q, want %q", buf.String(), want)
	}
}

// TestExportRejectsMatrixAndEmptyResults pins the Export error contract.
func TestExportRejectsMatrixAndEmptyResults(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end matrix")
	}
	cfg := exportTestConfig()
	cfg.Days = 6
	res := runDirect(t, WithConfig(cfg), WithSeedSweep(2), WithMatrixWorkers(2))
	if err := res.Export(filepath.Join(t.TempDir(), "m.jsonl.gz")); err == nil {
		t.Error("Export accepted a matrix result")
	} else if !strings.Contains(err.Error(), "matrix") {
		t.Errorf("matrix export error %q does not explain itself", err)
	}
	if err := (&Result{}).Export(filepath.Join(t.TempDir(), "e.jsonl.gz")); err == nil {
		t.Error("Export accepted an empty result")
	}
}

// TestLoadDatasetErrors pins the decode error surface external callers
// see: missing files and non-dataset files fail descriptively.
func TestLoadDatasetErrors(t *testing.T) {
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "absent.jsonl.gz")); err == nil {
		t.Error("LoadDataset read a nonexistent file")
	}
	exp, err := New(WithInput(filepath.Join(t.TempDir(), "absent.jsonl.gz")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err == nil {
		t.Error("Run succeeded over a nonexistent dataset")
	}
}
