package churntomo

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"churntomo/internal/distrib"
)

// TestMain intercepts the worker re-executions of this test binary before
// any test runs: the default self-exec worker (MaybeWorker, exactly what
// churnlab does) and the fault-injecting crashy worker the crash tests
// install via WithWorkerBinary.
func TestMain(m *testing.M) {
	MaybeWorker()
	if len(os.Args) >= 3 && os.Args[1] == crashyWorkerArg {
		crashyWorkerMain(os.Args[2])
	}
	os.Exit(m.Run())
}

// crashyWorkerArg turns this test binary into a worker that dies mid-job.
const crashyWorkerArg = "__churntomo_crashy_worker__"

// crashyWorkerMain speaks the worker protocol but kills the process on the
// first job it receives, leaving the sentinel file as proof — so the
// pool's respawned retry (which finds the sentinel) succeeds and the test
// can assert the crash actually happened. A sentinel of "-" crashes on
// every attempt, modeling a worker that can never finish a job.
func crashyWorkerMain(sentinel string) {
	err := serveWorkerFault(os.Stdin, os.Stdout, func() bool {
		if sentinel == "-" {
			return true
		}
		if _, err := os.Stat(sentinel); err == nil {
			return false // already crashed once; behave this time
		}
		if err := os.WriteFile(sentinel, []byte("crashed\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crashy worker: writing sentinel:", err)
			os.Exit(1)
		}
		return true
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashy worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// serveWorkerFault is the crash-injection twin of ServeWorker: before
// executing each job it consults shouldCrash and, when told to, dies the
// way a real worker crash does — abruptly, mid-protocol, with a nonzero
// exit — instead of returning a typed failure.
func serveWorkerFault(r *os.File, w *os.File, shouldCrash func() bool) error {
	return distrib.Serve(r, w, func(job int, payload []byte, emit func([]byte)) ([]byte, error) {
		if shouldCrash() {
			fmt.Fprintln(os.Stderr, "crashy worker: simulated crash")
			os.Exit(3)
		}
		return runWorkerJob(job, payload, emit)
	})
}

// --- Option validation ------------------------------------------------------

func TestDistributedOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string // substring of the New error
	}{
		{"zero procs", []Option{WithDistributed(0)}, "WithDistributed"},
		{"negative procs", []Option{WithDistributed(-2)}, "WithDistributed"},
		{"with streaming", []Option{WithDistributed(2), WithStreaming()}, "mutually exclusive"},
		{"with window", []Option{WithDistributed(2), WithWindow(7)}, "mutually exclusive"},
		{"with matrix workers", []Option{WithDistributed(2), WithMatrixWorkers(2)}, "both bound matrix concurrency"},
		{"worker binary without distributed", []Option{WithWorkerBinary("/bin/worker")}, "WithWorkerBinary without WithDistributed"},
		{"empty worker binary", []Option{WithDistributed(2), WithWorkerBinary("")}, "WithWorkerBinary"},
		{"memory budget without distributed", []Option{WithWorkerMemoryMB(512)}, "WithWorkerMemoryMB without WithDistributed"},
		{"zero memory budget", []Option{WithDistributed(2), WithWorkerMemoryMB(0)}, "WithWorkerMemoryMB"},
		{"batch replay", []Option{WithDistributed(2), WithInput("ds.jsonl.gz")}, "nothing left to measure"},
		{"composed spec", []Option{WithDistributed(2), WithScenarioSpec(ScenarioSpec{Name: "composed"})}, "cannot cross the worker process boundary"},
	}
	for _, tc := range cases {
		_, err := New(tc.opts...)
		if err == nil {
			t.Errorf("%s: New accepted invalid options", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// --- Byte identity ----------------------------------------------------------

// compareBatchResults asserts the public outcome of two batch runs is
// identical: identifications, summary, censor enrichment, leakage, churn
// and the ground-truth evaluation. Raw Pipelines are deliberately out of
// scope — a distributed dataset crosses a JSON round trip, which may
// normalize time.Time representations without changing any derived value.
func compareBatchResults(t *testing.T, got, want *Result) {
	t.Helper()
	if gb, wb := identifiedBytes(got.Identified), identifiedBytes(want.Identified); !reflect.DeepEqual(gb, wb) {
		t.Errorf("identifications diverge:\n%s\nvs\n%s", gb, wb)
	}
	if !reflect.DeepEqual(got.Summary, want.Summary) {
		t.Errorf("summaries diverge: %+v vs %+v", got.Summary, want.Summary)
	}
	if !reflect.DeepEqual(got.Censors, want.Censors) {
		t.Error("censor enrichment diverges")
	}
	if !reflect.DeepEqual(got.Leakage, want.Leakage) {
		t.Errorf("leakage summaries diverge: %+v vs %+v", got.Leakage, want.Leakage)
	}
	if !reflect.DeepEqual(got.Churn, want.Churn) {
		t.Error("churn distributions diverge")
	}
	if !reflect.DeepEqual(got.Evaluation, want.Evaluation) {
		t.Errorf("ground-truth evaluations diverge: %+v vs %+v", got.Evaluation, want.Evaluation)
	}
}

// compareMatrixResults asserts two matrix runs agree on everything the
// matrix mode publishes: the aggregate and the per-cell statuses.
func compareMatrixResults(t *testing.T, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Matrix, want.Matrix) {
		t.Errorf("matrix aggregates diverge:\n%+v\nvs\n%+v", got.Matrix, want.Matrix)
	}
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Errorf("cell statuses diverge:\n%+v\nvs\n%+v", got.Cells, want.Cells)
	}
}

// TestDistributedMatchesInProcess is the acceptance gate for distributed
// execution: at every worker count, both the matrix path (cells as jobs)
// and the batch path (day ranges as jobs) must reproduce the in-process
// result exactly. `scripts/check-dist.sh` asserts the same property on
// churnlab's rendered stdout.
func TestDistributedMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process pipelines in -short mode")
	}
	for _, seed := range []uint64{1, 7} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := matrixConfig()
			base.Seed = seed
			matrixRef := runDirect(t, WithConfig(base), WithSeedSweep(3))
			batchRef := runDirect(t, WithConfig(base))
			for _, procs := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
					mres := runDirect(t, WithConfig(base), WithSeedSweep(3), WithDistributed(procs))
					if mres.Mode != ModeMatrix {
						t.Fatalf("mode %v, want matrix", mres.Mode)
					}
					compareMatrixResults(t, mres, matrixRef)
					for _, p := range mres.Pipelines {
						if p != nil {
							t.Fatal("distributed cells must not ship Pipelines back")
						}
					}

					bres := runDirect(t, WithConfig(base), WithDistributed(procs))
					if bres.Mode != ModeBatch {
						t.Fatalf("mode %v, want batch", bres.Mode)
					}
					compareBatchResults(t, bres, batchRef)
				})
			}
		})
	}
}

// TestDistributedDatasetSources covers the inline-envelope path: *Dataset
// cell sources are serialized into the job itself (no file handoff), and
// the distributed matrix over them matches the in-process one.
func TestDistributedDatasetSources(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process pipelines in -short mode")
	}
	base := matrixConfig()
	ds, err := runDirect(t, WithConfig(base)).Dataset()
	if err != nil {
		t.Fatal(err)
	}
	ref := runDirect(t, WithConfig(base), WithSources(ds, ds))
	res := runDirect(t, WithConfig(base), WithSources(ds, ds), WithDistributed(2))
	compareMatrixResults(t, res, ref)
	if res.Matrix.Runs != 2 || res.Matrix.Failed != 0 {
		t.Fatalf("runs=%d failed=%d, want 2/0", res.Matrix.Runs, res.Matrix.Failed)
	}
}

// TestDistributedForwardsWorkerEvents checks live observer progress: cell
// events emitted inside a worker process arrive at the coordinator's
// observers re-tagged with the cell index, and every settled cell emits a
// StageCell event exactly as the in-process matrix does.
func TestDistributedForwardsWorkerEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process pipelines in -short mode")
	}
	perCell := map[int]int{}
	cellsDone := map[int]bool{}
	exp, err := New(WithConfig(matrixConfig()), WithSeedSweep(2), WithDistributed(2),
		WithObserver(func(ev Event) {
			if ev.Cell < 0 {
				t.Errorf("distributed matrix event without a cell index: %+v", ev)
				return
			}
			if ev.Stage == StageCell {
				cellsDone[ev.Cell] = true
				return
			}
			perCell[ev.Cell]++
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < 2; cell++ {
		if !cellsDone[cell] {
			t.Errorf("cell %d never emitted StageCell", cell)
		}
		if perCell[cell] == 0 {
			t.Errorf("cell %d forwarded no worker progress events", cell)
		}
	}
}

// --- Fault injection --------------------------------------------------------

// workerBinary resolves this test binary for WithWorkerBinary.
func workerBinary(t *testing.T) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// TestDistributedWorkerCrashRecovers kills a worker mid-cell and asserts
// the retry covers for it: the run succeeds, and the partial results of
// the crashed attempt never corrupt the merged output — it stays identical
// to the in-process run. procs=1 keeps the job assignment deterministic.
func TestDistributedWorkerCrashRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process pipelines in -short mode")
	}
	base := matrixConfig()

	t.Run("matrix", func(t *testing.T) {
		sentinel := filepath.Join(t.TempDir(), "crashed")
		ref := runDirect(t, WithConfig(base), WithSeedSweep(2))
		res := runDirect(t, WithConfig(base), WithSeedSweep(2), WithDistributed(1),
			WithWorkerBinary(workerBinary(t), crashyWorkerArg, sentinel))
		if _, err := os.Stat(sentinel); err != nil {
			t.Fatal("the worker never crashed; fault injection is broken")
		}
		compareMatrixResults(t, res, ref)
		if res.Matrix.Failed != 0 {
			t.Fatalf("%d cells failed after a recovered crash", res.Matrix.Failed)
		}
	})

	t.Run("batch day shards", func(t *testing.T) {
		sentinel := filepath.Join(t.TempDir(), "crashed")
		ref := runDirect(t, WithConfig(base))
		res := runDirect(t, WithConfig(base), WithDistributed(2),
			WithWorkerBinary(workerBinary(t), crashyWorkerArg, sentinel))
		if _, err := os.Stat(sentinel); err != nil {
			t.Fatal("the worker never crashed; fault injection is broken")
		}
		compareBatchResults(t, res, ref)
	})
}

// TestDistributedWorkerCrashSurfacesTypedError drives a worker that
// crashes on every attempt: after the single retry the failure must
// surface as a typed error — never a hang, never a corrupted aggregate.
func TestDistributedWorkerCrashSurfacesTypedError(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process pipelines in -short mode")
	}
	base := matrixConfig()

	t.Run("matrix cell error", func(t *testing.T) {
		res := runDirect(t, WithConfig(base), WithSeedSweep(2), WithDistributed(1),
			WithWorkerBinary(workerBinary(t), crashyWorkerArg, "-"))
		if res.Matrix.Runs != 0 || res.Matrix.Failed != 2 {
			t.Fatalf("runs=%d failed=%d, want 0/2", res.Matrix.Runs, res.Matrix.Failed)
		}
		if res.Matrix.TotalCNFs != 0 || len(res.Matrix.Censors) != 0 {
			t.Fatalf("failed cells leaked partial results into the aggregate: %+v", res.Matrix)
		}
		for _, cs := range res.Cells {
			var ce *CellError
			if !errors.As(cs.Err, &ce) || ce.Cell != cs.Index {
				t.Fatalf("cell %d error %v is not its typed *CellError", cs.Index, cs.Err)
			}
			var we *distrib.WorkerError
			if !errors.As(cs.Err, &we) {
				t.Fatalf("cell %d error %v hides the transport *WorkerError", cs.Index, cs.Err)
			}
			if we.Attempts != 2 {
				t.Errorf("cell %d settled after %d attempts, want 2 (one retry)", cs.Index, we.Attempts)
			}
			if !strings.Contains(we.Stderr, "simulated crash") {
				t.Errorf("cell %d WorkerError dropped the stderr tail: %q", cs.Index, we.Stderr)
			}
		}
	})

	t.Run("batch run error", func(t *testing.T) {
		exp, err := New(WithConfig(base), WithDistributed(1),
			WithWorkerBinary(workerBinary(t), crashyWorkerArg, "-"))
		if err != nil {
			t.Fatal(err)
		}
		_, err = exp.Run(context.Background())
		var we *distrib.WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("batch run error %v is not a typed *WorkerError", err)
		}
		if we.Attempts != 2 {
			t.Errorf("settled after %d attempts, want 2", we.Attempts)
		}
	})
}

// TestDistributedCancellation extends the prompt-cancellation guarantee to
// worker pools: canceling the context mid-run kills the subprocesses and
// Run returns context.Canceled without leaking goroutines.
func TestDistributedCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process pipelines in -short mode")
	}
	t.Run("matrix", func(t *testing.T) {
		runCanceled(t, StageCell, WithConfig(matrixConfig()), WithSeedSweep(4), WithDistributed(2))
	})
	t.Run("batch", func(t *testing.T) {
		runCanceled(t, StageMeasure, WithConfig(matrixConfig()), WithDistributed(2))
	})
}
