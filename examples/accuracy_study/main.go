// Accuracy study: grade the localization against ground truth — the
// evaluation the paper's authors could not perform, because on real
// traffic nobody knows who actually censors.
//
// The study runs the three structural presets that stress path behavior
// in different ways — routing-shift (censors fixed, BGP waves move the
// paths), ecmp-multipath (repeats of one flow hash onto different
// load-balanced paths) and chokepoint (censors pinned at the
// highest-betweenness border ASes) — at one seed, and compares their
// precision/recall/F1, leakage profile and candidate-set reduction
// side by side. For the chokepoint world it also prints the structural
// candidate ranking: which border ASes a deployment should watch, and
// whether the tomography caught the ones that censor.
//
// Everything comes from the public surface — Result.Evaluation,
// Result.Truth and Result.ChokePoints — no churntomo/internal imports.
//
//	go run ./examples/accuracy_study
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"churntomo"
)

func main() {
	presets := []string{"routing-shift", "ecmp-multipath", "chokepoint"}

	fmt.Printf("%-16s %6s %6s %6s %9s %8s %7s %10s\n",
		"preset", "prec", "rec", "f1", "ex-rec", "fp-leak", "multi", "reduction")

	var chokeRes *churntomo.Result
	for _, name := range presets {
		exp, err := churntomo.New(
			churntomo.WithScale(churntomo.ScaleSmall),
			churntomo.WithScenario(name),
			churntomo.WithDays(60), // accuracy needs corroboration; give the CNFs time to accrue
			churntomo.WithObserver(churntomo.TextObserver(os.Stderr)),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		ev := res.Evaluation // every synthesized run grades itself
		fmt.Printf("%-16s %5.1f%% %5.1f%% %6.3f %8.1f%% %4d/%-3d %7d %9.1f%%\n",
			name, 100*ev.Precision, 100*ev.Recall, ev.F1,
			100*ev.ExercisedRecall, ev.LeakageFPs, ev.FP,
			ev.MultipleCNFs, 100*ev.CandidateReduction)
		if name == "chokepoint" {
			chokeRes = res
		}
	}

	// The chokepoint world placed its censors at the highest-betweenness
	// border ASes — exactly the ranking ChokePoints reproduces from the
	// topology alone. Cross-reference: did the tomography catch them?
	fmt.Println("\nchokepoint world: top border ASes by betweenness centrality")
	fmt.Printf("  %-9s %-22s %-8s %6s %7s %11s\n",
		"AS", "Name", "Country", "score", "censor", "identified")
	for _, cp := range chokeRes.ChokePoints(8) {
		fmt.Printf("  %-9v %-22s %-8s %6.3f %7v %11v\n",
			cp.ASN, cp.Name, cp.Country, cp.Score, cp.TrueCensor, cp.Identified)
	}

	// The raw ground truth is available too, for custom scoring: the full
	// registry, the censors that fired, and the ASes on censored paths.
	truth := chokeRes.Truth()
	fmt.Printf("\nground truth: %d censors, %d exercised, %d ASes on censored paths\n",
		len(truth.Censors), len(truth.Exercised), len(truth.OnCensoredPath))
}
