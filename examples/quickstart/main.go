// Quickstart: run the full churn-tomography pipeline on a small synthetic
// Internet and print which ASes were localized as censors, compared against
// the scenario's ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"churntomo"
	"churntomo/internal/topology"
)

func main() {
	cfg := churntomo.SmallConfig()
	cfg.Progress = os.Stderr

	p, err := churntomo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmeasurements: %d, usable CNFs: %d\n\n",
		p.Dataset.Stats.Measurements, len(p.Outcomes))

	var asns []topology.ASN
	for asn := range p.Identified {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	fmt.Println("localized censoring ASes:")
	for _, asn := range asns {
		c := p.Identified[asn]
		as, _ := p.Graph.ByASN(asn)
		truth := "SPURIOUS (noise artifact)"
		if _, ok := p.Censors.Policy(asn); ok {
			truth = "confirmed by ground truth"
		}
		fmt.Printf("  %-9v %-20s %s  kinds=%-14v via %d CNFs  [%s]\n",
			asn, as.Name, as.Country, c.Kinds, c.CNFs, truth)
	}
	fmt.Printf("\ncensors leaking across ASes: %d, across countries: %d\n",
		p.Leakage.LeakToOtherASes(), p.Leakage.LeakToOtherCountries())
}
