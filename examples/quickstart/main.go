// Quickstart: run the full churn-tomography pipeline on a small synthetic
// Internet and print which ASes were localized as censors, compared against
// the scenario's ground truth.
//
// The example consumes only churntomo's public Experiment API — no
// churntomo/internal imports (enforced by `make api-check`) — exactly as
// an external module would.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"churntomo"
)

func main() {
	exp, err := churntomo.New(
		churntomo.WithScale(churntomo.ScaleSmall),
		churntomo.WithObserver(churntomo.TextObserver(os.Stderr)),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmeasurements: %d, usable CNFs: %d\n\n",
		res.Summary.Measurements, res.Summary.CNFs)

	fmt.Println("localized censoring ASes:")
	for _, c := range res.Censors {
		truth := "SPURIOUS (noise artifact)"
		if c.TrueCensor {
			truth = "confirmed by ground truth"
		}
		fmt.Printf("  %-9v %-20s %s  kinds=%-14v via %d CNFs  [%s]\n",
			c.ASN, c.Name, c.Country, c.Kinds, c.CNFs, truth)
	}
	fmt.Printf("\ncensors leaking across ASes: %d, across countries: %d\n",
		res.Leakage.LeakToOtherASes, res.Leakage.LeakToOtherCountries)
}
