// DNS injection study: localize the ASes that inject spoofed DNS answers
// (paper §2.1, "DNS anomalies"). The platform's dual-response detector
// flags lookups where an on-path injector races the real resolver; this
// example runs the pipeline, filters the localization to censors caught by
// that detector, and watches — through the typed event stream — how the
// identifications emerge window by window as path churn accrues.
//
// Only the public Experiment/Event/Result API is used — no
// churntomo/internal imports.
//
//	go run ./examples/dns_injection
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"churntomo"
)

func main() {
	// Stream a small scenario in two-week windows and log each window's
	// progress from the event stream.
	exp, err := churntomo.New(
		churntomo.WithScale(churntomo.ScaleSmall),
		churntomo.WithSeed(2), // a substrate whose injector gets caught at this scale
		churntomo.WithDays(90),
		churntomo.WithWindow(0), // cumulative: the final window equals batch
		churntomo.WithStride(14),
		churntomo.WithObserver(func(ev churntomo.Event) {
			if ev.Stage == churntomo.StageWindow {
				fmt.Printf("window %d (days %d..%d): %d CNFs, %d censors\n",
					ev.Window, ev.Stats.StartDay, ev.Stats.EndDay,
					ev.Stats.CNFs, ev.Stats.Censors)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nASes identified via injected DNS responses (dual replies):")
	dnsCensors := 0
	for _, c := range res.Censors {
		if !c.Kinds.Has(churntomo.AnomalyDNS) {
			continue
		}
		dnsCensors++
		// On-path injection is hard to pin: the spoofed packets can
		// implicate a transit AS near the real injector, so ground truth
		// may not confirm the exact AS.
		truth := "not in ground-truth registry"
		if c.TrueCensor {
			truth = "confirmed"
		}
		urls := c.URLs
		if len(urls) > 3 {
			urls = urls[:3]
		}
		fmt.Printf("  %-9v %-20s %s  %d CNFs [%s]  e.g. %s\n",
			c.ASN, c.Name, c.Country, c.CNFs, truth, strings.Join(urls, ", "))
	}
	if dnsCensors == 0 {
		fmt.Println("  (none at this scale/seed — DNS injection is the rarest anomaly)")
	}

	fmt.Println("\nall identified censors by detector:")
	for _, kind := range []churntomo.AnomalyKind{
		churntomo.AnomalyDNS, churntomo.AnomalyRST, churntomo.AnomalySEQ,
		churntomo.AnomalyTTL, churntomo.AnomalyBlock,
	} {
		n := 0
		for _, c := range res.Censors {
			if c.Kinds.Has(kind) {
				n++
			}
		}
		fmt.Printf("  %-6v %d censors\n", kind, n)
	}

	// The convergence report answers "how long until the DNS injectors
	// were pinned down?" — the paper's motivation for accumulating churn.
	for _, conv := range res.Convergence {
		for _, c := range res.Censors {
			if c.ASN == conv.ASN && c.Kinds.Has(churntomo.AnomalyDNS) && conv.StableFrom >= 0 {
				fmt.Printf("\n%v stabilized from window %d of %d (first seen in window %d)\n",
					conv.ASN, conv.StableFrom, len(res.Windows), conv.FirstWindow)
			}
		}
	}
}
