// DNS injection walkthrough: a packet-level demonstration of how the
// platform detects censorship — simulate one DNS lookup with a GFW-style
// on-path injector racing the real resolver, dump the capture, and run the
// dual-response detector (paper §2.1, "DNS anomalies").
//
//	go run ./examples/dns_injection
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"churntomo/internal/detect"
	"churntomo/internal/dnssim"
	"churntomo/internal/netaddr"
	"churntomo/internal/netsim"
)

func main() {
	client := netaddr.MustParseIP("20.9.0.77")
	resolver := netaddr.MustParseIP("8.8.8.8")
	rng := rand.New(rand.NewPCG(7, 7))

	params := dnssim.Params{
		At:           time.Date(2016, 5, 1, 12, 0, 0, 0, time.UTC),
		ClientIP:     client,
		ResolverIP:   resolver,
		Host:         "voice-214.freedom52.org",
		QueryID:      0x4242,
		ResolverDist: 11, // hops to the anycast resolver
		TrueAnswer:   netaddr.MustParseIP("31.4.0.9"),
		ResolverTTL:  netsim.InitTTLLinux,
	}

	fmt.Println("--- clean lookup ---")
	clean := dnssim.Simulate(params, nil, dnssim.Noise{}, rng)
	dump(&clean, client)
	fmt.Printf("detector verdict: injection=%v\n\n", detect.DNSDual(&clean, client))

	fmt.Println("--- lookup through an injecting AS at hop 4 ---")
	injector := []dnssim.Injector{{
		ASN:     4134, // the CHINANET role
		Dist:    4,
		Answer:  netaddr.MustParseIP("10.16.38.1"), // sinkhole
		InitTTL: netsim.InitTTLMax,
	}}
	censored := dnssim.Simulate(params, injector, dnssim.Noise{}, rng)
	dump(&censored, client)
	fmt.Printf("detector verdict: injection=%v\n", detect.DNSDual(&censored, client))
	fmt.Println("\nnote the TTL fingerprint: the spoofed answer left at TTL 255 from 4")
	fmt.Println("hops away, while the resolver's answer crossed all 11 hops from 64.")
}

func dump(c *netsim.Capture, client netaddr.IP) {
	for _, p := range c.Packets {
		dir := "->"
		if p.Dst == client {
			dir = "<-"
		}
		m, err := netsim.UnmarshalDNS(p.Payload)
		if err != nil {
			continue
		}
		kind := "query "
		answer := ""
		if m.Response {
			kind = "answer"
			answer = " A=" + m.Answer.String()
		}
		fmt.Printf("  %s %s id=%#x ttl=%-3d t=+%-6s %s%s\n",
			dir, kind, m.ID, p.TTL,
			p.At.Sub(c.Packets[0].At).Round(time.Millisecond), m.Host, answer)
	}
}
