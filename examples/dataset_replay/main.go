// Dataset replay: the export→import→replay workflow behind churnlab
// -input, through the public Source API. The expensive half — world
// synthesis and measurement — runs once and is exported to the versioned
// on-disk dataset format; the analysis half then re-runs twice from the
// file alone (a batch localization and a streaming replay through the
// incremental engine) without regenerating anything, and the example
// checks both reproduce the original identifications exactly.
//
// The example consumes only churntomo's public Experiment/Source API — no
// churntomo/internal imports (enforced by `make api-check`) — exactly as
// an external module ingesting recorded measurements would.
//
//	go run ./examples/dataset_replay
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"churntomo"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "churntomo-dataset-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "measurements.jsonl.gz")

	// --- Generate once: synthesize a world, measure it, localize, export.
	cfg := churntomo.SmallConfig()
	cfg.Days = 30
	direct, err := run(ctx, churntomo.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	if err := direct.Export(path); err != nil {
		log.Fatal(err)
	}
	ds, err := churntomo.LoadDataset(path)
	if err != nil {
		log.Fatal(err)
	}
	records := 0
	for _, day := range ds.Days {
		records += len(day)
	}
	fmt.Printf("exported %d records over %d days (%d vantages, %d targets) to %s\n",
		records, ds.Info.Days, len(ds.Info.Vantages), len(ds.Info.Targets), filepath.Base(path))

	// --- Re-analyze from the file: batch, then a streaming replay.
	replayed, err := run(ctx, churntomo.WithInput(path))
	if err != nil {
		log.Fatal(err)
	}
	streamed, err := run(ctx, churntomo.WithInput(path), churntomo.WithWindow(10), churntomo.WithStride(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %-20s %-8s %s\n", "censor", "name", "direct", "replayed/streamed (CNFs)")
	for i, c := range direct.Censors {
		rc, sc := "-", "-"
		if i < len(replayed.Censors) && replayed.Censors[i].ASN == c.ASN {
			rc = fmt.Sprint(replayed.Censors[i].CNFs)
		}
		if final := streamed.FinalWindow(); final != nil {
			if ic, ok := final.Identified[c.ASN]; ok {
				sc = fmt.Sprint(ic.CNFs)
			}
		}
		fmt.Printf("%-10v %-20s %-8d %s / %s\n", c.ASN, c.Name, c.CNFs, rc, sc)
	}

	if !sameCensors(direct, replayed) {
		log.Fatal("batch replay diverged from the direct run")
	}
	fmt.Printf("\nbatch replay identical to the direct run; streaming replay emitted %d windows\n",
		len(streamed.Windows))
}

// run builds and executes one experiment.
func run(ctx context.Context, opts ...churntomo.Option) (*churntomo.Result, error) {
	exp, err := churntomo.New(opts...)
	if err != nil {
		return nil, err
	}
	return exp.Run(ctx)
}

// sameCensors compares two runs' identification sets with their
// corroboration counts.
func sameCensors(a, b *churntomo.Result) bool {
	if len(a.Identified) != len(b.Identified) {
		return false
	}
	for asn, c := range a.Identified {
		o, ok := b.Identified[asn]
		if !ok || o.CNFs != c.CNFs || o.Kinds != c.Kinds {
			return false
		}
	}
	return true
}
