// Churn analysis: measure network-level path churn (paper Figure 3), show
// it does not depend on the destination's CAIDA class, and run the no-churn
// ablation (Figure 4) demonstrating that churn is what makes the tomography
// solvable.
//
// The churn distributions, the per-class split and the ablation all come
// from the public Result (the ablation via WithChurnAblation) — no
// churntomo/internal imports. A second run under the bgp-storm scenario
// preset shows the same effect from the other direction: more churn, more
// measurement diversity, more unique solutions.
//
//	go run ./examples/churn_analysis
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"churntomo"
)

func main() {
	exp, err := churntomo.New(
		churntomo.WithScale(churntomo.ScaleSmall),
		churntomo.WithDays(90),
		churntomo.WithChurnAblation(),
		churntomo.WithObserver(churntomo.TextObserver(os.Stderr)),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndistinct AS-level paths per (vantage, URL) pair (paper Figure 3):")
	fmt.Printf("  %-8s %8s %8s %8s %8s %9s\n", "period", "1 path", "2", "3-4", "5+", "changed")
	for _, d := range res.Churn {
		fmt.Printf("  %-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.1f%%\n",
			d.Period,
			100*d.Buckets[1], 100*d.Buckets[2],
			100*(d.Buckets[3]+d.Buckets[4]), 100*d.Buckets[5],
			100*d.ChangedFrac)
	}

	fmt.Println("\nchurn by destination class (paper: no significant difference):")
	for _, c := range res.ChurnByClass {
		fmt.Printf("  %-12s changed %.1f%% (n=%d)\n", c.Class, 100*c.ChangedFrac, c.Samples)
	}

	// Ablation: with churn vs without (first observed path only).
	fmt.Println("\nsolvability with churn vs without (paper Figure 4):")
	total := float64(res.Summary.CNFs)
	if total == 0 {
		total = 1
	}
	fmt.Printf("  %-18s unique %.1f%%, none %.1f%%, multiple %.1f%%\n",
		"with churn:",
		100*float64(res.Summary.UniqueCNFs)/total,
		100*float64(res.Summary.UnsatCNFs)/total,
		100*float64(res.Summary.MultipleCNFs)/total)
	for _, r := range res.NoChurn {
		fmt.Printf("  no churn (%s): 5+ solutions %.1f%%, unique %.1f%%\n",
			r.Period, 100*r.Frac[5], 100*r.Frac[1])
	}

	// The ablation removes churn; the bgp-storm scenario preset adds it.
	// Same dimensions, same seed, a different ChurnProcess behind the
	// preset registry — the solvability shift is the paper's Figure 4
	// effect run forward.
	storm, err := churntomo.New(
		churntomo.WithScale(churntomo.ScaleSmall),
		churntomo.WithScenario("bgp-storm"),
		churntomo.WithDays(90),
		churntomo.WithObserver(churntomo.TextObserver(os.Stderr)),
	)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := storm.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	stotal := float64(sres.Summary.CNFs)
	if stotal == 0 {
		stotal = 1
	}
	fmt.Printf("\nunder %q churn (same seed and dimensions):\n", sres.Summary.Scenario)
	fmt.Printf("  monthly changed-path fraction %.1f%% (baseline %.1f%%)\n",
		100*monthlyChanged(sres), 100*monthlyChanged(res))
	fmt.Printf("  unique %.1f%%, none %.1f%%, multiple %.1f%% over %d CNFs\n",
		100*float64(sres.Summary.UniqueCNFs)/stotal,
		100*float64(sres.Summary.UnsatCNFs)/stotal,
		100*float64(sres.Summary.MultipleCNFs)/stotal,
		sres.Summary.CNFs)
}

// monthlyChanged extracts the month-granularity changed-path fraction.
func monthlyChanged(res *churntomo.Result) float64 {
	for _, d := range res.Churn {
		if d.Period == "month" {
			return d.ChangedFrac
		}
	}
	return 0
}
