// Churn analysis: measure network-level path churn (paper Figure 3), show
// it does not depend on the destination's CAIDA class, and run the no-churn
// ablation (Figure 4) demonstrating that churn is what makes the tomography
// solvable.
//
//	go run ./examples/churn_analysis
package main

import (
	"fmt"
	"log"
	"os"

	"churntomo"
	"churntomo/internal/analysis"
	"churntomo/internal/churn"
	"churntomo/internal/report"
	"churntomo/internal/sat"
	"churntomo/internal/timeslice"
	"churntomo/internal/tomo"
)

func main() {
	cfg := churntomo.SmallConfig()
	cfg.Days = 90
	cfg.Progress = os.Stderr

	p, err := churntomo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndistinct AS-level paths per (vantage, URL) pair (paper Figure 3):")
	rows := [][]string{}
	for _, d := range analysis.Figure3(p.Dataset.Records) {
		rows = append(rows, []string{
			d.Gran.String(),
			fmt.Sprintf("%.1f%%", 100*d.Buckets[1]),
			fmt.Sprintf("%.1f%%", 100*d.Buckets[2]),
			fmt.Sprintf("%.1f%%", 100*(d.Buckets[3]+d.Buckets[4])),
			fmt.Sprintf("%.1f%%", 100*d.Buckets[churn.MaxBucket]),
			fmt.Sprintf("%.1f%%", 100*d.ChangedFrac()),
		})
	}
	fmt.Print(report.Table([]string{"period", "1 path", "2", "3-4", "5+", "changed"}, rows))

	fmt.Println("\nchurn by destination class (paper: no significant difference):")
	byClass := churn.ByDestinationClass(p.Dataset.Records, p.Graph, timeslice.Month)
	for _, class := range churn.Classes(byClass) {
		fmt.Printf("  %-12s changed %.1f%% (n=%d)\n",
			class, 100*byClass[class].ChangedFrac(), byClass[class].Samples)
	}

	// Ablation: with churn vs without (first observed path only).
	fmt.Println("\nsolvability with churn vs without (paper Figure 4):")
	withChurn := classCounts(p.Outcomes)
	noChurnRows := analysis.Figure4(p.Dataset.Records, 0)
	fmt.Printf("  %-18s unique %.1f%%, none %.1f%%, multiple %.1f%%\n",
		"with churn:", 100*withChurn[sat.Unique], 100*withChurn[sat.Unsat], 100*withChurn[sat.Multiple])
	for _, r := range noChurnRows {
		fmt.Printf("  no churn (%s): 5+ solutions %.1f%%, unique %.1f%%\n",
			r.Gran, 100*r.Frac[5], 100*r.Frac[1])
	}
}

func classCounts(outcomes []tomo.Outcome) [3]float64 {
	var frac [3]float64
	if len(outcomes) == 0 {
		return frac
	}
	for _, o := range outcomes {
		frac[o.Class]++
	}
	for i := range frac {
		frac[i] /= float64(len(outcomes))
	}
	return frac
}
