// Leakage study: reproduce the paper's §3.3 analysis — which censoring ASes
// leak their policies to users in other networks and countries (Table 3
// and Figure 5), and how regional that leakage is.
//
// The study runs under the transit-leakage scenario preset: censors sit at
// transit/tier-1 ASes over a topology where stubs often buy transit
// abroad, the structural combination the paper identifies as the source of
// cross-border leakage.
//
// Everything comes from the public Result.Leakage summary: ranked leakers
// with their resolved victims, country-level flow edges with display
// names, and the regional fraction — no churntomo/internal imports.
//
//	go run ./examples/leakage_study
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"churntomo"
)

func main() {
	exp, err := churntomo.New(
		churntomo.WithScale(churntomo.ScaleSmall),
		churntomo.WithScenario("transit-leakage"), // the leakage-prone world
		churntomo.WithDays(120),                   // leakage needs unique solutions; give churn time to accrue
		churntomo.WithObserver(churntomo.TextObserver(os.Stderr)),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	leak := res.Leakage

	fmt.Printf("\ncensors identified: %d; leaking to other ASes: %d; to other countries: %d\n\n",
		len(res.Censors), leak.LeakToOtherASes, leak.LeakToOtherCountries)

	fmt.Println("top leakers (paper Table 3):")
	fmt.Printf("  %-9s %-20s %-8s %10s %15s\n", "AS", "Name", "Country", "Leaks(AS)", "Leaks(Country)")
	for i, l := range leak.Leakers {
		if i == 8 {
			break
		}
		fmt.Printf("  %-9v %-20s %-8s %10d %15d\n",
			l.ASN, l.Name, l.Country, l.LeakedASes, l.LeakedCountries)
	}

	fmt.Println("\ncountry-level flow (paper Figure 5):")
	for _, e := range leak.Flow {
		fmt.Printf("  %-20s -> %-20s weight %d\n", e.FromName, e.ToName, e.Weight)
	}
	fmt.Printf("\nregional fraction of non-CN leakage: %.0f%% (paper: mostly regional outside China)\n",
		100*leak.RegionalFracNonCN)

	// Inspect one leak in detail: the top leaker's victims.
	if len(leak.Leakers) > 0 {
		top := leak.Leakers[0]
		fmt.Printf("\nvictims of %v (%s):\n", top.ASN, top.Country)
		for _, v := range top.Victims {
			fmt.Printf("  %-9v %-20s %s\n", v.ASN, v.Name, v.Country)
		}
	}
}
