// Leakage study: reproduce the paper's §3.3 analysis — which censoring ASes
// leak their policies to users in other networks and countries (Tables 3
// and Figure 5), and how regional that leakage is.
//
//	go run ./examples/leakage_study
package main

import (
	"fmt"
	"log"
	"os"

	"churntomo"
	"churntomo/internal/leakage"
	"churntomo/internal/report"
	"churntomo/internal/topology"
)

func main() {
	cfg := churntomo.SmallConfig()
	cfg.Days = 120 // leakage needs unique solutions; give churn time to accrue
	cfg.Progress = os.Stderr

	p, err := churntomo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncensors identified: %d; leaking to other ASes: %d; to other countries: %d\n\n",
		len(p.Identified), p.Leakage.LeakToOtherASes(), p.Leakage.LeakToOtherCountries())

	fmt.Println("top leakers (paper Table 3):")
	rows := [][]string{}
	for _, l := range p.Leakage.TopLeakers(p.Graph, 8) {
		rows = append(rows, []string{
			l.ASN.String(), l.Name, l.Country,
			fmt.Sprint(l.LeakedASes), fmt.Sprint(l.LeakedCountries),
		})
	}
	fmt.Print(report.Table([]string{"AS", "Name", "Country", "Leaks(AS)", "Leaks(Country)"}, rows))

	fmt.Println("\ncountry-level flow (paper Figure 5):")
	for _, e := range p.Leakage.FlowEdges() {
		from, _ := topology.CountryByCode(e.Edge.From)
		to, _ := topology.CountryByCode(e.Edge.To)
		fmt.Printf("  %-20s -> %-20s weight %d\n", from.Name, to.Name, e.Weight)
	}
	fmt.Printf("\nregional fraction of non-CN leakage: %.0f%% (paper: mostly regional outside China)\n",
		100*p.Leakage.RegionalFrac(p.Graph, "CN"))

	// Inspect one leak in detail.
	for _, l := range p.Leakage.TopLeakers(p.Graph, 1) {
		detail := p.Leakage.ByCensor[l.ASN]
		fmt.Printf("\nvictims of %v (%s):\n", l.ASN, l.Country)
		for victim := range detail.VictimASes {
			as, _ := p.Graph.ByASN(victim)
			fmt.Printf("  %-9v %-20s %s\n", victim, as.Name, as.Country)
		}
	}
	_ = leakage.FlowEdge{}
}
