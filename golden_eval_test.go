package churntomo

// The golden expected-outcome suite: every preset in the catalog, batch
// and streaming, scored against ground truth and pinned to a checked-in
// expectation (testdata/golden_eval.json). The identified-censor sets
// are exact — the pipeline is deterministic at a pinned seed — and the
// precision/recall bounds are floors, so the suite fails when a change
// degrades localization accuracy anywhere in the catalog, not only when
// it crashes. Regenerate after an intentional behavior change with
//
//	go test -run TestGoldenEvaluation -update-golden .
//
// and review the diff like any other code change.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_eval.json with the outcomes observed in this run")

const goldenEvalPath = "testdata/golden_eval.json"

// goldenConfig is the pinned-world configuration the expectations are
// recorded under: large enough that every preset identifies at least one
// censor, small enough that the 10x2 suite stays in test-suite budget.
func goldenConfig() Config {
	return Config{
		Seed: 1, ASes: 140, Countries: 16,
		Vantages: 12, URLs: 16, Days: 30, URLsPerDay: 6, RepeatsPerDay: 2,
	}
}

// goldenOutcome is one mode's pinned expectation.
type goldenOutcome struct {
	// Censors is the exact identified set at the pinned seed, ascending.
	Censors []uint32 `json:"censors"`
	// TrueCensors sizes the ground-truth registry the rates are against.
	TrueCensors int `json:"trueCensors"`
	// MinPrecision/MinRecall floor the evaluation; the recorded values
	// are the ones observed when the expectation was last regenerated.
	MinPrecision float64 `json:"minPrecision"`
	MinRecall    float64 `json:"minRecall"`
}

// goldenEntry is one preset's expectation across both execution modes.
type goldenEntry struct {
	Preset    string        `json:"preset"`
	Batch     goldenOutcome `json:"batch"`
	Streaming goldenOutcome `json:"streaming"`
}

// observeGolden runs one preset in one mode and reduces the result to a
// goldenOutcome.
func observeGolden(t *testing.T, preset string, streaming bool) (goldenOutcome, *Result) {
	t.Helper()
	opts := []Option{WithConfig(goldenConfig()), WithScenario(preset)}
	if streaming {
		// Cumulative window, 5-day stride: the final window covers the
		// whole run, so the set must equal batch's.
		opts = append(opts, WithWindow(0), WithStride(5))
	}
	exp, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ev := res.Evaluation
	if ev == nil {
		t.Fatal("Result.Evaluation is nil for a synthesized run")
	}
	out := goldenOutcome{
		TrueCensors:  ev.TrueCensors,
		MinPrecision: ev.Precision,
		MinRecall:    ev.Recall,
		Censors:      []uint32{},
	}
	for _, c := range res.Censors {
		out.Censors = append(out.Censors, uint32(c.ASN))
	}
	return out, res
}

// checkGoldenOutcome asserts an observation against its expectation.
func checkGoldenOutcome(t *testing.T, mode string, got goldenOutcome, want goldenOutcome, res *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Censors, want.Censors) {
		t.Errorf("%s: identified censors = %v, want %v (regenerate with -update-golden if intentional)",
			mode, got.Censors, want.Censors)
	}
	if got.TrueCensors != want.TrueCensors {
		t.Errorf("%s: ground-truth registry has %d censors, expectation recorded %d",
			mode, got.TrueCensors, want.TrueCensors)
	}
	const eps = 1e-9
	ev := res.Evaluation
	if ev.Precision < want.MinPrecision-eps {
		t.Errorf("%s: precision %v below golden floor %v", mode, ev.Precision, want.MinPrecision)
	}
	if ev.Recall < want.MinRecall-eps {
		t.Errorf("%s: recall %v below golden floor %v", mode, ev.Recall, want.MinRecall)
	}
	for name, v := range map[string]float64{
		"precision": ev.Precision, "recall": ev.Recall, "f1": ev.F1,
		"exercisedRecall": ev.ExercisedRecall, "leakageRate": ev.LeakageRate,
		"candidateReduction": ev.CandidateReduction,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s: %s = %v outside [0, 1]", mode, name, v)
		}
	}
}

// TestGoldenEvaluation is the expected-outcome regression suite: every
// registered preset, batch and streaming, against the checked-in golden
// expectations.
func TestGoldenEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("20 end-to-end runs in -short mode")
	}
	want := map[string]goldenEntry{}
	if !*updateGolden {
		raw, err := os.ReadFile(goldenEvalPath)
		if err != nil {
			t.Fatalf("reading golden expectations (regenerate with -update-golden): %v", err)
		}
		var entries []goldenEntry
		if err := json.Unmarshal(raw, &entries); err != nil {
			t.Fatalf("parsing %s: %v", goldenEvalPath, err)
		}
		for _, e := range entries {
			want[e.Preset] = e
		}
	}

	var mu sync.Mutex
	observed := map[string]goldenEntry{}

	infos := Scenarios()
	t.Run("presets", func(t *testing.T) {
		for _, info := range infos {
			preset := info.Name
			t.Run(preset, func(t *testing.T) {
				t.Parallel()
				batch, bres := observeGolden(t, preset, false)
				streaming, sres := observeGolden(t, preset, true)

				// Mode-independence first: the cumulative replay's final
				// window must agree with batch regardless of expectations.
				if !reflect.DeepEqual(batch.Censors, streaming.Censors) {
					t.Errorf("streaming disagrees with batch: %v vs %v", streaming.Censors, batch.Censors)
				}
				if len(sres.Windows) == 0 || sres.Evaluation.Convergence == nil && len(sres.Censors) > 0 {
					t.Error("streaming run lacks window timeline or convergence days")
				}

				if *updateGolden {
					mu.Lock()
					observed[preset] = goldenEntry{Preset: preset, Batch: batch, Streaming: streaming}
					mu.Unlock()
					return
				}
				w, ok := want[preset]
				if !ok {
					t.Fatalf("preset %q has no golden expectation; regenerate with -update-golden", preset)
				}
				checkGoldenOutcome(t, "batch", batch, w.Batch, bres)
				checkGoldenOutcome(t, "streaming", streaming, w.Streaming, sres)
			})
		}
	})

	if *updateGolden {
		if t.Failed() {
			t.Fatal("not rewriting golden expectations from a failed run")
		}
		entries := make([]goldenEntry, 0, len(infos))
		for _, info := range infos {
			e, ok := observed[info.Name]
			if !ok {
				t.Fatalf("preset %q produced no observation", info.Name)
			}
			entries = append(entries, e)
		}
		raw, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenEvalPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenEvalPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenEvalPath, len(entries))
	}
}

// TestGoldenPaperBaselineAccuracy pins the headline claim on the paper's
// own scenario at the pinned seed: everything the tomography names is a
// true censor (precision exactly 1), and it finds a nonzero fraction of
// the exercised registry.
func TestGoldenPaperBaselineAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run in -short mode")
	}
	_, res := observeGolden(t, ScenarioBaseline, false)
	ev := res.Evaluation
	if ev.Precision != 1.0 {
		t.Errorf("paper-baseline precision = %v, want exactly 1.0 (false positives: %v)",
			ev.Precision, ev.FalsePositives)
	}
	if ev.TP == 0 {
		t.Error("paper-baseline identified no true censors at the pinned seed")
	}
	if ev.ExercisedRecall <= 0 {
		t.Errorf("paper-baseline exercised recall = %v, want > 0", ev.ExercisedRecall)
	}
	if ev.CandidateReduction <= 0 || ev.MultipleCNFs == 0 {
		t.Errorf("candidate reduction %v over %d ambiguous CNFs, want both positive",
			ev.CandidateReduction, ev.MultipleCNFs)
	}
}
