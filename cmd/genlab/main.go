// Command genlab generates a measurement dataset and exports it as JSON
// lines (one record per line) for offline analysis with external tools.
//
//	genlab [-scale small|default] [-seed N] [-truth] > records.jsonl
//
// Without -truth, ground-truth fields are stripped, producing exactly what
// a real platform would publish.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"churntomo"
	"churntomo/internal/anomaly"
	"churntomo/internal/traceroute"
)

// exportRecord is the JSON shape of one measurement.
type exportRecord struct {
	ID             int32    `json:"id"`
	Vantage        uint32   `json:"vantage_asn"`
	VantageCountry string   `json:"vantage_country"`
	URL            string   `json:"url"`
	Category       string   `json:"category"`
	At             string   `json:"at"`
	Anomalies      []string `json:"anomalies,omitempty"`
	ASPath         []uint32 `json:"as_path,omitempty"`
	Fail           string   `json:"path_fail,omitempty"`

	TruePath    []uint32 `json:"true_path,omitempty"`
	TrueCensors []uint32 `json:"true_censors,omitempty"`
}

func main() {
	scale := flag.String("scale", "small", "small or default")
	seed := flag.Uint64("seed", 1, "master seed")
	truth := flag.Bool("truth", false, "include ground-truth fields")
	flag.Parse()

	cfg := churntomo.SmallConfig()
	if *scale == "default" {
		cfg = churntomo.DefaultConfig()
	}
	cfg.Seed = *seed
	cfg.Progress = os.Stderr

	p, err := churntomo.Prepare(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genlab: %v\n", err)
		os.Exit(1)
	}
	p.Measure()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for i := range p.Dataset.Records {
		r := &p.Dataset.Records[i]
		out := exportRecord{
			ID:             r.ID,
			Vantage:        uint32(r.Vantage),
			VantageCountry: r.VantageCountry,
			URL:            r.URL,
			Category:       r.Category.String(),
			At:             r.At.Format("2006-01-02T15:04:05Z"),
		}
		for _, k := range anomaly.Kinds {
			if r.Anomalies.Has(k) {
				out.Anomalies = append(out.Anomalies, k.String())
			}
		}
		if r.Fail == traceroute.OK {
			for _, a := range r.ASPath {
				out.ASPath = append(out.ASPath, uint32(a))
			}
		} else {
			out.Fail = r.Fail.String()
		}
		if *truth {
			for _, a := range r.TruePath {
				out.TruePath = append(out.TruePath, uint32(a))
			}
			for _, act := range r.TrueActs {
				out.TrueCensors = append(out.TrueCensors, uint32(act.ASN))
			}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "genlab: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "genlab: wrote %d records\n", len(p.Dataset.Records))
}
