// Command genlab generates a measurement dataset. With -export it writes
// the versioned churntomo dataset format (gzipped JSONL with a
// self-describing header) that churnlab -input and churntomo.FileSource
// analyze without regenerating the world — the generation half of the
// export→import→replay workflow. Without -export it prints legacy JSON
// lines (one record per line) to stdout for offline analysis with
// external tools. It is also the scenario catalog browser: -list prints
// every registered world-construction preset, -describe explains one.
//
//	genlab -export ds.jsonl.gz [-scale small|default] [-scenario NAME] [-seed N]
//	genlab [-scale small|default] [-scenario NAME] [-seed N] [-truth] > records.jsonl
//	genlab -list
//	genlab -describe NAME
//
// Without -truth, ground-truth fields are stripped from the legacy stdout
// export, producing exactly what a real platform would publish (-export
// always records the world's ground truth so a re-import can validate
// identifications against it). -scenario selects which preset builds the
// world the platform measures (default paper-baseline).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"churntomo"
	"churntomo/internal/anomaly"
	"churntomo/internal/report"
	"churntomo/internal/traceroute"
)

// exportRecord is the JSON shape of one measurement.
type exportRecord struct {
	ID             int32    `json:"id"`
	Vantage        uint32   `json:"vantage_asn"`
	VantageCountry string   `json:"vantage_country"`
	URL            string   `json:"url"`
	Category       string   `json:"category"`
	At             string   `json:"at"`
	Anomalies      []string `json:"anomalies,omitempty"`
	ASPath         []uint32 `json:"as_path,omitempty"`
	Fail           string   `json:"path_fail,omitempty"`

	TruePath    []uint32 `json:"true_path,omitempty"`
	TrueCensors []uint32 `json:"true_censors,omitempty"`
}

// listScenarios prints the preset catalog.
func listScenarios() {
	rows := [][]string{}
	for _, info := range churntomo.Scenarios() {
		rows = append(rows, []string{info.Name, info.Description})
	}
	fmt.Print(report.Table([]string{"Scenario", "Models"}, rows))
	fmt.Println("\nrun `genlab -describe <name>` for the provider composition,")
	fmt.Println("`churnlab -scenario <name>` for a full evaluation under it.")
}

// describeScenario prints one preset's composition.
func describeScenario(name string) error {
	for _, info := range churntomo.Scenarios() {
		if info.Name != name {
			continue
		}
		fmt.Printf("%s — %s\n", info.Name, info.Description)
		fmt.Printf("echoes: %s\n\n", info.Echoes)
		fmt.Print(report.Table([]string{"Axis", "Provider"}, [][]string{
			{"topology", info.Topology},
			{"churn", info.Churn},
			{"censors", info.Censors},
			{"platform", info.Platform},
		}))
		return nil
	}
	// Reuse the library's unknown-name error for the known-names list.
	_, err := churntomo.ScenarioByName(name)
	return err
}

func main() {
	scale := flag.String("scale", "small", "small or default")
	scenarioName := flag.String("scenario", churntomo.ScenarioBaseline, "world-construction preset (see -list)")
	seed := flag.Uint64("seed", 1, "master seed")
	truth := flag.Bool("truth", false, "include ground-truth fields in the legacy stdout export")
	export := flag.String("export", "", "write the versioned dataset format to this path instead of legacy JSON lines on stdout")
	list := flag.Bool("list", false, "list registered scenario presets and exit")
	describe := flag.String("describe", "", "describe one scenario preset and exit")
	flag.Parse()

	if *list {
		listScenarios()
		return
	}
	if *describe != "" {
		if err := describeScenario(*describe); err != nil {
			fmt.Fprintf(os.Stderr, "genlab: %v\n", err)
			os.Exit(2)
		}
		return
	}

	cfg := churntomo.SmallConfig()
	if *scale == "default" {
		cfg = churntomo.DefaultConfig()
	}
	cfg.Seed = *seed
	cfg.Scenario = *scenarioName
	cfg.Progress = os.Stderr

	// genlab only needs the measured dataset — localization is churnlab's
	// job — so it runs the substrate and measurement stages through the
	// error-returning pipeline methods rather than a full Experiment.
	p, err := churntomo.Prepare(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genlab: %v\n", err)
		os.Exit(1)
	}
	if err := p.MeasureCtx(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "genlab: %v\n", err)
		os.Exit(1)
	}

	if *export != "" {
		if err := p.Export(*export); err != nil {
			fmt.Fprintf(os.Stderr, "genlab: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "genlab: exported %d records under scenario %q to %s\n",
			len(p.Dataset.Records), p.Config.Scenario, *export)
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for i := range p.Dataset.Records {
		r := &p.Dataset.Records[i]
		out := exportRecord{
			ID:             r.ID,
			Vantage:        uint32(r.Vantage),
			VantageCountry: r.VantageCountry,
			URL:            r.URL,
			Category:       r.Category.String(),
			At:             r.At.Format("2006-01-02T15:04:05Z"),
		}
		for _, k := range anomaly.Kinds {
			if r.Anomalies.Has(k) {
				out.Anomalies = append(out.Anomalies, k.String())
			}
		}
		if r.Fail == traceroute.OK {
			for _, a := range r.ASPath {
				out.ASPath = append(out.ASPath, uint32(a))
			}
		} else {
			out.Fail = r.Fail.String()
		}
		if *truth {
			for _, a := range r.TruePath {
				out.TruePath = append(out.TruePath, uint32(a))
			}
			for _, act := range r.TrueActs {
				out.TrueCensors = append(out.TrueCensors, uint32(act.ASN))
			}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "genlab: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "genlab: wrote %d records under scenario %q\n",
		len(p.Dataset.Records), p.Config.Scenario)
}
