// Command churnworker is a dedicated distributed-execution worker: it
// speaks the churntomo worker protocol on stdin/stdout and exits when the
// coordinator closes the pipe. It takes no flags — every parameter arrives
// in the job envelopes.
//
// A distributed experiment normally re-executes its own binary as the
// worker (see churntomo.MaybeWorker); churnworker exists for deployments
// that want a separate, minimal worker executable instead:
//
//	exp, _ := churntomo.New(
//		churntomo.WithSeedSweep(8),
//		churntomo.WithDistributed(4),
//		churntomo.WithWorkerBinary("/usr/local/bin/churnworker"),
//	)
package main

import (
	"fmt"
	"os"

	"churntomo"
)

func main() {
	if err := churntomo.ServeWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "churnworker:", err)
		os.Exit(1)
	}
}
