package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir points run() at one of the lint package's fixture modules,
// so the CLI is exercised over the same corpus as the analyzers.
func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunList(t *testing.T) {
	t.Parallel()
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"nondet", "ctxflow", "lockflow", "errflow", "goroutinejoin", "suppress"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
}

func TestRunFindingsText(t *testing.T) {
	t.Parallel()
	code, out, errw := runCLI(t, "-C", fixtureDir(t, "errflow"), "-only", "errflow")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has findings); stderr: %s", code, errw)
	}
	if !strings.Contains(out, "fixture.go:") || !strings.Contains(out, "[errflow]") {
		t.Errorf("text output missing module-relative findings:\n%s", out)
	}
	if strings.Contains(out, fixtureDir(t, "errflow")) {
		t.Errorf("text output leaks absolute paths:\n%s", out)
	}
}

func TestRunFindingsJSON(t *testing.T) {
	t.Parallel()
	code, out, _ := runCLI(t, "-C", fixtureDir(t, "errflow"), "-only", "errflow", "-format", "json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.Analyzer != "errflow" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("malformed finding: %+v", f)
		}
	}
}

// TestRunJSONSuppressed pins that -format json surfaces suppressed
// findings (flagged) while the exit code counts only unsuppressed ones.
func TestRunJSONSuppressed(t *testing.T) {
	t.Parallel()
	code, out, errw := runCLI(t, "-C", fixtureDir(t, "errflowok"), "-only", "errflow", "-format", "json")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (all findings suppressed); stderr: %s", code, errw)
	}
	var findings []struct {
		Suppressed bool `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 suppressed ones:\n%s", len(findings), out)
	}
	for _, f := range findings {
		if !f.Suppressed {
			t.Errorf("finding not flagged suppressed: %+v", f)
		}
	}
}

func TestRunAudit(t *testing.T) {
	t.Parallel()
	code, out, _ := runCLI(t, "-C", fixtureDir(t, "errflowok"), "-audit")
	if code != 0 {
		t.Fatalf("-audit exited %d", code)
	}
	if !strings.Contains(out, "[errflow]") || !strings.Contains(out, "best-effort scratch cleanup") {
		t.Errorf("-audit output missing analyzer or reason:\n%s", out)
	}
	if !strings.Contains(out, "2 suppression(s)") {
		t.Errorf("-audit output missing count:\n%s", out)
	}
}

func TestRunAuditJSON(t *testing.T) {
	t.Parallel()
	code, out, _ := runCLI(t, "-C", fixtureDir(t, "errflowok"), "-audit", "-format", "json")
	if code != 0 {
		t.Fatalf("-audit -format json exited %d", code)
	}
	var sups []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Reason   string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(out), &sups); err != nil {
		t.Fatalf("audit output is not JSON: %v\n%s", err, out)
	}
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2:\n%s", len(sups), out)
	}
	for _, s := range sups {
		if s.Analyzer != "errflow" || s.Reason == "" || s.File == "" || s.Line == 0 {
			t.Errorf("malformed suppression entry: %+v", s)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	t.Parallel()
	if code, _, errw := runCLI(t, "-format", "yaml"); code != 2 || !strings.Contains(errw, "unknown -format") {
		t.Errorf("bad -format: code=%d stderr=%q", code, errw)
	}
	if code, _, errw := runCLI(t, "./cmd/..."); code != 2 || !strings.Contains(errw, "unexpected argument") {
		t.Errorf("bad positional arg: code=%d stderr=%q", code, errw)
	}
	if code, _, _ := runCLI(t, "-bogusflag"); code != 2 {
		t.Errorf("bad flag: code=%d, want 2", code)
	}
	if code, _, errw := runCLI(t, "-C", t.TempDir()); code != 2 || !strings.Contains(errw, "no go.mod") {
		t.Errorf("no module: code=%d stderr=%q", code, errw)
	}
}

// TestCheckAPIGate pins scripts/check-api.sh: the script must keep
// delegating to `churnvet -only internalimport`, and that invocation
// must stay clean over this repository.
func TestCheckAPIGate(t *testing.T) {
	t.Parallel()
	script, err := os.ReadFile(filepath.Join("..", "..", "scripts", "check-api.sh"))
	if err != nil {
		t.Fatalf("read check-api.sh: %v", err)
	}
	if !strings.Contains(string(script), "churnvet -only internalimport") {
		t.Errorf("check-api.sh no longer delegates to churnvet -only internalimport:\n%s", script)
	}
	code, _, errw := runCLI(t, "-C", filepath.Join("..", ".."), "-only", "internalimport", "./...")
	if code != 0 {
		t.Errorf("API gate invocation exited %d; stderr: %s", code, errw)
	}
}
