// Command churnvet runs the project's custom static-analysis suite
// (internal/lint) over the module and reports every invariant violation
// as file:line:col findings. It exits 0 when clean, 1 when findings
// remain, 2 on usage or load errors.
//
// Usage:
//
//	churnvet [-C dir] [-only analyzer[,analyzer...]] [-format text|json] [-list] [-audit] [./...]
//
// The optional `./...` argument is accepted for symmetry with the go
// tool; churnvet always analyzes the whole module containing -C
// (default: the module enclosing the current directory). `-format json`
// emits every finding — suppressed ones included, flagged — as a JSON
// array for tooling; the exit code still reflects only unsuppressed
// findings. `-audit` lists every //churnvet:ok suppression in the
// module with its analyzer, location, and recorded reason, so the
// waiver inventory stays reviewable. `make lint` wires the full suite
// into `make ci`; scripts/check-api.sh runs `churnvet -only
// internalimport` as the public-API gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"churntomo/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("churnvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory inside the module to analyze")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	format := fs.String("format", "text", "output format: text or json")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	audit := fs.Bool("audit", false, "list every //churnvet:ok suppression in the module and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "churnvet: unknown -format %q (want text or json)\n", *format)
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(stderr, "churnvet: unexpected argument %q (the whole module is always analyzed)\n", arg)
			return 2
		}
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "churnvet:", err)
		return 2
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "churnvet:", err)
		return 2
	}

	if *audit {
		return runAudit(mod, root, *format, stdout)
	}

	var names []string
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	findings, err := lint.RunAll(mod, names)
	if err != nil {
		fmt.Fprintln(stderr, "churnvet:", err)
		return 2
	}
	// Report module-relative paths so output is stable across checkouts.
	for i := range findings {
		findings[i].Pos.Filename = relPath(root, findings[i].Pos.Filename)
	}
	active := 0
	for _, f := range findings {
		if !f.Suppressed {
			active++
		}
	}

	switch *format {
	case "json":
		type jsonFinding struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Column     int    `json:"column"`
			Analyzer   string `json:"analyzer"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:       f.Pos.Filename,
				Line:       f.Pos.Line,
				Column:     f.Pos.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		if err := writeJSON(stdout, out); err != nil {
			fmt.Fprintln(stderr, "churnvet:", err)
			return 2
		}
	default:
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			fmt.Fprintln(stdout, f.String())
		}
	}
	if active > 0 {
		fmt.Fprintf(stderr, "churnvet: %d finding(s)\n", active)
		return 1
	}
	return 0
}

// runAudit lists every suppression directive in the module. A
// suppression inventory that can be diffed in review is the other half
// of allowing suppressions at all.
func runAudit(mod *lint.Module, root, format string, stdout io.Writer) int {
	sups := lint.Suppressions(mod)
	if format == "json" {
		type jsonSuppression struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Reason   string `json:"reason"`
		}
		out := make([]jsonSuppression, 0, len(sups))
		for _, s := range sups {
			out = append(out, jsonSuppression{
				File:     relPath(root, s.Pos.Filename),
				Line:     s.Pos.Line,
				Analyzer: s.Analyzer,
				Reason:   s.Reason,
			})
		}
		if err := writeJSON(stdout, out); err != nil {
			return 2
		}
		return 0
	}
	for _, s := range sups {
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", relPath(root, s.Pos.Filename), s.Pos.Line, s.Analyzer, s.Reason)
	}
	fmt.Fprintf(stdout, "%d suppression(s)\n", len(sups))
	return 0
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// relPath rewrites an absolute finding path to a module-relative one
// when the file sits under the module root.
func relPath(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}

// findModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
