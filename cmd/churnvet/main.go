// Command churnvet runs the project's custom static-analysis suite
// (internal/lint) over the module and reports every invariant violation
// as file:line:col findings. It exits 0 when clean, 1 when findings
// remain, 2 on usage or load errors.
//
// Usage:
//
//	churnvet [-C dir] [-only analyzer[,analyzer...]] [-list] [./...]
//
// The optional `./...` argument is accepted for symmetry with the go
// tool; churnvet always analyzes the whole module containing -C
// (default: the module enclosing the current directory). `make lint`
// wires the full suite into `make ci`; scripts/check-api.sh runs
// `churnvet -only internalimport` as the public-API gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"churntomo/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("churnvet", flag.ExitOnError)
	dir := fs.String("C", ".", "directory inside the module to analyze")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "churnvet: unexpected argument %q (the whole module is always analyzed)\n", arg)
			return 2
		}
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "churnvet:", err)
		return 2
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "churnvet:", err)
		return 2
	}
	var names []string
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	findings, err := lint.Run(mod, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "churnvet:", err)
		return 2
	}
	for _, f := range findings {
		// Report module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "churnvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
