// Command satsolve runs the built-in SAT solver on DIMACS CNF input —
// handy for poking at exported tomography instances.
//
//	satsolve [-count N] [-backbone] [file.cnf]
//
// With no flags it reports SAT/UNSAT and a model. -count enumerates models
// up to N. -backbone prints, per variable, whether any model assigns it
// true (the tomography's potential-censor query).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"churntomo/internal/sat"
)

func main() {
	count := flag.Int("count", 0, "enumerate models up to this cap")
	backbone := flag.Bool("backbone", false, "report per-variable potential-true")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "satsolve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	cnf, err := sat.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "satsolve: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *count > 0:
		n := sat.CountModels(cnf, *count)
		suffix := ""
		if n == *count {
			suffix = " (cap reached)"
		}
		fmt.Printf("models: %d%s\n", n, suffix)
	case *backbone:
		pot := sat.PotentialTrue(cnf)
		for v := 1; v <= cnf.NumVars; v++ {
			fmt.Printf("x%d potential-true=%v\n", v, pot[v])
		}
	default:
		m, ok := sat.NewSolver(cnf).Solve()
		if !ok {
			fmt.Println("UNSAT")
			os.Exit(20) // conventional UNSAT exit code
		}
		fmt.Println("SAT")
		for v := 1; v <= cnf.NumVars; v++ {
			lit := v
			if !m[v] {
				lit = -v
			}
			fmt.Printf("%d ", lit)
		}
		fmt.Println("0")
	}
}
