package main

import (
	"strings"
	"testing"
)

func TestFlagConflicts(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name     string
		explicit map[string]bool
		matrix   int
		stream   bool
		only     string
		input    string
		eval     bool
		procs    int
		want     []string // substrings of expected conflict messages; empty = none
	}{
		{name: "defaults", explicit: set(), matrix: 1},
		{name: "stream alone", explicit: set("stream"), matrix: 1, stream: true},
		{name: "matrix alone", explicit: set("matrix"), matrix: 4},
		{name: "stream with window/stride", explicit: set("stream", "window", "stride"), matrix: 1, stream: true},
		{
			name: "stream and matrix", explicit: set("stream", "matrix"), matrix: 4, stream: true,
			want: []string{"mutually exclusive"},
		},
		{
			name: "window without stream", explicit: set("window"), matrix: 1,
			want: []string{"-window/-stride require -stream"},
		},
		{
			name: "stride without stream", explicit: set("stride"), matrix: 1,
			want: []string{"-window/-stride require -stream"},
		},
		{
			name: "matrix zero", explicit: set("matrix"), matrix: 0,
			want: []string{"must be >= 1"},
		},
		{
			name: "only in matrix mode", explicit: set("matrix", "only"), matrix: 3, only: "table1",
			want: []string{"-only", "-matrix"},
		},
		{
			name: "only in stream mode", explicit: set("stream", "only"), matrix: 1, stream: true, only: "table1",
			want: []string{"-only", "-stream"},
		},
		{
			name: "explicit validate in matrix mode", explicit: set("matrix", "validate"), matrix: 3,
			want: []string{"-validate", "-matrix"},
		},
		{
			// -validate defaults to true; only a user-supplied value conflicts.
			name: "default validate in matrix mode", explicit: set("matrix"), matrix: 3,
		},
		{name: "input alone", explicit: set("input"), matrix: 1, input: "ds.jsonl.gz"},
		{
			// Replaying a recorded dataset through the streaming engine is
			// the supported workflow, not a conflict.
			name: "input with stream", explicit: set("input", "stream", "window"), matrix: 1,
			stream: true, input: "ds.jsonl.gz",
		},
		{
			name: "input with seed", explicit: set("input", "seed"), matrix: 1, input: "ds.jsonl.gz",
			want: []string{"-seed", "-input"},
		},
		{
			name: "input with scale and scenario", explicit: set("input", "scale", "scenario"), matrix: 1, input: "ds.jsonl.gz",
			want: []string{"-scale", "-scenario", "-input"},
		},
		{
			name: "input with matrix", explicit: set("input", "matrix"), matrix: 4, input: "ds.jsonl.gz",
			want: []string{"-matrix", "same file every cell"},
		},
		{name: "eval alone", explicit: set("eval"), matrix: 1, eval: true},
		{
			// Streaming evaluation adds the convergence-day report.
			name: "eval with stream", explicit: set("eval", "stream"), matrix: 1, stream: true, eval: true,
		},
		{
			// Replayed datasets that kept their registry are gradable; the
			// metadata-only case fails at runtime, not at flag parse.
			name: "eval with input", explicit: set("eval", "input"), matrix: 1, input: "ds.jsonl.gz", eval: true,
		},
		{
			name: "eval with matrix", explicit: set("eval", "matrix"), matrix: 4, eval: true,
			want: []string{"-eval", "-matrix"},
		},
		{name: "procs alone", explicit: set("procs"), matrix: 1, procs: 4},
		{
			// Distributing a matrix sweep across worker processes is the
			// headline use case, not a conflict.
			name: "procs with matrix", explicit: set("procs", "matrix"), matrix: 4, procs: 2,
		},
		{
			name: "procs with eval", explicit: set("procs", "eval"), matrix: 1, procs: 2, eval: true,
		},
		{
			name: "negative procs", explicit: set("procs"), matrix: 1, procs: -1,
			want: []string{"must be >= 0"},
		},
		{
			name: "procs with stream", explicit: set("procs", "stream"), matrix: 1, stream: true, procs: 2,
			want: []string{"-procs", "-stream", "mutually exclusive"},
		},
		{
			name: "procs with input", explicit: set("procs", "input"), matrix: 1, input: "ds.jsonl.gz", procs: 2,
			want: []string{"-procs", "-input", "nothing left to measure"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := flagConflicts(tc.explicit, tc.matrix, tc.stream, tc.only, tc.input, tc.eval, tc.procs)
			if len(tc.want) == 0 {
				if len(got) > 0 {
					t.Fatalf("unexpected conflicts: %v", got)
				}
				return
			}
			joined := strings.Join(got, "\n")
			for _, w := range tc.want {
				if !strings.Contains(joined, w) {
					t.Errorf("conflicts %q missing %q", joined, w)
				}
			}
		})
	}
}
