// Command churnlab runs the full reproduction pipeline and regenerates
// every table and figure from the paper's evaluation (§4).
//
// Usage:
//
//	churnlab [-scale small|default|paper] [-scenario NAME] [-seed N]
//	         [-input dataset.jsonl.gz]
//	         [-only table1,figure3,...] [-validate]
//	         [-parallel N] [-matrix N] [-procs N]
//	         [-stream] [-window D] [-stride D]
//
// churnlab is the reference consumer of the unified Experiment API: it
// folds its flags into churntomo.New options and drives batch, matrix and
// streaming runs through one Experiment.Run call on a signal-cancelable
// context — Ctrl-C aborts the run promptly at the next stage/day/solve
// boundary.
//
// -input analyzes a recorded dataset (written by genlab -export or
// Result.Export) instead of synthesizing one: the file's world metadata —
// scenario label, seed, period, vantage/target/AS tables, ground truth —
// replaces the -scale/-scenario/-seed world, so those flags conflict with
// it, as does -matrix (a seed sweep would replay the same file N times).
// -stream composes with -input: the recorded days replay through the
// incremental windowed localizer exactly as a live run would.
//
// -scenario selects a world-construction preset from the scenario registry
// (paper-baseline, national-firewall, transit-leakage, bgp-storm,
// regional-outage, policy-flap, path-diverse, routing-shift,
// ecmp-multipath, chokepoint; `genlab -list` prints the catalog). The
// preset decides how the world is generated; -scale/-seed keep deciding
// its dimensions and randomness.
//
// -eval appends the ground-truth accuracy report: precision/recall/F1 of
// the identified censor set against the registry the generators planted,
// recall over the censors that actually fired, false-positive leakage
// (accused bystanders that sat on censored paths), mean candidate-set
// reduction over ambiguous CNFs, and the top structural chokepoints
// cross-referenced with the verdict. With -stream it adds per-censor
// convergence days. It needs a world that knows its censors, so it
// conflicts with -matrix and fails on a metadata-only -input replay.
//
// -parallel bounds the per-stage worker pools (0 = all cores, 1 = serial);
// results are identical at any setting. -matrix N runs a seed sweep of N
// whole pipelines concurrently and prints the aggregated identifications
// instead of the single-run evaluation.
//
// -procs N distributes the run across N worker subprocesses: each matrix
// cell — or, in a single batch run, each shard of the measurement schedule
// — executes in its own churnlab worker process (the binary re-executes
// itself; no separate worker binary needed). Results are byte-identical to
// the in-process run at any N; the flag only changes where the work
// happens. It conflicts with -stream (the incremental localizer consumes
// days in order in one process) and -input (a replay has nothing left to
// measure).
//
// Contradictory flag combinations (-stream with -matrix or -procs,
// -window/-stride without -stream, -only or an explicit -validate in a
// mode that cannot honor them) are rejected with an error up front rather
// than silently resolved by precedence.
//
// -stream replays the scenario day by day through the streaming localizer
// and prints a per-window timeline plus per-censor convergence stats
// instead of the single-run evaluation. -window D localizes over the D most
// recent days (0 = cumulative: the window only grows, and the final window
// equals the batch result); -stride D advances the window D days between
// localizations. Only the CNFs each day boundary touches are re-solved;
// the timeline reports the solved/reused split per window.
//
// With no -only filter it prints the complete evaluation: Table 1 (dataset
// characteristics), Figures 1a/1b (CNF solvability), Figure 2 (candidate
// reduction CDF), Figure 3 (path churn), Figure 4 (no-churn ablation),
// Table 2 (censoring regions), Table 3 (top leakers) and Figure 5 (country
// flow), plus the ground-truth validation the paper could not perform.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"churntomo"
	"churntomo/internal/analysis"
	"churntomo/internal/anomaly"
	"churntomo/internal/leakage"
	"churntomo/internal/report"
	"churntomo/internal/sat"
	"churntomo/internal/topology"
	"churntomo/internal/webcat"
)

// flagConflicts returns the contradictory flag combinations in a parsed
// flag set, one message each. explicit holds the flag names the user set
// on the command line (flag.Visit); it distinguishes an explicit -validate
// or -stride from their defaults.
func flagConflicts(explicit map[string]bool, matrix int, stream bool, only string, input string, eval bool, procs int) []string {
	var conflicts []string
	if matrix < 1 {
		conflicts = append(conflicts, fmt.Sprintf("-matrix %d: sweep size must be >= 1", matrix))
	}
	if procs < 0 {
		conflicts = append(conflicts, fmt.Sprintf("-procs %d: worker process count must be >= 0 (0 = in-process)", procs))
	}
	if stream && matrix > 1 {
		conflicts = append(conflicts, "-stream and -matrix are mutually exclusive")
	}
	if procs > 0 && stream {
		conflicts = append(conflicts, "-procs and -stream are mutually exclusive: the incremental localizer consumes days in order in one process")
	}
	if procs > 0 && input != "" {
		conflicts = append(conflicts, "-procs distributes measurement work and contradicts -input, which replays recorded data with nothing left to measure; drop one")
	}
	if eval && matrix > 1 {
		conflicts = append(conflicts, "-eval scores one run against its world's ground truth and contradicts -matrix, whose cells each have their own world; drop one")
	}
	if input != "" {
		for _, name := range []string{"scale", "scenario", "seed"} {
			if explicit[name] {
				conflicts = append(conflicts, fmt.Sprintf("-%s steers world synthesis and contradicts -input, which replays a recorded world; drop one", name))
			}
		}
		if matrix > 1 {
			conflicts = append(conflicts, "-matrix resamples the world per cell and contradicts -input, which would replay the same file every cell; drop one")
		}
	}
	if !stream && (explicit["window"] || explicit["stride"]) {
		conflicts = append(conflicts, "-window/-stride require -stream")
	}
	modal := func() string {
		if stream {
			return "-stream"
		}
		return "-matrix"
	}
	if only != "" && (stream || matrix > 1) {
		conflicts = append(conflicts, fmt.Sprintf("-only applies to single batch runs and contradicts %s; drop one", modal()))
	}
	if explicit["validate"] && (stream || matrix > 1) {
		conflicts = append(conflicts, fmt.Sprintf("-validate applies to single batch runs and contradicts %s; drop one", modal()))
	}
	return conflicts
}

func main() {
	// A distributed coordinator re-executes this binary as its workers;
	// MaybeWorker intercepts that invocation before any flag parsing and
	// never returns in a worker process.
	churntomo.MaybeWorker()

	scale := flag.String("scale", "default", "experiment scale: small, default or paper")
	scenarioName := flag.String("scenario", churntomo.ScenarioBaseline,
		"world-construction preset (see `genlab -list` for the catalog)")
	seed := flag.Uint64("seed", 1, "master random seed")
	only := flag.String("only", "", "comma-separated subset: table1,figure1a,figure1b,figure2,figure3,figure4,table2,table3,figure5")
	validate := flag.Bool("validate", true, "score identified censors against ground truth")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	parallel := flag.Int("parallel", 0, "per-stage worker count (0 = all cores, 1 = serial); output is identical either way")
	matrix := flag.Int("matrix", 1, "run a seed sweep of N concurrent pipelines and print the aggregate")
	streamMode := flag.Bool("stream", false, "replay the scenario day by day and print the window timeline")
	window := flag.Int("window", 0, "streaming window width in days (0 = cumulative)")
	stride := flag.Int("stride", 1, "days the streaming window advances between localizations")
	input := flag.String("input", "", "analyze this recorded dataset (genlab -export) instead of synthesizing one")
	eval := flag.Bool("eval", false, "append the ground-truth accuracy report (precision/recall/F1, leakage, candidate reduction)")
	procs := flag.Int("procs", 0, "distribute matrix cells (or a batch run's measurement days) across N worker processes (0 = in-process)")
	flag.Parse()

	sc, err := churntomo.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "churnlab: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	// Contradictory combinations are hard errors: silent precedence would
	// run something other than what the command line asked for.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if conflicts := flagConflicts(explicit, *matrix, *streamMode, *only, *input, *eval, *procs); len(conflicts) > 0 {
		for _, c := range conflicts {
			fmt.Fprintf(os.Stderr, "churnlab: %s\n", c)
		}
		os.Exit(2)
	}

	// Fold the flags into one option list — every mode goes through the
	// same New(...).Run(ctx) entry point.
	workers := *parallel
	if *matrix > 1 && workers == 0 {
		// The matrix supplies the concurrency: one serial pipeline per
		// cell, rather than GOMAXPROCS cells each spawning GOMAXPROCS-wide
		// stage pools. An explicit -parallel still overrides per cell.
		workers = 1
	}
	var opts []churntomo.Option
	if *input != "" {
		// The recorded world replaces the synthesis flags wholesale.
		opts = []churntomo.Option{
			churntomo.WithInput(*input),
			churntomo.WithWorkers(workers),
		}
	} else {
		opts = []churntomo.Option{
			churntomo.WithScale(sc),
			churntomo.WithScenario(*scenarioName),
			churntomo.WithSeed(*seed),
			churntomo.WithWorkers(workers),
		}
	}
	if !*quiet {
		opts = append(opts, churntomo.WithObserver(churntomo.TextObserver(os.Stderr)))
	}
	switch {
	case *matrix > 1:
		opts = append(opts, churntomo.WithSeedSweep(*matrix))
	case *streamMode:
		opts = append(opts, churntomo.WithWindow(*window), churntomo.WithStride(*stride))
	}
	if *procs > 0 {
		opts = append(opts, churntomo.WithDistributed(*procs))
	}

	exp, err := churntomo.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "churnlab: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := exp.Run(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "churnlab: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "churnlab: %v\n", err)
		os.Exit(1)
	}

	switch res.Mode {
	case churntomo.ModeMatrix:
		reportMatrix(res, *seed, *matrix, *quiet)
	case churntomo.ModeStreaming:
		reportStream(res, *window, *stride)
	default:
		reportBatch(res, *only, *validate)
	}
	if *eval {
		if res.Evaluation == nil {
			fmt.Fprintln(os.Stderr, "churnlab: -eval: this run carries no ground truth (metadata-only replay?)")
			os.Exit(1)
		}
		reportEval(res)
	}
}

// reportEval prints the ground-truth accuracy report: how the verdict
// scores against the censor registry the generators planted — the
// evaluation the paper's authors could not perform on real traffic.
func reportEval(res *churntomo.Result) {
	ev := res.Evaluation
	fmt.Println("== Accuracy vs ground truth ==")
	fmt.Printf("censor registry: %d ASes (%d exercised during the period); identified: %d\n",
		ev.TrueCensors, ev.ExercisedCensors, ev.IdentifiedASes)
	fmt.Printf("precision %.1f%%  recall %.1f%%  F1 %.3f  exercised recall %.1f%%\n",
		100*ev.Precision, 100*ev.Recall, ev.F1, 100*ev.ExercisedRecall)
	fmt.Printf("verdict: %d true positives, %d false positives, %d missed censors\n",
		ev.TP, ev.FP, ev.Missed)
	if ev.FP > 0 {
		names := make([]string, len(ev.FalsePositives))
		for i, a := range ev.FalsePositives {
			names[i] = a.String()
		}
		fmt.Printf("false positives: %s (%d/%d on censored paths — leakage rate %.0f%%)\n",
			strings.Join(names, ", "), ev.LeakageFPs, ev.FP, 100*ev.LeakageRate)
	}
	if ev.MultipleCNFs > 0 {
		fmt.Printf("candidate-set reduction: %.1f%% mean over %d ambiguous CNFs\n",
			100*ev.CandidateReduction, ev.MultipleCNFs)
	}

	if len(ev.Convergence) > 0 {
		fmt.Println("\n== Convergence (measurement days until stable) ==")
		rows := [][]string{}
		for _, c := range ev.Convergence {
			truth := "bystander"
			if c.TrueCensor {
				truth = "censor"
			}
			stable := "unstable"
			if c.StableDay >= 0 {
				stable = fmt.Sprintf("day %d", c.StableDay)
			}
			rows = append(rows, []string{
				c.ASN.String(), truth, fmt.Sprint(c.FirstDay), stable, fmt.Sprint(c.Windows),
			})
		}
		fmt.Print(report.Table([]string{"AS", "Truth", "First day", "Stable from", "Windows"}, rows))
	}

	if cps := res.ChokePoints(8); len(cps) > 0 {
		fmt.Println("\n== Top structural chokepoints (betweenness) ==")
		rows := [][]string{}
		for _, cp := range cps {
			mark := func(b bool) string {
				if b {
					return "yes"
				}
				return "-"
			}
			rows = append(rows, []string{
				cp.ASN.String() + " " + cp.Name, cp.Country,
				fmt.Sprintf("%.3f", cp.Score), mark(cp.TrueCensor), mark(cp.Identified),
			})
		}
		fmt.Print(report.Table([]string{"AS", "Region", "Score", "Censor", "Identified"}, rows))
	}
	fmt.Println()
}

// reportBatch prints the single-run evaluation: the paper's tables and
// figures over the full internal artifacts (res.Pipelines[0]), which the
// in-repo analysis helpers consume directly.
func reportBatch(res *churntomo.Result, only string, validate bool) {
	p := res.Pipelines[0]
	want := map[string]bool{}
	if only != "" {
		for _, s := range strings.Split(only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	show := func(name string) bool { return len(want) == 0 || want[name] }

	if show("table1") {
		fmt.Println("== Table 1: dataset characteristics ==")
		fmt.Println(p.Dataset.Stats.String())
	}
	if show("figure1a") {
		fmt.Println("== Figure 1a: CNF solutions by granularity ==")
		printSolvability(analysis.Figure1a(p.Outcomes))
	}
	if show("figure1b") {
		fmt.Println("== Figure 1b: CNF solutions by anomaly ==")
		printSolvability(analysis.Figure1b(p.Outcomes))
	}
	if show("figure1a") || show("figure1b") {
		frac, n := analysis.OverallSolvability(p.Outcomes)
		fmt.Printf("overall (%d CNFs): unique %.1f%%, none %.1f%%, multiple %.1f%%\n\n",
			n, 100*frac[sat.Unique], 100*frac[sat.Unsat], 100*frac[sat.Multiple])
	}
	if show("figure2") {
		fmt.Println("== Figure 2: candidate-set reduction (2+ solution CNFs) ==")
		d := analysis.Figure2(p.Outcomes)
		fmt.Print(report.CDF(d.CDF, "reduction %"))
		fmt.Printf("mean reduction %.1f%%, no-elimination fraction %.1f%% over %d CNFs\n\n",
			100*d.Mean, 100*d.NoElimFrac, d.Samples)
	}
	if show("figure3") {
		fmt.Println("== Figure 3: distinct AS paths per (src,dst) pair ==")
		printChurn(res)
	}
	if show("figure4") {
		fmt.Println("== Figure 4: solutions without path churn (ablation) ==")
		rows := analysis.Figure4(p.Dataset.Records, p.Config.Workers)
		var groups []string
		var values [][]float64
		for _, r := range rows {
			groups = append(groups, r.Gran.String())
			values = append(values, r.Frac[:])
		}
		fmt.Print(report.Bars(groups, []string{"0", "1", "2", "3", "4", "5+"}, values))
		fmt.Println()
	}
	if show("table2") {
		fmt.Println("== Table 2: regions with most censoring ASes ==")
		printTable2(p)
	}
	if show("table3") {
		fmt.Println("== Table 3: censoring ASes with the most leakage ==")
		printTable3(p)
	}
	if show("figure5") {
		fmt.Println("== Figure 5: flow of censorship (country level) ==")
		printFigure5(p)
	}
	if len(want) == 0 {
		printHeadline(p)
		printCategories(p)
	}
	if validate && len(want) == 0 {
		printValidation(p)
	}
}

// reportMatrix prints the aggregated identifications of a seed sweep:
// which ASes are named in how many runs, which survive every resampling,
// and the summed leakage.
func reportMatrix(res *churntomo.Result, seed uint64, n int, quiet bool) {
	agg := res.Matrix
	if quiet {
		// With no observer registered nothing was reported; failures
		// still need to surface.
		for _, cell := range res.Cells {
			if cell.Err != nil {
				fmt.Fprintf(os.Stderr, "churnlab: matrix cell %d (seed %d): %v\n",
					cell.Index, cell.Config.Seed, cell.Err)
			}
		}
	}

	fmt.Printf("== Matrix aggregate: %d runs (%d failed), seeds %d..%d ==\n",
		agg.Runs, agg.Failed, seed, seed+uint64(n-1))
	fmt.Printf("CNFs: %d total, %d unique-solution\n", agg.TotalCNFs, agg.UniqueCNFs)
	fmt.Printf("leakage (summed): %d censors leak to other ASes, %d to other countries\n\n",
		agg.LeakASes, agg.LeakCountries)

	rows := [][]string{}
	for _, c := range agg.Censors {
		rows = append(rows, []string{
			c.ASN.String(),
			fmt.Sprintf("%d/%d", c.Runs, agg.Runs),
			fmt.Sprint(c.CNFs),
			c.Kinds.String(),
		})
	}
	fmt.Print(report.Table([]string{"AS", "Runs", "CNFs", "Anomalies"}, rows))
	names := make([]string, len(agg.Stable))
	for i, asn := range agg.Stable {
		names[i] = asn.String()
	}
	fmt.Printf("\nstable across every run: %s\n", strings.Join(names, ", "))
	if agg.Failed > 0 {
		os.Exit(1)
	}
}

// reportStream prints the window timeline and the per-censor convergence
// report of a streaming replay.
func reportStream(res *churntomo.Result, window, stride int) {
	if len(res.Windows) == 0 {
		fmt.Fprintf(os.Stderr, "churnlab: %d days never filled a %d-day window\n",
			res.Config.Days, window)
		os.Exit(1)
	}

	mode := fmt.Sprintf("%d-day sliding", window)
	if window == 0 {
		mode = "cumulative"
	}
	fmt.Printf("== Streaming timeline: %s window, stride %d, %d windows over %d days ==\n",
		mode, max(stride, 1), len(res.Windows), res.Config.Days)
	rows := [][]string{}
	var prev map[churntomo.ASN]*churntomo.IdentifiedCensor
	for _, w := range res.Windows {
		var gained, lost []string
		for asn := range w.Identified {
			if _, ok := prev[asn]; !ok {
				gained = append(gained, asn.String())
			}
		}
		for asn := range prev {
			if _, ok := w.Identified[asn]; !ok {
				lost = append(lost, asn.String())
			}
		}
		sort.Strings(gained)
		sort.Strings(lost)
		delta := strings.Join(gained, " ")
		if len(lost) > 0 {
			delta += " -" + strings.Join(lost, " -")
		}
		rows = append(rows, []string{
			fmt.Sprint(w.Index),
			fmt.Sprintf("%d..%d", w.StartDay, w.EndDay),
			fmt.Sprint(w.CNFs),
			fmt.Sprintf("%d/%d", w.Solved, w.Reused),
			fmt.Sprint(len(w.Identified)),
			strings.TrimSpace(delta),
		})
		prev = w.Identified
	}
	fmt.Print(report.Table([]string{"Win", "Days", "CNFs", "Solved/Reused", "Censors", "Δ"}, rows))

	fmt.Println("\n== Censor convergence (windows until identification stabilizes) ==")
	crows := [][]string{}
	for _, c := range res.Convergence {
		stable := "unstable"
		if c.StableFrom >= 0 {
			stable = fmt.Sprintf("window %d", c.StableFrom)
		}
		crows = append(crows, []string{
			c.ASN.String(),
			fmt.Sprint(c.FirstWindow),
			fmt.Sprintf("%d/%d", c.Windows, len(res.Windows)),
			stable,
		})
	}
	fmt.Print(report.Table([]string{"AS", "First seen", "Windows", "Stable from"}, crows))

	final := res.FinalWindow()
	solved, reused := 0, 0
	for _, w := range res.Windows {
		solved += w.Solved
		reused += w.Reused
	}
	fmt.Printf("\nfinal window [day %d..%d]: %d censors over %d CNFs\n",
		final.StartDay, final.EndDay, len(final.Identified), final.CNFs)
	fmt.Printf("incremental work: %d CNF solves, %d cache reuses (%.0f%% avoided)\n",
		solved, reused, 100*float64(reused)/float64(max(solved+reused, 1)))
}

func printSolvability(rows []analysis.SolvabilityRow) {
	var groups []string
	var values [][]float64
	for _, r := range rows {
		groups = append(groups, fmt.Sprintf("%s (%d CNFs)", r.Group, r.CNFs))
		values = append(values, r.Frac[:])
	}
	fmt.Print(report.Bars(groups, []string{"0", "1", "2+"}, values))
	fmt.Println()
}

func printChurn(res *churntomo.Result) {
	rows := [][]string{}
	for _, d := range res.Churn {
		row := []string{d.Period}
		for b := 1; b <= 5; b++ {
			row = append(row, fmt.Sprintf("%.1f%%", 100*d.Buckets[b]))
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*d.ChangedFrac), fmt.Sprint(d.Samples))
		rows = append(rows, row)
	}
	fmt.Print(report.Table(
		[]string{"period", "1", "2", "3", "4", "5+", "changed", "samples"}, rows))
	fmt.Println()
}

func printTable2(p *churntomo.Pipeline) {
	rows := [][]string{}
	for _, r := range analysis.Table2(p.Identified, p.Graph, 8) {
		asns := make([]string, len(r.ASNs))
		for i, a := range r.ASNs {
			asns[i] = a.String()
		}
		name := r.Country
		if c, ok := topology.CountryByCode(r.Country); ok {
			name = c.Name
		}
		rows = append(rows, []string{name, strings.Join(asns, ", "), r.Kinds.String()})
	}
	fmt.Print(report.Table([]string{"Region", "Censoring ASes", "Anomalies"}, rows))
	fmt.Println()
}

func printTable3(p *churntomo.Pipeline) {
	rows := [][]string{}
	for _, l := range analysis.Table3(p.Leakage, p.Graph, 10) {
		name := l.Country
		if c, ok := topology.CountryByCode(l.Country); ok {
			name = c.Name
		}
		rows = append(rows, []string{
			l.ASN.String() + " " + l.Name, name,
			fmt.Sprint(l.LeakedASes), fmt.Sprint(l.LeakedCountries),
		})
	}
	fmt.Print(report.Table([]string{"AS", "Region", "Leaks (AS)", "Leaks (Country)"}, rows))
	fmt.Println()
}

func printFigure5(p *churntomo.Pipeline) {
	edges := p.Leakage.FlowEdges()
	fromSet, toSet := map[string]bool{}, map[string]bool{}
	for _, e := range edges {
		fromSet[e.Edge.From] = true
		toSet[e.Edge.To] = true
	}
	froms := sortedKeys(fromSet)
	tos := sortedKeys(toSet)
	fmt.Print(report.Matrix("src", "dst", froms, tos, func(r, c string) int {
		return p.Leakage.Flow[leakage.FlowEdge{From: r, To: c}]
	}))
	fmt.Printf("regional fraction of non-CN leakage: %.0f%%\n\n",
		100*p.Leakage.RegionalFrac(p.Graph, "CN"))
}

func printHeadline(p *churntomo.Pipeline) {
	fmt.Println("== Headline results ==")
	fmt.Printf("scenario: %s (seed %d)\n", p.Config.Scenario, p.Config.Seed)
	fmt.Printf("censoring ASes exactly identified: %d (in %d countries)\n",
		len(p.Identified), analysis.CensorCountries(p.Identified, p.Graph))
	fmt.Printf("censors leaking to other ASes: %d; to other countries: %d\n",
		p.Leakage.LeakToOtherASes(), p.Leakage.LeakToOtherCountries())
	fmt.Println()
}

func printCategories(p *churntomo.Pipeline) {
	urlCat := map[string]webcat.Category{}
	for _, t := range p.Scenario.Targets {
		urlCat[t.URL.Host] = t.URL.Category
	}
	counts := analysis.CategoryCensorship(p.Identified, urlCat)
	type kv struct {
		cat webcat.Category
		n   int
	}
	var all []kv
	for c, n := range counts {
		all = append(all, kv{c, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].cat < all[j].cat
	})
	fmt.Println("== Most-censored URL categories ==")
	rows := [][]string{}
	for _, e := range all {
		rows = append(rows, []string{e.cat.String(), fmt.Sprint(e.n)})
	}
	fmt.Print(report.Table([]string{"Category", "(censor, URL) findings"}, rows))
	fmt.Println()
}

func printValidation(p *churntomo.Pipeline) {
	v := analysis.Validate(p.Identified, p.Censors)
	fmt.Println("== Ground-truth validation (not possible in the paper) ==")
	fmt.Printf("identified: %d true censors, %d spurious; precision %.1f%%, registry recall %.1f%%\n",
		v.TruePositives, v.FalsePositives, 100*v.Precision, 100*v.Recall)
	if len(v.Spurious) > 0 {
		names := make([]string, len(v.Spurious))
		for i, a := range v.Spurious {
			names[i] = fmt.Sprintf("%v(%d cnfs)", a, p.Identified[a].CNFs)
		}
		fmt.Printf("spurious: %s\n", strings.Join(names, ", "))
	}
	// Sorted iteration: map order would shuffle these lines between runs,
	// breaking the byte-identical-output determinism contract.
	asns := make([]churntomo.ASN, 0, len(p.Identified))
	for asn := range p.Identified {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		if _, ok := p.Censors.Policy(asn); ok {
			fmt.Printf("true censor %v corroborated by %d CNFs\n", asn, p.Identified[asn].CNFs)
		}
	}
	fmt.Println()
	_ = anomaly.Kinds // keep the import for future per-kind validation output
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
