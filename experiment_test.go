package churntomo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// --- Option and StreamConfig validation -----------------------------------

func TestNewValidatesOptions(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string // substring of the error
	}{
		{"negative workers", []Option{WithWorkers(-1)}, "WithWorkers"},
		{"negative window", []Option{WithWindow(-5)}, "WithWindow"},
		{"negative stride", []Option{WithStride(-2)}, "WithStride"},
		{"zero days", []Option{WithDays(0)}, "WithDays"},
		{"negative mincnfs", []Option{WithMinCNFs(-1)}, "WithMinCNFs"},
		{"zero seed sweep", []Option{WithSeedSweep(0)}, "WithSeedSweep"},
		{"empty scale sweep", []Option{WithScaleSweep()}, "WithScaleSweep"},
		{"negative scale factor", []Option{WithScaleSweep(1, -0.5)}, "WithScaleSweep"},
		{"empty configs", []Option{WithConfigs()}, "WithConfigs"},
		{"negative matrix workers", []Option{WithMatrixWorkers(-3)}, "WithMatrixWorkers"},
		{"nil observer", []Option{WithObserver(nil)}, "WithObserver"},
		{"nil option", []Option{nil}, "nil Option"},
		{"streaming plus matrix", []Option{WithWindow(7), WithSeedSweep(3)}, "mutually exclusive"},
		{"two matrix shapes", []Option{WithSeedSweep(2), WithScaleSweep(0.5, 1)}, "at most one"},
	}
	for _, tc := range cases {
		_, err := New(tc.opts...)
		if err == nil {
			t.Errorf("%s: New accepted invalid options", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestNewModeResolution(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want Mode
	}{
		{"default", nil, ModeBatch},
		{"window", []Option{WithWindow(7)}, ModeStreaming},
		{"stride only", []Option{WithStride(3)}, ModeStreaming},
		{"cumulative", []Option{WithStreaming()}, ModeStreaming},
		{"seed sweep", []Option{WithSeedSweep(4)}, ModeMatrix},
		{"seed sweep of one", []Option{WithSeedSweep(1)}, ModeBatch},
		{"scale sweep", []Option{WithScaleSweep(0.5, 1, 2)}, ModeMatrix},
		{"explicit cells", []Option{WithConfigs(SmallConfig())}, ModeMatrix},
	}
	for _, tc := range cases {
		e, err := New(tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.Mode() != tc.want {
			t.Errorf("%s: mode %v, want %v", tc.name, e.Mode(), tc.want)
		}
	}
}

func TestStreamConfigValidate(t *testing.T) {
	r := &Runner{}
	for _, sc := range []StreamConfig{{Window: -1}, {Stride: -7}, {MinCNFs: -2}} {
		if err := sc.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", sc)
		}
		// StreamSweep must reject before doing any work.
		if _, err := r.StreamSweep(testConfig(), sc); err == nil {
			t.Errorf("StreamSweep accepted %+v", sc)
		}
	}
	if err := (StreamConfig{Window: 10, Stride: 2, MinCNFs: 3}).Validate(); err != nil {
		t.Errorf("Validate rejected a valid config: %v", err)
	}
}

// --- Shim equivalence ------------------------------------------------------

// identifiedBytes flattens an identification map into a deterministic byte
// string, so "byte-identical" is literal.
func identifiedBytes(identified map[ASN]*IdentifiedCensor) []byte {
	asns := make([]ASN, 0, len(identified))
	for asn := range identified {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	var buf bytes.Buffer
	for _, asn := range asns {
		c := identified[asn]
		urls := make([]string, 0, len(c.URLs))
		for u := range c.URLs {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		fmt.Fprintf(&buf, "%v kinds=%v cnfs=%d urls=%v\n", asn, c.Kinds, c.CNFs, urls)
	}
	return buf.Bytes()
}

// TestExperimentMatchesLegacyRun pins the deprecated shims to the new
// entry point: churntomo.Run(cfg), the manual Prepare/Measure/Localize
// sequence (the pre-Experiment code path, still live), and
// New(WithConfig(cfg)).Run(ctx) must produce byte-identical Identified
// maps.
func TestExperimentMatchesLegacyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()

	shim, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	manual, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	manual.Measure()
	manual.Localize()

	exp, err := New(WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeBatch {
		t.Fatalf("mode %v, want batch", res.Mode)
	}

	want := identifiedBytes(manual.Identified)
	if got := identifiedBytes(shim.Identified); !bytes.Equal(got, want) {
		t.Errorf("Run shim diverges from manual pipeline:\n%s\nvs\n%s", got, want)
	}
	if got := identifiedBytes(res.Identified); !bytes.Equal(got, want) {
		t.Errorf("Experiment diverges from manual pipeline:\n%s\nvs\n%s", got, want)
	}

	// The public Censors view carries the same identifications.
	if len(res.Censors) != len(res.Identified) {
		t.Fatalf("%d Censors for %d Identified", len(res.Censors), len(res.Identified))
	}
	for _, c := range res.Censors {
		raw := res.Identified[c.ASN]
		if raw == nil || raw.CNFs != c.CNFs || raw.Kinds != c.Kinds || len(raw.URLs) != len(c.URLs) {
			t.Errorf("censor %v diverges from its Identified record", c.ASN)
		}
		if c.Name == "" || c.Country == "" {
			t.Errorf("censor %v missing topology context (%q, %q)", c.ASN, c.Name, c.Country)
		}
	}

	// Summary agrees with the pipeline artifacts.
	if res.Summary.Measurements != manual.Dataset.Stats.Measurements {
		t.Errorf("Summary.Measurements %d, want %d", res.Summary.Measurements, manual.Dataset.Stats.Measurements)
	}
	if res.Summary.CNFs != len(manual.Outcomes) {
		t.Errorf("Summary.CNFs %d, want %d", res.Summary.CNFs, len(manual.Outcomes))
	}
	if got := res.Summary.UnsatCNFs + res.Summary.UniqueCNFs + res.Summary.MultipleCNFs; got != res.Summary.CNFs {
		t.Errorf("CNF class split sums to %d of %d", got, res.Summary.CNFs)
	}
	if res.Leakage == nil {
		t.Fatal("batch result has no leakage summary")
	}
	if res.Leakage.LeakToOtherASes != manual.Leakage.LeakToOtherASes() ||
		res.Leakage.LeakToOtherCountries != manual.Leakage.LeakToOtherCountries() {
		t.Errorf("leakage summary (%d,%d) diverges from analysis (%d,%d)",
			res.Leakage.LeakToOtherASes, res.Leakage.LeakToOtherCountries,
			manual.Leakage.LeakToOtherASes(), manual.Leakage.LeakToOtherCountries())
	}
	if len(res.Churn) == 0 {
		t.Error("no churn distributions in result")
	}
}

// TestExperimentStreamingMatchesBatch extends the streaming==batch
// guarantee to the new entry point: a cumulative streaming experiment's
// final window identifies exactly what the batch experiment does.
func TestExperimentStreamingMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := New(WithConfig(cfg), WithStreaming())
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeStreaming {
		t.Fatalf("mode %v, want streaming", res.Mode)
	}
	if len(res.Windows) != cfg.Days {
		t.Fatalf("cumulative stride-1 replay emitted %d windows over %d days", len(res.Windows), cfg.Days)
	}
	final := res.FinalWindow()
	if final.StartDay != 0 || final.EndDay != cfg.Days-1 {
		t.Fatalf("final window covers [%d..%d], want [0..%d]", final.StartDay, final.EndDay, cfg.Days-1)
	}
	if !bytes.Equal(identifiedBytes(res.Identified), identifiedBytes(batch.Identified)) {
		t.Error("streaming experiment's final identifications diverge from batch")
	}
	if !reflect.DeepEqual(final.Identified, res.Identified) {
		t.Error("Result.Identified is not the final window's set")
	}
	if len(res.Convergence) == 0 && len(res.Identified) > 0 {
		t.Error("censors identified but no convergence records")
	}
}

// TestExperimentMatrixMatchesRunner pins the matrix mode to the
// deprecated Runner: same cells, same aggregate.
func TestExperimentMatrixMatchesRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix of pipelines in -short mode")
	}
	base := matrixConfig()
	legacy := AggregateMatrix((&Runner{Workers: 2}).RunMatrix(SeedSweep(base, 2)))

	exp, err := New(WithConfig(base), WithSeedSweep(2), WithMatrixWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeMatrix || res.Matrix == nil {
		t.Fatalf("mode %v, matrix %v", res.Mode, res.Matrix)
	}
	if res.Matrix.Runs != legacy.Runs || res.Matrix.Failed != legacy.Failed {
		t.Fatalf("runs/failed (%d,%d), legacy (%d,%d)",
			res.Matrix.Runs, res.Matrix.Failed, legacy.Runs, legacy.Failed)
	}
	if res.Matrix.TotalCNFs != legacy.TotalCNFs || res.Matrix.UniqueCNFs != legacy.UniqueCNFs {
		t.Fatalf("CNF totals (%d,%d), legacy (%d,%d)",
			res.Matrix.TotalCNFs, res.Matrix.UniqueCNFs, legacy.TotalCNFs, legacy.UniqueCNFs)
	}
	gotRuns := map[ASN]int{}
	for _, c := range res.Matrix.Censors {
		gotRuns[c.ASN] = c.Runs
	}
	if !reflect.DeepEqual(gotRuns, censusRuns(legacy)) {
		t.Fatalf("matrix censors %v diverge from legacy %v", gotRuns, censusRuns(legacy))
	}
	if !reflect.DeepEqual(res.Matrix.Stable, legacy.StableCensors()) {
		t.Fatalf("stable set %v diverges from legacy %v", res.Matrix.Stable, legacy.StableCensors())
	}
	if len(res.Cells) != 2 || len(res.Pipelines) != 2 {
		t.Fatalf("%d cells, %d pipelines, want 2 each", len(res.Cells), len(res.Pipelines))
	}
	for i, cs := range res.Cells {
		if cs.Index != i || cs.Err != nil || cs.CNFs == 0 {
			t.Errorf("cell %d malformed: %+v", i, cs)
		}
	}
}

// TestExperimentMatrixSurvivesFailedCell mirrors the Runner guarantee on
// the new entry point: a broken cell is reported, not fatal.
func TestExperimentMatrixSurvivesFailedCell(t *testing.T) {
	good := matrixConfig()
	bad := matrixConfig()
	bad.ASes = 20
	bad.Vantages = 1000 // impossible: more vantages than stubs
	exp, err := New(WithConfigs(bad, good), WithMatrixWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.Runs != 1 || res.Matrix.Failed != 1 {
		t.Fatalf("runs=%d failed=%d, want 1/1", res.Matrix.Runs, res.Matrix.Failed)
	}
	if res.Cells[0].Err == nil || res.Cells[1].Err != nil {
		t.Fatalf("cell errors misplaced: %v / %v", res.Cells[0].Err, res.Cells[1].Err)
	}
	if res.Pipelines[0] != nil || res.Pipelines[1] == nil {
		t.Fatal("pipelines misplaced across failed/good cells")
	}
}

// --- Event stream ----------------------------------------------------------

// TestEventStreamAndTextRendering checks the typed event stream's shape
// and that TextObserver reproduces the legacy progress lines.
func TestEventStreamAndTextRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	var events []Event
	var text bytes.Buffer
	exp, err := New(
		WithConfig(cfg),
		WithObserver(func(ev Event) { events = append(events, ev) }),
		WithObserver(TextObserver(&text)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	wantStages := []Stage{StageTopology, StageTimeline, StageCensors,
		StageIPASMap, StageScenario, StageMeasure, StageSolve}
	if len(events) != len(wantStages) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(wantStages), events)
	}
	for i, ev := range events {
		if ev.Stage != wantStages[i] {
			t.Errorf("event %d is %v, want %v", i, ev.Stage, wantStages[i])
		}
		if ev.Cell != -1 || ev.Day != -1 || ev.Window != -1 {
			t.Errorf("event %d has stray indices: %+v", i, ev)
		}
		if ev.Stats.Seed != cfg.Seed {
			t.Errorf("event %d seed %d, want %d", i, ev.Stats.Seed, cfg.Seed)
		}
	}

	want := fmt.Sprintf("generating topology (%d ASes, %d countries)\n", cfg.ASes, cfg.Countries) +
		fmt.Sprintf("generating churn timeline (%d days)\n", cfg.Days) +
		"placing censors\n" +
		"building historical IP-to-AS database\n" +
		fmt.Sprintf("selecting %d vantages and %d URLs\n", cfg.Vantages, cfg.URLs) +
		"running measurement platform\n" +
		"building and solving CNFs\n"
	if text.String() != want {
		t.Errorf("TextObserver output diverges from the legacy progress lines:\n%q\nwant\n%q", text.String(), want)
	}
}

// TestStreamingEventStream checks the per-day/per-window events.
func TestStreamingEventStream(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	days, windows := 0, 0
	lastWindow := -1
	exp, err := New(WithConfig(cfg), WithWindow(12), WithStride(3),
		WithObserver(func(ev Event) {
			switch ev.Stage {
			case StageDay:
				if ev.Day != days {
					t.Errorf("day event %d out of order (got ordinal %d)", days, ev.Day)
				}
				days++
			case StageWindow:
				if ev.Window != lastWindow+1 {
					t.Errorf("window event %d out of order (got ordinal %d)", lastWindow+1, ev.Window)
				}
				lastWindow = ev.Window
				windows++
				if ev.Stats.CNFs == 0 && ev.Stats.Censors > 0 {
					t.Errorf("window %d names censors with zero CNFs", ev.Window)
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if days != cfg.Days {
		t.Errorf("observed %d day events over %d days", days, cfg.Days)
	}
	if windows != len(res.Windows) {
		t.Errorf("observed %d window events for %d windows", windows, len(res.Windows))
	}
}

// --- Cancellation ----------------------------------------------------------

// settleGoroutines polls until the goroutine count returns to the
// baseline (plus slack for runtime helpers), failing after the deadline.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runCanceled runs the experiment on a context that an observer cancels
// at the given stage, under a watchdog, and asserts the run returns
// context.Canceled promptly and leaks no goroutines.
func runCanceled(t *testing.T, cancelAt Stage, opts ...Option) {
	t.Helper()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts = append(opts, WithObserver(func(ev Event) {
		if ev.Stage == cancelAt {
			cancel()
		}
	}))
	exp, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := exp.Run(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled at %v: Run returned %v, want context.Canceled", cancelAt, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("canceled at %v: Run did not return within the watchdog", cancelAt)
	}
	settleGoroutines(t, before)
}

func TestRunCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	cfg.Workers = 4
	t.Run("before measurement", func(t *testing.T) {
		runCanceled(t, StageMeasure, WithConfig(cfg))
	})
	t.Run("before solve", func(t *testing.T) {
		runCanceled(t, StageSolve, WithConfig(cfg))
	})
	t.Run("mid substrate", func(t *testing.T) {
		runCanceled(t, StageCensors, WithConfig(cfg))
	})
	t.Run("mid stream replay", func(t *testing.T) {
		runCanceled(t, StageWindow, WithConfig(cfg), WithWindow(10), WithStride(5))
	})
	t.Run("mid matrix", func(t *testing.T) {
		runCanceled(t, StageCell, WithConfig(matrixConfig()), WithSeedSweep(4), WithMatrixWorkers(2))
	})
}

func TestRunPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp, err := New(WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := exp.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on a pre-canceled ctx returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-canceled Run took %v", elapsed)
	}
}

func TestRunDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	exp, err := New(WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run past its deadline returned %v", err)
	}
	settleGoroutines(t, before)
}

func TestRunNilContext(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	exp, err := New(WithConfig(matrixConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(nil); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("Run(nil) = %v", err)
	}
}
