package churntomo

// The coordinator side of distributed execution (see WithDistributed).
// Matrix cells — or, for a single batch run, contiguous day ranges of its
// measurement schedule — are serialized into self-contained job envelopes
// and dispatched to a pool of worker subprocesses (internal/distrib); the
// results merge through the same deterministic aggregation the in-process
// paths use, so the output is byte-identical at any worker count.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"churntomo/internal/dataset"
	"churntomo/internal/distrib"
	"churntomo/internal/iclab"
	"churntomo/internal/leakage"
	"churntomo/internal/tomo"
)

// CellError is a matrix cell that failed in a worker process. Unwrap
// exposes the transport-level *distrib.WorkerError (the worker crashed on
// both attempts) or deterministic *distrib.RemoteError behind it.
type CellError struct {
	// Cell is the matrix cell index, -1 for a non-matrix job.
	Cell int
	Err  error
}

// Error implements error.
func (e *CellError) Error() string {
	if e.Cell < 0 {
		return fmt.Sprintf("churntomo: distributed run: %v", e.Err)
	}
	return fmt.Sprintf("churntomo: matrix cell %d: %v", e.Cell, e.Err)
}

// Unwrap exposes the underlying worker failure.
func (e *CellError) Unwrap() error { return e.Err }

// workerCommand resolves the worker argv: the WithWorkerBinary override,
// or the running binary re-executed with the magic worker argument (which
// MaybeWorker intercepts — churnlab and the test binaries both do).
func (e *Experiment) workerCommand() ([]string, error) {
	if len(e.workerCmd) > 0 {
		return e.workerCmd, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("churntomo: resolving the worker binary (own executable): %w", err)
	}
	return []string{exe, workerArg}, nil
}

// cellEnvelope serializes one matrix cell as a self-contained job: the
// cell config plus a reference to its measurement source.
func (e *Experiment) cellEnvelope(cfg Config, cell int) ([]byte, error) {
	env := jobEnvelope{Kind: jobKindCell, Config: cfg, MinCNFs: e.resolvedMinCNFs(), MemoryMB: e.workerMemMB}
	env.Config.Progress = nil
	src := e.sourceFor(cell)
	switch s := src.(type) {
	case *ScenarioSource:
		// The scenario name travels in Config.Scenario; New rejected specs.
	case *FileSource:
		env.SourcePath = s.Path
	case *Dataset:
		f, err := publicToFile(s)
		if err != nil {
			return nil, fmt.Errorf("churntomo: cell %d: %w", cell, err)
		}
		var buf bytes.Buffer
		if err := dataset.Encode(&buf, f); err != nil {
			return nil, fmt.Errorf("churntomo: cell %d: encoding inline dataset: %w", cell, err)
		}
		env.SourceData = buf.Bytes()
	default:
		return nil, fmt.Errorf("churntomo: cell %d: source %q cannot cross the worker process boundary", cell, src.Label())
	}
	return json.Marshal(&env)
}

// runMatrixDistributed executes the matrix cells in worker subprocesses,
// one envelope per cell, and returns per-cell results in input order —
// the distributed twin of runMatrixCells. Worker events are re-tagged with
// their cell index and fed to the observers live; each settled cell emits
// the same StageCell event the in-process path would. A failed cell
// carries a *CellError instead of aborting the sweep; only a done ctx (or
// an unresolvable worker command) fails the run itself.
func (e *Experiment) runMatrixDistributed(ctx context.Context, cfgs []Config) ([]MatrixResult, error) {
	cmd, err := e.workerCommand()
	if err != nil {
		return nil, err
	}
	jobs := make([][]byte, len(cfgs))
	for i := range cfgs {
		if jobs[i], err = e.cellEnvelope(cfgs[i], i); err != nil {
			return nil, err
		}
	}
	// Indexed writes from OnDone are race-free: each job settles exactly
	// once, and distrib.Run joins every driver before returning.
	summaries := make([]*CellSummary, len(cfgs))
	cellErrs := make([]error, len(cfgs))
	// Outcomes are consumed through OnDone (which also drives the live
	// StageCell events); only the run-level error matters here.
	_, runErr := distrib.Run(ctx, distrib.Options{
		Procs:   e.procs,
		Command: cmd,
		OnEvent: func(job int, payload []byte) {
			var w wireEvent
			if err := json.Unmarshal(payload, &w); err != nil {
				return
			}
			ev := eventFromWire(w)
			ev.Cell = job
			e.emit(ev)
		},
		OnDone: func(job int, out distrib.Outcome) {
			if out.Err != nil {
				cellErrs[job] = &CellError{Cell: job, Err: out.Err}
			} else {
				var w wireCellResult
				if err := json.Unmarshal(out.Payload, &w); err != nil {
					cellErrs[job] = &CellError{Cell: job, Err: fmt.Errorf("decoding cell result: %w", err)}
				} else {
					summaries[job] = summaryFromWire(&w)
				}
			}
			if errors.Is(out.Err, context.Canceled) || errors.Is(out.Err, context.DeadlineExceeded) {
				return // a canceled cell is not an outcome worth reporting
			}
			ev := newEvent(StageCell)
			ev.Cell = job
			ev.Err = cellErrs[job]
			ev.Stats.Seed = cfgs[job].Seed
			if s := summaries[job]; s != nil {
				ev.Stats.Censors = len(s.Identified)
				ev.Stats.CNFs = s.CNFs
			}
			e.emit(ev)
		},
	}, jobs)
	if runErr != nil {
		return nil, runErr
	}
	results := make([]MatrixResult, len(cfgs))
	for i := range cfgs {
		results[i] = MatrixResult{Index: i, Config: cfgs[i], Summary: summaries[i], Err: cellErrs[i]}
	}
	return results, nil
}

// dayRanges splits a days-long schedule into contiguous [lo, hi) chunks
// for the worker pool — several chunks per worker, so a slow process never
// strands a quarter of the schedule behind it.
func dayRanges(days, procs int) [][2]int {
	chunks := procs * 4
	if chunks > days {
		chunks = days
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([][2]int, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := i*days/chunks, (i+1)*days/chunks
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// runCellDistributed executes one batch cell with its measurement days
// fanned out across worker subprocesses: the coordinator builds the world
// (and narrates the substrate stages, exactly as an in-process run would),
// workers measure disjoint day ranges, and the format-v1 slices merge
// through MergeShards into the same record sequence — then the solve runs
// locally on the merged dataset. Byte-identical to runCell at any worker
// count; day-sharded randomness makes that a property of the engine, not
// of scheduling.
func (e *Experiment) runCellDistributed(ctx context.Context, cfg Config) (*cellRun, error) {
	cfg.Progress = nil
	emit := func(ev Event) {
		ev.Cell = -1
		e.emit(ev)
	}
	src, ok := e.sourceFor(-1).(*ScenarioSource)
	if !ok {
		// New validates this; keep the failure typed rather than panicking.
		return nil, fmt.Errorf("churntomo: distributed batch runs require scenario synthesis")
	}
	spec, err := src.spec(e, cfg)
	if err != nil {
		return nil, err
	}
	cfg.Scenario = spec.Name
	p, err := prepareSpecCtx(ctx, cfg, spec, emit)
	if err != nil {
		return nil, err
	}
	ev := newEvent(StageMeasure)
	ev.Stats.Seed = p.Config.Seed
	emit(ev)

	days := p.Scenario.Days()
	ranges := dayRanges(days, e.procs)
	cmd, err := e.workerCommand()
	if err != nil {
		return nil, err
	}
	jobs := make([][]byte, len(ranges))
	for i, r := range ranges {
		env := jobEnvelope{Kind: jobKindDays, Config: p.Config, MemoryMB: e.workerMemMB, DayLo: r[0], DayHi: r[1]}
		env.Config.Progress = nil
		if jobs[i], err = json.Marshal(&env); err != nil {
			return nil, err
		}
	}
	outs, err := distrib.Run(ctx, distrib.Options{Procs: e.procs, Command: cmd}, jobs)
	if err != nil {
		return nil, err
	}
	shards := make([][]iclab.Record, days)
	for i, out := range outs {
		lo, hi := ranges[i][0], ranges[i][1]
		if out.Err != nil {
			return nil, fmt.Errorf("churntomo: distributed measurement days %d..%d: %w", lo, hi-1, out.Err)
		}
		f, err := dataset.Decode(bytes.NewReader(out.Payload))
		if err != nil {
			return nil, fmt.Errorf("churntomo: distributed measurement days %d..%d: decoding slice: %w", lo, hi-1, err)
		}
		if len(f.Days) != days {
			return nil, fmt.Errorf("churntomo: distributed measurement days %d..%d: worker returned a %d-day slice for a %d-day schedule", lo, hi-1, len(f.Days), days)
		}
		copy(shards[lo:hi], f.Days[lo:hi])
	}
	p.Dataset = iclab.NewDataset(p.Scenario, iclab.MergeShards(shards))
	ev = newEvent(StageSolve)
	ev.Stats.Seed = p.Config.Seed
	emit(ev)
	p.Instances, p.Outcomes, err = tomo.BuildAndSolveCtx(ctx, p.Dataset.Records, tomo.BuildConfig{Workers: p.Config.Workers})
	if err != nil {
		return nil, err
	}
	p.Identified = tomo.IdentifyCensors(p.Outcomes, e.resolvedMinCNFs())
	p.Leakage = leakage.Analyze(p.Outcomes, p.Graph)
	return &cellRun{cfg: p.Config, pipe: p}, nil
}
