package churntomo

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, what string, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = toString(r)
			}
		}()
		fn()
		t.Fatalf("%s did not panic", what)
	}()
	return msg
}

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if err, ok := v.(error); ok {
		return err.Error()
	}
	return ""
}

// TestDeprecatedPipelinePanicsPinned pins the deprecated shims' panic
// behavior: callers that relied on "Localize before Measure" aborting the
// process keep exactly that, message included.
func TestDeprecatedPipelinePanicsPinned(t *testing.T) {
	p := &Pipeline{}
	if msg := mustPanic(t, "Localize on a measureless pipeline", p.Localize); msg != "churntomo: Localize before Measure" {
		t.Errorf("Localize panic message = %q", msg)
	}
	if msg := mustPanic(t, "Measure on a prepareless pipeline", p.Measure); msg != "churntomo: Measure before Prepare" {
		t.Errorf("Measure panic message = %q", msg)
	}
}

// TestPipelineCtxMethodsReturnErrors covers the new code path: the same
// misuse yields descriptive errors instead of panics.
func TestPipelineCtxMethodsReturnErrors(t *testing.T) {
	p := &Pipeline{}
	if err := p.LocalizeCtx(context.Background()); err == nil {
		t.Error("LocalizeCtx succeeded without a dataset")
	} else if !strings.Contains(err.Error(), "Localize before Measure") {
		t.Errorf("LocalizeCtx error %q does not explain itself", err)
	}
	if err := p.MeasureCtx(context.Background()); err == nil {
		t.Error("MeasureCtx succeeded without a scenario")
	} else if !strings.Contains(err.Error(), "Measure before Prepare") {
		t.Errorf("MeasureCtx error %q does not explain itself", err)
	}
	// A nil context means context.Background, matching Experiment.Run.
	if err := p.LocalizeCtx(nil); err == nil || !strings.Contains(err.Error(), "Localize before Measure") {
		t.Errorf("LocalizeCtx(nil ctx) error = %v", err)
	}
}

// TestPipelineCtxMatchesDeprecated pins that the error-returning methods
// run the same pipeline as the deprecated panicking ones.
func TestPipelineCtxMatchesDeprecated(t *testing.T) {
	if testing.Short() {
		t.Skip("two end-to-end runs")
	}
	cfg := exportTestConfig()
	cfg.Days = 10

	old, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	old.Measure()
	old.Localize()

	ctx := context.Background()
	fresh, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.MeasureCtx(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fresh.LocalizeCtx(ctx); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(old.Identified, fresh.Identified) {
		t.Errorf("identifications diverge: deprecated %d, ctx %d", len(old.Identified), len(fresh.Identified))
	}
	if len(old.Outcomes) != len(fresh.Outcomes) {
		t.Errorf("outcome counts diverge: %d vs %d", len(old.Outcomes), len(fresh.Outcomes))
	}
}

// TestPipelineCtxCancellation checks the ctx paths abort cleanly.
func TestPipelineCtxCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a prepared substrate")
	}
	cfg := exportTestConfig()
	cfg.Days = 10
	p, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.MeasureCtx(ctx); err != context.Canceled {
		t.Errorf("MeasureCtx under canceled ctx: %v", err)
	}
	if p.Dataset != nil {
		t.Error("canceled MeasureCtx populated Dataset")
	}
	if err := p.MeasureCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.LocalizeCtx(ctx); err != context.Canceled {
		t.Errorf("LocalizeCtx under canceled ctx: %v", err)
	}
}
