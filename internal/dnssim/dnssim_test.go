package dnssim

import (
	"math/rand/v2"
	"testing"
	"time"

	"churntomo/internal/netaddr"
	"churntomo/internal/netsim"
)

func params() Params {
	return Params{
		At:           time.Date(2016, 5, 1, 12, 0, 0, 0, time.UTC),
		ClientIP:     netaddr.MustParseIP("20.0.0.5"),
		ResolverIP:   netaddr.MustParseIP("8.8.8.8"),
		Host:         "h.example.com",
		QueryID:      77,
		ResolverDist: 9,
		TrueAnswer:   netaddr.MustParseIP("21.0.0.9"),
		ResolverTTL:  64,
	}
}

func TestSimulateCleanShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	c := Simulate(params(), nil, Noise{}, rng)
	if c.Len() != 2 {
		t.Fatalf("clean lookup has %d packets, want query+answer", c.Len())
	}
	q, err := netsim.UnmarshalDNS(c.Packets[0].Payload)
	if err != nil || q.Response {
		t.Fatalf("first packet not a query: %v %v", q, err)
	}
	a, err := netsim.UnmarshalDNS(c.Packets[1].Payload)
	if err != nil || !a.Response || a.Answer != params().TrueAnswer {
		t.Fatalf("answer wrong: %v %v", a, err)
	}
	if a.ID != q.ID {
		t.Error("query ID mismatch")
	}
	// Resolver answer TTL reflects the hop distance.
	if want := netsim.ArrivalTTL(64, 9); c.Packets[1].TTL != want {
		t.Errorf("answer TTL %d, want %d", c.Packets[1].TTL, want)
	}
}

func TestSimulateInjectionWinsRace(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	inj := []Injector{{ASN: 4134, Dist: 3, Answer: netaddr.MustParseIP("10.0.0.1"), InitTTL: 255}}
	c := Simulate(params(), inj, Noise{}, rng)
	if c.Len() != 3 {
		t.Fatalf("packets %d, want 3", c.Len())
	}
	first := c.Packets[1] // after the query
	if !first.Injected || first.InjectedBy != 4134 {
		t.Fatalf("injected answer did not arrive first: %+v", first)
	}
	m, _ := netsim.UnmarshalDNS(first.Payload)
	if m.Answer != netaddr.MustParseIP("10.0.0.1") {
		t.Errorf("sinkhole answer wrong: %v", m.Answer)
	}
	if want := netsim.ArrivalTTL(255, 3); first.TTL != want {
		t.Errorf("injected TTL %d, want %d", first.TTL, want)
	}
}

func TestSimulateInjectorBeyondTTLReach(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	// An injector whose TTL cannot reach the client emits nothing.
	inj := []Injector{{ASN: 1, Dist: 70, Answer: 1, InitTTL: 64}}
	c := Simulate(params(), inj, Noise{}, rng)
	if c.Len() != 2 {
		t.Fatalf("unreachable injector still injected: %d packets", c.Len())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(params(), nil, Noise{}, rand.New(rand.NewPCG(9, 9)))
	b := Simulate(params(), nil, Noise{}, rand.New(rand.NewPCG(9, 9)))
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic")
	}
	for i := range a.Packets {
		if !a.Packets[i].At.Equal(b.Packets[i].At) || a.Packets[i].TTL != b.Packets[i].TTL {
			t.Fatalf("packet %d differs", i)
		}
	}
}
