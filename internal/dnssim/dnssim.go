package dnssim

import (
	"math/rand/v2"
	"time"

	"churntomo/internal/netaddr"
	"churntomo/internal/netsim"
)

// HopLatency is the simulated one-way per-hop latency. Only ratios matter
// (who wins the race to the client), but realistic magnitudes keep captures
// readable.
const HopLatency = 2 * time.Millisecond

// Params describes one DNS lookup.
type Params struct {
	At           time.Time
	ClientIP     netaddr.IP
	ResolverIP   netaddr.IP
	Host         string
	QueryID      uint16
	ResolverDist int        // hop distance client -> resolver
	TrueAnswer   netaddr.IP // the host's real address
	ResolverTTL  uint8      // initial TTL of the resolver's reply (64/128)
}

// Injector is one on-path DNS injection middlebox.
type Injector struct {
	ASN     uint32
	Dist    int        // hop distance client -> middlebox
	Answer  netaddr.IP // the spoofed A record (sinkhole)
	InitTTL uint8
}

// Noise parameterizes organic imperfections.
type Noise struct {
	// DupResponseProb is the chance the resolver's answer is duplicated
	// (retransmission) — an organic dual response, i.e. a false positive.
	DupResponseProb float64
	// SlowInjectorProb is the chance an injector's answer is delayed past
	// the detection window — a miss.
	SlowInjectorProb float64
}

// Simulate produces the client-side capture of one lookup.
func Simulate(p Params, injectors []Injector, n Noise, rng *rand.Rand) netsim.Capture {
	var c netsim.Capture
	query := netsim.Packet{
		At:      p.At,
		Src:     p.ClientIP,
		Dst:     p.ResolverIP,
		TTL:     netsim.InitTTLLinux,
		Proto:   netsim.ProtoUDP,
		SrcPort: uint16(20000 + rng.IntN(40000)),
		DstPort: netsim.DNSPort,
		Payload: netsim.MarshalDNS(netsim.DNSMessage{ID: p.QueryID, Host: p.Host}),
	}
	c.Add(query)

	// Injected responses: the middlebox sees the query after Dist hops and
	// its spoofed answer takes Dist hops back.
	for _, inj := range injectors {
		delay := time.Duration(2*inj.Dist) * HopLatency
		if rng.Float64() < n.SlowInjectorProb {
			delay += 3 * time.Second // lost the race badly; outside window
		}
		ttl := netsim.ArrivalTTL(inj.InitTTL, inj.Dist)
		if ttl == 0 {
			continue
		}
		c.Add(netsim.Packet{
			At:         p.At.Add(delay),
			Src:        p.ResolverIP, // spoofed
			Dst:        p.ClientIP,
			TTL:        ttl,
			Proto:      netsim.ProtoUDP,
			SrcPort:    netsim.DNSPort,
			DstPort:    query.SrcPort,
			Payload:    netsim.MarshalDNS(netsim.DNSMessage{ID: p.QueryID, Response: true, Host: p.Host, Answer: inj.Answer}),
			Injected:   true,
			InjectedBy: inj.ASN,
		})
	}

	// The real answer. Resolution adds a little server-side latency.
	resolveDelay := time.Duration(2*p.ResolverDist)*HopLatency + time.Duration(rng.IntN(20)+5)*time.Millisecond
	real := netsim.Packet{
		At:      p.At.Add(resolveDelay),
		Src:     p.ResolverIP,
		Dst:     p.ClientIP,
		TTL:     netsim.ArrivalTTL(p.ResolverTTL, p.ResolverDist),
		Proto:   netsim.ProtoUDP,
		SrcPort: netsim.DNSPort,
		DstPort: query.SrcPort,
		Payload: netsim.MarshalDNS(netsim.DNSMessage{ID: p.QueryID, Response: true, Host: p.Host, Answer: p.TrueAnswer}),
	}
	c.Add(real)

	// Organic duplicate (retransmitted answer): a benign dual response.
	if rng.Float64() < n.DupResponseProb {
		dup := real
		dup.At = real.At.Add(time.Duration(rng.IntN(800)+50) * time.Millisecond)
		c.Add(dup)
	}

	c.Sort()
	return c
}
