// Package dnssim simulates the platform's DNS injection test: the client
// resolves the test hostname against both its default resolver and the
// open anycast resolver (the 8.8.8.8 role); on-path injectors race spoofed
// answers against the real one (paper §2.1, "DNS anomalies").
//
// Entry points: Simulate runs one lookup against a resolver with a set of
// on-path Injectors and Noise, returning the client-side capture that
// internal/detect's dual-response detector consumes.
//
// Invariants: injector timing is distance-faithful — a middlebox closer to
// the client races its answer in earlier — and all randomness comes from
// the caller's RNG, so a measurement day's captures are a deterministic
// function of its day seed.
package dnssim
