package lint

// analyzerCtxflow enforces the cancellation discipline ARCHITECTURE.md
// promises ("ctx cancel kills all children, no hang path"):
//
//  1. A function in a deterministic package that takes a
//     context.Context must actually use it — a discarded ctx is a
//     subtree that cancellation can never reach.
//  2. context.Background()/context.TODO() must not originate in root or
//     internal/ outside sanctioned boundaries; minting a fresh root
//     context severs the caller's cancellation chain. Sanctioned
//     boundaries are: the nil-ctx compatibility guard
//     (`if ctx == nil { ctx = context.Background() }`), deprecated
//     shims (doc comment carries "Deprecated:") delegating to the
//     ctx-aware API, and direct delegation to the function's own *Ctx
//     variant.
//  3. In the sanctioned concurrency packages, every blocking operation
//     reachable from a function's entry — bare channel send/recv,
//     range-over-channel, select with no default and no ctx.Done() arm,
//     WaitGroup.Wait, exec.Cmd waits, pipe reads — must be cancellable:
//     inside a select with a Done arm, guarded by exec.CommandContext
//     construction, or carrying a reviewed suppression.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var analyzerCtxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context must flow: no discarded ctx params, no fresh Background/TODO outside sanctioned boundaries, no uncancellable blocking ops in concurrency packages",
	Run:  runCtxflow,
}

func runCtxflow(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		if !deterministic(m, p) {
			continue
		}
		units := packageFuncs(p)
		findings = append(findings, ctxParamFindings(m, p, units)...)
		findings = append(findings, ctxRootFindings(m, p)...)
		if concurrencyPackage(m, p) {
			idx := buildOriginIndex(p)
			for _, u := range units {
				findings = append(findings, ctxBlockingFindings(m, p, idx, u)...)
			}
		}
	}
	return findings
}

// ctxParamFindings flags context parameters that a function body never
// reads. A closure capturing ctx counts as a use — the full body is
// inspected, nested literals included, because cancellation through a
// captured ctx is still cancellation.
func ctxParamFindings(m *Module, p *Package, units []*funcUnit) []Finding {
	var findings []Finding
	for _, u := range units {
		ft := u.funcType()
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if !isContextType(p, field.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					findings = append(findings, Finding{
						Pos:      m.Fset.Position(name.Pos()),
						Analyzer: "ctxflow",
						Message:  u.name() + " declares its context parameter as _; a discarded ctx makes the call subtree uncancellable — plumb it through or drop the parameter",
					})
					continue
				}
				obj := p.Info.Defs[name]
				if obj == nil || identUsed(u.body(), p, obj) {
					continue
				}
				findings = append(findings, Finding{
					Pos:      m.Fset.Position(name.Pos()),
					Analyzer: "ctxflow",
					Message:  u.name() + " never uses its context parameter " + name.Name + "; pass it to the blocking work it guards or drop it",
				})
			}
		}
	}
	return findings
}

// identUsed reports whether any identifier in body (nested function
// literals included — closure capture is a real use) resolves to obj.
func identUsed(body *ast.BlockStmt, p *Package, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// isContextType reports whether the type expression is context.Context.
func isContextType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxRootFindings flags context.Background()/TODO() calls outside the
// sanctioned boundary patterns.
func ctxRootFindings(m *Module, p *Package) []Finding {
	var findings []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			findings = append(findings, ctxRootInFunc(m, p, fn)...)
		}
	}
	return findings
}

func ctxRootInFunc(m *Module, p *Package, fn *ast.FuncDecl) []Finding {
	deprecated := fn.Doc != nil && strings.Contains(fn.Doc.Text(), "Deprecated:")
	sanctioned := nilGuardSanctioned(p, fn.Body)
	var findings []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := contextRootCall(p, call)
		if name == "" {
			return true
		}
		if deprecated || sanctioned[call] {
			return true
		}
		// Direct delegation to this function's own ctx-aware variant:
		// `func Run(...) { return RunCtx(context.Background(), ...) }` is
		// the compatibility-shim boundary and keeps exactly one
		// Background per legacy entry point.
		if parent := enclosingCall(fn.Body, call); parent != nil {
			if strings.EqualFold(calleeName(parent), fn.Name.Name+"Ctx") {
				return true
			}
		}
		findings = append(findings, Finding{
			Pos:      m.Fset.Position(call.Pos()),
			Analyzer: "ctxflow",
			Message: "context." + name + " in " + fn.Name.Name + " mints a fresh root context, severing the caller's cancellation chain; " +
				"accept a ctx parameter (or delegate through the *Ctx variant / nil-ctx guard)",
		})
		return true
	})
	return findings
}

// contextRootCall returns "Background" or "TODO" when call invokes that
// context function, "" otherwise.
func contextRootCall(p *Package, call *ast.CallExpr) string {
	fn, _ := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if n := fn.Name(); n == "Background" || n == "TODO" {
		return n
	}
	return ""
}

// nilGuardSanctioned collects the Background/TODO calls appearing as the
// sole assignment inside `if x == nil { x = context.Background() }` —
// the documented compatibility guard for callers passing a nil ctx.
func nilGuardSanctioned(p *Package, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	ok := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifst, isIf := n.(*ast.IfStmt)
		if !isIf || ifst.Else != nil {
			return true
		}
		bin, isBin := ifst.Cond.(*ast.BinaryExpr)
		if !isBin || bin.Op != token.EQL {
			return true
		}
		var guarded ast.Expr
		switch {
		case isNilIdent(bin.Y):
			guarded = bin.X
		case isNilIdent(bin.X):
			guarded = bin.Y
		default:
			return true
		}
		target := types.ExprString(guarded)
		for _, s := range ifst.Body.List {
			as, isAssign := s.(*ast.AssignStmt)
			if !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			if types.ExprString(as.Lhs[0]) != target {
				continue
			}
			if call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall && contextRootCall(p, call) != "" {
				ok[call] = true
			}
		}
		return true
	})
	return ok
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// enclosingCall finds the innermost call expression within root that
// carries target among its direct arguments.
func enclosingCall(root ast.Node, target *ast.CallExpr) *ast.CallExpr {
	var parent *ast.CallExpr
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if ast.Unparen(arg) == target {
				parent = call
			}
		}
		return parent == nil
	})
	return parent
}

// ctxBlockingFindings checks every blocking op in the live blocks of one
// concurrency-package function for a cancellation guard.
func ctxBlockingFindings(m *Module, p *Package, idx originIndex, u *funcUnit) []Finding {
	var findings []Finding
	done := doneChannels(p, u)
	for _, b := range u.g.blocks {
		if !b.live {
			continue
		}
		for _, op := range blockBlockingOps(p, b) {
			if sel, ok := op.node.(*ast.SelectStmt); ok {
				if selectHasDoneArm(p, sel, done) {
					continue
				}
				findings = append(findings, ctxBlockingFinding(m, u, op,
					"add a ctx.Done() arm so cancellation can preempt the wait"))
				continue
			}
			if op.exec && op.recv != nil && tracesToCommandContext(p, idx, op.recv) {
				// The context owns the child's lifetime: cancellation
				// kills the process, which unblocks the wait.
				continue
			}
			findings = append(findings, ctxBlockingFinding(m, u, op,
				"wrap it in a select with a ctx.Done() arm (or construct via exec.CommandContext) so cancellation cannot hang the pool"))
		}
	}
	return findings
}

func ctxBlockingFinding(m *Module, u *funcUnit, op blockingOp, fix string) Finding {
	return Finding{
		Pos:      m.Fset.Position(op.node.Pos()),
		Analyzer: "ctxflow",
		Message:  op.what + " in " + u.name() + " is not cancellable; " + fix,
	}
}
