// Package det shows that internal/... packages are deterministic too.
package det

import "time"

// Age reads the wall clock through time.Since.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}
