// Command tool shows that cmd/ binaries are exempt: interface glue may
// read clocks and the environment freely.
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	fmt.Println(time.Now(), os.Getenv("HOME"))
}
