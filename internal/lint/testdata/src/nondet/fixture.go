// Package fixture exercises the nondet analyzer: ambient-nondeterminism
// reads in a deterministic (module-root) package.
package fixture

import (
	"math/rand/v2"
	"os"
	"time"
)

// Clock reads the wall clock directly.
func Clock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Env reads the process environment.
func Env() string {
	return os.Getenv("HOME") // want "os.Getenv reads the process environment"
}

// Global drives the shared global RNG.
func Global() int {
	return rand.IntN(10) // want "uses the shared global RNG"
}

// Seeded constructs an explicitly seeded generator: the constructors are
// allowed, and methods on the generator are deterministic given it.
func Seeded(seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, 0x1))
	return rng.IntN(10)
}

// Elapsed uses only time arithmetic — methods are fine.
func Elapsed(a, b time.Time) time.Duration {
	return b.Sub(a)
}

// Suppressed demonstrates the end-of-line suppression form.
func Suppressed() time.Time {
	return time.Now() //churnvet:ok nondet -- fixture: demonstrates suppression
}
