module churnvet.fixture/nondet

go 1.22
