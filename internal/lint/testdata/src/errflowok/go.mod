module churnvet.fixture/errflowok

go 1.22
