// Package fixture carries suppressed errflow violations: Run must
// report nothing, RunAll must surface them as suppressed.
package fixture

import (
	"io"
	"os"
)

// Cleanup drops removal errors on a best-effort scratch path.
func Cleanup(path string) {
	_ = os.Remove(path) //churnvet:ok errflow -- fixture: best-effort scratch cleanup; a leftover file is harmless
}

// AtEOF compares identity against a reader contract that documents the
// unwrapped sentinel.
func AtEOF(err error) bool {
	//churnvet:ok errflow -- fixture: legacy reader contract returns io.EOF unwrapped by documented guarantee
	return err == io.EOF
}
