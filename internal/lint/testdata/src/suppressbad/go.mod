module churnvet.fixture/suppressbad

go 1.22
