// Package fixture exercises the suppress analyzer: malformed
// //churnvet:ok comments are findings themselves, so a typo can never
// silently disable a real check.
package fixture

//churnvet:ok nosuch -- the analyzer does not exist // want "unknown analyzer"

//churnvet:frobnicate cache // want "unknown churnvet directive"

//churnvet:okay maporder -- close but no // want "unknown churnvet directive"

/* want "names no analyzer" */ //churnvet:ok

//churnvet:ok maporder goroutine -- two names // want "exactly one analyzer"

/* want "missing the" */ //churnvet:ok maporder

/* want "empty reason" */ //churnvet:ok maporder --

//churnvet:ok maporder -- a well-formed suppression is not a finding

// A plain comment mentioning churnvet in prose is not a directive.

// Placeholder is here so the package has a declaration.
var Placeholder = 0
