module churnvet.fixture/errflow

go 1.22
