// Package fixture exercises errflow: discarded errors, identity
// comparisons, and %v-wrapped chains.
package fixture

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrStale is a sentinel for the comparison cases.
var ErrStale = errors.New("stale")

func work() error                       { return nil }
func count() (int, error)               { return 0, nil }
func closeIt() error                    { return nil }
func pushCtx(ctx context.Context) error { return ctx.Err() }

// BareDiscard drops the only result.
func BareDiscard() {
	work() // want "call to .*work discards its error result"
}

// DeferDiscard drops it at function exit.
func DeferDiscard() {
	defer closeIt() // want "deferred call to .*closeIt discards its error result"
}

// BlankDiscard launders the drop through a blank assignment.
func BlankDiscard() {
	_ = work() // want "blank assignment discards the error result of .*work"
}

// TupleDiscard keeps the value and drops the error.
func TupleDiscard() int {
	n, _ := count() // want "blank assignment discards the error result of .*count"
	return n
}

// Handled checks the error; no finding.
func Handled() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// PrintExempt uses the fmt print family; exempt by convention.
func PrintExempt(sb *strings.Builder) {
	fmt.Fprintf(sb, "progress %d%%", 10)
	sb.WriteString("done")
}

// ShimExempt is the deprecated-shim discard: ctx-free wrapper, errors
// travel in-band; exempt by convention.
func ShimExempt() {
	_ = pushCtx(context.Background())
}

// IdentityEq compares error identity.
func IdentityEq(err error) bool {
	return err == io.EOF // want "error compared with =="
}

// IdentityNeq is the negated form.
func IdentityNeq(err error) bool {
	return err != ErrStale // want "error compared with !="
}

// NilCheck is the error protocol itself; no finding.
func NilCheck(err error) bool {
	return err != nil
}

// IsGood matches through the chain; no finding.
func IsGood(err error) bool {
	return errors.Is(err, ErrStale)
}

// WrapV embeds an error unwrappably.
func WrapV(err error) error {
	return fmt.Errorf("load: %v", err) // want "embeds an error with %v"
}

// WrapS is the same mistake with %s.
func WrapS(err error) error {
	return fmt.Errorf("load: %s", err) // want "embeds an error with %s"
}

// WrapGood keeps the chain; no finding.
func WrapGood(err error) error {
	return fmt.Errorf("load day %d: %w", 3, err)
}
