// Command tool shows the discard scope: cmd/ binaries are interface
// glue, outside the deterministic packages, so a dropped error here is
// not a finding (identity comparisons and %v-wrapping still are,
// module-wide, but this file has none).
package main

import "os"

func main() {
	_ = os.Remove("scratch") // no finding: cmd/ is outside the discard scope
}
