// Package b closes the cycle back to a.
package b

import "churnvet.fixture/badcycle/a"

// Y references a so the import is used.
var Y = a.X
