module churnvet.fixture/badcycle

go 1.22
