// Package a imports b, which imports a — an import cycle.
package a

import "churnvet.fixture/badcycle/b"

// X references b so the import is used.
var X = b.Y
