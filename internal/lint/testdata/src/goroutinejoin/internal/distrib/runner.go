// Package distrib pins that join discipline covers every sanctioned
// concurrency package, not just the pool.
package distrib

// Serve leaks the handler goroutine past its spawner.
func Serve(conns []int) {
	for range conns {
		go func() {}() // want "no reachable join"
	}
}
