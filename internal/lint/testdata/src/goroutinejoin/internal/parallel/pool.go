// Package parallel exercises goroutinejoin inside a sanctioned
// concurrency package: every spawn needs a reachable join.
package parallel

import "sync"

func work(wg *sync.WaitGroup) { wg.Done() }

// Leak spawns and returns immediately.
func Leak() {
	go func() {}() // want "no reachable join"
}

// LoopLeak leaks from inside a loop with no join after it.
func LoopLeak(n int) {
	for i := 0; i < n; i++ {
		go func() {}() // want "no reachable join"
	}
}

// Joined waits on the spawned worker before returning.
func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go work(&wg)
	wg.Wait()
}

// DeferJoined registers the join before spawning; defers run on every
// exit path.
func DeferJoined() {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go work(&wg)
}

// ChanJoined blocks on the result channel.
func ChanJoined() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// DrainJoined ranges over the results.
func DrainJoined() int {
	ch := make(chan int, 4)
	go func() {
		for i := 0; i < 4; i++ {
			ch <- i
		}
		close(ch)
	}()
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

// SelectJoined receives in a select arm.
func SelectJoined(stop chan struct{}) int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	select {
	case v := <-ch:
		return v
	case <-stop:
		return 0
	}
}
