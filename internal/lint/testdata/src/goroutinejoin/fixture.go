// Package fixture pins the goroutinejoin scope: the root package is
// not a sanctioned concurrency package, so even a blatant
// fire-and-forget spawn here belongs to the coarse goroutine
// allowlist, not to join analysis.
package fixture

// Detached spawns without a join; no finding here because join
// discipline only applies inside sanctioned packages.
func Detached() {
	go func() {}()
}
