module churnvet.fixture/goroutinejoin

go 1.22
