module churnvet.fixture/lockflow

go 1.22
