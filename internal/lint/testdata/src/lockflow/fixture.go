// Package fixture exercises lockflow: pairing on all CFG paths,
// blocking while holding, and by-value lock copies.
package fixture

import "sync"

// Counter is a lock-guarded value whose type must never be copied.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Double locks a mutex it already holds.
func Double(mu *sync.Mutex) {
	mu.Lock()
	mu.Lock() // want "acquired while already held on some path into here"
	mu.Unlock()
}

// LeakReturn forgets the unlock on the early-return path.
func LeakReturn(mu *sync.Mutex, x bool) {
	mu.Lock()
	if x {
		return // want "still held at return with no unlock or defer on this path"
	}
	mu.Unlock()
}

// LeakEnd falls off the closing brace with the lock held.
func LeakEnd(mu *sync.Mutex) { mu.Lock() } // want "still held when LeakEnd falls off the end"

// DeferGood releases through defer on every path; no finding.
func DeferGood(mu *sync.Mutex, x bool) int {
	mu.Lock()
	defer mu.Unlock()
	if x {
		return 1
	}
	return 2
}

// BranchGood unlocks explicitly on both paths; no finding.
func BranchGood(mu *sync.Mutex, x bool) {
	mu.Lock()
	if x {
		mu.Unlock()
		return
	}
	mu.Unlock()
}

// Stray unlocks a mutex this function never locked.
func Stray(mu *sync.Mutex) {
	mu.Unlock() // want "not held on any path into here"
}

// HoldAcrossRecv parks on a channel with the lock held.
func HoldAcrossRecv(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	v := <-ch // want "held across bare channel receive"
	mu.Unlock()
	return v
}

// HoldAcrossSelect parks on a select with the lock held.
func HoldAcrossSelect(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select { // want "held across select"
	case <-ch:
	}
}

// ReadGood pairs the read lock through defer; no finding.
func ReadGood(mu *sync.RWMutex) {
	mu.RLock()
	defer mu.RUnlock()
}

// TryGood releases only when the TryLock succeeded; no finding.
func TryGood(mu *sync.Mutex) bool {
	if mu.TryLock() {
		defer mu.Unlock()
		return true
	}
	return false
}

// CopyValue copies a lock-containing struct out of an lvalue.
func CopyValue(c *Counter) int {
	v := *c // want "assignment copies \\*c containing sync.Mutex by value"
	return v.n
}

// ByValueParam receives a lock-containing struct by value.
func ByValueParam(c Counter) int { // want "parameter of type containing sync.Mutex is passed by value"
	return c.n
}

// ByValueRecv binds a lock-containing receiver by value.
func (c Counter) ByValueRecv() int { // want "receiver of type containing sync.Mutex is passed by value"
	return c.n
}

// RangeCopy copies lock-containing elements through the range value.
func RangeCopy(cs []Counter) int {
	n := 0
	for _, c := range cs { // want "range value copies elements containing sync.Mutex"
		n += c.n
	}
	return n
}

// PointerGood moves the same values around by pointer; no finding.
func PointerGood(cs []*Counter) int {
	n := 0
	for _, c := range cs {
		n += c.n
	}
	return n
}
