module churnvet.fixture/ctxflow

go 1.22
