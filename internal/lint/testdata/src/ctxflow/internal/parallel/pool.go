// Package parallel is a sanctioned concurrency package in this fixture:
// every blocking operation here must be cancellable.
package parallel

import (
	"context"
	"io"
	"os/exec"
	"sync"
)

// Send blocks forever if nobody receives.
func Send(ch chan int) {
	ch <- 1 // want "bare channel send in Send is not cancellable"
}

// Recv blocks forever if nobody sends.
func Recv(ch chan int) int {
	return <-ch // want "bare channel receive in Recv is not cancellable"
}

// Drain blocks until the channel closes.
func Drain(ch chan int) int {
	n := 0
	for range ch { // want "range over channel in Drain is not cancellable"
		n++
	}
	return n
}

// WaitTwo has no default and no Done arm.
func WaitTwo(a, b chan int) int {
	select { // want "select with no default in WaitTwo is not cancellable"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// GoodSelect carries a ctx.Done arm; no finding.
func GoodSelect(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return -1
	}
}

// GoodSelectVar resolves the Done channel through a variable.
func GoodSelectVar(ctx context.Context, ch chan int) int {
	done := ctx.Done()
	select {
	case v := <-ch:
		return v
	case <-done:
		return -1
	}
}

// TrySelect never blocks; no finding.
func TrySelect(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// Join waits without a cancellation path.
func Join(wg *sync.WaitGroup) {
	wg.Wait() // want "sync.WaitGroup.Wait in Join is not cancellable"
}

// BadCmd reaps a child the context cannot kill.
func BadCmd() error {
	cmd := exec.Command("true")
	if err := cmd.Start(); err != nil {
		return err
	}
	return cmd.Wait() // want "exec.Cmd.Wait in BadCmd is not cancellable"
}

// GoodCmd builds the child with CommandContext, so cancellation kills
// it and unblocks the reap; no finding.
func GoodCmd(ctx context.Context) error {
	cmd := exec.CommandContext(ctx, "true")
	if err := cmd.Start(); err != nil {
		return err
	}
	return cmd.Wait()
}

// ReadHeader parks on the pipe.
func ReadHeader(r io.Reader) error {
	var hdr [4]byte
	_, err := io.ReadFull(r, hdr[:]) // want "io.ReadFull pipe read in ReadHeader is not cancellable"
	return err
}

// DeadCode never reaches its blocking op: reachability keeps it quiet.
func DeadCode(ch chan int) {
	return
	ch <- 1 // unreachable: no finding
}
