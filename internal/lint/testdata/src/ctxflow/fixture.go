// Package fixture exercises ctxflow's context-plumbing rules in a
// deterministic (root) package.
package fixture

import "context"

// UsesNothing takes a ctx and ignores it.
func UsesNothing(ctx context.Context) int { // want "never uses its context parameter ctx"
	return 1
}

// Blank discards the ctx outright.
func Blank(_ context.Context) int { // want "declares its context parameter as _"
	return 2
}

// Uses reads the ctx; no finding.
func Uses(ctx context.Context) error {
	return ctx.Err()
}

// Captures uses the ctx only through a closure, which still counts —
// cancellation reaches the closure.
func Captures(ctx context.Context) func() error {
	return func() error { return ctx.Err() }
}

// Fresh mints a root context with no sanction.
func Fresh() error {
	ctx := context.Background() // want "mints a fresh root context"
	return ctx.Err()
}

// Todo is the same violation through TODO.
func Todo() error {
	ctx := context.TODO() // want "mints a fresh root context"
	return ctx.Err()
}

// Guard is the sanctioned nil-ctx compatibility pattern; no finding.
func Guard(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Run is a deprecated shim; the Background inside is sanctioned.
//
// Deprecated: use RunCtx.
func Run() error {
	return RunCtx(context.Background())
}

// RunCtx is the cancellable variant.
func RunCtx(ctx context.Context) error {
	return ctx.Err()
}

// Sweep delegates directly to its own *Ctx variant — the compatibility
// boundary — so the Background is sanctioned without a Deprecated mark.
func Sweep() error {
	return SweepCtx(context.Background())
}

// SweepCtx is the cancellable variant.
func SweepCtx(ctx context.Context) error {
	return ctx.Err()
}
