module churnvet.fixture/badtype

go 1.22
