// Package broken fails type-checking: V references an undefined name.
package broken

var V = undefinedIdent
