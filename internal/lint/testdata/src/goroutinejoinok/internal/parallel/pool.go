// Package parallel carries a suppressed goroutinejoin violation: Run
// must report nothing, RunAll must surface it as suppressed.
package parallel

// Watchdog spawns a process-lifetime goroutine by design.
func Watchdog() {
	//churnvet:ok goroutinejoin -- fixture: process-lifetime watchdog; joined implicitly at exit, never by the spawner
	go func() {}()
}
