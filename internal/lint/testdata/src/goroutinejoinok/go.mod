module churnvet.fixture/goroutinejoinok

go 1.22
