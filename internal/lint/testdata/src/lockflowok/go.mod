module churnvet.fixture/lockflowok

go 1.22
