// Package fixture carries suppressed lockflow violations: Run must
// report nothing, RunAll must report them all as suppressed.
package fixture

import "sync"

// Handoff intentionally returns with the lock held: the caller
// documented as the owner releases it.
func Handoff(mu *sync.Mutex) {
	mu.Lock()
	//churnvet:ok lockflow -- fixture: lock handoff protocol; the caller releases after finishing the guarded read
}

// WaitLocked blocks while holding the lock by protocol.
func WaitLocked(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	v := <-ch //churnvet:ok lockflow -- fixture: the sender never takes this lock, so the parked receive cannot deadlock
	return v
}
