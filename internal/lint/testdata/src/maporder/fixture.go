// Package fixture exercises the maporder analyzer: map iteration whose
// body lets the randomized order escape into output.
package fixture

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// CollectUnsorted appends under map iteration and never sorts.
func CollectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

// CollectSorted is the sanctioned collect-then-sort idiom.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectSlicesSorted sorts with the slices package instead.
func CollectSlicesSorted(m map[int]bool) []int {
	var vals []int
	for k := range m {
		vals = append(vals, k)
	}
	slices.Sort(vals)
	return vals
}

// NestedScratch sorts per-iteration scratch inside the outer loop body:
// both the inner collect and the outer loop are safe.
func NestedScratch(m map[string]map[string]int) [][]string {
	var rows [][]string
	var names []string
	for name, inner := range m {
		var ks []string
		for ik := range inner {
			ks = append(ks, ik)
		}
		sort.Strings(ks)
		rows = append(rows, ks)
		names = append(names, name)
	}
	sort.Strings(names)
	sort.Slice(rows, func(i, j int) bool { return len(rows[i]) < len(rows[j]) })
	return rows
}

// Aggregate is order-independent — counters never expose iteration order.
func Aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Reindex writes into another map — also order-independent.
func Reindex(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Render writes bytes inside the loop.
func Render(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "WriteString inside map iteration"
	}
	return sb.String()
}

// Printed formats directly inside the loop.
func Printed(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m {
		fmt.Fprintf(&sb, "%s=%d\n", k, v) // want "fmt.Fprintf inside map iteration"
	}
	return sb.String()
}

// SendAll emits on a channel in randomized order.
func SendAll(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

func emit(string) {}

// Publish uses the event-emission idiom.
func Publish(m map[string]bool) {
	for k := range m {
		emit(k) // want "publishes events in randomized order"
	}
}

// Suppressed carries a written justification for an unsorted collect.
func Suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //churnvet:ok maporder -- fixture: consumer treats out as a set
	}
	return out
}
