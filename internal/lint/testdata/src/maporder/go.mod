module churnvet.fixture/maporder

go 1.22
