module churnvet.fixture/ctxflowok

go 1.22
