// Package fixture carries the same ctxflow violations as the firing
// fixture, each silenced by a reviewed suppression: Run must report
// nothing, RunAll must report them all as suppressed.
package fixture

import "context"

// Detached mints a root context on purpose.
func Detached() error {
	ctx := context.Background() //churnvet:ok ctxflow -- fixture: detached maintenance task whose lifetime is the process
	return ctx.Err()
}

// Ignores takes a ctx it never reads.
//
//churnvet:ok ctxflow -- fixture: interface-mandated signature; the implementation is purely in-memory
func Ignores(ctx context.Context) int {
	return 1
}
