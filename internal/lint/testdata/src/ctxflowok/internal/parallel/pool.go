// Package parallel holds suppressed blocking-op violations.
package parallel

import "sync"

// Join documents why its Wait cannot hang.
func Join(wg *sync.WaitGroup) {
	wg.Wait() //churnvet:ok ctxflow -- fixture: every worker exits on channel close, so the join is bounded
}

// Pump documents why its send cannot block.
func Pump(ch chan int) {
	//churnvet:ok ctxflow -- fixture: the channel is buffered to the exact producer count
	ch <- 1
}
