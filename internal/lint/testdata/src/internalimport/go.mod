module churnvet.fixture/internalimport

go 1.22
