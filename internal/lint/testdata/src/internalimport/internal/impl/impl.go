// Package impl is the fixture's internal implementation package.
package impl

// Widget is aliased by the root package, so it is part of the public
// surface — which means its own exported structure is walked too.
type Widget struct {
	Label string
	Inner Gadget // want "Inner exposes internal type churnvet.fixture/internalimport/internal/impl.Gadget"
}

// Gadget has no root alias: exposing it anywhere on the surface is a
// finding.
type Gadget struct{ N int }

// Hidden is referenced only by a suppressed field.
type Hidden struct{}
