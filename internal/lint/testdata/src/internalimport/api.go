// Package api is the public surface of the internalimport fixture. The
// root package may import its own internal packages; the analyzer checks
// what it re-exposes.
package api

import "churnvet.fixture/internalimport/internal/impl"

// Widget is the sanctioned escape hatch: an exported alias lets callers
// name the internal type without importing internal/impl.
type Widget = impl.Widget

// Config exposes internal types in several ways.
type Config struct {
	// W is fine: Widget is an exported root alias.
	W Widget
	G impl.Gadget // want "G exposes internal type churnvet.fixture/internalimport/internal/impl.Gadget"
	H impl.Hidden //churnvet:ok internalimport -- fixture: demonstrates suppression
}

// NewGadget leaks an internal type through a result.
func NewGadget() impl.Gadget { // want "NewGadget exposes internal type"
	return impl.Gadget{}
}

// Describe takes only sanctioned and universe types — no findings.
func Describe(w Widget, n int) string {
	return w.Label
}
