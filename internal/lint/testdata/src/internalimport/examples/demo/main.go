// Command demo stands in for an external consumer: examples must build
// against the public API only. The aliased import form is still caught —
// the check matches import paths, not source text.
package main

import (
	"fmt"

	guts "churnvet.fixture/internalimport/internal/impl" // want "example imports churnvet.fixture/internalimport/internal/impl"
)

func main() {
	fmt.Println(guts.Gadget{N: 1})
}
