// Package fixture exercises the goroutine analyzer: raw `go` statements
// are confined to internal/parallel.
package fixture

// Launch starts a goroutine outside the sanctioned pool.
func Launch(f func()) {
	go f() // want "outside internal/parallel"
}

// Suppressed carries a written justification.
func Suppressed(f func()) {
	go f() //churnvet:ok goroutine -- fixture: demonstrates suppression
}
