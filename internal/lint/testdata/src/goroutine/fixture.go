// Package fixture exercises the goroutine analyzer: raw `go` statements
// are confined to the sanctioned concurrency packages.
package fixture

// Launch starts a goroutine outside the sanctioned packages.
func Launch(f func()) {
	go f() // want "outside the sanctioned concurrency packages"
}

// Suppressed carries a written justification.
func Suppressed(f func()) {
	go f() //churnvet:ok goroutine -- fixture: demonstrates suppression
}
