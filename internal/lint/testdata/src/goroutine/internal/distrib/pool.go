// Package distrib is sanctioned for `go` statements: one driver
// goroutine per worker subprocess, joined before Run returns.
package distrib

// Drive launches f; no finding here.
func Drive(f func()) {
	go f()
}
