// Package parallel is the one place `go` statements are allowed.
package parallel

// Spawn launches f; no finding here.
func Spawn(f func()) {
	go f()
}
