module churnvet.fixture/goroutine

go 1.22
