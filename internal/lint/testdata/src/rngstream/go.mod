module churnvet.fixture/rngstream

go 1.22
