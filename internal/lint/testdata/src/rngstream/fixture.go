// Package fixture exercises the rngstream analyzer: every NewPCG stream
// word must be a named hex constant, unique module-wide.
package fixture

import "math/rand/v2"

const (
	streamAlpha = 0x616c706861 // "alpha"
	streamBeta  = 0x62657461   // "beta"
	streamDup   = 0x616c706861 // collides with streamAlpha by value
	streamDec   = 99991        // declared as a decimal literal
)

// Good uses two distinct named hex stream constants — no findings.
func Good(seed uint64) (*rand.Rand, *rand.Rand) {
	return rand.New(rand.NewPCG(seed, streamAlpha)), rand.New(rand.NewPCG(seed, streamBeta))
}

// Inline passes a literal instead of a named constant.
func Inline(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0xdead)) // want "named hex constant"
}

// Decimal names a constant that was not declared as a hex literal.
func Decimal(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, streamDec)) // want "declared as a hex literal"
}

// Duplicate reuses a stream value already claimed by Good.
func Duplicate(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, streamDup)) // want "already used at"
}

// SuppressedDup is the same collision, silenced with a written reason.
func SuppressedDup(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, streamDup)) //churnvet:ok rngstream -- fixture: deliberate collision to demonstrate suppression
}
