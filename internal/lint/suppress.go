package lint

import (
	"go/token"
	"sort"
	"strings"
)

const suppressName = "suppress"

// analyzerSuppress validates the suppression comments themselves: a
// comment that invokes the churnvet: namespace but is malformed —
// unknown directive, unknown analyzer name, missing `--` separator or
// empty reason — is a finding, so a typo can never silently disable a
// real check. These findings are not suppressible.
var analyzerSuppress = &Analyzer{
	Name: suppressName,
	Doc:  "malformed //churnvet:ok suppression comments are findings",
	Run: func(m *Module) []Finding {
		var findings []Finding
		forEachDirective(m, func(pos token.Position, text string) {
			if _, _, msg := parseSuppression(text); msg != "" {
				findings = append(findings, Finding{Pos: pos, Analyzer: suppressName, Message: msg})
			}
		})
		return findings
	},
}

// suppression is one parsed, valid //churnvet:ok comment. It silences
// findings for exactly one analyzer on the comment's own line (the
// end-of-line form) or the line directly below it (the standalone form).
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
}

type suppressionSet map[string][]suppression // keyed by filename

func (s suppressionSet) matches(analyzer string, pos token.Position) bool {
	for _, sup := range s[pos.Filename] {
		if sup.analyzer == analyzer && (sup.line == pos.Line || sup.line == pos.Line-1) {
			return true
		}
	}
	return false
}

// collectSuppressions indexes every well-formed suppression in the
// module; malformed ones are deliberately excluded (and reported by the
// suppress analyzer instead).
func collectSuppressions(m *Module) suppressionSet {
	set := make(suppressionSet)
	forEachDirective(m, func(pos token.Position, text string) {
		if analyzer, reason, msg := parseSuppression(text); msg == "" {
			set[pos.Filename] = append(set[pos.Filename], suppression{analyzer: analyzer, reason: reason, file: pos.Filename, line: pos.Line})
		}
	})
	return set
}

// Suppression is one well-formed //churnvet:ok comment, exported for
// the churnvet -audit listing: the analyzer it silences, the written
// justification, and where it sits.
type Suppression struct {
	Analyzer string
	Reason   string
	Pos      token.Position
}

// Suppressions lists every well-formed suppression in the module,
// sorted by position, so the suppression inventory stays reviewable
// instead of accumulating silently.
func Suppressions(m *Module) []Suppression {
	var sups []Suppression
	forEachDirective(m, func(pos token.Position, text string) {
		if analyzer, reason, msg := parseSuppression(text); msg == "" {
			sups = append(sups, Suppression{Analyzer: analyzer, Reason: reason, Pos: pos})
		}
	})
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return sups
}

// forEachDirective invokes fn for every //churnvet:* comment in the
// module with the comment's position and its text after `//`.
func forEachDirective(m *Module, fn func(pos token.Position, text string)) {
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					trimmed := strings.TrimSpace(text)
					if !strings.HasPrefix(trimmed, "churnvet:") {
						continue
					}
					fn(m.Fset.Position(c.Pos()), trimmed)
				}
			}
		}
	}
}

// parseSuppression parses `churnvet:ok <analyzer> -- <reason>` and
// returns the analyzer name and trimmed reason, or a non-empty problem
// description when the comment is malformed.
func parseSuppression(text string) (analyzer, reason, problem string) {
	rest, ok := strings.CutPrefix(text, "churnvet:ok")
	if !ok {
		directive := strings.Fields(text)[0]
		return "", "", "unknown churnvet directive " + quote(directive) + " (only //churnvet:ok is recognized)"
	}
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		// e.g. churnvet:okay...
		directive := strings.Fields(text)[0]
		return "", "", "unknown churnvet directive " + quote(directive) + " (only //churnvet:ok is recognized)"
	}
	body, rawReason, found := strings.Cut(rest, "--")
	name := strings.TrimSpace(body)
	if name == "" {
		return "", "", "suppression names no analyzer (want //churnvet:ok <analyzer> -- <reason>)"
	}
	if len(strings.Fields(name)) != 1 {
		return "", "", "suppression must name exactly one analyzer, got " + quote(name)
	}
	if !suppressible(name) {
		return "", "", "suppression names unknown analyzer " + quote(name) + " (have " + strings.Join(suppressibleNames(), ", ") + ")"
	}
	if !found {
		return "", "", "suppression for " + name + " is missing the `-- <reason>` clause"
	}
	reason = strings.TrimSpace(rawReason)
	if reason == "" {
		return "", "", "suppression for " + name + " has an empty reason (a written justification is required)"
	}
	return name, reason, ""
}

// suppressibleList names the analyzers whose findings may be silenced
// with //churnvet:ok; the suppress analyzer itself deliberately is not.
// Kept as a static list (rather than derived from Analyzers) to avoid an
// initialization cycle; TestRegistry pins the two in sync.
var suppressibleList = []string{
	"nondet", "rngstream", "maporder", "goroutine",
	"goroutinejoin", "ctxflow", "lockflow", "errflow", "internalimport",
}

func suppressible(name string) bool {
	for _, n := range suppressibleList {
		if n == name {
			return true
		}
	}
	return false
}

func suppressibleNames() []string { return suppressibleList }

func quote(s string) string { return "\"" + s + "\"" }
