package lint

// analyzerGoroutineJoin upgrades the allowlist-only goroutine check
// with flow sensitivity inside the sanctioned packages themselves:
// being allowed to spawn is not being allowed to leak. Every `go`
// statement must have a reachable join — a WaitGroup.Wait, a channel
// receive (bare, ranged, or in a select arm), or a deferred one — on
// the spawning function's CFG paths after the spawn, so the function
// cannot return while its children still run. Fire-and-forget
// goroutines that outlive their spawner are exactly the leak the
// worker pool exists to prevent.

import (
	"go/ast"
	"strings"
)

var analyzerGoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Doc:  "every `go` statement in a sanctioned package needs a reachable join on the spawning function's exit paths",
	Run:  runGoroutineJoin,
}

func runGoroutineJoin(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		if _, sanctioned := sanctionedGoroutines[strings.TrimPrefix(p.Path, m.Path+"/")]; !sanctioned {
			continue
		}
		for _, u := range packageFuncs(p) {
			findings = append(findings, goroutineJoinFindings(m, p, u)...)
		}
	}
	return findings
}

func goroutineJoinFindings(m *Module, p *Package, u *funcUnit) []Finding {
	var findings []Finding
	for _, b := range u.g.blocks {
		if !b.live {
			continue
		}
		for i, n := range b.nodes {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				continue
			}
			if deferredJoin(p, u.g) || goStmtJoined(p, b, i) {
				continue
			}
			findings = append(findings, Finding{
				Pos:      m.Fset.Position(g.Pos()),
				Analyzer: "goroutinejoin",
				Message: "goroutine spawned in " + u.name() + " has no reachable join (WaitGroup.Wait, channel receive, or pool drain) " +
					"on the function's exit paths; an unjoined goroutine outlives its spawner and leaks",
			})
		}
	}
	return findings
}

// deferredJoin reports whether the function registers a deferred join;
// defers run on every exit path, so a `defer wg.Wait()` covers spawns
// wherever they sit in the CFG.
func deferredJoin(p *Package, g *funcCFG) bool {
	for _, d := range g.defers {
		if nodeJoins(p, d.Call) {
			return true
		}
	}
	return false
}

// goStmtJoined reports whether any join operation is reachable after
// node index i of block b: later nodes of b itself, then every block
// reachable through b's successors.
func goStmtJoined(p *Package, b *cfgBlock, i int) bool {
	for _, n := range b.nodes[i+1:] {
		if nodeJoins(p, n) {
			return true
		}
	}
	seen := map[*cfgBlock]bool{b: true}
	var visit func(x *cfgBlock) bool
	visit = func(x *cfgBlock) bool {
		if seen[x] {
			return false
		}
		seen[x] = true
		if blockJoins(p, x) {
			return true
		}
		for _, s := range x.succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	for _, s := range b.succs {
		if visit(s) {
			return true
		}
	}
	return false
}

// blockJoins reports whether block x performs a join: a ranged or
// selected channel receive at its head, or a joining node.
func blockJoins(p *Package, x *cfgBlock) bool {
	if x.rng != nil && isChanType(p, x.rng.X) {
		return true
	}
	if x.sel != nil {
		for _, cs := range x.sel.Body.List {
			cl, ok := cs.(*ast.CommClause)
			if !ok || cl.Comm == nil {
				continue
			}
			// Any receive arm counts; a send-only select is not a join.
			switch st := cl.Comm.(type) {
			case *ast.ExprStmt:
				if un, ok := ast.Unparen(st.X).(*ast.UnaryExpr); ok && un.Op.String() == "<-" {
					return true
				}
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 {
					if un, ok := ast.Unparen(st.Rhs[0]).(*ast.UnaryExpr); ok && un.Op.String() == "<-" {
						return true
					}
				}
			}
		}
	}
	for _, n := range x.nodes {
		if nodeJoins(p, n) {
			return true
		}
	}
	return false
}

// nodeJoins reports whether a straight-line node performs a join:
// WaitGroup.Wait (immediate or deferred) or a bare channel receive.
func nodeJoins(p *Package, n ast.Node) bool {
	joins := false
	inspectShallow(n, func(x ast.Node) bool {
		if joins {
			return false
		}
		switch op := x.(type) {
		case *ast.UnaryExpr:
			if op.Op.String() == "<-" {
				joins = true
			}
		case *ast.CallExpr:
			if fn, _ := calleeFunc(p, op); fn != nil && fn.FullName() == "(*sync.WaitGroup).Wait" {
				joins = true
			}
		}
		return !joins
	})
	return joins
}
