package lint

import "go/ast"

// analyzerGoroutine confines `go` statements to internal/parallel. The
// pool there is the one place that owns cancellation, draining, and
// panic recovery (a worker panic is re-raised on the caller, never a
// process crash from an anonymous goroutine); a raw `go` anywhere else
// in production code escapes those semantics and, worse, is exactly
// where ordering nondeterminism creeps in. Tests are never loaded, so
// test helpers may still launch goroutines freely.
var analyzerGoroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "`go` statements only in internal/parallel",
	Run:  runGoroutine,
}

func runGoroutine(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		if p.Path == m.Path+"/internal/parallel" {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					findings = append(findings, Finding{
						Pos:      m.Fset.Position(g.Pos()),
						Analyzer: "goroutine",
						Message:  "`go` statement outside internal/parallel; route concurrency through the pool (parallel.ForEachCtx) so cancellation and panic recovery hold",
					})
				}
				return true
			})
		}
	}
	return findings
}
