package lint

import (
	"go/ast"
	"strings"
)

// analyzerGoroutine confines `go` statements to the sanctioned
// concurrency packages. internal/parallel owns cancellation, draining,
// and panic recovery (a worker panic is re-raised on the caller, never a
// process crash from an anonymous goroutine); a raw `go` anywhere else
// in production code escapes those semantics and, worse, is exactly
// where ordering nondeterminism creeps in. Tests are never loaded, so
// test helpers may still launch goroutines freely.
var analyzerGoroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "`go` statements only in sanctioned concurrency packages",
	Run:  runGoroutine,
}

// sanctionedGoroutines names the packages allowed to use raw `go`
// statements, each with the reason its concurrency is considered owned
// rather than escaped. Extending this map is a reviewed decision: the
// new package must join, cancel, and recover its goroutines itself.
var sanctionedGoroutines = map[string]string{
	"internal/parallel": "the worker pool: owns cancellation, draining, and panic re-raise for the whole module",
	"internal/distrib": "one driver goroutine per worker subprocess, joined by WaitGroup before Run returns; " +
		"each owns its child's spawn/kill/reap lifecycle, and determinism is preserved by index-ordered merge",
}

func runGoroutine(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		if _, ok := sanctionedGoroutines[strings.TrimPrefix(p.Path, m.Path+"/")]; ok {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					findings = append(findings, Finding{
						Pos:      m.Fset.Position(g.Pos()),
						Analyzer: "goroutine",
						Message:  "`go` statement outside the sanctioned concurrency packages; route concurrency through the pool (parallel.ForEachCtx) so cancellation and panic recovery hold",
					})
				}
				return true
			})
		}
	}
	return findings
}
