// Package lint is churnvet: the project's custom static-analysis suite.
// It enforces, at `make lint` time, the invariants every result in this
// reproduction stakes its claims on — same seed → same output, parallel
// == serial, streaming == batch, replay == direct run — so a regression
// surfaces as a file:line finding instead of a flaky golden-test diff
// that has to be bisected after the fact.
//
// The suite is stdlib-only (go/parser, go/ast, go/types with the source
// importer); go.mod stays dependency-free. Load discovers and
// type-checks every non-test package in the module, and Run executes the
// registered analyzers over the loaded module:
//
//	nondet         no wall-clock, environment, or global-RNG reads in
//	               deterministic packages (the root package and all of
//	               internal/...); cmd/, examples/ and _test.go files are
//	               exempt
//	rngstream      every rand.NewPCG(seed, K) names its K stream via a
//	               hex constant, and K values are unique across the
//	               module so generators can never silently correlate
//	maporder       no map iteration whose body appends to a slice,
//	               writes to an encoder, or emits events unless the
//	               collected output is sorted afterwards
//	goroutine      `go` statements only in internal/parallel, so all
//	               production concurrency keeps the pool's cancellation
//	               and panic-recovery semantics
//	internalimport examples must not import churntomo/internal (even
//	               aliased), and the root package's exported surface
//	               must not leak internal named types except through
//	               exported aliases
//	suppress       `//churnvet:ok` suppression comments are themselves
//	               well-formed: known analyzer name, `--` separator,
//	               non-empty reason
//
// A finding is silenced by a narrow suppression comment on the flagged
// line (end-of-line) or on the line directly above it:
//
//	//churnvet:ok maporder -- keys feed a map, order never escapes
//
// Malformed suppressions (unknown analyzer, missing `-- reason`) are
// findings in their own right, reported by the suppress pseudo-analyzer
// and not themselves suppressible.
//
// cmd/churnvet is the command-line driver; `make lint` wires it into
// `make ci`. Each analyzer is pinned by fixture packages under
// testdata/src with // want "regexp" expectation comments, one firing
// and one suppressed case per analyzer.
package lint
