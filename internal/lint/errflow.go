package lint

// analyzerErrflow keeps the error paths honest:
//
//  1. No discarded error results in root or internal/ — neither a bare
//     call statement nor a blank assignment may drop an error; a
//     dropped error is a silently-wrong localization result.
//  2. No ==/!= comparison of error values (nil excepted): wrapped
//     chains — the module's own *WorkerError/*RemoteError included —
//     only match through errors.Is/errors.As.
//  3. fmt.Errorf must wrap an embedded error with %w, not %v/%s, so
//     errors.Is/As keep seeing through the new layer.
//
// Two discard idioms are exempt by design: the fmt print family
// (Fprintf to a strings.Builder cannot usefully fail, and stderr
// diagnostics are fire-and-forget), and the deprecated-shim pattern
// `_ = FooCtx(context.Background(), ...)` where the ctx-free wrapper
// has no error to return and the callee's errors are delivered through
// its own result channel.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var analyzerErrflow = &Analyzer{
	Name: "errflow",
	Doc:  "no discarded errors in deterministic packages, errors.Is/As instead of ==/!=, %w (not %v) when wrapping",
	Run:  runErrflow,
}

func runErrflow(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		discards := deterministic(m, p)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.ExprStmt:
					if discards {
						findings = append(findings, bareCallFinding(m, p, x.X, "")...)
					}
				case *ast.DeferStmt:
					if discards {
						findings = append(findings, bareCallFinding(m, p, x.Call, "deferred ")...)
					}
				case *ast.GoStmt:
					// The spawned call's error goes nowhere by
					// construction; goroutinejoin owns `go` discipline.
					return false
				case *ast.AssignStmt:
					if discards {
						findings = append(findings, blankErrFindings(m, p, x)...)
					}
				case *ast.BinaryExpr:
					findings = append(findings, sentinelCompareFindings(m, p, x)...)
				case *ast.CallExpr:
					findings = append(findings, errorfWrapFindings(m, p, x)...)
				}
				return true
			})
		}
	}
	return findings
}

// errResultIndexes returns the positions of error-typed results in a
// call's result type (nil if none).
func errResultIndexes(p *Package, call *ast.CallExpr) []int {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	var idx []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				idx = append(idx, i)
			}
		}
	default:
		if isErrorType(t) {
			idx = append(idx, 0)
		}
	}
	return idx
}

// discardExemptCall recognizes the calls whose dropped error is
// accepted by convention rather than suppression.
func discardExemptCall(p *Package, call *ast.CallExpr) bool {
	fn, _ := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	// fmt's print family: the only failure mode is the underlying
	// writer's, and the module's uses write to strings.Builder, stderr,
	// or an already-error-checked stream.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	// strings.Builder and bytes.Buffer writes are documented to never
	// return a non-nil error.
	if strings.HasPrefix(full, "(*strings.Builder).") || strings.HasPrefix(full, "(*bytes.Buffer).") {
		return true
	}
	return false
}

// bareCallFinding flags a call statement that drops error results.
func bareCallFinding(m *Module, p *Package, e ast.Expr, prefix string) []Finding {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if len(errResultIndexes(p, call)) == 0 || discardExemptCall(p, call) {
		return nil
	}
	return []Finding{{
		Pos:      m.Fset.Position(call.Pos()),
		Analyzer: "errflow",
		Message:  prefix + "call to " + callDisplay(p, call) + " discards its error result; handle it, return it, or record it on the result",
	}}
}

// blankErrFindings flags `_ = call` and `x, _ := call()` forms that
// drop an error result.
func blankErrFindings(m *Module, p *Package, as *ast.AssignStmt) []Finding {
	var findings []Finding
	// The 1:N form: one call, results spread over the left-hand side.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		for _, i := range errResultIndexes(p, call) {
			if i >= len(as.Lhs) || !isBlankIdent(as.Lhs[i]) {
				continue
			}
			if discardExemptCall(p, call) || shimDiscardSanctioned(p, call) {
				continue
			}
			findings = append(findings, Finding{
				Pos:      m.Fset.Position(as.Lhs[i].Pos()),
				Analyzer: "errflow",
				Message:  "blank assignment discards the error result of " + callDisplay(p, call) + "; handle it, return it, or record it on the result",
			})
		}
		return findings
	}
	// The 1:1 forms, `_ = f()` among them.
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, lhs := range as.Lhs {
		if !isBlankIdent(lhs) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if len(errResultIndexes(p, call)) == 0 || discardExemptCall(p, call) || shimDiscardSanctioned(p, call) {
			continue
		}
		findings = append(findings, Finding{
			Pos:      m.Fset.Position(lhs.Pos()),
			Analyzer: "errflow",
			Message:  "blank assignment discards the error result of " + callDisplay(p, call) + "; handle it, return it, or record it on the result",
		})
	}
	return findings
}

// shimDiscardSanctioned recognizes the deprecated-shim discard: the
// ctx-free compatibility wrapper calls its *Ctx variant with a fresh
// Background context and drops the error, because the legacy signature
// has nowhere to put it and the real errors travel in-band.
func shimDiscardSanctioned(p *Package, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || contextRootCall(p, first) == "" {
		return false
	}
	return strings.HasSuffix(calleeName(call), "Ctx")
}

func isBlankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callDisplay renders a call's target for messages.
func callDisplay(p *Package, call *ast.CallExpr) string {
	if fn, _ := calleeFunc(p, call); fn != nil {
		if fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if name := calleeName(call); name != "" {
		return name
	}
	return "function value"
}

// sentinelCompareFindings flags error ==/!= error comparisons. Nil
// checks stay legal — `err != nil` is the language's error protocol —
// and comparing two interface identities is what errors.Is exists to
// replace.
func sentinelCompareFindings(m *Module, p *Package, bin *ast.BinaryExpr) []Finding {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return nil
	}
	if isNilIdent(bin.X) || isNilIdent(bin.Y) {
		return nil
	}
	xt, xok := p.Info.Types[bin.X]
	yt, yok := p.Info.Types[bin.Y]
	if !xok || !yok || !isErrorType(xt.Type) || !isErrorType(yt.Type) {
		return nil
	}
	return []Finding{{
		Pos:      m.Fset.Position(bin.OpPos),
		Analyzer: "errflow",
		Message:  "error compared with " + bin.Op.String() + "; wrapped chains (including *WorkerError/*RemoteError) never match identity — use errors.Is or errors.As",
	}}
}

// errorfWrapFindings flags fmt.Errorf calls that format an error-typed
// argument with a verb other than %w.
func errorfWrapFindings(m *Module, p *Package, call *ast.CallExpr) []Finding {
	fn, _ := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return nil
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	verbs := formatVerbs(lit.Value)
	var findings []Finding
	for i, arg := range call.Args[1:] {
		tv, ok := p.Info.Types[arg]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		verb := "%v"
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb == "%w" {
			continue
		}
		findings = append(findings, Finding{
			Pos:      m.Fset.Position(arg.Pos()),
			Analyzer: "errflow",
			Message:  "fmt.Errorf embeds an error with " + verb + "; use %w so errors.Is/As can unwrap through this layer",
		})
	}
	return findings
}

// formatVerbs extracts the argument-consuming verbs of a format string
// literal, in order. The parse is deliberately simple — flags, width,
// and precision are skipped; %% consumes nothing — and is only used to
// pair error-typed arguments with their verb.
func formatVerbs(quoted string) []string {
	var verbs []string
	s := quoted
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(s) && strings.ContainsRune("+-# 0123456789.*", rune(s[j])) {
			j++
		}
		if j >= len(s) {
			break
		}
		if s[j] == '%' {
			i = j
			continue
		}
		verbs = append(verbs, "%"+string(s[j]))
		i = j
	}
	return verbs
}
