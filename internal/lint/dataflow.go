package lint

// A reusable forward-dataflow driver over funcCFG. Analyzers describe a
// lattice — an entry fact, a transfer function over one block, a join
// for merge points, and equality for the fixpoint test — and get back
// the fact at every block's entry. The driver is a plain worklist
// iteration: monotone transfer + finite lattice (every fact here is a
// bounded map keyed by the function's lock/var identities) guarantees
// termination.

// flowSpec describes one forward dataflow problem over facts of type F.
// Facts are treated as immutable values: transfer and join must return
// fresh facts (or provably unaliased ones), never mutate their inputs.
type flowSpec[F any] struct {
	// entry is the fact at the function entry.
	entry F
	// transfer folds one block's nodes over the incoming fact.
	transfer func(b *cfgBlock, in F) F
	// join merges two facts at a control-flow merge point.
	join func(a, b F) F
	// equal reports fact equality, the fixpoint termination test.
	equal func(a, b F) bool
}

// run iterates the problem to fixpoint and returns the entry fact of
// every reached block. Blocks unreachable from entry have no fact (they
// are absent from the map), which is exactly the "don't analyze dead
// code" contract the analyzers want.
func (spec *flowSpec[F]) run(g *funcCFG) map[*cfgBlock]F {
	in := map[*cfgBlock]F{g.entry: spec.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := spec.transfer(b, in[b])
		for _, s := range b.succs {
			next := out
			prev, seen := in[s]
			if seen {
				next = spec.join(prev, out)
				if spec.equal(next, prev) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
