package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under
// analysis. Only non-test files are loaded: every analyzer exempts
// _test.go files, so they are never parsed in the first place.
type Package struct {
	Path  string      // import path ("churntomo", "churntomo/internal/sat", ...)
	Dir   string      // absolute directory
	Name  string      // package name ("main" for binaries)
	Files []*ast.File // non-test files, with comments, in file-name order
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded module: every package type-checked against
// one shared FileSet, in deterministic (import-path) order.
type Module struct {
	Path   string // module path from go.mod
	Dir    string // module root (directory containing go.mod)
	Fset   *token.FileSet
	Pkgs   []*Package
	byPath map[string]*Package
}

// PackageByPath returns the loaded package with the given import path.
func (m *Module) PackageByPath(path string) (*Package, bool) {
	p, ok := m.byPath[path]
	return p, ok
}

// Internal reports whether path names a package under <module>/internal.
func (m *Module) Internal(path string) bool {
	return path == m.Path+"/internal" || strings.HasPrefix(path, m.Path+"/internal/")
}

// relFile renders an absolute file path relative to the module root when
// possible, keeping finding messages stable across checkouts.
func (m *Module) relFile(path string) string {
	if rel, err := filepath.Rel(m.Dir, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

// The analyzers never need cgo-using stdlib packages, and the source
// importer cannot type-check cgo files without invoking the cgo tool;
// force the pure-Go stdlib variants once, process-wide.
var disableCgo = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

// Load discovers, parses, and type-checks every non-test package under
// dir, which must be a module root (contain go.mod). Stdlib imports are
// resolved with the go/types source importer; module-local imports are
// resolved against the loaded set, so go.mod needs no dependencies and
// none are consulted.
func Load(dir string) (*Module, error) {
	disableCgo()
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:   modPath,
		Dir:    abs,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	if err := m.parseAll(); err != nil {
		return nil, err
	}
	if err := m.checkAll(); err != nil {
		return nil, err
	}
	return m, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: %s: no module directive", gomod)
}

// parseAll walks the module tree and parses every non-test .go file,
// grouping files into packages by directory. testdata, hidden, and
// underscore-prefixed directories are skipped, exactly as the go tool
// skips them — which is also what keeps this package's own deliberately
// violating fixtures out of a real run.
func (m *Module) parseAll() error {
	err := filepath.WalkDir(m.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != m.Dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		file, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pkgDir := filepath.Dir(path)
		ip := m.importPath(pkgDir)
		p, ok := m.byPath[ip]
		if !ok {
			p = &Package{Path: ip, Dir: pkgDir, Name: file.Name.Name}
			m.byPath[ip] = p
			m.Pkgs = append(m.Pkgs, p)
		}
		if p.Name != file.Name.Name {
			return fmt.Errorf("lint: %s: package %s conflicts with package %s in %s", path, file.Name.Name, p.Name, pkgDir)
		}
		p.Files = append(p.Files, file)
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return nil
}

// importPath maps an absolute package directory to its import path.
func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// moduleImporter resolves module-local imports from the loaded set and
// everything else (the stdlib) through the source importer.
type moduleImporter struct {
	m        *Module
	fallback types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == mi.m.Path || strings.HasPrefix(path, mi.m.Path+"/") {
		p, ok := mi.m.byPath[path]
		if !ok {
			return nil, fmt.Errorf("lint: module package %s not found", path)
		}
		if p.Types == nil {
			return nil, fmt.Errorf("lint: import cycle or unchecked package %s", path)
		}
		return p.Types, nil
	}
	return mi.fallback.Import(path)
}

// checkAll type-checks the packages in dependency order.
func (m *Module) checkAll() error {
	order, err := m.topoOrder()
	if err != nil {
		return err
	}
	imp := &moduleImporter{m: m, fallback: importer.ForCompiler(m.Fset, "source", nil)}
	for _, p := range order {
		var errs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { errs = append(errs, err) },
		}
		p.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tpkg, cerr := conf.Check(p.Path, m.Fset, p.Files, p.Info)
		if len(errs) > 0 {
			msgs := make([]string, 0, len(errs))
			for _, e := range errs {
				msgs = append(msgs, e.Error())
			}
			return fmt.Errorf("lint: type-checking %s:\n\t%s", p.Path, strings.Join(msgs, "\n\t"))
		}
		if cerr != nil {
			return fmt.Errorf("lint: type-checking %s: %w", p.Path, cerr)
		}
		p.Types = tpkg
	}
	return nil
}

// topoOrder sorts packages so every module-local import is checked
// before its importers, detecting cycles.
func (m *Module) topoOrder() ([]*Package, error) {
	const (
		unseen = iota
		visiting
		done
	)
	state := make(map[*Package]int, len(m.Pkgs))
	order := make([]*Package, 0, len(m.Pkgs))
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		}
		state[p] = visiting
		for _, dep := range m.localImports(p) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// localImports lists the module-local packages p imports, in
// deterministic order.
func (m *Module) localImports(p *Package) []*Package {
	seen := make(map[string]bool)
	var deps []*Package
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != m.Path && !strings.HasPrefix(path, m.Path+"/") {
				continue
			}
			if seen[path] {
				continue
			}
			seen[path] = true
			if dep, ok := m.byPath[path]; ok {
				deps = append(deps, dep)
			}
		}
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i].Path < deps[j].Path })
	return deps
}
