package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// cfgOf parses one function and builds its CFG.
func cfgOf(t *testing.T, src string) *funcCFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_fixture.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return buildCFG(fn.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// pinCFG asserts the rendered block/edge structure. The rendering is one
// line per block: "#index[!] kind(node count) -> succ indices", with "!"
// marking blocks unreachable from entry.
func pinCFG(t *testing.T, src, want string) *funcCFG {
	t.Helper()
	g := cfgOf(t, src)
	got := strings.TrimSpace(g.render())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("CFG structure mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	return g
}

// TestCFGLabeledBreakContinue pins labeled break and continue through a
// nested loop: continue outer re-enters the range head, break outer
// lands on the range exit, and the inner for's own exit block is dead
// (nothing ever falls out of an unconditioned for).
func TestCFGLabeledBreakContinue(t *testing.T) {
	t.Parallel()
	pinCFG(t, `
func f(xs []int) {
outer:
	for _, x := range xs {
		for {
			if x > 0 {
				continue outer
			}
			break outer
		}
	}
}`, `
#0 entry(0) -> 2
#1 exit(0)
#2 label.outer(0) -> 3
#3 range.head(1) -> 4 5
#4 range.exit(0) -> 1
#5 range.body(0) -> 6
#6 for.head(0) -> 8
#7! for.exit(0) -> 3
#8 for.body(1) -> 9 10
#9 if.then(0) -> 3
#10 if.join(0) -> 4`)
}

// TestCFGGoto pins a backward goto forming a hand-rolled loop: the label
// block gets the back edge from the then-branch.
func TestCFGGoto(t *testing.T) {
	t.Parallel()
	pinCFG(t, `
func g(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`, `
#0 entry(1) -> 2
#1 exit(0)
#2 label.loop(1) -> 3 4
#3 if.then(1) -> 2
#4 if.join(1) -> 1`)
}

// TestCFGSelectWithDefault pins a three-way select: one clause block per
// comm case plus the default, every clause returning, leaving the join
// dead and the function unable to fall off the end.
func TestCFGSelectWithDefault(t *testing.T) {
	t.Parallel()
	g := pinCFG(t, `
func h(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	default:
		return -1
	}
}`, `
#0 entry(0) -> 2
#1 exit(0)
#2 select.head(0) -> 4 5 6
#3! select.join(0) -> 1
#4 select.case(1) -> 1
#5 select.case(1) -> 1
#6 select.default(1) -> 1`)
	if g.fallsOff {
		t.Error("fallsOff = true; every select clause returns")
	}
	head := g.blocks[2]
	if head.sel == nil {
		t.Error("select head block is missing its sel marker")
	}
	if g.blocks[4].comm == nil || g.blocks[5].comm == nil {
		t.Error("comm clauses are missing their comm statements")
	}
	if g.blocks[6].comm != nil {
		t.Error("default clause should carry no comm statement")
	}
}

// TestCFGDeferInLoop pins a defer inside a range body: the defer node
// stays in the loop body block, and the CFG records it in defers for the
// exit-path analyses.
func TestCFGDeferInLoop(t *testing.T) {
	t.Parallel()
	g := pinCFG(t, `
func d(files []string, release func(string)) {
	for _, f := range files {
		defer release(f)
	}
}`, `
#0 entry(0) -> 2
#1 exit(0)
#2 range.head(1) -> 3 4
#3 range.exit(0) -> 1
#4 range.body(1) -> 2`)
	if len(g.defers) != 1 {
		t.Errorf("defers = %d, want 1", len(g.defers))
	}
	if !g.fallsOff {
		t.Error("fallsOff = false; the function has no return statement")
	}
}

// TestCFGRangeOverChannel pins the range-over-channel shape: the head
// block carries the rng marker ctxflow keys on, with the back edge from
// the body.
func TestCFGRangeOverChannel(t *testing.T) {
	t.Parallel()
	g := pinCFG(t, `
func r(ch chan int) int {
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}`, `
#0 entry(1) -> 2
#1 exit(0)
#2 range.head(1) -> 3 4
#3 range.exit(1) -> 1
#4 range.body(1) -> 2`)
	if g.blocks[2].rng == nil {
		t.Error("range head block is missing its rng marker")
	}
}

// TestCFGPanicReturn pins the panic/return interplay: a stmt-level panic
// edges to exit like a return does, and statements after an
// unconditional panic land in a dead block.
func TestCFGPanicReturn(t *testing.T) {
	t.Parallel()
	pinCFG(t, `
func p(ok bool) int {
	if !ok {
		panic("bad")
	}
	return 1
}`, `
#0 entry(1) -> 2 3
#1 exit(0)
#2 if.then(1) -> 1
#3 if.join(1) -> 1`)

	g := pinCFG(t, `
func q() int {
	panic("x")
	return 2
}`, `
#0 entry(1) -> 1
#1 exit(0)
#2! dead(1) -> 1`)
	if g.fallsOff {
		t.Error("fallsOff = true after unconditional panic")
	}
}

// TestCFGSwitchFallthrough pins fallthrough edging into the next clause
// body and a missing default adding the head→join edge.
func TestCFGSwitchFallthrough(t *testing.T) {
	t.Parallel()
	pinCFG(t, `
func s(n int) int {
	out := 0
	switch n {
	case 0:
		out++
		fallthrough
	case 1:
		out += 2
	}
	return out
}`, `
#0 entry(4) -> 3 4 2
#1 exit(0)
#2 switch.join(1) -> 1
#3 switch.case(1) -> 4
#4 switch.case(1) -> 2`)
}

// TestCFGDataflowReachesFixpoint exercises the generic driver on a loop:
// a counting lattice capped at the block count converges and visits every
// live block exactly once in the result map.
func TestCFGDataflowReachesFixpoint(t *testing.T) {
	t.Parallel()
	g := cfgOf(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	// A saturating path-length lattice: finite height, so the loop's back
	// edge must converge instead of counting forever.
	spec := &flowSpec[int]{
		entry: 0,
		transfer: func(b *cfgBlock, in int) int {
			if in >= len(g.blocks) {
				return in
			}
			return in + 1
		},
		join:  func(a, b int) int { return max(a, b) },
		equal: func(a, b int) bool { return a == b },
	}
	facts := spec.run(g)
	live := 0
	for _, b := range g.blocks {
		if b.live {
			live++
			if _, ok := facts[b]; !ok && b != g.entry {
				t.Errorf("live block #%d %s has no fact", b.index, b.kind)
			}
		}
	}
	if _, ok := facts[g.exit]; !ok {
		t.Error("exit block has no fact")
	}
	if len(facts) > live {
		t.Errorf("facts for %d blocks, only %d live", len(facts), live)
	}
}
