package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"testing"
)

// fixtureModule loads one fixture module under testdata/src. Every
// fixture is a self-contained module with its own go.mod, loaded through
// exactly the code path the churnvet driver uses.
func fixtureModule(t *testing.T, name string) *Module {
	t.Helper()
	m, err := Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return m
}

// A want is one expectation comment: a finding with a message matching
// re must be reported on (file, line). The syntax is the conventional
//
//	code // want "regexp"
//
// with multiple quoted regexps allowed after one want marker, and block
// comments (/* want "..." */) accepted for lines whose trailing comment
// position is already taken by the directive under test.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants scans every comment in the fixture for want expectations.
func collectWants(t *testing.T, m *Module) []*want {
	t.Helper()
	var wants []*want
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, `want "`)
					if idx < 0 {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					for _, q := range wantQuoted.FindAllString(c.Text[idx:], -1) {
						raw, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}
	return wants
}

// testFixture runs the named analyzers over a fixture and checks the
// findings against its want comments: every finding must match an
// expectation on its own line, and every expectation must be consumed.
func testFixture(t *testing.T, fixture string, analyzers ...string) {
	t.Helper()
	m := fixtureModule(t, fixture)
	findings, err := Run(m, analyzers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wants := collectWants(t, m)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// testFixtureSuppressed runs the named analyzers over a fixture whose
// violations are all suppressed: Run must report nothing, and RunAll
// must surface exactly wantSuppressed findings flagged Suppressed.
func testFixtureSuppressed(t *testing.T, fixture string, wantSuppressed int, analyzers ...string) {
	t.Helper()
	m := fixtureModule(t, fixture)
	findings, err := Run(m, analyzers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("suppressed fixture %s still reports: %s", fixture, f)
	}
	all, err := RunAll(m, analyzers)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	suppressed := 0
	for _, f := range all {
		if f.Suppressed {
			suppressed++
		}
	}
	if suppressed != wantSuppressed {
		t.Errorf("RunAll(%s) marked %d findings suppressed, want %d", fixture, suppressed, wantSuppressed)
	}
}

func TestNondet(t *testing.T) {
	t.Parallel()
	testFixture(t, "nondet", "nondet")
}

func TestRNGStream(t *testing.T) {
	t.Parallel()
	testFixture(t, "rngstream", "rngstream")
}

func TestMapOrder(t *testing.T) {
	t.Parallel()
	testFixture(t, "maporder", "maporder")
}

func TestGoroutine(t *testing.T) {
	t.Parallel()
	testFixture(t, "goroutine", "goroutine")
}

func TestCtxflow(t *testing.T) {
	t.Parallel()
	testFixture(t, "ctxflow", "ctxflow")
}

func TestCtxflowSuppressed(t *testing.T) {
	t.Parallel()
	testFixtureSuppressed(t, "ctxflowok", 4, "ctxflow")
}

func TestLockflow(t *testing.T) {
	t.Parallel()
	testFixture(t, "lockflow", "lockflow")
}

func TestLockflowSuppressed(t *testing.T) {
	t.Parallel()
	testFixtureSuppressed(t, "lockflowok", 2, "lockflow")
}

func TestErrflow(t *testing.T) {
	t.Parallel()
	testFixture(t, "errflow", "errflow")
}

func TestErrflowSuppressed(t *testing.T) {
	t.Parallel()
	testFixtureSuppressed(t, "errflowok", 2, "errflow")
}

func TestGoroutineJoin(t *testing.T) {
	t.Parallel()
	testFixture(t, "goroutinejoin", "goroutinejoin")
}

func TestGoroutineJoinSuppressed(t *testing.T) {
	t.Parallel()
	testFixtureSuppressed(t, "goroutinejoinok", 1, "goroutinejoin")
}

func TestInternalImport(t *testing.T) {
	t.Parallel()
	testFixture(t, "internalimport", "internalimport")
}

func TestSuppressDirectives(t *testing.T) {
	t.Parallel()
	testFixture(t, "suppressbad", "suppress")
}

// TestRepoClean pins the acceptance criterion that the full suite runs
// clean over this repository: any new violation (or stale suppression)
// fails the build here, not just in make lint.
func TestRepoClean(t *testing.T) {
	t.Parallel()
	m, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Load repo: %v", err)
	}
	findings, err := Run(m, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("repo is not lint-clean: %s", f)
	}
}

// TestRegistry pins the analyzer registry's invariants, including the
// promise in suppress.go that suppressibleList (kept static to avoid an
// initialization cycle) stays in sync with Analyzers().
func TestRegistry(t *testing.T) {
	t.Parallel()
	var names []string
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
		names = append(names, a.Name)
	}
	var wantSuppressible []string
	for _, n := range names {
		if n != suppressName {
			wantSuppressible = append(wantSuppressible, n)
		}
	}
	if !slices.Equal(suppressibleList, wantSuppressible) {
		t.Errorf("suppressibleList = %v, want %v (every analyzer except %q)", suppressibleList, wantSuppressible, suppressName)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should not resolve")
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	t.Parallel()
	m := fixtureModule(t, "suppressbad")
	if _, err := Run(m, []string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Errorf("Run with unknown analyzer: got %v, want unknown-analyzer error", err)
	}
}

func TestLoadErrors(t *testing.T) {
	t.Parallel()
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("Load without go.mod should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("go 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "module directive") {
		t.Errorf("Load without module directive: got %v", err)
	}
	if _, err := Load(filepath.Join("testdata", "src", "badcycle")); err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("Load(badcycle): got %v, want import-cycle error", err)
	}
	if _, err := Load(filepath.Join("testdata", "src", "badtype")); err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("Load(badtype): got %v, want type-check error", err)
	}
}

// TestFindingString pins the conventional file:line:col rendering the
// driver prints.
func TestFindingString(t *testing.T) {
	t.Parallel()
	f := Finding{Analyzer: "nondet", Message: "boom"}
	f.Pos.Filename, f.Pos.Line, f.Pos.Column = "x.go", 3, 7
	if got, want := f.String(), "x.go:3:7: [nondet] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
