package lint

import (
	"fmt"
	"go/types"
	"strings"
)

// analyzerInternalImport guards the public API boundary in both
// directions. Examples stand in for external modules — which cannot
// import <module>/internal/... — so any such import there, however
// aliased or blank, is a finding (this subsumes the old grep in
// scripts/check-api.sh, which only matched the literal quoted path).
// And the root package's exported surface must not leak internal named
// types *indirectly*: every internal type reachable from an exported
// symbol (signatures, exported fields, exported methods, element types)
// must have an exported alias in the root package, or external callers
// would be forced into the internal import the first check forbids.
var analyzerInternalImport = &Analyzer{
	Name: "internalimport",
	Doc:  "examples never import internal packages; the root API leaks no internal types",
	Run:  runInternalImport,
}

func runInternalImport(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		if !strings.HasPrefix(p.Path, m.Path+"/examples/") {
			continue
		}
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if m.Internal(path) {
					findings = append(findings, Finding{
						Pos:      m.Fset.Position(spec.Pos()),
						Analyzer: "internalimport",
						Message:  fmt.Sprintf("example imports %s; examples must consume only the public %s API", path, m.Path),
					})
				}
			}
		}
	}
	if root, ok := m.PackageByPath(m.Path); ok && root.Name != "main" {
		findings = append(findings, checkRootSurface(m, root)...)
	}
	return findings
}

// surfaceWalker walks the type graph reachable from the root package's
// exported symbols, hunting internal named types that lack a root alias.
// Every public-surface named type (root types and sanctioned internal
// types) is processed exactly once; a finding is attributed to the
// declaration that *directly* references the offending internal type —
// the struct field, method, function, or alias — so the fix (or a
// //churnvet:ok suppression) lands on the responsible line and stays put
// when unrelated surface shifts around it.
type surfaceWalker struct {
	m        *Module
	allowed  map[*types.TypeName]bool // internal types with an exported root alias
	queued   map[*types.TypeName]bool
	queue    []*types.Named
	reported map[string]bool // carrier pos + internal type, deduped
	findings []Finding
}

func checkRootSurface(m *Module, root *Package) []Finding {
	w := &surfaceWalker{
		m:        m,
		allowed:  make(map[*types.TypeName]bool),
		queued:   make(map[*types.TypeName]bool),
		reported: make(map[string]bool),
	}
	scope := root.Types.Scope()
	// Pass 1: exported aliases to internal named types sanction those
	// types — callers can name them without importing internal.
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || !tn.IsAlias() {
			continue
		}
		if named, ok := types.Unalias(tn.Type()).(*types.Named); ok && w.internalType(named.Obj()) {
			w.allowed[named.Obj()] = true
		}
	}
	// Pass 2: seed the walk from every exported root symbol, then drain
	// the queue of reachable surface types.
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		w.check(obj.Type(), obj)
	}
	for len(w.queue) > 0 {
		named := w.queue[0]
		w.queue = w.queue[1:]
		w.processNamed(named)
	}
	return w.findings
}

func (w *surfaceWalker) internalType(tn *types.TypeName) bool {
	return tn.Pkg() != nil && w.m.Internal(tn.Pkg().Path())
}

// processNamed walks one surface type's exported structure: underlying
// type and exported methods, with fields/methods as the finding carrier.
func (w *surfaceWalker) processNamed(t *types.Named) {
	switch under := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < under.NumFields(); i++ {
			if f := under.Field(i); f.Exported() {
				w.check(f.Type(), f)
			}
		}
	case *types.Interface:
		for i := 0; i < under.NumMethods(); i++ {
			if meth := under.Method(i); meth.Exported() {
				w.check(meth.Type(), meth)
			}
		}
	default:
		w.check(under, t.Obj())
	}
	for i := 0; i < t.NumMethods(); i++ {
		if meth := t.Method(i); meth.Exported() {
			w.check(meth.Type(), meth)
		}
	}
}

// check scans type t for internal named types, reporting them against
// carrier (the declaration that references t) and enqueueing surface
// types for their own walk.
func (w *surfaceWalker) check(t types.Type, carrier types.Object) {
	switch t := types.Unalias(t).(type) {
	case *types.Pointer:
		w.check(t.Elem(), carrier)
	case *types.Slice:
		w.check(t.Elem(), carrier)
	case *types.Array:
		w.check(t.Elem(), carrier)
	case *types.Chan:
		w.check(t.Elem(), carrier)
	case *types.Map:
		w.check(t.Key(), carrier)
		w.check(t.Elem(), carrier)
	case *types.Signature:
		for i := 0; i < t.Params().Len(); i++ {
			w.check(t.Params().At(i).Type(), carrier)
		}
		for i := 0; i < t.Results().Len(); i++ {
			w.check(t.Results().At(i).Type(), carrier)
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if f := t.Field(i); f.Exported() {
				w.check(f.Type(), f)
			}
		}
	case *types.Interface:
		for i := 0; i < t.NumMethods(); i++ {
			if meth := t.Method(i); meth.Exported() {
				w.check(meth.Type(), meth)
			}
		}
	case *types.Named:
		tn := t.Obj()
		switch {
		case tn.Pkg() == nil:
			// error, comparable, ... — universe scope.
		case w.internalType(tn):
			if !w.allowed[tn] {
				w.report(carrier, tn)
				return
			}
			w.enqueue(t)
		case tn.Pkg().Path() == w.m.Path:
			w.enqueue(t)
		default:
			// stdlib or otherwise foreign — cannot reference our internals.
		}
	}
}

func (w *surfaceWalker) enqueue(t *types.Named) {
	if tn := t.Obj(); !w.queued[tn] {
		w.queued[tn] = true
		w.queue = append(w.queue, t)
	}
}

func (w *surfaceWalker) report(carrier types.Object, tn *types.TypeName) {
	pos := w.m.Fset.Position(carrier.Pos())
	key := fmt.Sprintf("%s:%d:%s.%s", pos.Filename, pos.Line, tn.Pkg().Path(), tn.Name())
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.findings = append(w.findings, Finding{
		Pos:      pos,
		Analyzer: "internalimport",
		Message: fmt.Sprintf("%s exposes internal type %s.%s on the public surface with no exported alias in package %s; add `type %s = %s.%s` or stop exposing it",
			carrier.Name(), tn.Pkg().Path(), tn.Name(), w.m.Path, tn.Name(), pkgBase(tn.Pkg().Path()), tn.Name()),
	})
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
