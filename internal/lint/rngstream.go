package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// analyzerRNGStream polices the project's RNG-stream discipline. Every
// generator is rand.New(rand.NewPCG(seed, K)) where the seed word varies
// per run/day and K is the *stream* word that keeps independent
// generators decorrelated even when their seeds collide. Two rules make
// that auditable: K must be a named constant declared as a hex literal
// (so the stream table is greppable and the ASCII mnemonic stays next to
// its declaration), and every NewPCG call site must use a K distinct
// from every other call site in the module, or two generators could
// silently produce identical sequences.
var analyzerRNGStream = &Analyzer{
	Name: "rngstream",
	Doc:  "rand.NewPCG stream words are named hex constants, unique module-wide",
	Run:  runRNGStream,
}

type pcgSite struct {
	pos       token.Position
	constName string
	value     uint64
}

func runRNGStream(m *Module) []Finding {
	var findings []Finding
	constDecls := constLiterals(m)
	var sites []pcgSite
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isNewPCG(p, call) || len(call.Args) != 2 {
					return true
				}
				pos := m.Fset.Position(call.Args[1].Pos())
				obj := constObject(p, call.Args[1])
				if obj == nil {
					findings = append(findings, Finding{
						Pos:      pos,
						Analyzer: "rngstream",
						Message:  "rand.NewPCG stream word must be a named hex constant (const streamFoo = 0x...), not an inline expression",
					})
					return true
				}
				lit, declared := constDecls[obj]
				if !declared || !isHexLiteral(lit) {
					findings = append(findings, Finding{
						Pos:      pos,
						Analyzer: "rngstream",
						Message:  fmt.Sprintf("stream constant %s must be declared as a hex literal so the stream table stays greppable", obj.Name()),
					})
					return true
				}
				val, ok := constant.Uint64Val(obj.Val())
				if !ok {
					findings = append(findings, Finding{
						Pos:      pos,
						Analyzer: "rngstream",
						Message:  fmt.Sprintf("stream constant %s does not fit in uint64", obj.Name()),
					})
					return true
				}
				sites = append(sites, pcgSite{pos: pos, constName: obj.Name(), value: val})
				return true
			})
		}
	}
	findings = append(findings, duplicateStreams(m, sites)...)
	return findings
}

// duplicateStreams reports every NewPCG call site whose stream word
// collides with an earlier site anywhere in the module.
func duplicateStreams(m *Module, sites []pcgSite) []Finding {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	first := make(map[uint64]pcgSite)
	var findings []Finding
	for _, s := range sites {
		prev, seen := first[s.value]
		if !seen {
			first[s.value] = s
			continue
		}
		findings = append(findings, Finding{
			Pos:      s.pos,
			Analyzer: "rngstream",
			Message: fmt.Sprintf("stream word 0x%x (%s) already used at %s:%d (%s); every NewPCG site needs a unique stream or generators can correlate",
				s.value, s.constName, m.relFile(prev.pos.Filename), prev.pos.Line, prev.constName),
		})
	}
	return findings
}

// isNewPCG reports whether the call resolves to math/rand/v2.NewPCG.
func isNewPCG(p *Package, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math/rand/v2" && fn.Name() == "NewPCG"
}

// constObject resolves an argument expression to the named constant it
// refers to, or nil when it is anything else (literal, arithmetic, call).
func constObject(p *Package, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	c, _ := p.Info.Uses[id].(*types.Const)
	return c
}

// constLiterals indexes every module-level constant declaration onto the
// literal expression it was declared with.
func constLiterals(m *Module) map[*types.Const]*ast.BasicLit {
	decls := make(map[*types.Const]*ast.BasicLit)
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				spec, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, name := range spec.Names {
					c, ok := p.Info.Defs[name].(*types.Const)
					if !ok || i >= len(spec.Values) {
						continue
					}
					if lit, ok := spec.Values[i].(*ast.BasicLit); ok {
						decls[c] = lit
					}
				}
				return true
			})
		}
	}
	return decls
}

func isHexLiteral(lit *ast.BasicLit) bool {
	return lit != nil && lit.Kind == token.INT &&
		(strings.HasPrefix(lit.Value, "0x") || strings.HasPrefix(lit.Value, "0X"))
}
