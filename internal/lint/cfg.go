package lint

// An intraprocedural control-flow graph over go/ast, the substrate for
// the flow-sensitive analyzer tier (ctxflow, lockflow, errflow,
// goroutinejoin). The builder is deliberately small and stdlib-only: it
// covers exactly the control constructs this module's code uses —
// if/else, for, range, switch, type switch, select, labeled
// break/continue, goto, fallthrough, defer, return, and stmt-level
// panic — and makes no attempt at interprocedural or exceptional flow
// beyond "panic edges to exit".
//
// Block nodes are only non-compound statements and controlling
// expressions: a compound statement's children live in their own blocks,
// so walking a block's nodes never double-visits. Nested function
// literals are separate functions with their own CFGs — analyzers walk
// block nodes with inspectShallow, which refuses to descend into a
// *ast.FuncLit.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// cfgBlock is one basic block: nodes executed straight-line, in source
// order, then a transfer to one of succs.
type cfgBlock struct {
	index int
	kind  string // "entry", "if.then", "for.head", ... (stable, pinned by cfg_test)
	nodes []ast.Node
	succs []*cfgBlock
	live  bool // reachable from entry

	// rng is set on a range statement's head block: the block where the
	// range expression is evaluated and each iteration's blocking
	// receive happens when ranging over a channel. The body statements
	// are NOT under it — they live in the range.body block.
	rng *ast.RangeStmt
	// sel is set on a select statement's head block; the comm clauses'
	// bodies live in their own blocks.
	sel *ast.SelectStmt
	// comm is a select clause's communication statement (nil for the
	// default clause). It is deliberately kept out of nodes: the send or
	// receive it contains belongs to the select, not to straight-line
	// code, and analyzers that hunt bare channel operations must not see
	// it twice.
	comm ast.Stmt
}

func (b *cfgBlock) addSucc(s *cfgBlock) {
	b.succs = append(b.succs, s)
}

// funcCFG is one function body's control-flow graph. entry and exit are
// virtual: entry precedes the first statement, and every return, final
// fall-off and stmt-level panic edges to exit.
type funcCFG struct {
	entry, exit *cfgBlock
	blocks      []*cfgBlock // all blocks, creation order; blocks[i].index == i
	defers      []*ast.DeferStmt
	// fallsOff reports that some path reaches exit by running off the
	// closing brace rather than through a return (only possible in
	// functions without results).
	fallsOff bool
	// finalBlock is the block that falls off the end when fallsOff is
	// set — the place an at-function-end dataflow check anchors to.
	finalBlock *cfgBlock
	// end is the body's closing brace, the position a falls-off-the-end
	// finding anchors to.
	end token.Pos
}

// cfgTarget is one entry of the break/continue target stacks.
type cfgTarget struct {
	label string
	block *cfgBlock
}

type cfgBuilder struct {
	g        *funcCFG
	cur      *cfgBlock // nil after a terminating statement: following code is unreachable
	brk      []cfgTarget
	cont     []cfgTarget
	labels   map[string]*cfgBlock
	curLabel string    // pending label for the next breakable statement
	fall     *cfgBlock // fallthrough target while emitting a switch clause
}

// buildCFG constructs the CFG of one function body and computes
// reachability.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{end: body.Rbrace}
	b := &cfgBuilder{g: g, labels: map[string]*cfgBlock{}}
	g.entry = b.newBlock("entry")
	g.exit = b.newBlock("exit")
	b.cur = g.entry
	for _, s := range body.List {
		b.stmt(s)
	}
	final := b.cur
	if final != nil {
		final.addSucc(g.exit)
		b.cur = nil
	}
	g.markLive()
	// Falling off the end only counts when the final block is actually
	// reachable (a select whose every case returns leaves a dead join).
	g.fallsOff = final != nil && final.live
	if g.fallsOff {
		g.finalBlock = final
	}
	return g
}

// markLive flags every block reachable from entry.
func (g *funcCFG) markLive() {
	var visit func(b *cfgBlock)
	visit = func(b *cfgBlock) {
		if b.live {
			return
		}
		b.live = true
		for _, s := range b.succs {
			visit(s)
		}
	}
	visit(g.entry)
}

func (b *cfgBuilder) newBlock(kind string) *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks), kind: kind}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// use returns the current block, opening an unreachable one when control
// cannot reach here (code after return/goto/panic still gets blocks, with
// live == false).
func (b *cfgBuilder) use() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.use()
	blk.nodes = append(blk.nodes, n)
}

// jump ends the current block with an edge to target (when control is
// live) and leaves the builder with no current block.
func (b *cfgBuilder) jump(target *cfgBlock) {
	if b.cur != nil {
		b.cur.addSucc(target)
	}
	b.cur = nil
}

// moveTo edges the current block to next and continues building there.
func (b *cfgBuilder) moveTo(next *cfgBlock) {
	if b.cur != nil {
		b.cur.addSucc(next)
	}
	b.cur = next
}

// takeLabel consumes the pending label a LabeledStmt recorded for the
// breakable statement being entered.
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

// labelBlock returns the block a label names, creating it on first
// reference (forward gotos reference labels not yet seen).
func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) breakTarget(label string) *cfgBlock {
	for i := len(b.brk) - 1; i >= 0; i-- {
		if label == "" || b.brk[i].label == label {
			return b.brk[i].block
		}
	}
	return b.g.exit // unmatched label: impossible in type-checked code
}

func (b *cfgBuilder) continueTarget(label string) *cfgBlock {
	for i := len(b.cont) - 1; i >= 0; i-- {
		if label == "" || b.cont[i].label == label {
			return b.cont[i].block
		}
	}
	return b.g.exit
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, s2 := range st.List {
			b.stmt(s2)
		}
	case *ast.LabeledStmt:
		lb := b.labelBlock(st.Label.Name)
		b.moveTo(lb)
		b.curLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.curLabel = ""
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st)
	case *ast.RangeStmt:
		b.rangeStmt(st)
	case *ast.SwitchStmt:
		b.switchStmt(st.Init, st.Tag, nil, st.Body, "switch")
	case *ast.TypeSwitchStmt:
		b.switchStmt(st.Init, nil, st.Assign, st.Body, "typeswitch")
	case *ast.SelectStmt:
		b.selectStmt(st)
	case *ast.BranchStmt:
		b.branchStmt(st)
	case *ast.ReturnStmt:
		b.add(st)
		b.jump(b.g.exit)
	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, st)
		b.add(st)
	case *ast.ExprStmt:
		b.add(st)
		if isPanicCall(st.X) {
			b.jump(b.g.exit)
		}
	default:
		// AssignStmt, DeclStmt, GoStmt, IncDecStmt, SendStmt, EmptyStmt:
		// straight-line nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	b.add(st.Cond)
	cond := b.use()
	b.cur = nil

	then := b.newBlock("if.then")
	cond.addSucc(then)
	b.cur = then
	b.stmt(st.Body)
	thenEnd := b.cur
	b.cur = nil

	var elseEnd *cfgBlock
	if st.Else != nil {
		els := b.newBlock("if.else")
		cond.addSucc(els)
		b.cur = els
		b.stmt(st.Else)
		elseEnd = b.cur
		b.cur = nil
	}

	join := b.newBlock("if.join")
	if st.Else == nil {
		cond.addSucc(join)
	}
	if thenEnd != nil {
		thenEnd.addSucc(join)
	}
	if elseEnd != nil {
		elseEnd.addSucc(join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt) {
	label := b.takeLabel()
	if st.Init != nil {
		b.stmt(st.Init)
	}
	head := b.newBlock("for.head")
	b.moveTo(head)
	if st.Cond != nil {
		b.add(st.Cond)
	}
	exit := b.newBlock("for.exit")
	if st.Cond != nil {
		head.addSucc(exit)
	}
	contTarget := head
	var post *cfgBlock
	if st.Post != nil {
		post = b.newBlock("for.post")
		post.nodes = append(post.nodes, st.Post)
		post.addSucc(head)
		contTarget = post
	}
	body := b.newBlock("for.body")
	head.addSucc(body)

	b.brk = append(b.brk, cfgTarget{label, exit})
	b.cont = append(b.cont, cfgTarget{label, contTarget})
	b.cur = body
	b.stmt(st.Body)
	b.jump(contTarget)
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]

	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	head.rng = st
	head.nodes = append(head.nodes, st.X)
	b.moveTo(head)
	exit := b.newBlock("range.exit")
	head.addSucc(exit)
	body := b.newBlock("range.body")
	head.addSucc(body)

	b.brk = append(b.brk, cfgTarget{label, exit})
	b.cont = append(b.cont, cfgTarget{label, head})
	b.cur = body
	b.stmt(st.Body)
	b.jump(head)
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]

	b.cur = exit
}

// switchStmt builds both expression and type switches: init and the
// tag/assign land in the head block, each clause gets its own block with
// an edge from the head, fallthrough edges to the next clause's block,
// and a missing default adds a head→join edge.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, kind string) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.use()
	b.cur = nil
	join := b.newBlock(kind + ".join")

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		clauses = append(clauses, cs.(*ast.CaseClause))
	}
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		ck := kind + ".case"
		if cl.List == nil {
			ck = kind + ".default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(ck)
		head.addSucc(blocks[i])
		// Case expressions are evaluated while selecting, i.e. in the head.
		for _, e := range cl.List {
			head.nodes = append(head.nodes, e)
		}
	}
	if !hasDefault {
		head.addSucc(join)
	}

	b.brk = append(b.brk, cfgTarget{label, join})
	for i, cl := range clauses {
		if i+1 < len(blocks) {
			b.fall = blocks[i+1]
		} else {
			b.fall = join // fallthrough in the last clause is a compile error; be safe
		}
		b.cur = blocks[i]
		for _, s := range cl.Body {
			b.stmt(s)
		}
		b.jump(join)
	}
	b.fall = nil
	b.brk = b.brk[:len(b.brk)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.newBlock("select.head")
	head.sel = st
	b.moveTo(head)
	b.cur = nil
	join := b.newBlock("select.join")

	b.brk = append(b.brk, cfgTarget{label, join})
	for _, cs := range st.Body.List {
		cl := cs.(*ast.CommClause)
		ck := "select.case"
		if cl.Comm == nil {
			ck = "select.default"
		}
		cb := b.newBlock(ck)
		cb.comm = cl.Comm
		head.addSucc(cb)
		b.cur = cb
		for _, s := range cl.Body {
			b.stmt(s)
		}
		b.jump(join)
	}
	b.brk = b.brk[:len(b.brk)-1]
	// A select with no clauses blocks forever: no edge out of head, so
	// join (and everything after) is unreachable.
	b.cur = join
}

func (b *cfgBuilder) branchStmt(st *ast.BranchStmt) {
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		b.jump(b.breakTarget(label))
	case token.CONTINUE:
		b.jump(b.continueTarget(label))
	case token.GOTO:
		b.jump(b.labelBlock(label))
	case token.FALLTHROUGH:
		if b.fall != nil {
			b.jump(b.fall)
		} else {
			b.cur = nil
		}
	}
}

// isPanicCall reports whether e is a direct call of the panic builtin.
// Name-based on purpose: the builder has no type info, and shadowing
// `panic` would be its own churnvet finding if anyone ever tried.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// inspectShallow walks root like ast.Inspect but never descends into a
// nested function literal: a FuncLit body is a different function with
// its own CFG, and counting its operations against the enclosing
// function's blocks would double-report every finding.
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}

// funcUnit is one analyzable function: a declaration or a literal, with
// its CFG.
type funcUnit struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	g    *funcCFG
	file *ast.File
}

// name renders the unit for messages.
func (u *funcUnit) name() string {
	if u.decl != nil {
		return u.decl.Name.Name
	}
	return "function literal"
}

// body returns the unit's body block statement.
func (u *funcUnit) body() *ast.BlockStmt {
	if u.decl != nil {
		return u.decl.Body
	}
	return u.lit.Body
}

// funcType returns the unit's signature AST.
func (u *funcUnit) funcType() *ast.FuncType {
	if u.decl != nil {
		return u.decl.Type
	}
	return u.lit.Type
}

// packageFuncs builds a CFG for every function body in the package —
// declarations and literals each rooted separately, in source order.
func packageFuncs(p *Package) []*funcUnit {
	var units []*funcUnit
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					units = append(units, &funcUnit{decl: fn, g: buildCFG(fn.Body), file: file})
				}
			case *ast.FuncLit:
				units = append(units, &funcUnit{lit: fn, g: buildCFG(fn.Body), file: file})
			}
			return true
		})
	}
	return units
}

// reachableFrom collects the blocks reachable from b (itself included).
func reachableFrom(b *cfgBlock) map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{}
	var visit func(x *cfgBlock)
	visit = func(x *cfgBlock) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.succs {
			visit(s)
		}
	}
	visit(b)
	return seen
}

// render dumps the CFG as one line per block — "#i kind(n) -> j k" —
// for the structure pins in cfg_test.go. Dead blocks carry a "!" mark.
func (g *funcCFG) render() string {
	var sb strings.Builder
	for _, b := range g.blocks {
		mark := ""
		if !b.live {
			mark = "!"
		}
		fmt.Fprintf(&sb, "#%d%s %s(%d)", b.index, mark, b.kind, len(b.nodes))
		if len(b.succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.succs {
				fmt.Fprintf(&sb, " %d", s.index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
