package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// analyzerMapOrder flags `range` over a map whose body lets Go's
// randomized iteration order escape into output: appending to a slice
// that is never sorted afterwards, writing into an encoder or writer, or
// emitting events / sending on a channel. Order-independent bodies
// (aggregating into counters, writing into another map, indexed stores)
// are fine and never flagged. The accepted safe idiom is collect → sort:
// an append inside the loop is allowed when a sort.*/slices.* call on
// the same slice follows the loop in the enclosing block. Anything
// subtler carries a //churnvet:ok maporder suppression with the reason.
var analyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration must not leak randomized order into output",
	Run:  runMapOrder,
}

// sinkMethods are method names whose call inside a map-range body writes
// order-dependent bytes or events somewhere downstream.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Emit": true, "Publish": true, "Send": true,
}

// sinkFmtFuncs are fmt package functions that render directly inside the
// loop body.
var sinkFmtFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// sortFuncs are the sort/slices package functions accepted as ordering
// the collected slice after the loop.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

func runMapOrder(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			// Every function body — declared or literal — is a root
			// statement list; walkStmts handles nesting below it but
			// never crosses into another function literal.
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						findings = append(findings, walkStmts(m, p, fn.Body.List)...)
					}
				case *ast.FuncLit:
					findings = append(findings, walkStmts(m, p, fn.Body.List)...)
				}
				return true
			})
		}
	}
	return findings
}

// walkStmts scans a statement list for map ranges, handing each one the
// statements that follow it (where the sort-after-collect idiom lives),
// and recurses into nested statement lists. Function literals are
// deliberately not entered — ast.Inspect in runMapOrder roots them
// separately.
func walkStmts(m *Module, p *Package, list []ast.Stmt) []Finding {
	var findings []Finding
	for i, s := range list {
		switch st := s.(type) {
		case *ast.RangeStmt:
			if isMapType(p, st.X) {
				findings = append(findings, checkMapRange(m, p, st, list[i+1:])...)
			}
			findings = append(findings, walkStmts(m, p, st.Body.List)...)
		case *ast.BlockStmt:
			findings = append(findings, walkStmts(m, p, st.List)...)
		case *ast.IfStmt:
			findings = append(findings, walkStmts(m, p, st.Body.List)...)
			if st.Else != nil {
				findings = append(findings, walkStmts(m, p, []ast.Stmt{st.Else})...)
			}
		case *ast.ForStmt:
			findings = append(findings, walkStmts(m, p, st.Body.List)...)
		case *ast.SwitchStmt:
			findings = append(findings, walkStmts(m, p, st.Body.List)...)
		case *ast.TypeSwitchStmt:
			findings = append(findings, walkStmts(m, p, st.Body.List)...)
		case *ast.SelectStmt:
			findings = append(findings, walkStmts(m, p, st.Body.List)...)
		case *ast.CaseClause:
			findings = append(findings, walkStmts(m, p, st.Body)...)
		case *ast.CommClause:
			findings = append(findings, walkStmts(m, p, st.Body)...)
		case *ast.LabeledStmt:
			findings = append(findings, walkStmts(m, p, []ast.Stmt{st.Stmt})...)
		}
	}
	return findings
}

// isMapType reports whether expression e has map type.
func isMapType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for order-dependent escapes.
func checkMapRange(m *Module, p *Package, rs *ast.RangeStmt, rest []ast.Stmt) []Finding {
	var findings []Finding
	appended := map[string]ast.Node{} // rendered append target -> first append site
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			findings = append(findings, mapOrderFinding(m, x.Pos(),
				"channel send inside map iteration emits events in randomized order"))
		case *ast.CallExpr:
			if msg := sinkCall(p, x); msg != "" {
				findings = append(findings, mapOrderFinding(m, x.Pos(), msg))
			}
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || len(call.Args) == 0 {
					continue
				}
				target := types.ExprString(call.Args[0])
				if _, seen := appended[target]; !seen {
					appended[target] = call
				}
			}
		}
		return true
	})
	targets := make([]string, 0, len(appended))
	for target := range appended {
		targets = append(targets, target)
	}
	sort.Strings(targets)
	for _, target := range targets {
		site := appended[target]
		// The safe idiom: a sort of the collected slice later in the
		// loop body (per-iteration scratch, as in collect-keys-of-inner-
		// map) or anywhere after the loop in the enclosing block.
		if sortedWithin(p, rs.Body, target, site.Pos()) || sortedAfter(p, rest, target) {
			continue
		}
		findings = append(findings, mapOrderFinding(m, site.Pos(),
			fmt.Sprintf("append to %s inside map iteration, and no sort of %s follows the loop; output order depends on map randomization", target, target)))
	}
	return findings
}

func mapOrderFinding(m *Module, pos token.Pos, msg string) Finding {
	return Finding{Pos: m.Fset.Position(pos), Analyzer: "maporder", Message: msg + " (sort first or add //churnvet:ok maporder -- reason)"}
}

// sinkCall classifies a call inside a map-range body as an
// order-dependent escape, returning a message, or "" when it is benign.
func sinkCall(p *Package, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// fmt.Fprintf and friends resolved by package path, so aliased
		// imports are still caught.
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if fn.Pkg().Path() == "fmt" && sinkFmtFuncs[fn.Name()] {
				return "fmt." + fn.Name() + " inside map iteration renders in randomized order"
			}
		}
		// Method calls on encoders/writers/emitters by conventional name.
		if sinkMethods[name] && p.Info.Selections[fun] != nil {
			return "call to ." + name + " inside map iteration writes in randomized order"
		}
	case *ast.Ident:
		// The repo's event-emission idiom: a plain emit(...) callback.
		if fun.Name == "emit" {
			return "emit(...) inside map iteration publishes events in randomized order"
		}
	}
	return ""
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether any statement after the loop (within its
// enclosing block) sorts the collected slice — the collect-then-sort
// idiom that makes the append safe.
func sortedAfter(p *Package, rest []ast.Stmt, target string) bool {
	for _, s := range rest {
		if sortedWithin(p, s, target, s.Pos()-1) {
			return true
		}
	}
	return false
}

// sortedWithin reports whether node contains, after position after, a
// call recognized as sorting target: a sort.*/slices.* function, or a
// helper whose name carries the sorting intent (sortASNs and friends),
// with the target among its arguments.
func sortedWithin(p *Package, node ast.Node, target string, after token.Pos) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() <= after {
			return !found
		}
		if !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortCall recognizes sort.*/slices.* sorting functions plus local
// helpers whose name starts with "sort"/"Sort".
func isSortCall(p *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if !sortFuncs[fun.Sel.Name] {
			return strings.HasPrefix(fun.Sel.Name, "Sort") || strings.HasPrefix(fun.Sel.Name, "sort")
		}
		fn, ok := p.Info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		path := fn.Pkg().Path()
		return path == "sort" || path == "slices"
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "sort") || strings.HasPrefix(fun.Name, "Sort")
	}
	return false
}
