package lint

// analyzerLockflow enforces the locking discipline on every CFG path:
//
//  1. No mutex held at a blocking operation — a lock held across a
//     channel wait or pipe read turns one slow peer into a stalled
//     module (every other goroutine queues on the lock behind it).
//  2. Lock/unlock pairing on all paths: every Lock is released on every
//     return path (defer recognized), no unlock of a lock not held, no
//     re-lock of a lock already held (self-deadlock).
//  3. No by-value copies of types containing a lock or WaitGroup —
//     a copied mutex guards nothing.
//
// The pairing analysis is a forward dataflow over a may/must-held
// lattice keyed by the lock's expression spelling, so aliasing through
// assignment is out of scope on purpose: the repo's locks are all
// addressed as fields of a stable receiver.

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"
)

var analyzerLockflow = &Analyzer{
	Name: "lockflow",
	Doc:  "lock/unlock pairing on all CFG paths, no lock held at a blocking op, no by-value lock copies",
	Run:  runLockflow,
}

const (
	lockMay  uint8 = 1 << iota // held on some path into here
	lockMust                   // held on every path into here
)

// lockFact maps a lock key — the receiver's expression spelling, with
// ":r" appended for read locks — to its may/must bits.
type lockFact map[string]uint8

// lockMethodOps classifies the sync locking methods by effect.
var lockMethodOps = map[string]string{
	"(*sync.Mutex).Lock":      "lock",
	"(*sync.Mutex).Unlock":    "unlock",
	"(*sync.Mutex).TryLock":   "trylock",
	"(*sync.RWMutex).Lock":    "lock",
	"(*sync.RWMutex).Unlock":  "unlock",
	"(*sync.RWMutex).TryLock": "trylock",
	"(*sync.RWMutex).RLock":   "rlock",
	"(*sync.RWMutex).RUnlock": "runlock",
	"(sync.Locker).Lock":      "lock",
	"(sync.Locker).Unlock":    "unlock",
}

func runLockflow(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		for _, u := range packageFuncs(p) {
			findings = append(findings, lockPairFindings(m, p, u)...)
		}
		findings = append(findings, lockCopyFindings(m, p)...)
	}
	return findings
}

// lockOp is one lock-method call found in a node, in source order.
type lockOp struct {
	key  string // lock spelling, ":r"-suffixed for read locks
	op   string // "lock", "unlock", "rlock", "runlock", "trylock"
	call *ast.CallExpr
}

// nodeLockOps extracts the lock-method calls a node performs. Deferred
// calls are not included — the caller accounts for them at exit.
func nodeLockOps(p *Package, n ast.Node) []lockOp {
	var ops []lockOp
	inspectShallow(n, func(x ast.Node) bool {
		if _, isDefer := x.(*ast.DeferStmt); isDefer && x != n {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, recv := calleeFunc(p, call)
		if fn == nil || recv == nil {
			return true
		}
		op, isLockOp := lockMethodOps[fn.FullName()]
		if !isLockOp {
			return true
		}
		key := types.ExprString(recv)
		if op == "rlock" || op == "runlock" {
			key += ":r"
		}
		ops = append(ops, lockOp{key: key, op: op, call: call})
		return true
	})
	return ops
}

// deferredUnlockKeys collects the lock keys released by the function's
// defer statements. Conditional defers are credited unconditionally —
// an over-approximation that keeps `if locked { defer mu.Unlock() }`
// quiet; the analysis prefers a missed leak to a false alarm here.
func deferredUnlockKeys(p *Package, g *funcCFG) map[string]bool {
	keys := map[string]bool{}
	for _, d := range g.defers {
		fn, recv := calleeFunc(p, d.Call)
		if fn == nil || recv == nil {
			continue
		}
		switch lockMethodOps[fn.FullName()] {
		case "unlock":
			keys[types.ExprString(recv)] = true
		case "runlock":
			keys[types.ExprString(recv)+":r"] = true
		}
	}
	return keys
}

// lockTransfer folds one block over a fact. When report is non-nil it
// also emits findings: held-at-blocking-op, unpaired unlock, re-lock,
// and held-at-return. The fixpoint pass runs it silent; the reporting
// pass replays each block once with its converged entry fact.
func lockTransfer(p *Package, b *cfgBlock, in lockFact, deferred map[string]bool, report func(pos token.Pos, msg string)) lockFact {
	fact := maps.Clone(in)
	if fact == nil {
		fact = lockFact{}
	}
	if report != nil {
		// Block-level blocking points (select heads, range-over-channel)
		// happen before any node in the block runs.
		if b.sel != nil && !selectHasDefault(b.sel) {
			reportHeld(fact, nil, "select", b.sel.Pos(), report)
		}
		if b.rng != nil && isChanType(p, b.rng.X) {
			reportHeld(fact, nil, "range over channel", b.rng.Pos(), report)
		}
	}
	for _, n := range b.nodes {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			continue
		}
		if report != nil {
			for _, op := range nodeBlockingOps(p, n) {
				reportHeld(fact, nil, op.what, op.node.Pos(), report)
			}
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				reportHeld(fact, deferred, "", ret.Pos(), func(pos token.Pos, key string) {
					report(pos, "lock "+key+" still held at return with no unlock or defer on this path")
				})
			}
		}
		for _, op := range nodeLockOps(p, n) {
			switch op.op {
			case "lock", "rlock":
				if report != nil && fact[op.key]&lockMay != 0 && op.op == "lock" {
					report(op.call.Pos(), "lock "+displayKey(op.key)+" acquired while already held on some path into here (self-deadlock)")
				}
				fact[op.key] = lockMay | lockMust
			case "trylock":
				fact[op.key] |= lockMay
			case "unlock", "runlock":
				if report != nil && fact[op.key] == 0 {
					report(op.call.Pos(), "unlock of "+displayKey(op.key)+" which is not held on any path into here")
				}
				delete(fact, op.key)
			}
		}
	}
	return fact
}

// reportHeld invokes report for every held key. With what non-empty it
// renders the held-at-blocking-op message; otherwise it passes the key
// through for the caller to phrase. Keys in skip (the deferred-released
// set) are exempt.
func reportHeld(fact lockFact, skip map[string]bool, what string, pos token.Pos, report func(token.Pos, string)) {
	keys := make([]string, 0, len(fact))
	for k, bits := range fact {
		if bits&lockMay == 0 || skip[k] {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if what == "" {
			report(pos, k)
			continue
		}
		report(pos, "lock "+displayKey(k)+" held across "+what+"; a blocked peer stalls every goroutine queued on the lock — release before blocking")
	}
}

// displayKey strips the read-lock suffix for messages.
func displayKey(k string) string {
	if len(k) > 2 && k[len(k)-2:] == ":r" {
		return k[:len(k)-2] + " (read lock)"
	}
	return k
}

// lockPairFindings runs the pairing/blocking dataflow over one function.
func lockPairFindings(m *Module, p *Package, u *funcUnit) []Finding {
	g := u.g
	deferred := deferredUnlockKeys(p, g)
	spec := &flowSpec[lockFact]{
		entry: lockFact{},
		transfer: func(b *cfgBlock, in lockFact) lockFact {
			return lockTransfer(p, b, in, deferred, nil)
		},
		join: func(a, b lockFact) lockFact {
			out := lockFact{}
			for k, va := range a {
				vb := b[k]
				bits := (va | vb) & lockMay
				if va&lockMust != 0 && vb&lockMust != 0 {
					bits |= lockMust
				}
				if bits != 0 {
					out[k] = bits
				}
			}
			for k, vb := range b {
				if _, ok := a[k]; ok {
					continue
				}
				if bits := vb & lockMay; bits != 0 {
					out[k] = bits
				}
			}
			return out
		},
		equal: func(a, b lockFact) bool { return maps.Equal(a, b) },
	}
	facts := spec.run(g)

	var findings []Finding
	report := func(pos token.Pos, msg string) {
		findings = append(findings, Finding{
			Pos:      m.Fset.Position(pos),
			Analyzer: "lockflow",
			Message:  msg + " (in " + u.name() + ")",
		})
	}
	for _, b := range g.blocks {
		in, reached := facts[b]
		if !reached {
			continue
		}
		out := lockTransfer(p, b, in, deferred, report)
		if b == g.finalBlock {
			reportHeld(out, deferred, "", g.end, func(pos token.Pos, key string) {
				report(pos, "lock "+key+" still held when "+u.name()+" falls off the end with no unlock or defer")
			})
		}
	}
	return findings
}

// lockTypeNames are the sync types that must never be copied after
// first use; a struct containing one inherits the restriction.
var lockTypeNames = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Once": true, "sync.Cond": true, "sync.Pool": true, "sync.Map": true,
}

// lockInType returns the name of the sync type t contains by value
// (through structs and arrays, never through pointers or references),
// or "".
func lockInType(t types.Type) string {
	return lockInTypeRec(t, map[types.Type]bool{})
}

func lockInTypeRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && lockTypeNames[obj.Pkg().Path()+"."+obj.Name()] {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return lockInTypeRec(named.Underlying(), seen)
	}
	switch tt := t.(type) {
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if name := lockInTypeRec(tt.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockInTypeRec(tt.Elem(), seen)
	}
	return ""
}

// isLvalueRead reports whether e reads an existing addressable value —
// the copies worth flagging. Fresh values (composite literals, calls,
// conversions) are not copies of a lock anyone else holds.
func isLvalueRead(p *Package, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, isVar := p.Info.Uses[x].(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		_, isVar := p.Info.Uses[x.Sel].(*types.Var)
		return isVar
	case *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// lockCopyFindings flags by-value lock copies: value receivers and
// parameters of lock-containing types, assignments and call arguments
// copying an existing lock-containing value, and range value variables
// copying lock-containing elements.
func lockCopyFindings(m *Module, p *Package) []Finding {
	var findings []Finding
	flag := func(pos token.Pos, msg string) {
		findings = append(findings, Finding{Pos: m.Fset.Position(pos), Analyzer: "lockflow", Message: msg})
	}
	checkFieldList(p, flag)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, rhs := range x.Rhs {
					if !isLvalueRead(p, rhs) {
						continue
					}
					if name := exprLockType(p, rhs); name != "" {
						flag(x.Rhs[i].Pos(), "assignment copies "+types.ExprString(rhs)+" containing "+name+" by value; a copied lock guards nothing — use a pointer")
					}
				}
			case *ast.CallExpr:
				for _, arg := range x.Args {
					if !isLvalueRead(p, arg) {
						continue
					}
					if name := exprLockType(p, arg); name != "" {
						flag(arg.Pos(), "call passes "+types.ExprString(arg)+" containing "+name+" by value; a copied lock guards nothing — pass a pointer")
					}
				}
			case *ast.RangeStmt:
				if x.Value == nil {
					return true
				}
				if name := exprLockType(p, x.Value); name != "" {
					flag(x.Value.Pos(), "range value copies elements containing "+name+" by value; index into the collection instead")
				}
			}
			return true
		})
	}
	return findings
}

// checkFieldList flags value receivers and parameters of
// lock-containing types on every function declaration and literal.
func checkFieldList(p *Package, flag func(token.Pos, string)) {
	check := func(fl *ast.FieldList, role string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if name := lockInType(tv.Type); name != "" {
				flag(field.Type.Pos(), role+" of type containing "+name+" is passed by value; a copied lock guards nothing — use a pointer")
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				check(fn.Recv, "receiver")
				check(fn.Type.Params, "parameter")
			case *ast.FuncLit:
				check(fn.Type.Params, "parameter")
			}
			return true
		})
	}
}

// exprLockType returns the contained sync type name when e's type holds
// a lock by value. Range variables in define mode live in Defs rather
// than Types, so identifiers fall back to object resolution.
func exprLockType(p *Package, e ast.Expr) string {
	var t types.Type
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		t = tv.Type
	} else if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		return ""
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return ""
	}
	return lockInType(t)
}
