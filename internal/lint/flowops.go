package lint

// Shared type-resolution and blocking-operation classification for the
// flow-sensitive analyzers (ctxflow, lockflow, errflow, goroutinejoin).
// Everything here answers one of three questions about a CFG node: does
// it block, does it touch a lock, and where did its value come from.

import (
	"go/ast"
	"go/types"
	"strings"
)

// concurrencyPackages names the packages (module-relative) whose
// blocking operations must be cancellable: they sit on the experiment's
// hot path, and ARCHITECTURE.md promises ctx cancel reaches every one of
// their children. The set deliberately matches and extends
// sanctionedGoroutines — a package allowed to spawn goroutines is
// exactly a package whose blocking ops need cancellation discipline.
var concurrencyPackages = map[string]bool{
	"internal/parallel": true,
	"internal/distrib":  true,
	"internal/stream":   true,
}

func concurrencyPackage(m *Module, p *Package) bool {
	return concurrencyPackages[strings.TrimPrefix(p.Path, m.Path+"/")]
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// and, for method calls, the receiver expression. Calls through function
// values or builtins resolve to nil.
func calleeFunc(p *Package, call *ast.CallExpr) (*types.Func, ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn, nil
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn, fun.X
	}
	return nil, nil
}

// calleeName renders the bare name a call is spelled with — the final
// identifier for both f(...) and x.f(...) — or "" for anything else.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isChanType reports whether e has channel type.
func isChanType(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// selectHasDefault reports whether the select can proceed without
// blocking.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		if cl, ok := cs.(*ast.CommClause); ok && cl.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCalls maps a callee's full name (types.Func.FullName form) to
// the description used in findings. These are the operations that can
// park a goroutine indefinitely when the other side never shows up: the
// join primitives and the pipe reads the worker-pool protocol lives on.
var blockingCalls = map[string]string{
	"(*sync.WaitGroup).Wait":        "sync.WaitGroup.Wait",
	"(*os/exec.Cmd).Wait":           "exec.Cmd.Wait",
	"(*os/exec.Cmd).Run":            "exec.Cmd.Run",
	"io.ReadFull":                   "io.ReadFull pipe read",
	"io.ReadAll":                    "io.ReadAll pipe read",
	"io.Copy":                       "io.Copy pipe transfer",
	"(*bufio.Reader).ReadString":    "bufio pipe read",
	"(*bufio.Reader).ReadBytes":     "bufio pipe read",
	"(*bufio.Reader).ReadSlice":     "bufio pipe read",
	"(*bufio.Reader).Read":          "bufio pipe read",
	"(*bufio.Scanner).Scan":         "bufio pipe scan",
	"(*os/exec.Cmd).Output":         "exec.Cmd.Output",
	"(*os/exec.Cmd).CombinedOutput": "exec.Cmd.CombinedOutput",
}

// execCmdCalls names the blockingCalls entries whose cancellation guard
// is construction via exec.CommandContext (the context kills the child,
// unblocking Wait) rather than a select arm.
var execCmdCalls = map[string]bool{
	"(*os/exec.Cmd).Wait":           true,
	"(*os/exec.Cmd).Run":            true,
	"(*os/exec.Cmd).Output":         true,
	"(*os/exec.Cmd).CombinedOutput": true,
}

// blockingOp is one potentially-parking operation found in a block.
type blockingOp struct {
	node ast.Node
	what string
	// recv is the receiver expression for method calls (the *exec.Cmd
	// whose construction decides cancellability), nil otherwise.
	recv ast.Expr
	// exec marks ops guarded by exec.CommandContext origin rather than a
	// select arm.
	exec bool
}

// nodeBlockingOps classifies the blocking operations one straight-line
// node performs: bare sends, bare receives, and blocking calls.
// Deferred calls are skipped — they run at exit, not here.
func nodeBlockingOps(p *Package, n ast.Node) []blockingOp {
	var ops []blockingOp
	inspectShallow(n, func(x ast.Node) bool {
		if _, isDefer := x.(*ast.DeferStmt); isDefer && x != n {
			return false
		}
		switch op := x.(type) {
		case *ast.SendStmt:
			ops = append(ops, blockingOp{node: op, what: "bare channel send"})
		case *ast.UnaryExpr:
			if op.Op.String() == "<-" {
				ops = append(ops, blockingOp{node: op, what: "bare channel receive"})
			}
		case *ast.CallExpr:
			fn, recv := calleeFunc(p, op)
			if fn == nil {
				return true
			}
			full := fn.FullName()
			if what, ok := blockingCalls[full]; ok {
				ops = append(ops, blockingOp{node: op, what: what, recv: recv, exec: execCmdCalls[full]})
			}
		}
		return true
	})
	return ops
}

// blockBlockingOps classifies the blocking operations a single block
// performs: its select or range-over-channel head marker, plus the
// node-level operations. Select comm clauses are not scanned — their
// channel operations belong to the select head, which is already
// classified wholesale.
func blockBlockingOps(p *Package, b *cfgBlock) []blockingOp {
	var ops []blockingOp
	if b.sel != nil && !selectHasDefault(b.sel) {
		ops = append(ops, blockingOp{node: b.sel, what: "select with no default"})
	}
	if b.rng != nil && isChanType(p, b.rng.X) {
		ops = append(ops, blockingOp{node: b.rng, what: "range over channel"})
	}
	for _, n := range b.nodes {
		ops = append(ops, nodeBlockingOps(p, n)...)
	}
	return ops
}

// doneChannels collects, for one function unit, the objects holding a
// ctx.Done() channel: every identifier assigned (or defined) from a
// direct call to context.Context.Done.
func doneChannels(p *Package, u *funcUnit) map[types.Object]bool {
	done := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isDoneCall(p, call) {
			return
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				done[obj] = true
			}
			if obj := p.Info.Uses[id]; obj != nil {
				done[obj] = true
			}
		}
	}
	ast.Inspect(u.body(), func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				record(as.Lhs[i], as.Rhs[i])
			}
		}
		return true
	})
	return done
}

// isDoneCall reports whether call is ctx.Done() for a context.Context
// receiver.
func isDoneCall(p *Package, call *ast.CallExpr) bool {
	fn, _ := calleeFunc(p, call)
	return fn != nil && fn.Name() == "Done" && fn.FullName() == "(context.Context).Done"
}

// commReceivesDone reports whether a select comm statement receives from
// a ctx.Done() channel: either the receive operand is a direct
// ctx.Done() call or an identifier recorded in done.
func commReceivesDone(p *Package, comm ast.Stmt, done map[types.Object]bool) bool {
	var recvExpr ast.Expr
	switch st := comm.(type) {
	case *ast.ExprStmt:
		recvExpr = st.X
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			recvExpr = st.Rhs[0]
		}
	}
	un, ok := ast.Unparen(recvExpr).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "<-" {
		return false
	}
	ch := ast.Unparen(un.X)
	if call, ok := ch.(*ast.CallExpr); ok {
		return isDoneCall(p, call)
	}
	if id, ok := ch.(*ast.Ident); ok {
		return done[p.Info.Uses[id]]
	}
	return false
}

// selectHasDoneArm reports whether the select carries a cancellation arm.
func selectHasDoneArm(p *Package, sel *ast.SelectStmt, done map[types.Object]bool) bool {
	for _, cs := range sel.Body.List {
		cl, ok := cs.(*ast.CommClause)
		if !ok || cl.Comm == nil {
			continue
		}
		if commReceivesDone(p, cl.Comm, done) {
			return true
		}
	}
	return false
}

// originIndex maps every assignable object in a package to the
// right-hand-side expressions ever assigned to it, across all files —
// the substrate for tracing an *exec.Cmd receiver back to its
// constructor call.
type originIndex map[types.Object][]ast.Expr

func buildOriginIndex(p *Package) originIndex {
	idx := originIndex{}
	record := func(lhs, rhs ast.Expr) {
		var obj types.Object
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj = p.Info.Defs[l]
			if obj == nil {
				obj = p.Info.Uses[l]
			}
		case *ast.SelectorExpr:
			obj = p.Info.Uses[l.Sel]
		}
		if obj != nil {
			idx[obj] = append(idx[obj], rhs)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						record(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						record(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}
	return idx
}

// tracesToCommandContext reports whether the expression's value can be
// traced, through the package's assignment chains, to an
// exec.CommandContext call — the construction that makes Cmd.Wait
// cancellable (cancelling the context kills the child and unblocks the
// reap). The trace is an over-approximation on purpose: any one origin
// being CommandContext sanctions the op, because the repo constructs
// each Cmd exactly once.
func tracesToCommandContext(p *Package, idx originIndex, e ast.Expr) bool {
	seen := map[types.Object]bool{}
	var trace func(e ast.Expr) bool
	trace = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			fn, _ := calleeFunc(p, x)
			return fn != nil && fn.FullName() == "os/exec.CommandContext"
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			return traceObj(obj, trace, seen, idx)
		case *ast.SelectorExpr:
			return traceObj(p.Info.Uses[x.Sel], trace, seen, idx)
		case *ast.UnaryExpr:
			return trace(x.X)
		case *ast.StarExpr:
			return trace(x.X)
		}
		return false
	}
	return trace(e)
}

func traceObj(obj types.Object, trace func(ast.Expr) bool, seen map[types.Object]bool, idx originIndex) bool {
	if obj == nil || seen[obj] {
		return false
	}
	seen[obj] = true
	for _, rhs := range idx[obj] {
		if trace(rhs) {
			return true
		}
	}
	return false
}

// errorIface is the universe error interface, the assignability target
// for errflow's type tests.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface (the
// interface itself included).
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
