package lint

import (
	"go/ast"
	"go/types"
)

// analyzerNondet bans ambient-nondeterminism reads — wall clock,
// process environment, and the shared global RNG — from the
// deterministic packages: the root package and everything under
// internal/. Those packages are the same-seed→same-output kernel;
// cmd/ binaries and examples are interface glue and may read clocks and
// flags freely, and _test.go files are never loaded at all.
var analyzerNondet = &Analyzer{
	Name: "nondet",
	Doc:  "no time.Now/time.Since, global math/rand, or os.Getenv in deterministic packages",
	Run:  runNondet,
}

// nondetBanned maps package path → banned top-level function names. Any
// reference (call or value) to one of these from a deterministic package
// is a finding. For math/rand the constructors are fine — it is the
// process-global generator and the implicit clock seeding that break
// replayability.
var nondetBanned = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Tick":      "reads the wall clock",
		"After":     "reads the wall clock",
		"AfterFunc": "reads the wall clock",
		"NewTicker": "reads the wall clock",
		"NewTimer":  "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
		"ExpandEnv": "reads the process environment",
	},
}

// mathRandAllowed lists the math/rand{,/v2} top-level functions that are
// constructors for explicitly seeded generators; every other top-level
// function drives the shared global source.
var mathRandAllowed = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
	"NewSource":  true,
}

// deterministic reports whether the package must uphold the
// same-seed→same-output invariant: the module root and all of
// internal/... (including this lint package — it dogfoods its own rule).
func deterministic(m *Module, p *Package) bool {
	return p.Path == m.Path || m.Internal(p.Path)
}

func runNondet(m *Module) []Finding {
	var findings []Finding
	for _, p := range m.Pkgs {
		if !deterministic(m, p) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				// Only package-level functions: methods (Time.Sub,
				// Rand.IntN, ...) are deterministic given their receiver.
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				pkgPath, name := fn.Pkg().Path(), fn.Name()
				if why, ok := nondetBanned[pkgPath][name]; ok {
					findings = append(findings, Finding{
						Pos:      m.Fset.Position(id.Pos()),
						Analyzer: "nondet",
						Message:  pkgPath + "." + name + " " + why + "; deterministic packages must derive everything from the seed and inputs",
					})
					return true
				}
				if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !mathRandAllowed[name] {
					findings = append(findings, Finding{
						Pos:      m.Fset.Position(id.Pos()),
						Analyzer: "nondet",
						Message:  pkgPath + "." + name + " uses the shared global RNG; construct a seeded generator (rand.New(rand.NewPCG(seed, stream))) instead",
					})
				}
				return true
			})
		}
	}
	return findings
}
