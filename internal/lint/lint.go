package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer hit: a position, the analyzer that fired, and
// a message explaining the invariant the site violates.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks findings silenced by a //churnvet:ok comment.
	// Run drops them; RunAll keeps them for audit-style consumers.
	Suppressed bool
}

// String renders the finding in the conventional file:line:col form,
// with the position relative to dir when possible (keeps CI output
// stable across checkouts).
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one registered invariant check, run over the whole loaded
// module so cross-package facts (like RNG stream-constant uniqueness)
// are in scope.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// Analyzers returns the registered suite in its canonical order: the
// syntactic tier first, then the flow-sensitive tier (goroutinejoin,
// ctxflow, lockflow, errflow) over the CFG substrate, with the
// suppression validator last.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerNondet,
		analyzerRNGStream,
		analyzerMapOrder,
		analyzerGoroutine,
		analyzerGoroutineJoin,
		analyzerCtxflow,
		analyzerLockflow,
		analyzerErrflow,
		analyzerInternalImport,
		analyzerSuppress,
	}
}

// ByName resolves one analyzer by its registered name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run executes the named analyzers (all of them when names is empty)
// over the module, applies //churnvet:ok suppressions, and returns the
// surviving findings sorted by position. Unknown analyzer names are an
// error.
func Run(m *Module, names []string) ([]Finding, error) {
	all, err := RunAll(m, names)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, f := range all {
		if !f.Suppressed {
			findings = append(findings, f)
		}
	}
	return findings, nil
}

// RunAll executes the named analyzers like Run but keeps suppressed
// findings in the result, marked, so audit-style consumers (-format
// json, -audit) can show what the suppressions are holding back.
func RunAll(m *Module, names []string) ([]Finding, error) {
	var selected []*Analyzer
	if len(names) == 0 {
		selected = Analyzers()
	} else {
		for _, name := range names {
			a, ok := ByName(name)
			if !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(analyzerNames(), ", "))
			}
			selected = append(selected, a)
		}
	}
	sup := collectSuppressions(m)
	var findings []Finding
	for _, a := range selected {
		for _, f := range a.Run(m) {
			// Malformed-suppression findings are not themselves
			// suppressible; everything else honors //churnvet:ok.
			f.Suppressed = a.Name != suppressName && sup.matches(a.Name, f.Pos)
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func analyzerNames() []string {
	all := Analyzers()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}
