package evalmetrics

import (
	"math"
	"testing"

	"churntomo/internal/topology"
)

func asns(xs ...uint32) []topology.ASN {
	out := make([]topology.ASN, len(xs))
	for i, x := range xs {
		out[i] = topology.ASN(x)
	}
	return out
}

func TestScorePerfect(t *testing.T) {
	m := Score(Input{
		Identified: asns(10, 20, 30),
		True:       asns(30, 10, 20),
		Exercised:  asns(10, 20, 30),
	})
	if m.TP != 3 || m.FP != 0 || m.Missed != 0 {
		t.Fatalf("counts = %d/%d/%d, want 3/0/0", m.TP, m.FP, m.Missed)
	}
	for name, v := range map[string]float64{
		"precision": m.Precision, "recall": m.Recall, "f1": m.F1, "exercised": m.ExercisedRecall,
	} {
		if v != 1 {
			t.Errorf("%s = %v, want 1", name, v)
		}
	}
	if m.LeakageRate != 0 || m.LeakageFPs != 0 {
		t.Errorf("leakage = %d (%v), want none", m.LeakageFPs, m.LeakageRate)
	}
}

func TestScoreMixedVerdict(t *testing.T) {
	m := Score(Input{
		Identified:     asns(10, 40, 50), // 10 correct, 40+50 false
		True:           asns(10, 20),
		Exercised:      asns(10),
		OnCensoredPath: asns(10, 40, 99), // 40 is a leakage FP, 50 is not
	})
	if m.TP != 1 || m.FP != 2 || m.Missed != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/2/1", m.TP, m.FP, m.Missed)
	}
	if want := 1.0 / 3.0; math.Abs(m.Precision-want) > 1e-12 {
		t.Errorf("precision = %v, want %v", m.Precision, want)
	}
	if m.Recall != 0.5 {
		t.Errorf("recall = %v, want 0.5", m.Recall)
	}
	if want := 2 * (1.0 / 3.0) * 0.5 / (1.0/3.0 + 0.5); math.Abs(m.F1-want) > 1e-12 {
		t.Errorf("f1 = %v, want %v", m.F1, want)
	}
	if m.ExercisedRecall != 1 { // the only exercised censor (10) was found
		t.Errorf("exercised recall = %v, want 1", m.ExercisedRecall)
	}
	if m.LeakageFPs != 1 || m.LeakageRate != 0.5 {
		t.Errorf("leakage = %d (%v), want 1 (0.5)", m.LeakageFPs, m.LeakageRate)
	}
	if got := m.FalsePositives; len(got) != 2 || got[0] != 40 || got[1] != 50 {
		t.Errorf("false positives = %v, want [40 50]", got)
	}
	if got := m.MissedASes; len(got) != 1 || got[0] != 20 {
		t.Errorf("missed = %v, want [20]", got)
	}
}

func TestScoreDegenerateCases(t *testing.T) {
	// Empty verdict against empty truth: vacuous success on recall,
	// precision pinned at 0 (matching analysis.Validate), not NaN.
	m := Score(Input{})
	if m.Precision != 0 || m.Recall != 1 || m.F1 != 0 || m.ExercisedRecall != 1 {
		t.Errorf("empty input: P=%v R=%v F1=%v ER=%v, want 0/1/0/1",
			m.Precision, m.Recall, m.F1, m.ExercisedRecall)
	}

	// Identified something in a censor-free world: pure false positives.
	m = Score(Input{Identified: asns(7)})
	if m.Precision != 0 || m.Recall != 1 || m.FP != 1 {
		t.Errorf("FP-only: P=%v R=%v FP=%d, want 0/1/1", m.Precision, m.Recall, m.FP)
	}

	// Nothing identified with real censors: recall 0, precision 0.
	m = Score(Input{True: asns(1, 2)})
	if m.Precision != 0 || m.Recall != 0 || m.Missed != 2 {
		t.Errorf("miss-all: P=%v R=%v missed=%d, want 0/0/2", m.Precision, m.Recall, m.Missed)
	}
}

func TestScoreDeduplicatesAndClamps(t *testing.T) {
	m := Score(Input{
		Identified: asns(5, 5, 5, 9),
		True:       asns(5, 5),
		Exercised:  asns(5, 5, 777), // 777 not in truth: ignored
	})
	if m.TP != 1 || m.FP != 1 {
		t.Fatalf("counts = %d/%d, want 1/1 after dedupe", m.TP, m.FP)
	}
	if m.Precision != 0.5 || m.Recall != 1 {
		t.Errorf("P=%v R=%v, want 0.5/1", m.Precision, m.Recall)
	}
	if m.ExercisedRecall != 1 {
		t.Errorf("exercised recall = %v, want 1 (777 clamped out)", m.ExercisedRecall)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(nil); got != 0 {
		t.Errorf("Reduction(nil) = %v, want 0", got)
	}
	if got := Reduction([]float64{0.5, 1.0}); got != 0.75 {
		t.Errorf("Reduction = %v, want 0.75", got)
	}
	// Out-of-range inputs are clamped, keeping the mean in [0, 1].
	if got := Reduction([]float64{-3, 7}); got != 0.5 {
		t.Errorf("Reduction clamp = %v, want 0.5", got)
	}
}
