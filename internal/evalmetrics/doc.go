// Package evalmetrics scores a censorship-localization verdict against
// scenario ground truth. It is the measurement-free core of the public
// churntomo.Evaluate API: pure set arithmetic over ASN slices, no
// dependency on the pipeline, the dataset, or the generators, so the
// scoring rules are testable (and fuzzable) in isolation.
//
// The vocabulary follows the paper's evaluation (§4): the tomography
// emits an identified set; the scenario knows the true censor registry,
// the subset of censors that actually fired during the run (exercised),
// and the set of ASes that sat on any censored path (the pool a naive
// path-intersection method would accuse). Precision/recall/F1 are over
// identified vs. true; exercised recall excludes censors the
// measurements never touched — a localization method cannot be blamed
// for a censor with no evidence; leakage rate asks how many false
// positives are mere on-path bystanders of real censorship.
package evalmetrics
