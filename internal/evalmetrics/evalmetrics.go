package evalmetrics

import (
	"slices"

	"churntomo/internal/topology"
)

// Input is one verdict to score. All slices may be nil, unsorted, and
// contain duplicates; duplicates are collapsed before scoring.
type Input struct {
	// Identified is the tomography's verdict: ASes named as censors.
	Identified []topology.ASN
	// True is the full ground-truth censor set (the scenario registry).
	True []topology.ASN
	// Exercised is the subset of True that produced at least one anomaly
	// during the run. ASes listed here but absent from True are ignored.
	Exercised []topology.ASN
	// OnCensoredPath is every AS that appeared on some path carrying a
	// true censorship event. False positives inside this set are
	// "leakage": innocent bystanders of real blocking, the failure mode
	// path intersection cannot escape and tomography should.
	OnCensoredPath []topology.ASN
}

// Metrics is the scored verdict. All rates are in [0, 1]; the
// degenerate cases are pinned rather than NaN: precision is 0 when
// nothing was identified (matching analysis.Validate), recall is 1 when
// there was nothing to find, and leakage rate is 0 when there are no
// false positives to classify.
type Metrics struct {
	TP     int // identified ∩ true
	FP     int // identified \ true
	Missed int // true \ identified

	Precision float64
	Recall    float64
	F1        float64

	// ExercisedRecall is recall restricted to censors that fired.
	// 1 when no censor fired.
	ExercisedRecall float64

	// LeakageFPs counts false positives lying on some censored path;
	// LeakageRate = LeakageFPs / FP (0 when FP == 0).
	LeakageFPs  int
	LeakageRate float64

	// FalsePositives and MissedASes name the errors, sorted ascending.
	FalsePositives []topology.ASN
	MissedASes     []topology.ASN
}

// dedupe returns the sorted unique elements of s (nil in, nil out).
func dedupe(s []topology.ASN) []topology.ASN {
	if len(s) == 0 {
		return nil
	}
	out := slices.Clone(s)
	slices.Sort(out)
	return slices.Compact(out)
}

// Score evaluates one verdict. It never panics and always returns rates
// in [0, 1], whatever the inputs.
func Score(in Input) Metrics {
	identified := dedupe(in.Identified)
	truth := dedupe(in.True)
	onPath := dedupe(in.OnCensoredPath)

	// Exercised is clamped to the truth set: a censor that "fired" but
	// is not in the registry is a caller inconsistency, not a harder
	// recall target.
	var exercised []topology.ASN
	for _, a := range dedupe(in.Exercised) {
		if _, ok := slices.BinarySearch(truth, a); ok {
			exercised = append(exercised, a)
		}
	}

	var m Metrics
	for _, a := range identified {
		if _, ok := slices.BinarySearch(truth, a); ok {
			m.TP++
		} else {
			m.FP++
			m.FalsePositives = append(m.FalsePositives, a)
			if _, leak := slices.BinarySearch(onPath, a); leak {
				m.LeakageFPs++
			}
		}
	}
	for _, a := range truth {
		if _, ok := slices.BinarySearch(identified, a); !ok {
			m.Missed++
			m.MissedASes = append(m.MissedASes, a)
		}
	}

	if n := len(identified); n > 0 {
		m.Precision = float64(m.TP) / float64(n)
	}
	if len(truth) == 0 {
		m.Recall = 1
	} else {
		m.Recall = float64(m.TP) / float64(len(truth))
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}

	if len(exercised) == 0 {
		m.ExercisedRecall = 1
	} else {
		hit := 0
		for _, a := range exercised {
			if _, ok := slices.BinarySearch(identified, a); ok {
				hit++
			}
		}
		m.ExercisedRecall = float64(hit) / float64(len(exercised))
	}

	if m.FP > 0 {
		m.LeakageRate = float64(m.LeakageFPs) / float64(m.FP)
	}
	return m
}

// Reduction summarizes how far tomography shrank the candidate space:
// the mean fraction of on-path candidate ASes eliminated across the
// ambiguous (Multiple-outcome) CNFs it could not fully solve. fracs are
// per-CNF elimination fractions in [0, 1]; values outside are clamped.
// Returns 0 for an empty slice.
func Reduction(fracs []float64) float64 {
	if len(fracs) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range fracs {
		if f < 0 {
			f = 0
		} else if f > 1 {
			f = 1
		}
		sum += f
	}
	return sum / float64(len(fracs))
}
