// Package traceroute simulates the platform's path measurements and the
// AS-level path inference the tomography consumes.
//
// Paper correspondence: §3.1. Each ICLab test records three traceroutes
// toward the destination. The simulator expands an AS-index path into
// router-level hops, then simulates probing (non-responsive hops, outright
// failures). The inference side converts hop addresses back to an AS path
// using the historical IP-to-AS database and applies the paper's four
// elimination rules for inconclusive paths:
//
//  1. no IP in the traceroute could be mapped;
//  2. the traceroute itself failed;
//  3. a silent hop sits between two different ASes (AS inference ambiguous);
//  4. the three traceroutes disagree at the AS level.
//
// Entry points: Expand derives the router-level Expansion of an AS path;
// Probe simulates one traceroute over it; InferConsensus folds a test's
// three traces into the inferred AS path or a FailReason naming the
// elimination rule that fired.
//
// Invariants: router-level expansion is derived from a path-keyed RNG, so
// the same AS path always yields the same hop layout — middlebox
// detectability is a stable property of a path rather than a
// per-measurement coin flip. A record with Fail != OK never contributes a
// clause (rule enforcement lives in tomo's grouping).
package traceroute
