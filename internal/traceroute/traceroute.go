package traceroute

import (
	"fmt"
	"math/rand/v2"
	"time"

	"churntomo/internal/ipasmap"
	"churntomo/internal/netaddr"
	"churntomo/internal/topology"
)

// Hop is one traceroute hop as recorded by the prober.
type Hop struct {
	IP        netaddr.IP // meaningful only when Responded
	Responded bool
}

// Trace is one traceroute run.
type Trace struct {
	Hops []Hop
	Err  bool // the traceroute failed outright (paper rule 2)
}

// Expansion is the ground-truth router-level path for one measurement: the
// data plane the probes and the HTTP/DNS packet simulations share, so hop
// distances (and hence TTL arithmetic) stay consistent within a test.
type Expansion struct {
	Hops []ExpHop
	// ASStart[i] is the index in Hops of the first router belonging to the
	// i-th AS of the AS path.
	ASStart []int
}

// ExpHop is one router on the ground-truth path.
type ExpHop struct {
	IP    netaddr.IP
	ASIdx int32
}

// Expand lays out router hops for an AS-index path ending at serverIP.
// Router counts scale with the AS's role (backbones traverse more hops).
func Expand(g *topology.Graph, idxPath []int32, serverIP netaddr.IP, rng *rand.Rand) Expansion {
	var e Expansion
	for i, asIdx := range idxPath {
		e.ASStart = append(e.ASStart, len(e.Hops))
		n := 1
		switch g.ASes[asIdx].Role {
		case topology.RoleTier1:
			n = 2 + rng.IntN(2)
		case topology.RoleTransit:
			n = 1 + rng.IntN(2)
		}
		if i == 0 {
			n = 1 // the vantage's own gateway
		}
		for r := 0; r < n; r++ {
			e.Hops = append(e.Hops, ExpHop{IP: g.RouterIP(asIdx, rng.IntN(8)), ASIdx: asIdx})
		}
	}
	// Final hop: the server host itself.
	last := idxPath[len(idxPath)-1]
	e.Hops = append(e.Hops, ExpHop{IP: serverIP, ASIdx: last})
	return e
}

// ServerDist returns the hop distance from the client to the server (the
// number of router traversals a packet makes).
func (e Expansion) ServerDist() int { return len(e.Hops) }

// DistOfAS returns the hop distance from the client to the ingress router
// of the AS at position pathIdx in the AS path — where an on-path middlebox
// in that AS would sit.
func (e Expansion) DistOfAS(pathIdx int) int { return e.ASStart[pathIdx] + 1 }

// Config controls probe behaviour.
type Config struct {
	// NonResponseProb is the per-hop probability of a missing response.
	// Default 0.03.
	NonResponseProb float64
	// FailProb is the probability that a traceroute fails outright.
	// Default 0.01.
	FailProb float64
}

func (c *Config) fillDefaults() {
	if c.NonResponseProb == 0 {
		c.NonResponseProb = 0.006
	}
	if c.FailProb == 0 {
		c.FailProb = 0.008
	}
}

// Probe simulates one traceroute over the expansion.
func Probe(e Expansion, cfg Config, rng *rand.Rand) Trace {
	cfg.fillDefaults()
	if rng.Float64() < cfg.FailProb {
		return Trace{Err: true}
	}
	tr := Trace{Hops: make([]Hop, len(e.Hops))}
	for i, h := range e.Hops {
		p := cfg.NonResponseProb
		if i == len(e.Hops)-1 {
			p /= 3 // the server itself almost always answers
		}
		if rng.Float64() < p {
			tr.Hops[i] = Hop{}
			continue
		}
		tr.Hops[i] = Hop{IP: h.IP, Responded: true}
	}
	return tr
}

// FailReason classifies why a trace (or trace set) yielded no usable AS
// path. The values map onto the paper's four elimination rules.
type FailReason uint8

// Inference outcomes.
const (
	OK                FailReason = iota
	ErrTraceFailed               // rule 2: traceroute error
	ErrNoMapping                 // rule 1: no IP mappable
	ErrSilentBoundary            // rule 3: silent hop between differing ASes
	ErrDisagree                  // rule 4: the three traceroutes disagree
)

// String names the failure reason.
func (r FailReason) String() string {
	switch r {
	case OK:
		return "ok"
	case ErrTraceFailed:
		return "traceroute-error"
	case ErrNoMapping:
		return "no-mapping"
	case ErrSilentBoundary:
		return "silent-boundary"
	case ErrDisagree:
		return "paths-disagree"
	default:
		return fmt.Sprintf("fail(%d)", uint8(r))
	}
}

// Infer converts one trace into an AS-level path. The vantage AS is known
// platform metadata (each record carries it), so it anchors the path; every
// other AS must be recovered from hop addresses via the mapping database.
func Infer(tr Trace, db *ipasmap.DB, at time.Time, vantage topology.ASN) ([]topology.ASN, FailReason) {
	if tr.Err {
		return nil, ErrTraceFailed
	}
	// Map hops; silent and unmappable hops both become unknowns.
	type slot struct {
		asn   topology.ASN
		known bool
	}
	slots := make([]slot, len(tr.Hops))
	anyMapped := false
	for i, h := range tr.Hops {
		if !h.Responded {
			continue
		}
		asn, ok := db.Lookup(h.IP, at)
		if !ok {
			continue
		}
		slots[i] = slot{asn, true}
		anyMapped = true
	}
	if !anyMapped {
		return nil, ErrNoMapping
	}

	path := []topology.ASN{vantage}
	last := vantage
	i := 0
	for i < len(slots) {
		if slots[i].known {
			if slots[i].asn != last {
				path = append(path, slots[i].asn)
				last = slots[i].asn
			}
			i++
			continue
		}
		// Unknown run: find the next known slot.
		j := i
		for j < len(slots) && !slots[j].known {
			j++
		}
		if j == len(slots) {
			// Trailing unknowns include the destination hop: the path's
			// end is unverifiable (paper folds this into rule 3).
			return nil, ErrSilentBoundary
		}
		if slots[j].asn != last {
			// The silent run hides an AS boundary: ambiguous.
			return nil, ErrSilentBoundary
		}
		i = j
	}
	return path, OK
}

// InferConsensus applies Infer to each of a measurement's traceroutes and
// then the paper's rule 4: if more than one distinct AS-level path emerges,
// the record is inconclusive. When individual traces fail for different
// reasons, the first failure in rule order is reported, but a single clean
// consensus among the successful traces is NOT enough — per the paper, a
// traceroute error eliminates the record.
func InferConsensus(traces []Trace, db *ipasmap.DB, at time.Time, vantage topology.ASN) ([]topology.ASN, FailReason) {
	if len(traces) == 0 {
		return nil, ErrTraceFailed
	}
	var consensus []topology.ASN
	for _, tr := range traces {
		path, why := Infer(tr, db, at, vantage)
		if why != OK {
			return nil, why
		}
		if consensus == nil {
			consensus = path
			continue
		}
		if !equalPath(consensus, path) {
			return nil, ErrDisagree
		}
	}
	return consensus, OK
}

func equalPath(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
