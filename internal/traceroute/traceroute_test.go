package traceroute

import (
	"math/rand/v2"
	"testing"
	"time"

	"churntomo/internal/ipasmap"
	"churntomo/internal/netaddr"
	"churntomo/internal/topology"
)

var at = time.Date(2016, 6, 15, 0, 0, 0, 0, time.UTC)

func fixture(t testing.TB) (*topology.Graph, *ipasmap.DB, []int32) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 1, ASes: 200})
	if err != nil {
		t.Fatal(err)
	}
	db := ipasmap.Perfect(g, at.AddDate(0, -1, 0))
	// Build a real routed path.
	tree := routingTree(g, 150)
	path, ok := tree.path(20, 150)
	if !ok || len(path) < 3 {
		t.Fatalf("fixture path unusable: %v", path)
	}
	return g, db, path
}

// Minimal local router to avoid importing internal/routing here: walk up to
// a tier-1 then down is unnecessary — use provider chains via BFS over all
// edges (any simple path works for expansion tests).
type simpleTree struct {
	parent []int32
}

func routingTree(g *topology.Graph, dst int32) simpleTree {
	parent := make([]int32, len(g.ASes))
	for i := range parent {
		parent[i] = -1
	}
	parent[dst] = dst
	queue := []int32{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors[u] {
			if parent[nb.Idx] == -1 {
				parent[nb.Idx] = u
				queue = append(queue, nb.Idx)
			}
		}
	}
	return simpleTree{parent}
}

func (t simpleTree) path(src, dst int32) ([]int32, bool) {
	if t.parent[src] == -1 {
		return nil, false
	}
	out := []int32{src}
	for at := src; at != dst; {
		at = t.parent[at]
		out = append(out, at)
		if len(out) > 64 {
			return nil, false
		}
	}
	return out, true
}

func serverIPOf(g *topology.Graph, idx int32) netaddr.IP { return g.HostIP(idx, 1) }

func TestExpandStructure(t *testing.T) {
	g, _, path := fixture(t)
	rng := rand.New(rand.NewPCG(1, 1))
	server := serverIPOf(g, path[len(path)-1])
	e := Expand(g, path, server, rng)

	if len(e.ASStart) != len(path) {
		t.Fatalf("ASStart has %d entries for %d ASes", len(e.ASStart), len(path))
	}
	if e.ASStart[0] != 0 {
		t.Errorf("first AS starts at hop %d", e.ASStart[0])
	}
	if e.Hops[len(e.Hops)-1].IP != server {
		t.Errorf("last hop %v is not the server %v", e.Hops[len(e.Hops)-1].IP, server)
	}
	// Hops per AS are contiguous and match the AS path order.
	for i, asIdx := range path {
		startHop := e.ASStart[i]
		endHop := len(e.Hops)
		if i+1 < len(path) {
			endHop = e.ASStart[i+1]
		}
		if startHop >= endHop {
			t.Fatalf("AS %d has no hops", i)
		}
		for h := startHop; h < endHop; h++ {
			if e.Hops[h].ASIdx != asIdx {
				t.Fatalf("hop %d belongs to AS %d, expected %d", h, e.Hops[h].ASIdx, asIdx)
			}
		}
	}
	if e.ServerDist() != len(e.Hops) {
		t.Errorf("ServerDist = %d, want %d", e.ServerDist(), len(e.Hops))
	}
	for i := range path {
		d := e.DistOfAS(i)
		if d < 1 || d > e.ServerDist() {
			t.Errorf("DistOfAS(%d) = %d out of range", i, d)
		}
		if i > 0 && d <= e.DistOfAS(i-1) {
			t.Errorf("distances not increasing: DistOfAS(%d)=%d <= DistOfAS(%d)", i, d, i-1)
		}
	}
}

func TestProbeCleanInfer(t *testing.T) {
	g, db, path := fixture(t)
	rng := rand.New(rand.NewPCG(2, 2))
	e := Expand(g, path, serverIPOf(g, path[len(path)-1]), rng)
	tr := Probe(e, Config{NonResponseProb: 1e-9, FailProb: 1e-9}, rng)
	got, why := Infer(tr, db, at, g.ASes[path[0]].ASN)
	if why != OK {
		t.Fatalf("Infer failed: %v", why)
	}
	want := make([]topology.ASN, len(path))
	for i, idx := range path {
		want[i] = g.ASes[idx].ASN
	}
	if !equalPath(got, want) {
		t.Errorf("inferred %v, want %v", got, want)
	}
}

func TestInferRule2TraceError(t *testing.T) {
	_, db, _ := fixture(t)
	if _, why := Infer(Trace{Err: true}, db, at, 1); why != ErrTraceFailed {
		t.Errorf("got %v, want ErrTraceFailed", why)
	}
}

func TestInferRule1NoMapping(t *testing.T) {
	g, db, path := fixture(t)
	rng := rand.New(rand.NewPCG(3, 3))
	e := Expand(g, path, serverIPOf(g, path[len(path)-1]), rng)
	tr := Probe(e, Config{NonResponseProb: 1e-9, FailProb: 1e-9}, rng)
	// Rewrite all hops to unallocated space.
	for i := range tr.Hops {
		tr.Hops[i].IP = netaddr.MustParseIP("5.5.5.5")
	}
	if _, why := Infer(tr, db, at, g.ASes[path[0]].ASN); why != ErrNoMapping {
		t.Errorf("got %v, want ErrNoMapping", why)
	}
}

func TestInferRule3SilentBoundary(t *testing.T) {
	g, db, path := fixture(t)
	rng := rand.New(rand.NewPCG(4, 4))
	e := Expand(g, path, serverIPOf(g, path[len(path)-1]), rng)
	tr := Probe(e, Config{NonResponseProb: 1e-9, FailProb: 1e-9}, rng)
	// Silence every hop of the second AS: the run between AS1 and AS3
	// becomes ambiguous.
	startHop, endHop := e.ASStart[1], e.ASStart[2]
	for i := startHop; i < endHop; i++ {
		tr.Hops[i] = Hop{}
	}
	if _, why := Infer(tr, db, at, g.ASes[path[0]].ASN); why != ErrSilentBoundary {
		t.Errorf("got %v, want ErrSilentBoundary", why)
	}
}

func TestInferSilentWithinASAbsorbed(t *testing.T) {
	g, db, path := fixture(t)
	rng := rand.New(rand.NewPCG(5, 5))
	e := Expand(g, path, serverIPOf(g, path[len(path)-1]), rng)
	// Find an AS with >= 3 hops and silence a middle one: the silent hop is
	// flanked by mapped hops of the same AS, so inference can absorb it.
	// (Silencing an AS's edge hop is a genuine rule-3 ambiguity and must
	// fail — covered by TestInferRule3SilentBoundary.)
	target := -1
	for i := range path {
		end := len(e.Hops)
		if i+1 < len(path) {
			end = e.ASStart[i+1]
		}
		if end-e.ASStart[i] >= 3 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Skip("no 3-hop AS on this path")
	}
	tr := Probe(e, Config{NonResponseProb: 1e-9, FailProb: 1e-9}, rng)
	tr.Hops[e.ASStart[target]+1] = Hop{} // silence an interior router
	got, why := Infer(tr, db, at, g.ASes[path[0]].ASN)
	if why != OK {
		t.Fatalf("interior silent hop not absorbed: %v", why)
	}
	if len(got) != len(path) {
		t.Errorf("inferred %d ASes, want %d", len(got), len(path))
	}
}

func TestInferTrailingSilentFails(t *testing.T) {
	g, db, path := fixture(t)
	rng := rand.New(rand.NewPCG(6, 6))
	e := Expand(g, path, serverIPOf(g, path[len(path)-1]), rng)
	tr := Probe(e, Config{NonResponseProb: 1e-9, FailProb: 1e-9}, rng)
	// Silence the final hops spanning the last AS boundary.
	for i := e.ASStart[len(path)-1]; i < len(tr.Hops); i++ {
		tr.Hops[i] = Hop{}
	}
	if _, why := Infer(tr, db, at, g.ASes[path[0]].ASN); why != ErrSilentBoundary {
		t.Errorf("got %v, want ErrSilentBoundary for unverifiable tail", why)
	}
}

func TestInferConsensusRule4(t *testing.T) {
	g, db, path := fixture(t)
	rng := rand.New(rand.NewPCG(7, 7))
	server := serverIPOf(g, path[len(path)-1])
	e := Expand(g, path, server, rng)
	clean := Config{NonResponseProb: 1e-9, FailProb: 1e-9}
	t1 := Probe(e, clean, rng)
	t2 := Probe(e, clean, rng)
	t3 := Probe(e, clean, rng)

	if _, why := InferConsensus([]Trace{t1, t2, t3}, db, at, g.ASes[path[0]].ASN); why != OK {
		t.Fatalf("clean consensus failed: %v", why)
	}

	// Disagreement: reroute the third trace through a different AS by
	// remapping one hop's address into another AS's space.
	var otherIdx int32
	for i := range g.ASes {
		if !containsIdx(path, int32(i)) {
			otherIdx = int32(i)
			break
		}
	}
	t3.Hops[e.ASStart[1]] = Hop{IP: g.RouterIP(otherIdx, 0), Responded: true}
	if _, why := InferConsensus([]Trace{t1, t2, t3}, db, at, g.ASes[path[0]].ASN); why != ErrDisagree {
		t.Errorf("got %v, want ErrDisagree", why)
	}

	// A failed member trace poisons the record (rule 2 at record level).
	if _, why := InferConsensus([]Trace{t1, {Err: true}}, db, at, g.ASes[path[0]].ASN); why != ErrTraceFailed {
		t.Errorf("got %v, want ErrTraceFailed", why)
	}
	if _, why := InferConsensus(nil, db, at, g.ASes[path[0]].ASN); why != ErrTraceFailed {
		t.Errorf("empty trace set: got %v", why)
	}
}

func TestProbeFailure(t *testing.T) {
	g, _, path := fixture(t)
	rng := rand.New(rand.NewPCG(8, 8))
	e := Expand(g, path, serverIPOf(g, path[len(path)-1]), rng)
	fails := 0
	for i := 0; i < 1000; i++ {
		if Probe(e, Config{FailProb: 0.25, NonResponseProb: 1e-9}, rng).Err {
			fails++
		}
	}
	if fails < 150 || fails > 400 {
		t.Errorf("fail rate %d/1000 far from configured 25%%", fails)
	}
}

func TestFailReasonStrings(t *testing.T) {
	for _, r := range []FailReason{OK, ErrTraceFailed, ErrNoMapping, ErrSilentBoundary, ErrDisagree} {
		if r.String() == "" {
			t.Errorf("empty string for %d", r)
		}
	}
	if FailReason(99).String() == "" {
		t.Error("unknown reason renders empty")
	}
}

func containsIdx(path []int32, x int32) bool {
	for _, p := range path {
		if p == x {
			return true
		}
	}
	return false
}
