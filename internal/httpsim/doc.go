// Package httpsim simulates the platform's HTTP GET test at packet level:
// TCP handshake, request, response segments, teardown — with on-path
// censors injecting RSTs, sequence-space data, TTL-anomalous duplicates or
// blockpages into the stream (paper §2.1, "SEQNO and TTL anomalies" /
// "Block pages").
//
// Entry points: Simulate runs one GET against a server with a set of
// on-path Injectors and Noise; the Result carries the client-side capture
// plus the HTTP body the client's stack would deliver, which feed
// internal/detect. DefaultNoise supplies the baseline packet-level noise
// profile.
//
// Invariants: injected segments obey the injector's behavioural knobs
// (initial TTL, sequence skew, TTL mimicry, connection-killing), so a
// censor's detectability is a property of its configured behaviour, not a
// coin flip; all randomness flows from the caller's RNG for per-day
// determinism.
package httpsim
