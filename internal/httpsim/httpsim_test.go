package httpsim

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/netaddr"
	"churntomo/internal/netsim"
)

var (
	client = netaddr.MustParseIP("20.0.0.5")
	server = netaddr.MustParseIP("21.0.0.9")
)

func params(body []byte) Params {
	return Params{
		At:         time.Date(2016, 5, 1, 12, 0, 0, 0, time.UTC),
		ClientIP:   client,
		ServerIP:   server,
		Host:       "h.example.com",
		ServerDist: 10,
		ServerTTL:  netsim.InitTTLLinux,
		Body:       body,
	}
}

func body(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}

func TestSimulateCleanConnection(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	res := Simulate(params(body(3000)), nil, Noise{}, rng)
	if !bytes.Equal(res.Body, body(3000)) {
		t.Fatal("clean body corrupted")
	}
	if res.BaselineLen != 3000 {
		t.Errorf("baseline %d", res.BaselineLen)
	}
	// Handshake present and ordered.
	pk := res.Capture.Packets
	if pk[0].Flags != netsim.FlagSYN {
		t.Errorf("first packet %v", pk[0].Flags)
	}
	if pk[1].Flags != netsim.FlagSYN|netsim.FlagACK || pk[1].Src != server {
		t.Errorf("second packet %v from %v", pk[1].Flags, pk[1].Src)
	}
	// Segmentation: 3000 bytes at MSS 1200 = 3 data segments.
	data := 0
	for _, p := range pk {
		if p.Src == server && len(p.Payload) > 0 {
			data++
		}
	}
	if data != 3 {
		t.Errorf("data segments %d, want 3", data)
	}
}

func TestSimulateSegmentSequenceNumbers(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	res := Simulate(params(body(2500)), nil, Noise{}, rng)
	var isn uint32
	var segs []netsim.Packet
	for _, p := range res.Capture.Packets {
		if p.Src != server {
			continue
		}
		if p.Flags&netsim.FlagSYN != 0 {
			isn = p.Seq
			continue
		}
		if len(p.Payload) > 0 {
			segs = append(segs, p)
		}
	}
	next := isn + 1
	for i, s := range segs {
		if s.Seq != next {
			t.Fatalf("segment %d seq %d, want %d", i, s.Seq, next)
		}
		next += uint32(len(s.Payload))
	}
}

func TestSimulateBlockpageInPathSuppressesServer(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	page := []byte("<html>blocked</html>")
	inj := []Injector{{ASN: 1, Dist: 4, Technique: anomaly.Block, InitTTL: 64, InPath: true, Blockpage: page}}
	res := Simulate(params(body(4000)), inj, Noise{}, rng)
	if !bytes.Equal(res.Body, page) {
		t.Fatalf("body = %q, want blockpage", res.Body)
	}
	for _, p := range res.Capture.Packets {
		if p.Src == server && len(p.Payload) > 0 && !p.Injected {
			t.Fatal("in-path block should suppress the real response")
		}
	}
}

func TestSimulateInjectionRacesAhead(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	inj := []Injector{{ASN: 1, Dist: 3, Technique: anomaly.Block, InitTTL: 255, Blockpage: []byte("X-BLOCKED-X")}}
	res := Simulate(params(body(2000)), inj, Noise{}, rng)
	// First data byte delivered must come from the injection.
	if res.Body[0] != 'X' {
		t.Errorf("injection lost the race: body starts %q", res.Body[:8])
	}
}

func TestReassembleFirstArrivalWins(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	inj := []Injector{{ASN: 1, Dist: 3, Technique: anomaly.SEQ, InitTTL: 64, MimicTTL: true}}
	res := Simulate(params(body(2000)), inj, Noise{}, rng)
	// The injected chunk overwrote part of the stream (or extended it);
	// the result must differ from the clean body somewhere if the offset
	// landed inside, and the prefix before the offset must be intact.
	if len(res.Body) < 2000 {
		t.Fatalf("body truncated to %d", len(res.Body))
	}
}

func TestResizeBody(t *testing.T) {
	b := []byte("abcdef")
	if got := resizeBody(b, 3); string(got) != "abc" {
		t.Errorf("shrink: %q", got)
	}
	if got := resizeBody(b, 14); string(got) != "abcdefabcdefab" {
		t.Errorf("grow: %q", got)
	}
	if got := resizeBody(b, 0); len(got) == 0 {
		t.Error("zero-size resize should return placeholder")
	}
	if got := resizeBody(nil, 10); len(got) != 0 {
		// No content to repeat: returns empty rather than looping forever.
		t.Errorf("nil body resize: %q", got)
	}
}

func TestOrganicRSTHasValidSequence(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	n := Noise{OrganicRSTProb: 1} // always RST teardown
	res := Simulate(params(body(1000)), nil, n, rng)
	var isn uint32
	var rst *netsim.Packet
	total := 0
	for i, p := range res.Capture.Packets {
		if p.Src != server {
			continue
		}
		if p.Flags&netsim.FlagSYN != 0 {
			isn = p.Seq
		}
		if len(p.Payload) > 0 {
			total += len(p.Payload)
		}
		if p.Flags&netsim.FlagRST != 0 {
			rst = &res.Capture.Packets[i]
		}
	}
	if rst == nil {
		t.Fatal("no organic RST emitted at prob 1")
	}
	if rst.Seq != isn+1+uint32(total) {
		t.Errorf("organic RST seq %d, want stream end %d", rst.Seq, isn+1+uint32(total))
	}
	if rst.Injected {
		t.Error("organic RST marked injected")
	}
}
