package httpsim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/netaddr"
	"churntomo/internal/netsim"
)

// HopLatency is the simulated one-way per-hop latency.
const HopLatency = 2 * time.Millisecond

// segmentSize is the simulated MSS.
const segmentSize = 1200

// Params describes one HTTP measurement.
type Params struct {
	At         time.Time
	ClientIP   netaddr.IP
	ServerIP   netaddr.IP
	Host       string
	ServerDist int    // hop distance client -> server
	ServerTTL  uint8  // server's initial TTL (64 or 128)
	Body       []byte // the page a censor-free fetch returns
}

// Injector is one on-path middlebox acting on this connection.
type Injector struct {
	ASN       uint32
	Dist      int // hop distance client -> middlebox
	Technique anomaly.Kind
	InitTTL   uint8
	SeqSkew   bool   // RST sequence numbers guessed imperfectly
	InPath    bool   // blockpage boxes that also drop the real response
	MimicTTL  bool   // SEQ injections imitate the server's arrival TTL
	KillsConn bool   // blockpage boxes that append a RST
	Blockpage []byte // body served for Technique == Block
}

// Noise parameterizes organic imperfections. Zero values mean "no noise";
// DefaultNoise supplies the calibrated rates.
type Noise struct {
	// TTLJitterProb: per server packet, the arrival TTL wobbles by one
	// (ECMP). Tolerated by the detector.
	TTLJitterProb float64
	// PathShiftProb: the server->client return path changes mid-connection,
	// shifting all subsequent TTLs by 2..5 — a TTL false positive.
	PathShiftProb float64
	// OrganicRSTProb: the server tears the connection down with a RST
	// (common for busy servers).
	OrganicRSTProb float64
	// OrganicRSTOddTTLProb: an organic RST is emitted by a different box
	// (load balancer) whose TTL disagrees with the SYNACK's — the RST
	// detector's main false-positive source, which the paper singles out
	// as the platform's noisiest signal.
	OrganicRSTOddTTLProb float64
	// DynamicBodyProb: the page's size changes between fetches (dynamic
	// content) enough to trip the blockpage length heuristic.
	DynamicBodyProb float64
}

// DefaultNoise returns rates calibrated so that the anomaly mix lands near
// the paper's Table 1 and RST is the noisiest detector (Figure 1b).
func DefaultNoise() Noise {
	return Noise{
		TTLJitterProb:        0.06,
		PathShiftProb:        0.0004,
		OrganicRSTProb:       0.08,
		OrganicRSTOddTTLProb: 0.008,
		DynamicBodyProb:      0.0005,
	}
}

// Result is one simulated connection.
type Result struct {
	Capture netsim.Capture
	// Body is what the client's HTTP stack delivered: the first data to
	// arrive wins the sequence space, as in a real TCP implementation.
	Body []byte
	// BaselineLen is the body length a censor-free control fetch saw
	// (subject to dynamic-content noise).
	BaselineLen int
}

// Simulate runs one HTTP GET through the injectors.
func Simulate(p Params, injectors []Injector, n Noise, rng *rand.Rand) Result {
	var c netsim.Capture
	clientPort := uint16(20000 + rng.IntN(40000))
	clientISN := rng.Uint32()
	serverISN := rng.Uint32()
	rtt := time.Duration(2*p.ServerDist) * HopLatency

	jitter := func() uint8 {
		if rng.Float64() < n.TTLJitterProb {
			return 1
		}
		return 0
	}
	serverTTLNow := netsim.ArrivalTTL(p.ServerTTL, p.ServerDist)

	// Handshake.
	c.Add(netsim.Packet{
		At: p.At, Src: p.ClientIP, Dst: p.ServerIP, TTL: netsim.InitTTLLinux,
		Proto: netsim.ProtoTCP, SrcPort: clientPort, DstPort: netsim.HTTPPort,
		Seq: clientISN, Flags: netsim.FlagSYN,
	})
	c.Add(netsim.Packet{
		At: p.At.Add(rtt), Src: p.ServerIP, Dst: p.ClientIP, TTL: serverTTLNow,
		Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
		Seq: serverISN, Ack: clientISN + 1, Flags: netsim.FlagSYN | netsim.FlagACK,
	})
	getAt := p.At.Add(rtt)
	request := fmt.Appendf(nil, "GET / HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", p.Host)
	c.Add(netsim.Packet{
		At: getAt, Src: p.ClientIP, Dst: p.ServerIP, TTL: netsim.InitTTLLinux,
		Proto: netsim.ProtoTCP, SrcPort: clientPort, DstPort: netsim.HTTPPort,
		Seq: clientISN + 1, Ack: serverISN + 1, Flags: netsim.FlagACK | netsim.FlagPSH,
		Payload: request,
	})

	// Mid-connection return-path shift (organic TTL noise).
	shift := 0
	if rng.Float64() < n.PathShiftProb {
		shift = 2 + rng.IntN(4)
		if rng.Float64() < 0.5 {
			shift = -shift
		}
	}
	serverDataTTL := func() uint8 {
		return uint8(int(netsim.ArrivalTTL(p.ServerTTL, p.ServerDist)) + shift + int(jitter()))
	}

	// The real response body (with occasional dynamic-content drift).
	body := p.Body
	baselineLen := len(p.Body)
	if rng.Float64() < n.DynamicBodyProb {
		// The live page grew or shrank versus the control fetch.
		scale := 0.4 + 1.2*rng.Float64()
		body = resizeBody(p.Body, int(float64(len(p.Body))*scale))
	}

	serverRespAt := getAt.Add(rtt + time.Duration(rng.IntN(15)+5)*time.Millisecond)
	blockpageDropsServer := false

	// Injections: each middlebox sees the GET after Dist hops; its packets
	// reach the client 2*Dist hops after the GET left.
	for _, inj := range injectors {
		injAt := getAt.Add(time.Duration(2*inj.Dist) * HopLatency)
		injTTL := netsim.ArrivalTTL(inj.InitTTL, inj.Dist)
		if injTTL == 0 {
			continue
		}
		switch inj.Technique {
		case anomaly.RST:
			seq := serverISN + 1
			if inj.SeqSkew {
				seq += uint32(rng.IntN(1400) + 1)
			}
			for i := 0; i < 1+rng.IntN(3); i++ { // injectors often fire bursts
				c.Add(netsim.Packet{
					At:  injAt.Add(time.Duration(i) * time.Millisecond),
					Src: p.ServerIP, Dst: p.ClientIP, TTL: injTTL,
					Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
					Seq: seq, Flags: netsim.FlagRST,
					Injected: true, InjectedBy: inj.ASN,
				})
			}
		case anomaly.Block:
			c.Add(netsim.Packet{
				At:  injAt,
				Src: p.ServerIP, Dst: p.ClientIP, TTL: injTTL,
				Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
				Seq: serverISN + 1, Ack: clientISN + 1 + uint32(len(request)),
				Flags:    netsim.FlagACK | netsim.FlagPSH,
				Payload:  inj.Blockpage,
				Injected: true, InjectedBy: inj.ASN,
			})
			if inj.InPath {
				blockpageDropsServer = true
			} else if inj.KillsConn {
				// On-path boxes usually also try to kill the connection.
				c.Add(netsim.Packet{
					At:  injAt.Add(time.Millisecond),
					Src: p.ServerIP, Dst: p.ClientIP, TTL: injTTL,
					Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
					Seq: serverISN + 1 + uint32(len(inj.Blockpage)), Flags: netsim.FlagRST,
					Injected: true, InjectedBy: inj.ASN,
				})
			}
		case anomaly.SEQ:
			// Inject data into the middle of the stream with content that
			// cannot match the real bytes. TTL usually mimics the server
			// (crafted), sometimes misses by a few hops.
			ttl := netsim.ArrivalTTL(p.ServerTTL, p.ServerDist)
			if !inj.MimicTTL {
				ttl = uint8(int(ttl) - (2 + rng.IntN(6)))
			}
			off := uint32(rng.IntN(len(body) + 400))
			chunk := make([]byte, 200+rng.IntN(400))
			for i := range chunk {
				chunk[i] = byte('A' + rng.IntN(26))
			}
			c.Add(netsim.Packet{
				At:  serverRespAt.Add(-time.Millisecond), // races just ahead
				Src: p.ServerIP, Dst: p.ClientIP, TTL: ttl,
				Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
				Seq: serverISN + 1 + off, Ack: clientISN + 1 + uint32(len(request)),
				Flags: netsim.FlagACK, Payload: chunk,
				Injected: true, InjectedBy: inj.ASN,
			})
		case anomaly.TTL:
			// Re-emit the first real segment verbatim with the box's own
			// TTL: content-identical (no SEQ flag), TTL-anomalous.
			seg := body
			if len(seg) > segmentSize {
				seg = seg[:segmentSize]
			}
			c.Add(netsim.Packet{
				At:  serverRespAt.Add(time.Millisecond),
				Src: p.ServerIP, Dst: p.ClientIP, TTL: injTTL,
				Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
				Seq: serverISN + 1, Ack: clientISN + 1 + uint32(len(request)),
				Flags: netsim.FlagACK, Payload: append([]byte(nil), seg...),
				Injected: true, InjectedBy: inj.ASN,
			})
		}
	}

	// The real server response (unless an in-path box swallowed the GET).
	if !blockpageDropsServer {
		at := serverRespAt
		seq := serverISN + 1
		for off := 0; off < len(body); off += segmentSize {
			end := off + segmentSize
			if end > len(body) {
				end = len(body)
			}
			c.Add(netsim.Packet{
				At:  at,
				Src: p.ServerIP, Dst: p.ClientIP, TTL: serverDataTTL(),
				Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
				Seq: seq, Ack: clientISN + 1 + uint32(len(request)),
				Flags: netsim.FlagACK | netsim.FlagPSH, Payload: body[off:end],
			})
			seq += uint32(end - off)
			at = at.Add(time.Duration(rng.IntN(3)+1) * time.Millisecond)
		}
		// Teardown: FIN normally, RST for impatient servers.
		if rng.Float64() < n.OrganicRSTProb {
			ttl := serverDataTTL()
			if rng.Float64() < n.OrganicRSTOddTTLProb {
				// Emitted by a load balancer at a different distance.
				ttl = uint8(int(ttl) - (2 + rng.IntN(5)))
			}
			c.Add(netsim.Packet{
				At:  at,
				Src: p.ServerIP, Dst: p.ClientIP, TTL: ttl,
				Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
				Seq: seq, Flags: netsim.FlagRST,
			})
		} else {
			c.Add(netsim.Packet{
				At:  at,
				Src: p.ServerIP, Dst: p.ClientIP, TTL: serverDataTTL(),
				Proto: netsim.ProtoTCP, SrcPort: netsim.HTTPPort, DstPort: clientPort,
				Seq: seq, Ack: clientISN + 1 + uint32(len(request)), Flags: netsim.FlagFIN | netsim.FlagACK,
			})
		}
	}

	c.Sort()
	return Result{
		Capture:     c,
		Body:        reassemble(&c, p.ClientIP, p.ServerIP, serverISN),
		BaselineLen: baselineLen,
	}
}

// reassemble reconstructs the byte stream the client delivers to its HTTP
// layer: first-arrival wins each sequence range, mirroring how injected
// segments poison real TCP stacks.
func reassemble(c *netsim.Capture, client, server netaddr.IP, isn uint32) []byte {
	base := isn + 1
	var buf []byte
	var have []bool
	for _, p := range c.Packets { // capture is time-ordered
		if p.Src != server || p.Dst != client || p.Proto != netsim.ProtoTCP || len(p.Payload) == 0 {
			continue
		}
		if p.Flags&netsim.FlagSYN != 0 {
			continue
		}
		rel := p.Seq - base
		if rel > 1<<20 {
			continue // wild sequence number; stack discards
		}
		need := int(rel) + len(p.Payload)
		if len(buf) < need {
			// Grow once to the needed length; append's zero fill is the
			// "not yet delivered" state for both slices.
			buf = append(buf, make([]byte, need-len(buf))...)
			have = append(have, make([]bool, need-len(have))...)
		}
		for i, b := range p.Payload {
			if off := int(rel) + i; !have[off] {
				buf[off] = b
				have[off] = true
			}
		}
	}
	// Trim trailing unwritten space (gaps at the end never delivered).
	end := len(buf)
	for end > 0 && !have[end-1] {
		end--
	}
	return buf[:end]
}

// resizeBody grows or shrinks a body to n bytes, repeating content as
// needed (dynamic pages share structure across fetches).
func resizeBody(b []byte, n int) []byte {
	if n <= 0 {
		return []byte("<html></html>")
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		rest := n - len(out)
		if rest > len(b) {
			rest = len(b)
		}
		if rest == 0 {
			break
		}
		out = append(out, b[:rest]...)
	}
	return out
}
