package routing

import (
	"sync"

	"churntomo/internal/topology"
)

// Unreachable marks a node with no route in a Tree.
const Unreachable int32 = -1

// Tree holds, for one destination and one routing epoch, the chosen next
// hop of every AS (by index). The destination's entry points to itself.
type Tree []int32

// route phases, in Gao–Rexford preference order: routes learned from
// customers beat routes learned from peers beat routes learned from
// providers, regardless of path length.
const (
	phaseNone uint8 = iota
	phaseCustomer
	phasePeer
	phaseProvider
)

// tiebreak hashes a (chooser, nexthop) pair with the chooser's policy salt.
// It stands in for the long tail of the BGP decision process (MED, IGP
// cost, router IDs): deterministic for a fixed salt, and re-rolled by policy
// shift events to model intra-policy route changes.
func tiebreak(u, v int32, salt uint64) uint64 {
	x := salt ^ uint64(uint32(u))<<32 ^ uint64(uint32(v))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// treeScratch holds the per-computation working state of ComputeTree. The
// tree itself is freshly allocated (it outlives the call, cached by the
// oracle); everything else is recycled through treeScratchPool so repeated
// computations allocate only the tree. dist needs no clearing between uses
// (it is only read for nodes routed in the same computation); phase does.
type treeScratch struct {
	dist              []int32
	phase             []uint8
	frontier, claimed []int32
	buckets           [][]int32
}

var treeScratchPool = sync.Pool{New: func() any { return &treeScratch{} }}

// grab sizes the scratch for n nodes and clears what must be cleared.
func (s *treeScratch) grab(n int) {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.phase = make([]uint8, n)
		s.buckets = make([][]int32, n+1)
	}
	s.dist = s.dist[:n]
	s.phase = s.phase[:n]
	s.buckets = s.buckets[:n+1]
	for i := range s.phase {
		s.phase[i] = phaseNone
	}
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	s.frontier = s.frontier[:0]
	s.claimed = s.claimed[:0]
}

// ComputeTree computes the Gao–Rexford routing tree toward dst (an AS
// index). linkDown reports failed links; saltOf supplies each AS's policy
// salt. The decision process per AS: prefer customer-learned, then
// peer-learned, then provider-learned routes; among those, shortest AS
// path; ties broken by the salted hash.
//
// The three-phase BFS below is the standard simulation algorithm for this
// model: phase 1 floods the destination's announcement up provider chains
// (producing customer routes), phase 2 crosses single peer edges, and phase
// 3 floods everything down customer chains (producing provider routes).
// The result is valley-free by construction.
func ComputeTree(g *topology.Graph, dst int32, linkDown func(int32) bool, saltOf func(int32) uint64) Tree {
	n := len(g.ASes)
	next := make(Tree, n)
	sc := treeScratchPool.Get().(*treeScratch)
	sc.grab(n)
	dist := sc.dist
	phase := sc.phase
	for i := range next {
		next[i] = Unreachable
	}

	up := func(link int32) bool { return linkDown == nil || !linkDown(link) }

	// Phase 1: customer routes, level-synchronous BFS from dst along
	// customer->provider edges.
	next[dst], dist[dst], phase[dst] = dst, 0, phaseCustomer
	frontier := append(sc.frontier, dst)
	claimed := sc.claimed // providers claimed in the current level
	for len(frontier) > 0 {
		claimed = claimed[:0]
		for _, u := range frontier {
			for _, nb := range g.Neighbors[u] {
				if nb.Rel != topology.RelProvider || !up(nb.Link) {
					continue
				}
				p := nb.Idx
				if phase[p] == phaseCustomer {
					continue // already routed (this or an earlier level)
				}
				if next[p] == Unreachable {
					claimed = append(claimed, p)
					next[p] = u
				} else if tiebreak(p, u, saltOf(p)) < tiebreak(p, next[p], saltOf(p)) {
					next[p] = u
				}
			}
		}
		for _, p := range claimed {
			phase[p] = phaseCustomer
			dist[p] = dist[next[p]] + 1
		}
		frontier = append(frontier[:0], claimed...)
	}

	// Phase 2: peer routes. An AS without a customer route may cross one
	// peer edge into an AS that has one.
	for u := int32(0); u < int32(n); u++ {
		if phase[u] != phaseNone {
			continue
		}
		best := Unreachable
		var bestDist int32
		for _, nb := range g.Neighbors[u] {
			if nb.Rel != topology.RelPeer || !up(nb.Link) || phase[nb.Idx] != phaseCustomer {
				continue
			}
			d := dist[nb.Idx] + 1
			switch {
			case best == Unreachable, d < bestDist:
				best, bestDist = nb.Idx, d
			case d == bestDist && tiebreak(u, nb.Idx, saltOf(u)) < tiebreak(u, best, saltOf(u)):
				best = nb.Idx
			}
		}
		if best != Unreachable {
			phase[u], dist[u], next[u] = phasePeer, bestDist, best
		}
	}

	// Phase 3: provider routes, flooding every routed AS's announcement
	// down provider->customer edges in increasing path-length order.
	maxDist := int32(0)
	buckets := sc.buckets
	for u := int32(0); u < int32(n); u++ {
		if phase[u] != phaseNone {
			buckets[dist[u]] = append(buckets[dist[u]], u)
			if dist[u] > maxDist {
				maxDist = dist[u]
			}
		}
	}
	for d := int32(0); d <= maxDist; d++ {
		claimed = claimed[:0]
		for _, v := range buckets[d] {
			if dist[v] != d {
				continue // superseded by a shorter assignment
			}
			for _, nb := range g.Neighbors[v] {
				if nb.Rel != topology.RelCustomer || !up(nb.Link) {
					continue
				}
				u := nb.Idx
				if phase[u] != phaseNone {
					continue
				}
				if next[u] == Unreachable {
					claimed = append(claimed, u)
					next[u] = v
				} else if dist[next[u]] == d && tiebreak(u, v, saltOf(u)) < tiebreak(u, next[u], saltOf(u)) {
					next[u] = v
				}
			}
		}
		for _, u := range claimed {
			phase[u] = phaseProvider
			dist[u] = d + 1
			if int(d+1) < len(buckets) {
				buckets[d+1] = append(buckets[d+1], u)
				if d+1 > maxDist {
					maxDist = d + 1
				}
			}
		}
	}
	sc.frontier, sc.claimed, sc.buckets = frontier[:0], claimed, buckets
	treeScratchPool.Put(sc)
	return next
}

// Path extracts the AS-index path from src to dst out of a tree, returning
// ok=false if src has no route. The returned slice starts with src and ends
// with dst.
func (t Tree) Path(src, dst int32) ([]int32, bool) {
	const maxLen = 64 // far above any valley-free path length; loop guard
	if t[src] == Unreachable {
		return nil, false
	}
	path := make([]int32, 0, 8)
	at := src
	for range maxLen {
		path = append(path, at)
		if at == dst {
			return path, true
		}
		at = t[at]
		if at == Unreachable {
			return nil, false
		}
	}
	return nil, false
}

// ValleyFree verifies the Gao–Rexford export condition along an AS-index
// path: once the path traverses a peer or provider->customer edge, every
// later edge must be provider->customer. Used by tests and as a debugging
// assertion.
func ValleyFree(g *topology.Graph, path []int32) bool {
	descending := false
	for i := 0; i+1 < len(path); i++ {
		rel, ok := relBetween(g, path[i], path[i+1])
		if !ok {
			return false
		}
		switch rel {
		case topology.RelProvider: // going up
			if descending {
				return false
			}
		case topology.RelPeer:
			if descending {
				return false
			}
			descending = true
		case topology.RelCustomer: // going down
			descending = true
		}
	}
	return true
}

func relBetween(g *topology.Graph, a, b int32) (topology.Rel, bool) {
	for _, nb := range g.Neighbors[a] {
		if nb.Idx == b {
			return nb.Rel, true
		}
	}
	return 0, false
}
