package routing

import (
	"sync"
	"testing"
	"time"

	"churntomo/internal/topology"
)

func graph(t testing.TB, seed uint64, ases int) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: seed, ASes: ases})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g
}

func noDown(int32) bool     { return false }
func zeroSalt(int32) uint64 { return 0 }

func TestComputeTreeAllReachable(t *testing.T) {
	g := graph(t, 1, 200)
	for dst := int32(0); dst < 20; dst++ {
		tree := ComputeTree(g, dst, noDown, zeroSalt)
		for src := range tree {
			path, ok := tree.Path(int32(src), dst)
			if !ok {
				t.Fatalf("no route %v -> %v in failure-free topology",
					g.ASes[src].ASN, g.ASes[dst].ASN)
			}
			if path[0] != int32(src) || path[len(path)-1] != dst {
				t.Fatalf("path endpoints wrong: %v", path)
			}
		}
	}
}

func TestComputeTreeValleyFree(t *testing.T) {
	g := graph(t, 2, 250)
	for dst := int32(0); dst < int32(len(g.ASes)); dst += 17 {
		tree := ComputeTree(g, dst, noDown, zeroSalt)
		for src := int32(0); src < int32(len(g.ASes)); src += 7 {
			path, ok := tree.Path(src, dst)
			if !ok {
				t.Fatalf("unreachable %d->%d", src, dst)
			}
			if !ValleyFree(g, path) {
				names := make([]string, len(path))
				for i, p := range path {
					names[i] = g.ASes[p].ASN.String() + "/" + g.ASes[p].Role.String()
				}
				t.Fatalf("path violates valley-freeness: %v", names)
			}
		}
	}
}

func TestComputeTreeCustomerPreference(t *testing.T) {
	// Hand-built diamond: stub S has provider T (transit) and peer route
	// options; the customer route must win even when longer.
	//
	//       P1 --- P2      (tier-1 peers)
	//       |       |
	//       T1     T2
	//        \     /
	//         \   /
	//    D --- T1 (D is T1's customer), S is T2's customer.
	// S -> D must descend via T2's... actually verify against an
	// exhaustively-checked small generated graph instead: for every chosen
	// route, no strictly-preferred alternative may exist among neighbors.
	g := graph(t, 3, 120)
	dst := int32(5)
	tree := ComputeTree(g, dst, noDown, zeroSalt)

	// Recompute phases for verification.
	phase := make([]uint8, len(g.ASes))
	dist := make([]int32, len(g.ASes))
	for u := range g.ASes {
		path, ok := tree.Path(int32(u), dst)
		if !ok {
			t.Fatalf("unreachable %d", u)
		}
		dist[u] = int32(len(path) - 1)
		if int32(u) == dst {
			phase[u] = phaseCustomer
			continue
		}
		rel, _ := relBetween(g, int32(u), tree[u])
		switch rel {
		case topology.RelCustomer:
			phase[u] = phaseCustomer
		case topology.RelPeer:
			phase[u] = phasePeer
		case topology.RelProvider:
			phase[u] = phaseProvider
		}
	}
	for u := range g.ASes {
		if int32(u) == dst {
			continue
		}
		for _, nb := range g.Neighbors[u] {
			// If a neighbor offers a strictly more preferred route class
			// than the one chosen, the decision process was violated.
			// A customer-learned route is exportable to anyone; u hears it
			// if nb would export (nb has customer route toward dst).
			if phase[nb.Idx] != phaseCustomer || tree[nb.Idx] == int32(u) {
				continue // nb offers nothing, or would loop through u
			}
			var offered uint8
			switch nb.Rel {
			case topology.RelCustomer:
				offered = phaseCustomer
			case topology.RelPeer:
				offered = phasePeer
			case topology.RelProvider:
				offered = phaseProvider
			}
			if offered < phase[u] {
				t.Fatalf("AS %v chose %d-class route but neighbor %v offered class %d",
					g.ASes[u].ASN, phase[u], g.ASes[nb.Idx].ASN, offered)
			}
			if offered == phase[u] && dist[nb.Idx]+1 < dist[u] {
				t.Fatalf("AS %v chose dist %d but neighbor %v offered %d (same class)",
					g.ASes[u].ASN, dist[u], g.ASes[nb.Idx].ASN, dist[nb.Idx]+1)
			}
		}
	}
}

func TestComputeTreeLinkFailureReroutes(t *testing.T) {
	g := graph(t, 4, 200)
	dst := int32(10)
	base := ComputeTree(g, dst, noDown, zeroSalt)

	// Fail the link used by some src's first hop; the route must change or
	// become unreachable, and no path may cross the failed link.
	src := int32(100)
	var failed int32 = -1
	for _, nb := range g.Neighbors[src] {
		if nb.Idx == base[src] {
			failed = nb.Link
			break
		}
	}
	if failed < 0 {
		t.Fatal("could not locate first-hop link")
	}
	down := func(l int32) bool { return l == failed }
	rerouted := ComputeTree(g, dst, down, zeroSalt)
	if rerouted[src] == base[src] {
		t.Fatal("route unchanged after first-hop link failure")
	}
	for u := range rerouted {
		if rerouted[u] == Unreachable || int32(u) == dst {
			continue
		}
		for _, nb := range g.Neighbors[u] {
			if nb.Idx == rerouted[u] && nb.Link == failed {
				t.Fatalf("tree uses failed link at AS %v", g.ASes[u].ASN)
			}
		}
	}
}

func TestSaltChangesTiebreakOnly(t *testing.T) {
	g := graph(t, 5, 300)
	dst := int32(3)
	a := ComputeTree(g, dst, noDown, zeroSalt)
	b := ComputeTree(g, dst, noDown, func(as int32) uint64 { return 0xdeadbeef })
	// Both must be valid and fully reachable; some next hops should differ
	// (multi-homed ASes with ties), but path lengths per class must match.
	diff := 0
	for u := range a {
		pa, oka := a.Path(int32(u), dst)
		pb, okb := b.Path(int32(u), dst)
		if !oka || !okb {
			t.Fatalf("unreachable under some salt at %d", u)
		}
		if a[u] != b[u] {
			diff++
		}
		if len(pa) != len(pb) {
			// Same preference class may admit equal-length ties only.
			// Lengths can legitimately differ only if the class differs,
			// which zero-vs-nonzero salt cannot cause. Flag it.
			relA, _ := relBetween(g, int32(u), a[u])
			relB, _ := relBetween(g, int32(u), b[u])
			if relA == relB {
				t.Fatalf("salt changed path length %d->%d for AS %v (rel %v)",
					len(pa), len(pb), g.ASes[u].ASN, relA)
			}
		}
	}
	if diff == 0 {
		t.Error("salt change produced identical trees; tie-break inert")
	}
}

func TestTimelineEpochs(t *testing.T) {
	g := graph(t, 6, 150)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 2, 0)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 1, Start: start, End: end})
	if err != nil {
		t.Fatalf("GenTimeline: %v", err)
	}
	if tl.NumEpochs() < 10 {
		t.Fatalf("only %d epochs in two months; churn generator inert", tl.NumEpochs())
	}
	if got := tl.EpochAt(start.Add(-time.Hour)); got != 0 {
		t.Errorf("EpochAt before start = %d", got)
	}
	// Epochs are time-ordered and EpochAt inverts EpochStart.
	for ep := int32(0); ep < int32(tl.NumEpochs()); ep++ {
		if got := tl.EpochAt(tl.EpochStart(ep)); got != ep {
			t.Fatalf("EpochAt(EpochStart(%d)) = %d", ep, got)
		}
	}
}

func TestTimelineDownLinksConsistent(t *testing.T) {
	g := graph(t, 7, 150)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 2, Start: start, End: start.AddDate(0, 3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for ep := int32(0); ep < int32(tl.NumEpochs()); ep++ {
		down := tl.DownLinks(ep)
		for i := 1; i < len(down); i++ {
			if down[i-1] >= down[i] {
				t.Fatalf("epoch %d down links unsorted", ep)
			}
		}
		for _, l := range down {
			sawDown = true
			if !tl.LinkDownAt(l, ep) {
				t.Fatalf("LinkDownAt disagrees with DownLinks at epoch %d", ep)
			}
		}
		if len(down) > 0 && tl.LinkDownAt(down[len(down)-1]+1_000_000, ep) {
			t.Fatal("LinkDownAt true for absent link")
		}
	}
	if !sawDown {
		t.Error("no epoch had any down link in three months")
	}
}

func TestTimelineSalts(t *testing.T) {
	g := graph(t, 8, 150)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 3, Start: start, End: start.AddDate(1, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	// Different ASes get different base salts.
	if tl.SaltAt(1, 0) == tl.SaltAt(2, 0) {
		t.Error("two ASes share a base salt")
	}
	// Some AS must have experienced a shift across the year.
	shifted := false
	last := int32(tl.NumEpochs() - 1)
	for as := int32(0); as < int32(len(g.ASes)); as++ {
		if tl.SaltAt(as, 0) != tl.SaltAt(as, last) {
			shifted = true
			break
		}
	}
	if !shifted {
		t.Error("no policy shift over a year")
	}
}

func TestTimelineInvalidRange(t *testing.T) {
	g := graph(t, 9, 100)
	now := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	if _, err := GenTimeline(g, TimelineConfig{Start: now, End: now}); err == nil {
		t.Error("empty timeline accepted")
	}
}

func TestOraclePathsAndChurn(t *testing.T) {
	g := graph(t, 10, 250)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(1, 0, 0)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 4, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g, tl, 512)

	src := g.ASes[40].ASN
	dst := g.ASes[200].ASN
	distinct := map[string]bool{}
	ok0 := 0
	for d := 0; d < 365; d++ {
		at := start.AddDate(0, 0, d).Add(7 * time.Hour)
		path, ok := o.PathAt(src, dst, at)
		if !ok {
			continue
		}
		ok0++
		key := ""
		for _, a := range path {
			key += a.String() + ">"
		}
		distinct[key] = true
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("bad endpoints: %v", path)
		}
	}
	if ok0 < 300 {
		t.Errorf("only %d/365 days had a route; topology too fragile", ok0)
	}
	if len(distinct) < 2 {
		t.Errorf("no path churn over a year for (%v,%v)", src, dst)
	}
	q, c := o.Stats()
	if q == 0 || c == 0 || c > q {
		t.Errorf("odd oracle stats: queries=%d computes=%d", q, c)
	}
}

func TestOracleCacheReuse(t *testing.T) {
	g := graph(t, 11, 150)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 5, Start: start, End: start.AddDate(0, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g, tl, 512)
	at := start.Add(time.Hour)
	for i := 0; i < 50; i++ {
		if _, ok := o.PathIdxAt(int32(i), 99, at); !ok {
			t.Fatalf("unreachable %d->99", i)
		}
	}
	_, computes := o.Stats()
	if computes != 1 {
		t.Errorf("expected 1 tree computation for repeated epoch/dst, got %d", computes)
	}
}

func TestOracleUnknownASN(t *testing.T) {
	g := graph(t, 12, 100)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, _ := GenTimeline(g, TimelineConfig{Seed: 6, Start: start, End: start.AddDate(0, 1, 0)})
	o := NewOracle(g, tl, 16)
	if _, ok := o.PathAt(topology.ASN(987654321), g.ASes[0].ASN, start); ok {
		t.Error("path from unknown ASN succeeded")
	}
	if _, ok := o.PathAt(g.ASes[0].ASN, topology.ASN(987654321), start); ok {
		t.Error("path to unknown ASN succeeded")
	}
}

// TestOracleEviction fills an oracle whose cache holds one tree per shard
// past its capacity and checks that the cache stays bounded, that eviction
// prefers stale entries, and that evicted trees recompute correctly.
func TestOracleEviction(t *testing.T) {
	g := graph(t, 13, 150)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 8, Start: start, End: start.AddDate(0, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g, tl, 1) // clamps to one tree per shard
	if o.Cap() != oracleShards {
		t.Fatalf("Cap() = %d, want %d", o.Cap(), oracleShards)
	}
	at := start.Add(time.Hour)
	// Far more destinations than capacity: every shard must evict.
	for dst := int32(0); dst < int32(len(g.ASes)); dst++ {
		if _, ok := o.PathIdxAt(0, dst, at); !ok && dst != 0 {
			// Some dst may be unreachable from 0; the tree is still cached.
			continue
		}
	}
	if got := o.CachedTrees(); got > o.Cap() {
		t.Errorf("cache holds %d trees, capacity %d", got, o.Cap())
	}
	// Recompute an early destination: must still answer identically.
	want := ComputeTree(g, 5,
		func(l int32) bool { return tl.LinkDownAt(l, tl.EpochAt(at)) },
		func(a int32) uint64 { return tl.SaltAt(a, tl.EpochAt(at)) })
	got := o.TreeAt(5, tl.EpochAt(at))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("re-fetched tree differs at node %d", i)
		}
	}
}

// TestOracleTreeAtStress hammers TreeAt from many goroutines across a key
// space chosen to exercise all three paths of the new lock scheme — snapshot
// hits, misses with eviction pressure, and inflight coalescing (every
// goroutine starts on the same cold keys) — under -race. Every answer must
// be the shared cached tree: bit-identical across goroutines.
func TestOracleTreeAtStress(t *testing.T) {
	g := graph(t, 14, 200)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 11, Start: start, End: start.AddDate(0, 2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	// Capacity far below the working set so eviction churns concurrently
	// with hits and coalesced misses.
	o := NewOracle(g, tl, 128)
	epochs := int32(tl.NumEpochs())
	if epochs > 64 {
		epochs = 64
	}

	const workers = 16
	var wg sync.WaitGroup
	results := make([][]int32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sums := make([]int32, 0, 64*int(epochs))
			for dst := int32(0); dst < 64; dst++ {
				for ep := int32(0); ep < epochs; ep++ {
					tree := o.TreeAt(dst%int32(len(g.ASes)), ep)
					var sum int32
					for _, nh := range tree {
						sum += nh
					}
					sums = append(sums, sum)
				}
			}
			results[w] = sums
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d saw %d results, worker 0 saw %d", w, len(results[w]), len(results[0]))
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d diverged from worker 0 at query %d", w, i)
			}
		}
	}
	q, c := o.Stats()
	if q != 0 {
		t.Errorf("TreeAt must not count path queries, got %d", q)
	}
	if c == 0 {
		t.Error("no trees computed?")
	}
}

// BenchmarkOracleTreeAtHit measures the lock-free hit path: one hot key
// served over and over — the case the measurement workers hammer.
func BenchmarkOracleTreeAtHit(b *testing.B) {
	g := graph(b, 22, 500)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 7, Start: start, End: start.AddDate(0, 1, 0)})
	if err != nil {
		b.Fatal(err)
	}
	o := NewOracle(g, tl, 4096)
	o.TreeAt(100, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			o.TreeAt(100, 0)
		}
	})
}

func BenchmarkComputeTree(b *testing.B) {
	g := graph(b, 20, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeTree(g, int32(i%len(g.ASes)), noDown, zeroSalt)
	}
}

func BenchmarkOraclePathAt(b *testing.B) {
	g := graph(b, 21, 500)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 7, Start: start, End: start.AddDate(1, 0, 0)})
	if err != nil {
		b.Fatal(err)
	}
	o := NewOracle(g, tl, 4096)
	src := g.ASes[50].ASN
	dst := g.ASes[400].ASN
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.PathAt(src, dst, start.Add(time.Duration(i%8760)*time.Hour))
	}
}

// TestOracleConcurrentQueries hammers one oracle from many goroutines —
// the -race canary for the sharded measurement engine — and checks the
// answers match a fresh serial oracle, with misses coalesced so each
// (dst, epoch) tree is computed once despite the contention.
func TestOracleConcurrentQueries(t *testing.T) {
	g := graph(t, 21, 150)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 9, Start: start, End: start.AddDate(0, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	shared := NewOracle(g, tl, 512)
	serial := NewOracle(g, tl, 512)

	type query struct {
		src, dst int32
		at       time.Time
	}
	var queries []query
	for i := 0; i < 200; i++ {
		queries = append(queries, query{
			src: int32(i % 40), dst: int32(90 + i%8),
			at: start.Add(time.Duration(i) * 3 * time.Hour),
		})
	}
	want := make([][]int32, len(queries))
	for i, q := range queries {
		want[i], _ = serial.PathIdxAt(q.src, q.dst, q.at)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				got, _ := shared.PathIdxAt(q.src, q.dst, q.at)
				if len(got) != len(want[i]) {
					t.Errorf("query %d: concurrent path differs from serial", i)
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						t.Errorf("query %d: concurrent path differs at hop %d", i, j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	_, concurrentComputes := shared.Stats()
	_, serialComputes := serial.Stats()
	if concurrentComputes != serialComputes {
		t.Errorf("concurrent oracle computed %d trees, serial %d — misses not coalesced",
			concurrentComputes, serialComputes)
	}
}

func TestOracleNegativeCacheClamped(t *testing.T) {
	g := graph(t, 9, 100)
	startT := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 3, Start: startT, End: startT.AddDate(0, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, trees := range []int{-1, -4096, 0} {
		o := NewOracle(g, tl, trees)
		if o.Cap() != 4096 {
			t.Errorf("NewOracle(%d): cache capacity %d, want default 4096", trees, o.Cap())
		}
		if _, ok := o.PathIdxAt(1, 2, startT.Add(time.Hour)); !ok {
			t.Errorf("NewOracle(%d): no path between connected ASes", trees)
		}
		// A negative capacity must never shrink the cache below its content.
		if o.CachedTrees() == 0 {
			t.Errorf("NewOracle(%d): computed tree not cached", trees)
		}
	}
}

func TestTimelineRegionalOutage(t *testing.T) {
	g := graph(t, 10, 200)
	startT := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	endT := startT.AddDate(0, 2, 0)
	base := TimelineConfig{Seed: 4, Start: startT, End: endT}
	plain, err := GenTimeline(g, base)
	if err != nil {
		t.Fatal(err)
	}

	burst := base
	burst.Outages = []RegionalOutage{{
		Region: topology.RegionAsia, At: 0.5, Duration: 24 * time.Hour, Frac: 1,
	}}
	tl, err := GenTimeline(g, burst)
	if err != nil {
		t.Fatal(err)
	}

	// The burst adds events on top of unchanged background churn.
	if tl.NumEvents() <= plain.NumEvents() {
		t.Fatalf("outage timeline has %d events, baseline %d — burst inert",
			tl.NumEvents(), plain.NumEvents())
	}

	// At the burst instant every Asia-touching link is down (Frac 1).
	at := startT.Add(time.Duration(0.5 * float64(endT.Sub(startT))))
	ep := tl.EpochAt(at.Add(time.Minute))
	down := 0
	for _, link := range g.Links {
		if g.ASes[link.A].Region != topology.RegionAsia && g.ASes[link.B].Region != topology.RegionAsia {
			continue
		}
		if tl.LinkDownAt(link.ID, ep) {
			down++
		}
	}
	if down == 0 {
		t.Fatal("no regional link down during the scheduled burst")
	}

	// Same config, same burst schedule: bit-identical.
	again, err := GenTimeline(g, burst)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumEvents() != tl.NumEvents() || again.NumEpochs() != tl.NumEpochs() {
		t.Errorf("outage timeline nondeterministic: %d/%d events, %d/%d epochs",
			tl.NumEvents(), again.NumEvents(), tl.NumEpochs(), again.NumEpochs())
	}
}

func TestTimelineOutageValidation(t *testing.T) {
	g := graph(t, 11, 60)
	startT := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	base := TimelineConfig{Seed: 5, Start: startT, End: startT.AddDate(0, 1, 0)}
	bad := []RegionalOutage{
		{Region: topology.RegionAsia, At: 1.0, Duration: time.Hour, Frac: 0.5},
		{Region: topology.RegionAsia, At: -0.1, Duration: time.Hour, Frac: 0.5},
		{Region: topology.RegionAsia, At: 0.5, Duration: 0, Frac: 0.5},
		{Region: topology.RegionAsia, At: 0.5, Duration: time.Hour, Frac: 0},
		{Region: topology.RegionAsia, At: 0.5, Duration: time.Hour, Frac: 1.5},
	}
	for i, o := range bad {
		cfg := base
		cfg.Outages = []RegionalOutage{o}
		if _, err := GenTimeline(g, cfg); err == nil {
			t.Errorf("invalid outage %d (%+v) accepted", i, o)
		}
	}
}
