package routing

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"churntomo/internal/topology"
)

// EventKind discriminates churn events.
type EventKind uint8

// Churn event kinds.
const (
	// LinkDown takes an inter-AS link out of service.
	LinkDown EventKind = iota
	// LinkUp restores a failed link.
	LinkUp
	// PolicyShift re-rolls one AS's tie-break salt, modeling an intra-policy
	// routing change (local-pref tweak, IGP cost change) that moves traffic
	// without any failure.
	PolicyShift
)

// Event is one churn event.
type Event struct {
	At   time.Time
	Kind EventKind
	Link int32  // LinkDown/LinkUp
	AS   int32  // PolicyShift: AS index
	Salt uint64 // PolicyShift: new salt
}

// epoch is a maximal interval with constant routing state.
type epoch struct {
	at   time.Time
	down []int32 // sorted link IDs out of service
}

type saltChange struct {
	epoch int32
	salt  uint64
}

// Timeline is a precomputed churn schedule over [Start, End). Routing state
// is constant within an epoch; epochs change at event times.
type Timeline struct {
	Start, End time.Time

	events  []Event
	epochs  []epoch
	salts   map[int32][]saltChange // per-AS policy shifts, by epoch
	base    uint64                 // base salt mixed into every AS
	nevents int
}

// TimelineConfig parameterizes churn generation.
type TimelineConfig struct {
	Seed       uint64
	Start, End time.Time

	// FailuresPerLinkYear is the expected number of failures each link
	// suffers per year for stable links. Default 6; see FlappyFrac for
	// the unstable tail.
	FailuresPerLinkYear float64
	// MeanOutage is the mean outage duration. Default 8h. Durations are
	// exponential, clamped to [15m, 7d].
	MeanOutage time.Duration
	// PolicyShiftsPerASYear is the expected number of tie-break re-rolls
	// per AS per year. Default 15.
	PolicyShiftsPerASYear float64

	// FlappyFrac is the fraction of links that are chronically unstable
	// (damaged fiber, congested exchanges); FlappyMult scales their failure
	// rate. Heavy-tailed instability is what lets a quarter of pairs change
	// paths within a day (Figure 3) without every pair churning monthly.
	// Flappy outages are short (mean 1/4 of MeanOutage): flaps, not
	// maintenance windows. Defaults: 0.2 and 90 — a flappy link is down
	// roughly an eighth of the time, which is what makes a quarter of
	// pairs change paths within a day as the paper observes.
	FlappyFrac float64
	FlappyMult float64

	// Outages schedules correlated regional failure bursts on top of the
	// independent per-link churn (a cable cut, a blackout, a hurricane).
	// Empty means none, which leaves the generated timeline bit-identical
	// to one built without the field.
	Outages []RegionalOutage

	// Waves schedules correlated policy-shift bursts: BGP routing changes
	// that move many paths at one instant without any link failing — the
	// routing-induced-change regime where a fixed censor sees its
	// observing paths reshuffled mid-timeline. Empty means none, which
	// leaves the generated timeline bit-identical to one built without
	// the field.
	Waves []PolicyWave
}

// RegionalOutage is one correlated failure burst: at Start + At*(End-Start)
// a Frac-sized random subset of the links touching Region fails, and every
// failed link recovers together after Duration. Correlated failures are
// what distinguish a regional incident from background churn — they shift
// many paths at once, giving the tomography a very different measurement
// mix than independent flaps.
type RegionalOutage struct {
	Region   topology.Region
	At       float64       // burst position as a fraction of the span, in [0, 1)
	Duration time.Duration // how long the burst lasts; must be > 0
	Frac     float64       // fraction of the region's links taken down, in (0, 1]
}

// PolicyWave is one correlated policy-shift burst: at Start + At*(End-Start)
// a Frac-sized random subset of all ASes simultaneously re-rolls its
// tie-break salt, modeling a wave of BGP updates (a provider repricing, an
// IXP policy change, a route-leak cleanup) that redraws many paths at one
// epoch boundary. Unlike a RegionalOutage nothing fails: connectivity is
// unchanged, only path selection moves — which is exactly the regime where
// a *fixed* censor's set of observing paths churns under it.
type PolicyWave struct {
	At   float64 // burst position as a fraction of the span, in [0, 1)
	Frac float64 // fraction of ASes re-rolling their salt, in (0, 1]
}

func (c *TimelineConfig) fillDefaults() {
	if c.FailuresPerLinkYear == 0 {
		c.FailuresPerLinkYear = 6
	}
	if c.MeanOutage == 0 {
		c.MeanOutage = 8 * time.Hour
	}
	if c.PolicyShiftsPerASYear == 0 {
		c.PolicyShiftsPerASYear = 15
	}
	if c.FlappyFrac == 0 {
		c.FlappyFrac = 0.25
	}
	if c.FlappyMult == 0 {
		c.FlappyMult = 140
	}
}

// The timeline generator's RNG stream words (ASCII mnemonics). Outage
// bursts, policy waves, and the salt base each get a dedicated stream so
// the background churn stays byte-identical whether or not those
// features are scheduled; stream words are module-unique, enforced by
// churnvet.
const (
	pcgStreamChurn   = 0x636875726e     // "churn"
	pcgStreamOutages = 0x6f757461676573 // "outages"
	pcgStreamWaves   = 0x7761766573     // "waves"
	pcgStreamSalt    = 0x73616c74       // "salt"
)

// GenTimeline builds a churn timeline for g. Identical inputs produce
// identical timelines.
func GenTimeline(g *topology.Graph, cfg TimelineConfig) (*Timeline, error) {
	cfg.fillDefaults()
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("routing: timeline start %v not before end %v", cfg.Start, cfg.End)
	}
	for i, o := range cfg.Outages {
		if o.At < 0 || o.At >= 1 {
			return nil, fmt.Errorf("routing: outage %d: At %v outside [0, 1)", i, o.At)
		}
		if o.Frac <= 0 || o.Frac > 1 {
			return nil, fmt.Errorf("routing: outage %d: Frac %v outside (0, 1]", i, o.Frac)
		}
		if o.Duration <= 0 {
			return nil, fmt.Errorf("routing: outage %d: Duration %v must be > 0", i, o.Duration)
		}
	}
	for i, w := range cfg.Waves {
		if w.At < 0 || w.At >= 1 {
			return nil, fmt.Errorf("routing: wave %d: At %v outside [0, 1)", i, w.At)
		}
		if w.Frac <= 0 || w.Frac > 1 {
			return nil, fmt.Errorf("routing: wave %d: Frac %v outside (0, 1]", i, w.Frac)
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, pcgStreamChurn))
	span := cfg.End.Sub(cfg.Start)
	years := span.Hours() / (365 * 24)

	var events []Event

	// Link failures: Poisson arrivals per link, exponential outages.
	// A small set of flappy links carries most of the instability.
	for _, link := range g.Links {
		rate := cfg.FailuresPerLinkYear
		meanOutage := cfg.MeanOutage
		if rng.Float64() < cfg.FlappyFrac {
			rate *= cfg.FlappyMult
			meanOutage /= 4
		}
		n := poisson(rng, rate*years)
		for i := 0; i < n; i++ {
			at := cfg.Start.Add(time.Duration(rng.Float64() * float64(span)))
			dur := time.Duration(rng.ExpFloat64() * float64(meanOutage))
			if dur < 15*time.Minute {
				dur = 15 * time.Minute
			}
			if dur > 7*24*time.Hour {
				dur = 7 * 24 * time.Hour
			}
			events = append(events, Event{At: at, Kind: LinkDown, Link: link.ID})
			upAt := at.Add(dur)
			if upAt.Before(cfg.End) {
				events = append(events, Event{At: upAt, Kind: LinkUp, Link: link.ID})
			}
		}
	}

	// Policy shifts.
	for i := range g.ASes {
		n := poisson(rng, cfg.PolicyShiftsPerASYear*years)
		for k := 0; k < n; k++ {
			at := cfg.Start.Add(time.Duration(rng.Float64() * float64(span)))
			events = append(events, Event{At: at, Kind: PolicyShift, AS: int32(i), Salt: rng.Uint64()})
		}
	}

	// Regional outage bursts. A dedicated RNG keeps the background churn
	// above byte-identical whether or not bursts are scheduled.
	if len(cfg.Outages) > 0 {
		orng := rand.New(rand.NewPCG(cfg.Seed, pcgStreamOutages))
		for _, o := range cfg.Outages {
			at := cfg.Start.Add(time.Duration(o.At * float64(span)))
			for _, link := range g.Links {
				if g.ASes[link.A].Region != o.Region && g.ASes[link.B].Region != o.Region {
					continue
				}
				if orng.Float64() >= o.Frac {
					continue
				}
				events = append(events, Event{At: at, Kind: LinkDown, Link: link.ID})
				if upAt := at.Add(o.Duration); upAt.Before(cfg.End) {
					events = append(events, Event{At: upAt, Kind: LinkUp, Link: link.ID})
				}
			}
		}
	}

	// Policy-shift waves. Like outage bursts, a dedicated RNG keeps the
	// background churn above byte-identical whether or not waves are
	// scheduled.
	if len(cfg.Waves) > 0 {
		wrng := rand.New(rand.NewPCG(cfg.Seed, pcgStreamWaves))
		for _, w := range cfg.Waves {
			at := cfg.Start.Add(time.Duration(w.At * float64(span)))
			for i := range g.ASes {
				if wrng.Float64() >= w.Frac {
					continue
				}
				events = append(events, Event{At: at, Kind: PolicyShift, AS: int32(i), Salt: wrng.Uint64()})
			}
		}
	}

	sort.Slice(events, func(i, j int) bool {
		if !events[i].At.Equal(events[j].At) {
			return events[i].At.Before(events[j].At)
		}
		// Deterministic order for simultaneous events.
		if events[i].Kind != events[j].Kind {
			return events[i].Kind < events[j].Kind
		}
		return events[i].Link < events[j].Link
	})

	tl := &Timeline{
		Start:   cfg.Start,
		End:     cfg.End,
		events:  events,
		salts:   make(map[int32][]saltChange),
		base:    rand.New(rand.NewPCG(cfg.Seed, pcgStreamSalt)).Uint64(),
		nevents: len(events),
	}
	tl.buildEpochs(g)
	return tl, nil
}

// buildEpochs sweeps the event list into constant-state intervals.
func (tl *Timeline) buildEpochs(g *topology.Graph) {
	active := map[int32]int{} // link -> concurrent failure count
	tl.epochs = append(tl.epochs, epoch{at: tl.Start})
	for _, ev := range tl.events {
		switch ev.Kind {
		case LinkDown:
			active[ev.Link]++
		case LinkUp:
			if active[ev.Link] > 0 {
				active[ev.Link]--
				if active[ev.Link] == 0 {
					delete(active, ev.Link)
				}
			}
		case PolicyShift:
			epochID := int32(len(tl.epochs)) // the epoch about to be created
			if ev.At.Equal(tl.epochs[len(tl.epochs)-1].at) {
				// A shift sharing its instant with an earlier event (a
				// correlated wave, or a shift landing exactly on tl.Start)
				// merges into that epoch instead of opening a new one; its
				// salt must take effect there, not one boundary later.
				epochID = int32(len(tl.epochs) - 1)
			}
			tl.salts[ev.AS] = append(tl.salts[ev.AS], saltChange{epoch: epochID, salt: ev.Salt})
			// Fall through to creating an epoch boundary below.
		}
		down := make([]int32, 0, len(active))
		for l := range active {
			down = append(down, l)
		}
		sort.Slice(down, func(i, j int) bool { return down[i] < down[j] })
		last := &tl.epochs[len(tl.epochs)-1]
		if ev.At.Equal(last.at) {
			last.down = down
		} else {
			tl.epochs = append(tl.epochs, epoch{at: ev.At, down: down})
		}
	}
}

// NumEpochs returns the number of constant-routing-state intervals.
func (tl *Timeline) NumEpochs() int { return len(tl.epochs) }

// NumEvents returns the number of generated churn events.
func (tl *Timeline) NumEvents() int { return tl.nevents }

// EpochAt returns the epoch index covering t (clamped to the timeline).
func (tl *Timeline) EpochAt(t time.Time) int32 {
	i := sort.Search(len(tl.epochs), func(i int) bool { return tl.epochs[i].at.After(t) })
	if i == 0 {
		return 0
	}
	return int32(i - 1)
}

// EpochStart returns the start time of epoch ep.
func (tl *Timeline) EpochStart(ep int32) time.Time { return tl.epochs[ep].at }

// DownLinks returns the sorted link IDs out of service during epoch ep. The
// returned slice must not be modified.
func (tl *Timeline) DownLinks(ep int32) []int32 { return tl.epochs[ep].down }

// LinkDownAt reports whether link is down during epoch ep.
func (tl *Timeline) LinkDownAt(link, ep int32) bool {
	down := tl.epochs[ep].down
	i := sort.Search(len(down), func(i int) bool { return down[i] >= link })
	return i < len(down) && down[i] == link
}

// EpochSalts fills salt[i] with SaltAt(i, ep) for every AS index i in one
// pass: the base salts are a pure function of the index, and only ASes
// with policy-shift history need the binary search. This is the bulk form
// the oracle's per-epoch snapshots are built from.
func (tl *Timeline) EpochSalts(ep int32, salt []uint64) {
	for i := range salt {
		salt[i] = tl.base ^ splitmix(uint64(uint32(i)))
	}
	for as, changes := range tl.salts {
		if int(as) >= len(salt) {
			continue
		}
		i := sort.Search(len(changes), func(i int) bool { return changes[i].epoch > ep })
		if i > 0 {
			salt[as] ^= changes[i-1].salt
		}
	}
}

// SaltAt returns the policy salt of AS index as during epoch ep.
func (tl *Timeline) SaltAt(as, ep int32) uint64 {
	salt := tl.base ^ splitmix(uint64(uint32(as)))
	changes := tl.salts[as]
	// Last change at or before ep wins.
	i := sort.Search(len(changes), func(i int) bool { return changes[i].epoch > ep })
	if i > 0 {
		salt ^= changes[i-1].salt
	}
	return salt
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// poisson draws a Poisson variate; for large lambda it falls back to a
// normal approximation, which is fine for churn scheduling.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
