// Package routing computes AS-level paths over a topology under the
// Gao–Rexford policy model and evolves them through a churn timeline of
// link failures, repairs and routing-policy shifts.
//
// Paper correspondence: §2.2/§3's enabler. Churn is the paper's central
// insight — because paths between a vantage point and a destination change
// over time, one (source, destination) pair contributes many distinct
// boolean clauses, substituting for the strategically-placed monitors
// classical boolean tomography assumes. This package is where that churn
// comes from.
//
// Entry points: GenTimeline builds the churn event Timeline; NewOracle
// wraps a Graph and Timeline into the query interface the simulators use
// (PathIdxAt, PathAt, ToASNs); ComputeTree computes a single Gao–Rexford
// routing tree when callers need one directly, and ValleyFree checks the
// policy invariant on any path.
//
// Invariants: trees are pure functions of (graph, timeline, destination,
// epoch), so the Oracle can cache and share them freely. The Oracle is safe
// for concurrent use — the measurement engine's day shards all query one
// instance; only LRU bookkeeping is mutex-guarded, never tree computation,
// and concurrent misses on the same (destination, epoch) coalesce onto a
// single computation (the PR 1 singleflight).
package routing
