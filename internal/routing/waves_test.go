package routing

// Tests for PolicyWave bursts and the plane-aware oracle — the two
// routing-layer features behind the routing-shift and ecmp-multipath
// presets.

import (
	"testing"
	"time"

	"churntomo/internal/topology"
)

// topologyGenerateDense builds a densely peered graph: dense peering
// maximizes route ties, which is what gives higher planes room to
// diverge.
func topologyGenerateDense(seed uint64, ases int) (*topology.Graph, error) {
	return topology.Generate(topology.GenConfig{Seed: seed, ASes: ases, PeerProb: 0.5})
}

func TestPolicyWaveValidation(t *testing.T) {
	g := graph(t, 21, 120)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 1, 0)
	bad := []PolicyWave{
		{At: -0.1, Frac: 0.5},
		{At: 1.0, Frac: 0.5}, // At must be < 1
		{At: 0.5, Frac: 0},   // Frac must be > 0
		{At: 0.5, Frac: 1.1},
	}
	for _, w := range bad {
		_, err := GenTimeline(g, TimelineConfig{Seed: 1, Start: start, End: end, Waves: []PolicyWave{w}})
		if err == nil {
			t.Errorf("wave %+v accepted, want validation error", w)
		}
	}
	if _, err := GenTimeline(g, TimelineConfig{Seed: 1, Start: start, End: end,
		Waves: []PolicyWave{{At: 0, Frac: 1}}}); err != nil {
		t.Errorf("boundary wave {0, 1} rejected: %v", err)
	}
}

// TestPolicyWaveBackgroundUnchanged pins the dedicated-RNG-stream rule:
// adding waves must not perturb the background churn, so before the
// first wave fires every path is identical to the wave-free timeline.
func TestPolicyWaveBackgroundUnchanged(t *testing.T) {
	g := graph(t, 22, 150)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 1, 0)
	plain, err := GenTimeline(g, TimelineConfig{Seed: 3, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	waved, err := GenTimeline(g, TimelineConfig{Seed: 3, Start: start, End: end,
		Waves: []PolicyWave{{At: 0.5, Frac: 0.6}}})
	if err != nil {
		t.Fatal(err)
	}
	op := NewOracle(g, plain, 512)
	ow := NewOracle(g, waved, 512)
	waveAt := start.Add(time.Duration(0.5 * float64(end.Sub(start))))
	probe := func(at time.Time) (same, diff int) {
		for src := int32(0); src < 60; src += 3 {
			for dst := int32(60); dst < 90; dst += 5 {
				a, oka := op.PathIdxAt(src, dst, at)
				b, okb := ow.PathIdxAt(src, dst, at)
				if oka != okb {
					t.Fatalf("reachability differs at %v for %d->%d", at, src, dst)
				}
				if pathEq(a, b) {
					same++
				} else {
					diff++
				}
			}
		}
		return
	}
	if _, diff := probe(waveAt.Add(-time.Hour)); diff != 0 {
		t.Errorf("%d paths differ before the wave; background churn perturbed", diff)
	}
	if _, diff := probe(waveAt.Add(time.Hour)); diff == 0 {
		t.Error("no path changed after a 60%% wave; wave inert")
	}
}

// TestPolicyWaveSaltsChangeAtWaveEpoch pins the simultaneous-shift fix:
// a wave drops many PolicyShift events at one instant, and their salts
// must take effect in the epoch starting at the wave time — not one
// boundary later.
func TestPolicyWaveSaltsChangeAtWaveEpoch(t *testing.T) {
	g := graph(t, 23, 120)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 1, 0)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 4, Start: start, End: end,
		Waves: []PolicyWave{{At: 0.5, Frac: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	waveAt := start.Add(time.Duration(0.5 * float64(end.Sub(start))))
	ep := tl.EpochAt(waveAt)
	if !tl.EpochStart(ep).Equal(waveAt) {
		t.Fatalf("no epoch starts at the wave instant; EpochStart(%d) = %v, wave at %v",
			ep, tl.EpochStart(ep), waveAt)
	}
	before := make([]uint64, len(g.ASes))
	at := make([]uint64, len(g.ASes))
	tl.EpochSalts(ep-1, before)
	tl.EpochSalts(ep, at)
	changed := 0
	for i := range before {
		if before[i] != at[i] {
			changed++
		}
	}
	// Frac 0.5 re-rolls ~half the ASes; background shifts cannot account
	// for more than a handful in one epoch step.
	if changed < len(g.ASes)/4 {
		t.Fatalf("only %d/%d salts changed at the wave epoch; wave salts deferred to a later epoch",
			changed, len(g.ASes))
	}
}

func pathEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOraclePlaneZeroCanonical pins that the plane-aware API is a
// byte-identical no-op on plane 0: TreeAtPlane(…, 0) and
// PathIdxAtPlane(…, 0) agree with the plane-unaware entry points.
func TestOraclePlaneZeroCanonical(t *testing.T) {
	g := graph(t, 24, 150)
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 5, Start: start, End: start.AddDate(0, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g, tl, 512)
	at := start.Add(72 * time.Hour)
	for src := int32(0); src < 40; src += 3 {
		for dst := int32(40); dst < 70; dst += 7 {
			a, oka := o.PathIdxAt(src, dst, at)
			b, okb := o.PathIdxAtPlane(src, dst, at, 0)
			if oka != okb || !pathEq(a, b) {
				t.Fatalf("plane 0 differs from canonical for %d->%d", src, dst)
			}
		}
	}
}

// TestOraclePlanesDivergeAndStayValid: higher planes must produce some
// different paths (the whole point) while staying valley-free and fully
// reachable — they are alternative valid Gao–Rexford trees, not noise.
func TestOraclePlanesDivergeAndStayValid(t *testing.T) {
	g, err := topologyGenerateDense(25, 200)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	tl, err := GenTimeline(g, TimelineConfig{Seed: 6, Start: start, End: start.AddDate(0, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g, tl, 512)
	at := start.Add(24 * time.Hour)
	diff := 0
	for src := int32(0); src < 60; src += 2 {
		for dst := int32(60); dst < 100; dst += 4 {
			base, ok0 := o.PathIdxAtPlane(src, dst, at, 0)
			for plane := int32(1); plane <= 2; plane++ {
				p, ok := o.PathIdxAtPlane(src, dst, at, plane)
				if ok != ok0 {
					t.Fatalf("plane %d changes reachability for %d->%d", plane, src, dst)
				}
				if !ok {
					continue
				}
				if !ValleyFree(g, p) {
					t.Fatalf("plane %d path %v violates valley-freeness", plane, p)
				}
				if !pathEq(base, p) {
					diff++
				}
				// Planes are deterministic: querying again is identical.
				again, _ := o.PathIdxAtPlane(src, dst, at, plane)
				if !pathEq(p, again) {
					t.Fatalf("plane %d path not deterministic for %d->%d", plane, src, dst)
				}
			}
		}
	}
	if diff == 0 {
		t.Error("no path differed across planes over a densely peered graph; planes inert")
	}
}
