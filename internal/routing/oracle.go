package routing

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"churntomo/internal/topology"
)

// Oracle answers "what was the AS path from src to dst at time t?" by
// computing Gao–Rexford trees for (destination, epoch) pairs on demand and
// caching them. It is the simulator's data plane: traceroutes, DNS queries
// and HTTP connections all route through it.
//
// Oracle is safe for concurrent use: the measurement engine shards days
// across workers that all query one oracle. Only the LRU bookkeeping is
// serialized, never tree computation itself; concurrent misses on the same
// (destination, epoch) coalesce onto a single computation, so adjacent-day
// shards querying the same epoch don't duplicate the dominant cost.
type Oracle struct {
	G  *topology.Graph
	TL *Timeline

	mu       sync.Mutex
	cache    *lruCache
	inflight map[treeKey]*treeCall
	computes atomic.Int64 // trees actually computed (cache misses)
	queries  atomic.Int64
}

// treeCall is one in-flight tree computation other workers can wait on.
type treeCall struct {
	done chan struct{}
	tree Tree
}

// NewOracle creates an oracle with room for cacheTrees cached routing
// trees; zero or negative values select a default sized for year-long
// scenario replays (a negative capacity would make the LRU evict on every
// put, so it is clamped rather than honored).
func NewOracle(g *topology.Graph, tl *Timeline, cacheTrees int) *Oracle {
	if cacheTrees <= 0 {
		cacheTrees = 4096
	}
	return &Oracle{G: g, TL: tl, cache: newLRU(cacheTrees), inflight: map[treeKey]*treeCall{}}
}

type treeKey struct {
	dst   int32
	epoch int32
}

// TreeAt returns the routing tree toward dst (AS index) during epoch ep.
// The returned tree is shared; callers must not modify it.
func (o *Oracle) TreeAt(dst, ep int32) Tree {
	key := treeKey{dst, ep}
	o.mu.Lock()
	if t, ok := o.cache.get(key); ok {
		o.mu.Unlock()
		return t
	}
	if c, ok := o.inflight[key]; ok {
		o.mu.Unlock()
		<-c.done
		return c.tree
	}
	c := &treeCall{done: make(chan struct{})}
	o.inflight[key] = c
	o.mu.Unlock()

	c.tree = ComputeTree(o.G, dst,
		func(link int32) bool { return o.TL.LinkDownAt(link, ep) },
		func(as int32) uint64 { return o.TL.SaltAt(as, ep) })

	o.mu.Lock()
	o.cache.put(key, c.tree)
	delete(o.inflight, key)
	o.mu.Unlock()
	close(c.done)
	o.computes.Add(1)
	return c.tree
}

// PathIdxAt returns the AS-index path from src to dst at time t.
func (o *Oracle) PathIdxAt(src, dst int32, t time.Time) ([]int32, bool) {
	o.queries.Add(1)
	ep := o.TL.EpochAt(t)
	return o.TreeAt(dst, ep).Path(src, dst)
}

// PathAt returns the ASN path from src to dst at time t.
func (o *Oracle) PathAt(src, dst topology.ASN, t time.Time) ([]topology.ASN, bool) {
	si, ok := o.G.Index(src)
	if !ok {
		return nil, false
	}
	di, ok := o.G.Index(dst)
	if !ok {
		return nil, false
	}
	idxPath, ok := o.PathIdxAt(si, di, t)
	if !ok {
		return nil, false
	}
	return o.ToASNs(idxPath), true
}

// ToASNs converts an AS-index path to ASNs.
func (o *Oracle) ToASNs(idxPath []int32) []topology.ASN {
	out := make([]topology.ASN, len(idxPath))
	for i, idx := range idxPath {
		out[i] = o.G.ASes[idx].ASN
	}
	return out
}

// Stats reports cache behaviour: total path queries and trees computed.
func (o *Oracle) Stats() (queries, treeComputes int) {
	return int(o.queries.Load()), int(o.computes.Load())
}

// lruCache is a minimal LRU for routing trees.
type lruCache struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[treeKey]*list.Element
}

type lruEntry struct {
	key  treeKey
	tree Tree
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: make(map[treeKey]*list.Element)}
}

func (c *lruCache) get(k treeKey) (Tree, bool) {
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).tree, true
}

func (c *lruCache) put(k treeKey, t Tree) {
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry).tree = t
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&lruEntry{k, t})
	c.items[k] = el
	if c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
