package routing

import (
	"maps"
	"sync"
	"sync/atomic"
	"time"

	"churntomo/internal/topology"
)

// Oracle answers "what was the AS path from src to dst at time t?" by
// computing Gao–Rexford trees for (destination, epoch) pairs on demand and
// caching them. It is the simulator's data plane: traceroutes, DNS queries
// and HTTP connections all route through it.
//
// Oracle is safe for concurrent use and built so that the measurement
// engine's workers never serialize on cache hits: the tree cache is split
// into shards, and each shard publishes an immutable snapshot map through
// an atomic pointer. A hit is one atomic load plus one map lookup plus one
// atomic store (the recency ticket) — no locks anywhere on the path. Only
// misses take the shard mutex, and concurrent misses on the same
// (destination, epoch) coalesce onto a single computation, so adjacent-day
// shards querying the same epoch don't duplicate the dominant cost.
//
// Tree computation itself reads a per-epoch snapshot of the timeline (link
// down set and policy salts flattened into arrays) instead of binary
// searching the event history per link — see epochState.
//
// Nothing here affects output: trees are pure functions of (destination,
// epoch), so cache policy, shard layout and eviction order are invisible.
// The parallel == serial bit-identical invariant holds by construction.
type Oracle struct {
	G  *topology.Graph
	TL *Timeline

	capPerShard int
	shards      [oracleShards]treeShard
	epochs      []atomic.Pointer[epochState]

	ticket   atomic.Int64 // recency clock for approximate LRU
	computes atomic.Int64 // trees actually computed (cache misses)
	queries  atomic.Int64
}

// oracleShards is the tree-cache shard count. Power of two; 64 keeps
// worst-case eviction scans and snapshot copies at cap/64 entries while
// spreading unrelated keys across independent locks.
const oracleShards = 64

// treeShard is one cache shard. Readers go through snap only; items is the
// authoritative map guarded by mu, republished into snap after every
// insert or eviction.
type treeShard struct {
	snap     atomic.Pointer[map[treeKey]*treeEntry]
	mu       sync.Mutex
	items    map[treeKey]*treeEntry
	inflight map[treeKey]*treeCall
}

// treeEntry is one cached tree with its recency ticket.
type treeEntry struct {
	tree  Tree
	touch atomic.Int64
}

// treeCall is one in-flight tree computation other workers can wait on.
type treeCall struct {
	done chan struct{}
	tree Tree
}

// epochState is the timeline's routing state during one epoch, flattened
// for O(1) reads: down is indexed by link ID, salt by AS index. States are
// immutable once published and built at most once per epoch (a benign
// build race loses to CompareAndSwap; both results are identical).
type epochState struct {
	down []bool
	salt []uint64
}

// NewOracle creates an oracle with room for cacheTrees cached routing
// trees; zero or negative values select a default sized for year-long
// scenario replays (a negative capacity would make the cache evict on
// every put, so it is clamped rather than honored).
func NewOracle(g *topology.Graph, tl *Timeline, cacheTrees int) *Oracle {
	if cacheTrees <= 0 {
		cacheTrees = 4096
	}
	per := cacheTrees / oracleShards
	if per < 1 {
		per = 1
	}
	o := &Oracle{G: g, TL: tl, capPerShard: per, epochs: make([]atomic.Pointer[epochState], tl.NumEpochs())}
	for i := range o.shards {
		o.shards[i].items = map[treeKey]*treeEntry{}
		o.shards[i].inflight = map[treeKey]*treeCall{}
	}
	return o
}

type treeKey struct {
	dst   int32
	epoch int32
	plane int32
}

// shardOf spreads keys across shards with a splitmix-style mix so adjacent
// epochs and destinations land on different locks.
func shardOf(k treeKey) int {
	x := uint64(uint32(k.dst))<<32 | uint64(uint32(k.epoch))
	x ^= uint64(uint32(k.plane)) << 16
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x & (oracleShards - 1))
}

// planeSalt is the per-plane tie-break perturbation mixed into every AS's
// policy salt: plane 0 is zero (the canonical trees, byte-identical to a
// plane-unaware oracle), and each higher plane deterministically re-rolls
// the tie-breaks, yielding another equally-valid Gao–Rexford tree — the
// model of an ECMP/load-balanced forwarding plane where equally-preferred
// routes are hashed per flow.
func planeSalt(plane int32) uint64 {
	if plane == 0 {
		return 0
	}
	return splitmix(0x65636d70 ^ uint64(uint32(plane))) // "ecmp"
}

// TreeAt returns the routing tree toward dst (AS index) during epoch ep on
// the canonical forwarding plane. The returned tree is shared; callers
// must not modify it.
func (o *Oracle) TreeAt(dst, ep int32) Tree {
	return o.TreeAtPlane(dst, ep, 0)
}

// TreeAtPlane returns the routing tree toward dst during epoch ep on one
// forwarding plane. Plane 0 is canonical; higher planes perturb only the
// route tie-breaks (preference and policy stay Gao–Rexford-valid), so a
// multipath deployment is modeled as a small set of coexisting planes a
// flow hashes onto. The returned tree is shared; callers must not modify
// it.
func (o *Oracle) TreeAtPlane(dst, ep, plane int32) Tree {
	key := treeKey{dst, ep, plane}
	sh := &o.shards[shardOf(key)]
	if m := sh.snap.Load(); m != nil {
		if e := (*m)[key]; e != nil {
			e.touch.Store(o.ticket.Add(1))
			return e.tree
		}
	}
	return o.treeMiss(sh, key)
}

// treeMiss is the slow path: re-check the authoritative map (it may be
// ahead of the published snapshot), join an in-flight computation, or
// compute the tree and publish it.
func (o *Oracle) treeMiss(sh *treeShard, key treeKey) Tree {
	sh.mu.Lock()
	if e := sh.items[key]; e != nil {
		e.touch.Store(o.ticket.Add(1))
		sh.mu.Unlock()
		return e.tree
	}
	if c, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		<-c.done
		return c.tree
	}
	c := &treeCall{done: make(chan struct{})}
	sh.inflight[key] = c
	sh.mu.Unlock()

	st := o.epochState(key.epoch)
	psalt := planeSalt(key.plane)
	c.tree = ComputeTree(o.G, key.dst,
		func(link int32) bool { return st.down[link] },
		func(as int32) uint64 { return st.salt[as] ^ psalt })

	e := &treeEntry{tree: c.tree}
	e.touch.Store(o.ticket.Add(1))
	sh.mu.Lock()
	sh.items[key] = e
	if len(sh.items) > o.capPerShard {
		sh.evictOldest()
	}
	snap := maps.Clone(sh.items)
	sh.snap.Store(&snap)
	delete(sh.inflight, key)
	sh.mu.Unlock()
	close(c.done)
	o.computes.Add(1)
	return c.tree
}

// evictOldest drops the entry with the smallest recency ticket. Scanning
// is O(shard size) — at most cap/oracleShards entries — and only runs on
// misses, which are dominated by the tree computation itself. Approximate
// LRU: a hit that lands between the scan start and the delete can lose,
// which only costs a recompute, never correctness.
func (sh *treeShard) evictOldest() {
	var victim treeKey
	oldest := int64(1<<63 - 1)
	for k, e := range sh.items {
		if t := e.touch.Load(); t < oldest {
			oldest, victim = t, k
		}
	}
	delete(sh.items, victim)
}

// epochState returns the flattened timeline state for ep, building and
// caching it on first use. Duplicate concurrent builds are possible and
// harmless: the states are identical and CompareAndSwap keeps one.
func (o *Oracle) epochState(ep int32) *epochState {
	if p := o.epochs[ep].Load(); p != nil {
		return p
	}
	st := &epochState{down: make([]bool, len(o.G.Links)), salt: make([]uint64, len(o.G.ASes))}
	for _, l := range o.TL.DownLinks(ep) {
		if int(l) < len(st.down) {
			st.down[l] = true
		}
	}
	o.TL.EpochSalts(ep, st.salt)
	if o.epochs[ep].CompareAndSwap(nil, st) {
		return st
	}
	return o.epochs[ep].Load()
}

// PathIdxAt returns the AS-index path from src to dst at time t on the
// canonical forwarding plane.
func (o *Oracle) PathIdxAt(src, dst int32, t time.Time) ([]int32, bool) {
	return o.PathIdxAtPlane(src, dst, t, 0)
}

// PathIdxAtPlane returns the AS-index path from src to dst at time t on
// one forwarding plane (see TreeAtPlane). Plane 0 is the canonical path.
func (o *Oracle) PathIdxAtPlane(src, dst int32, t time.Time, plane int32) ([]int32, bool) {
	o.queries.Add(1)
	ep := o.TL.EpochAt(t)
	return o.TreeAtPlane(dst, ep, plane).Path(src, dst)
}

// PathAt returns the ASN path from src to dst at time t.
func (o *Oracle) PathAt(src, dst topology.ASN, t time.Time) ([]topology.ASN, bool) {
	si, ok := o.G.Index(src)
	if !ok {
		return nil, false
	}
	di, ok := o.G.Index(dst)
	if !ok {
		return nil, false
	}
	idxPath, ok := o.PathIdxAt(si, di, t)
	if !ok {
		return nil, false
	}
	return o.ToASNs(idxPath), true
}

// ToASNs converts an AS-index path to ASNs.
func (o *Oracle) ToASNs(idxPath []int32) []topology.ASN {
	out := make([]topology.ASN, len(idxPath))
	for i, idx := range idxPath {
		out[i] = o.G.ASes[idx].ASN
	}
	return out
}

// Stats reports cache behaviour: total path queries and trees computed.
func (o *Oracle) Stats() (queries, treeComputes int) {
	return int(o.queries.Load()), int(o.computes.Load())
}

// Cap returns the tree cache's total capacity across shards.
func (o *Oracle) Cap() int { return o.capPerShard * oracleShards }

// CachedTrees returns the number of trees currently cached.
func (o *Oracle) CachedTrees() int {
	n := 0
	for i := range o.shards {
		sh := &o.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}
