package detect

import (
	"math/rand/v2"
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/blockpage"
	"churntomo/internal/dnssim"
	"churntomo/internal/httpsim"
	"churntomo/internal/netaddr"
	"churntomo/internal/netsim"
)

var (
	t0     = time.Date(2016, 5, 1, 12, 0, 0, 0, time.UTC)
	client = netaddr.MustParseIP("20.0.0.10")
	server = netaddr.MustParseIP("21.5.0.20")
	resolv = netaddr.MustParseIP("8.8.8.8")
)

func dnsParams(id uint16) dnssim.Params {
	return dnssim.Params{
		At: t0, ClientIP: client, ResolverIP: resolv, Host: "x.example.com",
		QueryID: id, ResolverDist: 8, TrueAnswer: netaddr.MustParseIP("21.5.0.20"),
		ResolverTTL: netsim.InitTTLLinux,
	}
}

func TestDNSDualCleanLookup(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	c := dnssim.Simulate(dnsParams(7), nil, dnssim.Noise{}, rng)
	if DNSDual(&c, client) {
		t.Error("clean lookup flagged")
	}
}

func TestDNSDualInjection(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	inj := []dnssim.Injector{{ASN: 4134, Dist: 3, Answer: netaddr.MustParseIP("10.10.0.1"), InitTTL: 64}}
	c := dnssim.Simulate(dnsParams(9), inj, dnssim.Noise{}, rng)
	if !DNSDual(&c, client) {
		t.Error("injection not detected")
	}
	// Detector must behave identically without ground-truth annotations.
	s := c.Sanitized()
	if !DNSDual(&s, client) {
		t.Error("detector depends on ground-truth fields")
	}
	// The injected answer must have arrived first (the censor is closer).
	var responses []netsim.Packet
	for _, p := range c.Packets {
		if p.Dst == client {
			responses = append(responses, p)
		}
	}
	if len(responses) < 2 || !responses[0].Injected || responses[1].Injected {
		t.Errorf("race order wrong: %+v", responses)
	}
}

func TestDNSDualSlowInjectorMissed(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	inj := []dnssim.Injector{{ASN: 1, Dist: 3, Answer: 1, InitTTL: 64}}
	c := dnssim.Simulate(dnsParams(11), inj, dnssim.Noise{SlowInjectorProb: 1}, rng)
	if DNSDual(&c, client) {
		t.Error("an answer outside the 2s window should not trigger")
	}
}

func TestDNSDualOrganicDuplicateFalsePositive(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	c := dnssim.Simulate(dnsParams(13), nil, dnssim.Noise{DupResponseProb: 1}, rng)
	if !DNSDual(&c, client) {
		t.Error("organic duplicate within the window should flag (known FP mode)")
	}
}

func httpParams(body []byte) httpsim.Params {
	return httpsim.Params{
		At: t0, ClientIP: client, ServerIP: server, Host: "x.example.com",
		ServerDist: 12, ServerTTL: netsim.InitTTLLinux, Body: body,
	}
}

func body(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}

func TestHTTPCleanConnection(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 50; i++ {
		res := httpsim.Simulate(httpParams(body(3000)), nil, httpsim.Noise{}, rng)
		v := HTTP(&res.Capture, client, server)
		if v.TTL || v.SEQ || v.RST {
			t.Fatalf("clean connection flagged: %+v", v)
		}
		if string(res.Body) != string(body(3000)) {
			t.Fatal("clean body corrupted in reassembly")
		}
	}
}

func TestHTTPRSTInjection(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	detected := 0
	for i := 0; i < 100; i++ {
		inj := []httpsim.Injector{{ASN: 9, Dist: 4, Technique: anomaly.RST, InitTTL: 255, SeqSkew: true}}
		res := httpsim.Simulate(httpParams(body(2000)), inj, httpsim.Noise{}, rng)
		v := HTTP(&res.Capture, client, server)
		if v.RST {
			detected++
		}
		if v.TTL {
			t.Fatal("pure RST injection should not trip the (data-only) TTL detector")
		}
	}
	if detected < 95 {
		t.Errorf("RST injection detected only %d/100", detected)
	}
}

func TestHTTPRSTMimicMissed(t *testing.T) {
	// A censor at the same hop distance as the server, using the server's
	// initial TTL and perfect sequence numbers, is indistinguishable.
	rng := rand.New(rand.NewPCG(7, 7))
	p := httpParams(nil) // no body: ISN+1 RST looks like a connection refusal
	inj := []httpsim.Injector{{ASN: 9, Dist: p.ServerDist, Technique: anomaly.RST, InitTTL: netsim.InitTTLLinux, SeqSkew: false}}
	missed := 0
	for i := 0; i < 50; i++ {
		res := httpsim.Simulate(p, inj, httpsim.Noise{}, rng)
		if !HTTP(&res.Capture, client, server).RST {
			missed++
		}
	}
	if missed != 50 {
		t.Errorf("perfect mimic was detected %d/50 times; detector is cheating", 50-missed)
	}
}

func TestHTTPSEQInjection(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	seqMimic, ttlMimic, seqCrude, ttlCrude := 0, 0, 0, 0
	for i := 0; i < 200; i++ {
		mimic := i%2 == 0
		inj := []httpsim.Injector{{ASN: 9, Dist: 5, Technique: anomaly.SEQ, InitTTL: 64, MimicTTL: mimic}}
		res := httpsim.Simulate(httpParams(body(2500)), inj, httpsim.Noise{}, rng)
		v := HTTP(&res.Capture, client, server)
		if mimic {
			if v.SEQ {
				seqMimic++
			}
			if v.TTL {
				ttlMimic++
			}
		} else {
			if v.SEQ {
				seqCrude++
			}
			if v.TTL {
				ttlCrude++
			}
		}
	}
	if seqMimic < 95 || seqCrude < 95 {
		t.Errorf("SEQ injection detected only %d+%d of 100+100", seqMimic, seqCrude)
	}
	// TTL co-fires only for boxes that do not mimic the server's TTL.
	if ttlMimic > 2 {
		t.Errorf("TTL fired %d/100 for TTL-mimicking boxes", ttlMimic)
	}
	if ttlCrude < 95 {
		t.Errorf("TTL fired only %d/100 for crude boxes", ttlCrude)
	}
}

func TestHTTPTTLDuplicate(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 50; i++ {
		inj := []httpsim.Injector{{ASN: 9, Dist: 4, Technique: anomaly.TTL, InitTTL: 255}}
		res := httpsim.Simulate(httpParams(body(2000)), inj, httpsim.Noise{}, rng)
		v := HTTP(&res.Capture, client, server)
		if !v.TTL {
			t.Fatal("TTL duplicate not detected")
		}
		if v.SEQ {
			t.Fatal("content-identical duplicate tripped SEQ")
		}
		if string(res.Body) != string(body(2000)) {
			t.Fatal("TTL duplicate corrupted the delivered body")
		}
	}
}

func TestHTTPBlockpageInPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	db := blockpage.NewFingerprintDB(10, 1.0, 1)
	page := blockpage.Render(3, "GB")
	inj := []httpsim.Injector{{ASN: 9, Dist: 4, Technique: anomaly.Block, InitTTL: 64, InPath: true, Blockpage: page}}
	res := httpsim.Simulate(httpParams(body(4000)), inj, httpsim.Noise{}, rng)
	if string(res.Body) != string(page) {
		t.Error("client did not receive the blockpage")
	}
	if !Blockpage(res.Body, res.BaselineLen, db) {
		t.Error("blockpage not detected")
	}
	v := HTTP(&res.Capture, client, server)
	if !v.TTL {
		t.Error("in-path blockpage at different distance should trip TTL")
	}
	if v.SEQ {
		t.Error("in-path blockpage (server silenced) should not trip SEQ")
	}
}

func TestHTTPBlockpageOnPathOverlaps(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	page := blockpage.Render(4, "PL")
	inj := []httpsim.Injector{{ASN: 9, Dist: 4, Technique: anomaly.Block, InitTTL: 255, InPath: false, Blockpage: page}}
	res := httpsim.Simulate(httpParams(body(4000)), inj, httpsim.Noise{}, rng)
	v := HTTP(&res.Capture, client, server)
	if !v.SEQ {
		t.Error("on-path blockpage racing the real body should produce overlapping SEQ")
	}
	// First data to arrive wins: the client still sees the blockpage prefix.
	if string(res.Body[:20]) != string(page[:20]) {
		t.Error("blockpage did not win the sequence-space race")
	}
}

func TestBlockpageLengthHeuristicWithoutSignature(t *testing.T) {
	page := blockpage.Render(5, "IR")
	if !Blockpage(page, 9000, blockpage.Empty()) {
		t.Error("length-delta alone should flag a tiny page against a 9KB baseline")
	}
	if Blockpage(body(3000), 3100, blockpage.Empty()) {
		t.Error("ordinary body within 30%% of baseline flagged")
	}
	if Blockpage(nil, 3000, blockpage.Empty()) {
		t.Error("empty body (connection killed) should not count as a blockpage")
	}
}

func TestHTTPOrganicNoiseRates(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	noise := httpsim.DefaultNoise()
	n := 30000
	var ttl, seq, rst int
	for i := 0; i < n; i++ {
		res := httpsim.Simulate(httpParams(body(2000)), nil, noise, rng)
		v := HTTP(&res.Capture, client, server)
		if v.TTL {
			ttl++
		}
		if v.SEQ {
			seq++
		}
		if v.RST {
			rst++
		}
	}
	// RST must be the noisiest detector (the paper's Figure 1b finding),
	// and all false-positive rates must stay well under the anomaly rates.
	if rst == 0 {
		t.Error("no organic RST false positives; Figure 1b shape unreproducible")
	}
	if rst < ttl {
		t.Errorf("RST FPs (%d) should be at least TTL FPs (%d)", rst, ttl)
	}
	if frac := float64(rst) / float64(n); frac > 0.02 {
		t.Errorf("RST FP rate %.2f%% implausibly high", 100*frac)
	}
	if seq > n/100 {
		t.Errorf("SEQ FP count %d too high", seq)
	}
}

func TestHTTPSanitizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	for i := 0; i < 40; i++ {
		var inj []httpsim.Injector
		if i%2 == 0 {
			inj = []httpsim.Injector{{ASN: 9, Dist: 5, Technique: anomaly.Kind(i % 5), InitTTL: 255, SeqSkew: true, Blockpage: blockpage.Render(1, "CN")}}
		}
		res := httpsim.Simulate(httpParams(body(1500)), inj, httpsim.DefaultNoise(), rng)
		v1 := HTTP(&res.Capture, client, server)
		sanitized := res.Capture.Sanitized()
		v2 := HTTP(&sanitized, client, server)
		if v1 != v2 {
			t.Fatalf("verdict changed after sanitization: %+v vs %+v", v1, v2)
		}
	}
}

func TestHTTPNoSynack(t *testing.T) {
	var c netsim.Capture
	c.Add(netsim.Packet{Src: server, Dst: client, Proto: netsim.ProtoTCP, Flags: netsim.FlagRST, Seq: 1, TTL: 40})
	if v := HTTP(&c, client, server); v.RST || v.TTL || v.SEQ {
		t.Errorf("connection without SYNACK judged: %+v", v)
	}
}
