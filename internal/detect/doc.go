// Package detect implements ICLab's five anomaly detectors over simulated
// captures (paper §2.1). Detectors see exactly what a vantage point's pcap
// would contain: arrival times, addresses, TTLs, TCP sequence numbers,
// flags and payloads.
//
// Entry points: DNSDual flags dual DNS responses within the injection
// window; HTTP scans a capture for RST, sequence-overlap and TTL
// anomalies (HTTPVerdict carries all three); Blockpage combines
// fingerprint and page-length detection.
//
// Invariants: detectors never consult ground truth — tests verify this by
// running them on sanitized captures — so false positives and misses
// propagate into the tomography the same way they do in the real
// platform. Detection is a pure function of the capture: no RNG, no
// clock.
package detect
