package detect

import (
	"bytes"
	"sort"
	"time"

	"churntomo/internal/blockpage"
	"churntomo/internal/netaddr"
	"churntomo/internal/netsim"
)

// DNSWindow is the dual-response window: a second response for the same
// query ID within this span of the first flags DNS injection.
const DNSWindow = 2 * time.Second

// TTLTolerance is the largest |TTL - baseline| treated as routine jitter.
// Injected packets typically miss the SYNACK's TTL by much more; ±1 happens
// on ECMP path wobble.
const TTLTolerance = 1

// LengthThreshold is the Jones et al. blockpage length-delta threshold.
const LengthThreshold = 0.30

// DNSDual reports DNS injection: two or more responses sharing a query ID
// within DNSWindow (the injected answer racing the resolver's).
func DNSDual(c *netsim.Capture, client netaddr.IP) bool {
	type firstSeen struct {
		at time.Time
	}
	seen := map[uint16]firstSeen{}
	for _, p := range c.Packets {
		if p.Dst != client || p.Proto != netsim.ProtoUDP || p.SrcPort != netsim.DNSPort {
			continue
		}
		m, err := netsim.UnmarshalDNS(p.Payload)
		if err != nil || !m.Response {
			continue
		}
		if f, ok := seen[m.ID]; ok {
			if p.At.Sub(f.at) <= DNSWindow {
				return true
			}
			continue
		}
		seen[m.ID] = firstSeen{p.At}
	}
	return false
}

// HTTPVerdict carries the three packet-level HTTP anomaly flags.
type HTTPVerdict struct {
	TTL bool // server packets with TTLs inconsistent with the SYNACK
	SEQ bool // overlapping (different content) or gapped sequence ranges
	RST bool // reset with sequence/TTL attributes a real server wouldn't have
}

// HTTP analyzes one connection's capture. The baseline TTL is the SYNACK's:
// the paper's assumption is that no censor beats the server's SYNACK, so it
// anchors what "packets from the real server" look like.
func HTTP(c *netsim.Capture, client, server netaddr.IP) HTTPVerdict {
	var v HTTPVerdict

	// Locate the SYNACK.
	var baseTTL uint8
	var isn uint32
	found := false
	for _, p := range c.Packets {
		if p.Src == server && p.Dst == client && p.Proto == netsim.ProtoTCP &&
			p.Flags&(netsim.FlagSYN|netsim.FlagACK) == netsim.FlagSYN|netsim.FlagACK {
			baseTTL, isn, found = p.TTL, p.Seq, true
			break
		}
	}
	if !found {
		return v // no connection establishment; nothing to judge
	}

	type seg struct {
		seq     uint32
		payload []byte
	}
	var segs []seg
	var rsts []netsim.Packet
	totalData := 0
	for _, p := range c.Packets {
		if p.Src != server || p.Dst != client || p.Proto != netsim.ProtoTCP {
			continue
		}
		if p.Flags&netsim.FlagSYN != 0 {
			continue // the SYNACK itself
		}
		if p.Flags&netsim.FlagRST != 0 {
			rsts = append(rsts, p)
			continue
		}
		if len(p.Payload) > 0 {
			// TTL judgement is restricted to data-bearing packets: control
			// packets (RST/FIN) are judged by the RST rule below, which
			// keeps each censor technique's anomaly signature distinct.
			if ttlDelta(p.TTL, baseTTL) > TTLTolerance {
				v.TTL = true
			}
			segs = append(segs, seg{p.Seq, p.Payload})
			totalData += len(p.Payload)
		}
	}

	// Sequence-space analysis over relative offsets from ISN+1.
	// Gap: a hole in stream coverage. Overlap: two segments covering the
	// same bytes with different content (a faithful retransmission is
	// benign; an injection that guessed the sequence space rarely matches
	// the real payload).
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	base := isn + 1
	var covered uint32 // next expected relative offset when contiguous
	for _, s := range segs {
		rel := s.seq - base
		if rel > covered {
			v.SEQ = true // gap in the stream
		}
		if end := rel + uint32(len(s.payload)); end > covered {
			covered = end
		}
	}
	for i := 0; i < len(segs) && !v.SEQ; i++ {
		for j := i + 1; j < len(segs); j++ {
			if segmentsConflict(segs[i].seq, segs[i].payload, segs[j].seq, segs[j].payload) {
				v.SEQ = true
				break
			}
		}
	}

	// RST judgement: a legitimate teardown RST carries the next sequence
	// number (ISN+1 before data, stream end after) and the server's TTL.
	dataEnd := base + uint32(totalData)
	for _, r := range rsts {
		seqOK := r.Seq == dataEnd || r.Seq == base
		ttlOK := ttlDelta(r.TTL, baseTTL) <= TTLTolerance
		if !seqOK || !ttlOK {
			v.RST = true
		}
	}
	return v
}

// segmentsConflict reports whether two segments cover shared sequence
// space with different bytes.
func segmentsConflict(seqA uint32, a []byte, seqB uint32, b []byte) bool {
	lo := maxU32(seqA, seqB)
	hi := minU32(seqA+uint32(len(a)), seqB+uint32(len(b)))
	if lo >= hi {
		return false
	}
	return !bytes.Equal(a[lo-seqA:hi-seqA], b[lo-seqB:hi-seqB])
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func ttlDelta(a, b uint8) int {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	return d
}

// Blockpage reports whether an HTTP body is a censor blockpage, combining
// signature matching against the corpus with the length-delta comparison
// against the censor-free baseline fetch.
func Blockpage(body []byte, baselineLen int, db *blockpage.FingerprintDB) bool {
	if len(body) == 0 {
		return false
	}
	if db != nil && db.Match(body) {
		return true
	}
	return blockpage.LengthDelta(len(body), baselineLen, LengthThreshold)
}
