package leakage

import (
	"sort"

	"churntomo/internal/sat"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
)

// Leak describes one censoring AS's leakage.
type Leak struct {
	Censor        topology.ASN
	CensorCountry string
	// VictimASes are upstream, non-censoring ASes affected by this censor
	// (any country, including the censor's own — "leaks to other ASes").
	VictimASes map[topology.ASN]bool
	// VictimCountries are the victim ASes' countries, excluding the
	// censor's own ("leakage extending to other countries").
	VictimCountries map[string]bool
}

// Analysis is the full leakage result.
type Analysis struct {
	// ByCensor maps each identified censor with at least one victim AS.
	ByCensor map[topology.ASN]*Leak
	// Flow counts, per (censor country, victim country) pair with
	// different endpoints, the number of distinct (censor, victim-AS)
	// relationships — Figure 5's edge weights.
	Flow map[FlowEdge]int
}

// FlowEdge is one directed country-level leakage edge.
type FlowEdge struct {
	From string // censor's country
	To   string // victims' country
}

// Analyze runs §3.3 over solved outcomes. The country of an AS comes from
// the topology; ASes missing from it (bogus mapping artifacts) are skipped.
func Analyze(outcomes []tomo.Outcome, g *topology.Graph) *Analysis {
	a := &Analysis{ByCensor: map[topology.ASN]*Leak{}, Flow: map[FlowEdge]int{}}
	type flowSeen struct {
		censor topology.ASN
		victim topology.ASN
	}
	seenFlow := map[flowSeen]bool{}

	for _, o := range outcomes {
		if o.Class != sat.Unique {
			continue
		}
		censorSet := map[topology.ASN]bool{}
		for _, c := range o.Censors {
			censorSet[c] = true
		}
		if len(censorSet) == 0 {
			continue // all-False solution: nothing leaks
		}
		for _, path := range o.Inst.PositivePaths {
			for idx, as := range path {
				if !censorSet[as] {
					continue
				}
				cCountry := g.CountryOf(as)
				if cCountry == "" {
					continue
				}
				leak := a.ByCensor[as]
				if leak == nil {
					leak = &Leak{
						Censor:          as,
						CensorCountry:   cCountry,
						VictimASes:      map[topology.ASN]bool{},
						VictimCountries: map[string]bool{},
					}
					a.ByCensor[as] = leak
				}
				// Upstream of the censor: indices before it on the path
				// (closer to the vantage point).
				for up := 0; up < idx; up++ {
					victim := path[up]
					if censorSet[victim] {
						continue // condition (1): victims are False-assigned
					}
					vCountry := g.CountryOf(victim)
					if vCountry == "" {
						continue
					}
					leak.VictimASes[victim] = true
					if vCountry != cCountry {
						leak.VictimCountries[vCountry] = true
						key := flowSeen{as, victim}
						if !seenFlow[key] {
							seenFlow[key] = true
							a.Flow[FlowEdge{cCountry, vCountry}]++
						}
					}
				}
			}
		}
	}
	// Drop censors that leaked to nothing (stub censors whose victims are
	// only themselves).
	for asn, leak := range a.ByCensor {
		if len(leak.VictimASes) == 0 {
			delete(a.ByCensor, asn)
		}
	}
	return a
}

// LeakToOtherASes counts censors with at least one victim AS (the paper's
// "32 censoring ASes leak their censorship policies to other ASes").
func (a *Analysis) LeakToOtherASes() int { return len(a.ByCensor) }

// LeakToOtherCountries counts censors whose leakage crosses a border (the
// paper's "24 have censorship leakage extending to other countries").
func (a *Analysis) LeakToOtherCountries() int {
	n := 0
	for _, l := range a.ByCensor {
		if len(l.VictimCountries) > 0 {
			n++
		}
	}
	return n
}

// TopLeaker is one Table 3 row.
type TopLeaker struct {
	ASN             topology.ASN
	Name            string
	Country         string
	LeakedASes      int
	LeakedCountries int
}

// TopLeakers returns the Table 3 ranking: censors ordered by victim-AS
// count (ties by victim-country count, then ASN).
func (a *Analysis) TopLeakers(g *topology.Graph, n int) []TopLeaker {
	rows := make([]TopLeaker, 0, len(a.ByCensor))
	for asn, l := range a.ByCensor {
		name := ""
		if as, ok := g.ByASN(asn); ok {
			name = as.Name
		}
		rows = append(rows, TopLeaker{
			ASN: asn, Name: name, Country: l.CensorCountry,
			LeakedASes: len(l.VictimASes), LeakedCountries: len(l.VictimCountries),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].LeakedASes != rows[j].LeakedASes {
			return rows[i].LeakedASes > rows[j].LeakedASes
		}
		if rows[i].LeakedCountries != rows[j].LeakedCountries {
			return rows[i].LeakedCountries > rows[j].LeakedCountries
		}
		return rows[i].ASN < rows[j].ASN
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// FlowEdges lists the country-level flow sorted by weight (descending),
// then lexicographically — Figure 5's edge list.
func (a *Analysis) FlowEdges() []WeightedEdge {
	out := make([]WeightedEdge, 0, len(a.Flow))
	for e, w := range a.Flow {
		out = append(out, WeightedEdge{e, w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].Edge.From != out[j].Edge.From {
			return out[i].Edge.From < out[j].Edge.From
		}
		return out[i].Edge.To < out[j].Edge.To
	})
	return out
}

// WeightedEdge is one Figure 5 edge with its weight.
type WeightedEdge struct {
	Edge   FlowEdge
	Weight int
}

// RegionalFrac reports the fraction of cross-border leakage weight that
// stays within the censor's region — the paper's observation that, China
// aside, leakage is mostly regional.
func (a *Analysis) RegionalFrac(g *topology.Graph, excludeCountries ...string) float64 {
	excluded := map[string]bool{}
	for _, c := range excludeCountries {
		excluded[c] = true
	}
	regionOf := func(country string) (topology.Region, bool) {
		c, ok := topology.CountryByCode(country)
		return c.Region, ok
	}
	total, regional := 0, 0
	for e, w := range a.Flow {
		if excluded[e.From] {
			continue
		}
		fr, ok1 := regionOf(e.From)
		to, ok2 := regionOf(e.To)
		if !ok1 || !ok2 {
			continue
		}
		total += w
		if fr == to {
			regional += w
		}
	}
	if total == 0 {
		return 0
	}
	return float64(regional) / float64(total)
}
