// Package leakage implements the paper's §3.3 analysis: finding ASes whose
// users inherit censorship because their traffic transits a censoring AS
// in another jurisdiction.
//
// Only unique-solution CNFs participate. On each censored path, the ASes
// upstream of an identified censor (closer to the vantage point) that were
// assigned False and sit in a different country are victims of censorship
// leakage. Aggregated per censor, this yields the paper's Table 3 (top
// leakers by victim ASes and countries) and Figure 5 (the country-level
// flow of censorship).
//
// Entry points: Analyze folds solved outcomes into an Analysis;
// LeakToOtherASes/LeakToOtherCountries are the headline counts; TopLeakers,
// FlowEdges and RegionalFrac feed the Table 3 / Figure 5 reports.
//
// Invariants: leakage reads only solved tomography outcomes — never ground
// truth — so its errors are exactly the identification errors upstream.
package leakage
