package leakage

import (
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/timeslice"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

var t0 = time.Date(2016, 5, 10, 6, 0, 0, 0, time.UTC)

// fixtureGraph builds a topology and returns ASNs chosen from distinct
// countries for hand-built paths.
func fixtureGraph(t *testing.T) (*topology.Graph, map[string]topology.ASN) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 3, ASes: 300, Countries: 20})
	if err != nil {
		t.Fatal(err)
	}
	byCountry := map[string]topology.ASN{}
	for i := range g.ASes {
		c := g.ASes[i].Country
		if _, ok := byCountry[c]; !ok {
			byCountry[c] = g.ASes[i].ASN
		}
	}
	return g, byCountry
}

// secondIn returns another AS in the given country, distinct from exclude.
func secondIn(g *topology.Graph, country string, exclude topology.ASN) topology.ASN {
	for i := range g.ASes {
		if g.ASes[i].Country == country && g.ASes[i].ASN != exclude {
			return g.ASes[i].ASN
		}
	}
	return 0
}

func rec(v topology.ASN, url string, at time.Time, path []topology.ASN, kinds anomaly.Set) iclab.Record {
	return iclab.Record{Vantage: v, URL: url, At: at, ASPath: path, Anomalies: kinds, Fail: traceroute.OK}
}

func TestAnalyzeBasicLeak(t *testing.T) {
	g, byCountry := fixtureGraph(t)
	vantageDE := byCountry["DE"]
	transitCN := byCountry["CN"]
	destUS := byCountry["US"]
	midDE := secondIn(g, "DE", vantageDE)
	if midDE == 0 {
		t.Fatal("need two DE ASes")
	}

	// DE vantage -> DE transit -> CN censor -> US dest, censored; churned
	// clean paths pin the censor uniquely.
	records := []iclab.Record{
		rec(vantageDE, "u.com", t0, []topology.ASN{vantageDE, midDE, transitCN, destUS}, anomaly.MakeSet(anomaly.RST)),
		rec(vantageDE, "u.com", t0.Add(time.Hour), []topology.ASN{vantageDE, midDE, destUS}, 0),
	}
	insts := tomo.Build(records, tomo.BuildConfig{
		Granularities: []timeslice.Granularity{timeslice.Day},
		Kinds:         []anomaly.Kind{anomaly.RST},
	})
	outcomes := tomo.SolveAll(insts)
	a := Analyze(outcomes, g)

	leak, ok := a.ByCensor[transitCN]
	if !ok {
		t.Fatalf("CN censor has no leak entry: %+v", a.ByCensor)
	}
	if !leak.VictimASes[vantageDE] || !leak.VictimASes[midDE] {
		t.Errorf("upstream DE ASes not victims: %v", leak.VictimASes)
	}
	if leak.VictimASes[destUS] {
		t.Error("downstream AS counted as victim")
	}
	if !leak.VictimCountries["DE"] {
		t.Errorf("DE not a victim country: %v", leak.VictimCountries)
	}
	if a.LeakToOtherASes() != 1 || a.LeakToOtherCountries() != 1 {
		t.Errorf("leak counts: AS=%d country=%d", a.LeakToOtherASes(), a.LeakToOtherCountries())
	}
	if w := a.Flow[FlowEdge{"CN", "DE"}]; w != 2 {
		t.Errorf("flow CN->DE = %d, want 2 (two victim ASes)", w)
	}
}

func TestAnalyzeDomesticCensorNoCountryLeak(t *testing.T) {
	g, byCountry := fixtureGraph(t)
	vantagePL := byCountry["PL"]
	censorPL := secondIn(g, "PL", vantagePL)
	destUS := byCountry["US"]
	if censorPL == 0 {
		t.Fatal("need two PL ASes")
	}
	records := []iclab.Record{
		rec(vantagePL, "u.com", t0, []topology.ASN{vantagePL, censorPL, destUS}, anomaly.MakeSet(anomaly.DNS)),
		rec(vantagePL, "u.com", t0.Add(time.Hour), []topology.ASN{vantagePL, destUS}, 0),
	}
	insts := tomo.Build(records, tomo.BuildConfig{
		Granularities: []timeslice.Granularity{timeslice.Day},
		Kinds:         []anomaly.Kind{anomaly.DNS},
	})
	a := Analyze(tomo.SolveAll(insts), g)
	leak, ok := a.ByCensor[censorPL]
	if !ok {
		t.Fatal("domestic censor not recorded (it still leaks to its upstream AS)")
	}
	if len(leak.VictimCountries) != 0 {
		t.Errorf("domestic censorship should not cross countries: %v", leak.VictimCountries)
	}
	if a.LeakToOtherASes() != 1 || a.LeakToOtherCountries() != 0 {
		t.Errorf("counts: AS=%d country=%d", a.LeakToOtherASes(), a.LeakToOtherCountries())
	}
}

func TestAnalyzeIgnoresNonUnique(t *testing.T) {
	g, byCountry := fixtureGraph(t)
	v := byCountry["FR"]
	c1 := byCountry["CN"]
	dest := byCountry["US"]
	// Single censored path, no clean observations: multiple solutions.
	records := []iclab.Record{
		rec(v, "u.com", t0, []topology.ASN{v, c1, dest}, anomaly.MakeSet(anomaly.TTL)),
	}
	insts := tomo.Build(records, tomo.BuildConfig{
		Granularities: []timeslice.Granularity{timeslice.Day},
		Kinds:         []anomaly.Kind{anomaly.TTL},
	})
	a := Analyze(tomo.SolveAll(insts), g)
	if len(a.ByCensor) != 0 {
		t.Errorf("multi-solution CNF leaked: %+v", a.ByCensor)
	}
}

func TestTopLeakersOrderingAndFlow(t *testing.T) {
	g, byCountry := fixtureGraph(t)
	destUS := byCountry["US"]
	censorCN := byCountry["CN"]
	censorRU := byCountry["RU"]

	var records []iclab.Record
	// CN censor leaks to three countries; RU censor to one.
	i := 0
	for _, vc := range []string{"DE", "FR", "GB"} {
		v := byCountry[vc]
		records = append(records,
			rec(v, "u.com", t0.Add(time.Duration(i)*time.Minute), []topology.ASN{v, censorCN, destUS}, anomaly.MakeSet(anomaly.SEQ)),
			rec(v, "u.com", t0.Add(time.Duration(i+1)*time.Minute), []topology.ASN{v, destUS}, 0))
		i += 2
	}
	vPL := byCountry["PL"]
	records = append(records,
		rec(vPL, "v.com", t0, []topology.ASN{vPL, censorRU, destUS}, anomaly.MakeSet(anomaly.SEQ)),
		rec(vPL, "v.com", t0.Add(time.Minute), []topology.ASN{vPL, destUS}, 0))

	insts := tomo.Build(records, tomo.BuildConfig{
		Granularities: []timeslice.Granularity{timeslice.Day},
		Kinds:         []anomaly.Kind{anomaly.SEQ},
	})
	a := Analyze(tomo.SolveAll(insts), g)

	top := a.TopLeakers(g, 10)
	if len(top) != 2 {
		t.Fatalf("top leakers: %+v", top)
	}
	if top[0].ASN != censorCN || top[0].LeakedCountries != 3 {
		t.Errorf("top leaker %+v, want CN censor with 3 countries", top[0])
	}
	if top[1].ASN != censorRU || top[1].LeakedCountries != 1 {
		t.Errorf("second leaker %+v", top[1])
	}
	if top[0].Name == "" {
		t.Error("leaker name missing")
	}
	// Truncation.
	if got := a.TopLeakers(g, 1); len(got) != 1 {
		t.Errorf("TopLeakers(1) returned %d", len(got))
	}

	edges := a.FlowEdges()
	if len(edges) != 4 {
		t.Fatalf("flow edges %+v", edges)
	}
	for _, e := range edges {
		if e.Edge.From != "CN" && e.Edge.From != "RU" {
			t.Errorf("unexpected flow source %v", e.Edge)
		}
	}
	// RegionalFrac excluding CN: RU->PL is Europe->Europe, so 1.0.
	if frac := a.RegionalFrac(g, "CN"); frac != 1.0 {
		t.Errorf("RegionalFrac(excl CN) = %.2f, want 1.0", frac)
	}
}
