package analysis

import (
	"sort"

	"churntomo/internal/anomaly"
	"churntomo/internal/censor"
	"churntomo/internal/churn"
	"churntomo/internal/iclab"
	"churntomo/internal/leakage"
	"churntomo/internal/report"
	"churntomo/internal/sat"
	"churntomo/internal/timeslice"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
	"churntomo/internal/webcat"
)

// SolvabilityRow is one group of Figure 1: the fraction of CNFs with 0, 1
// and 2+ solutions.
type SolvabilityRow struct {
	Group string
	Frac  [3]float64 // indexed by sat.Classification
	CNFs  int
}

func solvability(outcomes []tomo.Outcome, groupOf func(tomo.Outcome) (string, bool), order []string) []SolvabilityRow {
	counts := map[string]*SolvabilityRow{}
	for _, o := range outcomes {
		g, ok := groupOf(o)
		if !ok {
			continue
		}
		row := counts[g]
		if row == nil {
			row = &SolvabilityRow{Group: g}
			counts[g] = row
		}
		row.Frac[o.Class]++
		row.CNFs++
	}
	var out []SolvabilityRow
	for _, g := range order {
		row := counts[g]
		if row == nil {
			continue
		}
		for c := range row.Frac {
			row.Frac[c] /= float64(row.CNFs)
		}
		out = append(out, *row)
	}
	return out
}

// Figure1a groups CNF solvability by time granularity (day, week, month —
// the paper's Figure 1a omits year).
func Figure1a(outcomes []tomo.Outcome) []SolvabilityRow {
	return solvability(outcomes, func(o tomo.Outcome) (string, bool) {
		g := o.Inst.Key.Slice.Gran
		if g == timeslice.Year {
			return "", false
		}
		return g.String(), true
	}, []string{"day", "week", "month"})
}

// Figure1b groups CNF solvability by anomaly kind (Figure 1b's legend
// order: block, dns, rst, seq, ttl).
func Figure1b(outcomes []tomo.Outcome) []SolvabilityRow {
	return solvability(outcomes, func(o tomo.Outcome) (string, bool) {
		return o.Inst.Key.Kind.String(), true
	}, []string{"block", "dns", "rst", "seq", "ttl"})
}

// OverallSolvability returns the headline fractions across every CNF (the
// paper's "nearly 92% ... exactly one solution, less than 6% ... no
// solution").
func OverallSolvability(outcomes []tomo.Outcome) (frac [3]float64, n int) {
	for _, o := range outcomes {
		frac[o.Class]++
		n++
	}
	if n > 0 {
		for c := range frac {
			frac[c] /= float64(n)
		}
	}
	return frac, n
}

// Figure2 summarizes candidate-set reduction over multi-solution CNFs: the
// CDF of reduction percentages, the mean reduction, and the fraction of
// CNFs with no elimination at all.
type Figure2Data struct {
	CDF        []report.Point
	Mean       float64 // mean reduction fraction (paper: 95.2% of ASes)
	NoElimFrac float64 // paper: ~20% of multi-solution CNFs eliminate nothing
	Samples    int
}

// Figure2 computes the reduction CDF from multi-solution outcomes.
func Figure2(outcomes []tomo.Outcome) Figure2Data {
	var samples []float64
	noElim := 0
	for _, o := range outcomes {
		if o.Class != sat.Multiple {
			continue
		}
		f := o.ReductionFrac()
		samples = append(samples, 100*f)
		if o.Eliminated == 0 {
			noElim++
		}
	}
	d := Figure2Data{Samples: len(samples)}
	if len(samples) == 0 {
		return d
	}
	xs := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	d.CDF = report.CDFOf(samples, xs)
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	d.Mean = sum / float64(len(samples)) / 100
	d.NoElimFrac = float64(noElim) / float64(len(samples))
	return d
}

// Figure3 is churn.Measure re-exported for harness symmetry.
func Figure3(records []iclab.Record) []churn.Distribution {
	return churn.Measure(records, nil)
}

// Figure4Row is one granularity of the no-churn ablation: fractions of
// CNFs with 0,1,2,3,4,5+ solutions.
type Figure4Row struct {
	Gran timeslice.Granularity
	Frac [6]float64
	CNFs int
}

// Figure4 rebuilds CNFs from first-observed-path records only and counts
// models up to 5+ — the paper's demonstration that churn is what makes the
// tomography solvable.
func Figure4(records []iclab.Record, workers int) []Figure4Row {
	filtered := churn.FirstPathOnly(records)
	grans := []timeslice.Granularity{timeslice.Day, timeslice.Week, timeslice.Month}
	insts := tomo.Build(filtered, tomo.BuildConfig{Granularities: grans, Workers: workers})
	rows := map[timeslice.Granularity]*Figure4Row{}
	for _, in := range insts {
		row := rows[in.Key.Slice.Gran]
		if row == nil {
			row = &Figure4Row{Gran: in.Key.Slice.Gran}
			rows[in.Key.Slice.Gran] = row
		}
		n := sat.CountModels(in.CNF, 5)
		row.Frac[n]++
		row.CNFs++
	}
	var out []Figure4Row
	for _, g := range grans {
		row := rows[g]
		if row == nil {
			continue
		}
		for i := range row.Frac {
			row.Frac[i] /= float64(row.CNFs)
		}
		out = append(out, *row)
	}
	return out
}

// Table2Row is one region of Table 2: a country, its identified censoring
// ASes, and the union of their anomaly kinds.
type Table2Row struct {
	Country string
	ASNs    []topology.ASN
	Kinds   anomaly.Set
}

// Table2 groups identified censors by country, sorted by censor count.
func Table2(censors map[topology.ASN]*tomo.IdentifiedCensor, g *topology.Graph, topN int) []Table2Row {
	byCountry := map[string]*Table2Row{}
	for asn, c := range censors {
		country := g.CountryOf(asn)
		if country == "" {
			country = "??"
		}
		row := byCountry[country]
		if row == nil {
			row = &Table2Row{Country: country}
			byCountry[country] = row
		}
		row.ASNs = append(row.ASNs, asn)
		row.Kinds |= c.Kinds
	}
	out := make([]Table2Row, 0, len(byCountry))
	for _, row := range byCountry {
		sort.Slice(row.ASNs, func(i, j int) bool { return row.ASNs[i] < row.ASNs[j] })
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ASNs) != len(out[j].ASNs) {
			return len(out[i].ASNs) > len(out[j].ASNs)
		}
		return out[i].Country < out[j].Country
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// CensorCountries counts the countries hosting identified censors (the
// paper's "65 censoring ASes located in 30 different countries").
func CensorCountries(censors map[topology.ASN]*tomo.IdentifiedCensor, g *topology.Graph) int {
	set := map[string]bool{}
	for asn := range censors {
		if c := g.CountryOf(asn); c != "" {
			set[c] = true
		}
	}
	return len(set)
}

// CategoryCensorship counts identified (censor, URL) findings per URL
// category — the paper's McAfee-categorization analysis (Online Shopping
// and Classifieds lead).
func CategoryCensorship(censors map[topology.ASN]*tomo.IdentifiedCensor, urlCat map[string]webcat.Category) map[webcat.Category]int {
	out := map[webcat.Category]int{}
	for _, c := range censors {
		for url := range c.URLs {
			if cat, ok := urlCat[url]; ok {
				out[cat]++
			}
		}
	}
	return out
}

// Validation compares identified censors against the generator's ground
// truth — the check the paper could not run against the real Internet.
type Validation struct {
	TruePositives  int
	FalsePositives int
	Missed         int
	Precision      float64
	Recall         float64
	Spurious       []topology.ASN
}

// Validate scores identified censors against the registry. Recall is over
// censors that were actually exercised (observable recall requires a censor
// to sit on some measured path; the registry may contain censors no
// measurement ever crossed, so full-registry recall is also reported by the
// caller if needed).
func Validate(censors map[topology.ASN]*tomo.IdentifiedCensor, reg *censor.Registry) Validation {
	v := Validation{}
	for asn := range censors {
		if _, ok := reg.Policy(asn); ok {
			v.TruePositives++
		} else {
			v.FalsePositives++
			v.Spurious = append(v.Spurious, asn)
		}
	}
	sort.Slice(v.Spurious, func(i, j int) bool { return v.Spurious[i] < v.Spurious[j] })
	v.Missed = reg.Len() - v.TruePositives
	if v.TruePositives+v.FalsePositives > 0 {
		v.Precision = float64(v.TruePositives) / float64(v.TruePositives+v.FalsePositives)
	}
	if reg.Len() > 0 {
		v.Recall = float64(v.TruePositives) / float64(reg.Len())
	}
	return v
}

// Table3 re-exports the leakage ranking for harness symmetry.
func Table3(a *leakage.Analysis, g *topology.Graph, n int) []leakage.TopLeaker {
	return a.TopLeakers(g, n)
}
