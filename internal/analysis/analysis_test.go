package analysis

import (
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/censor"
	"churntomo/internal/iclab"
	"churntomo/internal/sat"
	"churntomo/internal/timeslice"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
	"churntomo/internal/webcat"
)

var t0 = time.Date(2016, 5, 10, 8, 0, 0, 0, time.UTC)

func rec(v topology.ASN, url string, at time.Time, path []topology.ASN, kinds anomaly.Set) iclab.Record {
	return iclab.Record{Vantage: v, URL: url, At: at, ASPath: path, Anomalies: kinds, Fail: traceroute.OK}
}

// fixtureOutcomes builds a mixed bag: one unique, one multiple, one unsat.
func fixtureOutcomes(t *testing.T) []tomo.Outcome {
	t.Helper()
	records := []iclab.Record{
		// Unique: censor 20 pinned by churned negation.
		rec(1, "a.com", t0, []topology.ASN{10, 20, 30}, anomaly.MakeSet(anomaly.TTL)),
		rec(1, "a.com", t0.Add(time.Hour), []topology.ASN{10, 25, 30}, 0),
		// Multiple: under-constrained RST positive.
		rec(2, "b.com", t0, []topology.ASN{11, 21, 31}, anomaly.MakeSet(anomaly.RST)),
		rec(3, "b.com", t0, []topology.ASN{12, 31}, 0),
		// Unsat: conflicting SEQ observations of one path.
		rec(4, "c.com", t0, []topology.ASN{13, 23}, anomaly.MakeSet(anomaly.SEQ)),
		rec(4, "c.com", t0.Add(time.Hour), []topology.ASN{13, 23}, 0),
	}
	insts := tomo.Build(records, tomo.BuildConfig{
		Granularities: []timeslice.Granularity{timeslice.Day},
	})
	return tomo.SolveAll(insts)
}

func TestOverallAndFigure1(t *testing.T) {
	outcomes := fixtureOutcomes(t)
	frac, n := OverallSolvability(outcomes)
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	for _, f := range frac {
		if f != 1.0/3 {
			t.Errorf("fractions %v, want thirds", frac)
		}
	}
	rows := Figure1a(outcomes)
	if len(rows) != 1 || rows[0].Group != "day" || rows[0].CNFs != 3 {
		t.Fatalf("Figure1a rows: %+v", rows)
	}
	byKind := Figure1b(outcomes)
	if len(byKind) != 3 {
		t.Fatalf("Figure1b rows: %+v", byKind)
	}
	for _, r := range byKind {
		if r.CNFs != 1 {
			t.Errorf("kind %s has %d CNFs", r.Group, r.CNFs)
		}
	}
}

func TestFigure1aExcludesYear(t *testing.T) {
	records := []iclab.Record{
		rec(1, "a.com", t0, []topology.ASN{1, 2}, anomaly.MakeSet(anomaly.DNS)),
	}
	insts := tomo.Build(records, tomo.BuildConfig{})
	outcomes := tomo.SolveAll(insts)
	for _, r := range Figure1a(outcomes) {
		if r.Group == "year" {
			t.Error("Figure 1a must omit the year granularity (as the paper does)")
		}
	}
}

func TestFigure2(t *testing.T) {
	outcomes := fixtureOutcomes(t)
	d := Figure2(outcomes)
	if d.Samples != 1 {
		t.Fatalf("samples %d, want 1 (only the multiple-solution CNF)", d.Samples)
	}
	// The multiple CNF: vars {11,21,31,12}; 31 and 12 negated; 11,21
	// potential => eliminated 2 of 4 = 50%.
	if d.Mean != 0.5 {
		t.Errorf("mean reduction %.2f, want 0.50", d.Mean)
	}
	if d.NoElimFrac != 0 {
		t.Errorf("noElim %.2f", d.NoElimFrac)
	}
	if len(d.CDF) == 0 || d.CDF[len(d.CDF)-1].Y != 1 {
		t.Errorf("CDF malformed: %+v", d.CDF)
	}
	if empty := Figure2(nil); empty.Samples != 0 || empty.CDF != nil {
		t.Errorf("empty Figure2: %+v", empty)
	}
}

func TestFigure4Collapses(t *testing.T) {
	// With churn: day 1 path A censored, path B clean → unique.
	// Without churn (first path only): the clean alternate disappears,
	// leaving an under-constrained CNF.
	records := []iclab.Record{
		rec(1, "a.com", t0, []topology.ASN{10, 20, 30}, anomaly.MakeSet(anomaly.TTL)),
		rec(1, "a.com", t0.Add(time.Hour), []topology.ASN{10, 25, 30}, 0),
		rec(2, "a.com", t0.Add(time.Hour), []topology.ASN{11, 30}, 0),
	}
	rows := Figure4(records, 1)
	if len(rows) == 0 {
		t.Fatal("no Figure4 rows")
	}
	day := rows[0]
	if day.Gran != timeslice.Day || day.CNFs != 1 {
		t.Fatalf("day row: %+v", day)
	}
	// Ablated CNF: positive (10,20,30), negative (11,30): vars 10,20 free
	// subject to the clause => 3 models.
	if day.Frac[3] != 1 {
		t.Errorf("ablated CNF buckets: %+v, want all mass at 3", day.Frac)
	}
}

func TestTable2AndCensorCountries(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{Seed: 1, ASes: 200, Countries: 20})
	if err != nil {
		t.Fatal(err)
	}
	censors := map[topology.ASN]*tomo.IdentifiedCensor{}
	add := func(country string, kinds anomaly.Set, n int) {
		count := 0
		for i := range g.ASes {
			if g.ASes[i].Country == country && count < n {
				censors[g.ASes[i].ASN] = &tomo.IdentifiedCensor{
					ASN: g.ASes[i].ASN, Kinds: kinds,
					URLs: map[string]bool{"u.com": true},
				}
				count++
			}
		}
	}
	add("CN", anomaly.AllKinds, 3)
	add("GB", anomaly.MakeSet(anomaly.Block, anomaly.TTL), 2)
	add("PL", anomaly.MakeSet(anomaly.DNS), 1)

	rows := Table2(censors, g, 2)
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Country != "CN" || len(rows[0].ASNs) != 3 || rows[0].Kinds != anomaly.AllKinds {
		t.Errorf("top row: %+v", rows[0])
	}
	if rows[1].Country != "GB" {
		t.Errorf("second row: %+v", rows[1])
	}
	if got := CensorCountries(censors, g); got != 3 {
		t.Errorf("CensorCountries = %d, want 3", got)
	}
}

func TestCategoryCensorship(t *testing.T) {
	censors := map[topology.ASN]*tomo.IdentifiedCensor{
		1: {ASN: 1, URLs: map[string]bool{"a": true, "b": true}},
		2: {ASN: 2, URLs: map[string]bool{"a": true, "zzz": true}},
	}
	urlCat := map[string]webcat.Category{"a": webcat.Shopping, "b": webcat.Ads}
	counts := CategoryCensorship(censors, urlCat)
	if counts[webcat.Shopping] != 2 || counts[webcat.Ads] != 1 {
		t.Errorf("counts: %v", counts)
	}
}

func TestValidate(t *testing.T) {
	start := t0.AddDate(0, -1, 0)
	reg := censor.NewRegistry()
	reg.Add(censor.NewPolicy(100, "CN", censor.Behavior{}, anomaly.AllKinds, webcat.AllCategories))
	reg.Add(censor.NewPolicy(200, "RU", censor.Behavior{}, anomaly.AllKinds, webcat.AllCategories))
	_ = start

	identified := map[topology.ASN]*tomo.IdentifiedCensor{
		100: {ASN: 100}, // true positive
		999: {ASN: 999}, // spurious
	}
	v := Validate(identified, reg)
	if v.TruePositives != 1 || v.FalsePositives != 1 || v.Missed != 1 {
		t.Errorf("validation: %+v", v)
	}
	if v.Precision != 0.5 || v.Recall != 0.5 {
		t.Errorf("precision %.2f recall %.2f", v.Precision, v.Recall)
	}
	if len(v.Spurious) != 1 || v.Spurious[0] != 999 {
		t.Errorf("spurious: %v", v.Spurious)
	}
}

func TestSolvabilityClassesSumToOne(t *testing.T) {
	outcomes := fixtureOutcomes(t)
	for _, rows := range [][]SolvabilityRow{Figure1a(outcomes), Figure1b(outcomes)} {
		for _, r := range rows {
			sum := r.Frac[sat.Unsat] + r.Frac[sat.Unique] + r.Frac[sat.Multiple]
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("row %s fractions sum to %.3f", r.Group, sum)
			}
		}
	}
}
