// Package analysis assembles the paper's evaluation artifacts — every
// table and figure in §4 — from solved tomography outcomes, plus the
// ground-truth validation the original authors could not perform.
//
// Entry points mirror the paper's exhibits: Figure1a/Figure1b (CNF
// solvability by granularity and anomaly kind), OverallSolvability,
// Figure2 (candidate-set reduction CDF), Figure3 (path churn
// distributions), Figure4 (the no-churn ablation), Table2 (regions with
// most censoring ASes), Table3 (top leakers), CategoryCensorship and
// CensorCountries. Validate scores identified censors against the censor
// registry — possible here because the simulator has ground truth.
//
// Invariants: every function is a pure fold over its inputs (no RNG, no
// clock), so the evaluation of a pipeline is as deterministic as the
// pipeline itself; Validate is the only function that touches ground
// truth, and nothing downstream of the tomography feeds back into it.
package analysis
