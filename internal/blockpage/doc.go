// Package blockpage models censor blockpages and their fingerprinting.
//
// Paper correspondence: §2.1, "Block pages". The detection side mirrors
// ICLab's two mechanisms: regular-expression matching against known
// blockpage corpora (OONI's lists in the paper), and the Jones et al.
// page-length comparison against a fetch from a censor-free US vantage
// point.
//
// Entry points: Render produces a censor's page for injection;
// NewFingerprintDB builds the detection corpus at a chosen coverage;
// FingerprintDB.Match and LengthDelta are the two detectors.
//
// Invariants: the corpus is deliberately incomplete — some censors' pages
// are unknown to the fingerprint DB and are only caught by the length
// heuristic, and a few slip through entirely, exactly the kind of detector
// imperfection the tomography has to live with. Rendering is
// deterministic per (template, country).
package blockpage
