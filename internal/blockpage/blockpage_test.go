package blockpage

import (
	"bytes"
	"testing"
)

func TestRenderVariesByID(t *testing.T) {
	a := Render(1, "CN")
	b := Render(2, "CN")
	if bytes.Equal(a, b) {
		t.Error("different templates render identically")
	}
	if !bytes.Contains(a, []byte("Access Denied")) {
		t.Error("blockpage missing title")
	}
	if !bytes.Contains(a, []byte("CN-FILTER-0001")) {
		t.Errorf("marker missing: %s", a)
	}
	// Deterministic.
	if !bytes.Equal(a, Render(1, "CN")) {
		t.Error("Render not deterministic")
	}
}

func TestFingerprintDBCoverage(t *testing.T) {
	db := NewFingerprintDB(100, 0.8, 1)
	known := 0
	for id := 0; id < 100; id++ {
		if db.Knows(id) {
			known++
		}
	}
	if known < 60 || known > 95 {
		t.Errorf("coverage %d/100 far from configured 0.8", known)
	}
	full := NewFingerprintDB(50, 1.0, 2)
	for id := 0; id < 50; id++ {
		if !full.Knows(id) {
			t.Errorf("full-coverage DB missing id %d", id)
		}
		if !full.Match(Render(id, "XX")) {
			t.Errorf("full DB failed to match template %d", id)
		}
	}
}

func TestGenericPatternCatchesUnknownTemplates(t *testing.T) {
	db := NewFingerprintDB(10, 0.0, 3) // no specific signatures
	if db.Len() != 1 {
		t.Fatalf("expected only the generic pattern, got %d", db.Len())
	}
	if !db.Match(Render(999, "ZZ")) {
		t.Error("generic pattern should match our standard template shape")
	}
	if db.Match([]byte("<html><body>hello world</body></html>")) {
		t.Error("generic pattern matched an innocent page")
	}
}

func TestEmptyDB(t *testing.T) {
	db := Empty()
	if db.Match(Render(1, "CN")) {
		t.Error("empty DB matched")
	}
	if db.Knows(1) || db.Len() != 0 {
		t.Error("empty DB knows things")
	}
}

func TestLengthDelta(t *testing.T) {
	cases := []struct {
		body, baseline int
		want           bool
	}{
		{1000, 1000, false},
		{1000, 1100, false}, // 9% — dynamic content territory
		{1000, 1400, false}, // 28.6%
		{500, 10000, true},  // classic tiny blockpage
		{10000, 500, true},  // or a huge interstitial
		{1000, 1500, true},  // 33%
		{0, 0, false},       // degenerate
		{0, 100, true},      // empty body vs real baseline
	}
	for _, c := range cases {
		if got := LengthDelta(c.body, c.baseline, 0.30); got != c.want {
			t.Errorf("LengthDelta(%d,%d) = %v, want %v", c.body, c.baseline, got, c.want)
		}
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	a := NewFingerprintDB(40, 0.5, 7)
	b := NewFingerprintDB(40, 0.5, 7)
	for id := 0; id < 40; id++ {
		if a.Knows(id) != b.Knows(id) {
			t.Fatalf("nondeterministic coverage at id %d", id)
		}
	}
}
