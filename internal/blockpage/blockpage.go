package blockpage

import (
	"fmt"
	"math/rand/v2"
	"regexp"
)

// Render produces the blockpage body a censor with the given template ID
// serves. The authority marker is what fingerprints key on.
func Render(id int, country string) []byte {
	// Vary page size by template so the length heuristic sees a spread.
	pad := (id*577 + 211) % 1800
	return fmt.Appendf(nil,
		"<html><head><title>Access Denied</title></head><body>"+
			"<h1>This content is not available in your region.</h1>"+
			"<p>Blocked by order of authority %s-FILTER-%04d.</p>"+
			"<!-- %s --></body></html>",
		country, id, filler(pad))
}

func filler(n int) string {
	const chunk = "filter-notice "
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, chunk...)
	}
	return string(out[:n])
}

// markerPattern matches the authority marker of template id.
func markerPattern(id int) string {
	return fmt.Sprintf(`FILTER-%04d`, id)
}

// FingerprintDB is the corpus of known blockpage signatures.
type FingerprintDB struct {
	patterns []*regexp.Regexp
	known    map[int]bool
}

// pcgStreamBlock is the fingerprint-corpus RNG stream word ("block" in
// ASCII); stream words are module-unique, enforced by churnvet.
const pcgStreamBlock = 0x626c6f636b // "block"

// NewFingerprintDB builds a corpus covering a fraction of the template IDs
// in [0, numTemplates). Coverage below 1 models censors whose pages the
// public corpora have not catalogued. Deterministic per seed.
func NewFingerprintDB(numTemplates int, coverage float64, seed uint64) *FingerprintDB {
	rng := rand.New(rand.NewPCG(seed, pcgStreamBlock))
	db := &FingerprintDB{known: make(map[int]bool)}
	for id := 0; id < numTemplates; id++ {
		if rng.Float64() < coverage {
			db.patterns = append(db.patterns, regexp.MustCompile(markerPattern(id)))
			db.known[id] = true
		}
	}
	// A generic pattern shared by many real-world products.
	db.patterns = append(db.patterns, regexp.MustCompile(`(?i)<title>Access Denied</title>.*not available in your region`))
	return db
}

// Empty returns a DB with no signatures at all (length heuristic only).
func Empty() *FingerprintDB {
	return &FingerprintDB{known: map[int]bool{}}
}

// Knows reports whether template id is in the corpus.
func (db *FingerprintDB) Knows(id int) bool { return db.known[id] }

// Len returns the number of catalogued signatures.
func (db *FingerprintDB) Len() int { return len(db.patterns) }

// Match reports whether the body matches any known signature.
func (db *FingerprintDB) Match(body []byte) bool {
	for _, p := range db.patterns {
		if p.Match(body) {
			return true
		}
	}
	return false
}

// LengthDelta implements the Jones et al. heuristic: a response whose
// length differs from the censorship-free baseline by more than the
// threshold fraction (0.30 in the paper's lineage) is a blockpage
// candidate.
func LengthDelta(bodyLen, baselineLen int, threshold float64) bool {
	if bodyLen == baselineLen {
		return false
	}
	max := bodyLen
	if baselineLen > max {
		max = baselineLen
	}
	if max == 0 {
		return false
	}
	diff := bodyLen - baselineLen
	if diff < 0 {
		diff = -diff
	}
	return float64(diff)/float64(max) > threshold
}
