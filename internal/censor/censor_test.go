package censor

import (
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/topology"
	"churntomo/internal/webcat"
)

var (
	start = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	end   = start.AddDate(1, 0, 0)
)

func TestPolicyEpochs(t *testing.T) {
	p := NewPolicy(100, "CN", Behavior{}, anomaly.MakeSet(anomaly.DNS), webcat.MakeSet(webcat.News))
	mid := start.AddDate(0, 6, 0)
	p.AddChange(mid, anomaly.MakeSet(anomaly.DNS, anomaly.RST), webcat.MakeSet(webcat.News, webcat.Politics))

	if !p.Applies(anomaly.DNS, webcat.News, start) {
		t.Error("initial epoch should fire DNS on News")
	}
	if p.Applies(anomaly.RST, webcat.News, start) {
		t.Error("RST should not fire before the change")
	}
	if !p.Applies(anomaly.RST, webcat.Politics, mid.Add(time.Hour)) {
		t.Error("RST on Politics should fire after the change")
	}
	if p.Applies(anomaly.DNS, webcat.Adult, end) {
		t.Error("untargeted category fired")
	}
	if !p.Changed(start, end) {
		t.Error("Changed over the full span should be true")
	}
	if p.Changed(start, start.AddDate(0, 1, 0)) {
		t.Error("Changed in a quiet month should be false")
	}
	if got := p.TechniquesEver(); got != anomaly.MakeSet(anomaly.DNS, anomaly.RST) {
		t.Errorf("TechniquesEver = %v", got)
	}
	if got := p.CategoriesEver(); !got.Has(webcat.Politics) || !got.Has(webcat.News) {
		t.Errorf("CategoriesEver = %v", got)
	}
}

func TestRegistryActiveOn(t *testing.T) {
	r := NewRegistry()
	r.Add(NewPolicy(200, "CN", Behavior{}, anomaly.MakeSet(anomaly.TTL), webcat.MakeSet(webcat.Shopping)))
	r.Add(NewPolicy(300, "GB", Behavior{}, anomaly.MakeSet(anomaly.Block), webcat.MakeSet(webcat.Ads)))

	path := []topology.ASN{100, 200, 300, 400}
	acts := r.ActiveOn(path, webcat.Shopping, start)
	if len(acts) != 1 || acts[0].ASN != 200 || acts[0].PathIndex != 1 {
		t.Fatalf("ActiveOn(Shopping) = %+v", acts)
	}
	if acts[0].Techniques != anomaly.MakeSet(anomaly.TTL) {
		t.Errorf("techniques = %v", acts[0].Techniques)
	}
	if got := r.ActiveOn(path, webcat.Health, start); got != nil {
		t.Errorf("untargeted category matched: %+v", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	asns := r.ASNs()
	if len(asns) != 2 || asns[0] != 200 || asns[1] != 300 {
		t.Errorf("ASNs = %v", asns)
	}
}

func genGraph(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 1, ASes: 500, Countries: 30})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateDeterministic(t *testing.T) {
	g := genGraph(t)
	cfg := GenConfig{Seed: 5, Start: start, End: end}
	a, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.ASNs(), b.ASNs()
	if len(as) != len(bs) {
		t.Fatalf("nondeterministic censor counts: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("censor %d differs: %v vs %v", i, as[i], bs[i])
		}
	}
}

func TestGeneratePlacesPaperRegions(t *testing.T) {
	g := genGraph(t)
	reg, err := Generate(g, GenConfig{Seed: 2, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	byCountry := map[string]int{}
	transitCensors := 0
	for _, asn := range reg.ASNs() {
		p, _ := reg.Policy(asn)
		byCountry[p.Country]++
		if as, ok := g.ByASN(asn); ok {
			if as.Role != topology.RoleStub {
				transitCensors++
			}
			if as.Country != p.Country {
				t.Errorf("censor %v country mismatch: policy %s, AS %s", asn, p.Country, as.Country)
			}
		} else {
			t.Errorf("censor %v not in topology", asn)
		}
	}
	for _, c := range []string{"CN", "GB", "SG", "PL", "CY"} {
		if byCountry[c] == 0 {
			t.Errorf("no censors in %s", c)
		}
	}
	if byCountry["CN"] < 3 {
		t.Errorf("CN has only %d censors", byCountry["CN"])
	}
	if transitCensors == 0 {
		t.Error("no transit censors; leakage experiments would be vacuous")
	}
	if len(byCountry) < 15 {
		t.Errorf("censors span only %d countries", len(byCountry))
	}
	if reg.Len() < 20 {
		t.Errorf("only %d censors generated", reg.Len())
	}
}

func TestGenerateResolverNeverCensors(t *testing.T) {
	g := genGraph(t)
	reg, err := Generate(g, GenConfig{Seed: 3, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Policy(topology.ResolverASN); ok {
		t.Error("resolver AS was made a censor")
	}
}

func TestGeneratePolicyChanges(t *testing.T) {
	g := genGraph(t)
	reg, err := Generate(g, GenConfig{Seed: 4, Start: start, End: end, PolicyChangeProb: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, asn := range reg.ASNs() {
		p, _ := reg.Policy(asn)
		if p.Changed(start, end) {
			changed++
			// The change must land strictly inside the window.
			for _, e := range p.Epochs()[1:] {
				if e.Start.Before(start) || !e.Start.Before(end) {
					t.Errorf("change for %v at %v outside window", asn, e.Start)
				}
			}
		}
		// Every epoch must keep at least one technique and one category.
		for _, e := range p.Epochs() {
			if e.Techniques == 0 {
				t.Errorf("censor %v epoch with no techniques", asn)
			}
			if e.Categories == 0 {
				t.Errorf("censor %v epoch with no categories", asn)
			}
		}
	}
	if changed < reg.Len()/2 {
		t.Errorf("only %d/%d censors changed policy at prob 0.9", changed, reg.Len())
	}
}

func TestGenerateCNImplementsAll(t *testing.T) {
	g := genGraph(t)
	reg, err := Generate(g, GenConfig{Seed: 6, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	var cnUnion anomaly.Set
	for _, asn := range reg.ASNs() {
		p, _ := reg.Policy(asn)
		if p.Country == "CN" {
			cnUnion |= p.TechniquesEver()
		}
	}
	if cnUnion != anomaly.AllKinds {
		t.Errorf("CN censors union = %v, want All (paper: China implements all forms)", cnUnion)
	}
}

func TestGenerateInvalidWindow(t *testing.T) {
	g := genGraph(t)
	if _, err := Generate(g, GenConfig{Seed: 1, Start: end, End: start}); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestGenerateAdsOnlyProfiles(t *testing.T) {
	g := genGraph(t)
	reg, err := Generate(g, GenConfig{Seed: 7, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	adsOnly := 0
	for _, asn := range reg.ASNs() {
		p, _ := reg.Policy(asn)
		if (p.Country == "IE" || p.Country == "ES") && p.Epochs()[0].Categories == webcat.MakeSet(webcat.Ads) {
			adsOnly++
		}
	}
	if adsOnly == 0 {
		t.Error("no ad-vendor-only censors (paper: IE/ES censor only ad URLs)")
	}
}

// TestGeneratePolicyChangesDefaultUnchanged pins the byte-compatibility of
// the multi-change scheduler: PolicyChanges unset (default 1) and an
// explicit 1 must produce identical registries, epoch for epoch.
func TestGeneratePolicyChangesDefaultUnchanged(t *testing.T) {
	g := genGraph(t)
	implicit, err := Generate(g, GenConfig{Seed: 7, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Generate(g, GenConfig{Seed: 7, Start: start, End: end, PolicyChanges: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := implicit.ASNs(), explicit.ASNs()
	if len(a) != len(b) {
		t.Fatalf("censor counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("censor %d differs: %v vs %v", i, a[i], b[i])
		}
		pa, _ := implicit.Policy(a[i])
		pb, _ := explicit.Policy(b[i])
		ea, eb := pa.Epochs(), pb.Epochs()
		if len(ea) != len(eb) {
			t.Fatalf("%v: epoch counts differ: %d vs %d", a[i], len(ea), len(eb))
		}
		for j := range ea {
			if !ea[j].Start.Equal(eb[j].Start) || ea[j].Techniques != eb[j].Techniques || ea[j].Categories != eb[j].Categories {
				t.Fatalf("%v epoch %d differs: %+v vs %+v", a[i], j, ea[j], eb[j])
			}
		}
	}
}

// TestGeneratePolicyChangesMulti exercises the flap regime: with a high
// change probability and a raised cap, some censor must accumulate several
// chronological changes.
func TestGeneratePolicyChangesMulti(t *testing.T) {
	g := genGraph(t)
	reg, err := Generate(g, GenConfig{
		Seed: 8, Start: start, End: end,
		PolicyChangeProb: 0.95, PolicyChanges: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	most := 0
	for _, asn := range reg.ASNs() {
		p, _ := reg.Policy(asn)
		eps := p.Epochs()
		if n := len(eps) - 1; n > most {
			most = n
		}
		for j := 1; j < len(eps); j++ {
			if j > 1 && !eps[j-1].Start.Before(eps[j].Start) {
				t.Fatalf("%v: changes out of order: %v then %v", asn, eps[j-1].Start, eps[j].Start)
			}
			if eps[j].Start.Before(start) || !eps[j].Start.Before(end) {
				t.Fatalf("%v: change at %v outside window", asn, eps[j].Start)
			}
		}
	}
	if most < 2 {
		t.Errorf("no censor accumulated 2+ changes at prob 0.95 cap 4 (max %d)", most)
	}
}

// TestGeneratePolicyChangesDisabled pins the documented sentinel: a
// negative PolicyChangeProb yields a registry whose policies never change.
func TestGeneratePolicyChangesDisabled(t *testing.T) {
	g := genGraph(t)
	reg, err := Generate(g, GenConfig{Seed: 9, Start: start, End: end, PolicyChangeProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range reg.ASNs() {
		p, _ := reg.Policy(asn)
		if len(p.Epochs()) != 1 {
			t.Errorf("censor %v changed policy %d times with PolicyChangeProb -1",
				asn, len(p.Epochs())-1)
		}
	}
	// The negative PolicyChanges sentinel disables changes too.
	reg2, err := Generate(g, GenConfig{Seed: 9, Start: start, End: end, PolicyChanges: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range reg2.ASNs() {
		p, _ := reg2.Policy(asn)
		if len(p.Epochs()) != 1 {
			t.Errorf("censor %v changed policy %d times with PolicyChanges -1",
				asn, len(p.Epochs())-1)
		}
	}
}
