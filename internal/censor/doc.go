// Package censor models the adversary: ASes that deploy on-path injection
// middleboxes. A censoring AS has a policy — which anomaly-producing
// techniques it uses (DNS reply injection, RST injection, sequence-space
// data injection, TTL-anomalous duplicates, blockpage substitution), which
// URL categories it targets, and how that policy changes over time.
//
// Paper correspondence: the ground truth the paper lacked. Policy changes
// inside a CNF's time slice are one of the paper's two causes of
// unsolvable CNFs (§3.2), so the change schedule matters to the
// evaluation, not just to realism.
//
// Entry points: Generate places censors over a topology; Registry.ActiveOn
// answers "which censors act on this path for this category at this time",
// and Registry.Policy exposes ground truth for validation only.
//
// Invariants: policies are deterministic — a censor either always fires
// for a given (category, technique, time) or never does. Real policy
// engines are rule-based, and the paper's method implicitly depends on
// this (a censor that flipped coins would poison its own clauses).
// Measurement noise comes from the packet layer and the detectors instead.
// A generated Registry is immutable and safe for concurrent reads.
package censor
