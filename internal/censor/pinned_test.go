package censor

// Tests for GenConfig.PinnedASes — the structural placement hook the
// chokepoint regime uses.

import (
	"testing"
	"time"

	"churntomo/internal/topology"
)

func pinnedStack(t *testing.T, seed uint64) (*topology.Graph, GenConfig) {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: seed, ASes: 200, Countries: 20})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	return g, GenConfig{Seed: seed, Start: start, End: start.AddDate(0, 1, 0)}
}

// nonResolverASNs picks n distinct placeable ASNs from the graph.
func nonResolverASNs(g *topology.Graph, n int) []topology.ASN {
	out := make([]topology.ASN, 0, n)
	for i := range g.ASes {
		if g.ASes[i].ASN == topology.ResolverASN {
			continue
		}
		out = append(out, g.ASes[i].ASN)
		if len(out) == n {
			break
		}
	}
	return out
}

func TestGeneratePinnedExactSet(t *testing.T) {
	g, cfg := pinnedStack(t, 41)
	pins := nonResolverASNs(g, 5)
	// Non-nil empty Profiles + negative ExtraCountries: the registry is
	// exactly the pinned set.
	cfg.Profiles = []CountryProfile{}
	cfg.ExtraCountries = -1
	cfg.PinnedASes = pins
	reg, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != len(pins) {
		t.Fatalf("registry has %d censors, want exactly the %d pins: %v",
			reg.Len(), len(pins), reg.ASNs())
	}
	for _, asn := range pins {
		pol, ok := reg.Policy(asn)
		if !ok {
			t.Fatalf("pinned AS %v not in registry", asn)
		}
		if len(pol.Epochs()) == 0 {
			t.Errorf("pinned AS %v has no policy epochs", asn)
		}
		for _, ep := range pol.Epochs() {
			if ep.Techniques == 0 {
				t.Errorf("pinned AS %v epoch has no techniques", asn)
			}
			if ep.Categories == 0 {
				t.Errorf("pinned AS %v epoch blocks no categories", asn)
			}
		}
	}
}

func TestGeneratePinnedSkipsInvalid(t *testing.T) {
	g, cfg := pinnedStack(t, 42)
	valid := nonResolverASNs(g, 2)
	cfg.Profiles = []CountryProfile{}
	cfg.ExtraCountries = -1
	cfg.PinnedASes = []topology.ASN{
		valid[0],
		topology.ResolverASN,   // never censors
		topology.ASN(99999999), // unknown to the graph
		valid[0],               // duplicate of an already-placed pin
		valid[1],
	}
	reg, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("registry has %d censors, want 2 (resolver/unknown/duplicate skipped): %v",
			reg.Len(), reg.ASNs())
	}
	if _, ok := reg.Policy(topology.ResolverASN); ok {
		t.Error("resolver censoring despite the pin filter")
	}
}

func TestGeneratePinnedDeterministicAndAdditive(t *testing.T) {
	g, cfg := pinnedStack(t, 43)
	pins := nonResolverASNs(g, 3)
	cfg.Profiles = []CountryProfile{}
	cfg.ExtraCountries = -1
	cfg.PinnedASes = pins
	a, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aASNs, bASNs := a.ASNs(), b.ASNs()
	if len(aASNs) != len(bASNs) {
		t.Fatal("pinned generation not deterministic in size")
	}
	for i := range aASNs {
		if aASNs[i] != bASNs[i] {
			t.Fatal("pinned generation not deterministic in membership")
		}
	}

	// No pins is the byte-identical default path: the same config minus
	// PinnedASes must produce the same registry as before the field
	// existed — i.e. pins are purely additive after profiled placement.
	cfg2 := cfg
	cfg2.PinnedASes = nil
	empty, err := Generate(g, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("no-profile no-pin config generated %d censors", empty.Len())
	}
}
