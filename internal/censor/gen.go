package censor

import (
	"fmt"
	"math/rand/v2"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/topology"
	"churntomo/internal/webcat"
)

// CountryProfile declares how one country censors. Profiles steer the
// generator toward the paper's findings: China and Cyprus run every
// technique, the UK censors blockpage+TTL style, Singapore SEQ+TTL, Poland
// block/DNS/SEQ, and a few western European ASes censor only ad networks.
type CountryProfile struct {
	Country    string
	ASes       int         // how many censoring ASes to create there
	Techniques anomaly.Set // envelope; each AS draws a subset
	// PreferTransit places censors at transit/tier-1 ASes, the structural
	// precondition for cross-border leakage.
	PreferTransit bool
	// AllCategories makes every AS censor the whole test list (the
	// "Cyprus" behaviour in the paper).
	AllCategories bool
	// AdsOnly restricts targeting to the Ads category (the paper's
	// Ireland/Spain/UK ad-vendor censors).
	AdsOnly bool
	// CatMin/CatMax bound the number of targeted categories otherwise.
	CatMin, CatMax int
}

// DefaultProfiles mirrors the regional structure of the paper's Table 2 and
// Table 3: a dominant exporter (CN) censoring at transit, plus regional
// censors with distinctive technique subsets.
var DefaultProfiles = []CountryProfile{
	{Country: "CN", ASes: 6, Techniques: anomaly.AllKinds, PreferTransit: true, CatMin: 1, CatMax: 3},
	{Country: "GB", ASes: 6, Techniques: anomaly.MakeSet(anomaly.Block, anomaly.TTL), CatMin: 1, CatMax: 3},
	{Country: "SG", ASes: 4, Techniques: anomaly.MakeSet(anomaly.SEQ, anomaly.TTL), CatMin: 1, CatMax: 3},
	{Country: "PL", ASes: 3, Techniques: anomaly.MakeSet(anomaly.Block, anomaly.DNS, anomaly.SEQ), PreferTransit: true, CatMin: 1, CatMax: 3},
	{Country: "CY", ASes: 3, Techniques: anomaly.AllKinds, AllCategories: true},
	{Country: "SE", ASes: 1, Techniques: anomaly.MakeSet(anomaly.DNS, anomaly.RST, anomaly.SEQ, anomaly.TTL), PreferTransit: true, CatMin: 2, CatMax: 3},
	{Country: "UA", ASes: 1, Techniques: anomaly.MakeSet(anomaly.DNS, anomaly.RST, anomaly.SEQ, anomaly.Block), CatMin: 2, CatMax: 3},
	{Country: "AE", ASes: 1, Techniques: anomaly.MakeSet(anomaly.RST, anomaly.SEQ, anomaly.TTL, anomaly.Block), PreferTransit: true, CatMin: 2, CatMax: 4},
	{Country: "IE", ASes: 1, Techniques: anomaly.MakeSet(anomaly.Block), AdsOnly: true},
	{Country: "ES", ASes: 1, Techniques: anomaly.MakeSet(anomaly.Block), AdsOnly: true},
	{Country: "RU", ASes: 2, Techniques: anomaly.MakeSet(anomaly.DNS, anomaly.RST, anomaly.Block), PreferTransit: true, CatMin: 1, CatMax: 3},
	{Country: "JP", ASes: 1, Techniques: anomaly.MakeSet(anomaly.SEQ, anomaly.TTL), PreferTransit: true, CatMin: 1, CatMax: 2},
	{Country: "IR", ASes: 2, Techniques: anomaly.AllKinds, CatMin: 3, CatMax: 6},
	{Country: "TR", ASes: 2, Techniques: anomaly.MakeSet(anomaly.DNS, anomaly.Block), CatMin: 1, CatMax: 3},
	{Country: "PK", ASes: 1, Techniques: anomaly.MakeSet(anomaly.DNS, anomaly.Block), CatMin: 1, CatMax: 2},
	{Country: "IN", ASes: 1, Techniques: anomaly.MakeSet(anomaly.Block, anomaly.TTL), CatMin: 1, CatMax: 2},
	{Country: "SA", ASes: 1, Techniques: anomaly.MakeSet(anomaly.RST, anomaly.Block), CatMin: 1, CatMax: 3},
	{Country: "KR", ASes: 1, Techniques: anomaly.MakeSet(anomaly.DNS, anomaly.Block), CatMin: 1, CatMax: 2},
	{Country: "TH", ASes: 1, Techniques: anomaly.MakeSet(anomaly.Block, anomaly.TTL), CatMin: 1, CatMax: 2},
	{Country: "VN", ASes: 1, Techniques: anomaly.MakeSet(anomaly.RST, anomaly.TTL), CatMin: 1, CatMax: 2},
	{Country: "EG", ASes: 1, Techniques: anomaly.MakeSet(anomaly.RST), CatMin: 1, CatMax: 2},
	{Country: "MY", ASes: 1, Techniques: anomaly.MakeSet(anomaly.DNS), CatMin: 1, CatMax: 2},
}

// GenConfig parameterizes censor generation.
type GenConfig struct {
	Seed     uint64
	Profiles []CountryProfile // nil = DefaultProfiles

	// ExtraCountries adds this many randomly-chosen additional censoring
	// countries with one stub censor each, so the identified-censor count
	// spreads over ~30 countries like the paper's. Default 8; negative
	// means none (a regime that wants exactly its profiled censors).
	ExtraCountries int
	// PolicyChangeProb is the probability that a censor changes policy
	// during [Start, End). Default 0.35; negative means policies never
	// change (0 cannot express that — it selects the default). Changes
	// inside a time slice are the mechanism behind the paper's unsolvable
	// coarse-granularity CNFs.
	PolicyChangeProb float64
	// PolicyChanges caps how many mid-scenario changes one censor may
	// accumulate; each successive change is gated on PolicyChangeProb
	// again, so the count is geometrically distributed up to the cap.
	// Default 1 (the paper-baseline behaviour, byte for byte); negative
	// means none. Either negative sentinel disables changes; both alter
	// the RNG draw sequence relative to the default regime, so censor
	// placement is deterministic per config, not across configs.
	PolicyChanges int
	// Start and End bound the scenario (for scheduling policy changes).
	Start, End time.Time

	// PinnedASes places one censor at each listed AS, in list order, after
	// the profiled and extra-country placement. It is how a regime that
	// chooses its sites structurally (betweenness chokepoints, specific
	// border ASes) rather than by country expresses that choice; combined
	// with non-nil-empty Profiles and ExtraCountries < 0 the registry is
	// exactly the pinned set. ASNs absent from the topology, already
	// censoring, or naming the resolver are skipped. Pinned censors draw
	// from the full technique envelope with a broad 2-5 category mandate —
	// the chokepoint premise is a capable filter at a structural
	// bottleneck — except that tier-1 placements still never run DNS
	// injection (resolver-path injection from the transit core would
	// poison lookups far beyond any jurisdiction).
	PinnedASes []topology.ASN
}

func (c *GenConfig) fillDefaults() {
	if c.Profiles == nil {
		c.Profiles = DefaultProfiles
	}
	if c.ExtraCountries == 0 {
		c.ExtraCountries = 8
	}
	if c.PolicyChangeProb == 0 {
		c.PolicyChangeProb = 0.35
	}
	if c.PolicyChanges == 0 {
		c.PolicyChanges = 1
	}
}

// pcgStreamCensor is the censor-placement RNG stream word ("censor" in
// ASCII); stream words are module-unique, enforced by churnvet.
const pcgStreamCensor = 0x63656e736f72 // "censor"

// Generate places censors into the topology per the configuration. The same
// inputs always produce the same registry.
func Generate(g *topology.Graph, cfg GenConfig) (*Registry, error) {
	cfg.fillDefaults()
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("censor: start %v not before end %v", cfg.Start, cfg.End)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, pcgStreamCensor))
	reg := NewRegistry()
	blockpageID := 0

	// Index candidate ASes per country.
	transitByCountry := map[string][]int32{}
	stubByCountry := map[string][]int32{}
	var allCountries []string
	seenCountry := map[string]bool{}
	for i := range g.ASes {
		as := &g.ASes[i]
		if as.ASN == topology.ResolverASN {
			continue // never censor the resolver itself
		}
		switch as.Role {
		case topology.RoleTier1, topology.RoleTransit:
			transitByCountry[as.Country] = append(transitByCountry[as.Country], int32(i))
		default:
			stubByCountry[as.Country] = append(stubByCountry[as.Country], int32(i))
		}
		if !seenCountry[as.Country] {
			seenCountry[as.Country] = true
			allCountries = append(allCountries, as.Country)
		}
	}

	place := func(p CountryProfile) {
		transit := transitByCountry[p.Country]
		stubs := stubByCountry[p.Country]
		for n := 0; n < p.ASes; n++ {
			var idx int32 = -1
			pickTransit := p.PreferTransit && len(transit) > 0 && (len(stubs) == 0 || rng.Float64() < 0.75)
			switch {
			case pickTransit:
				k := rng.IntN(len(transit))
				idx, transit = transit[k], append(transit[:k:k], transit[k+1:]...)
			case len(stubs) > 0:
				k := rng.IntN(len(stubs))
				idx, stubs = stubs[k], append(stubs[:k:k], stubs[k+1:]...)
			case len(transit) > 0:
				k := rng.IntN(len(transit))
				idx, transit = transit[k], append(transit[:k:k], transit[k+1:]...)
			default:
				return // country absent from this topology scale
			}
			as := &g.ASes[idx]

			techs := drawTechniques(rng, p.Techniques)
			cats := drawCategories(rng, p)
			if as.Role == topology.RoleTier1 {
				// Backbone censors act under narrow mandates (single
				// category): a tier-1 carries a huge share of paths, and an
				// unconstrained policy there would censor a large fraction
				// of the whole measurement set — unlike anything observed.
				cats = webcat.MakeSet(tier1Categories[rng.IntN(len(tier1Categories))])
				// And no backbone runs DNS injection: resolver-path
				// injection from a transit core would poison half the
				// Internet's lookups, not a jurisdiction's.
				techs &^= anomaly.MakeSet(anomaly.DNS)
				if techs == 0 {
					techs = anomaly.MakeSet(anomaly.TTL)
				}
			}
			b := Behavior{
				InitTTL:   netTTL(rng),
				SeqSkew:   rng.Float64() < 0.7,
				InPath:    rng.Float64() < 0.75,
				MimicTTL:  rng.Float64() < 0.7,
				KillsConn: rng.Float64() < 0.6,
				Blockpage: blockpageID,
			}
			blockpageID++
			pol := NewPolicy(as.ASN, as.Country, b, techs, cats)
			schedulePolicyChanges(rng, pol, cfg)
			reg.Add(pol)
		}
		transitByCountry[p.Country] = transit
		stubByCountry[p.Country] = stubs
	}

	profiled := map[string]bool{}
	for _, p := range cfg.Profiles {
		place(p)
		profiled[p.Country] = true
	}

	// Extra censoring countries: one stub censor each, drawn from countries
	// without a profile.
	var pool []string
	for _, c := range allCountries {
		if !profiled[c] && (len(stubByCountry[c]) > 0 || len(transitByCountry[c]) > 0) {
			pool = append(pool, c)
		}
	}
	for n := 0; n < cfg.ExtraCountries && len(pool) > 0; n++ {
		k := rng.IntN(len(pool))
		country := pool[k]
		pool = append(pool[:k:k], pool[k+1:]...)
		kinds := []anomaly.Kind{anomaly.DNS, anomaly.RST, anomaly.SEQ, anomaly.TTL, anomaly.Block}
		t1 := kinds[rng.IntN(len(kinds))]
		t2 := kinds[rng.IntN(len(kinds))]
		place(CountryProfile{
			Country:    country,
			ASes:       1,
			Techniques: anomaly.MakeSet(t1, t2),
			CatMin:     1, CatMax: 2,
		})
	}

	// Pinned placements: a censor per listed AS, in list order.
	for _, asn := range cfg.PinnedASes {
		idx, ok := g.Index(asn)
		if !ok || asn == topology.ResolverASN {
			continue
		}
		if _, taken := reg.Policy(asn); taken {
			continue
		}
		as := &g.ASes[idx]
		techs := drawTechniques(rng, anomaly.AllKinds)
		cats := drawCategories(rng, CountryProfile{CatMin: 2, CatMax: 5})
		if as.Role == topology.RoleTier1 {
			techs &^= anomaly.MakeSet(anomaly.DNS)
			if techs == 0 {
				techs = anomaly.MakeSet(anomaly.TTL)
			}
		}
		b := Behavior{
			InitTTL:   netTTL(rng),
			SeqSkew:   rng.Float64() < 0.7,
			InPath:    rng.Float64() < 0.75,
			MimicTTL:  rng.Float64() < 0.7,
			KillsConn: rng.Float64() < 0.6,
			Blockpage: blockpageID,
		}
		blockpageID++
		pol := NewPolicy(as.ASN, as.Country, b, techs, cats)
		schedulePolicyChanges(rng, pol, cfg)
		reg.Add(pol)
	}
	return reg, nil
}

// drawTechniques picks a non-empty subset of the envelope: usually the full
// set (real deployments are products with fixed feature sets), sometimes a
// strict subset.
func drawTechniques(rng *rand.Rand, envelope anomaly.Set) anomaly.Set {
	if rng.Float64() < 0.6 {
		return envelope
	}
	members := envelope.Members()
	rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	keep := 1 + rng.IntN(len(members))
	return anomaly.MakeSet(members[:keep]...)
}

// drawCategories picks targeted categories, weighted toward the head of the
// category list (Shopping, Classifieds — the paper's most-censored).
func drawCategories(rng *rand.Rand, p CountryProfile) webcat.Set {
	if p.AllCategories {
		return webcat.AllCategories
	}
	if p.AdsOnly {
		return webcat.MakeSet(webcat.Ads)
	}
	lo, hi := p.CatMin, p.CatMax
	if lo <= 0 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	n := lo + rng.IntN(hi-lo+1)
	var s webcat.Set
	for s.Len() < n {
		// Geometric-ish head bias.
		c := webcat.Category(0)
		for c < webcat.NumCategories-1 && rng.Float64() < 0.72 {
			c++
		}
		s = s.Add(c)
	}
	return s
}

// tier1Categories are the narrow-mandate categories a backbone censor may
// filter (court-ordered gambling/adult blocking, ad-network filtering).
var tier1Categories = []webcat.Category{
	webcat.Gambling, webcat.Adult, webcat.Circumvention, webcat.Ads,
}

func netTTL(rng *rand.Rand) uint8 {
	if rng.Float64() < 0.55 {
		return 64 // mimics a Linux server
	}
	return 255 // maximizes delivery, maximally fingerprintable
}

// schedulePolicyChanges adds up to cfg.PolicyChanges mid-scenario policy
// changes, each independently gated on PolicyChangeProb and scheduled after
// the previous one so epochs stay chronological. The first iteration's draw
// sequence is exactly the historical single-change one, keeping default
// registries byte-identical.
func schedulePolicyChanges(rng *rand.Rand, p *Policy, cfg GenConfig) {
	span := float64(cfg.End.Sub(cfg.Start))
	// Keep changes away from the edges so every epoch gets measured. The
	// first window is written as 0.15 + 0.7*u — the historical expression,
	// not 0.85-0.15, whose float64 value differs in the last ulp.
	lo, width := 0.15, 0.7
	for i := 0; i < cfg.PolicyChanges; i++ {
		if rng.Float64() >= cfg.PolicyChangeProb {
			return
		}
		frac := lo + width*rng.Float64()
		applyPolicyChange(rng, p, cfg.Start.Add(time.Duration(frac*span)))
		lo, width = frac, 0.85-frac
	}
}

// applyPolicyChange appends one change at t: a category set tweak or a
// technique toggle relative to the epoch in force at t.
func applyPolicyChange(rng *rand.Rand, p *Policy, at time.Time) {
	e := p.EpochAt(at)
	techs, cats := e.Techniques, e.Categories

	switch rng.IntN(3) {
	case 0: // drop a category
		members := cats.Members()
		if len(members) > 1 {
			cats = webcat.MakeSet(members[:len(members)-1]...)
		} else {
			cats = cats.Add(webcat.Category(rng.IntN(int(webcat.NumCategories))))
		}
	case 1: // add a category
		cats = cats.Add(webcat.Category(rng.IntN(int(webcat.NumCategories))))
	default: // toggle a technique
		k := anomaly.Kind(rng.IntN(int(anomaly.NumKinds)))
		if techs.Has(k) && techs.Len() > 1 {
			techs &^= anomaly.MakeSet(k)
		} else {
			techs = techs.Add(k)
		}
	}
	p.AddChange(at, techs, cats)
}
