package censor

import (
	"sort"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/topology"
	"churntomo/internal/webcat"
)

// Behavior captures the packet-level fingerprint of a censor's injector.
type Behavior struct {
	// InitTTL is the IP TTL the middlebox uses for injected packets.
	// Boxes sending at 255 are trivially fingerprintable; boxes mimicking
	// the server's 64 are only caught when hop distances differ.
	InitTTL uint8
	// SeqSkew: RST/data injections guess the sequence number imperfectly,
	// producing overlaps or gaps (the SEQ anomaly signature).
	SeqSkew bool
	// InPath: the box can drop the real server's response when it injects
	// a blockpage (an in-path filter rather than an on-path injector).
	InPath bool
	// MimicTTL: sequence-space injections craft the TTL to imitate the real
	// server's arrival TTL; boxes without it are also TTL-fingerprintable.
	MimicTTL bool
	// KillsConn: blockpage boxes that follow the page with a RST burst.
	KillsConn bool
	// Blockpage selects the censor's blockpage template.
	Blockpage int
}

// Behavior fields are per-censor constants rather than per-measurement coin
// flips: a deployed middlebox's packet fingerprint is fixed firmware
// behaviour. Keeping it deterministic matters for the tomography — a censor
// whose detectability flip-flopped between measurements of the same path
// would make its own CNFs unsatisfiable.

// Epoch is one interval of constant policy.
type Epoch struct {
	Start      time.Time // zero time = since forever
	Techniques anomaly.Set
	Categories webcat.Set
}

// Policy is one censoring AS's full configuration.
type Policy struct {
	AS       topology.ASN
	Country  string
	Behavior Behavior

	// epochs are sorted by start time; the first entry has the zero Start.
	epochs []Epoch
}

// NewPolicy builds a policy with an initial epoch.
func NewPolicy(as topology.ASN, country string, b Behavior, techniques anomaly.Set, cats webcat.Set) *Policy {
	return &Policy{
		AS:       as,
		Country:  country,
		Behavior: b,
		epochs:   []Epoch{{Techniques: techniques, Categories: cats}},
	}
}

// AddChange schedules a policy change at t. Changes must be added in
// chronological order.
func (p *Policy) AddChange(t time.Time, techniques anomaly.Set, cats webcat.Set) {
	p.epochs = append(p.epochs, Epoch{Start: t, Techniques: techniques, Categories: cats})
}

// EpochAt returns the policy epoch in force at t.
func (p *Policy) EpochAt(t time.Time) Epoch {
	i := sort.Search(len(p.epochs), func(i int) bool { return p.epochs[i].Start.After(t) })
	if i == 0 {
		return p.epochs[0]
	}
	return p.epochs[i-1]
}

// Epochs returns the policy's epochs (shared; do not modify).
func (p *Policy) Epochs() []Epoch { return p.epochs }

// Changed reports whether the policy changes inside [from, to).
func (p *Policy) Changed(from, to time.Time) bool {
	for _, e := range p.epochs[1:] {
		if !e.Start.Before(from) && e.Start.Before(to) {
			return true
		}
	}
	return false
}

// Applies reports whether this censor fires technique k against category c
// at time t.
func (p *Policy) Applies(k anomaly.Kind, c webcat.Category, t time.Time) bool {
	e := p.EpochAt(t)
	return e.Techniques.Has(k) && e.Categories.Has(c)
}

// TechniquesEver unions the techniques across all epochs (what Table 2's
// "Anomalies" column reports).
func (p *Policy) TechniquesEver() anomaly.Set {
	var s anomaly.Set
	for _, e := range p.epochs {
		s |= e.Techniques
	}
	return s
}

// CategoriesEver unions the targeted categories across all epochs.
func (p *Policy) CategoriesEver() webcat.Set {
	var s webcat.Set
	for _, e := range p.epochs {
		s |= e.Categories
	}
	return s
}

// Registry holds every censor in a scenario. It doubles as the experiment's
// ground truth: the tomography never sees it, but validation compares
// identified censors against it.
type Registry struct {
	policies map[topology.ASN]*Policy
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{policies: make(map[topology.ASN]*Policy)}
}

// Add registers a policy, replacing any previous policy for the same AS.
func (r *Registry) Add(p *Policy) { r.policies[p.AS] = p }

// Policy returns the policy for an AS.
func (r *Registry) Policy(as topology.ASN) (*Policy, bool) {
	p, ok := r.policies[as]
	return p, ok
}

// Len returns the number of censoring ASes.
func (r *Registry) Len() int { return len(r.policies) }

// ASNs lists censoring ASes in ascending order.
func (r *Registry) ASNs() []topology.ASN {
	out := make([]topology.ASN, 0, len(r.policies))
	for a := range r.policies {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Active describes one censor found on a measurement's path, with the
// techniques it will fire for the given category and time.
type Active struct {
	ASN        topology.ASN
	PathIndex  int // position in the AS path (0 = vantage AS)
	Techniques anomaly.Set
	Policy     *Policy
}

// ActiveOn returns the censors on path that will act on category cat at
// time t, in path order. The returned Techniques are already filtered to
// the firing set.
func (r *Registry) ActiveOn(path []topology.ASN, cat webcat.Category, t time.Time) []Active {
	var out []Active
	for i, as := range path {
		p, ok := r.policies[as]
		if !ok {
			continue
		}
		e := p.EpochAt(t)
		if !e.Categories.Has(cat) || e.Techniques == 0 {
			continue
		}
		out = append(out, Active{ASN: as, PathIndex: i, Techniques: e.Techniques, Policy: p})
	}
	return out
}
