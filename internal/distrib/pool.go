package distrib

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Run.
type Options struct {
	// Procs is the worker process count; Run spawns at most
	// min(Procs, len(jobs)) processes. Must be >= 1.
	Procs int
	// Command is the worker argv: Command[0] is the binary, the rest its
	// arguments. The spawned process must speak the frame protocol on
	// stdin/stdout (see Serve).
	Command []string
	// OnEvent, when non-nil, receives every event frame a worker streams
	// for a job, as it arrives. Called concurrently from the per-process
	// driver goroutines; the callback must do its own serialization.
	OnEvent func(job int, payload []byte)
	// OnDone, when non-nil, receives each job's Outcome the moment it
	// settles — before Run returns, so observers see remote progress
	// live. Same concurrency contract as OnEvent.
	OnDone func(job int, out Outcome)
	// HelloTimeout bounds how long a freshly spawned process may take to
	// speak the hello frame before it is killed (a child that is not a
	// protocol worker might otherwise block the pool forever). 0 means
	// 30 seconds.
	HelloTimeout time.Duration
}

// Outcome is one job's terminal state: the worker's result payload, or
// the error that job ran into (*WorkerError after a crash-and-retry,
// *RemoteError for a worker-reported failure, or the context error).
type Outcome struct {
	Payload []byte
	Err     error
}

// WorkerError is a job that failed at the process layer — the worker
// crashed, wedged, or stopped speaking the protocol — on every attempt.
type WorkerError struct {
	Job      int
	Attempts int
	Err      error
	// Stderr is the tail of the last failed process's stderr.
	Stderr string
}

// Error implements error.
func (e *WorkerError) Error() string {
	msg := fmt.Sprintf("distrib: job %d failed after %d attempts: %v", e.Job, e.Attempts, e.Err)
	if e.Stderr != "" {
		msg += " (worker stderr: " + e.Stderr + ")"
	}
	return msg
}

// Unwrap exposes the underlying transport error.
func (e *WorkerError) Unwrap() error { return e.Err }

// RemoteError is a job-level failure reported by a live worker. The
// worker computed it deterministically, so it is never retried.
type RemoteError struct {
	Job int
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("distrib: job %d: %s", e.Job, e.Msg)
}

// Run dispatches every job to a pool of worker subprocesses and returns
// one Outcome per job, in job order. Scheduling is pull-based — each
// process's driver claims the next unclaimed job — so at most
// Options.Procs jobs are in flight and a slow job never blocks the
// others. A done ctx kills the worker processes, stops claiming, and
// returns the outcomes settled so far along with ctx.Err(); Run never
// hangs on a dead, wedged or silent child.
func Run(ctx context.Context, o Options, jobs [][]byte) ([]Outcome, error) {
	if o.Procs < 1 {
		return nil, fmt.Errorf("distrib: Procs is %d; the pool needs at least one worker process", o.Procs)
	}
	if len(o.Command) == 0 {
		return nil, fmt.Errorf("distrib: empty worker command")
	}
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = 30 * time.Second
	}
	outcomes := make([]Outcome, len(jobs))
	procs := o.Procs
	if procs > len(jobs) {
		procs = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	// One driver goroutine per worker process. This is raw-goroutine
	// territory by design — each driver owns one child process's whole
	// lifecycle (spawn, pipes, kill, reap) and the WaitGroup joins them
	// all before Run returns, so no goroutine outlives the call; the
	// churnvet goroutine analyzer sanctions this package alongside
	// internal/parallel for exactly this reason.
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := &driver{opts: &o, ctx: ctx}
			defer d.stop()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				outcomes[i] = d.runJob(i, jobs[i])
				if o.OnDone != nil {
					o.OnDone(i, outcomes[i])
				}
			}
		}()
	}
	//churnvet:ok ctxflow -- the Wait is bounded by cancellation already: every driver re-checks ctx.Err before each job and exits, and its deferred stop kills the child, so a done ctx unblocks this join rather than racing it
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return outcomes, err
	}
	return outcomes, nil
}

// driver owns one worker process and feeds it jobs sequentially.
type driver struct {
	opts *Options
	ctx  context.Context

	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout *bufio.Reader
	stderr *tailBuffer
}

// runJob executes one job with the crash-retry policy: a transport
// failure kills the process and retries once on a fresh one; a second
// failure settles the job as a *WorkerError. A frameFail from a live
// worker settles immediately as a *RemoteError (deterministic, not
// retried).
func (d *driver) runJob(job int, payload []byte) Outcome {
	var lastErr error
	const attempts = 2
	for a := 0; a < attempts; a++ {
		if err := d.ctx.Err(); err != nil {
			return Outcome{Err: err}
		}
		result, failMsg, err := d.tryJob(job, payload)
		if err == nil {
			if failMsg != nil {
				return Outcome{Err: &RemoteError{Job: job, Msg: string(failMsg)}}
			}
			return Outcome{Payload: result}
		}
		lastErr = err
		d.stop() // kill and reap; the next attempt spawns fresh
	}
	if err := d.ctx.Err(); err != nil {
		// The "crash" was our own kill-on-cancel; report the cancellation.
		return Outcome{Err: err}
	}
	return Outcome{Err: &WorkerError{Job: job, Attempts: attempts, Err: lastErr, Stderr: d.stderrTail()}}
}

// tryJob runs one attempt: ensure a live process, write the job frame,
// and pump frames until the job's result or fail frame. Any transport
// error is returned for the retry policy to handle.
func (d *driver) tryJob(job int, payload []byte) (result, failMsg []byte, err error) {
	if err := d.start(); err != nil {
		return nil, nil, err
	}
	if err := writeFrame(d.stdin, frameJob, uint32(job), payload); err != nil {
		return nil, nil, fmt.Errorf("writing job frame: %w", err)
	}
	for {
		typ, j, p, err := readFrame(d.stdout)
		if err != nil {
			return nil, nil, fmt.Errorf("reading frame: %w", err)
		}
		if int(j) != job {
			return nil, nil, fmt.Errorf("worker answered job %d while job %d was in flight", j, job)
		}
		switch typ {
		case frameEvent:
			if d.opts.OnEvent != nil {
				d.opts.OnEvent(job, p)
			}
		case frameResult:
			return p, nil, nil
		case frameFail:
			return nil, p, nil
		default:
			return nil, nil, fmt.Errorf("unexpected frame type %q", typ)
		}
	}
}

// start spawns the worker process if none is live and waits for its
// hello frame, bounded by HelloTimeout.
func (d *driver) start() error {
	if d.cmd != nil {
		return nil
	}
	cmd := exec.CommandContext(d.ctx, d.opts.Command[0], d.opts.Command[1:]...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	stderr := &tailBuffer{}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning worker %q: %w", d.opts.Command[0], err)
	}
	d.cmd, d.stdin, d.stderr = cmd, stdin, stderr
	d.stdout = bufio.NewReader(stdout)
	// A child that is not a protocol worker may never write a byte; the
	// timer converts that hang into a killed process and a retryable
	// spawn error. Process supervision is inherently wall-clock — the
	// timeout races a real child's startup, not anything seeded.
	//churnvet:ok errflow -- watchdog kill is best-effort: the process may already have exited, and the hello read below reports the real failure
	timer := time.AfterFunc(d.opts.HelloTimeout, func() { _ = cmd.Process.Kill() }) //churnvet:ok nondet -- process supervision needs a wall-clock watchdog: a non-worker child may never speak the hello frame, and the kill turns that hang into a retryable error; nothing deterministic reads this clock
	defer timer.Stop()
	typ, version, _, err := readFrame(d.stdout)
	if err != nil {
		d.stop()
		return fmt.Errorf("waiting for worker hello: %w", err)
	}
	if typ != frameHello {
		d.stop()
		return fmt.Errorf("worker opened with frame type %q, want hello", typ)
	}
	if version != Version {
		d.stop()
		return fmt.Errorf("worker speaks protocol version %d, coordinator %d (stale worker binary?)", version, Version)
	}
	return nil
}

// stop kills and reaps the current process, if any. Closing stdin first
// lets a healthy worker exit on EOF; the kill covers the rest.
func (d *driver) stop() {
	if d.cmd == nil {
		return
	}
	_ = d.stdin.Close()      //churnvet:ok errflow -- best-effort teardown: the pipe may already be closed by a dead child
	_ = d.cmd.Process.Kill() //churnvet:ok errflow -- best-effort teardown: kill of an already-exited process reports an error by design
	_ = d.cmd.Wait()         //churnvet:ok errflow -- the reap must run regardless of exit status; job-level errors were already captured from the frame protocol
	d.cmd, d.stdin, d.stdout = nil, nil, nil
}

// stderrTail returns the tail of the most recent process's stderr.
func (d *driver) stderrTail() string {
	if d.stderr == nil {
		return ""
	}
	return d.stderr.String()
}

// tailBuffer keeps the last stderrTailMax bytes written — enough of a
// crashed worker's stderr to diagnose it without unbounded growth.
type tailBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

const stderrTailMax = 8 << 10

// Write implements io.Writer.
func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf.Write(p)
	if t.buf.Len() > stderrTailMax {
		b := t.buf.Bytes()
		tail := append([]byte(nil), b[len(b)-stderrTailMax:]...)
		t.buf.Reset()
		t.buf.Write(tail)
	}
	return len(p), nil
}

// String returns the buffered tail, trimmed of trailing newlines.
func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(bytes.TrimRight(t.buf.Bytes(), "\n"))
}
