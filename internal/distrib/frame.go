package distrib

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The pipe protocol: every message between coordinator and worker is one
// frame — a 1-byte type, a big-endian uint32 job index, a big-endian
// uint32 payload length, then the payload. The worker speaks first with
// a hello frame carrying the protocol version in the index field (a
// version skew between a coordinator and a stale worker binary is a
// spawn error, not silent corruption); after that the coordinator writes
// one job frame at a time and reads event frames until a result or fail
// frame closes the job.

// Version is the frame protocol version, carried in the hello frame.
const Version = 1

// maxFrame bounds a frame payload; a length prefix beyond it means the
// child is not speaking the protocol (or the stream is corrupt), which
// the coordinator treats as a worker crash.
const maxFrame = 1 << 30

const (
	frameHello  byte = 'H' // worker → coordinator: protocol version in the index field
	frameJob    byte = 'J' // coordinator → worker: one job payload
	frameEvent  byte = 'E' // worker → coordinator: progress event for the in-flight job
	frameResult byte = 'R' // worker → coordinator: the job's result payload
	frameFail   byte = 'F' // worker → coordinator: the job's error message
)

// writeFrame writes one frame. The caller flushes any buffering.
func writeFrame(w io.Writer, typ byte, job uint32, payload []byte) error {
	var hdr [9]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:5], job)
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting oversized length prefixes.
func readFrame(r io.Reader) (typ byte, job uint32, payload []byte, err error) {
	var hdr [9]byte
	//churnvet:ok ctxflow -- pipe reads unblock when the peer dies or closes the pipe: the coordinator's cancellation path is killing the child (stop/CommandContext), and the worker side's is coordinator EOF
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	typ = hdr[0]
	job = binary.BigEndian.Uint32(hdr[1:5])
	n := binary.BigEndian.Uint32(hdr[5:9])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("distrib: frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	if n > 0 {
		payload = make([]byte, n)
		//churnvet:ok ctxflow -- same as the header read: process death or pipe close is the cancellation path for frame reads
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return typ, job, payload, nil
}
