// Package distrib is the multi-process executor behind WithDistributed:
// a coordinator-side process pool that dispatches opaque job payloads to
// worker subprocesses over length-prefixed pipe frames and collects one
// typed Outcome per job, in job order, regardless of which process ran
// what when.
//
// The package is deliberately payload-agnostic — jobs and results are
// []byte — so it sits below the churntomo root package in the import
// graph: the root package owns the job envelopes (Config + scenario
// spec, or a format-v1 dataset slice) and the worker-side execution
// (churntomo.ServeWorker wraps Serve), while distrib owns everything
// about processes: spawning, the frame protocol, bounded in-flight
// scheduling, crash-retry, stderr capture, and shutdown.
//
// Failure model: a transport-level failure (spawn error, broken pipe,
// short read, malformed frame — the signature of a crashed or wedged
// worker) kills the process, respawns a fresh one and retries the job
// exactly once; a second failure surfaces as a *WorkerError on that
// job's Outcome and the pool moves on. A job-level failure reported by a
// live worker (a frameFail frame) is deterministic, so it is never
// retried and surfaces as a *RemoteError. Neither aborts the other jobs,
// and a done context kills every worker process, so the pool cannot
// hang on a dead or silent child.
package distrib
