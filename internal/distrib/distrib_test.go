package distrib

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The pool is tested against real subprocesses: the test binary re-execs
// itself as a fake worker, with os.Args[1] selecting the failure mode.
// TestMain intercepts the re-exec before the testing framework parses
// flags.

const fakePrefix = "distrib-fake:"

func TestMain(m *testing.M) {
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], fakePrefix) {
		fakeWorkerMain(strings.TrimPrefix(os.Args[1], fakePrefix))
		return
	}
	os.Exit(m.Run())
}

func fakeWorkerMain(mode string) {
	switch mode {
	case "garbage":
		// Not a protocol worker at all: junk on stdout, then exit.
		os.Stdout.WriteString("this child does not speak the frame protocol\n")
		return
	case "badversion":
		bw := bufio.NewWriter(os.Stdout)
		_ = writeFrame(bw, frameHello, Version+41, nil)
		_ = bw.Flush()
		return
	case "silent":
		// Never speaks; the hello watchdog must kill it.
		time.Sleep(30 * time.Second)
		return
	}
	err := Serve(os.Stdin, os.Stdout, func(job int, payload []byte, emit func([]byte)) ([]byte, error) {
		switch mode {
		case "ok":
			emit([]byte("ev:" + string(payload)))
			return []byte("ok:" + string(payload)), nil
		case "fail":
			if string(payload) == "boom" {
				return nil, errors.New("deterministic job failure")
			}
			return payload, nil
		case "crash-once":
			// Crash exactly once per sentinel file: the retry attempt
			// (and every other job) finds the sentinel and succeeds.
			if strings.HasPrefix(string(payload), "crash") {
				sentinel := os.Args[2]
				if _, err := os.Stat(sentinel); err != nil {
					_ = os.WriteFile(sentinel, []byte("crashed"), 0o644)
					fmt.Fprintln(os.Stderr, "injected crash")
					os.Exit(2)
				}
			}
			return payload, nil
		case "crash-always":
			fmt.Fprintln(os.Stderr, "worker exploding")
			os.Exit(2)
		case "slow":
			time.Sleep(100 * time.Millisecond)
			return payload, nil
		}
		return nil, fmt.Errorf("unknown fake worker mode %q", mode)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fake worker:", err)
		os.Exit(1)
	}
}

// fakeCommand builds the re-exec argv for a fake worker mode.
func fakeCommand(t *testing.T, mode string, extra ...string) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return append([]string{exe, fakePrefix + mode}, extra...)
}

func TestRunOrderingAndEvents(t *testing.T) {
	t.Parallel()
	jobs := make([][]byte, 12)
	for i := range jobs {
		jobs[i] = []byte(fmt.Sprintf("job-%d", i))
	}
	var mu sync.Mutex
	events := map[int]string{}
	done := map[int]bool{}
	outs, err := Run(context.Background(), Options{
		Procs:   4,
		Command: fakeCommand(t, "ok"),
		OnEvent: func(job int, p []byte) {
			mu.Lock()
			events[job] = string(p)
			mu.Unlock()
		},
		OnDone: func(job int, out Outcome) {
			mu.Lock()
			done[job] = true
			mu.Unlock()
		},
	}, jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(jobs))
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("job %d: %v", i, out.Err)
		}
		if want := fmt.Sprintf("ok:job-%d", i); string(out.Payload) != want {
			t.Errorf("job %d payload %q, want %q (ordered merge broken)", i, out.Payload, want)
		}
		if want := fmt.Sprintf("ev:job-%d", i); events[i] != want {
			t.Errorf("job %d event %q, want %q", i, events[i], want)
		}
		if !done[i] {
			t.Errorf("job %d: OnDone never fired", i)
		}
	}
}

func TestRemoteErrorNotRetried(t *testing.T) {
	t.Parallel()
	jobs := [][]byte{[]byte("fine"), []byte("boom"), []byte("also-fine")}
	outs, err := Run(context.Background(), Options{Procs: 1, Command: fakeCommand(t, "fail")}, jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", outs[0].Err, outs[2].Err)
	}
	var re *RemoteError
	if !errors.As(outs[1].Err, &re) {
		t.Fatalf("job 1 error %v, want *RemoteError", outs[1].Err)
	}
	if re.Job != 1 || !strings.Contains(re.Msg, "deterministic job failure") {
		t.Errorf("RemoteError = %+v", re)
	}
	// Jobs 0..2 ran on one process (Procs: 1): the worker surviving the
	// fail frame is what let job 2 succeed after job 1's failure.
	if string(outs[2].Payload) != "also-fine" {
		t.Errorf("job 2 payload %q", outs[2].Payload)
	}
}

func TestCrashRetriesOnce(t *testing.T) {
	t.Parallel()
	sentinel := filepath.Join(t.TempDir(), "crashed-once")
	jobs := [][]byte{[]byte("a"), []byte("crash-me"), []byte("c")}
	outs, err := Run(context.Background(), Options{
		Procs:   1,
		Command: fakeCommand(t, "crash-once", sentinel),
	}, jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("job %d: %v (crash must be retried on a fresh process)", i, out.Err)
		}
		if string(out.Payload) != string(jobs[i]) {
			t.Errorf("job %d payload %q, want %q", i, out.Payload, jobs[i])
		}
	}
	if _, err := os.Stat(sentinel); err != nil {
		t.Fatalf("sentinel missing: the worker never crashed, so the retry path went untested")
	}
}

func TestCrashAlwaysSurfacesTypedError(t *testing.T) {
	t.Parallel()
	jobs := [][]byte{[]byte("x"), []byte("y")}
	outs, err := Run(context.Background(), Options{Procs: 1, Command: fakeCommand(t, "crash-always")}, jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, out := range outs {
		var we *WorkerError
		if !errors.As(out.Err, &we) {
			t.Fatalf("job %d error %v, want *WorkerError", i, out.Err)
		}
		if we.Job != i || we.Attempts != 2 {
			t.Errorf("job %d: WorkerError{Job: %d, Attempts: %d}, want one retry (2 attempts)", i, we.Job, we.Attempts)
		}
		if !strings.Contains(we.Stderr, "worker exploding") {
			t.Errorf("job %d: stderr tail %q missing the worker's dying words", i, we.Stderr)
		}
	}
}

func TestNonProtocolChild(t *testing.T) {
	t.Parallel()
	outs, err := Run(context.Background(), Options{Procs: 1, Command: fakeCommand(t, "garbage")}, [][]byte{[]byte("j")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var we *WorkerError
	if !errors.As(outs[0].Err, &we) {
		t.Fatalf("error %v, want *WorkerError", outs[0].Err)
	}
}

func TestVersionSkew(t *testing.T) {
	t.Parallel()
	outs, err := Run(context.Background(), Options{Procs: 1, Command: fakeCommand(t, "badversion")}, [][]byte{[]byte("j")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outs[0].Err == nil || !strings.Contains(outs[0].Err.Error(), "protocol version") {
		t.Fatalf("error %v, want a protocol version mismatch", outs[0].Err)
	}
}

func TestSilentChildKilledByHelloWatchdog(t *testing.T) {
	t.Parallel()
	start := time.Now()
	outs, err := Run(context.Background(), Options{
		Procs:        1,
		Command:      fakeCommand(t, "silent"),
		HelloTimeout: 200 * time.Millisecond,
	}, [][]byte{[]byte("j")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var we *WorkerError
	if !errors.As(outs[0].Err, &we) {
		t.Fatalf("error %v, want *WorkerError", outs[0].Err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Run took %v: the watchdog did not convert the silent child into an error", elapsed)
	}
}

func TestCancelKillsWorkers(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([][]byte, 30)
	for i := range jobs {
		jobs[i] = []byte(fmt.Sprintf("j%d", i))
	}
	// Cancel as soon as the first job settles, while the rest are queued
	// or in flight; Run must kill the workers and return promptly.
	firstDone := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	var outs []Outcome
	var err error
	go func() {
		defer close(done)
		outs, err = Run(ctx, Options{
			Procs:   2,
			Command: fakeCommand(t, "slow"),
			OnDone:  func(int, Outcome) { once.Do(func() { close(firstDone) }) },
		}, jobs)
	}()
	<-firstDone
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error %v, want context.Canceled", err)
	}
	settled := 0
	for _, out := range outs {
		if out.Err == nil && out.Payload != nil {
			settled++
		}
	}
	if settled == 0 {
		t.Error("no job settled before cancellation (OnDone fired, so at least one should have)")
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(context.Background(), Options{Procs: 0, Command: []string{"x"}}, nil); err == nil {
		t.Error("Procs 0 accepted")
	}
	if _, err := Run(context.Background(), Options{Procs: 1}, nil); err == nil {
		t.Error("empty command accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	payload := []byte("the payload")
	if err := writeFrame(&buf, frameResult, 7, payload); err != nil {
		t.Fatal(err)
	}
	typ, job, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameResult || job != 7 || !bytes.Equal(got, payload) {
		t.Errorf("round trip: typ %q job %d payload %q", typ, job, got)
	}
	// Empty payload round-trips as nil/empty.
	buf.Reset()
	if err := writeFrame(&buf, frameHello, Version, nil); err != nil {
		t.Fatal(err)
	}
	if typ, job, got, err = readFrame(&buf); err != nil || typ != frameHello || job != Version || len(got) != 0 {
		t.Errorf("empty round trip: typ %q job %d payload %q err %v", typ, job, got, err)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	t.Parallel()
	hdr := []byte{frameJob, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}
	if _, _, _, err := readFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized length prefix accepted")
	}
}

func TestServeRejectsNonJobFrame(t *testing.T) {
	t.Parallel()
	var in, out bytes.Buffer
	if err := writeFrame(&in, frameEvent, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	err := Serve(&in, &out, func(int, []byte, func([]byte)) ([]byte, error) { return nil, nil })
	if err == nil || !strings.Contains(err.Error(), "unexpected frame type") {
		t.Fatalf("Serve error %v, want unexpected-frame-type", err)
	}
	// EOF with no jobs is a clean shutdown.
	in.Reset()
	out.Reset()
	if err := Serve(&in, &out, func(int, []byte, func([]byte)) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("Serve on empty stream: %v", err)
	}
	// The hello frame must have been written even with no jobs.
	typ, version, _, err := readFrame(&out)
	if err != nil || typ != frameHello || version != Version {
		t.Fatalf("hello frame: typ %q version %d err %v", typ, version, err)
	}
}
