package distrib

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Serve runs the worker side of the frame protocol: write the hello
// frame, then loop reading job frames and executing them through run
// until the coordinator closes the pipe (EOF is a clean shutdown). run
// may stream progress through emit — each call becomes one event frame,
// flushed immediately so the coordinator observes it live — and returns
// the job's result payload, or an error that is reported back as a fail
// frame (the worker stays alive and serves the next job; deterministic
// job failures must not look like crashes).
func Serve(r io.Reader, w io.Writer, run func(job int, payload []byte, emit func(event []byte)) ([]byte, error)) error {
	br := bufio.NewReaderSize(r, 64<<10)
	bw := bufio.NewWriterSize(w, 64<<10)
	if err := writeFrame(bw, frameHello, Version, nil); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for {
		typ, job, payload, err := readFrame(br)
		if errors.Is(err, io.EOF) {
			return nil // coordinator closed the pipe: done
		}
		if err != nil {
			return fmt.Errorf("distrib: reading job frame: %w", err)
		}
		if typ != frameJob {
			return fmt.Errorf("distrib: unexpected frame type %q from coordinator", typ)
		}
		var emitErr error
		emit := func(ev []byte) {
			if emitErr != nil {
				return
			}
			if err := writeFrame(bw, frameEvent, job, ev); err != nil {
				emitErr = err
				return
			}
			emitErr = bw.Flush()
		}
		result, runErr := run(int(job), payload, emit)
		if emitErr != nil {
			return fmt.Errorf("distrib: streaming event: %w", emitErr)
		}
		if runErr != nil {
			err = writeFrame(bw, frameFail, job, []byte(runErr.Error()))
		} else {
			err = writeFrame(bw, frameResult, job, result)
		}
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			return fmt.Errorf("distrib: writing result frame: %w", err)
		}
	}
}
