package stream

import (
	"context"
	"fmt"
	"sort"

	"churntomo/internal/iclab"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
)

// Config parameterizes a streaming localization.
type Config struct {
	// Window is how many most-recent days each localization covers. 0 means
	// cumulative: every window starts at day 0 and only the end advances,
	// so the final window reproduces the batch pipeline exactly.
	Window int
	// Stride is how many days the window end advances between emitted
	// windows; default 1 (a window per day once the first fills).
	Stride int
	// MinCNFs is the per-window corroboration threshold handed to
	// tomo.IdentifyCensors; 0 means 1 (the paper's unfiltered behaviour).
	MinCNFs int
	// Build configures CNF construction: granularities, anomaly kinds and
	// the per-window solve parallelism (Build.Workers).
	Build tomo.BuildConfig
}

func (c *Config) fillDefaults() {
	if c.Stride <= 0 {
		c.Stride = 1
	}
	if c.MinCNFs <= 0 {
		c.MinCNFs = 1
	}
	if c.Window < 0 {
		c.Window = 0
	}
}

// Window is one emitted localization: the tomography result over the days
// [StartDay, EndDay], identical to what the batch pipeline would produce
// over the same records.
type Window struct {
	// Index is the window ordinal, 0-based in emission order.
	Index int
	// StartDay and EndDay are inclusive day ordinals (0 = first pushed day).
	StartDay, EndDay int

	Instances []*tomo.Instance
	Outcomes  []tomo.Outcome
	// Identified is the window's censor set at the configured MinCNFs.
	Identified map[topology.ASN]*tomo.IdentifiedCensor

	// Solved and Reused report the incremental engine's work split: CNFs
	// re-solved because a day boundary touched them versus CNFs served from
	// the previous window's cache.
	Solved, Reused int
}

// Engine ingests day batches of measurement records and emits sliding- or
// growing-window localizations. Feed it days in order with Push; whenever a
// pushed day completes the next window, Push returns that window's result.
//
// The engine is the streaming face of tomo.Incremental: days entering the
// window are folded into the live builder groups, days aging out retract
// their clause groups from the per-key solvers, and only the CNFs a
// boundary touched are re-solved. Determinism matches the batch engine: a
// replay at any Build.Workers setting produces identical windows.
type Engine struct {
	cfg        Config
	inc        *tomo.Incremental
	nextDay    int
	nextWindow int
	residentLo int   // lowest day ordinal still held by the builder
	nextID     int32 // record IDs, assigned exactly as iclab.MergeShards would
}

// NewEngine returns an engine with no days ingested.
func NewEngine(cfg Config) *Engine {
	cfg.fillDefaults()
	return &Engine{cfg: cfg, inc: tomo.NewIncremental(cfg.Build)}
}

// windowBounds returns the inclusive day range of window w.
func (e *Engine) windowBounds(w int) (start, end int) {
	if e.cfg.Window == 0 {
		return 0, (w+1)*e.cfg.Stride - 1
	}
	return w * e.cfg.Stride, w*e.cfg.Stride + e.cfg.Window - 1
}

// Push ingests the next day's records (day ordinals are implicit: the first
// call is day 0). Records are stamped with the global IDs the batch engine's
// merge would assign, in place. When the pushed day completes the next
// window, Push ages out any days that fell behind the window start, solves,
// and returns the window; otherwise it returns nil.
func (e *Engine) Push(records []iclab.Record) *Window {
	w, _ := e.PushCtx(context.Background(), records)
	return w
}

// PushCtx is Push with cooperative cancellation. The day's records are
// always ingested; only the window solve a completing day triggers is
// cancelable. On a non-nil error the day still counts as pushed but its
// window was not emitted — the engine's incremental state stays coherent
// (unsolved keys remain dirty), so a caller that keeps the engine can
// Flush later to recover the localization; callers abandoning the run just
// drop the engine.
func (e *Engine) PushCtx(ctx context.Context, records []iclab.Record) (*Window, error) {
	day := e.nextDay
	e.nextDay++
	for i := range records {
		records[i].ID = e.nextID
		e.nextID++
	}
	e.inc.AddDay(day, records)

	start, end := e.windowBounds(e.nextWindow)
	if day != end {
		return nil, ctx.Err()
	}
	return e.emit(ctx, start, end)
}

// emit ages out days behind start, solves, and packages the window
// [start, end] under the next ordinal — the single emission path shared by
// Push and Flush. On cancellation the window ordinal is not consumed.
func (e *Engine) emit(ctx context.Context, start, end int) (*Window, error) {
	for ; e.residentLo < start; e.residentLo++ {
		e.inc.RemoveDay(e.residentLo)
	}
	insts, outs, stats, err := e.inc.BuildAndSolveCtx(ctx)
	if err != nil {
		return nil, err
	}
	w := &Window{
		Index:    e.nextWindow,
		StartDay: start, EndDay: end,
		Instances:  insts,
		Outcomes:   outs,
		Identified: tomo.IdentifyCensors(outs, e.cfg.MinCNFs),
		Solved:     stats.Solved,
		Reused:     stats.Reused,
	}
	e.nextWindow++
	return w, nil
}

// Flush localizes any pushed days that no emitted window has covered yet —
// the tail left when the day count does not land on a window end. The
// returned window ends at the last pushed day and spans at most the
// configured width (cumulative flushes cover everything, so a cumulative
// replay's flushed final window always equals the batch result). Returns
// nil when the last emitted window already covers the last pushed day, or
// when nothing was pushed. Flush is an end-of-stream operation: it consumes
// the next window ordinal, so resuming Push afterwards continues emitting
// but the flushed window's day range will not realign with the stride grid.
func (e *Engine) Flush() *Window {
	w, _ := e.FlushCtx(context.Background())
	return w
}

// FlushCtx is Flush with cooperative cancellation; see PushCtx for the
// engine-state guarantees on a non-nil error.
func (e *Engine) FlushCtx(ctx context.Context) (*Window, error) {
	last := e.nextDay - 1
	if last < 0 {
		return nil, ctx.Err()
	}
	if e.nextWindow > 0 {
		if _, prevEnd := e.windowBounds(e.nextWindow - 1); prevEnd >= last {
			return nil, ctx.Err()
		}
	}
	start := 0
	if e.cfg.Window > 0 {
		if start = last - e.cfg.Window + 1; start < 0 {
			start = 0
		}
	}
	return e.emit(ctx, start, last)
}

// Days reports how many days have been pushed.
func (e *Engine) Days() int { return e.nextDay }

// String summarizes a window for progress output.
func (w *Window) String() string {
	return fmt.Sprintf("window %d [day %d..%d]: %d CNFs (%d solved, %d reused), %d censors",
		w.Index, w.StartDay, w.EndDay, len(w.Outcomes), w.Solved, w.Reused, len(w.Identified))
}

// Convergence describes how one censor's identification evolved across a
// window timeline — the streaming analogue of the paper's observation that
// localization sharpens as churn accumulates.
type Convergence struct {
	ASN topology.ASN
	// FirstWindow and LastWindow are the first and last window indices that
	// identified the AS.
	FirstWindow, LastWindow int
	// Windows counts how many windows identified the AS.
	Windows int
	// StableFrom is the earliest window index from which the AS is
	// identified in every subsequent window through the end of the
	// timeline, or -1 when the final window no longer identifies it. The
	// churn-convergence question "how many windows until this censor
	// stabilizes?" is answered by StableFrom+1.
	StableFrom int
}

// Converge folds a window timeline into per-censor convergence stats,
// sorted by ASN ascending.
func Converge(windows []*Window) []Convergence {
	stats := map[topology.ASN]*Convergence{}
	for wi, w := range windows {
		for asn := range w.Identified {
			c := stats[asn]
			if c == nil {
				c = &Convergence{ASN: asn, FirstWindow: wi, StableFrom: -1}
				stats[asn] = c
			}
			c.LastWindow = wi
			c.Windows++
		}
	}
	// An AS identified in the final window is stable from the start of its
	// trailing run of consecutive identifications.
	for _, c := range stats {
		if c.LastWindow != len(windows)-1 {
			continue
		}
		from := c.LastWindow
		for from > 0 {
			if _, ok := windows[from-1].Identified[c.ASN]; !ok {
				break
			}
			from--
		}
		c.StableFrom = from
	}
	out := make([]Convergence, 0, len(stats))
	for _, c := range stats {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}
