package stream

// Edge-case coverage for Converge: zero-day timelines, censors present
// from the very first window, censors that vanish before the end
// (StableFrom = -1), and single-window replays.

import (
	"reflect"
	"testing"

	"churntomo/internal/tomo"
	"churntomo/internal/topology"
)

func idSet(asns ...topology.ASN) map[topology.ASN]*tomo.IdentifiedCensor {
	m := map[topology.ASN]*tomo.IdentifiedCensor{}
	for _, a := range asns {
		m[a] = &tomo.IdentifiedCensor{ASN: a}
	}
	return m
}

func TestConvergeZeroDayTimeline(t *testing.T) {
	// A replay too short to emit any window: no stats, not a panic.
	if got := Converge(nil); len(got) != 0 {
		t.Errorf("Converge(nil) = %v, want empty", got)
	}
	if got := Converge([]*Window{}); len(got) != 0 {
		t.Errorf("Converge(empty) = %v, want empty", got)
	}
	// Windows that identified nothing produce no entries either — a
	// never-identified censor simply does not appear.
	empty := []*Window{{Index: 0, Identified: idSet()}, {Index: 1, Identified: idSet()}}
	if got := Converge(empty); len(got) != 0 {
		t.Errorf("empty windows produced %v", got)
	}
}

func TestConvergeCensorActiveFromDayOne(t *testing.T) {
	// Identified in every window from the first: stable from window 0.
	windows := []*Window{
		{Index: 0, Identified: idSet(5)},
		{Index: 1, Identified: idSet(5)},
		{Index: 2, Identified: idSet(5)},
	}
	got := Converge(windows)
	want := []Convergence{{ASN: 5, FirstWindow: 0, LastWindow: 2, Windows: 3, StableFrom: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Converge = %+v, want %+v", got, want)
	}
}

func TestConvergeUnstableCensor(t *testing.T) {
	// Identified early, gone by the final window: StableFrom must be -1
	// no matter how long the earlier run was.
	windows := []*Window{
		{Index: 0, Identified: idSet(5)},
		{Index: 1, Identified: idSet(5)},
		{Index: 2, Identified: idSet()},
	}
	got := Converge(windows)
	want := []Convergence{{ASN: 5, FirstWindow: 0, LastWindow: 1, Windows: 2, StableFrom: -1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Converge = %+v, want %+v", got, want)
	}
}

func TestConvergeSingleWindow(t *testing.T) {
	// One window is its own trailing run: stable from window 0; an AS
	// absent from it gets no entry at all.
	got := Converge([]*Window{{Index: 0, Identified: idSet(7)}})
	want := []Convergence{{ASN: 7, FirstWindow: 0, LastWindow: 0, Windows: 1, StableFrom: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Converge = %+v, want %+v", got, want)
	}
}

func TestConvergeInterruptedRun(t *testing.T) {
	// A gap resets the trailing run: stability dates from the window
	// after the last gap, not the first identification.
	windows := []*Window{
		{Index: 0, Identified: idSet(5)},
		{Index: 1, Identified: idSet()},
		{Index: 2, Identified: idSet(5)},
		{Index: 3, Identified: idSet(5)},
	}
	got := Converge(windows)
	want := []Convergence{{ASN: 5, FirstWindow: 0, LastWindow: 3, Windows: 3, StableFrom: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Converge = %+v, want %+v", got, want)
	}
}
