// Package stream is the windowed, incremental face of the localization
// pipeline: it ingests measurement records day by day and emits sliding-
// or growing-window tomography results, instead of re-solving the full
// record set from scratch.
//
// Paper correspondence: the paper's key observation is that localization
// sharpens as path churn accumulates over time (§4.2: more distinct paths
// per (vantage, URL) pair mean more distinct clauses per CNF). The batch
// pipeline exploits that only implicitly, by ingesting a year at once; a
// production system serving a live measurement feed must localize
// per window as days arrive. This package supplies that execution mode,
// and Converge quantifies the paper's sharpening directly: how many
// windows until each censor's identification stabilizes.
//
// Entry points: NewEngine configures the window shape (width, stride,
// per-window identification threshold); Engine.Push ingests one day and
// returns a Window whenever one completes; Converge folds a window
// timeline into per-censor convergence stats. churntomo.Runner.StreamSweep
// drives a whole scenario replay through an Engine.
//
// Invariants: every emitted Window is field-for-field identical to what
// the batch pipeline would produce over exactly the window's records —
// incrementality, like parallelism, never changes output (pinned by the
// stream and tomo equivalence tests). Replays are deterministic at every
// Build.Workers setting. Under the hood days enter and retract through
// tomo.Incremental, so a window boundary re-solves only the CNFs it
// touched; the Window's Solved/Reused counters expose that work split.
package stream
