package stream

import (
	"reflect"
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

// synthDay fabricates one day of records with day-dependent path churn and
// a persistent censor at AS 50.
func synthDay(day int) []iclab.Record {
	at := time.Date(2016, 5, 25, 9, 0, 0, 0, time.UTC).AddDate(0, 0, day)
	var recs []iclab.Record
	for u, url := range []string{"a.com", "b.com"} {
		for v := 0; v < 3; v++ {
			mid := topology.ASN(100 + (day+v)%4)
			dirty := []topology.ASN{topology.ASN(10 + v), mid, 50, topology.ASN(200 + u)}
			clean := []topology.ASN{topology.ASN(10 + v), mid, 60, topology.ASN(200 + u)}
			var kinds anomaly.Set
			if (day+u+v)%3 == 0 {
				kinds = anomaly.MakeSet(anomaly.DNS)
			}
			recs = append(recs,
				iclab.Record{Vantage: topology.ASN(10 + v), URL: url, At: at.Add(time.Duration(v) * time.Hour),
					ASPath: dirty, Anomalies: kinds, Fail: traceroute.OK},
				iclab.Record{Vantage: topology.ASN(10 + v), URL: url, At: at.Add(time.Duration(v+8) * time.Hour),
					ASPath: clean, Fail: traceroute.OK},
			)
		}
	}
	return recs
}

// TestEngineSlidingMatchesRebuild pins the streaming contract: every emitted
// window's outcomes equal a from-scratch batch solve over exactly the
// window's records.
func TestEngineSlidingMatchesRebuild(t *testing.T) {
	const days, window = 9, 3
	eng := NewEngine(Config{Window: window, Build: tomo.BuildConfig{Workers: 1}})
	var all [][]iclab.Record
	emitted := 0
	for day := 0; day < days; day++ {
		recs := synthDay(day)
		all = append(all, recs)
		w := eng.Push(recs)
		if day < window-1 {
			if w != nil {
				t.Fatalf("day %d emitted window before the first filled", day)
			}
			continue
		}
		if w == nil {
			t.Fatalf("day %d: no window emitted at stride boundary", day)
		}
		emitted++
		if w.StartDay != day-window+1 || w.EndDay != day {
			t.Fatalf("window %d bounds [%d..%d], want [%d..%d]", w.Index, w.StartDay, w.EndDay, day-window+1, day)
		}
		var flat []iclab.Record
		for _, d := range all[w.StartDay : w.EndDay+1] {
			flat = append(flat, d...)
		}
		_, want := tomo.BuildAndSolve(flat, tomo.BuildConfig{Workers: 1})
		if len(w.Outcomes) != len(want) {
			t.Fatalf("window %d: %d outcomes, rebuild has %d", w.Index, len(w.Outcomes), len(want))
		}
		for i := range want {
			g, b := w.Outcomes[i], want[i]
			if g.Inst.Key != b.Inst.Key || g.Class != b.Class ||
				!reflect.DeepEqual(g.Censors, b.Censors) ||
				!reflect.DeepEqual(g.Potential, b.Potential) ||
				g.Eliminated != b.Eliminated || g.TotalVars != b.TotalVars {
				t.Fatalf("window %d outcome %d (%v) differs from rebuild:\n got %+v\nwant %+v",
					w.Index, i, b.Inst.Key, g, b)
			}
		}
		if w.Index > 0 && w.Reused == 0 {
			t.Errorf("window %d reused nothing; incrementality inert", w.Index)
		}
	}
	if emitted != days-window+1 {
		t.Fatalf("emitted %d windows, want %d", emitted, days-window+1)
	}
}

// TestEngineCumulativeFinalMatchesBatch replays cumulatively and checks the
// final window against the batch pipeline over all records, including the
// identified-censor map and the record IDs the engine stamps.
func TestEngineCumulativeFinalMatchesBatch(t *testing.T) {
	const days = 8
	eng := NewEngine(Config{Window: 0, MinCNFs: 2, Build: tomo.BuildConfig{Workers: 1}})
	var shards [][]iclab.Record
	var last *Window
	for day := 0; day < days; day++ {
		recs := synthDay(day)
		shards = append(shards, recs)
		if w := eng.Push(recs); w != nil {
			last = w
		}
	}
	if last == nil || last.StartDay != 0 || last.EndDay != days-1 {
		t.Fatalf("final window %+v", last)
	}

	merged := iclab.MergeShards(shards)
	_, wantOuts := tomo.BuildAndSolve(merged, tomo.BuildConfig{Workers: 1})
	wantID := tomo.IdentifyCensors(wantOuts, 2)
	if !reflect.DeepEqual(last.Identified, wantID) {
		t.Fatalf("final cumulative window identified %v, batch identified %v", last.Identified, wantID)
	}

	// The engine stamped the same IDs MergeShards assigns.
	i := 0
	for _, sh := range shards {
		for _, r := range sh {
			if r.ID != merged[i].ID {
				t.Fatalf("record %d stamped ID %d, merge assigns %d", i, r.ID, merged[i].ID)
			}
			i++
		}
	}
}

// TestEngineStrideBounds pins window indexing with stride > 1.
func TestEngineStrideBounds(t *testing.T) {
	eng := NewEngine(Config{Window: 4, Stride: 2, Build: tomo.BuildConfig{Workers: 1}})
	var got [][2]int
	for day := 0; day < 10; day++ {
		if w := eng.Push(synthDay(day)); w != nil {
			got = append(got, [2]int{w.StartDay, w.EndDay})
		}
	}
	want := [][2]int{{0, 3}, {2, 5}, {4, 7}, {6, 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stride-2 windows %v, want %v", got, want)
	}
}

// TestEngineFlushCoversTail pins Flush: days the stride grid leaves
// uncovered are localized in one final partial window, and a flushed
// cumulative replay's last window equals the batch solve over all days.
func TestEngineFlushCoversTail(t *testing.T) {
	// Sliding: window 4, stride 3 over 9 days emits [0..3] and [3..6];
	// days 7-8 are the tail. Flush must cover them with a window ending at
	// day 8, at most 4 days wide.
	eng := NewEngine(Config{Window: 4, Stride: 3, Build: tomo.BuildConfig{Workers: 1}})
	var all [][]iclab.Record
	var emitted [][2]int
	for day := 0; day < 9; day++ {
		recs := synthDay(day)
		all = append(all, recs)
		if w := eng.Push(recs); w != nil {
			emitted = append(emitted, [2]int{w.StartDay, w.EndDay})
		}
	}
	fw := eng.Flush()
	if fw == nil || fw.StartDay != 5 || fw.EndDay != 8 {
		t.Fatalf("flush window %+v, want [5..8]", fw)
	}
	if eng.Flush() != nil {
		t.Fatal("second flush emitted a window")
	}
	var flat []iclab.Record
	for _, d := range all[5:9] {
		flat = append(flat, d...)
	}
	_, want := tomo.BuildAndSolve(flat, tomo.BuildConfig{Workers: 1})
	if len(fw.Outcomes) != len(want) {
		t.Fatalf("flush window has %d outcomes, rebuild has %d", len(fw.Outcomes), len(want))
	}

	// Cumulative with stride 2 over 7 days: emitted windows end at days
	// 1, 3, 5; the flushed final window must cover [0..6] — the batch
	// result — not stop at day 5.
	cum := NewEngine(Config{Window: 0, Stride: 2, MinCNFs: 2, Build: tomo.BuildConfig{Workers: 1}})
	flat = nil
	for day := 0; day < 7; day++ {
		recs := synthDay(day)
		flat = append(flat, recs...)
		cum.Push(recs)
	}
	fw = cum.Flush()
	if fw == nil || fw.StartDay != 0 || fw.EndDay != 6 {
		t.Fatalf("cumulative flush window %+v, want [0..6]", fw)
	}
	_, wantOuts := tomo.BuildAndSolve(flat, tomo.BuildConfig{Workers: 1})
	wantID := tomo.IdentifyCensors(wantOuts, 2)
	if !reflect.DeepEqual(fw.Identified, wantID) {
		t.Fatalf("flushed cumulative window identified %v, batch %v", fw.Identified, wantID)
	}

	// Aligned replays flush nothing.
	aligned := NewEngine(Config{Window: 3, Build: tomo.BuildConfig{Workers: 1}})
	for day := 0; day < 5; day++ {
		aligned.Push(synthDay(day))
	}
	if w := aligned.Flush(); w != nil {
		t.Fatalf("aligned replay flushed %+v", w)
	}
	if NewEngine(Config{Window: 3, Build: tomo.BuildConfig{Workers: 1}}).Flush() != nil {
		t.Fatal("empty engine flushed a window")
	}
}

// TestConverge pins the convergence stats on a hand-built timeline.
func TestConverge(t *testing.T) {
	id := func(asns ...topology.ASN) map[topology.ASN]*tomo.IdentifiedCensor {
		m := map[topology.ASN]*tomo.IdentifiedCensor{}
		for _, a := range asns {
			m[a] = &tomo.IdentifiedCensor{ASN: a}
		}
		return m
	}
	windows := []*Window{
		{Index: 0, Identified: id(7)},
		{Index: 1, Identified: id()},
		{Index: 2, Identified: id(7, 9)},
		{Index: 3, Identified: id(7, 9)},
	}
	got := Converge(windows)
	want := []Convergence{
		{ASN: 7, FirstWindow: 0, LastWindow: 3, Windows: 3, StableFrom: 2},
		{ASN: 9, FirstWindow: 2, LastWindow: 3, Windows: 2, StableFrom: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("convergence %+v, want %+v", got, want)
	}
}
