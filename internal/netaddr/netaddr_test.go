package netaddr

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestParseIPRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.0.0.1", "192.168.1.255", "255.255.255.255", "8.8.8.8"}
	for _, s := range cases {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if got := ip.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseIPInvalid(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", "01.2.3.4", "1..2.3"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestMakeIP(t *testing.T) {
	if got, want := MakeIP(10, 20, 30, 40), MustParseIP("10.20.30.40"); got != want {
		t.Errorf("MakeIP = %v, want %v", got, want)
	}
}

func TestPrefixParseAndContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseIP("10.1.255.255")) {
		t.Error("prefix should contain its broadcast address")
	}
	if p.Contains(MustParseIP("10.2.0.0")) {
		t.Error("prefix should not contain the next /16")
	}
	if got := p.String(); got != "10.1.0.0/16" {
		t.Errorf("String = %q", got)
	}
	if _, err := ParsePrefix("10.1.0.1/16"); err == nil {
		t.Error("host bits set should be rejected")
	}
	if _, err := ParsePrefix("10.1.0.0/33"); err == nil {
		t.Error("length 33 should be rejected")
	}
	if _, err := ParsePrefix("10.1.0.0"); err == nil {
		t.Error("missing slash should be rejected")
	}
	zero := MustParsePrefix("0.0.0.0/0")
	if !zero.Contains(MustParseIP("255.1.2.3")) {
		t.Error("default route should contain everything")
	}
}

func TestPrefixSplit(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	subs := p.Split(2)
	want := []string{"10.0.0.0/10", "10.64.0.0/10", "10.128.0.0/10", "10.192.0.0/10"}
	if len(subs) != len(want) {
		t.Fatalf("Split(2) returned %d prefixes, want %d", len(subs), len(want))
	}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("sub[%d] = %s, want %s", i, s, want[i])
		}
		if !p.Contains(s.Addr) {
			t.Errorf("sub %s not inside parent %s", s, p)
		}
	}
	for i := 0; i < len(subs); i++ {
		for j := i + 1; j < len(subs); j++ {
			if subs[i].Overlaps(subs[j]) {
				t.Errorf("siblings overlap: %s and %s", subs[i], subs[j])
			}
		}
	}
}

func TestPrefixNth(t *testing.T) {
	p := MustParsePrefix("192.168.4.0/24")
	if got := p.Nth(0); got != MustParseIP("192.168.4.0") {
		t.Errorf("Nth(0) = %v", got)
	}
	if got := p.Nth(255); got != MustParseIP("192.168.4.255") {
		t.Errorf("Nth(255) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range should panic")
		}
	}()
	p.Nth(256)
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap symmetrically")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 2)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 3)
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 99)

	cases := []struct {
		ip   string
		want int
	}{
		{"10.1.2.3", 3},
		{"10.1.9.9", 2},
		{"10.200.0.1", 1},
		{"8.8.8.8", 99},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseIP(c.ip))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %d,%v want %d", c.ip, got, ok, c.want)
		}
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("172.16.0.0/12"), "a")
	pfx, v, ok := tr.LookupPrefix(MustParseIP("172.20.1.1"))
	if !ok || v != "a" || pfx.String() != "172.16.0.0/12" {
		t.Errorf("LookupPrefix = %v,%q,%v", pfx, v, ok)
	}
	if _, _, ok := tr.LookupPrefix(MustParseIP("8.8.8.8")); ok {
		t.Error("miss should report !ok")
	}
}

func TestTrieEmptyAndDelete(t *testing.T) {
	var tr Trie[int]
	if _, ok := tr.Lookup(MustParseIP("1.2.3.4")); ok {
		t.Error("empty trie should miss")
	}
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 7)
	if !tr.Delete(p) {
		t.Error("Delete should report removal")
	}
	if tr.Delete(p) {
		t.Error("second Delete should report absence")
	}
	if _, ok := tr.Lookup(MustParseIP("10.0.0.1")); ok {
		t.Error("deleted prefix still matched")
	}
	if tr.Len() != 0 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
}

func TestTrieReplace(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if v, _ := tr.Get(p); v != 2 {
		t.Errorf("Get after replace = %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", tr.Len())
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ps := []string{"10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16", "0.0.0.0/0"}
	for i, s := range ps {
		tr.Insert(MustParsePrefix(s), i)
	}
	var seen []string
	tr.Walk(func(p Prefix, _ int) bool {
		seen = append(seen, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"}
	if len(seen) != len(want) {
		t.Fatalf("Walk visited %d, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("Walk[%d] = %s, want %s", i, seen[i], want[i])
		}
	}
	// Early stop.
	count := 0
	tr.Walk(func(Prefix, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early-stopped Walk visited %d, want 2", count)
	}
}

// Property: Lookup agrees with a linear scan over inserted prefixes.
func TestTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	type entry struct {
		p Prefix
		v int
	}
	var entries []entry
	var tr Trie[int]
	for i := 0; i < 300; i++ {
		bits := uint8(rng.IntN(25)) + 8
		p := MakePrefix(IP(rng.Uint32()), bits)
		entries = append(entries, entry{p, i})
		tr.Insert(p, i)
	}
	// Replace duplicates in the linear model the same way Insert does.
	model := map[Prefix]int{}
	for _, e := range entries {
		model[e.p] = e.v
	}
	for i := 0; i < 2000; i++ {
		ip := IP(rng.Uint32())
		bestBits := -1
		bestVal := 0
		for p, v := range model {
			if p.Contains(ip) && int(p.Bits) > bestBits {
				bestBits, bestVal = int(p.Bits), v
			}
		}
		got, ok := tr.Lookup(ip)
		if (bestBits >= 0) != ok {
			t.Fatalf("Lookup(%v) ok=%v, scan found=%v", ip, ok, bestBits >= 0)
		}
		if ok && got != bestVal {
			t.Fatalf("Lookup(%v) = %d, scan = %d", ip, got, bestVal)
		}
	}
}

// Property: masking is idempotent and Contains(Addr) always holds.
func TestPrefixProperties(t *testing.T) {
	f := func(addr uint32, bits uint8) bool {
		p := MakePrefix(IP(addr), bits%33)
		q := MakePrefix(p.Addr, p.Bits)
		return p == q && p.Contains(p.Addr) && p.Overlaps(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonBits(t *testing.T) {
	cases := []struct {
		a, b string
		want uint8
	}{
		{"10.0.0.0", "10.0.0.0", 32},
		{"10.0.0.0", "10.0.0.1", 31},
		{"10.0.0.0", "11.0.0.0", 7},
		{"0.0.0.0", "128.0.0.0", 0},
	}
	for _, c := range cases {
		if got := CommonBits(MustParseIP(c.a), MustParseIP(c.b)); got != c.want {
			t.Errorf("CommonBits(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	var tr Trie[int]
	for i := 0; i < 10000; i++ {
		tr.Insert(MakePrefix(IP(rng.Uint32()), uint8(rng.IntN(17))+8), i)
	}
	ips := make([]IP, 1024)
	for i := range ips {
		ips[i] = IP(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(ips[i&1023])
	}
}
