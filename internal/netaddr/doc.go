// Package netaddr provides compact IPv4 address and prefix types plus a
// generic longest-prefix-match trie, the substrate for the simulator's
// IP-to-AS mapping database and router address allocation.
//
// Entry points: MakeIP/ParseIP and MakePrefix/ParsePrefix construct the
// value types; Trie[V] offers Insert/Delete/Lookup/LookupPrefix for
// longest-prefix matching.
//
// Invariants: IP is a uint32 value type — the standard library's net.IP is
// a heap-allocated byte slice, and the simulator handles millions of
// addresses on hot paths (gopacket takes the same approach with its fixed
// Endpoint arrays for the same reason). Trie lookups are read-only and
// safe for concurrent readers once populated.
package netaddr
