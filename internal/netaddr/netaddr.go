package netaddr

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// MakeIP assembles an address from its four dotted-quad octets.
func MakeIP(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: invalid IPv4 %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: invalid IPv4 %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

// MustParseIP is ParseIP for constant inputs; it panics on error.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Prefix is a CIDR block: the Bits high-order bits of Addr.
type Prefix struct {
	Addr IP
	Bits uint8
}

// MakePrefix masks addr down to bits and returns the canonical prefix.
func MakePrefix(addr IP, bits uint8) Prefix {
	if bits > 32 {
		panic(fmt.Sprintf("netaddr: prefix length %d out of range", bits))
	}
	return Prefix{addr.mask(bits), bits}
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: missing '/' in prefix %q", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix length in %q", s)
	}
	p := Prefix{ip, uint8(bits)}
	if ip.mask(uint8(bits)) != ip {
		return Prefix{}, fmt.Errorf("netaddr: %q has host bits set", s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix for constant inputs; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (ip IP) mask(bits uint8) IP {
	if bits == 0 {
		return 0
	}
	return ip & IP(^uint32(0)<<(32-bits))
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return ip.mask(p.Bits) == p.Addr
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits <= q.Bits {
		return p.Contains(q.Addr)
	}
	return q.Contains(p.Addr)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.Bits) }

// Nth returns the i-th address inside the prefix (0 = network address).
// It panics if i is out of range.
func (p Prefix) Nth(i uint64) IP {
	if i >= p.NumAddrs() {
		panic(fmt.Sprintf("netaddr: address index %d out of range for %s", i, p))
	}
	return p.Addr + IP(i)
}

// Split divides the prefix into 2^extra equal sub-prefixes of length
// Bits+extra. It panics if the result would exceed /32.
func (p Prefix) Split(extra uint8) []Prefix {
	newBits := p.Bits + extra
	if newBits > 32 {
		panic(fmt.Sprintf("netaddr: cannot split %s by %d bits", p, extra))
	}
	n := 1 << extra
	out := make([]Prefix, n)
	step := IP(1) << (32 - newBits)
	for i := 0; i < n; i++ {
		out[i] = Prefix{p.Addr + IP(i)*step, newBits}
	}
	return out
}

// Trie maps prefixes to values with longest-prefix-match lookup, the same
// contract as a BGP RIB or the CAIDA IP-to-AS datasets. The zero value is an
// empty trie. V is the mapped value type (an AS number, typically).
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Insert associates p with v, replacing any previous value at exactly p.
func (t *Trie[V]) Insert(p Prefix, v V) {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for depth := uint8(0); depth < p.Bits; depth++ {
		b := (p.Addr >> (31 - depth)) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Delete removes the value at exactly p, reporting whether one was present.
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	for depth := uint8(0); n != nil && depth < p.Bits; depth++ {
		n = n.child[(p.Addr>>(31-depth))&1]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Lookup returns the value of the longest prefix containing ip.
func (t *Trie[V]) Lookup(ip IP) (V, bool) {
	var (
		best  V
		found bool
	)
	n := t.root
	for depth := 0; n != nil; depth++ {
		if n.set {
			best, found = n.val, true
		}
		if depth == 32 {
			break
		}
		n = n.child[(ip>>(31-depth))&1]
	}
	return best, found
}

// LookupPrefix is Lookup but also reports the matching prefix.
func (t *Trie[V]) LookupPrefix(ip IP) (Prefix, V, bool) {
	var (
		best      V
		bestDepth = -1
	)
	n := t.root
	for depth := 0; n != nil; depth++ {
		if n.set {
			best, bestDepth = n.val, depth
		}
		if depth == 32 {
			break
		}
		n = n.child[(ip>>(31-depth))&1]
	}
	if bestDepth < 0 {
		var zero V
		return Prefix{}, zero, false
	}
	return MakePrefix(ip, uint8(bestDepth)), best, true
}

// Get returns the value stored at exactly p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	for depth := uint8(0); n != nil && depth < p.Bits; depth++ {
		n = n.child[(p.Addr>>(31-depth))&1]
	}
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored (prefix, value) pair in address order, stopping
// early if fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	var walk func(n *trieNode[V], addr IP, depth uint8) bool
	walk = func(n *trieNode[V], addr IP, depth uint8) bool {
		if n == nil {
			return true
		}
		if n.set && !fn(Prefix{addr, depth}, n.val) {
			return false
		}
		if depth == 32 {
			return true
		}
		if !walk(n.child[0], addr, depth+1) {
			return false
		}
		return walk(n.child[1], addr+1<<(31-depth), depth+1)
	}
	walk(t.root, 0, 0)
}

// CommonBits returns the length of the longest common prefix of a and b,
// useful when carving address space hierarchically.
func CommonBits(a, b IP) uint8 {
	return uint8(bits.LeadingZeros32(uint32(a ^ b)))
}
