// Package tomo is the paper's primary contribution: boolean network
// tomography over censorship measurements (§3).
//
// Each usable measurement record contributes one clause: the disjunction
// of the ASes on its inferred AS-level path, asserted True when the
// record's anomaly fired and False otherwise (a False clause is the
// conjunction of the negated literals). Clauses are grouped into one CNF
// per (URL, time slice, anomaly kind) — day, week, month and year
// granularities — and solved. A unique model exactly identifies censoring
// ASes; multiple models still eliminate most ASes as definite non-censors;
// no model indicates measurement noise or a policy change inside the slice
// (§3.2's trichotomy).
//
// Entry points: Build constructs CNF Instances from records, BuildAndSolve
// streams solving into construction, Solve/SolveAll classify instances
// into Outcomes, and IdentifyCensors folds unique-solution outcomes into
// the named-censor map. NewIncremental is the streaming counterpart: day
// batches enter via AddDay, retract via RemoveDay, and
// Incremental.BuildAndSolve re-solves only the CNFs a batch touched,
// reusing per-key SAT state across windows.
//
// Invariants: construction is a commutative fold, so any record sharding
// reconstructs the serial grouping exactly, and output order is fixed
// (keyLess: URL, granularity, slice index, anomaly kind) at every worker
// count. The incremental engine's results are field-for-field identical to
// the batch engine's over the same resident records — the streaming
// determinism guarantee, pinned by TestIncrementalMatchesBatch. The
// tomography never reads ground-truth record fields.
package tomo
