package tomo

import (
	"math"
	"testing"

	"churntomo/internal/sat"
	"churntomo/internal/topology"
)

// TestReductionFracEdgeCases pins ReductionFrac's definition —
// Eliminated / TotalVars in [0, 1] — across its edge cases, including the
// zero-candidate CNF (0, not NaN) and full reduction.
func TestReductionFracEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		out  Outcome
		want float64
	}{
		{"zero candidates", Outcome{Class: sat.Multiple, Eliminated: 0, TotalVars: 0}, 0},
		{"no elimination", Outcome{Class: sat.Multiple, Eliminated: 0, TotalVars: 7}, 0},
		{"partial", Outcome{Class: sat.Multiple, Eliminated: 3, TotalVars: 4}, 0.75},
		{"full reduction", Outcome{Class: sat.Multiple, Eliminated: 5, TotalVars: 5}, 1},
		{"single candidate eliminated", Outcome{Class: sat.Multiple, Eliminated: 1, TotalVars: 1}, 1},
		{"unsat eliminates nothing", Outcome{Class: sat.Unsat, TotalVars: 9}, 0},
		{"unique eliminates nothing", Outcome{Class: sat.Unique, TotalVars: 9}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.out.ReductionFrac()
			if math.IsNaN(got) {
				t.Fatalf("ReductionFrac returned NaN")
			}
			if got != tc.want {
				t.Fatalf("ReductionFrac() = %v, want %v", got, tc.want)
			}
			if got < 0 || got > 1 {
				t.Fatalf("ReductionFrac() = %v outside [0,1]", got)
			}
		})
	}
}

// TestSolveNeverSetsEliminatedOutsideMultiple pins the population rule
// ReductionFrac's doc relies on: Unsat and Unique outcomes carry
// Eliminated == 0.
func TestSolveNeverSetsEliminatedOutsideMultiple(t *testing.T) {
	// Unique: single positive unit clause.
	uniq := &Instance{Key: Key{URL: "u"}, CNF: &sat.CNF{}, Vars: []topology.ASN{42}}
	uniq.CNF.AddClause(sat.Lit(1))
	if o := Solve(uniq); o.Class != sat.Unique || o.Eliminated != 0 {
		t.Fatalf("unique outcome: %+v", o)
	}
	// Unsat: x and not-x.
	uns := &Instance{Key: Key{URL: "u"}, CNF: &sat.CNF{}, Vars: []topology.ASN{42}}
	uns.CNF.AddClause(sat.Lit(1))
	uns.CNF.AddClause(sat.Lit(-1))
	if o := Solve(uns); o.Class != sat.Unsat || o.Eliminated != 0 {
		t.Fatalf("unsat outcome: %+v", o)
	}
}
