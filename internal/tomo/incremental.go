package tomo

// This file is the incremental CNF engine behind the streaming localizer
// (internal/stream). Where Build/BuildAndSolve fold the entire record set in
// one shot, Incremental ingests records in day-labelled batches, keeps the
// per-(URL, slice, kind) builder groups alive between solves, and re-solves
// only the groups a batch actually touched. A day entering a sliding window
// dirties just its own day slice plus the enclosing week/month/year slices;
// everything else is served from the previous window's cached outcome. SAT
// state is reused too: each key owns a long-lived sat.GroupSolver in which
// every day-batch is one assumption-gated clause group, so a day aging out
// of the window retracts by dropping out of the assumption set rather than
// by rebuilding the solver.
//
// The contract mirrors the batch engine exactly: after any sequence of
// AddDay/RemoveDay calls, BuildAndSolve returns the same instances and
// outcomes (field for field, in the same keyLess order) that the batch
// BuildAndSolve would return over the currently-held records. The streaming
// regression tests pin that equivalence.

import (
	"context"
	"sort"

	"churntomo/internal/iclab"
	"churntomo/internal/parallel"
	"churntomo/internal/sat"
	"churntomo/internal/topology"
)

// keySolver is one key's persistent SAT state: a GroupSolver whose clause
// groups are day batches, plus the monotone AS-to-variable interning shared
// by every window that touches the key.
type keySolver struct {
	gs     *sat.GroupSolver
	varOf  map[topology.ASN]int
	groups map[int]sat.Group // day batch -> clause group
	// retired counts groups made inert by RemoveDay. Their clauses stay in
	// the solver (assumption-based retraction never deletes), so once
	// retired groups dominate resident ones the whole keySolver is evicted
	// and rebuilt from the resident days — bounding a long replay's per-key
	// clause store to O(window) instead of O(history).
	retired int
}

func newKeySolver() *keySolver {
	return &keySolver{gs: sat.NewGroupSolver(), varOf: map[topology.ASN]int{}, groups: map[int]sat.Group{}}
}

func (ks *keySolver) intern(as topology.ASN) sat.Lit {
	v, ok := ks.varOf[as]
	if !ok {
		v = ks.gs.Var()
		ks.varOf[as] = v
	}
	return sat.Lit(int32(v))
}

// syncDay ensures the day batch's clauses exist as a group, returning it.
// Clause order is deterministic (sorted paths) so runs are reproducible.
func (ks *keySolver) syncDay(day int, grp *builderGroup) sat.Group {
	if g, ok := ks.groups[day]; ok {
		return g
	}
	g := ks.gs.NewGroup()
	ks.groups[day] = g
	negated := map[topology.ASN]bool{}
	for _, path := range sortedPaths(grp.neg) {
		for _, as := range path {
			if !negated[as] {
				negated[as] = true
				ks.gs.Add(g, ks.intern(as).Neg())
			}
		}
	}
	for _, path := range sortedPaths(grp.pos) {
		lits := make([]sat.Lit, 0, len(path))
		for _, as := range path {
			lits = append(lits, ks.intern(as))
		}
		ks.gs.Add(g, lits...)
	}
	return g
}

// keyState is everything Incremental holds for one CNF key.
type keyState struct {
	// days maps each resident day batch to its grouped contribution.
	days map[int]*builderGroup
	sol  *keySolver
	// inst/out cache the last solve; valid until the key is dirtied.
	inst   *Instance
	out    Outcome
	cached bool
}

// Incremental is the windowed counterpart of Build/BuildAndSolve. Records
// enter and leave in day-labelled batches; BuildAndSolve re-solves only the
// keys touched since the previous call and serves the rest from cache.
// Incremental is not safe for concurrent use, but BuildAndSolve itself
// parallelizes across keys.
type Incremental struct {
	cfg   BuildConfig
	keys  map[Key]*keyState
	dirty map[Key]bool
	// byDay indexes which keys hold each day batch's contribution, so
	// RemoveDay touches only the keys a day actually reached (its own day
	// slices plus enclosing week/month/year slices) instead of scanning
	// every resident key.
	byDay map[int][]Key
}

// NewIncremental returns an empty incremental builder. The config's
// granularities, kinds and negative-only handling match Build's; Workers
// bounds BuildAndSolve's per-key parallelism.
func NewIncremental(cfg BuildConfig) *Incremental {
	cfg.fillDefaults()
	return &Incremental{cfg: cfg, keys: map[Key]*keyState{}, dirty: map[Key]bool{}, byDay: map[int][]Key{}}
}

// AddDay ingests one day-labelled record batch. The label is the removal
// handle for RemoveDay; each label may be added once (re-adding after
// removal is allowed). Records are grouped exactly as Build groups them;
// every touched key is marked dirty.
func (inc *Incremental) AddDay(day int, records []iclab.Record) {
	for key, grp := range groupChunk(records, &inc.cfg) {
		st := inc.keys[key]
		if st == nil {
			st = &keyState{days: map[int]*builderGroup{}}
			inc.keys[key] = st
		}
		if _, dup := st.days[day]; dup {
			panic("tomo: AddDay called twice with the same day label")
		}
		st.days[day] = grp
		inc.dirty[key] = true
		// byDay is consumed strictly as a set: RemoveDay marks members
		// dirty and deletes them, and rebuilds walk the sorted key index,
		// so insertion order never reaches any output.
		inc.byDay[day] = append(inc.byDay[day], key) //churnvet:ok maporder -- byDay is a retraction set; order never escapes (RemoveDay marks dirty/deletes only)
	}
}

// RemoveDay retracts a previously added day batch. Keys left with no
// resident days are dropped entirely (their solver state is released); the
// rest are marked dirty. Removing an unknown label is a no-op.
func (inc *Incremental) RemoveDay(day int) {
	for _, key := range inc.byDay[day] {
		st := inc.keys[key]
		if st == nil {
			continue
		}
		if _, ok := st.days[day]; !ok {
			continue
		}
		delete(st.days, day)
		if len(st.days) == 0 {
			delete(inc.keys, key)
			delete(inc.dirty, key)
			continue
		}
		if st.sol != nil {
			// The group's clauses stay in the solver but become inert: the
			// next solve simply stops assuming the group's selector. A
			// re-added label gets a fresh group. Once inert groups pile up
			// past twice the resident days, drop the solver — the next solve
			// rebuilds it from resident days only, keeping a long replay's
			// per-key clause store proportional to the window, not history.
			if _, had := st.sol.groups[day]; had {
				delete(st.sol.groups, day)
				st.sol.retired++
				if st.sol.retired > 2*len(st.days)+8 {
					st.sol = nil
				}
			}
		}
		inc.dirty[key] = true
	}
	delete(inc.byDay, day)
}

// IncStats reports how much work one BuildAndSolve call actually did.
type IncStats struct {
	// Solved counts keys re-materialized and re-solved (dirty keys).
	Solved int
	// Reused counts keys served from the previous call's cache.
	Reused int
}

// solveKey re-materializes and re-solves one dirty key on its persistent
// solver state, refreshing the cache.
func (inc *Incremental) solveKey(key Key, st *keyState) {
	days := make([]int, 0, len(st.days))
	for d := range st.days {
		days = append(days, d)
	}
	sort.Ints(days)

	union := &builderGroup{pos: map[string][]topology.ASN{}, neg: map[string][]topology.ASN{}}
	for _, d := range days {
		c := st.days[d]
		union.n += c.n
		for pk, p := range c.pos {
			union.pos[pk] = p
		}
		for pk, p := range c.neg {
			union.neg[pk] = p
		}
	}
	inst := materialize(key, union)

	if st.sol == nil {
		st.sol = newKeySolver()
	}
	active := make([]sat.Group, 0, len(days))
	for _, d := range days {
		active = append(active, st.sol.syncDay(d, st.days[d]))
	}
	svars := make([]int, len(inst.Vars))
	for i, as := range inst.Vars {
		svars[i] = st.sol.varOf[as]
	}

	out := Outcome{Inst: inst, TotalVars: len(inst.Vars)}
	cls, model := st.sol.gs.ClassifyActive(active, svars)
	out.Class = cls
	switch cls {
	case sat.Unique:
		for i, as := range inst.Vars {
			if model[svars[i]] {
				out.Censors = append(out.Censors, as)
			}
		}
	case sat.Multiple:
		pot := st.sol.gs.PotentialTrueActive(active, svars)
		for i, as := range inst.Vars {
			if pot[i] {
				out.Potential = append(out.Potential, as)
			} else {
				out.Eliminated++
			}
		}
	}
	st.inst, st.out, st.cached = inst, out, true
}

// BuildAndSolve returns the instances and outcomes for the currently-held
// records, identical (and identically ordered) to the batch BuildAndSolve
// over the same records. Only keys dirtied since the previous call are
// re-solved — across a sliding-window replay that is the small minority of
// keys a day boundary touches — and the per-key work runs on cfg.Workers.
func (inc *Incremental) BuildAndSolve() ([]*Instance, []Outcome, IncStats) {
	insts, outs, stats, _ := inc.BuildAndSolveCtx(context.Background())
	return insts, outs, stats
}

// BuildAndSolveCtx is BuildAndSolve with cooperative cancellation: once ctx
// is done no further dirty key is re-solved and the call returns ctx.Err().
// Keys solved before the cancellation keep their refreshed caches and the
// remaining keys stay dirty, so a later call resumes exactly the leftover
// work — cancellation never corrupts the incremental state.
func (inc *Incremental) BuildAndSolveCtx(ctx context.Context) ([]*Instance, []Outcome, IncStats, error) {
	keys := make([]Key, 0, len(inc.keys))
	for key, st := range inc.keys {
		if !inc.hasSignal(st) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	var stats IncStats
	work := make([]Key, 0, len(inc.dirty))
	for _, key := range keys {
		if inc.dirty[key] || !inc.keys[key].cached {
			work = append(work, key)
		}
	}
	if err := parallel.ForEachCtx(ctx, inc.cfg.Workers, len(work), func(i int) {
		inc.solveKey(work[i], inc.keys[work[i]])
	}); err != nil {
		// Solved keys are cached but stay marked dirty; re-solving a clean
		// key is idempotent, so the next call just redoes a little work.
		return nil, nil, stats, err
	}
	stats.Solved = len(work)
	stats.Reused = len(keys) - len(work)
	inc.dirty = map[Key]bool{}

	insts := make([]*Instance, len(keys))
	outs := make([]Outcome, len(keys))
	for i, key := range keys {
		st := inc.keys[key]
		insts[i], outs[i] = st.inst, st.out
	}
	return insts, outs, stats, nil
}

// hasSignal applies the solvable-key filter: a key becomes a CNF only when
// some resident day observed a censored path, unless KeepNegativeOnly.
func (inc *Incremental) hasSignal(st *keyState) bool {
	if inc.cfg.KeepNegativeOnly {
		return true
	}
	for _, c := range st.days {
		if len(c.pos) > 0 {
			return true
		}
	}
	return false
}
