package tomo

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/parallel"
	"churntomo/internal/sat"
	"churntomo/internal/timeslice"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

// Key identifies one CNF instance.
type Key struct {
	URL   string
	Slice timeslice.Key
	Kind  anomaly.Kind
}

// Instance is one constructed CNF with its AS-to-variable interning and the
// provenance the leakage analysis needs.
type Instance struct {
	Key Key
	CNF *sat.CNF
	// Vars maps variable v (1-based) to Vars[v-1].
	Vars []topology.ASN

	// PositivePaths are the distinct AS paths of censored observations.
	PositivePaths [][]topology.ASN
	// NegativePaths are the distinct AS paths of clean observations.
	NegativePaths [][]topology.ASN
	// Measurements counts records folded into this CNF.
	Measurements int
}

// VarOf returns the CNF variable for an AS, or 0 if absent.
func (in *Instance) VarOf(as topology.ASN) int {
	for i, a := range in.Vars {
		if a == as {
			return i + 1
		}
	}
	return 0
}

// BuildConfig controls CNF construction.
type BuildConfig struct {
	// Granularities to build; nil = all four (day, week, month, year).
	Granularities []timeslice.Granularity
	// Kinds to build; nil = all five anomaly kinds.
	Kinds []anomaly.Kind
	// Workers bounds the parallelism of clause grouping, materialization
	// and (in BuildAndSolve) solving. 0 uses GOMAXPROCS, 1 forces serial
	// execution. The result is identical at any setting.
	Workers int
	// KeepNegativeOnly also materializes CNFs whose slice saw no anomaly at
	// all. Such CNFs are trivially unique (the all-False model) and carry
	// no localization signal, so by default only slices with at least one
	// censored observation become CNFs — matching the paper's Figure 4,
	// where removing churn collapses most CNFs to 5+ solutions (impossible
	// if anomaly-free CNFs dominated the population).
	KeepNegativeOnly bool
}

func (c *BuildConfig) fillDefaults() {
	if c.Granularities == nil {
		c.Granularities = timeslice.All
	}
	if c.Kinds == nil {
		c.Kinds = anomaly.Kinds
	}
}

// pathKeyer folds AS paths into comparable string keys, interning them for
// the lifetime of one grouping chunk. The scratch buffer is reused across
// calls and the map probe on a []byte-backed string is allocation-free, so
// a path seen before costs zero allocations — and measurement records
// repeat the same handful of paths thousands of times. Keys are the same
// big-endian byte strings the grouping always used, so sort order (and
// therefore clause order and every downstream result) is unchanged.
type pathKeyer struct {
	scratch []byte
	seen    map[string]string
}

func (pk *pathKeyer) key(p []topology.ASN) string {
	b := pk.scratch[:0]
	for _, a := range p {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	pk.scratch = b
	if s, ok := pk.seen[string(b)]; ok {
		return s
	}
	s := string(b)
	pk.seen[s] = s
	return s
}

// builderGroup accumulates one CNF's observations before materialization.
type builderGroup struct {
	pos map[string][]topology.ASN // distinct censored paths
	neg map[string][]topology.ASN // distinct clean paths
	n   int
}

// groupChunk folds one contiguous slice of records into per-key builder
// groups, applying the paper's record-elimination rules (already reflected
// in Record.Fail) and its time/URL/anomaly splitting. The path key is
// computed once per record — not once per (granularity, kind) cell — and
// interned across the chunk.
func groupChunk(records []iclab.Record, cfg *BuildConfig) map[Key]*builderGroup {
	groups := map[Key]*builderGroup{}
	keyer := pathKeyer{seen: map[string]string{}}
	for i := range records {
		r := &records[i]
		if r.Fail != traceroute.OK {
			continue // inconclusive path: eliminated (§3.1)
		}
		pk := keyer.key(r.ASPath)
		for _, g := range cfg.Granularities {
			slice := timeslice.KeyFor(g, r.At)
			for _, k := range cfg.Kinds {
				key := Key{URL: r.URL, Slice: slice, Kind: k}
				grp := groups[key]
				if grp == nil {
					grp = &builderGroup{pos: map[string][]topology.ASN{}, neg: map[string][]topology.ASN{}}
					groups[key] = grp
				}
				grp.n++
				if r.Anomalies.Has(k) {
					grp.pos[pk] = r.ASPath
				} else {
					grp.neg[pk] = r.ASPath
				}
			}
		}
	}
	return groups
}

// mergeGroups folds src into dst. Grouping is a commutative fold (distinct
// path sets union, measurement counts add), so merging record chunks in any
// order reconstructs exactly the serial grouping.
func mergeGroups(dst, src map[Key]*builderGroup) {
	for key, g := range src {
		d := dst[key]
		if d == nil {
			dst[key] = g
			continue
		}
		d.n += g.n
		for pk, p := range g.pos {
			d.pos[pk] = p
		}
		for pk, p := range g.neg {
			d.neg[pk] = p
		}
	}
}

// buildGroups shards the records across cfg.Workers, groups each shard
// independently, and merges the shard maps. Cancellation is honored at
// chunk granularity; on a non-nil error the partial grouping is discarded.
func buildGroups(ctx context.Context, records []iclab.Record, cfg *BuildConfig) (map[Key]*builderGroup, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Grouping a chunk is cheap; below this size the fan-out costs more
	// than it saves.
	const minChunk = 2048
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (len(records) + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		return groupChunk(records, cfg), nil
	}
	parts := make([]map[Key]*builderGroup, workers)
	chunk := (len(records) + workers - 1) / workers
	if err := parallel.ForEachCtx(ctx, workers, workers, func(w int) {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(records) {
			hi = len(records)
		}
		parts[w] = groupChunk(records[lo:hi], cfg)
	}); err != nil {
		return nil, err
	}
	groups := parts[0]
	for _, part := range parts[1:] {
		mergeGroups(groups, part)
	}
	return groups, nil
}

// keyLess is the deterministic instance order: URL, granularity, slice
// index, anomaly kind.
func keyLess(a, b Key) bool {
	if a.URL != b.URL {
		return a.URL < b.URL
	}
	if a.Slice.Gran != b.Slice.Gran {
		return a.Slice.Gran < b.Slice.Gran
	}
	if a.Slice.Index != b.Slice.Index {
		return a.Slice.Index < b.Slice.Index
	}
	return a.Kind < b.Kind
}

// solvableKeys lists the groups that become CNFs, in keyLess order.
func solvableKeys(groups map[Key]*builderGroup, cfg *BuildConfig) []Key {
	keys := make([]Key, 0, len(groups))
	for key, grp := range groups {
		if len(grp.pos) == 0 && !cfg.KeepNegativeOnly {
			continue
		}
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

// Build constructs CNF instances from measurement records. Grouping and
// materialization are sharded across cfg.Workers; the result is sorted
// deterministically and identical at any worker count.
func Build(records []iclab.Record, cfg BuildConfig) []*Instance {
	cfg.fillDefaults()
	//churnvet:ok ctxflow -- Build is the ctx-free kernel entry (benchmarks and the incremental solver call it synchronously); BuildAndSolveCtx is the cancellable path
	groups, _ := buildGroups(context.Background(), records, &cfg) //churnvet:ok errflow -- buildGroups can only fail through ctx cancellation, and Background never cancels
	keys := solvableKeys(groups, &cfg)
	out := make([]*Instance, len(keys))
	parallel.ForEach(cfg.Workers, len(keys), func(i int) {
		out[i] = materialize(keys[i], groups[keys[i]])
	})
	return out
}

// BuildAndSolve constructs and solves the CNFs in one streaming pass: the
// worker that materializes an instance solves it immediately, so solving
// starts as soon as the first CNF exists instead of waiting behind a global
// build barrier. Instances and outcomes are returned in the same order
// Build followed by SolveAll would produce, with outcome i belonging to
// instance i.
func BuildAndSolve(records []iclab.Record, cfg BuildConfig) ([]*Instance, []Outcome) {
	insts, outs, _ := BuildAndSolveCtx(context.Background(), records, cfg)
	return insts, outs
}

// buildSolveObserver, when non-nil, is called by BuildAndSolveCtx after
// each key's materialize and after its solve. It is a test seam pinning
// that solving streams into construction (each worker solves the CNF it
// just built before materializing the next) rather than waiting behind a
// global build barrier. Always nil outside tests; callbacks may run
// concurrently when Workers > 1.
var buildSolveObserver func(event string, key int)

// BuildAndSolveCtx is BuildAndSolve with cooperative cancellation: once ctx
// is done no further CNF is grouped, materialized or solved, and the call
// returns (nil, nil, ctx.Err()). The in-flight CNFs finish first, so
// cancellation latency is bounded by one solve.
func BuildAndSolveCtx(ctx context.Context, records []iclab.Record, cfg BuildConfig) ([]*Instance, []Outcome, error) {
	cfg.fillDefaults()
	groups, err := buildGroups(ctx, records, &cfg)
	if err != nil {
		return nil, nil, err
	}
	keys := solvableKeys(groups, &cfg)
	insts := make([]*Instance, len(keys))
	outs := make([]Outcome, len(keys))
	if err := parallel.ForEachCtx(ctx, cfg.Workers, len(keys), func(i int) {
		in := materialize(keys[i], groups[keys[i]])
		if buildSolveObserver != nil {
			buildSolveObserver("materialize", i)
		}
		insts[i] = in
		outs[i] = Solve(in)
		if buildSolveObserver != nil {
			buildSolveObserver("solve", i)
		}
	}); err != nil {
		return nil, nil, err
	}
	return insts, outs, nil
}

// matScratch is the reusable working state of materialize: the interning
// and negation maps are cleared (not reallocated) between instances, and
// the literal and key slices keep their capacity. Everything that outlives
// the call (the Instance, its Vars, the CNF) is still freshly allocated.
type matScratch struct {
	varOf   map[topology.ASN]int
	negated map[topology.ASN]bool
	lits    []sat.Lit
	keys    []string
}

var matScratchPool = sync.Pool{New: func() any {
	return &matScratch{varOf: map[topology.ASN]int{}, negated: map[topology.ASN]bool{}}
}}

// sortedKeys collects and sorts m's keys into the scratch key slice. Same
// ordering as sortedPaths; the returned slice is valid until the next call.
func (sc *matScratch) sortedKeys(m map[string][]topology.ASN) []string {
	keys := sc.keys[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sc.keys = keys
	return keys
}

// materialize turns accumulated paths into a CNF. Duplicate clauses are
// already deduplicated by distinct-path bookkeeping; conflicting
// observations of the same path (censored and clean) coexist and make the
// CNF unsatisfiable, which is the intended §3.2 semantics.
func materialize(key Key, grp *builderGroup) *Instance {
	in := &Instance{Key: key, CNF: &sat.CNF{}, Measurements: grp.n}
	sc := matScratchPool.Get().(*matScratch)
	clear(sc.varOf)
	clear(sc.negated)
	intern := func(as topology.ASN) sat.Lit {
		v, ok := sc.varOf[as]
		if !ok {
			v = len(in.Vars) + 1
			in.Vars = append(in.Vars, as)
			sc.varOf[as] = v
		}
		return sat.Lit(int32(v))
	}

	// Deterministic clause order: sort path keys. Negative paths expand to
	// unit clauses; an AS negated by several clean paths still needs only
	// one unit clause.
	in.NegativePaths = make([][]topology.ASN, 0, len(grp.neg))
	for _, k := range sc.sortedKeys(grp.neg) {
		path := grp.neg[k]
		in.NegativePaths = append(in.NegativePaths, path)
		for _, as := range path {
			if !sc.negated[as] {
				sc.negated[as] = true
				in.CNF.AddClause(intern(as).Neg())
			}
		}
	}
	in.PositivePaths = make([][]topology.ASN, 0, len(grp.pos))
	for _, k := range sc.sortedKeys(grp.pos) {
		path := grp.pos[k]
		in.PositivePaths = append(in.PositivePaths, path)
		lits := sc.lits[:0]
		for _, as := range path {
			lits = append(lits, intern(as))
		}
		sc.lits = lits
		in.CNF.AddClause(lits...)
	}
	matScratchPool.Put(sc)
	return in
}

func sortedPaths(m map[string][]topology.ASN) [][]topology.ASN {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]topology.ASN, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Outcome is the solved result for one instance (§3.2's trichotomy).
type Outcome struct {
	Inst  *Instance
	Class sat.Classification

	// Censors holds the True-assigned ASes of a unique solution.
	Censors []topology.ASN
	// Potential holds, for multi-solution CNFs, the ASes not False in every
	// model (the paper's potential censors).
	Potential []topology.ASN
	// Eliminated counts definite non-censors in the multi-solution case.
	Eliminated int
	// TotalVars is the number of distinct ASes in the CNF.
	TotalVars int
}

// ReductionFrac returns the candidate-set reduction fraction for
// multi-solution CNFs (Figure 2's quantity): Eliminated / TotalVars, the
// fraction of the CNF's candidate ASes proven definite non-censors.
//
// Units and range: a dimensionless fraction in [0, 1]. 0 means no
// candidate was eliminated (every AS in the CNF is still a potential
// censor — Figure 2's "no elimination" mass); 1 would mean every candidate
// was eliminated, which cannot arise from a Multiple outcome (some
// variable is True in some model) and so only appears in degenerate
// hand-built outcomes. A CNF with zero candidates (TotalVars == 0)
// reports 0 rather than NaN.
//
// The quantity is only meaningful for Class == sat.Multiple: Unique
// outcomes identify censors exactly (reduction is moot) and Unsat
// outcomes eliminate nothing. For other classes the method returns
// whatever Eliminated/TotalVars hold — 0 under Solve's population rules,
// which never set Eliminated outside the Multiple case.
func (o Outcome) ReductionFrac() float64 {
	if o.TotalVars == 0 {
		return 0
	}
	return float64(o.Eliminated) / float64(o.TotalVars)
}

// Solve classifies one instance and extracts censors or potential censors.
func Solve(in *Instance) Outcome {
	out := Outcome{Inst: in, TotalVars: len(in.Vars)}
	cls, model := sat.Classify(in.CNF)
	out.Class = cls
	switch cls {
	case sat.Unique:
		for v := 1; v <= in.CNF.NumVars; v++ {
			if model[v] {
				out.Censors = append(out.Censors, in.Vars[v-1])
			}
		}
	case sat.Multiple:
		pot := sat.PotentialTrue(in.CNF)
		for v := 1; v <= in.CNF.NumVars; v++ {
			if pot[v] {
				out.Potential = append(out.Potential, in.Vars[v-1])
			} else {
				out.Eliminated++
			}
		}
	}
	return out
}

// SolveAll solves every instance concurrently, preserving input order.
// Callers that also build the instances should prefer BuildAndSolve, which
// streams solving into construction.
func SolveAll(insts []*Instance) []Outcome {
	out := make([]Outcome, len(insts))
	parallel.ForEach(0, len(insts), func(i int) {
		out[i] = Solve(insts[i])
	})
	return out
}

// IdentifiedCensor aggregates everything learned about one censoring AS
// from unique-solution CNFs.
type IdentifiedCensor struct {
	ASN   topology.ASN
	Kinds anomaly.Set // anomaly kinds the AS was identified for
	URLs  map[string]bool
	CNFs  int // unique-solution CNFs naming this AS
}

// IdentifyCensors unions the censors named by unique-solution outcomes —
// the paper's headline "65 censoring ASes" set. Only outcomes with
// Class == sat.Unique contribute; Multiple outcomes' potential censors and
// Unsat outcomes never name anyone.
//
// minCNFs is the corroboration threshold, counted in unique-solution CNFs
// naming the AS (the IdentifiedCensor.CNFs field): an AS enters the result
// only when at least minCNFs distinct (URL, time slice, anomaly kind) CNFs
// each have it in their unique model. The threshold filters one-off
// identifications: measurement noise occasionally fabricates a unique
// solution blaming an innocent AS, but real censors are re-identified
// across many slices and URLs; requiring at least minCNFs corroborating
// CNFs (2 is a good default; the full pipeline uses 8) removes most
// fabrications. Pass 1 (or anything <= 1) for the paper's unfiltered
// behaviour, where a single CNF suffices.
//
// The boundary is inclusive: an AS whose corroboration count equals
// minCNFs exactly is kept — the threshold reads "at least minCNFs", not
// "more than". Pinned by TestIdentifyCensorsThresholdBoundary.
func IdentifyCensors(outcomes []Outcome, minCNFs int) map[topology.ASN]*IdentifiedCensor {
	found := map[topology.ASN]*IdentifiedCensor{}
	for _, o := range outcomes {
		if o.Class != sat.Unique {
			continue
		}
		for _, as := range o.Censors {
			c := found[as]
			if c == nil {
				c = &IdentifiedCensor{ASN: as, URLs: map[string]bool{}}
				found[as] = c
			}
			c.Kinds = c.Kinds.Add(o.Inst.Key.Kind)
			c.URLs[o.Inst.Key.URL] = true
			c.CNFs++
		}
	}
	for asn, c := range found {
		if c.CNFs < minCNFs {
			delete(found, asn)
		}
	}
	return found
}
