// Package tomo is the paper's primary contribution: boolean network
// tomography over censorship measurements (§3).
//
// Each usable measurement record contributes one clause: the disjunction of
// the ASes on its inferred AS-level path, asserted True when the record's
// anomaly fired and False otherwise (a False clause is the conjunction of
// the negated literals). Clauses are grouped into one CNF per (URL, time
// slice, anomaly kind) — day, week, month and year granularities — and
// solved. A unique model exactly identifies censoring ASes; multiple models
// still eliminate most ASes as definite non-censors; no model indicates
// measurement noise or a policy change inside the slice.
package tomo

import (
	"runtime"
	"sort"
	"sync"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/sat"
	"churntomo/internal/timeslice"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

// Key identifies one CNF instance.
type Key struct {
	URL   string
	Slice timeslice.Key
	Kind  anomaly.Kind
}

// Instance is one constructed CNF with its AS-to-variable interning and the
// provenance the leakage analysis needs.
type Instance struct {
	Key Key
	CNF *sat.CNF
	// Vars maps variable v (1-based) to Vars[v-1].
	Vars []topology.ASN

	// PositivePaths are the distinct AS paths of censored observations.
	PositivePaths [][]topology.ASN
	// NegativePaths are the distinct AS paths of clean observations.
	NegativePaths [][]topology.ASN
	// Measurements counts records folded into this CNF.
	Measurements int
}

// VarOf returns the CNF variable for an AS, or 0 if absent.
func (in *Instance) VarOf(as topology.ASN) int {
	for i, a := range in.Vars {
		if a == as {
			return i + 1
		}
	}
	return 0
}

// BuildConfig controls CNF construction.
type BuildConfig struct {
	// Granularities to build; nil = all four (day, week, month, year).
	Granularities []timeslice.Granularity
	// Kinds to build; nil = all five anomaly kinds.
	Kinds []anomaly.Kind
	// KeepNegativeOnly also materializes CNFs whose slice saw no anomaly at
	// all. Such CNFs are trivially unique (the all-False model) and carry
	// no localization signal, so by default only slices with at least one
	// censored observation become CNFs — matching the paper's Figure 4,
	// where removing churn collapses most CNFs to 5+ solutions (impossible
	// if anomaly-free CNFs dominated the population).
	KeepNegativeOnly bool
}

func (c *BuildConfig) fillDefaults() {
	if c.Granularities == nil {
		c.Granularities = timeslice.All
	}
	if c.Kinds == nil {
		c.Kinds = anomaly.Kinds
	}
}

// pathKey folds an AS path into a comparable string key.
func pathKey(p []topology.ASN) string {
	b := make([]byte, 0, len(p)*4)
	for _, a := range p {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return string(b)
}

// builderGroup accumulates one CNF's observations before materialization.
type builderGroup struct {
	pos map[string][]topology.ASN // distinct censored paths
	neg map[string][]topology.ASN // distinct clean paths
	n   int
}

// Build constructs CNF instances from measurement records, applying the
// paper's record-elimination rules (already reflected in Record.Fail) and
// its time/URL/anomaly splitting. The result is sorted deterministically.
func Build(records []iclab.Record, cfg BuildConfig) []*Instance {
	cfg.fillDefaults()
	groups := map[Key]*builderGroup{}
	for i := range records {
		r := &records[i]
		if r.Fail != traceroute.OK {
			continue // inconclusive path: eliminated (§3.1)
		}
		for _, g := range cfg.Granularities {
			slice := timeslice.KeyFor(g, r.At)
			for _, k := range cfg.Kinds {
				key := Key{URL: r.URL, Slice: slice, Kind: k}
				grp := groups[key]
				if grp == nil {
					grp = &builderGroup{pos: map[string][]topology.ASN{}, neg: map[string][]topology.ASN{}}
					groups[key] = grp
				}
				grp.n++
				if r.Anomalies.Has(k) {
					grp.pos[pathKey(r.ASPath)] = r.ASPath
				} else {
					grp.neg[pathKey(r.ASPath)] = r.ASPath
				}
			}
		}
	}

	out := make([]*Instance, 0, len(groups))
	for key, grp := range groups {
		if len(grp.pos) == 0 && !cfg.KeepNegativeOnly {
			continue
		}
		out = append(out, materialize(key, grp))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.URL != b.URL {
			return a.URL < b.URL
		}
		if a.Slice.Gran != b.Slice.Gran {
			return a.Slice.Gran < b.Slice.Gran
		}
		if a.Slice.Index != b.Slice.Index {
			return a.Slice.Index < b.Slice.Index
		}
		return a.Kind < b.Kind
	})
	return out
}

// materialize turns accumulated paths into a CNF. Duplicate clauses are
// already deduplicated by distinct-path bookkeeping; conflicting
// observations of the same path (censored and clean) coexist and make the
// CNF unsatisfiable, which is the intended §3.2 semantics.
func materialize(key Key, grp *builderGroup) *Instance {
	in := &Instance{Key: key, CNF: &sat.CNF{}, Measurements: grp.n}
	varOf := map[topology.ASN]int{}
	intern := func(as topology.ASN) sat.Lit {
		v, ok := varOf[as]
		if !ok {
			v = len(in.Vars) + 1
			in.Vars = append(in.Vars, as)
			varOf[as] = v
		}
		return sat.Lit(int32(v))
	}

	// Deterministic clause order: sort path keys. Negative paths expand to
	// unit clauses; an AS negated by several clean paths still needs only
	// one unit clause.
	negated := map[topology.ASN]bool{}
	for _, path := range sortedPaths(grp.neg) {
		in.NegativePaths = append(in.NegativePaths, path)
		for _, as := range path {
			if !negated[as] {
				negated[as] = true
				in.CNF.AddClause(intern(as).Neg())
			}
		}
	}
	for _, path := range sortedPaths(grp.pos) {
		in.PositivePaths = append(in.PositivePaths, path)
		lits := make([]sat.Lit, 0, len(path))
		for _, as := range path {
			lits = append(lits, intern(as))
		}
		in.CNF.AddClause(lits...)
	}
	return in
}

func sortedPaths(m map[string][]topology.ASN) [][]topology.ASN {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]topology.ASN, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Outcome is the solved result for one instance (§3.2's trichotomy).
type Outcome struct {
	Inst  *Instance
	Class sat.Classification

	// Censors holds the True-assigned ASes of a unique solution.
	Censors []topology.ASN
	// Potential holds, for multi-solution CNFs, the ASes not False in every
	// model (the paper's potential censors).
	Potential []topology.ASN
	// Eliminated counts definite non-censors in the multi-solution case.
	Eliminated int
	// TotalVars is the number of distinct ASes in the CNF.
	TotalVars int
}

// ReductionFrac returns the candidate-set reduction fraction for
// multi-solution CNFs (Figure 2's quantity): eliminated / total.
func (o Outcome) ReductionFrac() float64 {
	if o.TotalVars == 0 {
		return 0
	}
	return float64(o.Eliminated) / float64(o.TotalVars)
}

// Solve classifies one instance and extracts censors or potential censors.
func Solve(in *Instance) Outcome {
	out := Outcome{Inst: in, TotalVars: len(in.Vars)}
	cls, model := sat.Classify(in.CNF)
	out.Class = cls
	switch cls {
	case sat.Unique:
		for v := 1; v <= in.CNF.NumVars; v++ {
			if model[v] {
				out.Censors = append(out.Censors, in.Vars[v-1])
			}
		}
	case sat.Multiple:
		pot := sat.PotentialTrue(in.CNF)
		for v := 1; v <= in.CNF.NumVars; v++ {
			if pot[v] {
				out.Potential = append(out.Potential, in.Vars[v-1])
			} else {
				out.Eliminated++
			}
		}
	}
	return out
}

// SolveAll solves every instance concurrently, preserving input order.
func SolveAll(insts []*Instance) []Outcome {
	out := make([]Outcome, len(insts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(insts) {
		workers = len(insts)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = Solve(insts[i])
			}
		}()
	}
	for i := range insts {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// IdentifiedCensor aggregates everything learned about one censoring AS
// from unique-solution CNFs.
type IdentifiedCensor struct {
	ASN   topology.ASN
	Kinds anomaly.Set // anomaly kinds the AS was identified for
	URLs  map[string]bool
	CNFs  int // unique-solution CNFs naming this AS
}

// IdentifyCensors unions the censors named by unique-solution outcomes —
// the paper's headline "65 censoring ASes" set. minCNFs filters one-off
// identifications: measurement noise occasionally fabricates a unique
// solution blaming an innocent AS, but real censors are re-identified
// across many slices and URLs; requiring at least minCNFs corroborating
// CNFs (2 is a good default) removes most fabrications. Pass 1 for the
// paper's unfiltered behaviour.
func IdentifyCensors(outcomes []Outcome, minCNFs int) map[topology.ASN]*IdentifiedCensor {
	found := map[topology.ASN]*IdentifiedCensor{}
	for _, o := range outcomes {
		if o.Class != sat.Unique {
			continue
		}
		for _, as := range o.Censors {
			c := found[as]
			if c == nil {
				c = &IdentifiedCensor{ASN: as, URLs: map[string]bool{}}
				found[as] = c
			}
			c.Kinds = c.Kinds.Add(o.Inst.Key.Kind)
			c.URLs[o.Inst.Key.URL] = true
			c.CNFs++
		}
	}
	for asn, c := range found {
		if c.CNFs < minCNFs {
			delete(found, asn)
		}
	}
	return found
}
