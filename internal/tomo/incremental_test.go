package tomo

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/sat"
	"churntomo/internal/timeslice"
	"churntomo/internal/topology"
)

// canonInstance copies an instance with each CNF clause's literals sorted.
// Solving permutes literals inside shared clause slices (watch
// normalization), so instances are compared modulo intra-clause order.
func canonInstance(in *Instance) *Instance {
	cp := *in
	cnf := &sat.CNF{NumVars: in.CNF.NumVars}
	for _, cl := range in.CNF.Clauses {
		c2 := append(sat.Clause(nil), cl...)
		sort.Slice(c2, func(i, j int) bool { return c2[i] < c2[j] })
		cnf.Clauses = append(cnf.Clauses, c2)
	}
	cp.CNF = cnf
	return &cp
}

func canonOutcome(o Outcome) Outcome {
	o.Inst = canonInstance(o.Inst)
	return o
}

// synthDay fabricates one day's records: a few vantages testing a few URLs
// over paths that churn with the day index, with anomalies on some paths.
func synthDay(day int) []iclab.Record {
	at := time.Date(2016, 5, 25, 9, 0, 0, 0, time.UTC).AddDate(0, 0, day)
	var recs []iclab.Record
	urls := []string{"a.com", "b.com", "c.com"}
	for u, url := range urls {
		for v := 0; v < 3; v++ {
			// Paths share a censoring AS 50 and churn a mid-path hop by day.
			mid := topology.ASN(100 + (day+v)%4)
			path := []topology.ASN{topology.ASN(10 + v), mid, 50, topology.ASN(200 + u)}
			var kinds anomaly.Set
			if (day+u+v)%3 == 0 {
				kinds = anomaly.MakeSet(anomaly.DNS)
			}
			if (day+u)%5 == 0 {
				kinds = kinds.Add(anomaly.RST)
			}
			recs = append(recs, rec(topology.ASN(10+v), url, at.Add(time.Duration(v)*time.Hour), path, kinds))
			// A clean sibling path that avoids AS 50.
			clean := []topology.ASN{topology.ASN(10 + v), mid, 60, topology.ASN(200 + u)}
			recs = append(recs, rec(topology.ASN(10+v), url, at.Add(time.Duration(v+8)*time.Hour), clean, 0))
		}
	}
	return recs
}

// TestIncrementalMatchesBatch slides a 4-day window over 13 synthetic days
// (crossing a week and a month boundary) and checks at every position that
// the incremental engine's instances and outcomes are identical, field for
// field and in order, to a from-scratch batch BuildAndSolve over the same
// in-window records.
func TestIncrementalMatchesBatch(t *testing.T) {
	const days, window = 13, 4
	cfg := BuildConfig{Workers: 1}
	inc := NewIncremental(cfg)
	var inWindow [][]iclab.Record

	for day := 0; day < days; day++ {
		recs := synthDay(day)
		inc.AddDay(day, recs)
		inWindow = append(inWindow, recs)
		if day >= window {
			inc.RemoveDay(day - window)
			inWindow = inWindow[1:]
		}

		gotInsts, gotOuts, stats := inc.BuildAndSolve()
		var flat []iclab.Record
		for _, d := range inWindow {
			flat = append(flat, d...)
		}
		wantInsts, wantOuts := BuildAndSolve(flat, cfg)

		if len(gotInsts) != len(wantInsts) {
			t.Fatalf("day %d: %d instances, batch has %d", day, len(gotInsts), len(wantInsts))
		}
		for i := range wantInsts {
			if !reflect.DeepEqual(canonInstance(gotInsts[i]), canonInstance(wantInsts[i])) {
				t.Fatalf("day %d: instance %d (%v) differs from batch:\n got %+v\nwant %+v",
					day, i, wantInsts[i].Key, gotInsts[i], wantInsts[i])
			}
		}
		for i := range wantOuts {
			if !reflect.DeepEqual(canonOutcome(gotOuts[i]), canonOutcome(wantOuts[i])) {
				t.Fatalf("day %d: outcome %d (%v) differs from batch:\n got %+v\nwant %+v",
					day, i, wantOuts[i].Inst.Key, gotOuts[i], wantOuts[i])
			}
		}
		if day > 0 && stats.Reused == 0 {
			t.Errorf("day %d: no cached outcomes reused while sliding", day)
		}
	}
}

// TestIncrementalNoChangeReusesEverything pins that a BuildAndSolve with no
// intervening Add/Remove re-solves nothing.
func TestIncrementalNoChangeReusesEverything(t *testing.T) {
	inc := NewIncremental(BuildConfig{Workers: 1})
	inc.AddDay(0, synthDay(0))
	inc.AddDay(1, synthDay(1))
	_, outs1, stats1 := inc.BuildAndSolve()
	if stats1.Solved == 0 || stats1.Reused != 0 {
		t.Fatalf("first solve: %+v", stats1)
	}
	_, outs2, stats2 := inc.BuildAndSolve()
	if stats2.Solved != 0 || stats2.Reused != len(outs2) {
		t.Fatalf("idle solve did work: %+v", stats2)
	}
	if !reflect.DeepEqual(outs1, outs2) {
		t.Fatal("idle solve changed outcomes")
	}
}

// TestIncrementalRemoveAllEmpties verifies full retraction returns the
// engine to the empty state.
func TestIncrementalRemoveAllEmpties(t *testing.T) {
	inc := NewIncremental(BuildConfig{Workers: 1})
	inc.AddDay(0, synthDay(0))
	inc.AddDay(1, synthDay(1))
	inc.RemoveDay(0)
	inc.RemoveDay(1)
	insts, outs, _ := inc.BuildAndSolve()
	if len(insts) != 0 || len(outs) != 0 {
		t.Fatalf("retracted engine still holds %d instances", len(insts))
	}
	// Re-adding after removal must work (fresh groups, fresh labels).
	inc.AddDay(1, synthDay(1))
	insts, _, _ = inc.BuildAndSolve()
	want, _ := BuildAndSolve(synthDay(1), BuildConfig{Workers: 1})
	if len(insts) != len(want) {
		t.Fatalf("re-added day: %d instances, want %d", len(insts), len(want))
	}
}

// TestIncrementalLongReplayEvictsAndMatches slides a narrow window far
// enough that coarse-granularity keys retire many more day groups than
// they hold resident, forcing the keySolver eviction/rebuild path — and
// demands batch-identical outcomes throughout.
func TestIncrementalLongReplayEvictsAndMatches(t *testing.T) {
	const days, window = 40, 3
	cfg := BuildConfig{Workers: 1}
	inc := NewIncremental(cfg)
	var inWindow [][]iclab.Record
	for day := 0; day < days; day++ {
		recs := synthDay(day)
		inc.AddDay(day, recs)
		inWindow = append(inWindow, recs)
		if day >= window {
			inc.RemoveDay(day - window)
			inWindow = inWindow[1:]
		}
		var flat []iclab.Record
		for _, d := range inWindow {
			flat = append(flat, d...)
		}
		_, wantOuts := BuildAndSolve(flat, cfg)
		_, gotOuts, _ := inc.BuildAndSolve()
		if len(gotOuts) != len(wantOuts) {
			t.Fatalf("day %d: %d outcomes, batch has %d", day, len(gotOuts), len(wantOuts))
		}
		for i := range wantOuts {
			if !reflect.DeepEqual(canonOutcome(gotOuts[i]), canonOutcome(wantOuts[i])) {
				t.Fatalf("day %d: outcome %d (%v) differs from batch after eviction",
					day, i, wantOuts[i].Inst.Key)
			}
		}
	}
	// The year-granularity keys are touched (synced and later retired) by
	// every one of the 37 removals, so without the eviction reset their
	// retired counters would read 37 — far past the 2*resident+8 = 14
	// threshold. A working eviction path keeps every counter at or below
	// the threshold, proving the solver was dropped and rebuilt.
	const removals = days - window
	yearKeys := 0
	for key, st := range inc.keys {
		if key.Slice.Gran != timeslice.Year {
			continue
		}
		yearKeys++
		if st.sol == nil {
			continue // evicted and not yet re-solved: fine
		}
		if st.sol.retired > 2*len(st.days)+8 {
			t.Errorf("key %v: retired %d groups exceeds the eviction threshold %d — eviction never fired",
				key, st.sol.retired, 2*len(st.days)+8)
		}
		if st.sol.retired >= removals {
			t.Errorf("key %v: solver still remembers all %d retired groups", key, removals)
		}
	}
	if yearKeys == 0 {
		t.Fatal("no year-granularity keys resident; eviction assertion vacuous")
	}
}

// TestIncrementalDuplicateDayPanics pins the double-add guard.
func TestIncrementalDuplicateDayPanics(t *testing.T) {
	inc := NewIncremental(BuildConfig{Workers: 1})
	inc.AddDay(3, synthDay(3))
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddDay label did not panic")
		}
	}()
	inc.AddDay(3, synthDay(3))
}

// TestIncrementalWorkersIrrelevant runs the same replay at several worker
// counts and demands identical output — the determinism guarantee PR 1
// established for the batch engine, extended to the incremental one.
func TestIncrementalWorkersIrrelevant(t *testing.T) {
	replay := func(workers int) string {
		inc := NewIncremental(BuildConfig{Workers: workers})
		var out string
		for day := 0; day < 8; day++ {
			inc.AddDay(day, synthDay(day))
			if day >= 3 {
				inc.RemoveDay(day - 3)
			}
			_, outs, _ := inc.BuildAndSolve()
			for _, o := range outs {
				out += fmt.Sprintf("%v/%v/%v/%d;", o.Inst.Key, o.Class, o.Censors, o.Eliminated)
			}
			out += "\n"
		}
		return out
	}
	serial := replay(1)
	for _, w := range []int{0, 4} {
		if got := replay(w); got != serial {
			t.Fatalf("workers=%d replay differs from serial", w)
		}
	}
}
