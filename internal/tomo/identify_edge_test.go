package tomo

// Edge-case coverage for IdentifyCensors: the exact threshold boundary
// (inclusive — documented on the function), degenerate inputs, and
// outcome classes that must never name anyone.

import (
	"testing"

	"churntomo/internal/anomaly"
	"churntomo/internal/sat"
	"churntomo/internal/topology"
)

// uniqueNaming fabricates n unique-solution outcomes all naming as, each
// under a distinct URL so the CNF count is what is being tested.
func uniqueNaming(as topology.ASN, n int) []Outcome {
	out := make([]Outcome, n)
	for i := range out {
		out[i] = Outcome{
			Class:   sat.Unique,
			Censors: []topology.ASN{as},
			Inst:    &Instance{Key: Key{URL: string(rune('a'+i)) + ".com", Kind: anomaly.TTL}},
		}
	}
	return out
}

func TestIdentifyCensorsThresholdBoundary(t *testing.T) {
	const minCNFs = 8
	// Exactly at the threshold: kept. This is the documented inclusive
	// tie-break ("at least minCNFs").
	at := IdentifyCensors(uniqueNaming(20, minCNFs), minCNFs)
	if c, ok := at[20]; !ok {
		t.Fatalf("AS20 with CNFs == minCNFs (%d) dropped; boundary must be inclusive", minCNFs)
	} else if c.CNFs != minCNFs {
		t.Fatalf("CNFs = %d, want %d", c.CNFs, minCNFs)
	}
	// One below: dropped.
	below := IdentifyCensors(uniqueNaming(20, minCNFs-1), minCNFs)
	if _, ok := below[20]; ok {
		t.Fatalf("AS20 with CNFs == minCNFs-1 kept; threshold not enforced")
	}
}

func TestIdentifyCensorsDegenerateInputs(t *testing.T) {
	if got := IdentifyCensors(nil, 8); len(got) != 0 {
		t.Errorf("nil outcomes identified %v", got)
	}
	if got := IdentifyCensors([]Outcome{}, 8); len(got) != 0 {
		t.Errorf("empty outcomes identified %v", got)
	}
	// minCNFs <= 1 means a single CNF suffices (the paper's unfiltered
	// behaviour); zero and negative behave like 1.
	for _, min := range []int{1, 0, -3} {
		if _, ok := IdentifyCensors(uniqueNaming(7, 1), min)[7]; !ok {
			t.Errorf("minCNFs=%d: single corroborating CNF not enough", min)
		}
	}
}

func TestIdentifyCensorsIgnoresNonUnique(t *testing.T) {
	inst := &Instance{Key: Key{URL: "a.com", Kind: anomaly.RST}}
	outcomes := []Outcome{
		// A Multiple outcome's potential censors must never be promoted.
		{Class: sat.Multiple, Potential: []topology.ASN{20, 30}, Inst: inst},
		// An Unsat outcome names no one even with a stale Censors slice.
		{Class: sat.Unsat, Censors: []topology.ASN{40}, Inst: inst},
	}
	if got := IdentifyCensors(outcomes, 1); len(got) != 0 {
		t.Fatalf("non-unique outcomes identified %v", got)
	}
}

func TestIdentifyCensorsAggregatesAcrossOutcomes(t *testing.T) {
	// The same AS named under two kinds and two URLs: one entry, unioned
	// kinds, both URLs, CNFs summed — the aggregation the streaming
	// windows and the public Censor type rely on.
	outcomes := []Outcome{
		{Class: sat.Unique, Censors: []topology.ASN{9},
			Inst: &Instance{Key: Key{URL: "a.com", Kind: anomaly.TTL}}},
		{Class: sat.Unique, Censors: []topology.ASN{9},
			Inst: &Instance{Key: Key{URL: "b.com", Kind: anomaly.DNS}}},
	}
	got := IdentifyCensors(outcomes, 2)
	c, ok := got[9]
	if !ok {
		t.Fatal("AS9 not identified")
	}
	if c.CNFs != 2 || !c.Kinds.Has(anomaly.TTL) || !c.Kinds.Has(anomaly.DNS) {
		t.Errorf("aggregation wrong: %+v", c)
	}
	if !c.URLs["a.com"] || !c.URLs["b.com"] {
		t.Errorf("URLs not unioned: %v", c.URLs)
	}
}
