package tomo

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/sat"
	"churntomo/internal/timeslice"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

var t0 = time.Date(2016, 5, 10, 8, 0, 0, 0, time.UTC)

// rec builds a conclusive record.
func rec(vantage topology.ASN, url string, at time.Time, path []topology.ASN, kinds anomaly.Set) iclab.Record {
	return iclab.Record{
		Vantage: vantage, URL: url, At: at,
		ASPath: path, Anomalies: kinds, Fail: traceroute.OK,
	}
}

func dayOnly() BuildConfig {
	return BuildConfig{Granularities: []timeslice.Granularity{timeslice.Day}}
}

func TestBuildSplitsByURLSliceKind(t *testing.T) {
	records := []iclab.Record{
		rec(1, "a.com", t0, []topology.ASN{1, 2, 3}, anomaly.MakeSet(anomaly.DNS)),
		rec(1, "a.com", t0.Add(time.Hour), []topology.ASN{1, 2, 3}, 0),
		rec(1, "b.com", t0, []topology.ASN{1, 2, 4}, 0),
		rec(1, "a.com", t0.AddDate(0, 0, 1), []topology.ASN{1, 2, 3}, 0), // next day
	}
	insts := Build(records, BuildConfig{
		Granularities:    []timeslice.Granularity{timeslice.Day},
		Kinds:            []anomaly.Kind{anomaly.DNS},
		KeepNegativeOnly: true,
	})
	// a.com day1, a.com day2, b.com day1.
	if len(insts) != 3 {
		t.Fatalf("got %d instances, want 3", len(insts))
	}
	byURL := map[string]int{}
	for _, in := range insts {
		byURL[in.Key.URL]++
		if in.Key.Kind != anomaly.DNS {
			t.Errorf("unexpected kind %v", in.Key.Kind)
		}
	}
	if byURL["a.com"] != 2 || byURL["b.com"] != 1 {
		t.Errorf("split wrong: %v", byURL)
	}
}

func TestBuildSkipsInconclusive(t *testing.T) {
	bad := rec(1, "a.com", t0, nil, 0)
	bad.Fail = traceroute.ErrDisagree
	insts := Build([]iclab.Record{bad}, dayOnly())
	if len(insts) != 0 {
		t.Fatalf("inconclusive record produced %d instances", len(insts))
	}
}

func TestBuildClauseSemantics(t *testing.T) {
	records := []iclab.Record{
		rec(1, "a.com", t0, []topology.ASN{10, 20, 30}, anomaly.MakeSet(anomaly.TTL)),
		rec(1, "a.com", t0.Add(time.Hour), []topology.ASN{10, 25, 30}, 0),
	}
	insts := Build(records, BuildConfig{
		Granularities: []timeslice.Granularity{timeslice.Day},
		Kinds:         []anomaly.Kind{anomaly.TTL},
	})
	if len(insts) != 1 {
		t.Fatalf("got %d instances", len(insts))
	}
	in := insts[0]
	if len(in.PositivePaths) != 1 || len(in.NegativePaths) != 1 {
		t.Fatalf("paths: %d pos, %d neg", len(in.PositivePaths), len(in.NegativePaths))
	}
	// Negative path {10,25,30} => 3 unit clauses; positive => 1 clause.
	if got := len(in.CNF.Clauses); got != 4 {
		t.Fatalf("clause count %d, want 4", got)
	}
	if in.Measurements != 2 {
		t.Errorf("measurements %d", in.Measurements)
	}
	// Solving: 10 and 30 are negated, so 20 or 25... 25 negated too; the
	// unique model must blame 20.
	o := Solve(in)
	if o.Class != sat.Unique {
		t.Fatalf("class %v, want Unique", o.Class)
	}
	if len(o.Censors) != 1 || o.Censors[0] != 20 {
		t.Fatalf("censors %v, want [AS20]", o.Censors)
	}
}

func TestBuildDedupesRepeatedPaths(t *testing.T) {
	var records []iclab.Record
	for i := 0; i < 10; i++ {
		records = append(records, rec(1, "a.com", t0.Add(time.Duration(i)*time.Minute),
			[]topology.ASN{10, 20}, 0))
	}
	insts := Build(records, BuildConfig{
		Granularities:    []timeslice.Granularity{timeslice.Day},
		Kinds:            []anomaly.Kind{anomaly.RST},
		KeepNegativeOnly: true,
	})
	in := insts[0]
	if len(in.CNF.Clauses) != 2 { // ¬10, ¬20 once each
		t.Fatalf("clauses %d, want 2 (deduplicated units)", len(in.CNF.Clauses))
	}
	if in.Measurements != 10 {
		t.Errorf("measurements %d, want 10", in.Measurements)
	}
}

func TestSolveUnsatOnConflict(t *testing.T) {
	// Same path censored then clean in the same slice: policy change or
	// noise => UNSAT (§3.2).
	records := []iclab.Record{
		rec(1, "a.com", t0, []topology.ASN{10, 20, 30}, anomaly.MakeSet(anomaly.SEQ)),
		rec(1, "a.com", t0.Add(2*time.Hour), []topology.ASN{10, 20, 30}, 0),
	}
	insts := Build(records, BuildConfig{
		Granularities: []timeslice.Granularity{timeslice.Day},
		Kinds:         []anomaly.Kind{anomaly.SEQ},
	})
	if o := Solve(insts[0]); o.Class != sat.Unsat {
		t.Fatalf("class %v, want Unsat", o.Class)
	}
}

func TestSolveMultipleAndPotential(t *testing.T) {
	// One censored path, one clean path sharing only AS 10: 20 and 30
	// remain potential censors.
	records := []iclab.Record{
		rec(1, "a.com", t0, []topology.ASN{10, 20, 30}, anomaly.MakeSet(anomaly.Block)),
		rec(2, "a.com", t0.Add(time.Hour), []topology.ASN{10, 40}, 0),
	}
	insts := Build(records, BuildConfig{
		Granularities: []timeslice.Granularity{timeslice.Day},
		Kinds:         []anomaly.Kind{anomaly.Block},
	})
	o := Solve(insts[0])
	if o.Class != sat.Multiple {
		t.Fatalf("class %v, want Multiple", o.Class)
	}
	pot := map[topology.ASN]bool{}
	for _, as := range o.Potential {
		pot[as] = true
	}
	if pot[10] || pot[40] || !pot[20] || !pot[30] {
		t.Fatalf("potential %v", o.Potential)
	}
	if o.Eliminated != 2 || o.TotalVars != 4 {
		t.Errorf("eliminated=%d total=%d", o.Eliminated, o.TotalVars)
	}
	if got := o.ReductionFrac(); got != 0.5 {
		t.Errorf("reduction %.2f, want 0.5", got)
	}
}

func TestSolveAllMatchesSolve(t *testing.T) {
	var records []iclab.Record
	paths := [][]topology.ASN{{1, 2, 3}, {1, 4, 3}, {5, 2, 3}, {5, 6}}
	for i := 0; i < 40; i++ {
		k := anomaly.Set(0)
		if i%7 == 0 {
			k = anomaly.MakeSet(anomaly.DNS)
		}
		records = append(records, rec(topology.ASN(i%3+1), "u.com",
			t0.AddDate(0, 0, i%5), paths[i%len(paths)], k))
	}
	insts := Build(records, BuildConfig{Kinds: []anomaly.Kind{anomaly.DNS}, KeepNegativeOnly: true})
	got := SolveAll(insts)
	if len(got) != len(insts) {
		t.Fatalf("SolveAll returned %d outcomes for %d instances", len(got), len(insts))
	}
	for i, in := range insts {
		want := Solve(in)
		if got[i].Class != want.Class || got[i].Eliminated != want.Eliminated ||
			len(got[i].Censors) != len(want.Censors) {
			t.Fatalf("outcome %d differs between SolveAll and Solve", i)
		}
	}
}

func TestIdentifyCensors(t *testing.T) {
	records := []iclab.Record{
		// Day 1: censor 20 exactly identified for TTL on a.com.
		rec(1, "a.com", t0, []topology.ASN{10, 20, 30}, anomaly.MakeSet(anomaly.TTL)),
		rec(1, "a.com", t0.Add(time.Hour), []topology.ASN{10, 25, 30}, 0),
		rec(2, "a.com", t0.Add(time.Hour), []topology.ASN{11, 25, 30}, 0),
		// Day 1, b.com: censor 20 identified for SEQ too.
		rec(1, "b.com", t0, []topology.ASN{10, 20, 31}, anomaly.MakeSet(anomaly.SEQ)),
		rec(1, "b.com", t0.Add(time.Hour), []topology.ASN{10, 26, 31}, 0),
		rec(3, "b.com", t0.Add(time.Hour), []topology.ASN{12, 26, 31}, 0),
	}
	insts := Build(records, dayOnly())
	outcomes := SolveAll(insts)
	censors := IdentifyCensors(outcomes, 1)
	c, ok := censors[20]
	if !ok {
		t.Fatalf("censor AS20 not identified; got %v", censors)
	}
	if !c.Kinds.Has(anomaly.TTL) || !c.Kinds.Has(anomaly.SEQ) {
		t.Errorf("kinds %v, want ttl+seq", c.Kinds)
	}
	if len(c.URLs) != 2 {
		t.Errorf("URLs %v", c.URLs)
	}
	for asn := range censors {
		if asn != 20 {
			t.Errorf("spurious censor %v", asn)
		}
	}
}

func TestVarOf(t *testing.T) {
	in := &Instance{Vars: []topology.ASN{7, 8}}
	if in.VarOf(8) != 2 || in.VarOf(7) != 1 || in.VarOf(99) != 0 {
		t.Error("VarOf mapping wrong")
	}
}

func TestBuildDeterministicOrder(t *testing.T) {
	records := []iclab.Record{
		rec(1, "b.com", t0, []topology.ASN{1, 2}, 0),
		rec(1, "a.com", t0, []topology.ASN{1, 2}, 0),
		rec(1, "a.com", t0.AddDate(0, 0, 1), []topology.ASN{1, 2}, 0),
	}
	cfg := dayOnly()
	cfg.KeepNegativeOnly = true
	a := Build(records, cfg)
	b := Build(records, cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic instance count")
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("instance order differs at %d: %v vs %v", i, a[i].Key, b[i].Key)
		}
	}
	// Sorted: a.com before b.com.
	if a[0].Key.URL != "a.com" {
		t.Errorf("first instance %v, want a.com", a[0].Key)
	}
}

// syntheticRecords builds a varied record stream: several vantages, URLs,
// days and paths, with anomalies sprinkled deterministically.
func syntheticRecords(n int) []iclab.Record {
	paths := [][]topology.ASN{
		{1, 2, 3}, {1, 4, 3}, {5, 2, 3}, {5, 6}, {1, 2, 7, 3}, {8, 4, 3},
	}
	urls := []string{"a.com", "b.com", "c.com", "d.com"}
	var records []iclab.Record
	for i := 0; i < n; i++ {
		var k anomaly.Set
		switch {
		case i%11 == 0:
			k = anomaly.MakeSet(anomaly.DNS)
		case i%13 == 0:
			k = anomaly.MakeSet(anomaly.RST, anomaly.TTL)
		}
		r := rec(topology.ASN(i%5+1), urls[i%len(urls)],
			t0.AddDate(0, 0, i%23).Add(time.Duration(i%19)*time.Hour),
			paths[i%len(paths)], k)
		if i%29 == 0 {
			r.Fail = traceroute.ErrDisagree
			r.ASPath = nil
		}
		records = append(records, r)
	}
	return records
}

func sameInstances(t *testing.T, label string, a, b []*Instance) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d instances vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Key != y.Key || x.Measurements != y.Measurements ||
			!reflect.DeepEqual(x.Vars, y.Vars) ||
			!reflect.DeepEqual(x.CNF.Clauses, y.CNF.Clauses) ||
			!reflect.DeepEqual(x.PositivePaths, y.PositivePaths) ||
			!reflect.DeepEqual(x.NegativePaths, y.NegativePaths) {
			t.Fatalf("%s: instance %d (%+v) differs", label, i, x.Key)
		}
	}
}

func sameOutcomes(t *testing.T, label string, a, b []Outcome) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d outcomes vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Eliminated != b[i].Eliminated ||
			a[i].TotalVars != b[i].TotalVars ||
			!reflect.DeepEqual(a[i].Censors, b[i].Censors) ||
			!reflect.DeepEqual(a[i].Potential, b[i].Potential) {
			t.Fatalf("%s: outcome %d differs", label, i)
		}
	}
}

// TestBuildParallelMatchesSerial locks down the sharded grouping: any
// worker count must reproduce the serial result exactly.
func TestBuildParallelMatchesSerial(t *testing.T) {
	records := syntheticRecords(6000)
	serialCfg := BuildConfig{Workers: 1}
	serial := Build(records, serialCfg)
	if len(serial) == 0 {
		t.Fatal("no instances built; test vacuous")
	}
	for _, workers := range []int{2, 3, 8, 64} {
		par := Build(records, BuildConfig{Workers: workers})
		sameInstances(t, fmt.Sprintf("workers=%d", workers), serial, par)
	}
}

// TestBuildAndSolveMatchesBuildThenSolveAll proves the streaming path is a
// pure re-pipelining: same instances, same outcomes, same order.
func TestBuildAndSolveMatchesBuildThenSolveAll(t *testing.T) {
	records := syntheticRecords(6000)
	insts := Build(records, BuildConfig{Workers: 1})
	outs := SolveAll(insts)
	for _, workers := range []int{1, 4} {
		gotInsts, gotOuts := BuildAndSolve(records, BuildConfig{Workers: workers})
		sameInstances(t, fmt.Sprintf("streaming workers=%d", workers), insts, gotInsts)
		sameOutcomes(t, fmt.Sprintf("streaming workers=%d", workers), outs, gotOuts)
	}
}

// TestConcurrentBuildAndSolve runs several Build+SolveAll pipelines over
// the same shared record slice at once — the -race canary for the engine's
// claim that records, groups and instances are never mutated concurrently.
func TestConcurrentBuildAndSolve(t *testing.T) {
	records := syntheticRecords(4000)
	want, wantOuts := BuildAndSolve(records, BuildConfig{Workers: 1})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			insts := Build(records, BuildConfig{Workers: 4})
			outs := SolveAll(insts)
			if len(insts) != len(want) || len(outs) != len(wantOuts) {
				errs <- fmt.Sprintf("goroutine %d: size mismatch", g)
				return
			}
			for i := range outs {
				if outs[i].Class != wantOuts[i].Class {
					errs <- fmt.Sprintf("goroutine %d: outcome %d class differs", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestBuildAndSolveStreamsOverlap pins the streaming claim behind
// BuildAndSolve: each worker solves the CNF it just materialized before
// materializing the next key, so solving overlaps construction instead of
// waiting behind a build-everything barrier. At Workers=1 the event log
// must strictly interleave — any batching regression (materialize all,
// then solve all) shows up as two runs. This also documents why the
// streaming benchmark reports byte-identical allocations to the serial
// one: both do exactly the same work, only the schedule differs.
func TestBuildAndSolveStreamsOverlap(t *testing.T) {
	records := syntheticRecords(2000)
	var events []string
	buildSolveObserver = func(event string, key int) {
		events = append(events, fmt.Sprintf("%s:%d", event, key))
	}
	defer func() { buildSolveObserver = nil }()
	insts, _ := BuildAndSolve(records, BuildConfig{Workers: 1})
	if len(insts) < 2 {
		t.Fatalf("need >= 2 instances to observe interleaving, got %d", len(insts))
	}
	if len(events) != 2*len(insts) {
		t.Fatalf("got %d events for %d instances", len(events), len(insts))
	}
	for i := 0; i < len(insts); i++ {
		wantMat := fmt.Sprintf("materialize:%d", i)
		wantSolve := fmt.Sprintf("solve:%d", i)
		if events[2*i] != wantMat || events[2*i+1] != wantSolve {
			t.Fatalf("events not interleaved at key %d: %v %v (want %v %v)",
				i, events[2*i], events[2*i+1], wantMat, wantSolve)
		}
	}
}
