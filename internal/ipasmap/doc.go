// Package ipasmap is the simulator's stand-in for CAIDA's historical
// IP-to-AS mapping datasets: monthly longest-prefix-match snapshots used
// to convert traceroute hop addresses into AS-level paths (paper §3.1).
//
// Real mappings are imperfect, and the paper's clause-construction rules
// exist precisely to cope with that: snapshots here deliberately contain
// holes (prefixes missing from a month's snapshot) and drift (prefixes
// temporarily attributed to a neighboring AS), so the four
// inconclusive-path elimination rules in internal/traceroute all get
// exercised.
//
// Entry points: Build generates the DB over a topology; DB.Lookup maps an
// address at a timestamp through the snapshot covering that month.
//
// Invariants: Build is deterministic for a BuildConfig; the DB is
// immutable afterward and shared read-only across measurement workers.
package ipasmap
