package ipasmap

import (
	"testing"
	"time"

	"churntomo/internal/topology"
)

var (
	start = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	end   = start.AddDate(1, 0, 0)
)

func genGraph(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{Seed: 1, ASes: 200})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildMonthlySnapshots(t *testing.T) {
	g := genGraph(t)
	db, err := Build(g, BuildConfig{Seed: 1, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSnapshots() != 12 {
		t.Errorf("got %d snapshots over a year, want 12", db.NumSnapshots())
	}
	for i := 1; i < db.NumSnapshots(); i++ {
		if !db.SnapshotStart(i).After(db.SnapshotStart(i - 1)) {
			t.Errorf("snapshots out of order at %d", i)
		}
	}
}

func TestLookupMostlyCorrect(t *testing.T) {
	g := genGraph(t)
	db, err := Build(g, BuildConfig{Seed: 2, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	total, correct, missing := 0, 0, 0
	for i := range g.ASes {
		want := g.ASes[i].ASN
		ip := g.RouterIP(int32(i), 0)
		for m := 0; m < 12; m++ {
			at := start.AddDate(0, m, 3)
			total++
			got, ok := db.Lookup(ip, at)
			switch {
			case !ok:
				missing++
			case got == want:
				correct++
			}
		}
	}
	if frac := float64(correct) / float64(total); frac < 0.95 {
		t.Errorf("only %.1f%% of lookups correct", 100*frac)
	}
	if missing == 0 {
		t.Error("no holes at all; noise model inert")
	}
}

func TestLookupClampsBeforeFirstSnapshot(t *testing.T) {
	g := genGraph(t)
	db, err := Build(g, BuildConfig{Seed: 3, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	ip := g.RouterIP(0, 0)
	early, okEarly := db.Lookup(ip, start.AddDate(-1, 0, 0))
	first, okFirst := db.Lookup(ip, start.Add(time.Hour))
	if okEarly != okFirst || early != first {
		t.Errorf("pre-window lookup not clamped: (%v,%v) vs (%v,%v)", early, okEarly, first, okFirst)
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := genGraph(t)
	cfg := BuildConfig{Seed: 4, Start: start, End: end}
	a, _ := Build(g, cfg)
	b, _ := Build(g, cfg)
	for i := range g.ASes {
		ip := g.RouterIP(int32(i), 1)
		for m := 0; m < 12; m += 3 {
			at := start.AddDate(0, m, 10)
			av, aok := a.Lookup(ip, at)
			bv, bok := b.Lookup(ip, at)
			if av != bv || aok != bok {
				t.Fatalf("nondeterministic lookup for %v at %v", ip, at)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := genGraph(t)
	if _, err := Build(g, BuildConfig{Start: end, End: start}); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestPerfect(t *testing.T) {
	g := genGraph(t)
	db := Perfect(g, start)
	if db.NumSnapshots() != 1 {
		t.Fatalf("Perfect has %d snapshots", db.NumSnapshots())
	}
	for i := range g.ASes {
		ip := g.HostIP(int32(i), 7)
		got, ok := db.Lookup(ip, end)
		if !ok || got != g.ASes[i].ASN {
			t.Fatalf("Perfect lookup(%v) = %v,%v want %v", ip, got, ok, g.ASes[i].ASN)
		}
	}
}

func TestDriftMapsToNeighbor(t *testing.T) {
	g := genGraph(t)
	db, err := Build(g, BuildConfig{Seed: 5, Start: start, End: end, DriftProb: 0.2, HoleProb: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	drifted := 0
	for i := range g.ASes {
		want := g.ASes[i].ASN
		ip := g.RouterIP(int32(i), 0)
		got, ok := db.Lookup(ip, start.Add(time.Hour))
		if !ok || got == want {
			continue
		}
		drifted++
		// The wrong answer must be a real neighbor.
		isNeighbor := false
		for _, nb := range g.Neighbors[i] {
			if g.ASes[nb.Idx].ASN == got {
				isNeighbor = true
				break
			}
		}
		if !isNeighbor {
			t.Errorf("drifted mapping of %v went to non-neighbor %v", want, got)
		}
	}
	if drifted == 0 {
		t.Error("high drift probability produced no drift")
	}
}
