package ipasmap

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"churntomo/internal/netaddr"
	"churntomo/internal/topology"
)

// DB is a time-versioned IP-to-AS mapping database.
type DB struct {
	snapshots []snapshot
}

type snapshot struct {
	start time.Time
	trie  netaddr.Trie[topology.ASN]
}

// BuildConfig parameterizes database construction.
type BuildConfig struct {
	Seed       uint64
	Start, End time.Time

	// HoleProb is the per-(prefix, snapshot) probability that the prefix is
	// absent from that month's snapshot. Default 0.015.
	HoleProb float64
	// DriftProb is the per-(prefix, snapshot) probability that the prefix
	// maps to a neighboring AS instead (e.g. a customer announcement
	// attributed to the provider). Default 0.002.
	DriftProb float64
}

func (c *BuildConfig) fillDefaults() {
	if c.HoleProb == 0 {
		c.HoleProb = 0.005
	}
	if c.DriftProb == 0 {
		c.DriftProb = 0.0015
	}
}

// pcgStreamIP2AS is the snapshot-drift RNG stream word ("ip2as" in
// ASCII); stream words are module-unique, enforced by churnvet.
const pcgStreamIP2AS = 0x6970326173 // "ip2as"

// Build derives monthly snapshots from the topology's prefix assignments.
// Deterministic for identical inputs.
func Build(g *topology.Graph, cfg BuildConfig) (*DB, error) {
	cfg.fillDefaults()
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("ipasmap: start %v not before end %v", cfg.Start, cfg.End)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, pcgStreamIP2AS))
	db := &DB{}
	for at := monthStart(cfg.Start); at.Before(cfg.End); at = at.AddDate(0, 1, 0) {
		var snap snapshot
		snap.start = at
		for i := range g.ASes {
			as := &g.ASes[i]
			owner := as.ASN
			for _, p := range as.Prefixes {
				switch r := rng.Float64(); {
				case r < cfg.HoleProb:
					continue // hole: prefix missing this month
				case r < cfg.HoleProb+cfg.DriftProb:
					snap.trie.Insert(p, neighborASN(g, int32(i), rng))
				default:
					snap.trie.Insert(p, owner)
				}
			}
		}
		db.snapshots = append(db.snapshots, snap)
	}
	if len(db.snapshots) == 0 {
		return nil, fmt.Errorf("ipasmap: window too short for any snapshot")
	}
	return db, nil
}

// neighborASN picks an adjacent AS to misattribute a prefix to, falling
// back to the owner itself for isolated nodes.
func neighborASN(g *topology.Graph, idx int32, rng *rand.Rand) topology.ASN {
	nbs := g.Neighbors[idx]
	if len(nbs) == 0 {
		return g.ASes[idx].ASN
	}
	return g.ASes[nbs[rng.IntN(len(nbs))].Idx].ASN
}

func monthStart(t time.Time) time.Time {
	t = t.UTC()
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}

// Lookup resolves ip using the snapshot in force at time at.
func (db *DB) Lookup(ip netaddr.IP, at time.Time) (topology.ASN, bool) {
	i := sort.Search(len(db.snapshots), func(i int) bool { return db.snapshots[i].start.After(at) })
	if i == 0 {
		i = 1 // clamp queries before the first snapshot onto it
	}
	return db.snapshots[i-1].trie.Lookup(ip)
}

// NumSnapshots returns the number of monthly snapshots.
func (db *DB) NumSnapshots() int { return len(db.snapshots) }

// SnapshotStart returns the start time of snapshot i.
func (db *DB) SnapshotStart(i int) time.Time { return db.snapshots[i].start }

// Perfect builds a single-snapshot database with no holes or drift —
// useful for tests that want mapping noise out of the picture.
func Perfect(g *topology.Graph, at time.Time) *DB {
	var snap snapshot
	snap.start = at
	for i := range g.ASes {
		for _, p := range g.ASes[i].Prefixes {
			snap.trie.Insert(p, g.ASes[i].ASN)
		}
	}
	return &DB{snapshots: []snapshot{snap}}
}
