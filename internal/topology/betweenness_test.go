package topology

import (
	"testing"
)

func genGraph(t *testing.T, seed uint64, ases int) *Graph {
	t.Helper()
	g, err := Generate(GenConfig{Seed: seed, ASes: ases})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBetweennessRangeAndDeterminism(t *testing.T) {
	g := genGraph(t, 31, 200)
	a := g.Betweenness()
	if len(a) != len(g.ASes) {
		t.Fatalf("Betweenness returned %d scores for %d ASes", len(a), len(g.ASes))
	}
	nonzero := 0
	for i, s := range a {
		if s < 0 || s > 1 || s != s {
			t.Fatalf("score[%d] = %v outside [0, 1]", i, s)
		}
		if s > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("every betweenness score is zero on a connected 200-AS graph")
	}
	b := g.Betweenness()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Betweenness not deterministic at index %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBetweennessTransitDominatesLeaves(t *testing.T) {
	// Structural sanity: the best-scoring AS must be one that forwards —
	// transit or tier-1 — never a stub sitting at the edge.
	g := genGraph(t, 32, 250)
	scores := g.Betweenness()
	best, bestIdx := -1.0, -1
	for i, s := range scores {
		if s > best {
			best, bestIdx = s, i
		}
	}
	if role := g.ASes[bestIdx].Role; role == RoleStub {
		t.Errorf("highest-betweenness AS %v is a stub (score %v)", g.ASes[bestIdx].ASN, best)
	}
}

func TestBetweennessTinyGraph(t *testing.T) {
	// Fewer than 3 ASes means no AS can sit between two others; the
	// zero-value graph must not panic either.
	empty := &Graph{}
	if got := empty.Betweenness(); len(got) != 0 {
		t.Errorf("empty graph scores = %v", got)
	}
	if got := empty.ChokePoints(); len(got) != 0 {
		t.Errorf("empty graph chokepoints = %v", got)
	}
}

func TestChokePointsRankingContract(t *testing.T) {
	g := genGraph(t, 33, 250)
	cps := g.ChokePoints()
	if len(cps) == 0 {
		t.Fatal("no chokepoints on a 250-AS multi-country graph")
	}
	for i, cp := range cps {
		as := g.ASes[cp.Idx]
		if as.ASN != cp.ASN {
			t.Fatalf("chokepoint %d: Idx/ASN mismatch", i)
		}
		if as.Role == RoleStub {
			t.Errorf("stub %v ranked as a chokepoint", cp.ASN)
		}
		if cp.ASN == ResolverASN {
			t.Error("resolver ranked as a chokepoint")
		}
		// Border requirement: at least one neighbor in another country.
		cross := false
		for _, nb := range g.Neighbors[cp.Idx] {
			if g.ASes[nb.Idx].Country != as.Country {
				cross = true
				break
			}
		}
		if !cross {
			t.Errorf("chokepoint %v has no cross-country link", cp.ASN)
		}
		if i > 0 {
			prev := cps[i-1]
			if cp.Score > prev.Score {
				t.Fatalf("chokepoints not sorted by score desc at %d", i)
			}
			if cp.Score == prev.Score && cp.ASN < prev.ASN {
				t.Fatalf("score tie not broken by ascending ASN at %d", i)
			}
		}
	}
	// Deterministic ranking.
	again := g.ChokePoints()
	if len(again) != len(cps) {
		t.Fatalf("chokepoint count changed across calls: %d vs %d", len(again), len(cps))
	}
	for i := range cps {
		if cps[i] != again[i] {
			t.Fatalf("chokepoint ranking not deterministic at %d", i)
		}
	}
}
