package topology

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"churntomo/internal/netaddr"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the conventional "AS123" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", a) }

// Role is the structural role of an AS in the routing hierarchy.
type Role uint8

// Structural roles.
const (
	RoleTier1 Role = iota // member of the top clique, peers with all other tier-1s
	RoleTransit
	RoleStub
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleTier1:
		return "tier1"
	case RoleTransit:
		return "transit"
	case RoleStub:
		return "stub"
	default:
		return "unknown"
	}
}

// Class mirrors CAIDA's AS classification (transit/access, content,
// enterprise), which the paper uses to check whether churn depends on the
// destination class (it does not — Figure 3 discussion).
type Class uint8

// CAIDA-style classes.
const (
	ClassTransit Class = iota
	ClassContent
	ClassEnterprise
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassTransit:
		return "transit"
	case ClassContent:
		return "content"
	case ClassEnterprise:
		return "enterprise"
	default:
		return "unknown"
	}
}

// Rel is the business relationship a neighbor has from the viewpoint of the
// AS holding the adjacency list entry.
type Rel uint8

// Relationships.
const (
	RelProvider Rel = iota // the neighbor sells us transit
	RelCustomer            // the neighbor buys transit from us
	RelPeer                // settlement-free peer
)

// String returns the relationship name.
func (r Rel) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	default:
		return "unknown"
	}
}

// AS is one autonomous system.
type AS struct {
	ASN      ASN
	Name     string
	Country  string // country code, see World
	Region   Region
	Role     Role
	Class    Class
	Prefixes []netaddr.Prefix
}

// Link is an inter-AS adjacency. For customer-provider links, A is the
// customer and B the provider; for peer links the order is arbitrary.
type Link struct {
	ID   int32
	A, B int32 // AS indices into Graph.ASes
	Peer bool
}

// Neighbor is one adjacency-list entry.
type Neighbor struct {
	Idx  int32 // index of the neighboring AS
	Link int32 // index into Graph.Links
	Rel  Rel   // the neighbor's relationship to this AS
}

// Graph is a generated AS-level topology. It is immutable after generation;
// link failures are modeled externally (see internal/routing) as a set of
// down link IDs.
type Graph struct {
	ASes      []AS
	Links     []Link
	Neighbors [][]Neighbor // indexed like ASes

	// ResolverIP is the anycast open-resolver address (the 8.8.8.8 role),
	// hosted by the AS with ResolverASN.
	ResolverIP netaddr.IP

	byASN map[ASN]int32
}

// Index returns the slice index for an ASN.
func (g *Graph) Index(a ASN) (int32, bool) {
	i, ok := g.byASN[a]
	return i, ok
}

// MustIndex is Index for ASNs known to exist; it panics otherwise.
func (g *Graph) MustIndex(a ASN) int32 {
	i, ok := g.byASN[a]
	if !ok {
		panic(fmt.Sprintf("topology: unknown %v", a))
	}
	return i
}

// ByASN returns the AS record for an ASN.
func (g *Graph) ByASN(a ASN) (*AS, bool) {
	i, ok := g.byASN[a]
	if !ok {
		return nil, false
	}
	return &g.ASes[i], true
}

// CountryOf returns the country code of an ASN, or "" if unknown.
func (g *Graph) CountryOf(a ASN) string {
	if as, ok := g.ByASN(a); ok {
		return as.Country
	}
	return ""
}

// MetadataGraph builds a lookup-only Graph from an AS metadata table — the
// shape a dataset import reconstructs. It carries no links, neighbors or
// prefixes: ByASN, Index, CountryOf and iteration over ASes work (enough
// for censor enrichment, leakage attribution and churn-by-class), while
// routing over it is undefined.
func MetadataGraph(ases []AS) *Graph {
	g := &Graph{
		ASes:  append([]AS(nil), ases...),
		byASN: make(map[ASN]int32, len(ases)),
	}
	for i := range g.ASes {
		g.byASN[g.ASes[i].ASN] = int32(i)
	}
	return g
}

// ASNsOfRole lists all ASNs with the given role, in index order.
func (g *Graph) ASNsOfRole(r Role) []ASN {
	var out []ASN
	for i := range g.ASes {
		if g.ASes[i].Role == r {
			out = append(out, g.ASes[i].ASN)
		}
	}
	return out
}

// GenConfig parameterizes topology generation.
type GenConfig struct {
	Seed      uint64
	ASes      int // total AS count, including tier-1s; minimum 16
	Tier1     int // size of the top clique; default 8
	Countries int // how many World countries to use; default 30

	// TransitFrac is the fraction of non-tier-1 ASes acting as regional
	// transit providers. Default 0.18.
	TransitFrac float64
	// ContentFrac is the fraction of stub ASes classified as content
	// (candidate measurement destinations and VPN hosts). Default 0.3.
	ContentFrac float64
	// ForeignProviderProb is the probability that a stub buys transit from
	// an AS outside its own country — the structural precondition for
	// censorship leakage. Default 0.15.
	ForeignProviderProb float64
	// PeerProb is the probability that two transit ASes in the same region
	// establish a settlement-free peering. Default 0.25.
	PeerProb float64
}

func (c *GenConfig) fillDefaults() {
	if c.ASes == 0 {
		c.ASes = 400
	}
	if c.Tier1 == 0 {
		c.Tier1 = 8
	}
	if c.Countries == 0 {
		c.Countries = 30
	}
	if c.Countries > len(World) {
		c.Countries = len(World)
	}
	if c.TransitFrac == 0 {
		c.TransitFrac = 0.18
	}
	if c.ContentFrac == 0 {
		c.ContentFrac = 0.3
	}
	if c.ForeignProviderProb == 0 {
		c.ForeignProviderProb = 0.06
	}
	if c.PeerProb == 0 {
		c.PeerProb = 0.25
	}
}

// Validate reports configuration errors.
func (c *GenConfig) Validate() error {
	cc := *c
	cc.fillDefaults()
	if cc.ASes < 16 {
		return fmt.Errorf("topology: need at least 16 ASes, got %d", cc.ASes)
	}
	if cc.Tier1 < 2 || cc.Tier1 > len(tier1Flavor) {
		return fmt.Errorf("topology: tier1 count %d outside [2,%d]", cc.Tier1, len(tier1Flavor))
	}
	if cc.Tier1 >= cc.ASes/2 {
		return fmt.Errorf("topology: tier1 count %d too large for %d ASes", cc.Tier1, cc.ASes)
	}
	return nil
}

// generator carries state during a single Generate call.
type generator struct {
	cfg GenConfig
	rng *rand.Rand
	g   *Graph

	usedASN   map[ASN]bool
	nextBlock uint32 // next /16 block index for prefix allocation
}

// pcgStreamTopology is the graph generator's RNG stream word (truncated
// "topology" in ASCII; the historical seed value is kept so existing
// golden worlds reproduce). Stream words are module-unique, enforced by
// churnvet.
const pcgStreamTopology = 0x70706f6c6f6779 // "ppology"

// Generate builds a topology from cfg. Identical configs produce identical
// graphs.
func Generate(cfg GenConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	gen := &generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewPCG(cfg.Seed, pcgStreamTopology)),
		g:         &Graph{byASN: make(map[ASN]int32)},
		usedASN:   make(map[ASN]bool),
		nextBlock: 20 << 8, // allocate /16s starting at 20.0.0.0
	}
	gen.build()
	return gen.g, nil
}

// MustGenerate is Generate for known-good configs; it panics on error.
func MustGenerate(cfg GenConfig) *Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

func (gen *generator) build() {
	countries := World[:gen.cfg.Countries]

	// Distribute non-tier-1 ASes over countries proportionally to weight.
	remaining := gen.cfg.ASes - gen.cfg.Tier1 - 1 // -1 for the resolver AS
	totalWeight := 0
	for _, c := range countries {
		totalWeight += c.Weight
	}
	perCountry := make([]int, len(countries))
	assigned := 0
	for i, c := range countries {
		perCountry[i] = remaining * c.Weight / totalWeight
		assigned += perCountry[i]
	}
	for i := 0; assigned < remaining; i, assigned = i+1, assigned+1 {
		perCountry[i%len(countries)]++
	}

	gen.addTier1s(countries)
	gen.addResolver()

	// Per-country transit and stubs.
	var transitByCountry = make(map[string][]int32)
	var transitByRegion = make(map[Region][]int32)
	for i := range gen.g.ASes {
		if gen.g.ASes[i].Role == RoleTier1 {
			transitByRegion[gen.g.ASes[i].Region] = append(transitByRegion[gen.g.ASes[i].Region], int32(i))
		}
	}
	for ci, c := range countries {
		n := perCountry[ci]
		if n == 0 {
			continue
		}
		nTransit := int(float64(n)*gen.cfg.TransitFrac + 0.5)
		if nTransit == 0 && n >= 3 {
			nTransit = 1
		}
		flavor := append([]flavorAS(nil), countryFlavor[c.Code]...)
		for t := 0; t < nTransit; t++ {
			idx := gen.addAS(c, RoleTransit, ClassTransit, &flavor, 2)
			gen.connectTransit(idx, transitByCountry[c.Code], transitByRegion[c.Region])
			transitByCountry[c.Code] = append(transitByCountry[c.Code], idx)
			transitByRegion[c.Region] = append(transitByRegion[c.Region], idx)
		}
		for s := 0; s < n-nTransit; s++ {
			class := ClassEnterprise
			if gen.rng.Float64() < gen.cfg.ContentFrac {
				class = ClassContent
			}
			idx := gen.addAS(c, RoleStub, class, &flavor, 1)
			gen.connectStub(idx, transitByCountry, transitByRegion)
		}
	}
}

func (gen *generator) addTier1s(countries []Country) {
	var idxs []int32
	for i := 0; i < gen.cfg.Tier1; i++ {
		f := tier1Flavor[i]
		code := tier1Country[f.ASN]
		country, ok := CountryByCode(code)
		if !ok || !gen.countryInUse(countries, code) {
			country = countries[i%len(countries)]
		}
		idx := gen.appendAS(AS{
			ASN:     f.ASN,
			Name:    f.Name,
			Country: country.Code,
			Region:  country.Region,
			Role:    RoleTier1,
			Class:   ClassTransit,
		}, 3)
		idxs = append(idxs, idx)
	}
	// Full mesh of peer links.
	for i := 0; i < len(idxs); i++ {
		for j := i + 1; j < len(idxs); j++ {
			gen.addLink(idxs[i], idxs[j], true)
		}
	}
}

func (gen *generator) countryInUse(countries []Country, code string) bool {
	for _, c := range countries {
		if c.Code == code {
			return true
		}
	}
	return false
}

// addResolver creates the open-resolver content AS and homes it to two
// tier-1 providers, mimicking a globally well-connected anycast network.
func (gen *generator) addResolver() {
	us, _ := CountryByCode("US")
	idx := gen.appendAS(AS{
		ASN:     ResolverASN,
		Name:    resolverName,
		Country: us.Code,
		Region:  us.Region,
		Role:    RoleStub,
		Class:   ClassContent,
	}, 0)
	gen.usedASN[ResolverASN] = true
	// Dedicated, stable prefix so the resolver address is recognizable.
	pfx := netaddr.MustParsePrefix("8.8.8.0/24")
	gen.g.ASes[idx].Prefixes = []netaddr.Prefix{pfx}
	gen.g.ResolverIP = netaddr.MustParseIP("8.8.8.8")

	n := 0
	for i := range gen.g.ASes {
		if gen.g.ASes[i].Role == RoleTier1 && n < 2 {
			gen.addLink(idx, int32(i), false)
			n++
		}
	}
}

// addAS creates one AS in country c, consuming flavor names when available.
func (gen *generator) addAS(c Country, role Role, class Class, flavor *[]flavorAS, prefixes int) int32 {
	var (
		asn  ASN
		name string
	)
	for len(*flavor) > 0 {
		f := (*flavor)[0]
		*flavor = (*flavor)[1:]
		if !gen.usedASN[f.ASN] {
			asn, name = f.ASN, f.Name
			break
		}
	}
	if asn == 0 {
		asn = gen.freshASN()
		kind := "NET"
		switch {
		case role == RoleTransit:
			kind = "TRANSIT"
		case class == ClassContent:
			kind = "HOSTING"
		}
		name = fmt.Sprintf("%s-%s-%d", c.Code, kind, asn%1000)
	}
	return gen.appendAS(AS{
		ASN:     asn,
		Name:    name,
		Country: c.Code,
		Region:  c.Region,
		Role:    role,
		Class:   class,
	}, prefixes)
}

func (gen *generator) appendAS(as AS, prefixes int) int32 {
	idx := int32(len(gen.g.ASes))
	gen.usedASN[as.ASN] = true
	for p := 0; p < prefixes; p++ {
		as.Prefixes = append(as.Prefixes, gen.allocPrefix())
	}
	gen.g.ASes = append(gen.g.ASes, as)
	gen.g.Neighbors = append(gen.g.Neighbors, nil)
	gen.g.byASN[as.ASN] = idx
	return idx
}

func (gen *generator) freshASN() ASN {
	for {
		a := ASN(gen.rng.IntN(190000) + 10000)
		if !gen.usedASN[a] {
			return a
		}
	}
}

// allocPrefix hands out sequential /16 blocks, skipping space reserved for
// the resolver and anything above 223.0.0.0 (multicast).
func (gen *generator) allocPrefix() netaddr.Prefix {
	for {
		block := gen.nextBlock
		gen.nextBlock++
		first := byte(block >> 8)
		if first >= 224 {
			panic("topology: address space exhausted")
		}
		p := netaddr.MakePrefix(netaddr.MakeIP(first, byte(block), 0, 0), 16)
		if p.Overlaps(netaddr.MustParsePrefix("8.8.8.0/24")) {
			continue
		}
		return p
	}
}

// addLink wires a and b; for non-peer links a is the customer.
func (gen *generator) addLink(a, b int32, peer bool) {
	id := int32(len(gen.g.Links))
	gen.g.Links = append(gen.g.Links, Link{ID: id, A: a, B: b, Peer: peer})
	if peer {
		gen.g.Neighbors[a] = append(gen.g.Neighbors[a], Neighbor{Idx: b, Link: id, Rel: RelPeer})
		gen.g.Neighbors[b] = append(gen.g.Neighbors[b], Neighbor{Idx: a, Link: id, Rel: RelPeer})
		return
	}
	gen.g.Neighbors[a] = append(gen.g.Neighbors[a], Neighbor{Idx: b, Link: id, Rel: RelProvider})
	gen.g.Neighbors[b] = append(gen.g.Neighbors[b], Neighbor{Idx: a, Link: id, Rel: RelCustomer})
}

// connectTransit homes a new transit AS: one or two providers drawn from
// tier-1s and earlier regional transits, plus regional peerings.
func (gen *generator) connectTransit(idx int32, sameCountry, sameRegion []int32) {
	providers := gen.pickProviders(idx, sameCountry, sameRegion, 1+gen.rng.IntN(2))
	for _, p := range providers {
		gen.addLink(idx, p, false)
	}
	// Regional peering among transits.
	for _, other := range sameRegion {
		if other == idx || gen.g.ASes[other].Role == RoleTier1 {
			continue
		}
		if gen.rng.Float64() < gen.cfg.PeerProb {
			gen.addLink(idx, other, true)
		}
	}
}

// connectStub homes a stub with one to three providers, mostly domestic.
func (gen *generator) connectStub(idx int32, byCountry map[string][]int32, byRegion map[Region][]int32) {
	as := &gen.g.ASes[idx]
	n := 1 + gen.rng.IntN(3) // 1..3 providers; multi-homing drives path churn
	if as.Class == ClassContent {
		n = 2 + gen.rng.IntN(3) // datacenters: 2..4 upstreams
	}
	domestic := byCountry[as.Country]
	regional := byRegion[as.Region]
	chosen := map[int32]bool{}
	for i := 0; i < n; i++ {
		var pool []int32
		switch {
		case gen.rng.Float64() < gen.cfg.ForeignProviderProb:
			pool = gen.allTransit()
		case len(domestic) > 0 && gen.rng.Float64() < 0.8:
			pool = domestic
		case len(regional) > 0:
			pool = regional
		default:
			pool = gen.allTransit()
		}
		if len(pool) == 0 {
			pool = gen.allTransit()
		}
		p := pool[gen.rng.IntN(len(pool))]
		if p == idx || chosen[p] {
			continue
		}
		chosen[p] = true
		gen.addLink(idx, p, false)
	}
	if len(chosen) == 0 { // guarantee connectivity
		pool := gen.allTransit()
		for {
			p := pool[gen.rng.IntN(len(pool))]
			if p != idx {
				gen.addLink(idx, p, false)
				break
			}
		}
	}
}

func (gen *generator) allTransit() []int32 {
	var out []int32
	for i := range gen.g.ASes {
		if r := gen.g.ASes[i].Role; r == RoleTier1 || r == RoleTransit {
			out = append(out, int32(i))
		}
	}
	return out
}

// pickProviders selects up to n distinct providers for a transit AS,
// preferring the same country, then region, then tier-1s.
func (gen *generator) pickProviders(idx int32, sameCountry, sameRegion []int32, n int) []int32 {
	var tier1 []int32
	for i := range gen.g.ASes {
		if gen.g.ASes[i].Role == RoleTier1 {
			tier1 = append(tier1, int32(i))
		}
	}
	chosen := map[int32]bool{}
	var out []int32
	pools := [][]int32{sameCountry, sameRegion, tier1}
	for len(out) < n {
		var pool []int32
		switch r := gen.rng.Float64(); {
		case r < 0.35 && len(pools[0]) > 0:
			pool = pools[0]
		case r < 0.6 && len(pools[1]) > 0:
			pool = pools[1]
		default:
			pool = tier1
		}
		p := pool[gen.rng.IntN(len(pool))]
		if p == idx || chosen[p] {
			// Avoid spinning when pools are tiny.
			if len(chosen) >= len(tier1)+len(sameRegion) {
				break
			}
			continue
		}
		chosen[p] = true
		out = append(out, p)
	}
	if len(out) == 0 {
		// Always at least one tier-1 provider so the graph stays connected.
		out = append(out, tier1[gen.rng.IntN(len(tier1))])
	}
	return out
}

// RouterIP returns the i-th router address of an AS (used by the traceroute
// simulator for hop addresses). Router addresses are drawn from the end of
// the AS's first prefix so they do not collide with host allocations.
func (g *Graph) RouterIP(idx int32, i int) netaddr.IP {
	as := &g.ASes[idx]
	p := as.Prefixes[0]
	n := p.NumAddrs()
	return p.Nth(n - 2 - uint64(i)%16)
}

// HostIP returns a stable host address inside the AS's first prefix.
func (g *Graph) HostIP(idx int32, i int) netaddr.IP {
	as := &g.ASes[idx]
	p := as.Prefixes[0]
	return p.Nth(1 + uint64(i)%(p.NumAddrs()/2))
}

// CountriesInUse lists the distinct country codes present, sorted.
func (g *Graph) CountriesInUse() []string {
	set := map[string]bool{}
	for i := range g.ASes {
		set[g.ASes[i].Country] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
