package topology

// This file holds the static world model: regions, countries and well-known
// AS names used to label generated topologies. Weights steer how many ASes a
// generated scenario places in each country; they are loosely proportional
// to real AS census counts, compressed so small scenarios still get
// geographic spread. Flavor ASNs echo ASes that the paper's evaluation
// highlights (e.g. AS4134 CHINANET-BACKBONE, AS1299 TELIANET, AS31621
// QXL-NET) so the reproduced tables read like the originals.

// Region is a coarse geographic region used for peering locality and for the
// paper's observation that most censorship leakage is regional.
type Region uint8

// Regions of the world model.
const (
	RegionNorthAmerica Region = iota
	RegionLatinAmerica
	RegionEurope
	RegionMiddleEast
	RegionAsia
	RegionAfrica
	RegionOceania
	numRegions
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case RegionNorthAmerica:
		return "North America"
	case RegionLatinAmerica:
		return "Latin America"
	case RegionEurope:
		return "Europe"
	case RegionMiddleEast:
		return "Middle East"
	case RegionAsia:
		return "Asia"
	case RegionAfrica:
		return "Africa"
	case RegionOceania:
		return "Oceania"
	default:
		return "Unknown"
	}
}

// Country describes one country in the world model.
type Country struct {
	Code   string // ISO 3166-1 alpha-2 style code
	Name   string
	Region Region
	Weight int // relative share of generated ASes
}

// World lists the countries available to the generator, largest first so
// truncated scenarios keep the heavyweights.
var World = []Country{
	{"US", "United States", RegionNorthAmerica, 10},
	{"CN", "China", RegionAsia, 8},
	{"GB", "United Kingdom", RegionEurope, 7},
	{"DE", "Germany", RegionEurope, 6},
	{"RU", "Russia", RegionEurope, 6},
	{"JP", "Japan", RegionAsia, 5},
	{"FR", "France", RegionEurope, 5},
	{"IN", "India", RegionAsia, 5},
	{"BR", "Brazil", RegionLatinAmerica, 5},
	{"PL", "Poland", RegionEurope, 4},
	{"SG", "Singapore", RegionAsia, 4},
	{"NL", "Netherlands", RegionEurope, 4},
	{"SE", "Sweden", RegionEurope, 3},
	{"UA", "Ukraine", RegionEurope, 3},
	{"CA", "Canada", RegionNorthAmerica, 3},
	{"AU", "Australia", RegionOceania, 3},
	{"KR", "South Korea", RegionAsia, 3},
	{"IT", "Italy", RegionEurope, 3},
	{"ES", "Spain", RegionEurope, 3},
	{"TR", "Turkey", RegionMiddleEast, 3},
	{"AE", "United Arab Emirates", RegionMiddleEast, 2},
	{"CY", "Cyprus", RegionEurope, 2},
	{"IE", "Ireland", RegionEurope, 2},
	{"HK", "Hong Kong", RegionAsia, 2},
	{"TW", "Taiwan", RegionAsia, 2},
	{"TH", "Thailand", RegionAsia, 2},
	{"VN", "Vietnam", RegionAsia, 2},
	{"MY", "Malaysia", RegionAsia, 2},
	{"ID", "Indonesia", RegionAsia, 2},
	{"PK", "Pakistan", RegionAsia, 2},
	{"SA", "Saudi Arabia", RegionMiddleEast, 2},
	{"IR", "Iran", RegionMiddleEast, 2},
	{"IL", "Israel", RegionMiddleEast, 2},
	{"EG", "Egypt", RegionAfrica, 2},
	{"ZA", "South Africa", RegionAfrica, 2},
	{"NG", "Nigeria", RegionAfrica, 2},
	{"KE", "Kenya", RegionAfrica, 1},
	{"MX", "Mexico", RegionLatinAmerica, 2},
	{"AR", "Argentina", RegionLatinAmerica, 2},
	{"CL", "Chile", RegionLatinAmerica, 1},
	{"GR", "Greece", RegionEurope, 1},
	{"NZ", "New Zealand", RegionOceania, 1},
}

// CountryByCode returns the world-model entry for a country code.
func CountryByCode(code string) (Country, bool) {
	for _, c := range World {
		if c.Code == code {
			return c, true
		}
	}
	return Country{}, false
}

// flavorAS is a well-known ASN/name pair attached to generated ASes for
// readable output.
type flavorAS struct {
	ASN  ASN
	Name string
}

// tier1Flavor seeds the tier-1 clique. AS4134 and AS1299 appear here
// deliberately: the paper identifies both as censoring ASes with wide
// leakage, and both are backbone networks in reality.
var tier1Flavor = []flavorAS{
	{3356, "LEVEL3"},
	{174, "COGENT-174"},
	{1299, "TELIANET"},
	{2914, "NTT-GIN"},
	{4134, "CHINANET-BACKBONE"},
	{3320, "DTAG"},
	{5511, "OPENTRANSIT"},
	{701, "UUNET"},
	{6762, "SEABONE-NET"},
	{6453, "TATA-GLOBAL"},
}

// tier1Country maps each tier-1 flavor ASN to its home country.
var tier1Country = map[ASN]string{
	3356: "US", 174: "US", 1299: "SE", 2914: "JP", 3320: "DE",
	5511: "FR", 6762: "IT", 701: "US", 6453: "IN", 4134: "CN",
}

// countryFlavor provides well-known ASNs per country, consumed in order as
// the generator creates transit and stub ASes there. Entries echo the ASes
// named in the paper's Tables 2 and 3.
var countryFlavor = map[string][]flavorAS{
	"CN": {
		{4812, "CHINANET-SH"},
		{4837, "CHINA169-UNICOM"},
		{58461, "HANGZHOU-IDC"},
		{37963, "ALIBABA-CN-NET"},
		{17621, "CNCGROUP-SH"},
		{4132, "CHINANET-SC"},
	},
	"GB": {
		{5413, "GXN"},
		{8928, "INTEROUTE"},
		{9009, "M247"},
		{20860, "IOMART"},
		{35017, "SWIFTWAY"},
		{42831, "UKSERVERS"},
	},
	"SG": {
		{4657, "STARHUB"},
		{7473, "SINGTEL"},
		{17547, "MYREPUBLIC"},
		{38001, "NEWMEDIAEXPRESS"},
	},
	"PL": {
		{20853, "ETOP"},
		{31621, "QXL-NET"},
		{42656, "TERRA-PL"},
	},
	"CY": {
		{8544, "PRIMETEL"},
		{35432, "CABLENET-CY"},
		{197648, "MTN-CY"},
	},
	"UA":  {{59564, "UNIT-IS"}},
	"AE":  {{8966, "ETISALAT"}},
	"SE":  {{8473, "BAHNHOF"}},
	"US":  {{7018, "ATT-INTERNET4"}, {6939, "HURRICANE"}, {2906, "NETFLIX-ASN"}},
	"JP":  {{4713, "OCN"}, {2497, "IIJ"}},
	"RU":  {{12389, "ROSTELECOM"}, {8359, "MTS"}, {3216, "SOVAM"}},
	"FR":  {{3215, "ORANGE-FR"}},
	"NL":  {{1103, "SURFNET"}},
	"DE":  {{8881, "VERSATEL"}},
	"IN":  {{9829, "BSNL"}, {4755, "TATACOMM-IN"}},
	"IR":  {{12880, "ITC-IR"}, {58224, "TIC-IR"}},
	"IE":  {{5466, "EIRCOM"}},
	"ES":  {{3352, "TELEFONICA-ES"}},
	"KR":  {{4766, "KIXS-KT"}},
	"HK":  {{4760, "HKTIMS"}},
	"BR":  {{28573, "CLARO-BR"}},
	"AU":  {{1221, "TELSTRA"}},
	"TR":  {{9121, "TTNET"}},
	"PK":  {{17557, "PKTELECOM"}},
	"EG":  {{8452, "TE-AS"}},
	"ZA":  {{5713, "SAIX-NET"}},
	"MX":  {{8151, "UNINET-MX"}},
	"TW":  {{3462, "HINET"}},
	"TH":  {{7470, "TRUE-TH"}},
	"VN":  {{7552, "VIETTEL"}},
	"MY":  {{4788, "TMNET"}},
	"ID":  {{7713, "TELKOMNET"}},
	"SA":  {{25019, "SAUDINET"}},
	"IL":  {{8551, "BEZEQINT"}},
	"NG":  {{29465, "MTN-NG"}},
	"KE":  {{36914, "KENET"}},
	"AR":  {{7303, "TELECOM-AR"}},
	"CL":  {{7418, "TELEFONICA-CL"}},
	"GR":  {{6799, "OTENET"}},
	"NZ":  {{9790, "VOCUS-NZ"}},
	"CA":  {{812, "ROGERS"}},
	"IT":  {{3269, "TELECOM-ITALIA"}},
	"UA2": nil, // placeholder guard against accidental lookups
}

// ResolverASN is the well-known open-resolver network (the simulator's
// stand-in for Google Public DNS, AS15169 / 8.8.8.8).
const ResolverASN ASN = 15169

// resolverName names the resolver AS.
const resolverName = "GDNS-ANYCAST"
