// Package topology generates the synthetic AS-level Internet the simulator
// measures over: a hierarchy of tier-1, transit and stub autonomous systems
// spread across countries and regions, wired with customer-provider and
// peer-to-peer links (the inputs to Gao–Rexford routing), and each holding
// one or more IPv4 prefixes.
//
// Paper correspondence: the substrate under everything. The real topology
// is unavailable to a reproduction (the paper's vantage point dataset is
// proprietary), so the generator is built to reproduce the structural
// properties the paper's technique depends on: multi-homing (so BGP churn
// yields distinct valley-free paths), regional peering locality (so leakage
// is mostly regional, §4.4), and a handful of large international transit
// ASes that export their routes across borders (the "China" role in the
// paper's leakage analysis).
//
// Entry points: Generate builds a Graph from a GenConfig; Graph.Index /
// MustIndex map ASNs to dense indices, HostIP derives stable host
// addresses, and CountryByCode names regions for reports.
//
// Invariants: generation is deterministic for a GenConfig (same seed, same
// graph, byte for byte); a Graph is immutable after Generate and therefore
// safe for unsynchronized concurrent reads — routing, measurement and
// analysis all share one instance across worker pools.
package topology
