package topology

import "sort"

// Betweenness returns the shortest-path betweenness centrality of every AS,
// indexed like Graph.ASes, computed with Brandes' algorithm over the
// undirected link graph (unit edge weights, business relationships
// ignored). It deliberately measures *structural* chokepoint potential —
// how many shortest paths cross an AS — rather than valley-free routed
// load: the ranking is a candidate heuristic in the spirit of the
// decoy-routing placement literature, not a traffic model, and it must
// stay meaningful even as churn moves the routed paths around.
//
// Scores are normalized by the number of ordered non-adjacent pairs so
// they land in [0, 1] regardless of graph size. Deterministic: plain BFS
// over the adjacency lists in index order, no randomness.
func (g *Graph) Betweenness() []float64 {
	n := len(g.ASes)
	score := make([]float64, n)
	if n < 3 {
		return score
	}

	// Brandes: one BFS per source, accumulating pair dependencies.
	dist := make([]int32, n)
	sigma := make([]float64, n) // shortest-path counts
	delta := make([]float64, n) // dependency accumulator
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	preds := make([][]int32, n)

	for s := 0; s < n; s++ {
		order = order[:0]
		queue = queue[:0]
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, nb := range g.Neighbors[v] {
				w := nb.Idx
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Accumulate dependencies in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != int32(s) {
				score[w] += delta[w]
			}
		}
	}

	// Normalize to [0, 1]: the maximum possible ordered-pair count through
	// a vertex is (n-1)(n-2).
	norm := float64(n-1) * float64(n-2)
	for i := range score {
		score[i] /= norm
	}
	return score
}

// ChokePoint is one candidate censorship chokepoint: a border AS ranked by
// betweenness centrality.
type ChokePoint struct {
	Idx   int32
	ASN   ASN
	Score float64
}

// ChokePoints ranks the graph's border ASes — non-stub ASes with at least
// one cross-country link, the places a national filtering mandate or a
// decoy-routing deployment would sit — by betweenness centrality,
// descending (ties broken by ascending ASN for determinism). The resolver
// AS is excluded: nothing in the simulation ever censors it.
func (g *Graph) ChokePoints() []ChokePoint {
	bc := g.Betweenness()
	var out []ChokePoint
	for i := range g.ASes {
		as := &g.ASes[i]
		if as.Role == RoleStub || as.ASN == ResolverASN {
			continue
		}
		border := false
		for _, nb := range g.Neighbors[i] {
			if g.ASes[nb.Idx].Country != as.Country {
				border = true
				break
			}
		}
		if !border {
			continue
		}
		out = append(out, ChokePoint{Idx: int32(i), ASN: as.ASN, Score: bc[i]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
