package topology

import (
	"testing"

	"churntomo/internal/netaddr"
)

func testGraph(t *testing.T, cfg GenConfig) *Graph {
	t.Helper()
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, ASes: 120}
	a := testGraph(t, cfg)
	b := testGraph(t, cfg)
	if len(a.ASes) != len(b.ASes) || len(a.Links) != len(b.Links) {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d",
			len(a.ASes), len(a.Links), len(b.ASes), len(b.Links))
	}
	for i := range a.ASes {
		if a.ASes[i].ASN != b.ASes[i].ASN || a.ASes[i].Country != b.ASes[i].Country {
			t.Fatalf("AS %d differs across runs", i)
		}
	}
	c := testGraph(t, GenConfig{Seed: 43, ASes: 120})
	same := len(a.Links) == len(c.Links)
	if same {
		diff := false
		for i := range a.ASes {
			if a.ASes[i].ASN != c.ASes[i].ASN {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := GenConfig{Seed: 1, ASes: 200, Tier1: 6}
	g := testGraph(t, cfg)
	if got := len(g.ASes); got != 200 {
		t.Errorf("generated %d ASes, want 200", got)
	}
	tier1 := g.ASNsOfRole(RoleTier1)
	if len(tier1) != 6 {
		t.Errorf("generated %d tier-1s, want 6", len(tier1))
	}
	if n := len(g.ASNsOfRole(RoleTransit)); n == 0 {
		t.Error("no transit ASes generated")
	}
	if n := len(g.ASNsOfRole(RoleStub)); n < 100 {
		t.Errorf("only %d stubs generated", n)
	}
}

func TestTier1Clique(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 7, ASes: 100, Tier1: 5})
	tier1 := map[int32]bool{}
	for i := range g.ASes {
		if g.ASes[i].Role == RoleTier1 {
			tier1[int32(i)] = true
		}
	}
	for i := range tier1 {
		peers := 0
		for _, nb := range g.Neighbors[i] {
			if tier1[nb.Idx] && nb.Rel == RelPeer {
				peers++
			}
		}
		if peers != len(tier1)-1 {
			t.Errorf("tier-1 %v peers with %d of %d clique members", g.ASes[i].ASN, peers, len(tier1)-1)
		}
	}
}

func TestEveryASConnected(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 3, ASes: 300})
	for i := range g.ASes {
		if len(g.Neighbors[i]) == 0 {
			t.Errorf("%v has no links", g.ASes[i].ASN)
		}
	}
	// Every non-tier-1 must have at least one provider (reachability to the
	// clique is what makes Gao–Rexford routing total).
	for i := range g.ASes {
		if g.ASes[i].Role == RoleTier1 {
			continue
		}
		hasProvider := false
		for _, nb := range g.Neighbors[i] {
			if nb.Rel == RelProvider {
				hasProvider = true
				break
			}
		}
		if !hasProvider {
			t.Errorf("%v (%v) has no provider", g.ASes[i].ASN, g.ASes[i].Role)
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 11, ASes: 150})
	for i, nbs := range g.Neighbors {
		for _, nb := range nbs {
			found := false
			for _, back := range g.Neighbors[nb.Idx] {
				if back.Idx == int32(i) && back.Link == nb.Link {
					found = true
					// Relationship must invert correctly.
					switch nb.Rel {
					case RelPeer:
						if back.Rel != RelPeer {
							t.Errorf("asymmetric peer on link %d", nb.Link)
						}
					case RelProvider:
						if back.Rel != RelCustomer {
							t.Errorf("provider edge lacks customer back-edge on link %d", nb.Link)
						}
					case RelCustomer:
						if back.Rel != RelProvider {
							t.Errorf("customer edge lacks provider back-edge on link %d", nb.Link)
						}
					}
				}
			}
			if !found {
				t.Errorf("link %d missing reverse adjacency", nb.Link)
			}
		}
	}
}

func TestPrefixesDisjoint(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 5, ASes: 250})
	var all []netaddr.Prefix
	for i := range g.ASes {
		if len(g.ASes[i].Prefixes) == 0 {
			t.Errorf("%v has no prefixes", g.ASes[i].ASN)
		}
		all = append(all, g.ASes[i].Prefixes...)
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				t.Fatalf("prefixes overlap: %v and %v", all[i], all[j])
			}
		}
	}
}

func TestResolverAS(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 9, ASes: 100})
	as, ok := g.ByASN(ResolverASN)
	if !ok {
		t.Fatal("resolver AS missing")
	}
	if as.Class != ClassContent {
		t.Errorf("resolver class = %v", as.Class)
	}
	if !as.Prefixes[0].Contains(g.ResolverIP) {
		t.Errorf("resolver IP %v outside its prefix %v", g.ResolverIP, as.Prefixes[0])
	}
	idx := g.MustIndex(ResolverASN)
	if len(g.Neighbors[idx]) == 0 {
		t.Error("resolver AS is unconnected")
	}
}

func TestUniqueASNs(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 13, ASes: 500})
	seen := map[ASN]int{}
	for i := range g.ASes {
		seen[g.ASes[i].ASN]++
	}
	for a, n := range seen {
		if n > 1 {
			t.Errorf("%v assigned %d times", a, n)
		}
	}
}

func TestCountrySpread(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 17, ASes: 400, Countries: 25})
	used := g.CountriesInUse()
	if len(used) < 20 {
		t.Errorf("only %d countries in use, want >= 20", len(used))
	}
	// Flavor check: the heavyweight countries must exist and CN must carry
	// several ASes (it plays the exporter role in leakage experiments).
	cn := 0
	for i := range g.ASes {
		if g.ASes[i].Country == "CN" {
			cn++
		}
	}
	if cn < 5 {
		t.Errorf("CN has %d ASes, want >= 5", cn)
	}
}

func TestFlavorNames(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 2, ASes: 400, Countries: 30})
	if as, ok := g.ByASN(4134); !ok || as.Name != "CHINANET-BACKBONE" {
		t.Errorf("AS4134 flavor missing: %+v", as)
	}
	if as, ok := g.ByASN(1299); !ok || as.Name != "TELIANET" || as.Country != "SE" {
		t.Errorf("AS1299 flavor wrong: %+v", as)
	}
}

func TestRouterAndHostIPs(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 23, ASes: 100})
	for i := range g.ASes {
		idx := int32(i)
		for k := 0; k < 5; k++ {
			r := g.RouterIP(idx, k)
			h := g.HostIP(idx, k)
			if !g.ASes[i].Prefixes[0].Contains(r) {
				t.Fatalf("router IP %v outside prefix of %v", r, g.ASes[i].ASN)
			}
			if !g.ASes[i].Prefixes[0].Contains(h) {
				t.Fatalf("host IP %v outside prefix of %v", h, g.ASes[i].ASN)
			}
			if r == h {
				t.Fatalf("router and host IP collide for %v", g.ASes[i].ASN)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []GenConfig{
		{ASes: 5},
		{ASes: 100, Tier1: 1},
		{ASes: 100, Tier1: 60},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) succeeded, want error", cfg)
		}
	}
	good := GenConfig{ASes: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(default) failed: %v", err)
	}
}

func TestIndexLookups(t *testing.T) {
	g := testGraph(t, GenConfig{Seed: 31, ASes: 80})
	asn := g.ASes[10].ASN
	idx, ok := g.Index(asn)
	if !ok || idx != 10 {
		t.Errorf("Index(%v) = %d,%v", asn, idx, ok)
	}
	if _, ok := g.Index(ASN(999999999)); ok {
		t.Error("Index of unknown ASN succeeded")
	}
	if g.CountryOf(asn) == "" {
		t.Error("CountryOf known ASN empty")
	}
	if g.CountryOf(ASN(999999999)) != "" {
		t.Error("CountryOf unknown ASN non-empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex of unknown ASN should panic")
		}
	}()
	g.MustIndex(ASN(999999999))
}
