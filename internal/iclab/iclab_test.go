package iclab

import (
	"strings"
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/censor"
	"churntomo/internal/ipasmap"
	"churntomo/internal/routing"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

var (
	start = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
)

// buildStack assembles a small but complete scenario for tests.
func buildStack(t testing.TB, seed uint64, days int) *Scenario {
	t.Helper()
	end := start.AddDate(0, 0, days)
	g, err := topology.Generate(topology.GenConfig{Seed: seed, ASes: 250, Countries: 25})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := routing.GenTimeline(g, routing.TimelineConfig{Seed: seed, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	o := routing.NewOracle(g, tl, 2048)
	reg, err := censor.Generate(g, censor.GenConfig{Seed: seed, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	db, err := ipasmap.Build(g, ipasmap.BuildConfig{Seed: seed, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildScenario(g, o, reg, db, start, end, ScenarioConfig{Seed: seed, Vantages: 12, URLs: 24})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildScenarioShape(t *testing.T) {
	s := buildStack(t, 1, 30)
	if len(s.Vantages) != 12 || len(s.Targets) != 24 {
		t.Fatalf("scenario sizes: %d vantages, %d targets", len(s.Vantages), len(s.Targets))
	}
	vantageASNs := map[topology.ASN]bool{}
	for _, v := range s.Vantages {
		if v.ASN == topology.ResolverASN {
			t.Error("resolver chosen as vantage")
		}
		if vantageASNs[v.ASN] {
			t.Errorf("duplicate vantage %v", v.ASN)
		}
		vantageASNs[v.ASN] = true
		as, ok := s.Graph.ByASN(v.ASN)
		if !ok || as.Role != topology.RoleStub {
			t.Errorf("vantage %v not a stub", v.ASN)
		}
		if !as.Prefixes[0].Contains(v.IP) {
			t.Errorf("vantage IP %v outside its AS", v.IP)
		}
	}
	for _, tg := range s.Targets {
		if vantageASNs[tg.ASN] {
			t.Errorf("target %v collides with a vantage AS", tg.ASN)
		}
		if len(tg.Body) < 500 {
			t.Errorf("target %s body too small (%d)", tg.URL.Host, len(tg.Body))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	s := buildStack(t, 2, 5)
	cfg := PlatformConfig{Seed: 9, URLsPerDay: 3, RepeatsPerDay: 1}
	a := Run(s, cfg)
	b := Run(buildStack(t, 2, 5), cfg)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := &a.Records[i], &b.Records[i]
		if ra.Vantage != rb.Vantage || ra.URL != rb.URL || ra.Anomalies != rb.Anomalies || !ra.At.Equal(rb.At) {
			t.Fatalf("record %d differs across identical runs", i)
		}
	}
}

func TestRunScheduleCoverage(t *testing.T) {
	s := buildStack(t, 3, 10)
	ds := Run(s, PlatformConfig{Seed: 1, URLsPerDay: 4, RepeatsPerDay: 2})
	// 10 days x 4 URLs x 12 vantages x 2 repeats.
	want := 10 * 4 * 12 * 2
	if len(ds.Records) != want {
		t.Fatalf("got %d records, want %d", len(ds.Records), want)
	}
	// Every vantage appears; URLs rotate through the list.
	urls := map[string]bool{}
	vantages := map[topology.ASN]bool{}
	for i := range ds.Records {
		urls[ds.Records[i].URL] = true
		vantages[ds.Records[i].Vantage] = true
	}
	if len(vantages) != 12 {
		t.Errorf("only %d vantages measured", len(vantages))
	}
	if len(urls) != 24 { // 10*4=40 slots wrap the 24-URL list fully
		t.Errorf("only %d URLs measured", len(urls))
	}
}

func TestRunRecordsInternallyConsistent(t *testing.T) {
	s := buildStack(t, 4, 12)
	ds := Run(s, PlatformConfig{Seed: 2, URLsPerDay: 3, RepeatsPerDay: 2})
	okPaths, fails := 0, 0
	for i := range ds.Records {
		r := &ds.Records[i]
		if r.Fail == traceroute.OK {
			okPaths++
			if len(r.ASPath) < 2 {
				t.Fatalf("record %d: implausibly short AS path %v", i, r.ASPath)
			}
			if r.ASPath[0] != r.Vantage {
				t.Fatalf("record %d: path starts at %v, vantage %v", i, r.ASPath[0], r.Vantage)
			}
		} else {
			fails++
			if r.ASPath != nil {
				t.Fatalf("record %d: failed inference but path present", i)
			}
		}
		if !r.Unreachable && len(r.TruePath) == 0 {
			t.Fatalf("record %d: missing ground-truth path", i)
		}
	}
	if okPaths == 0 {
		t.Fatal("no record yielded a usable AS path")
	}
	frac := float64(fails) / float64(len(ds.Records))
	if frac > 0.35 {
		t.Errorf("inconclusive-path rate %.1f%% implausibly high", 100*frac)
	}
	if fails == 0 {
		t.Error("no inconclusive records at all; elimination rules never fire")
	}
}

func TestRunDetectsRealCensorship(t *testing.T) {
	s := buildStack(t, 5, 20)
	ds := Run(s, PlatformConfig{Seed: 3, URLsPerDay: 4, RepeatsPerDay: 2})

	truePos, trueNeg, detected, flagged := 0, 0, 0, 0
	agreeOnActed := 0
	for i := range ds.Records {
		r := &ds.Records[i]
		acted := len(r.TrueActs) > 0
		hasAnom := r.Anomalies != 0
		if acted {
			truePos++
			if hasAnom {
				detected++
				// At least one detected kind should be among the acting
				// censors' technique kinds (TTL may co-fire with others).
				var actedKinds anomaly.Set
				for _, a := range r.TrueActs {
					actedKinds |= a.Kinds
				}
				if r.Anomalies&actedKinds != 0 || r.Anomalies.Has(anomaly.TTL) {
					agreeOnActed++
				}
			}
		} else {
			trueNeg++
			if hasAnom {
				flagged++
			}
		}
	}
	if truePos == 0 {
		t.Fatal("no measurement crossed an acting censor; scenario toothless")
	}
	detRate := float64(detected) / float64(truePos)
	if detRate < 0.9 {
		t.Errorf("censored measurements detected at only %.1f%%", 100*detRate)
	}
	if agreeOnActed < detected*9/10 {
		t.Errorf("detected kinds disagree with acting censors: %d/%d", agreeOnActed, detected)
	}
	fpRate := float64(flagged) / float64(trueNeg)
	if fpRate > 0.03 {
		t.Errorf("false positive rate %.2f%% too high", 100*fpRate)
	}
	if flagged == 0 {
		t.Error("zero false positives; noise model inert")
	}
	t.Logf("censored=%d detected=%.1f%% fp=%.2f%%", truePos, 100*detRate, 100*fpRate)
}

func TestTable1Shape(t *testing.T) {
	s := buildStack(t, 6, 15)
	ds := Run(s, PlatformConfig{Seed: 4, URLsPerDay: 3, RepeatsPerDay: 2})
	tab := ds.Stats
	if tab.Measurements != len(ds.Records) {
		t.Errorf("measurements %d != records %d", tab.Measurements, len(ds.Records))
	}
	if tab.VantageASes != 12 {
		t.Errorf("vantage ASes = %d", tab.VantageASes)
	}
	if tab.UniqueURLs == 0 || tab.DestinationASes == 0 || tab.Countries == 0 {
		t.Errorf("empty dimensions: %+v", tab)
	}
	total := 0
	for _, k := range anomaly.Kinds {
		total += tab.Anomalies[k]
	}
	if total == 0 {
		t.Error("no anomalies at all over 15 days")
	}
	// Anomalous measurements must be the minority, echoing Table 1's rates
	// (a censored measurement can light up several kinds, so count records).
	anomalous := 0
	for i := range ds.Records {
		if ds.Records[i].Anomalies != 0 {
			anomalous++
		}
	}
	if rate := float64(anomalous) / float64(tab.Measurements); rate > 0.25 {
		t.Errorf("anomalous-measurement rate %.1f%% implausibly high", 100*rate)
	}
	out := tab.String()
	for _, want := range []string{"Measurements", "DNS anomalies", "Blockpages"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 rendering missing %q:\n%s", want, out)
		}
	}
	if tab.InconclusiveRate() <= 0 {
		t.Error("inconclusive rate zero")
	}
}

func TestScenarioErrors(t *testing.T) {
	s := buildStack(t, 7, 10)
	if _, err := BuildScenario(s.Graph, s.Oracle, s.Censors, s.DB, start, start, ScenarioConfig{}); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := BuildScenario(s.Graph, s.Oracle, s.Censors, s.DB, start, start.AddDate(0, 1, 0),
		ScenarioConfig{Vantages: 100000}); err == nil {
		t.Error("oversized vantage request accepted")
	}
}
