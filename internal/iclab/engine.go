package iclab

import (
	"context"
	"fmt"

	"churntomo/internal/parallel"
)

// This file is the sharded measurement engine. The schedule is
// embarrassingly parallel along days — the axis the paper itself slices on —
// so Run splits the window into one shard per day, measures shards on a
// worker pool, and concatenates the results in day order. Determinism is
// preserved by construction rather than by locking: a day's randomness
// depends only on (seed, day index), never on which worker ran it or when.

// DaySeed derives the deterministic RNG seed for one day's measurement
// shard from the platform seed and the day index. It is a splitmix64
// finalizer over the golden-ratio-spaced day sequence: nearby days (and
// nearby base seeds) yield statistically unrelated streams.
func DaySeed(base uint64, day int) uint64 {
	z := base + uint64(day)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Days returns the number of measurement days in the scenario window — the
// shard count of a platform run.
func (s *Scenario) Days() int {
	n := 0
	for at := s.Start; at.Before(s.End); at = at.AddDate(0, 0, 1) {
		n++
	}
	return n
}

// Run executes the measurement schedule over the scenario, sharding days
// across cfg.Workers goroutines. Deterministic for identical scenario and
// config at every worker count: parallel output is bit-identical to serial.
func Run(s *Scenario, cfg PlatformConfig) *Dataset {
	ds, _ := RunCtx(context.Background(), s, cfg)
	return ds
}

// RunCtx is Run with cooperative cancellation: once ctx is done no further
// day shard starts and the call returns (nil, ctx.Err()). Days already in
// flight finish first, so cancellation latency is bounded by one day's
// measurement, not the whole schedule.
//
// Every day shard is the same size (Scenario.ShardSize), so the merged
// record sequence is laid out once up front and each worker measures its
// day directly into its slot — no per-day slices, no concatenation copy.
// The output is identical to MergeShards over RunByDayCtx's shards.
func RunCtx(ctx context.Context, s *Scenario, cfg PlatformConfig) (*Dataset, error) {
	cfg.fillDefaults()
	days := s.Days()
	per := s.ShardSize(cfg)
	records := make([]Record, days*per)
	if err := parallel.ForEachCtx(ctx, cfg.Workers, days, func(day int) {
		s.runDayInto(cfg, day, records[day*per:(day+1)*per])
	}); err != nil {
		return nil, err
	}
	for i := range records {
		records[i].ID = int32(i)
	}
	ds := &Dataset{Scenario: s, Records: records}
	ds.Stats = ComputeTable1(ds)
	return ds, nil
}

// RunByDay executes the same schedule as Run but keeps the output sharded
// by day — shards[d] holds day d's records, IDs unassigned. This is the
// emission shape streaming consumers want: each shard can be pushed into a
// windowed localizer as the day "arrives", and MergeShards over all shards
// reconstructs exactly Run's record sequence.
func RunByDay(s *Scenario, cfg PlatformConfig) [][]Record {
	shards, _ := RunByDayCtx(context.Background(), s, cfg)
	return shards
}

// RunByDayCtx is RunByDay with cooperative cancellation; see RunCtx. The
// partially measured shards are discarded on cancellation — day shards are
// only meaningful as a complete schedule.
func RunByDayCtx(ctx context.Context, s *Scenario, cfg PlatformConfig) ([][]Record, error) {
	cfg.fillDefaults()
	days := s.Days()
	shards := make([][]Record, days)
	if err := parallel.ForEachCtx(ctx, cfg.Workers, days, func(day int) {
		shards[day] = s.runDay(cfg, day)
	}); err != nil {
		return nil, err
	}
	return shards, nil
}

// RunDaysCtx measures only the day range [lo, hi) of the schedule and
// returns those shards, shards[i] holding day lo+i, IDs unassigned. Because
// a day's randomness depends only on (seed, day index), a range run is
// bit-identical to the same days of a full RunByDayCtx — this is what lets
// a distributed coordinator split one cell's schedule across worker
// processes and MergeShards the pieces back into Run's exact record
// sequence.
func RunDaysCtx(ctx context.Context, s *Scenario, cfg PlatformConfig, lo, hi int) ([][]Record, error) {
	cfg.fillDefaults()
	days := s.Days()
	if lo < 0 || hi > days || lo > hi {
		return nil, fmt.Errorf("iclab: day range [%d, %d) outside the %d-day schedule", lo, hi, days)
	}
	shards := make([][]Record, hi-lo)
	if err := parallel.ForEachCtx(ctx, cfg.Workers, hi-lo, func(i int) {
		shards[i] = s.runDay(cfg, lo+i)
	}); err != nil {
		return nil, err
	}
	return shards, nil
}

// NewDataset assembles a Dataset from already-measured records (typically a
// MergeShards result) and computes its Table 1 statistics.
func NewDataset(s *Scenario, records []Record) *Dataset {
	ds := &Dataset{Scenario: s, Records: records}
	ds.Stats = ComputeTable1(ds)
	return ds
}

// MergeShards concatenates per-day record shards in shard order and assigns
// the global record IDs the merged sequence implies.
func MergeShards(shards [][]Record) []Record {
	total := 0
	for _, sh := range shards {
		total += len(sh)
	}
	out := make([]Record, 0, total)
	for _, sh := range shards {
		out = append(out, sh...)
	}
	for i := range out {
		out[i].ID = int32(i)
	}
	return out
}
