package iclab

import (
	"math/rand/v2"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/blockpage"
	"churntomo/internal/censor"
	"churntomo/internal/detect"
	"churntomo/internal/dnssim"
	"churntomo/internal/httpsim"
	"churntomo/internal/netaddr"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
	"churntomo/internal/webcat"
)

// TracesPerTest is the number of traceroutes recorded per measurement
// (paper §3.1: "three traceroutes between the vantage point and the URL").
const TracesPerTest = 3

// GroundTruthAct records, for validation only, one censor that acted on a
// measurement and with which techniques.
type GroundTruthAct struct {
	ASN   topology.ASN
	Kinds anomaly.Set
}

// Record is one measurement: the tuple the paper's §3.1 lists — vantage AS,
// URL, anomaly outcomes, three traceroutes, timestamp — plus the inferred
// AS-level path (or the elimination reason).
type Record struct {
	ID             int32
	Vantage        topology.ASN
	VantageCountry string
	TargetASN      topology.ASN
	TargetIdx      int32 // index into Scenario.Targets
	URL            string
	Category       webcat.Category
	At             time.Time

	// Anomalies holds the detector outcomes (never ground truth).
	Anomalies anomaly.Set

	Traces [TracesPerTest]traceroute.Trace
	// ASPath is the AS-level path inferred from the traces via the
	// IP-to-AS database; nil when the record is inconclusive.
	ASPath []topology.ASN
	Fail   traceroute.FailReason

	// Ground truth, for validation only — the tomography must not read
	// these fields.
	TruePath    []topology.ASN
	TrueActs    []GroundTruthAct
	Unreachable bool // routing offered no path at measurement time
}

// PlatformConfig tunes the measurement schedule and noise.
type PlatformConfig struct {
	Seed uint64

	// Workers is how many day shards are measured concurrently. 0 uses
	// GOMAXPROCS (parallel.ForEach's default), 1 forces the serial path.
	// Output is bit-identical at any setting: every day derives its own
	// RNG stream via DaySeed, and shards are merged in day order.
	Workers int

	// URLsPerDay is how many URLs the fleet tests each day. Vantages are
	// synchronized (the fleet works through the list in lockstep), so each
	// tested URL gets clauses from every vantage that day — the paper's
	// per-URL CNFs depend on that breadth. Default 6.
	URLsPerDay int
	// RepeatsPerDay is how many times each (vantage, URL) pair is measured
	// on a testing day; repeats at different hours are what let a single
	// day observe path churn (Figure 3's per-day series). Default 2.
	RepeatsPerDay int

	Traceroute traceroute.Config
	HTTPNoise  httpsim.Noise
	DNSNoise   dnssim.Noise

	// MidTestChurnWindow is how far apart a test's traceroutes are spread;
	// a routing change inside the window yields disagreeing traces (the
	// paper's rule-4 eliminations). Default 10 minutes.
	MidTestChurnWindow time.Duration
}

func (c *PlatformConfig) fillDefaults() {
	if c.URLsPerDay == 0 {
		c.URLsPerDay = 6
	}
	if c.RepeatsPerDay == 0 {
		c.RepeatsPerDay = 2
	}
	if c.HTTPNoise == (httpsim.Noise{}) {
		c.HTTPNoise = httpsim.DefaultNoise()
	}
	if c.DNSNoise == (dnssim.Noise{}) {
		c.DNSNoise = dnssim.Noise{DupResponseProb: 0.0002, SlowInjectorProb: 0.001}
	}
	if c.MidTestChurnWindow == 0 {
		c.MidTestChurnWindow = 10 * time.Minute
	}
}

// Dataset is a platform run's output.
type Dataset struct {
	Scenario *Scenario
	Records  []Record
	Stats    Table1
}

// ShardSize returns the exact number of records one day shard produces.
// The schedule has no conditional skips — unreachable destinations still
// emit (eliminated) records — so every shard is the same size, which lets
// the engine carve all shards out of one flat allocation.
func (s *Scenario) ShardSize(cfg PlatformConfig) int {
	return cfg.URLsPerDay * len(s.Vantages) * cfg.RepeatsPerDay
}

// pathRNG is a day shard's reusable path-keyed RNG. The schedule derives a
// fresh deterministic stream per (seed, path) pair; re-seeding one PCG is
// state-identical to rand.NewPCG with the same words, so reusing the pair
// replaces two heap allocations per expansion with none while producing
// bit-identical streams. One per shard, never shared across goroutines.
type pathRNG struct {
	pcg rand.PCG
	rng *rand.Rand
}

func newPathRNG() *pathRNG {
	p := &pathRNG{}
	p.rng = rand.New(&p.pcg)
	return p
}

// seeded resets the stream to (a, b) and returns the shared Rand. The
// previous return value is invalidated; callers must finish consuming one
// stream before seeding the next.
func (p *pathRNG) seeded(a, b uint64) *rand.Rand {
	p.pcg.Seed(a, b)
	return p.rng
}

// runDay measures one day's shard of the schedule. Each day owns an RNG
// stream derived from (seed, day) alone, so shards are independent of
// execution order: the engine can run them serially or on a worker pool and
// merge identical records either way.
func (s *Scenario) runDay(cfg PlatformConfig, day int) []Record {
	recs := make([]Record, s.ShardSize(cfg))
	s.runDayInto(cfg, day, recs)
	return recs
}

// pcgStreamPlatform is the per-day measurement-schedule RNG stream word
// ("platform" in ASCII); stream words are module-unique, enforced by
// churnvet.
const pcgStreamPlatform = 0x706c6174666f726d // "platform"

// runDayInto measures day's shard directly into out, which must have
// length ShardSize(cfg). Writing in place lets the engine lay all shards
// out in one flat record slice instead of merging per-day allocations.
func (s *Scenario) runDayInto(cfg PlatformConfig, day int, out []Record) {
	at := s.Start.AddDate(0, 0, day)
	rng := rand.New(rand.NewPCG(DaySeed(cfg.Seed^s.Seed, day), pcgStreamPlatform))
	pr := newPathRNG()
	idx := 0
	// The fleet works through the URL list in lockstep, URLsPerDay at a
	// time, wrapping around the list.
	for k := 0; k < cfg.URLsPerDay; k++ {
		ti := (day*cfg.URLsPerDay + k) % len(s.Targets)
		target := &s.Targets[ti]
		for vi := range s.Vantages {
			v := &s.Vantages[vi]
			for r := 0; r < cfg.RepeatsPerDay; r++ {
				// Spread repeats across the day (early morning / late
				// evening) so intra-day churn is observable.
				hour := (4 + r*15 + rng.IntN(4)) % 24
				when := at.Add(time.Duration(hour)*time.Hour + time.Duration(rng.IntN(3600))*time.Second)
				// Under ECMP each measurement is one flow: it hashes onto
				// a forwarding plane and every packet of the test (HTTP,
				// DNS, the paris-style traceroutes) follows it. The guard
				// keeps single-plane runs off the extra RNG draw, so they
				// stay byte-identical to a plane-unaware platform.
				var plane int32
				if s.ECMPPaths > 1 {
					plane = int32(rng.IntN(s.ECMPPaths))
				}
				out[idx] = s.measure(v, target, int32(ti), when, plane, cfg, rng, pr)
				idx++
			}
		}
	}
}

// measure runs one full test: DNS via two resolvers, HTTP with capture
// analysis, blockpage comparison, and three traceroutes.
func (s *Scenario) measure(v *Vantage, target *Target, targetIdx int32,
	at time.Time, plane int32, cfg PlatformConfig, rng *rand.Rand, pr *pathRNG) Record {
	rec := Record{
		Vantage:        v.ASN,
		VantageCountry: v.Country,
		TargetASN:      target.ASN,
		TargetIdx:      targetIdx,
		URL:            target.URL.Host,
		Category:       target.URL.Category,
		At:             at,
	}

	idxPath, ok := s.Oracle.PathIdxAtPlane(v.Idx, target.Idx, at, plane)
	if !ok {
		// No route: every sub-test errors out; the record is eliminated by
		// rule 2 during clause construction.
		rec.Fail = traceroute.ErrTraceFailed
		rec.Unreachable = true
		for i := range rec.Traces {
			rec.Traces[i] = traceroute.Trace{Err: true}
		}
		return rec
	}
	asnPath := s.Oracle.ToASNs(idxPath)
	rec.TruePath = asnPath

	// The router-level expansion is derived from a path-keyed RNG: the same
	// AS path always yields the same hop distances, so middlebox
	// detectability is a stable property of a path rather than a
	// per-measurement coin flip (see censor.Behavior's doc).
	exp := traceroute.Expand(s.Graph, idxPath, target.IP, pr.seeded(s.Seed^0x657870, pathHash(idxPath)))

	active := s.Censors.ActiveOn(asnPath, target.URL.Category, at)

	// --- DNS test: default resolver (inside the vantage AS) and the open
	// anycast resolver, mirroring ICLab's dual-resolver methodology.
	dnsAnom, dnsActs := s.dnsTest(v, target, at, plane, active, cfg, rng, pr)
	if dnsAnom {
		rec.Anomalies = rec.Anomalies.Add(anomaly.DNS)
	}
	rec.TrueActs = append(rec.TrueActs, dnsActs...)

	// --- HTTP test with packet capture analysis.
	var injectors []httpsim.Injector
	for _, act := range active {
		for _, k := range act.Techniques.Members() {
			if k == anomaly.DNS {
				continue
			}
			b := act.Policy.Behavior
			inj := httpsim.Injector{
				ASN:       uint32(act.ASN),
				Dist:      exp.DistOfAS(act.PathIndex),
				Technique: k,
				InitTTL:   b.InitTTL,
				SeqSkew:   b.SeqSkew,
				InPath:    b.InPath,
				MimicTTL:  b.MimicTTL,
				KillsConn: b.KillsConn,
			}
			if k == anomaly.Block {
				inj.Blockpage = blockpage.Render(b.Blockpage, act.Policy.Country)
			}
			injectors = append(injectors, inj)
		}
		if len(act.Techniques.Members()) > 0 {
			rec.TrueActs = append(rec.TrueActs, GroundTruthAct{ASN: act.ASN, Kinds: act.Techniques})
		}
	}
	res := httpsim.Simulate(httpsim.Params{
		At:         at.Add(2 * time.Second),
		ClientIP:   v.IP,
		ServerIP:   target.IP,
		Host:       target.URL.Host,
		ServerDist: exp.ServerDist(),
		ServerTTL:  target.ServerTTL,
		Body:       target.Body,
	}, injectors, cfg.HTTPNoise, rng)
	verdict := detect.HTTP(&res.Capture, v.IP, target.IP)
	if verdict.TTL {
		rec.Anomalies = rec.Anomalies.Add(anomaly.TTL)
	}
	if verdict.SEQ {
		rec.Anomalies = rec.Anomalies.Add(anomaly.SEQ)
	}
	if verdict.RST {
		rec.Anomalies = rec.Anomalies.Add(anomaly.RST)
	}
	if detect.Blockpage(res.Body, res.BaselineLen, s.Fingerprints) {
		rec.Anomalies = rec.Anomalies.Add(anomaly.Block)
	}

	// --- Three traceroutes, spread across a small window so genuine
	// routing changes occasionally split them (rule-4 eliminations).
	for i := 0; i < TracesPerTest; i++ {
		traceAt := at.Add(time.Duration(i) * cfg.MidTestChurnWindow / TracesPerTest)
		tIdxPath, tok := s.Oracle.PathIdxAtPlane(v.Idx, target.Idx, traceAt, plane)
		if !tok {
			rec.Traces[i] = traceroute.Trace{Err: true}
			continue
		}
		tExp := exp
		if !samePath(tIdxPath, idxPath) {
			tExp = traceroute.Expand(s.Graph, tIdxPath, target.IP, pr.seeded(s.Seed^0x657870, pathHash(tIdxPath)))
		}
		rec.Traces[i] = traceroute.Probe(tExp, cfg.Traceroute, rng)
	}
	rec.ASPath, rec.Fail = traceroute.InferConsensus(rec.Traces[:], s.DB, at, v.ASN)
	return rec
}

// dnsTest runs the dual-resolver lookup, reporting a DNS anomaly from
// either capture plus the ground-truth injecting censors. Note the
// attribution mismatch this preserves from the paper: injection happens on
// the resolver path, but the clause built from this record uses the URL
// path — a censor on one and not the other is methodological noise.
func (s *Scenario) dnsTest(v *Vantage, target *Target, at time.Time, plane int32,
	activeOnDest []censor.Active, cfg PlatformConfig, rng *rand.Rand, pr *pathRNG) (bool, []GroundTruthAct) {
	var acts []GroundTruthAct
	// Default resolver: lives inside the vantage AS, so only vantage-AS
	// censors see the query.
	defResolver := s.Graph.HostIP(v.Idx, 9)
	var defInjectors []dnssim.Injector
	for _, act := range activeOnDest {
		if act.PathIndex == 0 && act.Techniques.Has(anomaly.DNS) {
			defInjectors = append(defInjectors, dnssim.Injector{
				ASN: uint32(act.ASN), Dist: 1,
				Answer:  sinkholeFor(act.ASN),
				InitTTL: act.Policy.Behavior.InitTTL,
			})
		}
	}
	for _, inj := range defInjectors {
		acts = append(acts, GroundTruthAct{ASN: topology.ASN(inj.ASN), Kinds: anomaly.MakeSet(anomaly.DNS)})
	}
	defCap := dnssim.Simulate(dnssim.Params{
		At: at, ClientIP: v.IP, ResolverIP: defResolver, Host: target.URL.Host,
		QueryID: uint16(rng.Uint32()), ResolverDist: 2, TrueAnswer: target.IP,
		ResolverTTL: 64,
	}, defInjectors, cfg.DNSNoise, rng)
	if detect.DNSDual(&defCap, v.IP) {
		return true, acts
	}

	// Open resolver: the query transits the path toward the anycast AS;
	// DNS censors along it inject.
	rIdxPath, ok := s.Oracle.PathIdxAtPlane(v.Idx, s.ResolverIdx, at, plane)
	if !ok {
		return false, acts // resolver unreachable; no data
	}
	rASNs := s.Oracle.ToASNs(rIdxPath)
	rExp := traceroute.Expand(s.Graph, rIdxPath, s.Graph.ResolverIP, pr.seeded(s.Seed^0x657870, pathHash(rIdxPath)))
	var openInjectors []dnssim.Injector
	for _, act := range s.Censors.ActiveOn(rASNs, target.URL.Category, at) {
		if act.Techniques.Has(anomaly.DNS) {
			openInjectors = append(openInjectors, dnssim.Injector{
				ASN: uint32(act.ASN), Dist: rExp.DistOfAS(act.PathIndex),
				Answer:  sinkholeFor(act.ASN),
				InitTTL: act.Policy.Behavior.InitTTL,
			})
		}
	}
	for _, inj := range openInjectors {
		acts = append(acts, GroundTruthAct{ASN: topology.ASN(inj.ASN), Kinds: anomaly.MakeSet(anomaly.DNS)})
	}
	openCap := dnssim.Simulate(dnssim.Params{
		At: at.Add(time.Second), ClientIP: v.IP, ResolverIP: s.Graph.ResolverIP,
		Host: target.URL.Host, QueryID: uint16(rng.Uint32()),
		ResolverDist: rExp.ServerDist(), TrueAnswer: target.IP, ResolverTTL: 64,
	}, openInjectors, cfg.DNSNoise, rng)
	return detect.DNSDual(&openCap, v.IP), acts
}

// sinkholeFor derives a censor's DNS sinkhole address.
func sinkholeFor(asn topology.ASN) netaddr.IP {
	return netaddr.MakeIP(10, byte(asn>>8), byte(asn), 1)
}

func samePath(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pathHash folds an AS-index path into a 64-bit seed.
func pathHash(path []int32) uint64 {
	h := uint64(1469598103934665603)
	for _, p := range path {
		h ^= uint64(uint32(p))
		h *= 1099511628211
	}
	return h
}
