package iclab

// Tests for ScenarioConfig.ECMPPaths: single-plane configs must be
// byte-identical to plane-unaware runs, and multi-plane configs must
// actually spread one vantage-target pair's repeats across paths.

import (
	"testing"

	"churntomo/internal/censor"
	"churntomo/internal/ipasmap"
	"churntomo/internal/routing"
	"churntomo/internal/topology"
)

// buildECMPStack is buildStack with a densely peered topology (route
// ties give the planes room to diverge) and a configurable plane count.
func buildECMPStack(t testing.TB, seed uint64, days, planes int) *Scenario {
	t.Helper()
	end := start.AddDate(0, 0, days)
	g, err := topology.Generate(topology.GenConfig{Seed: seed, ASes: 250, Countries: 25, PeerProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := routing.GenTimeline(g, routing.TimelineConfig{Seed: seed, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	o := routing.NewOracle(g, tl, 2048)
	reg, err := censor.Generate(g, censor.GenConfig{Seed: seed, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	db, err := ipasmap.Build(g, ipasmap.BuildConfig{Seed: seed, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildScenario(g, o, reg, db, start, end,
		ScenarioConfig{Seed: seed, Vantages: 12, URLs: 24, ECMPPaths: planes})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestECMPSinglePlaneByteIdentical pins the guarded-draw rule: ECMPPaths
// 0 and 1 must produce datasets byte-identical to each other (the plane
// draw never happens, so the RNG stream is untouched).
func TestECMPSinglePlaneByteIdentical(t *testing.T) {
	cfg := PlatformConfig{Seed: 9, URLsPerDay: 4, RepeatsPerDay: 2}
	zero := Run(buildECMPStack(t, 51, 6, 0), cfg)
	one := Run(buildECMPStack(t, 51, 6, 1), cfg)
	if len(zero.Records) != len(one.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(zero.Records), len(one.Records))
	}
	for i := range zero.Records {
		a, b := &zero.Records[i], &one.Records[i]
		if a.Vantage != b.Vantage || a.URL != b.URL || a.Anomalies != b.Anomalies ||
			!a.At.Equal(b.At) || len(a.TruePath) != len(b.TruePath) {
			t.Fatalf("record %d differs between ECMPPaths 0 and 1", i)
		}
		for j := range a.TruePath {
			if a.TruePath[j] != b.TruePath[j] {
				t.Fatalf("record %d true path differs between ECMPPaths 0 and 1", i)
			}
		}
	}
}

// TestECMPMultiPlaneSpreadsPaths: with 3 planes over a densely peered
// graph, at least one vantage-target pair must observe different true
// paths within one day — per-flow hashing, the Pathfinder phenomenon.
func TestECMPMultiPlaneSpreadsPaths(t *testing.T) {
	s := buildECMPStack(t, 52, 4, 3)
	ds := Run(s, PlatformConfig{Seed: 9, URLsPerDay: 4, RepeatsPerDay: 4})
	type pairDay struct {
		v   topology.ASN
		url string
		day int
	}
	paths := map[pairDay]map[string]bool{}
	for i := range ds.Records {
		r := &ds.Records[i]
		if len(r.TruePath) == 0 {
			continue
		}
		key := pairDay{r.Vantage, r.URL, r.At.YearDay()}
		if paths[key] == nil {
			paths[key] = map[string]bool{}
		}
		var sig []byte
		for _, as := range r.TruePath {
			sig = append(sig, byte(as), byte(as>>8), byte(as>>16), byte(as>>24))
		}
		paths[key][string(sig)] = true
	}
	split := 0
	for _, set := range paths {
		if len(set) > 1 {
			split++
		}
	}
	if split == 0 {
		t.Fatal("no vantage-target pair saw more than one path in a day under 3 ECMP planes")
	}
}

// TestECMPDeterministic: the plane draws come from the day RNG, so the
// multipath dataset is reproducible like everything else.
func TestECMPDeterministic(t *testing.T) {
	cfg := PlatformConfig{Seed: 9, URLsPerDay: 3, RepeatsPerDay: 2}
	a := Run(buildECMPStack(t, 53, 4, 3), cfg)
	b := Run(buildECMPStack(t, 53, 4, 3), cfg)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := &a.Records[i], &b.Records[i]
		if ra.Vantage != rb.Vantage || ra.URL != rb.URL || ra.Anomalies != rb.Anomalies {
			t.Fatalf("record %d differs across identical multipath runs", i)
		}
		for j := range ra.TruePath {
			if ra.TruePath[j] != rb.TruePath[j] {
				t.Fatalf("record %d path differs across identical multipath runs", i)
			}
		}
	}
}
