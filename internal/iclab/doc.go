// Package iclab simulates the measurement platform the paper builds on: a
// set of vantage points repeatedly testing a URL list — DNS lookups through
// two resolvers, HTTP GETs with packet captures, blockpage comparison
// against a censor-free baseline, and three traceroutes per test — over a
// churning Internet with censoring ASes on some paths.
//
// Paper correspondence: §2.1/§3.1. The output Dataset is the
// reproduction's stand-in for the ICLab data the paper consumes (its
// Table 1), carrying exactly the fields the paper's records have: vantage
// AS, URL, per-anomaly outcome, three traceroutes and a timestamp, plus
// inferred AS paths. Ground truth (which censor actually acted) rides
// along in clearly-marked fields used only for validation — the tomography
// must never read them (TestGroundTruthIsolation enforces this).
//
// Entry points: BuildScenario selects vantages and targets over a prepared
// substrate; Run executes the schedule into a merged Dataset; RunByDay
// keeps the output sharded by day for streaming consumers; MergeShards and
// NewDataset reassemble shards; ComputeTable1 derives the dataset stats.
//
// Invariants: measurement is deterministic at every worker count. Each day
// owns an RNG stream derived from (seed, day) alone via DaySeed — a
// splitmix64 finalizer over the day index — so a day's randomness never
// depends on which worker ran it or when, and parallel output is
// bit-identical to serial. The fleet tests URLs in lockstep (every vantage
// measures the same URLs on the same day), which is what gives the
// per-URL CNFs their breadth.
package iclab
