package iclab

import (
	"fmt"
	"strings"

	"churntomo/internal/anomaly"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

// Table1 summarizes a dataset the way the paper's Table 1 does.
type Table1 struct {
	Period          string
	UniqueURLs      int
	VantageASes     int
	DestinationASes int
	Countries       int
	Measurements    int

	// Anomalies counts measurements flagged per kind (a measurement can
	// contribute to several kinds).
	Anomalies [anomaly.NumKinds]int

	// Inconclusive counts records eliminated from clause construction,
	// split by the paper's four rules.
	Inconclusive map[traceroute.FailReason]int
}

// ComputeTable1 derives the summary from a dataset.
func ComputeTable1(ds *Dataset) Table1 {
	t := Table1{
		Period:       fmt.Sprintf("%s ~ %s", ds.Scenario.Start.Format("2006-01"), ds.Scenario.End.Format("2006-01")),
		Inconclusive: map[traceroute.FailReason]int{},
	}
	urls := map[string]bool{}
	vantages := map[topology.ASN]bool{}
	dests := map[topology.ASN]bool{}
	countries := map[string]bool{}
	for i := range ds.Records {
		r := &ds.Records[i]
		t.Measurements++
		urls[r.URL] = true
		vantages[r.Vantage] = true
		dests[r.TargetASN] = true
		countries[r.VantageCountry] = true
		for _, k := range anomaly.Kinds {
			if r.Anomalies.Has(k) {
				t.Anomalies[k]++
			}
		}
		if r.Fail != traceroute.OK {
			t.Inconclusive[r.Fail]++
		}
	}
	t.UniqueURLs = len(urls)
	t.VantageASes = len(vantages)
	t.DestinationASes = len(dests)
	t.Countries = len(countries)
	return t
}

// AnomalyRate returns the fraction of measurements flagged with kind k.
func (t Table1) AnomalyRate(k anomaly.Kind) float64 {
	if t.Measurements == 0 {
		return 0
	}
	return float64(t.Anomalies[k]) / float64(t.Measurements)
}

// InconclusiveRate returns the fraction of records eliminated from clause
// construction.
func (t Table1) InconclusiveRate() float64 {
	if t.Measurements == 0 {
		return 0
	}
	n := 0
	for _, c := range t.Inconclusive {
		n += c
	}
	return float64(n) / float64(t.Measurements)
}

// String renders the table in the paper's layout.
func (t Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Period            %s\n", t.Period)
	fmt.Fprintf(&b, "Unique URLs       %d\n", t.UniqueURLs)
	fmt.Fprintf(&b, "AS Vantage Points %d\n", t.VantageASes)
	fmt.Fprintf(&b, "Destination ASes  %d\n", t.DestinationASes)
	fmt.Fprintf(&b, "Countries         %d\n", t.Countries)
	fmt.Fprintf(&b, "Measurements      %d\n", t.Measurements)
	order := []anomaly.Kind{anomaly.DNS, anomaly.SEQ, anomaly.TTL, anomaly.RST, anomaly.Block}
	label := map[anomaly.Kind]string{
		anomaly.DNS: "DNS anomalies", anomaly.SEQ: "SEQNO anomalies",
		anomaly.TTL: "TTL anomalies", anomaly.RST: "RESET anomalies",
		anomaly.Block: "Blockpages",
	}
	for _, k := range order {
		fmt.Fprintf(&b, "- w/%-15s %d (%.2f%%)\n", label[k], t.Anomalies[k], 100*t.AnomalyRate(k))
	}
	return b.String()
}
