package iclab

import (
	"fmt"
	"math/rand/v2"
	"time"

	"churntomo/internal/blockpage"
	"churntomo/internal/censor"
	"churntomo/internal/ipasmap"
	"churntomo/internal/netaddr"
	"churntomo/internal/netsim"
	"churntomo/internal/routing"
	"churntomo/internal/topology"
	"churntomo/internal/webcat"
)

// Vantage is one measurement vantage point.
type Vantage struct {
	ASN     topology.ASN
	Idx     int32 // topology index
	Country string
	IP      netaddr.IP
}

// Target is one test-list URL and the server hosting it.
type Target struct {
	URL       webcat.URL
	ASN       topology.ASN
	Idx       int32
	IP        netaddr.IP
	ServerTTL uint8
	Body      []byte // the censor-free page
}

// Scenario bundles everything a platform run needs.
type Scenario struct {
	Graph        *topology.Graph
	Oracle       *routing.Oracle
	Censors      *censor.Registry
	DB           *ipasmap.DB
	Fingerprints *blockpage.FingerprintDB

	Vantages []Vantage
	Targets  []Target

	Start, End  time.Time
	ResolverIdx int32
	Seed        uint64

	// ECMPPaths is the number of coexisting forwarding planes measurements
	// sample (see ScenarioConfig.ECMPPaths); <= 1 means single-plane.
	ECMPPaths int
}

// ScenarioConfig parameterizes vantage/target selection.
type ScenarioConfig struct {
	Seed     uint64
	Vantages int // default 40
	URLs     int // default 80

	// FingerprintCoverage is the fraction of blockpage templates known to
	// the detection corpus. Default 0.85.
	FingerprintCoverage float64
	// VantageNeutralBias is the probability a vantage is drawn from a
	// non-censoring country — ICLab's fleet is mostly commercial VPNs in
	// western datacenters. Default 0.6.
	VantageNeutralBias float64

	// ECMPPaths models load-balanced multipath forwarding: each
	// measurement's flow hashes onto one of this many coexisting routing
	// planes (plane 0 canonical, higher planes re-rolling only the route
	// tie-breaks), so the same vantage-target pair samples different paths
	// — and potentially different censors — across repeats. 0 or 1 means
	// single-plane forwarding, byte-identical to a config without the
	// field.
	ECMPPaths int
}

func (c *ScenarioConfig) fillDefaults() {
	if c.Vantages == 0 {
		c.Vantages = 40
	}
	if c.URLs == 0 {
		c.URLs = 80
	}
	if c.FingerprintCoverage == 0 {
		c.FingerprintCoverage = 0.85
	}
	if c.VantageNeutralBias == 0 {
		c.VantageNeutralBias = 0.75
	}
}

// pcgStreamScenario is the vantage/target-selection RNG stream word
// ("iclab" in ASCII); stream words are module-unique, enforced by
// churnvet.
const pcgStreamScenario = 0x69636c6162 // "iclab"

// BuildScenario selects vantage points and targets over a prepared
// topology, routing oracle, censor registry and mapping database.
func BuildScenario(g *topology.Graph, o *routing.Oracle, reg *censor.Registry,
	db *ipasmap.DB, start, end time.Time, cfg ScenarioConfig) (*Scenario, error) {
	cfg.fillDefaults()
	if !start.Before(end) {
		return nil, fmt.Errorf("iclab: start %v not before end %v", start, end)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, pcgStreamScenario))

	censoringCountry := map[string]bool{}
	for _, asn := range reg.ASNs() {
		p, _ := reg.Policy(asn)
		censoringCountry[p.Country] = true
	}

	// Vantage candidates: stub ASes (VPN hosts live in content ASes, some
	// volunteers in enterprise ASes), excluding the resolver AS.
	var neutral, censored []int32
	for i := range g.ASes {
		as := &g.ASes[i]
		if as.Role != topology.RoleStub || as.ASN == topology.ResolverASN {
			continue
		}
		if censoringCountry[as.Country] {
			censored = append(censored, int32(i))
		} else {
			neutral = append(neutral, int32(i))
		}
	}
	if len(neutral)+len(censored) < cfg.Vantages {
		return nil, fmt.Errorf("iclab: topology too small for %d vantages", cfg.Vantages)
	}

	s := &Scenario{
		Graph:        g,
		Oracle:       o,
		Censors:      reg,
		DB:           db,
		Fingerprints: blockpage.NewFingerprintDB(reg.Len()+8, cfg.FingerprintCoverage, cfg.Seed),
		Start:        start,
		End:          end,
		ResolverIdx:  g.MustIndex(topology.ResolverASN),
		Seed:         cfg.Seed,
		ECMPPaths:    cfg.ECMPPaths,
	}

	taken := map[int32]bool{}
	pick := func(pool []int32) (int32, bool) {
		for tries := 0; tries < 4*len(pool); tries++ {
			idx := pool[rng.IntN(len(pool))]
			if !taken[idx] {
				taken[idx] = true
				return idx, true
			}
		}
		return 0, false
	}
	usedCountry := map[string]bool{}
	for len(s.Vantages) < cfg.Vantages {
		pool := neutral
		if rng.Float64() >= cfg.VantageNeutralBias || len(neutral) == 0 {
			pool = censored
		}
		if len(pool) == 0 {
			pool = neutral
		}
		// Cluster vantages: VPN fleets concentrate in a handful of hosting
		// countries, and that concentration is load-bearing for the
		// tomography — co-located vantages negate each other's access-side
		// ASes in the per-URL CNFs.
		if len(usedCountry) > 0 && rng.Float64() < 0.55 {
			var clustered []int32
			for _, idx := range pool {
				if usedCountry[g.ASes[idx].Country] && !taken[idx] {
					clustered = append(clustered, idx)
				}
			}
			if len(clustered) > 0 {
				pool = clustered
			}
		}
		idx, ok := pick(pool)
		if !ok {
			if idx, ok = pick(append(append([]int32{}, neutral...), censored...)); !ok {
				return nil, fmt.Errorf("iclab: exhausted vantage candidates at %d", len(s.Vantages))
			}
		}
		as := &g.ASes[idx]
		usedCountry[as.Country] = true
		s.Vantages = append(s.Vantages, Vantage{
			ASN: as.ASN, Idx: idx, Country: as.Country, IP: g.HostIP(idx, 100+len(s.Vantages)),
		})
	}

	// Targets: content ASes host the URLs (web servers), excluding vantage
	// ASes so source and destination stay disjoint. Hosting skews heavily
	// toward non-censoring countries — the paper's test-list URLs sit in
	// western datacenters even when their content concerns other regions —
	// so most censorship happens in transit, not at the destination.
	var hostsNeutral, hostsCensored []int32
	for i := range g.ASes {
		as := &g.ASes[i]
		if as.Class == topology.ClassContent && !taken[int32(i)] && as.ASN != topology.ResolverASN {
			if censoringCountry[as.Country] {
				hostsCensored = append(hostsCensored, int32(i))
			} else {
				hostsNeutral = append(hostsNeutral, int32(i))
			}
		}
	}
	if len(hostsNeutral)+len(hostsCensored) == 0 {
		return nil, fmt.Errorf("iclab: no content ASes available for targets")
	}
	urls := webcat.GenURLs(cfg.Seed^0x75726c, cfg.URLs)
	for i, u := range urls {
		pool := hostsNeutral
		if len(pool) == 0 || (rng.Float64() > 0.85 && len(hostsCensored) > 0) {
			pool = hostsCensored
		}
		idx := pool[rng.IntN(len(pool))]
		as := &g.ASes[idx]
		bodyLen := 900 + rng.IntN(5200)
		ttl := netsim.InitTTLLinux
		if rng.Float64() < 0.3 {
			ttl = netsim.InitTTLWindows
		}
		s.Targets = append(s.Targets, Target{
			URL: u, ASN: as.ASN, Idx: idx,
			IP:        g.HostIP(idx, 200+i),
			ServerTTL: ttl,
			Body:      renderPage(u.Host, bodyLen),
		})
	}
	return s, nil
}

// renderPage builds a deterministic page body for a host.
func renderPage(host string, size int) []byte {
	head := fmt.Sprintf("<html><head><title>%s</title></head><body><h1>%s</h1>", host, host)
	b := make([]byte, 0, size)
	b = append(b, head...)
	for i := 0; len(b) < size; i++ {
		b = append(b, fmt.Sprintf("<p>content block %d for %s</p>", i, host)...)
	}
	return append(b[:size-7:size-7], "</body>"...)
}
