package iclab

import (
	"reflect"
	"testing"
)

func TestDaySeedDistinctAndStable(t *testing.T) {
	const base = 0xdeadbeef
	seen := map[uint64]int{}
	for day := 0; day < 4096; day++ {
		s := DaySeed(base, day)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DaySeed collision: days %d and %d both map to %#x", prev, day, s)
		}
		seen[s] = day
		if s != DaySeed(base, day) {
			t.Fatalf("DaySeed not stable for day %d", day)
		}
	}
	// Different bases must decorrelate even at the same day index.
	if DaySeed(1, 0) == DaySeed(2, 0) {
		t.Error("distinct bases share day-0 seed")
	}
	// Nearby seeds should not produce shifted copies of the same schedule.
	if DaySeed(1, 1) == DaySeed(2, 0) {
		t.Error("seed/day lattice aliases: (1,1) == (2,0)")
	}
}

func TestMergeShardsOrderAndIDs(t *testing.T) {
	shards := [][]Record{
		{{URL: "day0-a"}, {URL: "day0-b"}},
		nil, // an empty day must not disturb the sequence
		{{URL: "day2-a"}},
	}
	merged := MergeShards(shards)
	wantURLs := []string{"day0-a", "day0-b", "day2-a"}
	if len(merged) != len(wantURLs) {
		t.Fatalf("merged %d records, want %d", len(merged), len(wantURLs))
	}
	for i, want := range wantURLs {
		if merged[i].URL != want {
			t.Errorf("record %d is %q, want %q", i, merged[i].URL, want)
		}
		if merged[i].ID != int32(i) {
			t.Errorf("record %d has ID %d", i, merged[i].ID)
		}
	}
}

// TestParallelRunMatchesSerial is the engine's core guarantee: sharding the
// schedule across workers yields bit-identical records, in the same order,
// as the serial path.
func TestParallelRunMatchesSerial(t *testing.T) {
	s := buildStack(t, 11, 8)
	base := PlatformConfig{Seed: 7, URLsPerDay: 3, RepeatsPerDay: 2}

	serialCfg := base
	serialCfg.Workers = 1
	serial := Run(s, serialCfg)

	for _, workers := range []int{2, 7, 8, 32} {
		parCfg := base
		parCfg.Workers = workers
		par := Run(buildStack(t, 11, 8), parCfg)
		if len(par.Records) != len(serial.Records) {
			t.Fatalf("workers=%d: %d records vs %d serial", workers, len(par.Records), len(serial.Records))
		}
		for i := range serial.Records {
			if !reflect.DeepEqual(serial.Records[i], par.Records[i]) {
				t.Fatalf("workers=%d: record %d differs from serial run", workers, i)
			}
		}
		if !reflect.DeepEqual(serial.Stats, par.Stats) {
			t.Fatalf("workers=%d: Table1 stats differ from serial run", workers)
		}
	}
}

// TestRunMatchesMergedByDay pins the equivalence of the engine's two
// emission shapes: Run's flat, preallocated record layout must be
// bit-identical to MergeShards over RunByDay's per-day slices, at serial
// and parallel worker counts. This is the invariant that lets Run skip the
// concatenation copy entirely.
func TestRunMatchesMergedByDay(t *testing.T) {
	base := PlatformConfig{Seed: 21, URLsPerDay: 3, RepeatsPerDay: 2}
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		flat := Run(buildStack(t, 13, 7), cfg)
		merged := NewDataset(buildStack(t, 13, 7), MergeShards(RunByDay(buildStack(t, 13, 7), cfg)))
		if len(flat.Records) != len(merged.Records) {
			t.Fatalf("workers=%d: flat %d records, merged %d", workers, len(flat.Records), len(merged.Records))
		}
		for i := range flat.Records {
			if !reflect.DeepEqual(flat.Records[i], merged.Records[i]) {
				t.Fatalf("workers=%d: record %d differs between flat Run and merged RunByDay", workers, i)
			}
		}
		if !reflect.DeepEqual(flat.Stats, merged.Stats) {
			t.Fatalf("workers=%d: Table1 stats differ between emission shapes", workers)
		}
	}
}

func TestScenarioDays(t *testing.T) {
	s := buildStack(t, 12, 9)
	if got := s.Days(); got != 9 {
		t.Fatalf("Days() = %d, want 9", got)
	}
}
