// Package parallel holds the one worker-pool shape the engine uses
// everywhere: N indices dispatched to a bounded pool, caller blocks until
// all complete.
//
// Entry points: ForEach is the whole API.
//
// Invariants: centralizing dispatch keeps semantics (and any future panic
// propagation or queueing changes) identical across the measurement
// engine, the tomography builder, the incremental window solver and the
// matrix runner. workers == 0 means GOMAXPROCS — this package is the one
// place that default lives. An effective pool of <= 1 degrades to an
// inline loop, so callers get the serial path — and serial determinism —
// for free; every caller is designed so that worker count never changes
// output, only latency.
package parallel
