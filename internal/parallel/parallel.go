package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(0..n-1) on a pool of workers, blocking until every call
// returns. workers == 0 means GOMAXPROCS — the one place that default
// lives. With an effective pool of <= 1 (or n <= 1) it degrades to an
// inline loop, so callers get the serial path — and serial determinism —
// for free.
func ForEach(workers, n int, fn func(int)) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
