package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic that escaped fn on a pool worker. ForEachCtx
// re-raises it on the calling goroutine, so the panic surfaces where the
// work was requested instead of crashing the process from an anonymous
// goroutine — but the original panic value and the stack of the worker
// that panicked travel along for debugging.
type PanicError struct {
	Value any    // the value passed to panic()
	Stack []byte // stack of the panicking worker, captured at recover time
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n\nworker stack:\n%s", e.Value, e.Stack)
}

// ForEach runs fn(0..n-1) on a pool of workers, blocking until every call
// returns. workers == 0 means GOMAXPROCS — the one place that default
// lives. With an effective pool of <= 1 (or n <= 1) it degrades to an
// inline loop, so callers get the serial path — and serial determinism —
// for free.
func ForEach(workers, n int, fn func(int)) {
	_ = ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done no
// further item starts, and the call returns ctx.Err(). Items already in
// flight run to completion — fn is never interrupted mid-call — so on a
// non-nil return between 0 and n-1 trailing items were skipped, never a
// gap in the middle of a worker's current item. A nil return means every
// item ran. The worker pool is always fully drained before returning;
// ForEachCtx leaks no goroutines on any path.
//
// If fn panics, the pool stops dispatching, drains, and the first panic
// (by recover order) is re-raised on the caller's goroutine as a
// *PanicError carrying the original value and worker stack. On the serial
// path the panic propagates untouched, exactly as a plain loop would.
func ForEachCtx(ctx context.Context, workers, n int, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(i)
		}
		return nil
	}
	var (
		wg        sync.WaitGroup
		panicked  atomic.Bool
		panicOnce sync.Once
		pv        *PanicError
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//churnvet:ok ctxflow -- the dispatch loop selects on ctx.Done and unconditionally closes next, so this drain always terminates; adding a second Done arm here would race the panic-drain protocol
			for i := range next {
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								pv = &PanicError{Value: r, Stack: debug.Stack()}
							})
							panicked.Store(true)
						}
					}()
					fn(i)
				}(i)
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		if panicked.Load() {
			break dispatch
		}
		select {
		case next <- i:
		case <-done:
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait() //churnvet:ok ctxflow -- bounded join: next is closed on every path (including ctx.Done), each worker exits its drain loop at most one task later, and the panic re-raise below needs all workers parked first
	if pv != nil {
		panic(pv)
	}
	return err
}
