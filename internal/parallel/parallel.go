package parallel

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(0..n-1) on a pool of workers, blocking until every call
// returns. workers == 0 means GOMAXPROCS — the one place that default
// lives. With an effective pool of <= 1 (or n <= 1) it degrades to an
// inline loop, so callers get the serial path — and serial determinism —
// for free.
func ForEach(workers, n int, fn func(int)) {
	_ = ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done no
// further item starts, and the call returns ctx.Err(). Items already in
// flight run to completion — fn is never interrupted mid-call — so on a
// non-nil return between 0 and n-1 trailing items were skipped, never a
// gap in the middle of a worker's current item. A nil return means every
// item ran. The worker pool is always fully drained before returning;
// ForEachCtx leaks no goroutines on any path.
func ForEachCtx(ctx context.Context, workers, n int, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(i)
		}
		return nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return err
}
