package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var hits [37]atomic.Int32
		ForEach(workers, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}
