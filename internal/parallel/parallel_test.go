package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var hits [37]atomic.Int32
		ForEach(workers, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}

func TestForEachCtxCompletesUncanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var hits atomic.Int32
		if err := ForEachCtx(context.Background(), workers, 16, func(int) { hits.Add(1) }); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if hits.Load() != 16 {
			t.Fatalf("workers=%d: ran %d of 16 items", workers, hits.Load())
		}
	}
}

func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var hits atomic.Int32
		err := ForEachCtx(ctx, workers, 100, func(int) { hits.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The pool path may hand out up to `workers` items before the
		// dispatcher observes cancellation; nothing beyond that may start.
		if got := hits.Load(); int(got) > workers {
			t.Fatalf("workers=%d: %d items ran after pre-cancel", workers, got)
		}
	}
}

func TestForEachCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var hits atomic.Int32
	err := ForEachCtx(ctx, 4, 1000, func(i int) {
		if hits.Add(1) == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := hits.Load(); got >= 1000 {
		t.Fatal("cancellation skipped nothing")
	}
}

func TestForEachCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := ForEachCtx(ctx, 1, 1000, func(int) { time.Sleep(time.Millisecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestForEachCtxPanicPropagates pins the pool's panic contract: a panic in
// fn must surface on the caller's goroutine as a *PanicError carrying the
// original value and the worker's stack, the pool must fully drain (no
// goroutine leak, no deadlock on the unbuffered dispatch channel), and
// dispatch must stop early instead of running all remaining items.
func TestForEachCtxPanicPropagates(t *testing.T) {
	var hits atomic.Int32
	var rec any
	func() {
		defer func() { rec = recover() }()
		ForEach(4, 10000, func(i int) {
			hits.Add(1)
			if i == 3 {
				panic("boom at 3")
			}
		})
	}()
	pe, ok := rec.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T (%v), want *PanicError", rec, rec)
	}
	if pe.Value != "boom at 3" {
		t.Errorf("PanicError.Value = %v, want original panic value", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty, want worker stack")
	}
	if got := hits.Load(); got >= 10000 {
		t.Error("dispatch did not stop after the panic")
	}
}

// TestForEachCtxSerialPanicUntouched checks the inline path panics
// transparently, like the plain loop it replaces.
func TestForEachCtxSerialPanicUntouched(t *testing.T) {
	var rec any
	func() {
		defer func() { rec = recover() }()
		ForEach(1, 5, func(i int) {
			if i == 2 {
				panic("serial boom")
			}
		})
	}()
	if rec != "serial boom" {
		t.Fatalf("serial path recovered %v, want raw panic value", rec)
	}
}

// TestForEachCtxFirstPanicWins: with many concurrent panics exactly one is
// reported and the call still returns (drain completes).
func TestForEachCtxFirstPanicWins(t *testing.T) {
	var rec any
	func() {
		defer func() { rec = recover() }()
		ForEach(8, 64, func(i int) { panic(i) })
	}()
	pe, ok := rec.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T, want *PanicError", rec)
	}
	if _, ok := pe.Value.(int); !ok {
		t.Fatalf("PanicError.Value = %v (%T), want one of the item indices", pe.Value, pe.Value)
	}
}
