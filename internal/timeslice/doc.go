// Package timeslice partitions measurement timestamps into the four time
// granularities used by the paper's CNF construction: day, week, month and
// year (§3.1, "Time- and URL-based splitting"). Each timestamp maps to
// exactly one slice key per granularity, and a slice key identifies the
// half-open interval [Start, End) it covers.
//
// Entry points: KeyFor maps a timestamp to its Key at a granularity; Range
// enumerates the keys intersecting an interval; Key.Start/End/Contains
// recover the interval.
//
// Invariants: all computations are in UTC, mirroring how measurement
// platforms normalize probe timestamps before aggregation. Keys are
// comparable and usable as map keys; two timestamps share a Key exactly
// when they fall in the same slice, and Key.Index is monotone in time
// within a granularity (the streaming engine relies on this to order
// slices).
package timeslice
