package timeslice

import (
	"testing"
	"testing/quick"
	"time"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func TestGranularityString(t *testing.T) {
	cases := map[Granularity]string{Day: "day", Week: "week", Month: "month", Year: "year"}
	for g, want := range cases {
		if got := g.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", g, got, want)
		}
		back, err := Parse(want)
		if err != nil || back != g {
			t.Errorf("Parse(%q) = %v, %v; want %v, nil", want, back, err, g)
		}
	}
	if _, err := Parse("fortnight"); err == nil {
		t.Error("Parse(fortnight) succeeded, want error")
	}
}

func TestKeyForDay(t *testing.T) {
	a := KeyFor(Day, date(2016, time.May, 3).Add(2*time.Hour))
	b := KeyFor(Day, date(2016, time.May, 3).Add(23*time.Hour+59*time.Minute))
	if a != b {
		t.Errorf("same day produced different keys: %v vs %v", a, b)
	}
	c := KeyFor(Day, date(2016, time.May, 4))
	if a == c {
		t.Errorf("different days produced same key: %v", a)
	}
	if got := a.Start(); !got.Equal(date(2016, time.May, 3)) {
		t.Errorf("Start = %v, want 2016-05-03", got)
	}
	if got := a.End(); !got.Equal(date(2016, time.May, 4)) {
		t.Errorf("End = %v, want 2016-05-04", got)
	}
}

func TestKeyForWeekMondayBoundary(t *testing.T) {
	// 2016-05-02 was a Monday.
	mon := date(2016, time.May, 2)
	sun := date(2016, time.May, 8)
	nextMon := date(2016, time.May, 9)
	if KeyFor(Week, mon) != KeyFor(Week, sun) {
		t.Error("Monday and following Sunday should share a week key")
	}
	if KeyFor(Week, mon) == KeyFor(Week, nextMon) {
		t.Error("consecutive Mondays should differ")
	}
	k := KeyFor(Week, date(2016, time.May, 5))
	if got := k.Start(); !got.Equal(mon) {
		t.Errorf("week Start = %v, want %v", got, mon)
	}
	if k.Start().Weekday() != time.Monday {
		t.Errorf("week starts on %v, want Monday", k.Start().Weekday())
	}
}

func TestKeyForMonthYear(t *testing.T) {
	k := KeyFor(Month, date(2016, time.December, 31).Add(12*time.Hour))
	if got := k.Start(); !got.Equal(date(2016, time.December, 1)) {
		t.Errorf("month Start = %v", got)
	}
	if got := k.End(); !got.Equal(date(2017, time.January, 1)) {
		t.Errorf("month End = %v (year rollover)", got)
	}
	y := KeyFor(Year, date(2017, time.June, 15))
	if got, want := y.Start(), date(2017, time.January, 1); !got.Equal(want) {
		t.Errorf("year Start = %v, want %v", got, want)
	}
}

func TestKeyString(t *testing.T) {
	cases := []struct {
		k    Key
		want string
	}{
		{KeyFor(Day, date(2016, time.May, 3)), "day:2016-05-03"},
		{KeyFor(Month, date(2016, time.May, 3)), "month:2016-05"},
		{KeyFor(Year, date(2016, time.May, 3)), "year:2016"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestRange(t *testing.T) {
	from := date(2016, time.May, 1)
	to := date(2016, time.May, 11)
	days := Range(Day, from, to)
	if len(days) != 10 {
		t.Fatalf("Range(Day) returned %d keys, want 10", len(days))
	}
	for i := 1; i < len(days); i++ {
		if days[i] != days[i-1].Next() {
			t.Errorf("keys not contiguous at %d: %v then %v", i, days[i-1], days[i])
		}
	}
	months := Range(Month, date(2016, time.May, 15), date(2017, time.May, 15))
	if len(months) != 13 {
		t.Errorf("Range(Month) over a year+ returned %d keys, want 13", len(months))
	}
	if got := Range(Day, to, from); got != nil {
		t.Errorf("empty interval returned %d keys", len(got))
	}
	if got := Range(Day, from, from); got != nil {
		t.Errorf("zero-width interval returned %d keys", len(got))
	}
}

func TestContains(t *testing.T) {
	k := KeyFor(Week, date(2016, time.May, 4))
	if !k.Contains(date(2016, time.May, 2)) || !k.Contains(date(2016, time.May, 8).Add(23*time.Hour)) {
		t.Error("week should contain its Monday and Sunday")
	}
	if k.Contains(date(2016, time.May, 9)) {
		t.Error("week should not contain the next Monday")
	}
}

// Property: for every granularity, a timestamp is contained in its own key's
// interval, and the key is stable across the interval boundaries.
func TestKeyForPropertyContains(t *testing.T) {
	base := date(2010, time.January, 1).Unix()
	f := func(offsetHours uint32, gidx uint8) bool {
		g := All[int(gidx)%len(All)]
		ts := time.Unix(base+int64(offsetHours%200000)*3600, 0).UTC()
		k := KeyFor(g, ts)
		if !k.Contains(ts) {
			return false
		}
		// Start of slice maps to the same key; End maps to the next.
		return KeyFor(g, k.Start()) == k && KeyFor(g, k.End()) == k.Next()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: keys partition time — two timestamps share a key iff neither
// slice boundary separates them.
func TestKeyMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		base := date(2012, time.March, 1)
		ta := base.Add(time.Duration(a%100000) * time.Hour)
		tb := base.Add(time.Duration(b%100000) * time.Hour)
		for _, g := range All {
			ka, kb := KeyFor(g, ta), KeyFor(g, tb)
			if ta.Before(tb) && ka.Index > kb.Index {
				return false
			}
			if tb.Before(ta) && kb.Index > ka.Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
