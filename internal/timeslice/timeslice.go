package timeslice

import (
	"fmt"
	"time"
)

// Granularity selects how coarsely timestamps are grouped.
type Granularity uint8

// The four granularities from the paper (§3.1, "Time- and URL-based
// splitting").
const (
	Day Granularity = iota
	Week
	Month
	Year
)

// All enumerates every granularity, finest first.
var All = []Granularity{Day, Week, Month, Year}

// String returns the lower-case name used in figures and CLI flags.
func (g Granularity) String() string {
	switch g {
	case Day:
		return "day"
	case Week:
		return "week"
	case Month:
		return "month"
	case Year:
		return "year"
	default:
		return fmt.Sprintf("granularity(%d)", uint8(g))
	}
}

// Parse converts a name produced by String back into a Granularity.
func Parse(s string) (Granularity, error) {
	switch s {
	case "day":
		return Day, nil
	case "week":
		return Week, nil
	case "month":
		return Month, nil
	case "year":
		return Year, nil
	}
	return 0, fmt.Errorf("timeslice: unknown granularity %q", s)
}

// Key identifies one time slice at one granularity. Keys are comparable and
// usable as map keys; two timestamps share a Key exactly when they fall in
// the same slice.
type Key struct {
	Gran Granularity
	// Index is a granularity-specific ordinal: days and weeks count from
	// the Unix epoch, months count as year*12+month, years are the year.
	Index int32
}

// String renders the key human-readably, e.g. "day:2016-05-03".
func (k Key) String() string {
	return fmt.Sprintf("%s:%s", k.Gran, k.Start().Format(dateFormat(k.Gran)))
}

func dateFormat(g Granularity) string {
	switch g {
	case Month:
		return "2006-01"
	case Year:
		return "2006"
	default:
		return "2006-01-02"
	}
}

const secondsPerDay = 24 * 60 * 60

// epochDay returns the number of whole days since the Unix epoch, flooring
// for instants before the epoch.
func epochDay(t time.Time) int32 {
	sec := t.Unix()
	if sec >= 0 {
		return int32(sec / secondsPerDay)
	}
	return int32((sec - secondsPerDay + 1) / secondsPerDay)
}

// weekIndex returns the ISO-style Monday-based week ordinal since the epoch.
// 1970-01-01 was a Thursday, so day 0 belongs to the week starting on
// 1969-12-29 (day -3).
func weekIndex(day int32) int32 {
	shifted := day + 3 // align so that Mondays start a new index
	if shifted >= 0 {
		return shifted / 7
	}
	return (shifted - 6) / 7
}

// KeyFor returns the slice key containing t at granularity g.
func KeyFor(g Granularity, t time.Time) Key {
	t = t.UTC()
	switch g {
	case Day:
		return Key{Day, epochDay(t)}
	case Week:
		return Key{Week, weekIndex(epochDay(t))}
	case Month:
		return Key{Month, int32(t.Year())*12 + int32(t.Month()) - 1}
	case Year:
		return Key{Year, int32(t.Year())}
	default:
		panic(fmt.Sprintf("timeslice: invalid granularity %d", g))
	}
}

// Start returns the inclusive start of the slice.
func (k Key) Start() time.Time {
	switch k.Gran {
	case Day:
		return time.Unix(int64(k.Index)*secondsPerDay, 0).UTC()
	case Week:
		day := int64(k.Index)*7 - 3
		return time.Unix(day*secondsPerDay, 0).UTC()
	case Month:
		year := int(k.Index) / 12
		month := time.Month(int(k.Index)%12 + 1)
		return time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	case Year:
		return time.Date(int(k.Index), time.January, 1, 0, 0, 0, 0, time.UTC)
	default:
		panic(fmt.Sprintf("timeslice: invalid granularity %d", k.Gran))
	}
}

// End returns the exclusive end of the slice.
func (k Key) End() time.Time {
	switch k.Gran {
	case Day:
		return k.Start().Add(24 * time.Hour)
	case Week:
		return k.Start().Add(7 * 24 * time.Hour)
	case Month:
		return Key{Month, k.Index + 1}.Start()
	case Year:
		return Key{Year, k.Index + 1}.Start()
	default:
		panic(fmt.Sprintf("timeslice: invalid granularity %d", k.Gran))
	}
}

// Contains reports whether t falls inside the slice.
func (k Key) Contains(t time.Time) bool {
	t = t.UTC()
	return !t.Before(k.Start()) && t.Before(k.End())
}

// Next returns the key of the immediately following slice.
func (k Key) Next() Key { return Key{k.Gran, k.Index + 1} }

// Range returns every slice key at granularity g that intersects the
// half-open interval [from, to). An empty interval yields no keys.
func Range(g Granularity, from, to time.Time) []Key {
	if !from.Before(to) {
		return nil
	}
	var keys []Key
	k := KeyFor(g, from)
	last := KeyFor(g, to.Add(-time.Nanosecond))
	for {
		keys = append(keys, k)
		if k == last {
			return keys
		}
		k = k.Next()
	}
}
