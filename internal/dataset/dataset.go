package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
	"churntomo/internal/webcat"
)

// Magic identifies a churntomo dataset stream; Version is the format
// revision this package reads and writes. Compatibility with v1 files is
// pinned by the golden-file test — bump Version (and teach Decode the old
// shape) rather than changing what v1 means.
const (
	Magic   = "churntomo/dataset"
	Version = 1
)

// Vantage is one measurement vantage point's header entry.
type Vantage struct {
	ASN     uint32 `json:"asn"`
	Country string `json:"country"`
}

// Target is one test-list URL's header entry: the URL, its category code
// (an index into Header.Categories) and the hosting AS.
type Target struct {
	URL      string `json:"url"`
	Category uint8  `json:"category"`
	ASN      uint32 `json:"asn"`
}

// ASMeta is one AS's metadata-table entry — what the report layer needs to
// name censors, resolve countries and split churn by destination class
// without the generated topology.
type ASMeta struct {
	ASN     uint32 `json:"asn"`
	Name    string `json:"name,omitempty"`
	Country string `json:"country,omitempty"`
	Class   string `json:"class,omitempty"`
}

// Header is the stream's first JSON line: the world metadata the solvers
// and reports need, plus the code tables the record lines reference.
type Header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	// Scenario names the world the measurements were taken in (a preset
	// name for synthesized data, a free-form label for ingested data).
	Scenario string `json:"scenario,omitempty"`
	// Seed is the master seed that generated a synthetic world, 0 for
	// ingested data.
	Seed uint64 `json:"seed,omitempty"`
	// Start anchors the measurement period; Days is its length and the
	// number of day batches in the stream (empty days included).
	Start time.Time `json:"start"`
	Days  int       `json:"days"`
	// Records counts the record lines that follow; Decode verifies it.
	Records int `json:"records"`

	// Code tables: records reference anomaly kinds by bit, elimination
	// reasons and URL categories by index into these, making the stream
	// decodable without this package's constants.
	AnomalyKinds []string `json:"anomaly_kinds"`
	FailReasons  []string `json:"fail_reasons"`
	Categories   []string `json:"categories"`

	Vantages []Vantage `json:"vantages"`
	Targets  []Target  `json:"targets"`
	// ASes is the optional AS metadata table; TruthCensors the optional
	// ground-truth censoring ASes (synthetic worlds only).
	ASes         []ASMeta `json:"ases,omitempty"`
	TruthCensors []uint32 `json:"truth_censors,omitempty"`
}

// File is one decoded dataset: the header plus the measurement records in
// day-ordered batches (Days[d] holds day d's records, empty days kept).
// Record IDs are left unassigned — iclab.MergeShards assigns the merged
// sequence's IDs exactly as a live measurement run would.
type File struct {
	Header Header
	Days   [][]iclab.Record
}

// wireRecord is one record line. The compact path references the header's
// vantage and target tables; the explicit URL/Category/TargetASN/
// VantageCountry fields appear only when a record disagrees with its table
// entry (foreign data with sloppy indices), so synthesized datasets stay
// small.
type wireRecord struct {
	Day     int    `json:"d"`
	Vantage uint32 `json:"v"`
	Target  int32  `json:"t"`
	At      int64  `json:"at"` // UnixNano, UTC

	Anomalies uint8    `json:"an,omitempty"`
	Path      []uint32 `json:"p,omitempty"`
	Fail      uint8    `json:"f,omitempty"`

	// Explicit overrides of the table lookups (rare).
	URL            string `json:"url,omitempty"`
	Category       *uint8 `json:"cat,omitempty"`
	TargetASN      uint32 `json:"tasn,omitempty"`
	VantageCountry string `json:"vc,omitempty"`

	// Ground truth (synthetic worlds only).
	TruePath    []uint32  `json:"tp,omitempty"`
	TrueActs    []wireAct `json:"ta,omitempty"`
	Unreachable bool      `json:"u,omitempty"`
}

// wireAct is one ground-truth censor action.
type wireAct struct {
	ASN   uint32 `json:"a"`
	Kinds uint8  `json:"k"`
}

// fillTables stamps the format identity and the current code tables.
func (h *Header) fillTables() {
	h.Format = Magic
	h.Version = Version
	h.AnomalyKinds = h.AnomalyKinds[:0]
	for _, k := range anomaly.Kinds {
		h.AnomalyKinds = append(h.AnomalyKinds, k.String())
	}
	h.FailReasons = h.FailReasons[:0]
	for r := traceroute.OK; r <= traceroute.ErrDisagree; r++ {
		h.FailReasons = append(h.FailReasons, r.String())
	}
	h.Categories = h.Categories[:0]
	for c := webcat.Category(0); c < webcat.NumCategories; c++ {
		h.Categories = append(h.Categories, c.String())
	}
}

// Encode writes f as a gzipped JSONL stream: the header line, then one
// line per record in day order. The header's Format, Version, Days,
// Records and code tables are stamped here — callers fill only the world
// metadata.
func Encode(w io.Writer, f *File) error {
	zw := gzip.NewWriter(w)
	if err := encodePlain(zw, f); err != nil {
		zw.Close() //churnvet:ok errflow -- error path: the encode error being returned outranks a close failure on an already-broken stream
		return err
	}
	return zw.Close()
}

// encodePlain is Encode before compression — the layer the golden-file
// test pins, so format stability is asserted independently of the gzip
// implementation's byte output.
func encodePlain(w io.Writer, f *File) error {
	h := f.Header
	h.fillTables()
	h.Days = len(f.Days)
	h.Records = 0
	for _, day := range f.Days {
		h.Records += len(day)
	}

	countryOf := make(map[uint32]string, len(h.Vantages))
	for _, v := range h.Vantages {
		countryOf[v.ASN] = v.Country
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&h); err != nil {
		return fmt.Errorf("dataset: encode header: %w", err)
	}
	var wr wireRecord
	var line []byte
	for day, recs := range f.Days {
		for i := range recs {
			if err := toWire(&recs[i], day, &h, countryOf, &wr); err != nil {
				return err
			}
			// Records without explicit string overrides — every record a
			// synthesized dataset emits — take the hand-rolled encoder;
			// appendWire produces byte-for-byte what json.Encoder would
			// (the differential test pins that), without per-record
			// reflection or marshal buffers.
			if wr.URL == "" && wr.Category == nil && wr.TargetASN == 0 && wr.VantageCountry == "" {
				line = appendWire(line[:0], &wr)
				if _, err := bw.Write(line); err != nil {
					return fmt.Errorf("dataset: encode day %d record %d: %w", day, i, err)
				}
				continue
			}
			if err := enc.Encode(&wr); err != nil {
				return fmt.Errorf("dataset: encode day %d record %d: %w", day, i, err)
			}
		}
	}
	return bw.Flush()
}

// toWire converts one record into wr, compacting fields the header tables
// imply. wr is overwritten; its slices keep their capacity across calls.
func toWire(r *iclab.Record, day int, h *Header, countryOf map[uint32]string, wr *wireRecord) error {
	if r.Fail > traceroute.ErrDisagree {
		return fmt.Errorf("dataset: day %d: unencodable fail reason %d", day, r.Fail)
	}
	*wr = wireRecord{
		Day:       day,
		Vantage:   uint32(r.Vantage),
		Target:    r.TargetIdx,
		At:        r.At.UnixNano(),
		Anomalies: uint8(r.Anomalies),
		Fail:      uint8(r.Fail),
		Path:      wr.Path[:0],
		TruePath:  wr.TruePath[:0],
		TrueActs:  wr.TrueActs[:0],
	}
	for _, a := range r.ASPath {
		wr.Path = append(wr.Path, uint32(a))
	}
	// The compact path relies on the tables round-tripping the record; any
	// disagreement falls back to explicit fields rather than silently
	// rewriting the data.
	tableOK := r.TargetIdx >= 0 && int(r.TargetIdx) < len(h.Targets)
	if tableOK {
		t := h.Targets[r.TargetIdx]
		tableOK = t.URL == r.URL && webcat.Category(t.Category) == r.Category && topology.ASN(t.ASN) == r.TargetASN
	}
	if !tableOK {
		cat := uint8(r.Category)
		wr.URL, wr.Category, wr.TargetASN = r.URL, &cat, uint32(r.TargetASN)
	}
	if countryOf[uint32(r.Vantage)] != r.VantageCountry {
		wr.VantageCountry = r.VantageCountry
	}
	for _, a := range r.TruePath {
		wr.TruePath = append(wr.TruePath, uint32(a))
	}
	for _, act := range r.TrueActs {
		wr.TrueActs = append(wr.TrueActs, wireAct{ASN: uint32(act.ASN), Kinds: uint8(act.Kinds)})
	}
	wr.Unreachable = r.Unreachable
	return nil
}

// appendWire appends wr's JSON line — identical to what json.Encoder
// emits, newline included — to b. Only valid for records with no string
// or pointer overrides (URL, Category, TargetASN, VantageCountry unset):
// every remaining field is numeric or boolean, so no escaping logic is
// needed. Field order and omitempty behaviour mirror the wireRecord
// struct tags exactly; the golden v1 file and the differential test both
// pin the equivalence.
func appendWire(b []byte, wr *wireRecord) []byte {
	b = append(b, `{"d":`...)
	b = strconv.AppendInt(b, int64(wr.Day), 10)
	b = append(b, `,"v":`...)
	b = strconv.AppendUint(b, uint64(wr.Vantage), 10)
	b = append(b, `,"t":`...)
	b = strconv.AppendInt(b, int64(wr.Target), 10)
	b = append(b, `,"at":`...)
	b = strconv.AppendInt(b, wr.At, 10)
	if wr.Anomalies != 0 {
		b = append(b, `,"an":`...)
		b = strconv.AppendUint(b, uint64(wr.Anomalies), 10)
	}
	if len(wr.Path) > 0 {
		b = append(b, `,"p":[`...)
		for i, a := range wr.Path {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, uint64(a), 10)
		}
		b = append(b, ']')
	}
	if wr.Fail != 0 {
		b = append(b, `,"f":`...)
		b = strconv.AppendUint(b, uint64(wr.Fail), 10)
	}
	if len(wr.TruePath) > 0 {
		b = append(b, `,"tp":[`...)
		for i, a := range wr.TruePath {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, uint64(a), 10)
		}
		b = append(b, ']')
	}
	if len(wr.TrueActs) > 0 {
		b = append(b, `,"ta":[`...)
		for i, act := range wr.TrueActs {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"a":`...)
			b = strconv.AppendUint(b, uint64(act.ASN), 10)
			b = append(b, `,"k":`...)
			b = strconv.AppendUint(b, uint64(act.Kinds), 10)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	if wr.Unreachable {
		b = append(b, `,"u":true`...)
	}
	return append(b, '}', '\n')
}

// codeTables resolves a header's code tables against the current
// constants, so records decode by the names the file declares rather than
// by positional luck.
type codeTables struct {
	kinds      []anomaly.Kind // wire bit -> kind
	fails      []traceroute.FailReason
	categories []webcat.Category
	countryOf  map[uint32]string
}

func tablesOf(h *Header) (*codeTables, error) {
	t := &codeTables{countryOf: make(map[uint32]string, len(h.Vantages))}
	kindByName := map[string]anomaly.Kind{}
	for _, k := range anomaly.Kinds {
		kindByName[k.String()] = k
	}
	for _, name := range h.AnomalyKinds {
		k, ok := kindByName[name]
		if !ok {
			return nil, fmt.Errorf("dataset: unknown anomaly kind %q", name)
		}
		t.kinds = append(t.kinds, k)
	}
	failByName := map[string]traceroute.FailReason{}
	for r := traceroute.OK; r <= traceroute.ErrDisagree; r++ {
		failByName[r.String()] = r
	}
	for _, name := range h.FailReasons {
		r, ok := failByName[name]
		if !ok {
			return nil, fmt.Errorf("dataset: unknown fail reason %q", name)
		}
		t.fails = append(t.fails, r)
	}
	catByName := map[string]webcat.Category{}
	for c := webcat.Category(0); c < webcat.NumCategories; c++ {
		catByName[c.String()] = c
	}
	for _, name := range h.Categories {
		c, ok := catByName[name]
		if !ok {
			return nil, fmt.Errorf("dataset: unknown category %q", name)
		}
		t.categories = append(t.categories, c)
	}
	for _, v := range h.Vantages {
		t.countryOf[v.ASN] = v.Country
	}
	return t, nil
}

// fromWire converts one record line back, resolving table references.
func fromWire(wr *wireRecord, h *Header, t *codeTables) (iclab.Record, error) {
	var r iclab.Record
	if wr.Day < 0 || wr.Day >= h.Days {
		return r, fmt.Errorf("dataset: record day %d outside the period of %d days", wr.Day, h.Days)
	}
	r.Vantage = topology.ASN(wr.Vantage)
	r.TargetIdx = wr.Target
	r.At = time.Unix(0, wr.At).UTC()
	for bit, k := range t.kinds {
		if wr.Anomalies&(1<<bit) != 0 {
			r.Anomalies = r.Anomalies.Add(k)
		}
	}
	if int(wr.Fail) >= len(t.fails) {
		return r, fmt.Errorf("dataset: fail code %d outside the header's %d reasons", wr.Fail, len(t.fails))
	}
	r.Fail = t.fails[wr.Fail]
	for _, a := range wr.Path {
		r.ASPath = append(r.ASPath, topology.ASN(a))
	}
	switch {
	// The category pointer marks the explicit-override form — the URL
	// alone cannot, since omitempty drops an empty override URL.
	case wr.Category != nil || wr.URL != "":
		if wr.Category == nil || int(*wr.Category) >= len(t.categories) {
			return r, fmt.Errorf("dataset: record for %q carries no decodable category", wr.URL)
		}
		r.URL, r.Category, r.TargetASN = wr.URL, t.categories[*wr.Category], topology.ASN(wr.TargetASN)
	case wr.Target >= 0 && int(wr.Target) < len(h.Targets):
		tgt := h.Targets[wr.Target]
		if int(tgt.Category) >= len(t.categories) {
			return r, fmt.Errorf("dataset: target %d category code %d outside the header's table", wr.Target, tgt.Category)
		}
		r.URL, r.Category, r.TargetASN = tgt.URL, t.categories[tgt.Category], topology.ASN(tgt.ASN)
	default:
		return r, fmt.Errorf("dataset: record references target %d of %d and carries no explicit URL", wr.Target, len(h.Targets))
	}
	r.VantageCountry = wr.VantageCountry
	if r.VantageCountry == "" {
		r.VantageCountry = t.countryOf[wr.Vantage]
	}
	for _, a := range wr.TruePath {
		r.TruePath = append(r.TruePath, topology.ASN(a))
	}
	for _, act := range wr.TrueActs {
		r.TrueActs = append(r.TrueActs, iclab.GroundTruthAct{
			ASN: topology.ASN(act.ASN), Kinds: anomaly.Set(act.Kinds),
		})
	}
	r.Unreachable = wr.Unreachable
	return r, nil
}

// Decode reads a gzipped dataset stream, validating the magic, version and
// record count. It never panics on corrupt input.
func Decode(r io.Reader) (*File, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: not a gzipped dataset: %w", err)
	}
	defer zr.Close() //churnvet:ok errflow -- read path: gzip reader close frees state only; a decode error from decodePlain already dominates
	return decodePlain(zr)
}

// decodePlain decodes the uncompressed JSONL layer.
func decodePlain(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("dataset: decode header: %w", err)
	}
	if h.Format != Magic {
		return nil, fmt.Errorf("dataset: format %q is not %q", h.Format, Magic)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("dataset: version %d not supported (this build reads v%d)", h.Version, Version)
	}
	if h.Days < 0 || h.Records < 0 {
		return nil, fmt.Errorf("dataset: header declares %d days, %d records", h.Days, h.Records)
	}
	// The day-batch slice is allocated from the header, so an absurd count
	// must be rejected here — "never panics on corrupt input" includes not
	// dying in makeslice. maxDays is ~2870 years of measurements.
	const maxDays = 1 << 20
	if h.Days > maxDays {
		return nil, fmt.Errorf("dataset: header declares %d days (limit %d); corrupt header?", h.Days, maxDays)
	}
	tables, err := tablesOf(&h)
	if err != nil {
		return nil, err
	}

	f := &File{Header: h, Days: make([][]iclab.Record, h.Days)}
	n := 0
	var wr wireRecord
	var lineBuf []byte
	for {
		line, err := readLineInto(br, lineBuf)
		lineBuf = line[:0]
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read record %d: %w", n, err)
		}
		if len(line) == 0 {
			continue
		}
		// Reset the reused record by value but keep the slices' capacity;
		// Unmarshal decodes arrays into existing backing storage, and
		// absent fields must not inherit the previous record's values.
		wr = wireRecord{Path: wr.Path[:0], TruePath: wr.TruePath[:0], TrueActs: wr.TrueActs[:0]}
		if err := json.Unmarshal(line, &wr); err != nil {
			return nil, fmt.Errorf("dataset: decode record %d: %w", n, err)
		}
		rec, err := fromWire(&wr, &h, tables)
		if err != nil {
			return nil, err
		}
		f.Days[wr.Day] = append(f.Days[wr.Day], rec)
		n++
	}
	if n != h.Records {
		return nil, fmt.Errorf("dataset: header declares %d records, stream holds %d (truncated?)", h.Records, n)
	}
	return f, nil
}

// readLine reads one \n-terminated line of any length (the header line of
// a paper-scale dataset outgrows a Scanner's default buffer).
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if len(line) > 0 && errors.Is(err, io.EOF) {
		return line, nil // unterminated final line
	}
	if err != nil {
		return nil, err
	}
	return line, nil
}

// readLineInto is readLine accumulating into a reusable buffer: record
// lines are consumed immediately, so the decode loop reads every line into
// the same backing array instead of allocating one per record.
func readLineInto(br *bufio.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		switch {
		case errors.Is(err, bufio.ErrBufferFull):
			continue // long line: keep accumulating
		case errors.Is(err, io.EOF) && len(buf) > 0:
			return buf, nil // unterminated final line
		default:
			return buf, err
		}
	}
}

// WriteFile encodes f to path (the conventional extension is .jsonl.gz).
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := Encode(out, f); err != nil {
		out.Close()     //churnvet:ok errflow -- best-effort cleanup on the error path; the encode error is returned
		os.Remove(path) //churnvet:ok errflow -- best-effort removal of the half-written file; the encode error is returned
		return err
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// ReadFile decodes the dataset at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer in.Close() //churnvet:ok errflow -- read-only fd: close cannot lose data, and Decode's error already dominates
	return Decode(in)
}
