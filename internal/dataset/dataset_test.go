package dataset

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/iclab"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
	"churntomo/internal/webcat"
)

// update regenerates testdata/golden_v1.jsonl.gz:
//
//	go test ./internal/dataset -run TestGoldenV1 -update
var update = flag.Bool("update", false, "rewrite the golden dataset file")

var goldenPath = filepath.Join("testdata", "golden_v1.jsonl.gz")

// goldenFile is the fixed dataset the golden file pins: every format
// feature in a handful of records — compact table references, an explicit
// override record, an eliminated record, an empty day, ground truth.
func goldenFile() *File {
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	h := Header{
		Scenario: "paper-baseline",
		Seed:     7,
		Start:    start,
		Vantages: []Vantage{{ASN: 64512, Country: "US"}, {ASN: 64513, Country: "IR"}},
		Targets: []Target{
			{URL: "daily-news.com", Category: uint8(webcat.News), ASN: 64600},
			{URL: "proxy-bridge.net", Category: uint8(webcat.Circumvention), ASN: 64601},
		},
		ASes: []ASMeta{
			{ASN: 64512, Name: "Vantage-US", Country: "US", Class: "enterprise"},
			{ASN: 64513, Name: "Vantage-IR", Country: "IR", Class: "enterprise"},
			{ASN: 64600, Name: "Host-A", Country: "DE", Class: "content"},
			{ASN: 64700, Name: "Transit-IR", Country: "IR", Class: "transit"},
		},
		TruthCensors: []uint32{64700},
	}
	rec := func(v topology.ASN, country string, t int32, at time.Time, an anomaly.Set, path []topology.ASN) iclab.Record {
		tgt := h.Targets[t]
		return iclab.Record{
			Vantage: v, VantageCountry: country,
			TargetASN: topology.ASN(tgt.ASN), TargetIdx: t,
			URL: tgt.URL, Category: webcat.Category(tgt.Category),
			At: at, Anomalies: an, ASPath: path,
			TruePath: path,
		}
	}
	r0 := rec(64512, "US", 0, start.Add(4*time.Hour), 0, []topology.ASN{64512, 64700, 64600})
	r1 := rec(64513, "IR", 1, start.Add(5*time.Hour), anomaly.MakeSet(anomaly.DNS, anomaly.RST),
		[]topology.ASN{64513, 64700, 64601})
	r1.TrueActs = []iclab.GroundTruthAct{{ASN: 64700, Kinds: anomaly.MakeSet(anomaly.DNS, anomaly.RST)}}
	// Day 1 is empty; day 2 holds an eliminated record and an explicit
	// override record whose fields disagree with its target-table entry.
	r2 := rec(64512, "US", 0, start.AddDate(0, 0, 2).Add(6*time.Hour), 0, nil)
	r2.Fail = traceroute.ErrDisagree
	r2.ASPath = nil
	r2.TruePath = []topology.ASN{64512, 64600}
	r3 := rec(64513, "IR", 0, start.AddDate(0, 0, 2).Add(7*time.Hour), anomaly.MakeSet(anomaly.Block),
		[]topology.ASN{64513, 64602})
	r3.URL, r3.Category, r3.TargetASN = "rehosted.org", webcat.Politics, 64602
	r4 := rec(64513, "XX", 1, start.AddDate(0, 0, 2).Add(8*time.Hour), 0, []topology.ASN{64513, 64601})
	r4.Unreachable = true
	return &File{
		Header: h,
		Days:   [][]iclab.Record{{r0, r1}, nil, {r2, r3, r4}},
	}
}

// recordsEqual compares two records field-wise; time.Time goes through
// Equal so wall-clock representation differences don't false-negative.
func recordsEqual(a, b *iclab.Record) bool {
	if !a.At.Equal(b.At) {
		return false
	}
	ac, bc := *a, *b
	ac.At, bc.At = time.Time{}, time.Time{}
	return reflect.DeepEqual(ac, bc)
}

func filesEqual(t *testing.T, want, got *File) {
	t.Helper()
	if len(got.Days) != len(want.Days) {
		t.Fatalf("day batches: got %d, want %d", len(got.Days), len(want.Days))
	}
	for d := range want.Days {
		if len(got.Days[d]) != len(want.Days[d]) {
			t.Fatalf("day %d: got %d records, want %d", d, len(got.Days[d]), len(want.Days[d]))
		}
		for i := range want.Days[d] {
			if !recordsEqual(&want.Days[d][i], &got.Days[d][i]) {
				t.Errorf("day %d record %d:\n got %+v\nwant %+v", d, i, got.Days[d][i], want.Days[d][i])
			}
		}
	}
	if !reflect.DeepEqual(got.Header.Vantages, want.Header.Vantages) ||
		!reflect.DeepEqual(got.Header.Targets, want.Header.Targets) ||
		!reflect.DeepEqual(got.Header.ASes, want.Header.ASes) ||
		!reflect.DeepEqual(got.Header.TruthCensors, want.Header.TruthCensors) {
		t.Error("header tables diverge")
	}
	if got.Header.Scenario != want.Header.Scenario || got.Header.Seed != want.Header.Seed ||
		!got.Header.Start.Equal(want.Header.Start) {
		t.Error("header identity diverges")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := goldenFile()
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	filesEqual(t, f, got)
	if got.Header.Format != Magic || got.Header.Version != Version {
		t.Errorf("decoded identity %q v%d", got.Header.Format, got.Header.Version)
	}
	if got.Header.Records != 5 || got.Header.Days != 3 {
		t.Errorf("decoded counts: %d records, %d days", got.Header.Records, got.Header.Days)
	}
}

func TestWriteReadFile(t *testing.T) {
	f := goldenFile()
	path := filepath.Join(t.TempDir(), "ds.jsonl.gz")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	filesEqual(t, f, got)
}

// TestGoldenV1 pins format v1: the checked-in golden file must keep
// decoding to the same dataset, and today's encoder must keep producing
// the same (pre-gzip) bytes. An encoder change that breaks either fails
// here — bump Version and add migration support instead of editing the
// golden.
func TestGoldenV1(t *testing.T) {
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(goldenPath, goldenFile()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file does not decode: %v", err)
	}
	filesEqual(t, goldenFile(), got)

	// Byte stability is asserted on the JSONL layer, below gzip, so a Go
	// gzip implementation change cannot mask (or fake) a format change.
	var plain bytes.Buffer
	if err := encodePlain(&plain, goldenFile()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.Open(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	zr, err := gzip.NewReader(raw)
	if err != nil {
		t.Fatal(err)
	}
	goldenPlain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), goldenPlain) {
		t.Errorf("encoder output diverges from golden v1 bytes:\n got %d bytes\nwant %d bytes\nfirst lines:\n got: %.200s\nwant: %.200s",
			plain.Len(), len(goldenPlain), plain.String(), goldenPlain)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	encode := func(f *File) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, f); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	gz := func(lines ...string) []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		io.WriteString(zw, strings.Join(lines, "\n"))
		zw.Close()
		return buf.Bytes()
	}
	cases := []struct {
		name  string
		input []byte
		want  string
	}{
		{"not gzip", []byte("plain text"), "not a gzipped"},
		{"absurd day count", gz(fmt.Sprintf(`{"format":%q,"version":1,"days":9000000000000000000}`, Magic)), "corrupt header"},
		{"not json", gz("nonsense"), "decode header"},
		{"wrong magic", gz(`{"format":"something-else","version":1}`), "format"},
		{"future version", gz(fmt.Sprintf(`{"format":%q,"version":99}`, Magic)), "version 99"},
		{"bad anomaly table", gz(fmt.Sprintf(`{"format":%q,"version":1,"anomaly_kinds":["nope"]}`, Magic)), "anomaly kind"},
		{"bad fail table", gz(fmt.Sprintf(`{"format":%q,"version":1,"fail_reasons":["nope"]}`, Magic)), "fail reason"},
		{"bad category table", gz(fmt.Sprintf(`{"format":%q,"version":1,"categories":["nope"]}`, Magic)), "category"},
		{"day out of range", gz(
			fmt.Sprintf(`{"format":%q,"version":1,"days":1,"records":1,"targets":[{"url":"u","category":0,"asn":1}]}`, Magic),
			`{"d":5,"v":1,"t":0,"at":0}`), "outside the period"},
		{"dangling target", gz(
			fmt.Sprintf(`{"format":%q,"version":1,"days":1,"records":1,"fail_reasons":["ok"]}`, Magic),
			`{"d":0,"v":1,"t":3,"at":0}`), "references target"},
	}
	for _, tc := range cases {
		_, err := Decode(bytes.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: decoded successfully", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// A truncated record stream must be caught by the count check.
	full := encode(goldenFile())
	zr, err := gzip.NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.LastIndexByte(plain[:len(plain)-1], '\n')
	var rezip bytes.Buffer
	zw := gzip.NewWriter(&rezip)
	zw.Write(plain[:cut+1])
	zw.Close()
	if _, err := Decode(&rezip); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated stream: err = %v", err)
	}
}

// TestEmptyURLOverrideRoundTrips pins the explicit-override form for a
// record whose URL is empty: the category pointer, not the URL, marks the
// override, so the empty URL must survive instead of being silently
// replaced by the target table's entry.
func TestEmptyURLOverrideRoundTrips(t *testing.T) {
	f := goldenFile()
	r := f.Days[0][0]
	r.URL, r.Category, r.TargetASN = "", webcat.Politics, 65001 // disagrees with target 0
	f.Days = [][]iclab.Record{{r}}
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d := got.Days[0][0]
	if d.URL != "" || d.Category != webcat.Politics || d.TargetASN != 65001 {
		t.Errorf("override record rewritten: URL %q, Category %v, TargetASN %v", d.URL, d.Category, d.TargetASN)
	}
}

// FuzzDatasetRoundTrip drives the codec with pseudo-random datasets: any
// file the encoder accepts must decode back to the identical dataset, and
// the decoder must never panic.
func FuzzDatasetRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(10))
	f.Add(uint64(42), uint8(1), uint8(0))
	f.Add(uint64(7), uint8(8), uint8(50))
	f.Fuzz(func(t *testing.T, seed uint64, days uint8, perDay uint8) {
		if days == 0 {
			days = 1
		}
		if days > 16 {
			days %= 16
		}
		if perDay > 64 {
			perDay %= 64
		}
		file := randomFile(seed, int(days), int(perDay))
		var buf bytes.Buffer
		if err := Encode(&buf, file); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		filesEqual(t, file, got)
	})
}

// randomFile builds a deterministic pseudo-random dataset exercising the
// codec's branches: eliminated records, anomaly sets, truth fields,
// records disagreeing with their table entries, empty days.
func randomFile(seed uint64, days, perDay int) *File {
	rng := rand.New(rand.NewPCG(seed, 0xda7a5e7))
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	h := Header{Scenario: "fuzz", Seed: seed, Start: start}
	nv, nt := 1+rng.IntN(5), 1+rng.IntN(5)
	for i := 0; i < nv; i++ {
		h.Vantages = append(h.Vantages, Vantage{ASN: uint32(64500 + i), Country: fmt.Sprintf("C%d", rng.IntN(4))})
	}
	for i := 0; i < nt; i++ {
		h.Targets = append(h.Targets, Target{
			URL:      fmt.Sprintf("site-%d.example", i),
			Category: uint8(rng.IntN(int(webcat.NumCategories))),
			ASN:      uint32(64600 + i),
		})
	}
	if rng.IntN(2) == 0 {
		h.ASes = append(h.ASes, ASMeta{ASN: 64700, Name: "T", Country: "C0", Class: "transit"})
		h.TruthCensors = []uint32{64700}
	}
	f := &File{Header: h, Days: make([][]iclab.Record, days)}
	for d := 0; d < days; d++ {
		if rng.IntN(8) == 0 {
			continue // empty day
		}
		for i := 0; i < perDay; i++ {
			vi, ti := rng.IntN(nv), rng.IntN(nt)
			v, tgt := h.Vantages[vi], h.Targets[ti]
			r := iclab.Record{
				Vantage: topology.ASN(v.ASN), VantageCountry: v.Country,
				TargetASN: topology.ASN(tgt.ASN), TargetIdx: int32(ti),
				URL: tgt.URL, Category: webcat.Category(tgt.Category),
				At:        start.AddDate(0, 0, d).Add(time.Duration(rng.IntN(86400)) * time.Second),
				Anomalies: anomaly.Set(rng.IntN(1 << anomaly.NumKinds)),
			}
			switch rng.IntN(4) {
			case 0:
				r.Fail = traceroute.FailReason(1 + rng.IntN(4))
				r.Unreachable = rng.IntN(2) == 0
			default:
				for h := 0; h < 2+rng.IntN(4); h++ {
					r.ASPath = append(r.ASPath, topology.ASN(64500+rng.IntN(300)))
				}
			}
			if rng.IntN(3) == 0 {
				r.TruePath = append([]topology.ASN(nil), r.ASPath...)
				r.TrueActs = []iclab.GroundTruthAct{{ASN: 64700, Kinds: anomaly.Set(rng.IntN(1 << anomaly.NumKinds))}}
			}
			if rng.IntN(8) == 0 {
				// Disagree with the table: forces the explicit-field path.
				r.URL = "override.example"
				r.Category = webcat.Category(rng.IntN(int(webcat.NumCategories)))
				r.TargetASN = 65000
				r.VantageCountry = "ZZ"
			}
			f.Days[d] = append(f.Days[d], r)
		}
	}
	return f
}

// TestAppendWireMatchesJSON differentially pins the hand-rolled record
// encoder against encoding/json over a sweep of wire shapes: every
// omitempty combination the fast path can see must produce byte-identical
// output (newline included). If the wireRecord struct tags ever drift,
// this fails before the golden file does.
func TestAppendWireMatchesJSON(t *testing.T) {
	cases := []wireRecord{
		{},
		{Day: 3, Vantage: 65001, Target: -1, At: -62135596800000000},
		{Day: 0, Vantage: 1, Target: 0, At: 1462867200000000000, Anomalies: 3},
		{Day: 7, Vantage: 4200000000, Target: 12, At: 1, Path: []uint32{1, 2, 3}},
		{Day: 1, Vantage: 2, Target: 3, At: 4, Fail: 2},
		{Day: 1, Vantage: 2, Target: 3, At: 4, TruePath: []uint32{9}},
		{Day: 1, Vantage: 2, Target: 3, At: 4,
			TrueActs: []wireAct{{ASN: 64512, Kinds: 0}, {ASN: 7, Kinds: 31}}},
		{Day: 1, Vantage: 2, Target: 3, At: 4, Unreachable: true},
		{Day: 2, Vantage: 3, Target: 4, At: 1462867200000000000, Anomalies: 255,
			Path: []uint32{10, 20, 30, 40}, Fail: 1, TruePath: []uint32{10, 20, 30},
			TrueActs: []wireAct{{ASN: 1, Kinds: 2}}, Unreachable: true},
	}
	rng := rand.New(rand.NewPCG(42, 7))
	for i := 0; i < 200; i++ {
		wr := wireRecord{
			Day:       int(rng.IntN(4000)),
			Vantage:   rng.Uint32(),
			Target:    int32(rng.IntN(100) - 1),
			At:        rng.Int64(),
			Anomalies: uint8(rng.IntN(256)),
			Fail:      uint8(rng.IntN(8)),
		}
		for n := rng.IntN(6); n > 0; n-- {
			wr.Path = append(wr.Path, rng.Uint32())
		}
		for n := rng.IntN(4); n > 0; n-- {
			wr.TruePath = append(wr.TruePath, rng.Uint32())
		}
		for n := rng.IntN(3); n > 0; n-- {
			wr.TrueActs = append(wr.TrueActs, wireAct{ASN: rng.Uint32(), Kinds: uint8(rng.IntN(256))})
		}
		wr.Unreachable = rng.IntN(2) == 1
		cases = append(cases, wr)
	}
	for i, wr := range cases {
		var want bytes.Buffer
		enc := json.NewEncoder(&want)
		if err := enc.Encode(&wr); err != nil {
			t.Fatalf("case %d: json encode: %v", i, err)
		}
		got := appendWire(nil, &wr)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("case %d: appendWire diverges from encoding/json\n got: %s\nwant: %s", i, got, want.Bytes())
		}
	}
}
