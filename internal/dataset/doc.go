// Package dataset implements the versioned on-disk record format that
// decouples measurement generation from localization: a gzipped JSONL
// stream whose first line is a self-describing header and whose remaining
// lines are one measurement record each, grouped by measurement day.
//
// The header carries everything the tomography and the report layer need
// beyond the raw records — the measurement period, the vantage and target
// tables, the AS metadata table (names, countries, CAIDA-style classes)
// and the ground-truth censor list — plus the code tables (anomaly kinds,
// elimination reasons, URL categories) that records reference by index,
// so a v1 file can be decoded without consulting this package's constants.
//
// Format stability is pinned by a checked-in golden file
// (testdata/golden_v1.jsonl.gz): any encoder change that breaks v1
// compatibility fails TestGoldenV1 loudly. Decode validates the magic and
// version up front and never panics on corrupt input (FuzzDatasetRoundTrip
// exercises the codec both ways).
package dataset
