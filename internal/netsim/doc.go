// Package netsim is the packet model under the measurement simulators:
// IPv4 TTL arithmetic, TCP sequence space, DNS transaction framing, and
// client-side captures.
//
// Entry points: Packet and Capture are the shared currency — the DNS and
// HTTP simulators build Captures out of them, and the detectors in
// internal/detect consume Captures exactly the way ICLab's offline
// analysis consumes raw pcaps.
//
// Invariants: nothing in a Capture says "this packet was injected" except
// the ground-truth fields, which detectors are forbidden to read (enforced
// by convention and by tests that strip them). TTL constants
// (InitTTLLinux, InitTTLWindows) anchor the TTL-anomaly arithmetic used on
// both the injection and detection sides.
package netsim
