package netsim

import (
	"fmt"
	"slices"
	"time"

	"churntomo/internal/netaddr"
)

// Proto is the transport protocol of a packet.
type Proto uint8

// Protocols.
const (
	ProtoUDP Proto = iota
	ProtoTCP
)

// TCPFlags is a TCP flag bitmask.
type TCPFlags uint8

// TCP flags.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagRST
	FlagFIN
	FlagPSH
)

// String renders flags in tcpdump style, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagRST, "RST"}, {FlagFIN, "FIN"}, {FlagPSH, "PSH"}}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Packet is one captured packet as seen at the vantage point.
type Packet struct {
	At       time.Time
	Src, Dst netaddr.IP
	TTL      uint8 // TTL on arrival at the capture point
	Proto    Proto
	SrcPort  uint16
	DstPort  uint16
	Seq, Ack uint32
	Flags    TCPFlags
	Payload  []byte

	// Ground truth for validation and tests only. Detectors MUST NOT read
	// these fields; Capture.Sanitized returns a copy with them erased so
	// tests can prove detectors behave identically without them.
	Injected   bool
	InjectedBy uint32 // ASN of the injecting middlebox
}

// String summarizes a packet for debugging.
func (p Packet) String() string {
	if p.Proto == ProtoUDP {
		return fmt.Sprintf("UDP %v:%d > %v:%d ttl=%d len=%d",
			p.Src, p.SrcPort, p.Dst, p.DstPort, p.TTL, len(p.Payload))
	}
	return fmt.Sprintf("TCP %v:%d > %v:%d [%v] seq=%d ack=%d ttl=%d len=%d",
		p.Src, p.SrcPort, p.Dst, p.DstPort, p.Flags, p.Seq, p.Ack, p.TTL, len(p.Payload))
}

// Capture is a time-ordered client-side packet capture.
type Capture struct {
	Packets []Packet
}

// Add appends a packet, keeping time order lazily (Sort finalizes).
func (c *Capture) Add(p Packet) { c.Packets = append(c.Packets, p) }

// Sort orders packets by arrival time (stable, so simultaneous packets keep
// insertion order, like a real pcap).
func (c *Capture) Sort() {
	slices.SortStableFunc(c.Packets, func(a, b Packet) int {
		return a.At.Compare(b.At)
	})
}

// Len returns the number of packets.
func (c *Capture) Len() int { return len(c.Packets) }

// Inbound filters packets destined to the given client address.
func (c *Capture) Inbound(client netaddr.IP) []Packet {
	var out []Packet
	for _, p := range c.Packets {
		if p.Dst == client {
			out = append(out, p)
		}
	}
	return out
}

// FromHost filters packets claiming the given source address (spoofed
// injections included, by design — that is all a capture can know).
func (c *Capture) FromHost(src netaddr.IP) []Packet {
	var out []Packet
	for _, p := range c.Packets {
		if p.Src == src {
			out = append(out, p)
		}
	}
	return out
}

// Sanitized returns a deep copy with all ground-truth annotations erased.
// Tests run detectors on both versions to prove no ground-truth leakage.
func (c *Capture) Sanitized() Capture {
	out := Capture{Packets: make([]Packet, len(c.Packets))}
	copy(out.Packets, c.Packets)
	for i := range out.Packets {
		out.Packets[i].Injected = false
		out.Packets[i].InjectedBy = 0
		out.Packets[i].Payload = append([]byte(nil), out.Packets[i].Payload...)
	}
	return out
}

// Common initial TTLs. Linux-style servers start at 64, Windows-style at
// 128, and many injection boxes send at 255 to guarantee delivery — a
// fingerprint ICLab's TTL detector exploits.
const (
	InitTTLLinux   uint8 = 64
	InitTTLWindows uint8 = 128
	InitTTLMax     uint8 = 255
)

// ArrivalTTL computes the TTL observed after hops router traversals.
// Arrival TTL below 1 means the packet died in transit; callers should drop
// it (returns 0).
func ArrivalTTL(initial uint8, hops int) uint8 {
	if hops < 0 || hops >= int(initial) {
		return 0
	}
	return initial - uint8(hops)
}

// DNSMessage is a minimal DNS transaction model: enough structure for the
// dual-response injection detector (query ID matching and answer payloads),
// serialized into Packet.Payload.
type DNSMessage struct {
	ID       uint16
	Response bool
	Host     string
	Answer   netaddr.IP // A record; 0 for queries
}

// MarshalDNS encodes m into a compact wire form.
func MarshalDNS(m DNSMessage) []byte {
	buf := make([]byte, 0, 8+len(m.Host))
	buf = append(buf, byte(m.ID>>8), byte(m.ID))
	flag := byte(0)
	if m.Response {
		flag = 0x80
	}
	buf = append(buf, flag, byte(len(m.Host)))
	buf = append(buf, m.Host...)
	a := uint32(m.Answer)
	buf = append(buf, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	return buf
}

// UnmarshalDNS decodes a payload produced by MarshalDNS.
func UnmarshalDNS(b []byte) (DNSMessage, error) {
	if len(b) < 8 {
		return DNSMessage{}, fmt.Errorf("netsim: DNS payload too short (%d bytes)", len(b))
	}
	hostLen := int(b[3])
	if len(b) != 8+hostLen {
		return DNSMessage{}, fmt.Errorf("netsim: DNS payload length mismatch")
	}
	host := string(b[4 : 4+hostLen])
	a := b[4+hostLen:]
	return DNSMessage{
		ID:       uint16(b[0])<<8 | uint16(b[1]),
		Response: b[2]&0x80 != 0,
		Host:     host,
		Answer:   netaddr.IP(uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])),
	}, nil
}

// DNSPort is the well-known DNS port.
const DNSPort uint16 = 53

// HTTPPort is the well-known HTTP port.
const HTTPPort uint16 = 80
