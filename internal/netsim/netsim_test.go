package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"churntomo/internal/netaddr"
)

var t0 = time.Date(2016, 5, 1, 12, 0, 0, 0, time.UTC)

func TestArrivalTTL(t *testing.T) {
	cases := []struct {
		initial uint8
		hops    int
		want    uint8
	}{
		{64, 0, 64},
		{64, 5, 59},
		{255, 10, 245},
		{64, 64, 0},  // died exactly at the destination hop count
		{64, 100, 0}, // died in transit
		{64, -1, 0},  // nonsense distance
	}
	for _, c := range cases {
		if got := ArrivalTTL(c.initial, c.hops); got != c.want {
			t.Errorf("ArrivalTTL(%d,%d) = %d, want %d", c.initial, c.hops, got, c.want)
		}
	}
}

func TestCaptureSortStable(t *testing.T) {
	var c Capture
	c.Add(Packet{At: t0.Add(3 * time.Millisecond), Seq: 3})
	c.Add(Packet{At: t0.Add(1 * time.Millisecond), Seq: 1})
	c.Add(Packet{At: t0.Add(1 * time.Millisecond), Seq: 2}) // same instant, later insert
	c.Sort()
	if c.Packets[0].Seq != 1 || c.Packets[1].Seq != 2 || c.Packets[2].Seq != 3 {
		t.Errorf("sort order wrong: %+v", c.Packets)
	}
}

func TestCaptureFilters(t *testing.T) {
	client := netaddr.MustParseIP("10.0.0.1")
	server := netaddr.MustParseIP("20.0.0.1")
	var c Capture
	c.Add(Packet{Src: client, Dst: server})
	c.Add(Packet{Src: server, Dst: client})
	c.Add(Packet{Src: server, Dst: client})
	if got := len(c.Inbound(client)); got != 2 {
		t.Errorf("Inbound = %d, want 2", got)
	}
	if got := len(c.FromHost(server)); got != 2 {
		t.Errorf("FromHost = %d, want 2", got)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestSanitizedStripsGroundTruth(t *testing.T) {
	var c Capture
	c.Add(Packet{Injected: true, InjectedBy: 4134, Payload: []byte("x")})
	s := c.Sanitized()
	if s.Packets[0].Injected || s.Packets[0].InjectedBy != 0 {
		t.Error("Sanitized kept ground truth")
	}
	// Deep copy: mutating the sanitized payload must not affect the original.
	s.Packets[0].Payload[0] = 'y'
	if c.Packets[0].Payload[0] != 'x' {
		t.Error("Sanitized shares payload storage with original")
	}
	if !c.Packets[0].Injected {
		t.Error("Sanitized mutated the original")
	}
}

func TestDNSRoundTrip(t *testing.T) {
	m := DNSMessage{ID: 0xbeef, Response: true, Host: "deals-1.shop.com", Answer: netaddr.MustParseIP("20.3.0.7")}
	got, err := UnmarshalDNS(MarshalDNS(m))
	if err != nil {
		t.Fatalf("UnmarshalDNS: %v", err)
	}
	if got != m {
		t.Errorf("round trip: got %+v want %+v", got, m)
	}
}

func TestDNSRoundTripProperty(t *testing.T) {
	f := func(id uint16, resp bool, hostRaw []byte, answer uint32) bool {
		if len(hostRaw) > 255 {
			hostRaw = hostRaw[:255]
		}
		m := DNSMessage{ID: id, Response: resp, Host: string(hostRaw), Answer: netaddr.IP(answer)}
		got, err := UnmarshalDNS(MarshalDNS(m))
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalDNSErrors(t *testing.T) {
	if _, err := UnmarshalDNS([]byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
	// Length mismatch: claims 10-byte host but carries 2.
	bad := []byte{0, 1, 0x80, 10, 'a', 'b', 0, 0, 0, 0}
	if _, err := UnmarshalDNS(bad); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFlagStrings(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SYN|ACK" {
		t.Errorf("flags = %q", got)
	}
	if got := TCPFlags(0).String(); got != "none" {
		t.Errorf("empty flags = %q", got)
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{Proto: ProtoTCP, Src: netaddr.MustParseIP("1.2.3.4"), SrcPort: 80,
		Dst: netaddr.MustParseIP("5.6.7.8"), DstPort: 1234, Flags: FlagRST, TTL: 60}
	s := p.String()
	if s == "" || p.Proto != ProtoTCP {
		t.Errorf("String = %q", s)
	}
	u := Packet{Proto: ProtoUDP, SrcPort: 53}
	if u.String() == "" {
		t.Error("UDP String empty")
	}
}
