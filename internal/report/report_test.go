package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"xxxxxxx", "1"},
		{"y", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All rows padded to the same width per column.
	if !strings.HasPrefix(lines[0], "a      ") {
		t.Errorf("header not padded: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(out, "xxxxxxx") || !strings.Contains(out, "22") {
		t.Error("cells missing")
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"day"}, []string{"0", "1"}, [][]float64{{0.25, 1.5}})
	if !strings.Contains(out, "day") {
		t.Error("group label missing")
	}
	if !strings.Contains(out, "25.0%") {
		t.Errorf("percentage missing:\n%s", out)
	}
	// Values above 1 are clamped to the bar width, not overflowed.
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 80 {
			t.Errorf("bar overflow: %q", line)
		}
	}
	// Missing values render as zero.
	out2 := Bars([]string{"g1", "g2"}, []string{"s"}, [][]float64{{0.5}})
	if !strings.Contains(out2, "0.0%") {
		t.Error("missing value should render 0.0%")
	}
}

func TestCDFOf(t *testing.T) {
	samples := []float64{10, 20, 30, 40}
	pts := CDFOf(samples, []float64{0, 15, 25, 100})
	want := []float64{0, 0.25, 0.5, 1}
	for i, p := range pts {
		if p.Y != want[i] {
			t.Errorf("CDF at %.0f = %.2f, want %.2f", p.X, p.Y, want[i])
		}
	}
	if got := CDFOf(nil, []float64{1}); got[0].Y != 0 {
		t.Error("empty samples should give zero CDF")
	}
	out := CDF(pts, "x")
	if !strings.Contains(out, "100.0%") || !strings.Contains(out, "x") {
		t.Errorf("CDF rendering wrong:\n%s", out)
	}
}

func TestMatrix(t *testing.T) {
	w := func(r, c string) int {
		if r == "CN" && c == "DE" {
			return 7
		}
		return 0
	}
	out := Matrix("src", "dst", []string{"CN", "RU"}, []string{"DE", "FR"}, w)
	if !strings.Contains(out, "7") {
		t.Errorf("weight missing:\n%s", out)
	}
	if strings.Contains(out, "RU") {
		t.Error("all-zero row should be suppressed")
	}
	if !strings.Contains(out, ".") {
		t.Error("zero cells in non-empty rows should render as '.'")
	}
}
