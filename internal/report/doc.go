// Package report renders experiment results as plain text: aligned tables
// (Table), grouped bar charts (Bars), CDFs (CDF, CDFOf) and flow matrices
// (Matrix).
//
// The benchmark harness and churnlab print every paper table and figure
// through these helpers, so runs are directly comparable to the published
// layouts; the streaming CLI's timeline and convergence reports use the
// same primitives.
//
// Invariants: output is deterministic for given inputs (stable column
// widths, no locale dependence) so textual diffs between runs are
// meaningful.
package report
