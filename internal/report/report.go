package report

import (
	"fmt"
	"strings"
)

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// barWidth is the maximum bar length in characters.
const barWidth = 40

// Bars renders one bar per (group, series) pair with fractional values in
// [0,1], grouped like the paper's clustered bar charts.
func Bars(groups []string, series []string, values [][]float64) string {
	var b strings.Builder
	labelW := 0
	for _, s := range series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	for gi, g := range groups {
		fmt.Fprintf(&b, "%s\n", g)
		for si, s := range series {
			v := 0.0
			if gi < len(values) && si < len(values[gi]) {
				v = values[gi][si]
			}
			n := int(v*barWidth + 0.5)
			if n > barWidth {
				n = barWidth
			}
			fmt.Fprintf(&b, "  %-*s |%-*s| %5.1f%%\n", labelW, s, barWidth, strings.Repeat("#", n), 100*v)
		}
	}
	return b.String()
}

// Point is one CDF point: fraction of samples with value <= X.
type Point struct {
	X float64
	Y float64
}

// CDF renders a cumulative distribution as a fixed set of text rows.
func CDF(points []Point, xLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s  CDF\n", xLabel)
	for _, p := range points {
		n := int(p.Y*barWidth + 0.5)
		if n > barWidth {
			n = barWidth
		}
		fmt.Fprintf(&b, "%-12.1f  |%-*s| %5.1f%%\n", p.X, barWidth, strings.Repeat("#", n), 100*p.Y)
	}
	return b.String()
}

// CDFOf computes CDF points of samples at the given x thresholds
// (fraction of samples <= x).
func CDFOf(samples []float64, xs []float64) []Point {
	out := make([]Point, len(xs))
	for i, x := range xs {
		n := 0
		for _, s := range samples {
			if s <= x {
				n++
			}
		}
		y := 0.0
		if len(samples) > 0 {
			y = float64(n) / float64(len(samples))
		}
		out[i] = Point{X: x, Y: y}
	}
	return out
}

// Matrix renders a labeled weight matrix (Figure 5's country flow) showing
// only non-zero rows.
func Matrix(rowLabel, colLabel string, rows, cols []string, weight func(r, c string) int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", rowLabel+`\`+colLabel)
	for _, c := range cols {
		fmt.Fprintf(&b, "%6s", c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		total := 0
		for _, c := range cols {
			total += weight(r, c)
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s", r)
		for _, c := range cols {
			w := weight(r, c)
			if w == 0 {
				fmt.Fprintf(&b, "%6s", ".")
			} else {
				fmt.Fprintf(&b, "%6d", w)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
