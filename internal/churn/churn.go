package churn

import (
	"sort"

	"churntomo/internal/iclab"
	"churntomo/internal/timeslice"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

// pairKey identifies a (vantage, URL) pair.
type pairKey struct {
	vantage topology.ASN
	url     string
}

// pathID folds an AS path to a comparable key.
func pathID(p []topology.ASN) string {
	b := make([]byte, 0, len(p)*4)
	for _, a := range p {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return string(b)
}

// MaxBucket is the top histogram bucket ("5+" in Figure 3).
const MaxBucket = 5

// Distribution is, per granularity, the fraction of (src,dst) pair-periods
// that observed exactly 1, 2, 3, 4 or 5+ distinct AS paths. Index 0 of
// Buckets is unused; Buckets[b] is the fraction with b distinct paths
// (b = MaxBucket means "MaxBucket or more").
type Distribution struct {
	Gran    timeslice.Granularity
	Buckets [MaxBucket + 1]float64
	Samples int
}

// ChangedFrac returns the fraction of pair-periods with 2+ distinct paths —
// the headline churn quantities (25%/30%/38%/67% in the paper).
func (d Distribution) ChangedFrac() float64 {
	f := 0.0
	for b := 2; b <= MaxBucket; b++ {
		f += d.Buckets[b]
	}
	return f
}

// Measure computes Figure 3's distributions from the dataset. Only
// conclusive records (usable AS paths) count, since the paper observes
// churn through the same traceroutes the tomography uses. Pair-periods with
// a single measurement are excluded per granularity — one observation
// cannot witness a change.
func Measure(records []iclab.Record, grans []timeslice.Granularity) []Distribution {
	if grans == nil {
		grans = timeslice.All
	}
	out := make([]Distribution, 0, len(grans))
	for _, g := range grans {
		type cell struct {
			paths map[string]bool
			n     int
		}
		cells := map[pairKey]map[timeslice.Key]*cell{}
		for i := range records {
			r := &records[i]
			if r.Fail != traceroute.OK {
				continue
			}
			pk := pairKey{r.Vantage, r.URL}
			slice := timeslice.KeyFor(g, r.At)
			bySlice := cells[pk]
			if bySlice == nil {
				bySlice = map[timeslice.Key]*cell{}
				cells[pk] = bySlice
			}
			c := bySlice[slice]
			if c == nil {
				c = &cell{paths: map[string]bool{}}
				bySlice[slice] = c
			}
			c.paths[pathID(r.ASPath)] = true
			c.n++
		}
		d := Distribution{Gran: g}
		for _, bySlice := range cells {
			for _, c := range bySlice {
				if c.n < 2 {
					continue
				}
				b := len(c.paths)
				if b > MaxBucket {
					b = MaxBucket
				}
				d.Buckets[b]++
				d.Samples++
			}
		}
		if d.Samples > 0 {
			for b := 1; b <= MaxBucket; b++ {
				d.Buckets[b] /= float64(d.Samples)
			}
		}
		out = append(out, d)
	}
	return out
}

// FirstPathOnly returns the subset of records that used the first AS path
// ever observed for their (vantage, URL) pair — the paper's Figure 4
// ablation, which freezes out churn's contribution and shows the CNFs
// collapse to many solutions. Records must be passed in measurement order
// (Dataset.Records already is); inconclusive records pass through
// unchanged so elimination statistics stay comparable.
func FirstPathOnly(records []iclab.Record) []iclab.Record {
	first := map[pairKey]string{}
	var out []iclab.Record
	for i := range records {
		r := records[i]
		if r.Fail != traceroute.OK {
			out = append(out, r)
			continue
		}
		pk := pairKey{r.Vantage, r.URL}
		id := pathID(r.ASPath)
		want, seen := first[pk]
		if !seen {
			first[pk] = id
			want = id
		}
		if id == want {
			out = append(out, r)
		}
	}
	return out
}

// ByDestinationClass splits churn by CAIDA-style class of the destination
// AS, the paper's check that churn does not depend on destination type.
func ByDestinationClass(records []iclab.Record, g *topology.Graph, gran timeslice.Granularity) map[topology.Class]Distribution {
	byClass := map[topology.Class][]iclab.Record{}
	for i := range records {
		r := records[i]
		as, ok := g.ByASN(r.TargetASN)
		if !ok {
			continue
		}
		byClass[as.Class] = append(byClass[as.Class], r)
	}
	out := map[topology.Class]Distribution{}
	for class, recs := range byClass {
		ds := Measure(recs, []timeslice.Granularity{gran})
		if len(ds) == 1 {
			out[class] = ds[0]
		}
	}
	return out
}

// Classes returns the classes present in a ByDestinationClass result,
// sorted for deterministic rendering.
func Classes(m map[topology.Class]Distribution) []topology.Class {
	out := make([]topology.Class, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
