// Package churn measures network-level path churn, the phenomenon the
// paper exploits in place of strategically-placed tomography monitors.
//
// Paper correspondence: §4.2. Measure reproduces Figure 3 — how many
// distinct AS-level paths a (vantage, URL) pair traverses within a day,
// week, month or year — and FirstPathOnly implements the no-churn
// ablation behind Figure 4 (keep only each pair's first-observed path and
// watch the CNFs go under-constrained).
//
// Entry points: Measure computes per-granularity Distributions;
// ByDestinationClass splits churn by destination AS class; FirstPathOnly
// filters records for the ablation.
//
// Invariants: only conclusive records (Fail == OK) participate, matching
// what the tomography sees; Distribution buckets are fractions of
// pair-periods and sum to 1 for non-empty samples.
package churn
