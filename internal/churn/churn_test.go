package churn

import (
	"testing"
	"time"

	"churntomo/internal/iclab"
	"churntomo/internal/timeslice"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

var t0 = time.Date(2016, 5, 10, 6, 0, 0, 0, time.UTC)

func rec(v topology.ASN, url string, at time.Time, path []topology.ASN) iclab.Record {
	return iclab.Record{Vantage: v, URL: url, At: at, ASPath: path, Fail: traceroute.OK}
}

func TestMeasureCountsDistinctPaths(t *testing.T) {
	p1 := []topology.ASN{1, 2, 3}
	p2 := []topology.ASN{1, 4, 3}
	records := []iclab.Record{
		// Pair (1, a.com): two paths same day.
		rec(1, "a.com", t0, p1),
		rec(1, "a.com", t0.Add(8*time.Hour), p2),
		// Pair (2, a.com): stable, two measurements.
		rec(2, "a.com", t0, p1),
		rec(2, "a.com", t0.Add(8*time.Hour), p1),
		// Pair (3, a.com): single measurement — excluded.
		rec(3, "a.com", t0, p1),
	}
	ds := Measure(records, []timeslice.Granularity{timeslice.Day})
	d := ds[0]
	if d.Samples != 2 {
		t.Fatalf("samples %d, want 2 (single-measurement cells excluded)", d.Samples)
	}
	if d.Buckets[1] != 0.5 || d.Buckets[2] != 0.5 {
		t.Errorf("buckets %v", d.Buckets)
	}
	if d.ChangedFrac() != 0.5 {
		t.Errorf("ChangedFrac %.2f", d.ChangedFrac())
	}
}

func TestMeasureGranularityAccumulates(t *testing.T) {
	// One path per day, five days, all different: day cells see 1 path
	// each (no change), the month cell sees 5 (5+ bucket).
	var records []iclab.Record
	for day := 0; day < 5; day++ {
		p := []topology.ASN{1, topology.ASN(10 + day), 3}
		records = append(records, rec(1, "a.com", t0.AddDate(0, 0, day), p))
		records = append(records, rec(1, "a.com", t0.AddDate(0, 0, day).Add(6*time.Hour), p))
	}
	day := Measure(records, []timeslice.Granularity{timeslice.Day})[0]
	month := Measure(records, []timeslice.Granularity{timeslice.Month})[0]
	if day.ChangedFrac() != 0 {
		t.Errorf("day ChangedFrac %.2f, want 0", day.ChangedFrac())
	}
	if month.Buckets[MaxBucket] != 1.0 {
		t.Errorf("month 5+ bucket %.2f, want 1", month.Buckets[MaxBucket])
	}
}

func TestMeasureSkipsInconclusive(t *testing.T) {
	bad := rec(1, "a.com", t0, []topology.ASN{1, 2})
	bad.Fail = traceroute.ErrTraceFailed
	ds := Measure([]iclab.Record{bad, bad}, []timeslice.Granularity{timeslice.Day})
	if ds[0].Samples != 0 {
		t.Errorf("inconclusive records counted: %d samples", ds[0].Samples)
	}
}

func TestFirstPathOnly(t *testing.T) {
	p1 := []topology.ASN{1, 2, 3}
	p2 := []topology.ASN{1, 4, 3}
	records := []iclab.Record{
		rec(1, "a.com", t0, p1),
		rec(1, "a.com", t0.Add(time.Hour), p2),   // filtered: new path
		rec(1, "a.com", t0.Add(2*time.Hour), p1), // kept: first path again
		rec(2, "a.com", t0, p2),                  // kept: pair 2's first path
		rec(2, "a.com", t0.Add(time.Hour), p1),   // filtered
	}
	bad := rec(1, "a.com", t0.Add(3*time.Hour), nil)
	bad.Fail = traceroute.ErrNoMapping
	records = append(records, bad) // inconclusive: passes through

	out := FirstPathOnly(records)
	if len(out) != 4 {
		t.Fatalf("kept %d records, want 4", len(out))
	}
	// The surviving conclusive records for pair 1 all use p1.
	for _, r := range out {
		if r.Fail != traceroute.OK {
			continue
		}
		if r.Vantage == 1 && pathID(r.ASPath) != pathID(p1) {
			t.Errorf("pair 1 kept a non-first path")
		}
		if r.Vantage == 2 && pathID(r.ASPath) != pathID(p2) {
			t.Errorf("pair 2 kept a non-first path")
		}
	}
}

func TestByDestinationClass(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{Seed: 1, ASes: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Two targets of different classes.
	var content, transit topology.ASN
	for i := range g.ASes {
		switch {
		case content == 0 && g.ASes[i].Class == topology.ClassContent:
			content = g.ASes[i].ASN
		case transit == 0 && g.ASes[i].Class == topology.ClassTransit:
			transit = g.ASes[i].ASN
		}
	}
	if content == 0 || transit == 0 {
		t.Fatal("fixture classes missing")
	}
	mk := func(dst topology.ASN, paths ...[]topology.ASN) []iclab.Record {
		var out []iclab.Record
		for i, p := range paths {
			r := rec(1, "u.com", t0.Add(time.Duration(i)*time.Hour), p)
			r.TargetASN = dst
			out = append(out, r)
		}
		return out
	}
	records := append(
		mk(content, []topology.ASN{1, 2}, []topology.ASN{1, 3}),    // churns
		mk(transit, []topology.ASN{1, 2}, []topology.ASN{1, 2})...) // stable
	byClass := ByDestinationClass(records, g, timeslice.Day)
	if byClass[topology.ClassContent].ChangedFrac() != 1 {
		t.Errorf("content class ChangedFrac %.2f", byClass[topology.ClassContent].ChangedFrac())
	}
	if byClass[topology.ClassTransit].ChangedFrac() != 0 {
		t.Errorf("transit class ChangedFrac %.2f", byClass[topology.ClassTransit].ChangedFrac())
	}
	if got := Classes(byClass); len(got) != 2 || got[0] != topology.ClassTransit {
		t.Errorf("Classes = %v", got)
	}
}
