package webcat

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGenURLsDeterministicAndUnique(t *testing.T) {
	a := GenURLs(7, 200)
	b := GenURLs(7, 200)
	if len(a) != 200 {
		t.Fatalf("got %d URLs", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("URL %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
		if seen[a[i].Host] {
			t.Errorf("duplicate host %q", a[i].Host)
		}
		seen[a[i].Host] = true
		if !strings.Contains(a[i].Host, ".") {
			t.Errorf("implausible host %q", a[i].Host)
		}
	}
	c := GenURLs(8, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical URL lists")
	}
}

func TestGenURLsCoversAllCategories(t *testing.T) {
	urls := GenURLs(1, int(NumCategories)+10)
	var got Set
	for _, u := range urls {
		got = got.Add(u.Category)
	}
	if got != AllCategories {
		t.Errorf("categories covered = %v, want all", got)
	}
}

func TestGenURLsHeadCategoriesWeighted(t *testing.T) {
	urls := GenURLs(3, 2000)
	counts := make([]int, NumCategories)
	for _, u := range urls {
		counts[u.Category]++
	}
	if counts[Shopping] <= counts[Sports] {
		t.Errorf("Shopping (%d) should outnumber Sports (%d) in the test list",
			counts[Shopping], counts[Sports])
	}
}

func TestSetOperations(t *testing.T) {
	s := MakeSet(Shopping, Ads)
	if !s.Has(Shopping) || !s.Has(Ads) || s.Has(News) {
		t.Errorf("membership wrong for %v", s)
	}
	s = s.Add(News)
	if !s.Has(News) || s.Len() != 3 {
		t.Errorf("Add/Len wrong: %v len=%d", s, s.Len())
	}
	m := s.Members()
	if len(m) != 3 || m[0] != Shopping {
		t.Errorf("Members = %v", m)
	}
	if AllCategories.Len() != int(NumCategories) {
		t.Errorf("AllCategories.Len = %d", AllCategories.Len())
	}
	if AllCategories.String() != "All" {
		t.Errorf("AllCategories.String = %q", AllCategories.String())
	}
	if Set(0).String() != "None" {
		t.Errorf("empty Set.String = %q", Set(0).String())
	}
	if got := MakeSet(Shopping, Classifieds).String(); got != "Online Shopping, Classifieds" {
		t.Errorf("Set.String = %q", got)
	}
}

func TestCategoryString(t *testing.T) {
	if Shopping.String() != "Online Shopping" {
		t.Errorf("Shopping = %q", Shopping.String())
	}
	if !strings.Contains(Category(200).String(), "200") {
		t.Error("out-of-range category should render its number")
	}
}

// Property: a set built from members round-trips.
func TestSetRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		s := Set(raw) & AllCategories
		return MakeSet(s.Members()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
