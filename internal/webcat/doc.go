// Package webcat models the URL test list and its categorization — the
// simulator's stand-in for the McAfee/trustedsource URL categorization
// database the paper uses to characterize what censors block (Online
// Shopping and Classifieds lead its findings; several ASes censor only ad
// vendors).
//
// Entry points: GenURLs generates a deterministic categorized test list;
// Category and Set mirror anomaly.Kind/Set's bitset idiom for category
// membership.
//
// Invariants: URL generation is deterministic per seed; Category values
// are dense and stable so per-category tallies can live in arrays and the
// Set bitset stays coherent.
package webcat
