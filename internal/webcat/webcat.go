package webcat

import (
	"fmt"
	"math/rand/v2"
)

// Category classifies a URL's content.
type Category uint8

// Categories, ordered roughly by how often the paper found them censored.
const (
	Shopping Category = iota
	Classifieds
	Ads
	News
	Politics
	SocialMedia
	Streaming
	Gambling
	Adult
	Religion
	Circumvention
	Health
	Technology
	Sports
	NumCategories // sentinel
)

var categoryNames = [...]string{
	"Online Shopping", "Classifieds", "Ads", "News", "Politics",
	"Social Media", "Streaming", "Gambling", "Adult", "Religion",
	"Circumvention", "Health", "Technology", "Sports",
}

// String returns the category's display name.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Set is a bitmask over categories.
type Set uint16

// MakeSet builds a Set from its members.
func MakeSet(cats ...Category) Set {
	var s Set
	for _, c := range cats {
		s |= 1 << c
	}
	return s
}

// AllCategories is the set containing every category.
const AllCategories Set = 1<<NumCategories - 1

// Has reports membership.
func (s Set) Has(c Category) bool { return s&(1<<c) != 0 }

// Add returns s with c added.
func (s Set) Add(c Category) Set { return s | 1<<c }

// Len counts members.
func (s Set) Len() int {
	n := 0
	for c := Category(0); c < NumCategories; c++ {
		if s.Has(c) {
			n++
		}
	}
	return n
}

// Members lists the categories in the set.
func (s Set) Members() []Category {
	var out []Category
	for c := Category(0); c < NumCategories; c++ {
		if s.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the member names.
func (s Set) String() string {
	if s == AllCategories {
		return "All"
	}
	out := ""
	for _, c := range s.Members() {
		if out != "" {
			out += ", "
		}
		out += c.String()
	}
	if out == "" {
		return "None"
	}
	return out
}

// URL is one entry of the test list.
type URL struct {
	Host     string
	Category Category
}

// hostStems provide plausible hostname material per category.
var hostStems = [...][]string{
	Shopping:      {"deals", "bazaar", "market", "shop", "store"},
	Classifieds:   {"ads-board", "list", "classified", "trade"},
	Ads:           {"adserve", "track", "banner", "click"},
	News:          {"daily", "herald", "times", "wire"},
	Politics:      {"reform", "voice", "freedom", "assembly"},
	SocialMedia:   {"connect", "chatter", "circle", "feed"},
	Streaming:     {"stream", "video", "tube", "cast"},
	Gambling:      {"bet", "casino", "poker", "lotto"},
	Adult:         {"nightlife", "adult", "cam"},
	Religion:      {"faith", "temple", "scripture"},
	Circumvention: {"proxy", "vpn", "bridge", "tunnel"},
	Health:        {"clinic", "meds", "wellness"},
	Technology:    {"devhub", "cloudlab", "gadget"},
	Sports:        {"score", "league", "athletics"},
}

var tlds = []string{"com", "net", "org", "info", "co"}

// pcgStreamURLs is the URL-corpus generator's RNG stream word ("urls" in
// ASCII); stream words are module-unique, enforced by churnvet.
const pcgStreamURLs = 0x75726c73 // "urls"

// GenURLs produces n synthetic test-list URLs with a category mix biased
// toward the categories the paper reports as most-censored. Deterministic
// for a given seed.
func GenURLs(seed uint64, n int) []URL {
	rng := rand.New(rand.NewPCG(seed, pcgStreamURLs))
	// Weighted category selection: the head categories get more URLs, every
	// category gets at least one URL once n is large enough.
	weights := make([]int, NumCategories)
	for c := Category(0); c < NumCategories; c++ {
		weights[c] = 3 + int(NumCategories-c) // 17 down to 4
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	out := make([]URL, n)
	seen := map[string]bool{}
	for i := range out {
		var cat Category
		if i < int(NumCategories) {
			cat = Category(i) // guarantee coverage first
		} else {
			r := rng.IntN(total)
			for c, w := range weights {
				if r < w {
					cat = Category(c)
					break
				}
				r -= w
			}
		}
		for {
			stems := hostStems[cat]
			host := fmt.Sprintf("%s-%d.%s%d.%s",
				stems[rng.IntN(len(stems))], rng.IntN(900)+100,
				stems[rng.IntN(len(stems))], rng.IntN(90)+10,
				tlds[rng.IntN(len(tlds))])
			if !seen[host] {
				seen[host] = true
				out[i] = URL{Host: host, Category: cat}
				break
			}
		}
	}
	return out
}
