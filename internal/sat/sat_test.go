package sat

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// bruteForce enumerates all assignments, the reference for every solver
// query on small instances.
func bruteForce(c *CNF) []Model {
	var models []Model
	n := c.NumVars
	for bits := 0; bits < 1<<n; bits++ {
		m := make(Model, n+1)
		for v := 1; v <= n; v++ {
			m[v] = bits&(1<<(v-1)) != 0
		}
		if satisfies(c, m) {
			models = append(models, m)
		}
	}
	return models
}

func satisfies(c *CNF, m Model) bool {
	for _, cl := range c.Clauses {
		ok := false
		for _, l := range cl {
			if (l > 0 && m[l.Var()]) || (l < 0 && !m[l.Var()]) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func TestSolveTrivial(t *testing.T) {
	var c CNF
	c.AddClause(1)
	m, ok := NewSolver(&c).Solve()
	if !ok || !m[1] {
		t.Fatalf("Solve (x1) = %v,%v", m, ok)
	}

	var u CNF
	u.AddClause(1)
	u.AddClause(-1)
	if _, ok := NewSolver(&u).Solve(); ok {
		t.Fatal("x1 & !x1 declared SAT")
	}

	var e CNF
	e.AddClause() // empty clause
	if _, ok := NewSolver(&e).Solve(); ok {
		t.Fatal("empty clause declared SAT")
	}

	empty := &CNF{}
	if _, ok := NewSolver(empty).Solve(); !ok {
		t.Fatal("empty CNF declared UNSAT")
	}
}

func TestSolveFalseBias(t *testing.T) {
	// The first model of an unconstrained positive clause problem should be
	// minimal in true-assignments given the false-first heuristic, and a
	// CNF of only negative units solves to all-false.
	var c CNF
	c.AddClause(-1)
	c.AddClause(-2)
	c.AddClause(-3)
	m, ok := NewSolver(&c).Solve()
	if !ok || m[1] || m[2] || m[3] {
		t.Fatalf("all-negative CNF model = %v", m.TrueVars())
	}
}

func TestTomographyShape(t *testing.T) {
	// (1|2|3) with ¬1, ¬2 forced: the paper's ideal case — unique model
	// identifying var 3 as the censor.
	var c CNF
	c.AddClause(1, 2, 3)
	c.AddClause(-1)
	c.AddClause(-2)
	cls, m := Classify(&c)
	if cls != Unique {
		t.Fatalf("Classify = %v, want Unique", cls)
	}
	if tv := m.TrueVars(); len(tv) != 1 || tv[0] != 3 {
		t.Fatalf("censor = %v, want [3]", tv)
	}

	// Under-constrained: (1|2|3) with ¬1 only — multiple solutions.
	var c2 CNF
	c2.AddClause(1, 2, 3)
	c2.AddClause(-1)
	if cls, _ := Classify(&c2); cls != Multiple {
		t.Fatalf("Classify = %v, want Multiple", cls)
	}
	// Potential censors: 2 and 3, but not 1.
	pot := PotentialTrue(&c2)
	if pot[1] || !pot[2] || !pot[3] {
		t.Fatalf("PotentialTrue = %v", pot)
	}

	// Conflicting observations (policy change): (1|2) with ¬1, ¬2.
	var c3 CNF
	c3.AddClause(1, 2)
	c3.AddClause(-1)
	c3.AddClause(-2)
	if cls, _ := Classify(&c3); cls != Unsat {
		t.Fatalf("Classify = %v, want Unsat", cls)
	}
}

func TestCountModels(t *testing.T) {
	// (1|2|3) alone: 7 models.
	var c CNF
	c.AddClause(1, 2, 3)
	if n := CountModels(&c, 100); n != 7 {
		t.Errorf("CountModels = %d, want 7", n)
	}
	if n := CountModels(&c, 5); n != 5 {
		t.Errorf("capped CountModels = %d, want 5", n)
	}
	var u CNF
	u.AddClause(1)
	u.AddClause(-1)
	if n := CountModels(&u, 5); n != 0 {
		t.Errorf("UNSAT CountModels = %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("CountModels(cap=0) should panic")
		}
	}()
	CountModels(&c, 0)
}

func TestEnumerateModelsDistinctAndValid(t *testing.T) {
	var c CNF
	c.AddClause(1, 2)
	c.AddClause(-3, 4)
	models := EnumerateModels(&c, 1000)
	want := bruteForce(&c)
	if len(models) != len(want) {
		t.Fatalf("enumerated %d models, brute force %d", len(models), len(want))
	}
	seen := map[string]bool{}
	for _, m := range models {
		if !satisfies(&c, m) {
			t.Fatalf("enumerated non-model %v", m)
		}
		k := modelKey(m)
		if seen[k] {
			t.Fatalf("duplicate model %v", m)
		}
		seen[k] = true
	}
}

func modelKey(m Model) string {
	var b strings.Builder
	for _, v := range m[1:] {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func TestSolveAssume(t *testing.T) {
	var c CNF
	c.AddClause(1, 2)
	s := NewSolver(&c)
	if _, ok := s.SolveAssume([]Lit{-1, -2}); ok {
		t.Error("assumptions violating the clause accepted")
	}
	if m, ok := s.SolveAssume([]Lit{-1}); !ok || !m[2] {
		t.Errorf("SolveAssume(-1) = %v,%v; want x2=true", m, ok)
	}
	// Solver is reusable after assumption queries.
	if _, ok := s.Solve(); !ok {
		t.Error("solver broken after assumption query")
	}
	if _, ok := s.SolveAssume([]Lit{0}); ok {
		t.Error("zero-literal assumption accepted")
	}
	if _, ok := s.SolveAssume([]Lit{99}); ok {
		t.Error("out-of-range assumption accepted")
	}
}

// Randomized cross-check against brute force: SAT/UNSAT agreement, model
// count agreement, and per-variable backbone agreement.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	for iter := 0; iter < 400; iter++ {
		nv := 2 + rng.IntN(9) // up to 10 vars
		nc := 1 + rng.IntN(18)
		var c CNF
		c.NumVars = nv
		for i := 0; i < nc; i++ {
			width := 1 + rng.IntN(3)
			cl := make([]Lit, 0, width)
			for w := 0; w < width; w++ {
				v := 1 + rng.IntN(nv)
				l := Lit(int32(v))
				if rng.IntN(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			c.AddClause(cl...)
		}
		want := bruteForce(&c)

		m, ok := NewSolver(&c).Solve()
		if ok != (len(want) > 0) {
			t.Fatalf("iter %d: Solve=%v, brute force found %d models", iter, ok, len(want))
		}
		if ok && !satisfies(&c, m) {
			t.Fatalf("iter %d: returned non-model %v", iter, m)
		}
		if got := CountModels(&c, 1<<nv+1); got != len(want) {
			t.Fatalf("iter %d: CountModels=%d, want %d", iter, got, len(want))
		}
		// Backbone agreement.
		pot := PotentialTrue(&c)
		for v := 1; v <= nv; v++ {
			wantPot := false
			for _, wm := range want {
				if wm[v] {
					wantPot = true
					break
				}
			}
			if pot[v] != wantPot {
				t.Fatalf("iter %d: PotentialTrue[%d]=%v, want %v", iter, v, pot[v], wantPot)
			}
		}
		// Classification agreement.
		cls, um := Classify(&c)
		switch {
		case len(want) == 0 && cls != Unsat:
			t.Fatalf("iter %d: Classify=%v want Unsat", iter, cls)
		case len(want) == 1 && cls != Unique:
			t.Fatalf("iter %d: Classify=%v want Unique", iter, cls)
		case len(want) > 1 && cls != Multiple:
			t.Fatalf("iter %d: Classify=%v want Multiple", iter, cls)
		}
		if cls == Unique && modelKey(um) != modelKey(want[0]) {
			t.Fatalf("iter %d: unique model mismatch", iter)
		}
	}
}

func TestVars(t *testing.T) {
	var c CNF
	c.NumVars = 10 // sparse: only 3 and 7 occur
	c.AddClause(3, -7)
	vars := c.Vars()
	if len(vars) != 2 || vars[0] != 3 || vars[1] != 7 {
		t.Errorf("Vars = %v", vars)
	}
}

func TestAddClauseZeroLiteralPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero literal accepted")
		}
	}()
	var c CNF
	c.AddClause(1, 0)
}

func TestClassificationString(t *testing.T) {
	if Unsat.String() != "0" || Unique.String() != "1" || Multiple.String() != "2+" {
		t.Error("classification names changed; figures depend on them")
	}
	if Classification(9).String() == "" {
		t.Error("unknown classification renders empty")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	var c CNF
	c.AddClause(1, -2, 3)
	c.AddClause(-1)
	c.AddClause(2, 4)
	var buf strings.Builder
	if err := WriteDIMACS(&buf, &c); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != c.NumVars || len(back.Clauses) != len(c.Clauses) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, c)
	}
	for i := range c.Clauses {
		if len(back.Clauses[i]) != len(c.Clauses[i]) {
			t.Fatalf("clause %d length differs", i)
		}
		for j := range c.Clauses[i] {
			if back.Clauses[i][j] != c.Clauses[i][j] {
				t.Fatalf("clause %d literal %d differs", i, j)
			}
		}
	}
}

func TestParseDIMACSForms(t *testing.T) {
	good := `c comment
p cnf 3 2
1 -2 0
2 3 0
`
	c, err := ParseDIMACS(strings.NewReader(good))
	if err != nil || c.NumVars != 3 || len(c.Clauses) != 2 {
		t.Fatalf("parse: %v %+v", err, c)
	}
	// No problem line, missing trailing zero.
	loose, err := ParseDIMACS(strings.NewReader("1 2 0\n-1 3"))
	if err != nil || len(loose.Clauses) != 2 {
		t.Fatalf("loose parse: %v %+v", err, loose)
	}
	for _, bad := range []string{
		"p cnf x 2\n1 0\n",
		"p wrong 1 1\n1 0\n",
		"1 two 0\n",
		"p cnf 3 5\n1 0\n", // declared clause count mismatch
	} {
		if _, err := ParseDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed input %q", bad)
		}
	}
}

func TestSolverReuseAfterEnumeration(t *testing.T) {
	// Classify twice on the same CNF value must agree (NewSolver copies
	// nothing, but blocking clauses live in the solver, not the CNF).
	var c CNF
	c.AddClause(1, 2, 3)
	c.AddClause(-1)
	a, _ := Classify(&c)
	b, _ := Classify(&c)
	if a != b {
		t.Fatalf("Classify not repeatable: %v then %v", a, b)
	}
	if len(c.Clauses) != 2 {
		t.Fatalf("Classify mutated the CNF: %d clauses", len(c.Clauses))
	}
}

func BenchmarkSolveTomographyCNF(b *testing.B) {
	// Typical tomography instance: 25 path ASes, a handful of positive
	// clauses, many negative units.
	var c CNF
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 6; i++ {
		c.AddClause(Lit(rng.IntN(25)+1), Lit(rng.IntN(25)+1), Lit(rng.IntN(25)+1))
	}
	for v := 1; v <= 20; v++ {
		c.AddClause(Lit(int32(-v)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSolver(&c).Solve()
	}
}

func BenchmarkClassify(b *testing.B) {
	var c CNF
	c.AddClause(1, 2, 3)
	c.AddClause(-1)
	c.AddClause(-2)
	for v := 4; v <= 30; v++ {
		c.AddClause(Lit(int32(-v)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(&c)
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	// 60 vars at clause ratio 3.5: decently hard for plain DPLL, trivial
	// for the sizes tomography needs — a headroom check.
	rng := rand.New(rand.NewPCG(2, 2))
	var c CNF
	c.NumVars = 60
	for i := 0; i < 210; i++ {
		c.AddClause(randLit(rng, 60), randLit(rng, 60), randLit(rng, 60))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSolver(&c).Solve()
	}
}

func randLit(rng *rand.Rand, nv int) Lit {
	l := Lit(int32(rng.IntN(nv) + 1))
	if rng.IntN(2) == 0 {
		return -l
	}
	return l
}
