// Package sat is a from-scratch boolean satisfiability solver: DPLL search
// with two-literal watching, unit propagation, assumptions, model
// enumeration via blocking clauses, incremental clause addition, and
// DIMACS I/O (see FORMAT.md for the accepted DIMACS subset).
//
// Paper correspondence: §3.2. The paper hands each per-(URL, time slice,
// anomaly) CNF to "an off-the-shelf SAT solver" and classifies the
// outcome: no solution (noise or a policy change), exactly one solution
// (censors exactly identified) or multiple solutions (only elimination
// possible). Those are precisely the queries this package serves: Solve,
// Classify (0/1/2+ via a blocking clause), CountModels (Figure 4's 0..5+
// buckets) and SolveAssume (the "could AS x be a censor?" backbone query
// behind candidate-set reduction, used exactly by PotentialTrue).
//
// Entry points: NewSolver builds a solver over a CNF; Solver.AddClause and
// Grow extend it incrementally between queries. NewGroupSolver multiplexes
// a family of CNFs over one solver via assumption-gated clause groups —
// the streaming engine's mechanism for retracting a day's clauses without
// rebuilding anything. ParseDIMACS/WriteDIMACS read and write the solver's
// exchange format.
//
// Invariants: tomography instances are small — tens of variables, dozens
// of clauses — but enumeration over under-constrained CNFs can touch
// 2^free models, so every enumerating entry point takes a cap. The search
// tries False first, so the first model found is the minimal-censorship
// one. Solving permutes literals inside the CNF's shared clause slices
// (watch normalization): the clause set is never changed, but callers must
// not rely on intra-clause literal order after a solve, nor mutate clauses
// during one.
package sat
