package sat

import (
	"math/rand/v2"
	"testing"
)

// TestGroupSolverMatchesClassify cross-checks the grouped, assumption-gated
// classification against the standalone Classify on randomly generated CNF
// families: every subset of groups must classify exactly as the plain CNF
// holding just those groups' clauses.
func TestGroupSolverMatchesClassify(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.IntN(6)
		ngroups := 1 + rng.IntN(4)

		gs := NewGroupSolver()
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = gs.Var()
		}
		groups := make([]Group, ngroups)
		clauses := make([][]Clause, ngroups)
		for gi := range groups {
			groups[gi] = gs.NewGroup()
			nclauses := 1 + rng.IntN(4)
			for c := 0; c < nclauses; c++ {
				width := 1 + rng.IntN(3)
				cl := make(Clause, 0, width)
				gcl := make(Clause, 0, width)
				for k := 0; k < width; k++ {
					v := 1 + rng.IntN(nv)
					l := Lit(int32(v))
					if rng.IntN(2) == 0 {
						l = l.Neg()
					}
					cl = append(cl, l)
					// The grouped copy uses the GroupSolver's numbering.
					gl := Lit(int32(vars[v-1]))
					if l < 0 {
						gl = gl.Neg()
					}
					gcl = append(gcl, gl)
				}
				clauses[gi] = append(clauses[gi], cl)
				gs.Add(groups[gi], gcl...)
			}
		}

		// Try a handful of random activation subsets per family.
		for sub := 0; sub < 4; sub++ {
			var active []Group
			plain := &CNF{NumVars: nv}
			for gi := range groups {
				if rng.IntN(2) == 0 {
					continue
				}
				active = append(active, groups[gi])
				for _, cl := range clauses[gi] {
					plain.AddClause(cl...)
				}
			}
			wantCls, wantModel := Classify(plain)
			gotCls, gotModel := gs.ClassifyActive(active, vars)
			if gotCls != wantCls {
				t.Fatalf("trial %d subset %d: classification %v, want %v", trial, sub, gotCls, wantCls)
			}
			if wantCls == Unique {
				for v := 1; v <= nv; v++ {
					if wantModel[v] != gotModel[vars[v-1]] {
						t.Fatalf("trial %d subset %d: unique model differs at var %d", trial, sub, v)
					}
				}
			}
			if wantCls == Multiple {
				wantPot := PotentialTrue(plain)
				gotPot := gs.PotentialTrueActive(active, vars)
				for v := 1; v <= nv; v++ {
					if wantPot[v] != gotPot[v-1] {
						t.Fatalf("trial %d subset %d: potential set differs at var %d", trial, sub, v)
					}
				}
			}
		}
	}
}

// TestGroupSolverBlockedModelCache verifies repeat classifications of the
// same active set reuse the cached blocking clause instead of growing the
// solver.
func TestGroupSolverBlockedModelCache(t *testing.T) {
	gs := NewGroupSolver()
	a, b := gs.Var(), gs.Var()
	g1 := gs.NewGroup()
	gs.Add(g1, Lit(int32(a)), Lit(int32(b)))
	gs.Add(g1, Lit(int32(-a)))

	vars := []int{a, b}
	cls1, m1 := gs.ClassifyActive([]Group{g1}, vars)
	if cls1 != Unique || m1[a] || !m1[b] {
		t.Fatalf("first classify: %v %v", cls1, m1)
	}
	blocked := gs.BlockedModels()
	if blocked != 1 {
		t.Fatalf("blocked models after first classify: %d", blocked)
	}
	for i := 0; i < 5; i++ {
		cls, m := gs.ClassifyActive([]Group{g1}, vars)
		if cls != Unique || m[a] || !m[b] {
			t.Fatalf("repeat classify %d: %v %v", i, cls, m)
		}
	}
	if gs.BlockedModels() != blocked {
		t.Errorf("repeat classifications grew the blocked-model cache: %d -> %d",
			blocked, gs.BlockedModels())
	}
}

// TestGroupSolverRetraction verifies a group dropping out of the active set
// stops constraining queries without any solver rebuild.
func TestGroupSolverRetraction(t *testing.T) {
	gs := NewGroupSolver()
	x := gs.Var()
	g1, g2 := gs.NewGroup(), gs.NewGroup()
	gs.Add(g1, Lit(int32(x)))  // day 1 says x
	gs.Add(g2, Lit(int32(-x))) // day 2 says ¬x

	vars := []int{x}
	if cls, _ := gs.ClassifyActive([]Group{g1, g2}, vars); cls != Unsat {
		t.Fatalf("both groups active: %v, want unsat", cls)
	}
	cls, m := gs.ClassifyActive([]Group{g1}, vars)
	if cls != Unique || !m[x] {
		t.Fatalf("g1 only: %v, want unique x=true", cls)
	}
	cls, m = gs.ClassifyActive([]Group{g2}, vars)
	if cls != Unique || m[x] {
		t.Fatalf("g2 only: %v, want unique x=false", cls)
	}
	if cls, _ := gs.ClassifyActive(nil, vars); cls != Multiple {
		t.Fatalf("no groups active: %v, want multiple", cls)
	}
}
