package sat

import (
	"fmt"
	"sort"
)

// Lit is a literal: +v is variable v, -v its negation. Variables are
// numbered from 1.
type Lit int32

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Clause is a disjunction of literals.
type Clause []Lit

// CNF is a conjunction of clauses over NumVars variables.
type CNF struct {
	NumVars int
	Clauses []Clause

	// arena backs the clauses: AddClause carves full-slice views out of
	// shared blocks instead of allocating one slice per clause, which is
	// the dominant allocation of bulk CNF construction. Capacity-clamped
	// views keep a clause's appends (there are none today) from bleeding
	// into its neighbor; in-place literal swaps — the solver's watch
	// normalization — stay within clause bounds and are safe.
	arena []Lit
}

// arenaBlock is the arena growth quantum, sized so typical path-length
// clauses pack a few dozen per allocation.
const arenaBlock = 256

// AddClause appends a clause, growing NumVars as needed.
func (c *CNF) AddClause(lits ...Lit) {
	for _, l := range lits {
		if l == 0 {
			panic("sat: zero literal")
		}
		if v := l.Var(); v > c.NumVars {
			c.NumVars = v
		}
	}
	if cap(c.arena)-len(c.arena) < len(lits) {
		block := arenaBlock
		if len(lits) > block {
			block = len(lits)
		}
		c.arena = make([]Lit, 0, block)
	}
	lo := len(c.arena)
	c.arena = append(c.arena, lits...)
	c.Clauses = append(c.Clauses, Clause(c.arena[lo:len(c.arena):len(c.arena)]))
}

// Model is a satisfying assignment; index i (1-based) holds variable i's
// value. Index 0 is unused.
type Model []bool

// TrueVars lists variables assigned true, ascending.
func (m Model) TrueVars() []int {
	var out []int
	for v := 1; v < len(m); v++ {
		if m[v] {
			out = append(out, v)
		}
	}
	return out
}

// value constants for the assignment vector.
const (
	unassigned int8 = 0
	vTrue      int8 = 1
	vFalse     int8 = -1
)

// Solver solves one CNF. A Solver may be reused for multiple queries; added
// blocking clauses from enumeration are kept internal to those calls.
type Solver struct {
	nv      int
	clauses []Clause
	// watches maps a watch-index (2*var or 2*var+1 for the negation) to the
	// clauses watching that literal.
	watches [][]int32

	assign   []int8
	trail    []Lit
	trailLim []int  // trail length at each decision level
	flipped  []bool // whether the decision at each level has been inverted

	// units and hasEmpty mirror the structural unit and empty clauses, kept
	// incrementally by addClause so SolveAssume never rescans the clause
	// store — incremental callers (GroupSolver) accumulate large clause
	// histories and issue many queries against them.
	units    []Lit
	hasEmpty bool

	// Propagations counts unit propagations across the solver's lifetime
	// (exposed through Stats for benchmarks).
	propagations int
}

// NewSolver builds a solver for the CNF. The CNF is not modified; its
// clauses are shared, so callers must not mutate them during solving.
func NewSolver(c *CNF) *Solver {
	s := &Solver{nv: c.NumVars}
	s.watches = make([][]int32, 2*(c.NumVars+1))
	s.assign = make([]int8, c.NumVars+1)
	for _, cl := range c.Clauses {
		s.addClause(cl)
	}
	return s
}

// watchIndex maps a literal to its watch list slot.
func watchIndex(l Lit) int {
	if l > 0 {
		return 2 * int(l)
	}
	return 2*int(-l) + 1
}

// addClause installs a clause with two watches (or registers it specially
// when shorter).
func (s *Solver) addClause(cl Clause) {
	id := int32(len(s.clauses))
	s.clauses = append(s.clauses, cl)
	if len(cl) == 0 {
		s.hasEmpty = true // immediate UNSAT for every future Solve
		return
	}
	if len(cl) == 1 {
		s.units = append(s.units, cl[0])
	}
	s.watches[watchIndex(cl[0])] = append(s.watches[watchIndex(cl[0])], id)
	if len(cl) > 1 {
		s.watches[watchIndex(cl[1])] = append(s.watches[watchIndex(cl[1])], id)
	}
}

func (s *Solver) litValue(l Lit) int8 {
	v := s.assign[l.Var()]
	if l < 0 {
		return -v
	}
	return v
}

// enqueue records l as true, returning false if it contradicts the current
// assignment.
func (s *Solver) enqueue(l Lit) bool {
	switch s.litValue(l) {
	case vTrue:
		return true
	case vFalse:
		return false
	}
	if l > 0 {
		s.assign[l.Var()] = vTrue
	} else {
		s.assign[l.Var()] = vFalse
	}
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation over the watch lists from the given trail
// position; it returns false on conflict.
func (s *Solver) propagate(from int) bool {
	for qhead := from; qhead < len(s.trail); qhead++ {
		falsified := s.trail[qhead].Neg()
		wi := watchIndex(falsified)
		watchers := s.watches[wi]
		kept := watchers[:0]
		for wpos := 0; wpos < len(watchers); wpos++ {
			id := watchers[wpos]
			cl := s.clauses[id]
			s.propagations++

			if len(cl) == 1 {
				// Unit clause watched on its only literal, now falsified.
				kept = append(kept, id)
				s.watches[wi] = kept
				// Re-append untouched watchers after the conflict point.
				s.watches[wi] = append(s.watches[wi], watchers[wpos+1:]...)
				return false
			}

			// Normalize: make cl[1] the falsified watch.
			if cl[0] == falsified {
				cl[0], cl[1] = cl[1], cl[0]
			}
			// If the other watch is true, the clause is satisfied.
			if s.litValue(cl[0]) == vTrue {
				kept = append(kept, id)
				continue
			}
			// Look for a replacement watch.
			found := false
			for k := 2; k < len(cl); k++ {
				if s.litValue(cl[k]) != vFalse {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[watchIndex(cl[1])] = append(s.watches[watchIndex(cl[1])], id)
					found = true
					break
				}
			}
			if found {
				continue // watch moved elsewhere
			}
			// Clause is unit (or conflicting) on cl[0].
			kept = append(kept, id)
			if !s.enqueue(cl[0]) {
				s.watches[wi] = kept
				s.watches[wi] = append(s.watches[wi], watchers[wpos+1:]...)
				return false
			}
		}
		s.watches[wi] = kept
	}
	return true
}

// decisionLevel returns the current depth of the decision stack.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// decide pushes a new decision.
func (s *Solver) decide(l Lit) {
	s.trailLim = append(s.trailLim, len(s.trail))
	s.flipped = append(s.flipped, false)
	s.enqueue(l)
}

// undoLevel pops the top decision level, returning the decision literal.
func (s *Solver) undoLevel() Lit {
	lim := s.trailLim[len(s.trailLim)-1]
	dec := s.trail[lim]
	for i := len(s.trail) - 1; i >= lim; i-- {
		s.assign[s.trail[i].Var()] = unassigned
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:len(s.trailLim)-1]
	s.flipped = s.flipped[:len(s.flipped)-1]
	return dec
}

// reset clears all assignments.
func (s *Solver) reset() {
	for i := range s.assign {
		s.assign[i] = unassigned
	}
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.flipped = s.flipped[:0]
}

// Solve reports satisfiability and a model when satisfiable.
func (s *Solver) Solve() (Model, bool) { return s.SolveAssume(nil) }

// SolveAssume solves under the given assumption literals.
func (s *Solver) SolveAssume(assumps []Lit) (Model, bool) {
	s.reset()
	if s.hasEmpty {
		return nil, false
	}
	// Structural unit clauses (including blocking clauses over one
	// variable) seed the trail at level 0; addClause maintains the list so
	// queries never rescan the clause store.
	for _, l := range s.units {
		if !s.enqueue(l) {
			return nil, false
		}
	}
	for _, a := range assumps {
		if a == 0 || a.Var() > s.nv {
			return nil, false
		}
		if !s.enqueue(a) {
			return nil, false
		}
	}
	if !s.propagate(0) {
		return nil, false
	}
	if !s.search() {
		return nil, false
	}
	m := make(Model, s.nv+1)
	for v := 1; v <= s.nv; v++ {
		m[v] = s.assign[v] == vTrue
	}
	return m, true
}

// search runs DPLL from the current (propagated, conflict-free) state.
func (s *Solver) search() bool {
	for {
		// Pick the lowest-numbered unassigned variable; try false first so
		// the first model found is the minimal-censorship one (the common
		// all-False solution of anomaly-free CNFs pops out immediately).
		v := 0
		for i := 1; i <= s.nv; i++ {
			if s.assign[i] == unassigned {
				v = i
				break
			}
		}
		if v == 0 {
			return true // complete assignment
		}
		s.decide(Lit(int32(-v)))
		for !s.propagate(s.trailLim[len(s.trailLim)-1]) {
			// Conflict: backtrack to the nearest unflipped decision.
			for {
				if s.decisionLevel() == 0 {
					return false
				}
				wasFlipped := s.flipped[len(s.flipped)-1]
				dec := s.undoLevel()
				if !wasFlipped {
					s.trailLim = append(s.trailLim, len(s.trail))
					s.flipped = append(s.flipped, true)
					s.enqueue(dec.Neg())
					break
				}
			}
		}
	}
}

// Stats reports cumulative propagation work.
func (s *Solver) Stats() (propagations int) { return s.propagations }

// NumVars returns the solver's current variable count (it grows when Grow or
// AddClause introduces new variables).
func (s *Solver) NumVars() int { return s.nv }

// Grow extends the solver's variable space to at least nv variables. New
// variables are unconstrained until clauses mention them; growing between
// Solve calls is cheap and does not disturb existing clauses or watches.
func (s *Solver) Grow(nv int) {
	if nv <= s.nv {
		return
	}
	s.nv = nv
	for len(s.watches) < 2*(nv+1) {
		s.watches = append(s.watches, nil)
	}
	for len(s.assign) < nv+1 {
		s.assign = append(s.assign, unassigned)
	}
}

// AddClause appends a clause to a live solver, growing the variable space to
// cover its literals. Clauses may be added between Solve calls (never during
// one); the next Solve sees the extended formula. This is the entry point
// for incremental use: callers keep one Solver alive across a family of
// related queries instead of rebuilding it per query.
func (s *Solver) AddClause(lits ...Lit) {
	cl := make(Clause, len(lits))
	copy(cl, lits)
	for _, l := range cl {
		if l == 0 {
			panic("sat: zero literal")
		}
		if v := l.Var(); v > s.nv {
			s.Grow(v)
		}
	}
	s.addClause(cl)
}

// blockModel adds a clause forbidding the exact assignment m.
func (s *Solver) blockModel(m Model) {
	cl := make(Clause, 0, s.nv)
	for v := 1; v <= s.nv; v++ {
		if m[v] {
			cl = append(cl, Lit(int32(-v)))
		} else {
			cl = append(cl, Lit(int32(v)))
		}
	}
	s.addClause(cl)
}

// Classification buckets a CNF by its number of models, the paper's §3.2
// trichotomy.
type Classification uint8

// Classification values.
const (
	Unsat    Classification = iota // no solution: noise or policy change
	Unique                         // exactly one: censors exactly identified
	Multiple                       // two or more: elimination only
)

// String names the classification.
func (c Classification) String() string {
	switch c {
	case Unsat:
		return "0"
	case Unique:
		return "1"
	case Multiple:
		return "2+"
	default:
		return fmt.Sprintf("classification(%d)", uint8(c))
	}
}

// Classify determines whether the CNF has zero, one, or multiple models.
// When exactly one exists it is returned.
func Classify(c *CNF) (Classification, Model) {
	s := NewSolver(c)
	m, ok := s.Solve()
	if !ok {
		return Unsat, nil
	}
	s.blockModel(m)
	if _, again := s.Solve(); again {
		return Multiple, nil
	}
	return Unique, m
}

// CountModels counts models up to cap (inclusive); the return saturates at
// cap. cap must be positive.
func CountModels(c *CNF, cap int) int {
	if cap <= 0 {
		panic("sat: CountModels cap must be positive")
	}
	s := NewSolver(c)
	n := 0
	for n < cap {
		m, ok := s.Solve()
		if !ok {
			return n
		}
		n++
		s.blockModel(m)
	}
	return n
}

// EnumerateModels returns up to cap models.
func EnumerateModels(c *CNF, cap int) []Model {
	s := NewSolver(c)
	var out []Model
	for len(out) < cap {
		m, ok := s.Solve()
		if !ok {
			break
		}
		out = append(out, m)
		s.blockModel(m)
	}
	return out
}

// PotentialTrue reports, per variable, whether some model assigns it true —
// the paper's "potential censor" test for multi-solution CNFs ("every AS is
// a potential censor unless its literal is False in all returned
// solutions"). Computed as one assumption query per variable rather than by
// enumeration, so it stays exact even when the model count explodes.
func PotentialTrue(c *CNF) []bool {
	s := NewSolver(c)
	out := make([]bool, c.NumVars+1)
	for v := 1; v <= c.NumVars; v++ {
		if _, ok := s.SolveAssume([]Lit{Lit(int32(v))}); ok {
			out[v] = true
		}
	}
	return out
}

// Vars lists the distinct variables that occur in the CNF's clauses,
// ascending. (NumVars may exceed this when variables are interned sparsely.)
func (c *CNF) Vars() []int {
	seen := map[int]bool{}
	for _, cl := range c.Clauses {
		for _, l := range cl {
			seen[l.Var()] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
