package sat

import "sort"

// GroupSolver multiplexes a family of related CNFs over one long-lived
// Solver. Clauses are organized into retractable groups: every clause added
// to group g is guarded by g's selector variable (stored as ¬sel ∨ clause),
// so it constrains a query only when the query assumes sel. A query
// activates a subset of groups by passing their selectors as assumptions —
// deactivated groups' clauses are inert (the search satisfies them through
// the unassumed selector) and never need to be deleted.
//
// This is the standard assumption-based incremental-SAT encoding, and it is
// what the streaming engine uses to reuse solver state across sliding
// windows: each measurement day's clauses form one group, a window is an
// assumption set naming its days, and a day aging out of the window simply
// drops out of the assumption set. Nothing is rebuilt.
//
// Model-counting queries (ClassifyActive) need blocking clauses, which would
// ordinarily pollute a shared solver. GroupSolver guards each blocking
// clause with its own selector too and caches it keyed by the blocked
// projection, so repeat classifications of an unchanged window reuse the
// cached blocked model instead of re-deriving it.
//
// GroupSolver is not safe for concurrent use; callers own one per CNF
// family (the tomography keeps one per CNF key). Retracted groups' clauses
// stay in the solver (inert); long-lived owners bound the growth by
// discarding and rebuilding the GroupSolver once retired groups dominate
// resident ones (see tomo's keySolver eviction).
type GroupSolver struct {
	s *Solver
	// blocked caches guarded blocking clauses: projection key (the blocked
	// assignment restricted to the query's variables) to the guard literal
	// that activates the clause.
	blocked map[string]Lit
}

// Group identifies one retractable clause group; its value is the selector
// variable guarding the group's clauses.
type Group int32

// NewGroupSolver returns an empty group solver.
func NewGroupSolver() *GroupSolver {
	return &GroupSolver{s: NewSolver(&CNF{}), blocked: map[string]Lit{}}
}

// Var allocates a fresh problem variable and returns its number. Problem
// variables and group selectors share one variable space; callers must
// obtain every variable they mention from Var (or NewGroup).
func (g *GroupSolver) Var() int {
	g.s.Grow(g.s.NumVars() + 1)
	return g.s.NumVars()
}

// NewGroup allocates a clause group.
func (g *GroupSolver) NewGroup() Group { return Group(int32(g.Var())) }

// Add installs a clause in group grp. The clause constrains only queries
// that activate grp.
func (g *GroupSolver) Add(grp Group, lits ...Lit) {
	cl := make([]Lit, 0, len(lits)+1)
	cl = append(cl, Lit(-int32(grp)))
	cl = append(cl, lits...)
	g.s.AddClause(cl...)
}

// Propagations reports the underlying solver's cumulative propagation count.
func (g *GroupSolver) Propagations() int { return g.s.Stats() }

// assumptions builds the assumption set activating the given groups plus any
// extra literals.
func assumptions(active []Group, extra ...Lit) []Lit {
	out := make([]Lit, 0, len(active)+len(extra))
	for _, grp := range active {
		out = append(out, Lit(int32(grp)))
	}
	return append(out, extra...)
}

// SolveActive solves the conjunction of the active groups' clauses under the
// extra assumption literals.
func (g *GroupSolver) SolveActive(active []Group, extra ...Lit) (Model, bool) {
	return g.s.SolveAssume(assumptions(active, extra...))
}

// projectionKey encodes a model restricted to vars, for the blocked-model
// cache. Two queries share a cache entry exactly when they block the same
// assignment of the same variable set: the encoding sorts by variable, so
// callers passing the same projection in a different var order (a re-interned
// CNF across windows) still hit the cache instead of adding a duplicate
// guarded clause.
func projectionKey(m Model, vars []int) string {
	enc := make([]uint32, len(vars))
	for i, v := range vars {
		enc[i] = uint32(v) << 1
		if m[v] {
			enc[i] |= 1
		}
	}
	sort.Slice(enc, func(i, j int) bool { return enc[i] < enc[j] })
	b := make([]byte, 0, 4*len(enc))
	for _, e := range enc {
		b = append(b, byte(e>>24), byte(e>>16), byte(e>>8), byte(e))
	}
	return string(b)
}

// blockGuard returns the guard literal of a (possibly cached) blocking
// clause forbidding model m's assignment of vars. Assuming the guard
// activates the block; without the assumption the clause is inert, so
// blocks accumulated by past queries never contaminate later ones.
func (g *GroupSolver) blockGuard(m Model, vars []int) Lit {
	key := projectionKey(m, vars)
	if guard, ok := g.blocked[key]; ok {
		return guard
	}
	guard := Lit(int32(g.Var()))
	cl := make([]Lit, 0, len(vars)+1)
	cl = append(cl, guard.Neg())
	for _, v := range vars {
		if m[v] {
			cl = append(cl, Lit(int32(-v)))
		} else {
			cl = append(cl, Lit(int32(v)))
		}
	}
	g.s.AddClause(cl...)
	g.blocked[key] = guard
	return guard
}

// BlockedModels reports how many distinct blocking clauses the solver holds
// (cached across queries).
func (g *GroupSolver) BlockedModels() int { return len(g.blocked) }

// ClassifyActive classifies the CNF formed by the active groups' clauses,
// counting models as distinct only when they differ on vars — exactly
// Classify's behaviour on a standalone CNF whose variables are vars. The
// unique model, when one exists, is returned over the solver's variable
// space (read it at vars).
func (g *GroupSolver) ClassifyActive(active []Group, vars []int) (Classification, Model) {
	m, ok := g.SolveActive(active)
	if !ok {
		return Unsat, nil
	}
	guard := g.blockGuard(m, vars)
	if _, again := g.SolveActive(active, guard); again {
		return Multiple, nil
	}
	return Unique, m
}

// PotentialTrueActive reports, for each of vars (parallel to the input),
// whether some model of the active groups' clauses assigns it true — the
// grouped equivalent of PotentialTrue.
func (g *GroupSolver) PotentialTrueActive(active []Group, vars []int) []bool {
	out := make([]bool, len(vars))
	for i, v := range vars {
		if _, ok := g.SolveActive(active, Lit(int32(v))); ok {
			out[i] = true
		}
	}
	return out
}
