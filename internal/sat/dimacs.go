package sat

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF in DIMACS format. The problem line is optional
// (some generators omit it); comment lines start with 'c'; a missing
// trailing 0 on the final clause is tolerated; literals outside the int32
// range are rejected rather than truncated. FORMAT.md documents the exact
// accepted subset, rule by rule, with the fuzz corpus seed pinning each.
func ParseDIMACS(r io.Reader) (*CNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	cnf := &CNF{}
	declaredVars, declaredClauses := -1, -1
	var pending []Lit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: malformed problem line %q", lineNo, line)
			}
			var err1, err2 error
			declaredVars, err1 = strconv.Atoi(fields[2])
			declaredClauses, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || declaredVars < 0 || declaredClauses < 0 {
				return nil, fmt.Errorf("sat: line %d: bad problem counts in %q", lineNo, line)
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", lineNo, tok)
			}
			if n == 0 {
				cnf.AddClause(pending...)
				pending = pending[:0]
				continue
			}
			// Lit is an int32; a wider value would silently truncate (and a
			// multiple of 2^32 would truncate to the forbidden zero literal).
			if n > math.MaxInt32 || n < -math.MaxInt32 {
				return nil, fmt.Errorf("sat: line %d: literal %q out of range", lineNo, tok)
			}
			pending = append(pending, Lit(int32(n)))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sat: reading DIMACS: %w", err)
	}
	if len(pending) > 0 {
		// Tolerate a missing trailing 0 on the final clause.
		cnf.AddClause(pending...)
	}
	if declaredVars > cnf.NumVars {
		cnf.NumVars = declaredVars
	}
	if declaredClauses >= 0 && declaredClauses != len(cnf.Clauses) {
		return nil, fmt.Errorf("sat: declared %d clauses, found %d", declaredClauses, len(cnf.Clauses))
	}
	return cnf, nil
}

// WriteDIMACS emits the CNF in DIMACS format.
func WriteDIMACS(w io.Writer, c *CNF) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", c.NumVars, len(c.Clauses)); err != nil {
		return err
	}
	for _, cl := range c.Clauses {
		for _, l := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", l); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
