package sat

import (
	"bytes"
	"testing"
)

// FuzzParseDIMACS asserts that no input — however malformed — panics the
// parser, and that anything it accepts survives a write/re-parse round
// trip. The checked-in corpus under testdata/fuzz/FuzzParseDIMACS seeds the
// interesting shapes: missing problem lines, missing trailing zeros,
// comments, overlong literals, and clause-count mismatches. FORMAT.md
// documents the accepted subset and maps each corpus seed to the parsing
// rule it pins (seed_truncating_literal is the PR 1 int32-truncation fix).
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"",
		"c a comment only\n",
		"p cnf 3 2\n1 -2 0\n2 3 0\n",
		"p cnf 3 2\n1 -2 0\n2 3", // missing trailing 0, tolerated
		"1 2 0\n-1 0\n",          // no problem line
		"p cnf\n",                // short problem line
		"p cnf 2 1\n1 x 0\n",     // bad literal token
		"p cnf 1 5\n1 0\n",       // clause-count mismatch
		"p cnf -1 -1\n",          // negative counts
		"4294967296 0\n",         // literal that truncates to the zero Lit
		"2147483647 -2147483647 0\n",
		"9223372036854775808 0\n", // overflows int64 entirely
		"c\np cnf 2 2\n\n \n1 2 0\n-1 -2 0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cnf, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just must not panic
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, cnf); err != nil {
			t.Fatalf("WriteDIMACS on accepted input: %v", err)
		}
		again, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\ninput: %q\nwritten: %q", err, data, buf.Bytes())
		}
		if again.NumVars != cnf.NumVars || len(again.Clauses) != len(cnf.Clauses) {
			t.Fatalf("round trip changed shape: %d vars/%d clauses -> %d/%d",
				cnf.NumVars, len(cnf.Clauses), again.NumVars, len(again.Clauses))
		}
		for i := range cnf.Clauses {
			a, b := cnf.Clauses[i], again.Clauses[i]
			if len(a) != len(b) {
				t.Fatalf("round trip changed clause %d length", i)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("round trip changed clause %d literal %d", i, j)
				}
			}
		}
	})
}
