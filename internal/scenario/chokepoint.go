package scenario

import (
	"churntomo/internal/censor"
	"churntomo/internal/topology"
)

// ChokepointRegime is a CensorRegime that places censors structurally
// instead of by country: it ranks the topology's border ASes by
// betweenness centrality (topology.ChokePoints) and pins one censor at
// each of the top Sites — the deployment the decoy-routing and
// chokepoint-analytics literature assumes, where a filter buys maximum
// path coverage per installed box. The registry contains exactly the
// pinned set: no country profiles, no extra countries.
type ChokepointRegime struct {
	Label string
	// Sites is how many top-centrality border ASes censor; 0 means 6.
	Sites int
	// Apply optionally mutates the generator config after the pins are
	// chosen (policy-change cadence, etc.).
	Apply func(*censor.GenConfig)
}

// Name returns the provider label.
func (c ChokepointRegime) Name() string { return c.Label }

// Censors pins censors at the top-centrality border ASes.
func (c ChokepointRegime) Censors(g *topology.Graph, seed uint64, p Params) (*censor.Registry, error) {
	sites := c.Sites
	if sites <= 0 {
		sites = 6
	}
	ranked := g.ChokePoints()
	if len(ranked) > sites {
		ranked = ranked[:sites]
	}
	pins := make([]topology.ASN, len(ranked))
	for i, cp := range ranked {
		pins[i] = cp.ASN
	}
	cfg := censor.GenConfig{
		Seed: seed, Start: p.Start, End: p.End,
		Profiles:       []censor.CountryProfile{}, // non-nil empty: no profiled censors
		ExtraCountries: -1,
		PinnedASes:     pins,
	}
	if c.Apply != nil {
		c.Apply(&cfg)
	}
	return censor.Generate(g, cfg)
}
