package scenario

import (
	"fmt"
	"time"

	"churntomo/internal/censor"
	"churntomo/internal/iclab"
	"churntomo/internal/ipasmap"
	"churntomo/internal/routing"
	"churntomo/internal/topology"
)

// Params carries the scale knobs a provider may consume: the master seed,
// the topology and platform dimensions, and the measurement period. They
// are resolved from the experiment configuration before Build runs, so a
// provider never sees zero values needing defaulting.
type Params struct {
	Seed            uint64
	ASes, Countries int
	Vantages, URLs  int
	Start, End      time.Time
}

// Stage identifies one world-construction stage, in build order.
type Stage int

// The build stages. Build invokes its onStage hook with each before the
// stage runs, which is where the caller checks cancellation and reports
// progress.
const (
	StageTopology Stage = iota // AS graph
	StageTimeline              // churn timeline + routing oracle
	StageCensors               // censor policies
	StageIPASMap               // historical IP-to-AS database
	StagePlatform              // vantage/target selection
)

// World is a fully constructed experiment substrate: everything the
// measurement platform and the tomography consume.
type World struct {
	Spec   Spec
	Params Params

	Graph    *topology.Graph
	Timeline *routing.Timeline
	Oracle   *routing.Oracle
	Censors  *censor.Registry
	DB       *ipasmap.DB
	Platform *iclab.Scenario
}

// TopologyProvider generates the AS-level graph. seed is already offset
// from the master seed, so providers draw from it directly.
type TopologyProvider interface {
	Name() string
	Topology(seed uint64, p Params) (*topology.Graph, error)
}

// ChurnProcess drives the routing timeline: link flaps, policy shifts,
// correlated regional outages — whatever makes paths move.
type ChurnProcess interface {
	Name() string
	Timeline(g *topology.Graph, seed uint64, p Params) (*routing.Timeline, error)
}

// CensorRegime places censorship policies into the topology: a national
// firewall, per-ISP blocking, transit-heavy leakage-prone deployments.
type CensorRegime interface {
	Name() string
	Censors(g *topology.Graph, seed uint64, p Params) (*censor.Registry, error)
}

// PlatformProfile selects the measurement platform's vantages, targets and
// fingerprint corpus over the already-built substrate (w.Graph, w.Oracle,
// w.Censors and w.DB are populated when it runs).
type PlatformProfile interface {
	Name() string
	Platform(w *World, seed uint64, p Params) (*iclab.Scenario, error)
}

// Spec composes one world generator from the four provider axes. A nil
// provider means the paper-baseline implementation for that axis, so a
// spec overriding a single axis stays a one-liner.
type Spec struct {
	// Name keys the preset registry and is recorded in results.
	Name string
	// Description is one line for catalogs (genlab -list).
	Description string
	// Echoes names the paper section or related work the preset models.
	Echoes string

	// The four axes are opaque to external callers: provider values come
	// from the registry (ScenarioByName, Scenarios) and are recomposed,
	// not implemented, outside the module — their methods exchange
	// internal substrate types by design.
	Topology TopologyProvider //churnvet:ok internalimport -- axis values are opaque; external presets recompose registry providers
	Churn    ChurnProcess     //churnvet:ok internalimport -- axis values are opaque; external presets recompose registry providers
	Censors  CensorRegime     //churnvet:ok internalimport -- axis values are opaque; external presets recompose registry providers
	Platform PlatformProfile  //churnvet:ok internalimport -- axis values are opaque; external presets recompose registry providers
}

// withDefaults fills nil axes with the paper-baseline providers.
func (s Spec) withDefaults() Spec {
	if s.Topology == nil {
		s.Topology = PaperTopology
	}
	if s.Churn == nil {
		s.Churn = PaperChurn
	}
	if s.Censors == nil {
		s.Censors = PaperCensors
	}
	if s.Platform == nil {
		s.Platform = PaperPlatform
	}
	return s
}

// Components returns the four resolved provider names, in build-axis order
// (topology, churn, censors, platform).
func (s Spec) Components() [4]string {
	d := s.withDefaults()
	return [4]string{d.Topology.Name(), d.Churn.Name(), d.Censors.Name(), d.Platform.Name()}
}

// Build constructs the world spec describes at the scale p describes.
// onStage, when non-nil, runs before each stage; a non-nil error aborts the
// build and is returned unwrapped (the cancellation hook). Identical
// (spec, p) inputs produce bit-identical worlds: every provider draws from
// a seed derived from p.Seed with the same per-stage offsets the original
// monolithic pipeline used, so the paper-baseline spec reproduces it
// byte for byte.
func Build(spec Spec, p Params, onStage func(Stage) error) (*World, error) {
	spec = spec.withDefaults()
	if !p.Start.Before(p.End) {
		return nil, fmt.Errorf("scenario %q: start %v not before end %v", spec.Name, p.Start, p.End)
	}
	step := func(s Stage) error {
		if onStage == nil {
			return nil
		}
		return onStage(s)
	}
	w := &World{Spec: spec, Params: p}

	var err error
	if err = step(StageTopology); err != nil {
		return nil, err
	}
	if w.Graph, err = spec.Topology.Topology(p.Seed, p); err != nil {
		return nil, fmt.Errorf("scenario %q: topology: %w", spec.Name, err)
	}

	if err = step(StageTimeline); err != nil {
		return nil, err
	}
	if w.Timeline, err = spec.Churn.Timeline(w.Graph, p.Seed+1, p); err != nil {
		return nil, fmt.Errorf("scenario %q: timeline: %w", spec.Name, err)
	}
	w.Oracle = routing.NewOracle(w.Graph, w.Timeline, 0)

	if err = step(StageCensors); err != nil {
		return nil, err
	}
	if w.Censors, err = spec.Censors.Censors(w.Graph, p.Seed+2, p); err != nil {
		return nil, fmt.Errorf("scenario %q: censors: %w", spec.Name, err)
	}

	// The IP-to-AS history is platform plumbing, not a scenario dimension:
	// every world needs the same honest mapping database for traceroute
	// resolution, so it stays hard-wired rather than pluggable.
	if err = step(StageIPASMap); err != nil {
		return nil, err
	}
	if w.DB, err = ipasmap.Build(w.Graph, ipasmap.BuildConfig{
		Seed: p.Seed + 3, Start: p.Start, End: p.End,
	}); err != nil {
		return nil, fmt.Errorf("scenario %q: ipasmap: %w", spec.Name, err)
	}

	if err = step(StagePlatform); err != nil {
		return nil, err
	}
	if w.Platform, err = spec.Platform.Platform(w, p.Seed+4, p); err != nil {
		return nil, fmt.Errorf("scenario %q: platform: %w", spec.Name, err)
	}
	return w, nil
}
