// Package scenario is the pluggable world-construction framework: it
// decomposes "generate an experiment substrate" into four composable
// provider interfaces — TopologyProvider (the AS graph), ChurnProcess (the
// routing timeline: link flaps, policy shifts, regional outage bursts),
// CensorRegime (where censors sit and how their policies evolve) and
// PlatformProfile (vantage/target/fingerprint selection) — and composes
// them into named, registered presets (paper-baseline, national-firewall,
// transit-leakage, bgp-storm, regional-outage, policy-flap, path-diverse).
//
// Build executes a Spec at a given scale, applying the same per-stage seed
// offsets the original monolithic pipeline used, so the paper-baseline
// preset reproduces its output bit for bit and every preset inherits the
// repo-wide guarantee: same preset + same seed is byte-identical across
// runs and across serial/parallel/streaming execution.
//
// The public API mirror lives in the root package (WithScenario,
// WithScenarioSpec, Scenarios); churnlab selects presets with -scenario
// and genlab lists and describes them.
package scenario
