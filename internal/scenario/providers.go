package scenario

// The concrete providers. Each axis has one generic "tweak" implementation
// that drives the corresponding generator package with the scale knobs from
// Params and an optional config mutation on top — presets compose worlds
// from deltas against the paper baseline instead of re-implementing
// generators. A custom provider only needs to satisfy the interface; the
// tweak types are a convenience, not a requirement.

import (
	"churntomo/internal/censor"
	"churntomo/internal/iclab"
	"churntomo/internal/routing"
	"churntomo/internal/topology"
)

// The paper-baseline providers: the exact generator calls the monolithic
// pipeline used to hard-code, one per axis.
var (
	PaperTopology TopologyProvider = TopologyTweak{Label: "paper"}
	PaperChurn    ChurnProcess     = ChurnTweak{Label: "paper"}
	PaperCensors  CensorRegime     = CensorTweak{Label: "paper"}
	PaperPlatform PlatformProfile  = PlatformTweak{Label: "paper"}
)

// TopologyTweak generates via topology.Generate, after applying Apply (if
// any) to a config pre-filled with the Params scale knobs.
type TopologyTweak struct {
	Label string
	Apply func(*topology.GenConfig)
}

// Name returns the provider label.
func (t TopologyTweak) Name() string { return t.Label }

// Topology generates the AS graph.
func (t TopologyTweak) Topology(seed uint64, p Params) (*topology.Graph, error) {
	cfg := topology.GenConfig{Seed: seed, ASes: p.ASes, Countries: p.Countries}
	if t.Apply != nil {
		t.Apply(&cfg)
	}
	return topology.Generate(cfg)
}

// ChurnTweak generates via routing.GenTimeline with an optional config
// mutation (failure rates, flappiness, scheduled regional outages).
type ChurnTweak struct {
	Label string
	Apply func(*routing.TimelineConfig)
}

// Name returns the provider label.
func (t ChurnTweak) Name() string { return t.Label }

// Timeline generates the churn timeline.
func (t ChurnTweak) Timeline(g *topology.Graph, seed uint64, p Params) (*routing.Timeline, error) {
	cfg := routing.TimelineConfig{Seed: seed, Start: p.Start, End: p.End}
	if t.Apply != nil {
		t.Apply(&cfg)
	}
	return routing.GenTimeline(g, cfg)
}

// CensorTweak generates via censor.Generate with an optional config
// mutation (country profiles, policy-change cadence).
type CensorTweak struct {
	Label string
	Apply func(*censor.GenConfig)
}

// Name returns the provider label.
func (t CensorTweak) Name() string { return t.Label }

// Censors places the censorship policies.
func (t CensorTweak) Censors(g *topology.Graph, seed uint64, p Params) (*censor.Registry, error) {
	cfg := censor.GenConfig{Seed: seed, Start: p.Start, End: p.End}
	if t.Apply != nil {
		t.Apply(&cfg)
	}
	return censor.Generate(g, cfg)
}

// PlatformTweak selects vantages and targets via iclab.BuildScenario with
// an optional config mutation (vantage placement bias, fingerprint
// coverage).
type PlatformTweak struct {
	Label string
	Apply func(*iclab.ScenarioConfig)
}

// Name returns the provider label.
func (t PlatformTweak) Name() string { return t.Label }

// Platform builds the measurement scenario over the prepared substrate.
func (t PlatformTweak) Platform(w *World, seed uint64, p Params) (*iclab.Scenario, error) {
	cfg := iclab.ScenarioConfig{Seed: seed, Vantages: p.Vantages, URLs: p.URLs}
	if t.Apply != nil {
		t.Apply(&cfg)
	}
	return iclab.BuildScenario(w.Graph, w.Oracle, w.Censors, w.DB, p.Start, p.End, cfg)
}

// transitHeavyProfiles returns censor.DefaultProfiles with every profile
// forced onto transit/tier-1 placement — the structural precondition for
// cross-border leakage.
func transitHeavyProfiles() []censor.CountryProfile {
	out := append([]censor.CountryProfile(nil), censor.DefaultProfiles...)
	for i := range out {
		out[i].PreferTransit = true
	}
	return out
}

// perISPProfiles returns censor.DefaultProfiles re-targeted at access
// networks: no transit preference, and the larger regimes split across
// more, smaller ASes — each ISP implements the national mandate on its own
// equipment with its own quirks.
func perISPProfiles() []censor.CountryProfile {
	out := append([]censor.CountryProfile(nil), censor.DefaultProfiles...)
	for i := range out {
		out[i].PreferTransit = false
		if out[i].ASes >= 3 {
			out[i].ASes += 2
		}
	}
	return out
}
