package scenario

// The built-in preset catalog. Every preset is a Spec composed from the
// tweak providers in providers.go; registration order is catalog order.
// README.md carries the user-facing table; keep the two in sync.

import (
	"time"

	"churntomo/internal/anomaly"
	"churntomo/internal/censor"
	"churntomo/internal/iclab"
	"churntomo/internal/routing"
	"churntomo/internal/topology"
)

func init() {
	MustRegister(Spec{
		Name:        DefaultName,
		Description: "the paper's world: baseline churn, Table-2 censor mix, VPN-biased vantages",
		Echoes:      "the paper, §3 method and §4 evaluation",
		// All axes nil: the paper providers, and with them bit-identical
		// output to the pre-framework pipeline.
	})

	MustRegister(Spec{
		Name:        "national-firewall",
		Description: "one country censors at every border with a centralized, slow-moving policy",
		Echoes:      "the paper's CN rows in Tables 2-3 (GFW-style filtering at transit)",
		Censors: CensorTweak{Label: "national-firewall", Apply: func(c *censor.GenConfig) {
			c.Profiles = []censor.CountryProfile{{
				Country: "CN", ASes: 10, Techniques: anomaly.AllKinds,
				PreferTransit: true, CatMin: 3, CatMax: 6,
			}}
			c.ExtraCountries = -1
			// A centralized apparatus changes policy rarely — and when it
			// does, the change shows up at every border at once.
			c.PolicyChangeProb = 0.15
		}},
		Platform: PlatformTweak{Label: "domestic-heavy", Apply: func(c *iclab.ScenarioConfig) {
			// More vantages inside the censoring country: the regime is
			// observed from within, not only through leakage.
			c.VantageNeutralBias = 0.35
		}},
	})

	MustRegister(Spec{
		Name:        "transit-leakage",
		Description: "censors sit at transit/tier-1 ASes over a heavily foreign-homed topology",
		Echoes:      "the paper's §3.3 leakage analysis (Table 3, Figure 5)",
		Topology: TopologyTweak{Label: "foreign-homed", Apply: func(c *topology.GenConfig) {
			// Triple the stubs buying transit abroad: every such customer
			// is a potential cross-border victim.
			c.ForeignProviderProb = 0.18
		}},
		Censors: CensorTweak{Label: "transit-heavy", Apply: func(c *censor.GenConfig) {
			c.Profiles = transitHeavyProfiles()
		}},
	})

	MustRegister(Spec{
		Name:        "bgp-storm",
		Description: "pathological churn: storm-level link failures, half the links flapping",
		Echoes:      "routing events reshaping censorship (arXiv:2406.19304)",
		Churn: ChurnTweak{Label: "bgp-storm", Apply: func(c *routing.TimelineConfig) {
			c.FailuresPerLinkYear = 36
			c.MeanOutage = 90 * time.Minute
			c.FlappyFrac = 0.5
			c.FlappyMult = 200
			c.PolicyShiftsPerASYear = 45
		}},
	})

	MustRegister(Spec{
		Name:        "regional-outage",
		Description: "correlated regional failure bursts (cable cuts) on top of baseline churn",
		Echoes:      "the paper's §2 churn sources, pushed to the correlated extreme",
		Churn: ChurnTweak{Label: "regional-outage", Apply: func(c *routing.TimelineConfig) {
			c.Outages = []routing.RegionalOutage{
				{Region: topology.RegionAsia, At: 0.25, Duration: 36 * time.Hour, Frac: 0.6},
				{Region: topology.RegionEurope, At: 0.55, Duration: 24 * time.Hour, Frac: 0.5},
				{Region: topology.RegionMiddleEast, At: 0.8, Duration: 48 * time.Hour, Frac: 0.7},
			}
		}},
	})

	MustRegister(Spec{
		Name:        "policy-flap",
		Description: "per-ISP censors that keep changing what and how they block",
		Echoes:      "the paper's §4.1 unsolvable coarse-granularity CNFs (policy changed mid-slice)",
		Churn: ChurnTweak{Label: "policy-shift-heavy", Apply: func(c *routing.TimelineConfig) {
			c.PolicyShiftsPerASYear = 45
		}},
		Censors: CensorTweak{Label: "per-isp-flapping", Apply: func(c *censor.GenConfig) {
			c.Profiles = perISPProfiles()
			c.PolicyChangeProb = 0.85
			c.PolicyChanges = 4
		}},
	})

	MustRegister(Spec{
		Name:        "path-diverse",
		Description: "densely peered, multi-homed topology maximizing measurement path diversity",
		Echoes:      "Pathfinder's deliberate path diversity (arXiv:2407.04213)",
		Topology: TopologyTweak{Label: "path-diverse", Apply: func(c *topology.GenConfig) {
			c.PeerProb = 0.5
			c.ForeignProviderProb = 0.12
			c.ContentFrac = 0.4
		}},
	})

	MustRegister(Spec{
		Name:        "routing-shift",
		Description: "censors stay fixed while BGP policy waves re-route paths mid-timeline",
		Echoes:      "routing changes alone reshaping who is censored (arXiv:2406.19304)",
		Churn: ChurnTweak{Label: "policy-waves", Apply: func(c *routing.TimelineConfig) {
			// Three synchronized policy bursts, each re-rolling the route
			// tie-breaks of roughly half the ASes at one instant — the
			// localized equivalent of a large BGP event sweeping the table.
			// Background churn is untouched.
			c.Waves = []routing.PolicyWave{
				{At: 0.3, Frac: 0.5},
				{At: 0.55, Frac: 0.45},
				{At: 0.8, Frac: 0.5},
			}
		}},
		Censors: CensorTweak{Label: "pinned-policy", Apply: func(c *censor.GenConfig) {
			// The censors never change what they block: every measurement
			// delta is attributable to the path churn, isolating the
			// paper's core signal.
			c.PolicyChangeProb = -1
		}},
	})

	MustRegister(Spec{
		Name:        "ecmp-multipath",
		Description: "load-balanced forwarding: repeats of one vantage-target pair hash onto different paths",
		Echoes:      "Pathfinder's per-flow path variation under ECMP (arXiv:2407.04213)",
		Topology: TopologyTweak{Label: "dense-peering", Apply: func(c *topology.GenConfig) {
			// Dense peering produces the route ties ECMP needs: with few
			// equally-preferred routes, extra planes collapse onto plane 0.
			c.PeerProb = 0.5
		}},
		Platform: PlatformTweak{Label: "ecmp-3", Apply: func(c *iclab.ScenarioConfig) {
			c.ECMPPaths = 3
		}},
	})

	MustRegister(Spec{
		Name:        "chokepoint",
		Description: "censors pinned at the highest-betweenness border ASes instead of by country",
		Echoes:      "chokepoint-placement analyses from the decoy-routing literature",
		Censors:     ChokepointRegime{Label: "top-betweenness", Sites: 6},
	})
}
