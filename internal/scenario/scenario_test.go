package scenario

import (
	"errors"
	"testing"
	"time"

	"churntomo/internal/routing"
	"churntomo/internal/topology"
)

func smokeParams(seed uint64) Params {
	start := time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	return Params{
		Seed: seed, ASes: 80, Countries: 12,
		Vantages: 8, URLs: 10,
		Start: start, End: start.AddDate(0, 0, 10),
	}
}

func TestRegistryBuiltins(t *testing.T) {
	want := []string{
		DefaultName, "national-firewall", "transit-leakage",
		"bgp-storm", "regional-outage", "policy-flap", "path-diverse",
		"routing-shift", "ecmp-multipath", "chokepoint",
	}
	names := Names()
	if len(names) < len(want) {
		t.Fatalf("only %d presets registered, want at least %d", len(names), len(want))
	}
	for _, w := range want {
		if _, ok := Preset(w); !ok {
			t.Errorf("preset %q not registered", w)
		}
	}
	if names[0] != DefaultName {
		t.Errorf("catalog order starts with %q, want %q", names[0], DefaultName)
	}
	if Default().Name != DefaultName {
		t.Errorf("Default() is %q", Default().Name)
	}
}

func TestRegisterRejectsBadSpecs(t *testing.T) {
	if err := Register(Spec{}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(Spec{Name: DefaultName}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestSpecComponentsDefaulted(t *testing.T) {
	var s Spec
	got := s.Components()
	for i, name := range got {
		if name != "paper" {
			t.Errorf("axis %d of the zero spec is %q, want \"paper\"", i, name)
		}
	}
	flap, _ := Preset("policy-flap")
	c := flap.Components()
	if c[1] != "policy-shift-heavy" || c[2] != "per-isp-flapping" {
		t.Errorf("policy-flap components = %v", c)
	}
	if c[0] != "paper" || c[3] != "paper" {
		t.Errorf("policy-flap unexpectedly overrides topology/platform: %v", c)
	}
}

func TestBuildEveryPresetSmoke(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Preset(name)
		w, err := Build(spec, smokeParams(1), nil)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if w.Graph == nil || w.Timeline == nil || w.Oracle == nil ||
			w.Censors == nil || w.DB == nil || w.Platform == nil {
			t.Fatalf("preset %q: incomplete world %+v", name, w)
		}
		if w.Censors.Len() == 0 {
			t.Errorf("preset %q placed no censors", name)
		}
		if len(w.Platform.Vantages) != smokeParams(1).Vantages {
			t.Errorf("preset %q: %d vantages, want %d", name, len(w.Platform.Vantages), smokeParams(1).Vantages)
		}
	}
}

func TestBuildStageHookOrderAndAbort(t *testing.T) {
	var seen []Stage
	_, err := Build(Default(), smokeParams(2), func(s Stage) error {
		seen = append(seen, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Stage{StageTopology, StageTimeline, StageCensors, StageIPASMap, StagePlatform}
	if len(seen) != len(want) {
		t.Fatalf("stages %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("stages %v, want %v", seen, want)
		}
	}

	boom := errors.New("abort")
	n := 0
	_, err = Build(Default(), smokeParams(2), func(Stage) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("hook error not propagated unwrapped: %v", err)
	}
	if n != 3 {
		t.Fatalf("build continued past aborting hook: %d stages ran", n)
	}
}

// TestBuildMatchesMonolith pins the seed-offset contract: the baseline
// world must equal what the historical hard-coded chain produces when
// invoked directly with the same offsets.
func TestBuildMatchesMonolith(t *testing.T) {
	p := smokeParams(3)
	w, err := Build(Default(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Generate(topology.GenConfig{Seed: p.Seed, ASes: p.ASes, Countries: p.Countries})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.ASes) != len(w.Graph.ASes) || len(g.Links) != len(w.Graph.Links) {
		t.Fatalf("topology differs from monolithic chain: %d/%d ASes, %d/%d links",
			len(w.Graph.ASes), len(g.ASes), len(w.Graph.Links), len(g.Links))
	}
	for i := range g.ASes {
		if g.ASes[i].ASN != w.Graph.ASes[i].ASN {
			t.Fatalf("AS %d differs: %v vs %v", i, w.Graph.ASes[i].ASN, g.ASes[i].ASN)
		}
	}
	tl, err := routing.GenTimeline(g, routing.TimelineConfig{Seed: p.Seed + 1, Start: p.Start, End: p.End})
	if err != nil {
		t.Fatal(err)
	}
	if tl.NumEvents() != w.Timeline.NumEvents() || tl.NumEpochs() != w.Timeline.NumEpochs() {
		t.Fatalf("timeline differs: %d/%d events, %d/%d epochs",
			w.Timeline.NumEvents(), tl.NumEvents(), w.Timeline.NumEpochs(), tl.NumEpochs())
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec, _ := Preset("bgp-storm")
	a, err := Build(spec, smokeParams(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(spec, smokeParams(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Timeline.NumEvents() != b.Timeline.NumEvents() {
		t.Errorf("event counts differ: %d vs %d", a.Timeline.NumEvents(), b.Timeline.NumEvents())
	}
	aa, bb := a.Censors.ASNs(), b.Censors.ASNs()
	if len(aa) != len(bb) {
		t.Fatalf("censor counts differ: %d vs %d", len(aa), len(bb))
	}
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatalf("censor %d differs: %v vs %v", i, aa[i], bb[i])
		}
	}
	for i := range a.Platform.Targets {
		if a.Platform.Targets[i].URL.Host != b.Platform.Targets[i].URL.Host {
			t.Fatalf("target %d differs", i)
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	p := smokeParams(5)
	p.End = p.Start
	if _, err := Build(Default(), p, nil); err == nil {
		t.Error("degenerate period accepted")
	}
	p = smokeParams(5)
	p.ASes = 4 // below the topology generator's minimum
	if _, err := Build(Default(), p, nil); err == nil {
		t.Error("tiny topology accepted")
	}
}
