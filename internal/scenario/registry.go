package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultName is the preset every experiment runs unless told otherwise:
// the paper's original world, byte for byte.
const DefaultName = "paper-baseline"

var (
	regMu sync.RWMutex
	// presets maps name -> spec; order keeps registration order so
	// catalogs list paper-baseline first and variants after it.
	presets = map[string]Spec{}
	order   []string
)

// Register adds a preset to the registry. The name must be non-empty and
// not already taken — presets are identities that results record, so
// silent replacement would corrupt provenance.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: Register: empty preset name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := presets[s.Name]; dup {
		return fmt.Errorf("scenario: Register: preset %q already registered", s.Name)
	}
	presets[s.Name] = s
	order = append(order, s.Name)
	return nil
}

// MustRegister is Register for known-good built-ins; it panics on error.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Preset returns the named preset.
func Preset(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := presets[name]
	return s, ok
}

// Default returns the paper-baseline preset.
func Default() Spec {
	s, ok := Preset(DefaultName)
	if !ok {
		panic("scenario: default preset not registered")
	}
	return s
}

// Names lists the registered presets in registration order (built-ins
// first, in catalog order).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), order...)
}

// SortedNames lists the registered presets alphabetically, for error
// messages and shell completion.
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
