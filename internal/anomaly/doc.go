// Package anomaly defines the five censorship anomaly kinds shared across
// the whole pipeline: the censor injectors that cause them, the detectors
// that recover them from captures, and the tomography that localizes them.
//
// Paper correspondence: §2.1 / Table 1. The five kinds (dns, rst, seq,
// ttl, block) match the paper's Figure 1b legend, and the tomography
// builds one CNF per anomaly kind per URL per time slice.
//
// Entry points: Kind enumerates the classes (Kinds lists them in canonical
// order); Set is the compact bitset the detectors and censors exchange
// (MakeSet, Add, Has, Members).
//
// Invariants: Kind values are stable and dense (0..NumKinds-1), so arrays
// indexed by Kind and the Set bitset stay in sync; Set's canonical String
// order follows Kinds.
package anomaly
