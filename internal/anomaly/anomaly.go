package anomaly

import "fmt"

// Kind is one of ICLab's censorship anomaly classes.
type Kind uint8

// The five anomaly kinds measured by the platform (paper §2.1 / Table 1).
const (
	DNS   Kind = iota // injected DNS responses (dual replies within 2s)
	RST               // spurious TCP reset injection
	SEQ               // overlapping/gapped TCP sequence numbers
	TTL               // IP TTL inconsistent with the connection's SYNACK
	Block             // censor blockpage in the HTTP response
	NumKinds
)

// Kinds lists every anomaly kind in canonical order.
var Kinds = []Kind{DNS, RST, SEQ, TTL, Block}

// String returns the short lower-case name used in figures ("dns", "rst",
// "seq", "ttl", "block" — matching the paper's Figure 1b legend).
func (k Kind) String() string {
	switch k {
	case DNS:
		return "dns"
	case RST:
		return "rst"
	case SEQ:
		return "seq"
	case TTL:
		return "ttl"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("anomaly(%d)", uint8(k))
	}
}

// Parse converts a name produced by String back to a Kind.
func Parse(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("anomaly: unknown kind %q", s)
}

// Set is a bitmask of anomaly kinds.
type Set uint8

// MakeSet builds a Set from members.
func MakeSet(kinds ...Kind) Set {
	var s Set
	for _, k := range kinds {
		s |= 1 << k
	}
	return s
}

// AllKinds contains every anomaly kind.
const AllKinds Set = 1<<NumKinds - 1

// Has reports membership.
func (s Set) Has(k Kind) bool { return s&(1<<k) != 0 }

// Add returns s with k added.
func (s Set) Add(k Kind) Set { return s | 1<<k }

// Len counts members.
func (s Set) Len() int {
	n := 0
	for _, k := range Kinds {
		if s.Has(k) {
			n++
		}
	}
	return n
}

// Members lists member kinds in canonical order.
func (s Set) Members() []Kind {
	var out []Kind
	for _, k := range Kinds {
		if s.Has(k) {
			out = append(out, k)
		}
	}
	return out
}

// String renders the set the way the paper's Table 2 does: "All" when every
// technique is present, otherwise a comma-separated list.
func (s Set) String() string {
	if s == AllKinds {
		return "All"
	}
	out := ""
	for _, k := range s.Members() {
		if out != "" {
			out += ", "
		}
		out += k.String()
	}
	if out == "" {
		return "none"
	}
	return out
}
