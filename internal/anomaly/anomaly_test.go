package anomaly

import (
	"testing"
	"testing/quick"
)

func TestKindStringsAndParse(t *testing.T) {
	want := map[Kind]string{DNS: "dns", RST: "rst", SEQ: "seq", TTL: "ttl", Block: "block"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
		back, err := Parse(s)
		if err != nil || back != k {
			t.Errorf("Parse(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(bogus) succeeded")
	}
	if Kind(99).String() == "" {
		t.Error("out-of-range kind renders empty")
	}
}

func TestSetBasics(t *testing.T) {
	s := MakeSet(DNS, TTL)
	if !s.Has(DNS) || !s.Has(TTL) || s.Has(RST) {
		t.Errorf("membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.String(); got != "dns, ttl" {
		t.Errorf("String = %q", got)
	}
	if AllKinds.String() != "All" {
		t.Errorf("AllKinds.String = %q", AllKinds.String())
	}
	if Set(0).String() != "none" {
		t.Errorf("empty String = %q", Set(0).String())
	}
	if AllKinds.Len() != int(NumKinds) {
		t.Errorf("AllKinds.Len = %d", AllKinds.Len())
	}
}

func TestSetRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		s := Set(raw) & AllKinds
		return MakeSet(s.Members()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindsOrder(t *testing.T) {
	if len(Kinds) != int(NumKinds) {
		t.Fatalf("Kinds has %d entries", len(Kinds))
	}
	for i, k := range Kinds {
		if int(k) != i {
			t.Errorf("Kinds[%d] = %v", i, k)
		}
	}
}
