package churntomo

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"churntomo/internal/churn"
	"churntomo/internal/iclab"
	"churntomo/internal/sat"
	"churntomo/internal/timeslice"
	"churntomo/internal/tomo"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
)

// testConfig is a fast end-to-end configuration.
func testConfig() Config {
	cfg := SmallConfig()
	cfg.Days = 30
	cfg.Vantages = 12
	cfg.URLs = 16
	cfg.URLsPerDay = 6
	return cfg
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	var progress bytes.Buffer
	cfg := testConfig()
	cfg.Progress = &progress
	p, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Every stage populated.
	if p.Graph == nil || p.Timeline == nil || p.Oracle == nil || p.Censors == nil ||
		p.DB == nil || p.Scenario == nil || p.Dataset == nil || p.Leakage == nil {
		t.Fatal("pipeline stage missing")
	}
	if len(p.Dataset.Records) == 0 {
		t.Fatal("no measurements")
	}
	if len(p.Instances) == 0 || len(p.Outcomes) != len(p.Instances) {
		t.Fatalf("instances %d, outcomes %d", len(p.Instances), len(p.Outcomes))
	}
	if progress.Len() == 0 {
		t.Error("progress writer received nothing")
	}

	// Structural sanity of outcomes: every class present across a month of
	// measurements with censors in play.
	var byClass [3]int
	for _, o := range p.Outcomes {
		byClass[o.Class]++
	}
	if byClass[sat.Unique] == 0 {
		t.Error("no unique-solution CNFs; localization inert")
	}
	if byClass[sat.Multiple] == 0 {
		t.Error("no multi-solution CNFs; scenario implausibly over-determined")
	}

	// Identified censors must be corroborated and mostly real.
	for asn, c := range p.Identified {
		if c.CNFs < 3 {
			t.Errorf("censor %v passed the filter with only %d CNFs", asn, c.CNFs)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Dataset.Records) != len(b.Dataset.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Dataset.Records), len(b.Dataset.Records))
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		if a.Outcomes[i].Class != b.Outcomes[i].Class {
			t.Fatalf("outcome %d class differs", i)
		}
	}
	if len(a.Identified) != len(b.Identified) {
		t.Fatalf("identified censors differ: %d vs %d", len(a.Identified), len(b.Identified))
	}
}

func TestPrepareWithoutMeasure(t *testing.T) {
	cfg := testConfig()
	p, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dataset != nil {
		t.Error("Prepare ran measurements")
	}
	if len(p.Scenario.Vantages) != cfg.Vantages {
		t.Errorf("vantages %d, want %d", len(p.Scenario.Vantages), cfg.Vantages)
	}
	defer func() {
		if recover() == nil {
			t.Error("Localize before Measure should panic")
		}
	}()
	p.Localize()
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.fillDefaults()
	d := DefaultConfig()
	if cfg.ASes != d.ASes || cfg.Vantages != d.Vantages || cfg.Days != d.Days {
		t.Errorf("zero config did not inherit defaults: %+v", cfg)
	}
	if cfg.Start.IsZero() {
		t.Error("start not defaulted")
	}
	if cfg.Start.Year() != 2016 || cfg.Start.Month() != 5 {
		t.Errorf("default start %v, want 2016-05 (the paper's window)", cfg.Start)
	}
}

func TestRunRejectsBrokenConfig(t *testing.T) {
	cfg := testConfig()
	cfg.ASes = 20
	cfg.Vantages = 1000 // more vantages than stubs
	if _, err := Run(cfg); err == nil {
		t.Error("oversized vantage count accepted")
	}
}

// TestGroundTruthIsolation verifies the tomography path never reads
// ground-truth fields: scrubbing them from the records must not change any
// outcome.
func TestGroundTruthIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	p, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scrubbed := make([]int, 0)
	records := append([]iclab.Record(nil), p.Dataset.Records...)
	for i := range records {
		if records[i].TruePath != nil || records[i].TrueActs != nil {
			scrubbed = append(scrubbed, i)
		}
		records[i].TruePath = nil
		records[i].TrueActs = nil
	}
	if len(scrubbed) == 0 {
		t.Fatal("no ground truth present to scrub; test vacuous")
	}
	insts := tomo.Build(records, tomo.BuildConfig{})
	if len(insts) != len(p.Instances) {
		t.Fatalf("instance count changed after scrubbing: %d vs %d", len(insts), len(p.Instances))
	}
	outcomes := tomo.SolveAll(insts)
	for i := range outcomes {
		if outcomes[i].Class != p.Outcomes[i].Class {
			t.Fatalf("outcome %d changed after ground-truth scrub", i)
		}
	}
}

func TestChurnMonotoneAcrossGranularities(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	p, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := churn.Measure(p.Dataset.Records, nil)
	if len(ds) != len(timeslice.All) {
		t.Fatalf("got %d distributions", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].ChangedFrac()+1e-9 < ds[i-1].ChangedFrac() {
			t.Errorf("churn not monotone: %v %.3f < %v %.3f",
				ds[i].Gran, ds[i].ChangedFrac(), ds[i-1].Gran, ds[i-1].ChangedFrac())
		}
	}
	if ds[0].ChangedFrac() == 0 {
		t.Error("no intra-day churn at all")
	}
}

func TestInconclusiveRulesAllFire(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	cfg.Days = 45
	p, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[traceroute.FailReason]int{}
	for i := range p.Dataset.Records {
		seen[p.Dataset.Records[i].Fail]++
	}
	for _, why := range []traceroute.FailReason{
		traceroute.ErrTraceFailed, traceroute.ErrSilentBoundary,
	} {
		if seen[why] == 0 {
			t.Errorf("elimination rule %v never fired over 45 days", why)
		}
	}
	if seen[traceroute.OK] == 0 {
		t.Fatal("no conclusive records")
	}
}

func TestIdentifiedCensorsAreOnCensoredPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	cfg.Days = 60
	p, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Identified) == 0 {
		t.Skip("no censors identified at this scale/seed")
	}
	onPath := map[topology.ASN]bool{}
	for i := range p.Dataset.Records {
		r := &p.Dataset.Records[i]
		if r.Anomalies == 0 {
			continue
		}
		for _, as := range r.ASPath {
			onPath[as] = true
		}
	}
	for asn := range p.Identified {
		if !onPath[asn] {
			t.Errorf("identified censor %v never appeared on an anomalous path", asn)
		}
	}
}

// identifiedSummary flattens the Identified map into a comparable form.
func identifiedSummary(p *Pipeline) map[topology.ASN]string {
	out := map[topology.ASN]string{}
	for asn, c := range p.Identified {
		urls := make([]string, 0, len(c.URLs))
		for u := range c.URLs {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		out[asn] = fmt.Sprintf("kinds=%v cnfs=%d urls=%v", c.Kinds, c.CNFs, urls)
	}
	return out
}

// leakageSummary flattens the leakage analysis into a comparable form.
func leakageSummary(p *Pipeline) string {
	return fmt.Sprintf("asLeaks=%d countryLeaks=%d flow=%v",
		p.Leakage.LeakToOtherASes(), p.Leakage.LeakToOtherCountries(), p.Leakage.Flow)
}

// TestSerialParallelIdentical is the engine's end-to-end determinism
// regression: the same seed must produce identical censor identifications
// and leakage summaries whether the pipeline runs serially, runs with a
// full worker pool, or runs twice.
func TestSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	serialCfg := testConfig()
	serialCfg.Workers = 1
	serial, err := Run(serialCfg)
	if err != nil {
		t.Fatal(err)
	}

	variants := map[string]int{"parallel": 8, "parallel-again": 8, "default-workers": 0}
	for name, workers := range variants {
		cfg := testConfig()
		cfg.Workers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Dataset.Records) != len(serial.Dataset.Records) {
			t.Fatalf("%s: %d records vs %d serial", name, len(got.Dataset.Records), len(serial.Dataset.Records))
		}
		for i := range serial.Dataset.Records {
			if !reflect.DeepEqual(serial.Dataset.Records[i], got.Dataset.Records[i]) {
				t.Fatalf("%s: record %d differs from serial", name, i)
			}
		}
		if len(got.Outcomes) != len(serial.Outcomes) {
			t.Fatalf("%s: %d outcomes vs %d serial", name, len(got.Outcomes), len(serial.Outcomes))
		}
		for i := range serial.Outcomes {
			if got.Outcomes[i].Class != serial.Outcomes[i].Class ||
				got.Outcomes[i].Inst.Key != serial.Outcomes[i].Inst.Key ||
				!reflect.DeepEqual(got.Outcomes[i].Censors, serial.Outcomes[i].Censors) {
				t.Fatalf("%s: outcome %d differs from serial", name, i)
			}
		}
		if !reflect.DeepEqual(identifiedSummary(serial), identifiedSummary(got)) {
			t.Fatalf("%s: identified censors differ from serial:\n%v\n%v",
				name, identifiedSummary(serial), identifiedSummary(got))
		}
		if leakageSummary(serial) != leakageSummary(got) {
			t.Fatalf("%s: leakage differs from serial:\n%s\n%s",
				name, leakageSummary(serial), leakageSummary(got))
		}
	}
}
