package churntomo

import (
	"reflect"
	"testing"
)

// TestStreamReplayMatchesBatch is the streaming determinism regression: a
// cumulative day-by-day replay must end in exactly the batch pipeline's
// state — identical records, outcomes and identified censors — even though
// the replay solved incrementally across dozens of intermediate windows.
func TestStreamReplayMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	r := &Runner{}
	sr, err := r.StreamSweep(cfg, StreamConfig{Window: 0, Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Windows) != cfg.Days {
		t.Fatalf("cumulative stride-1 replay emitted %d windows over %d days", len(sr.Windows), cfg.Days)
	}
	final := sr.Final()
	if final.StartDay != 0 || final.EndDay != cfg.Days-1 {
		t.Fatalf("final window covers [%d..%d], want [0..%d]", final.StartDay, final.EndDay, cfg.Days-1)
	}

	// The measured dataset is bit-identical to the batch engine's.
	if !reflect.DeepEqual(sr.Pipeline.Dataset.Records, batch.Dataset.Records) {
		t.Fatal("streaming replay measured different records than the batch engine")
	}

	// The final window's tomography equals the batch Localize, field for
	// field (instances compared through their keys and solved artifacts;
	// clause literal order is a solver-internal artifact).
	if len(final.Outcomes) != len(batch.Outcomes) {
		t.Fatalf("final window has %d outcomes, batch has %d", len(final.Outcomes), len(batch.Outcomes))
	}
	for i := range batch.Outcomes {
		g, b := final.Outcomes[i], batch.Outcomes[i]
		if g.Inst.Key != b.Inst.Key || g.Class != b.Class ||
			!reflect.DeepEqual(g.Censors, b.Censors) ||
			!reflect.DeepEqual(g.Potential, b.Potential) ||
			g.Eliminated != b.Eliminated || g.TotalVars != b.TotalVars ||
			g.Inst.Measurements != b.Inst.Measurements ||
			!reflect.DeepEqual(g.Inst.Vars, b.Inst.Vars) {
			t.Fatalf("outcome %d (%v) differs between streaming and batch:\n got %+v\nwant %+v",
				i, b.Inst.Key, g, b)
		}
	}
	if !reflect.DeepEqual(final.Identified, batch.Identified) {
		t.Fatalf("identified censors differ:\nstreaming %v\nbatch %v", final.Identified, batch.Identified)
	}

	// Incrementality did real work avoidance: across the whole replay most
	// window solves must come from cache, not re-solving.
	solved, reused := 0, 0
	for _, w := range sr.Windows {
		solved += w.Solved
		reused += w.Reused
	}
	if reused <= solved {
		t.Errorf("cumulative replay reused %d outcomes vs %d solves; incrementality inert", reused, solved)
	}
}

// TestStreamSweepWorkersIrrelevant extends the serial==parallel guarantee to
// the streaming mode: the full window timeline is identical at any worker
// count.
func TestStreamSweepWorkersIrrelevant(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	sc := StreamConfig{Window: 10, Stride: 5}
	replay := func(workers int) *StreamRun {
		cfg := testConfig()
		cfg.Workers = workers
		sr, err := (&Runner{}).StreamSweep(cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	serial := replay(1)
	par := replay(8)
	if len(serial.Windows) != len(par.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(serial.Windows), len(par.Windows))
	}
	for i := range serial.Windows {
		s, p := serial.Windows[i], par.Windows[i]
		if s.StartDay != p.StartDay || s.EndDay != p.EndDay || s.Solved != p.Solved || s.Reused != p.Reused {
			t.Fatalf("window %d shape differs: %+v vs %+v", i, s, p)
		}
		if !reflect.DeepEqual(s.Identified, p.Identified) {
			t.Fatalf("window %d identifications differ between serial and parallel", i)
		}
		for j := range s.Outcomes {
			if s.Outcomes[j].Class != p.Outcomes[j].Class ||
				s.Outcomes[j].Inst.Key != p.Outcomes[j].Inst.Key ||
				!reflect.DeepEqual(s.Outcomes[j].Censors, p.Outcomes[j].Censors) {
				t.Fatalf("window %d outcome %d differs between serial and parallel", i, j)
			}
		}
	}
	if !reflect.DeepEqual(serial.Convergence, par.Convergence) {
		t.Fatal("convergence stats differ between serial and parallel")
	}
}

// TestStreamSweepSlidingWindowTimeline sanity-checks a sliding replay's
// shape and its convergence stats against the per-window identifications.
func TestStreamSweepSlidingWindowTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	cfg := testConfig()
	sr, err := (&Runner{}).StreamSweep(cfg, StreamConfig{Window: 12, Stride: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantWindows := (cfg.Days-12)/3 + 1
	if len(sr.Windows) != wantWindows {
		t.Fatalf("emitted %d windows, want %d", len(sr.Windows), wantWindows)
	}
	for i, w := range sr.Windows {
		if w.Index != i || w.EndDay-w.StartDay != 11 {
			t.Fatalf("window %d malformed: %+v", i, w)
		}
	}
	seen := map[string]bool{}
	for _, c := range sr.Convergence {
		if c.Windows < 1 || c.FirstWindow > c.LastWindow {
			t.Errorf("degenerate convergence record %+v", c)
		}
		if _, ok := sr.Windows[c.FirstWindow].Identified[c.ASN]; !ok {
			t.Errorf("censor %v not identified in its FirstWindow %d", c.ASN, c.FirstWindow)
		}
		if c.StableFrom >= 0 {
			for wi := c.StableFrom; wi < len(sr.Windows); wi++ {
				if _, ok := sr.Windows[wi].Identified[c.ASN]; !ok {
					t.Errorf("censor %v marked stable from %d but absent in window %d", c.ASN, c.StableFrom, wi)
				}
			}
		}
		seen[c.ASN.String()] = true
	}
	for _, w := range sr.Windows {
		for asn := range w.Identified {
			if !seen[asn.String()] {
				t.Errorf("censor %v identified in window %d missing from convergence", asn, w.Index)
			}
		}
	}
}
