package churntomo

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"churntomo/internal/topology"
)

// matrixConfig is a deliberately tiny pipeline so a whole matrix stays
// test-budget fast.
func matrixConfig() Config {
	cfg := SmallConfig()
	cfg.Days = 8
	cfg.Vantages = 8
	cfg.URLs = 10
	cfg.URLsPerDay = 4
	return cfg
}

func TestSeedSweep(t *testing.T) {
	base := matrixConfig()
	base.Seed = 40
	cfgs := SeedSweep(base, 4)
	if len(cfgs) != 4 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	for i, cfg := range cfgs {
		if cfg.Seed != 40+uint64(i) {
			t.Errorf("config %d seed %d", i, cfg.Seed)
		}
		if cfg.Vantages != base.Vantages || cfg.Days != base.Days {
			t.Errorf("config %d lost base dimensions", i)
		}
	}
}

func TestScaleSweep(t *testing.T) {
	base := matrixConfig()
	cfgs := ScaleSweep(base, []float64{0.5, 1, 2})
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	if cfgs[0].Vantages != base.Vantages/2 || cfgs[2].Vantages != base.Vantages*2 {
		t.Errorf("vantage scaling wrong: %d, %d", cfgs[0].Vantages, cfgs[2].Vantages)
	}
	if cfgs[1].URLs != base.URLs || cfgs[1].Days != base.Days {
		t.Errorf("unit factor changed dimensions")
	}
	tiny := ScaleSweep(base, []float64{0.0001})
	if tiny[0].Vantages < 2 || tiny[0].URLs < 2 || tiny[0].Days < 1 {
		t.Errorf("scale floor not applied: %+v", tiny[0])
	}
	for _, cfg := range cfgs {
		if cfg.Seed != base.Seed {
			t.Errorf("scale sweep changed the seed")
		}
	}
}

func TestRunMatrixAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix of pipelines in -short mode")
	}
	var progress bytes.Buffer
	r := &Runner{Workers: 3, Progress: &progress}
	results := r.RunMatrix(SeedSweep(matrixConfig(), 3))
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Index != i {
			t.Errorf("result %d has index %d", i, res.Index)
		}
		if res.Err != nil {
			t.Fatalf("cell %d failed: %v", i, res.Err)
		}
		if res.Pipeline == nil || len(res.Pipeline.Outcomes) == 0 {
			t.Fatalf("cell %d produced no outcomes", i)
		}
	}
	if got := strings.Count(progress.String(), "matrix cell"); got != 3 {
		t.Errorf("progress reported %d cells, want 3:\n%s", got, progress.String())
	}

	agg := AggregateMatrix(results)
	if agg.Runs != 3 || agg.Failed != 0 {
		t.Fatalf("aggregate runs=%d failed=%d", agg.Runs, agg.Failed)
	}
	wantCNFs := 0
	for _, res := range results {
		wantCNFs += len(res.Pipeline.Outcomes)
	}
	if agg.TotalCNFs != wantCNFs {
		t.Errorf("TotalCNFs %d, want %d", agg.TotalCNFs, wantCNFs)
	}
	if agg.UniqueCNFs == 0 || agg.UniqueCNFs > agg.TotalCNFs {
		t.Errorf("UniqueCNFs %d implausible (total %d)", agg.UniqueCNFs, agg.TotalCNFs)
	}
	perRun := map[topology.ASN]int{}
	for _, res := range results {
		for asn := range res.Pipeline.Identified {
			perRun[asn]++
		}
	}
	if !reflect.DeepEqual(censusRuns(agg), perRun) {
		t.Errorf("aggregated censor runs %v disagree with per-cell union %v", censusRuns(agg), perRun)
	}
	for _, asn := range agg.StableCensors() {
		if agg.Censors[asn].Runs != agg.Runs {
			t.Errorf("stable censor %v seen in only %d/%d runs", asn, agg.Censors[asn].Runs, agg.Runs)
		}
	}
	ranked := agg.RankedCensors()
	if len(ranked) != len(agg.Censors) {
		t.Fatalf("ranked %d censors of %d", len(ranked), len(agg.Censors))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Runs > ranked[i-1].Runs {
			t.Errorf("ranking not descending at %d", i)
		}
	}
}

func censusRuns(a *MatrixAggregate) map[topology.ASN]int {
	out := map[topology.ASN]int{}
	for asn, c := range a.Censors {
		out[asn] = c.Runs
	}
	return out
}

func TestRunMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix of pipelines in -short mode")
	}
	cfgs := SeedSweep(matrixConfig(), 2)
	a := AggregateMatrix((&Runner{Workers: 2}).RunMatrix(cfgs))
	b := AggregateMatrix((&Runner{Workers: 1}).RunMatrix(cfgs))
	if !reflect.DeepEqual(censusRuns(a), censusRuns(b)) {
		t.Fatalf("matrix aggregate differs across runs:\n%v\n%v", censusRuns(a), censusRuns(b))
	}
	if a.LeakASes != b.LeakASes || a.LeakCountries != b.LeakCountries {
		t.Fatalf("leakage summaries differ: (%d,%d) vs (%d,%d)",
			a.LeakASes, a.LeakCountries, b.LeakASes, b.LeakCountries)
	}
}

func TestRunMatrixSurvivesFailedCell(t *testing.T) {
	good := matrixConfig()
	bad := matrixConfig()
	bad.ASes = 20
	bad.Vantages = 1000 // impossible: more vantages than stubs
	results := (&Runner{Workers: 2}).RunMatrix([]Config{bad, good})
	if results[0].Err == nil {
		t.Fatal("broken config did not fail")
	}
	if results[1].Err != nil {
		t.Fatalf("good cell failed: %v", results[1].Err)
	}
	agg := AggregateMatrix(results)
	if agg.Runs != 1 || agg.Failed != 1 {
		t.Fatalf("aggregate runs=%d failed=%d, want 1/1", agg.Runs, agg.Failed)
	}
}
