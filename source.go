package churntomo

// The measurement-source API: the public boundary between *where
// measurements come from* and *how they are localized*. A Source supplies
// day-ordered batches of exported Measurement records plus the world
// metadata (vantages, targets, period, AS table) the solvers and reports
// need. ScenarioSource — the default — synthesizes them from a scenario
// world exactly as the fused pipeline always has; FileSource replays a
// dataset exported by Result.Export (the versioned on-disk format of
// internal/dataset); external ingesters implement Source to point the
// tomography at real data without touching the synthesis stack.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"churntomo/internal/censor"
	"churntomo/internal/dataset"
	"churntomo/internal/iclab"
	"churntomo/internal/topology"
	"churntomo/internal/traceroute"
	"churntomo/internal/webcat"
)

// Category classifies a test-list URL's content; its String form is the
// display name ("News", "Politics", ...).
type Category = webcat.Category

// PathFail classifies why a measurement yielded no usable AS path — the
// paper's four record-elimination rules. A Measurement with Fail !=
// PathOK never contributes a clause.
type PathFail = traceroute.FailReason

// The path-inference outcomes, re-exported for external consumers.
const (
	PathOK             PathFail = traceroute.OK
	PathTraceFailed    PathFail = traceroute.ErrTraceFailed    // rule 2: traceroute error
	PathNoMapping      PathFail = traceroute.ErrNoMapping      // rule 1: no IP mappable
	PathSilentBoundary PathFail = traceroute.ErrSilentBoundary // rule 3: silent hop between differing ASes
	PathsDisagree      PathFail = traceroute.ErrDisagree       // rule 4: the three traceroutes disagree
)

// TruthAct records, for validation only, one censor that acted on a
// measurement and with which techniques. Ingested real-world data leaves
// it empty — the paper had no ground truth either.
type TruthAct struct {
	ASN   ASN
	Kinds AnomalySet
}

// Measurement is one exported measurement record — the §3.1 tuple
// (vantage AS, URL, anomaly outcomes, inferred AS path, timestamp) in
// public form, mirroring the internal platform record minus the raw
// packet captures and traceroutes, which are consumed during generation.
// Record IDs are not part of the type: they are assigned by the merge
// order when an Experiment ingests the batches.
type Measurement struct {
	Vantage        ASN
	VantageCountry string
	TargetASN      ASN
	// TargetIdx indexes the source's Targets table, or -1 when unknown.
	TargetIdx int32
	URL       string
	Category  Category
	At        time.Time

	// Anomalies holds the detector outcomes (never ground truth).
	Anomalies AnomalySet
	// ASPath is the inferred AS-level path; nil when Fail != PathOK.
	ASPath []ASN
	Fail   PathFail

	// Ground truth, for validation only — the tomography must not read
	// these fields. Empty for ingested real-world data.
	TruePath    []ASN
	TrueActs    []TruthAct
	Unreachable bool
}

// VantageInfo is one vantage point's metadata.
type VantageInfo struct {
	ASN     ASN
	Country string
}

// TargetInfo is one test-list URL's metadata.
type TargetInfo struct {
	URL      string
	Category Category
	ASN      ASN
}

// ASInfo is one AS's metadata: what the report layer needs to name
// censors, resolve countries and split churn by destination class. Class
// is the CAIDA-style class name ("transit", "content", "enterprise"); ""
// is treated as "transit".
type ASInfo struct {
	ASN           ASN
	Name, Country string
	Class         string
}

// SourceInfo is the world metadata attached to a dataset: the measurement
// period and the tables the solvers and reports resolve records against.
type SourceInfo struct {
	// Label names the dataset's origin (a file path, "scenario <name>").
	Label string
	// Scenario names the world the measurements were taken in — a preset
	// name for synthesized data, a free-form label for ingested data.
	Scenario string
	// Seed is the master seed of a synthetic world, 0 for ingested data.
	Seed uint64
	// Start anchors the measurement period; Days is its length.
	Start time.Time
	Days  int

	Vantages []VantageInfo
	Targets  []TargetInfo
	// ASes is the optional AS metadata table; without it censors are
	// reported by bare ASN and churn-by-class is empty.
	ASes []ASInfo
	// TruthCensors lists the ground-truth censoring ASes of a synthetic
	// world; empty for ingested data (validation is then unavailable).
	TruthCensors []ASN
}

// Dataset is an in-memory measurement dataset: the world metadata plus
// the records in day-ordered batches (Days[d] holds day d's measurements;
// empty days are kept so replay timing is preserved). A *Dataset is
// itself a Source, so a programmatically built dataset can be analyzed
// directly: New(WithSource(ds)).
type Dataset struct {
	Info SourceInfo
	Days [][]Measurement
}

// Source supplies measurements to an Experiment. Open produces the
// dataset one cell analyzes; cfg is the cell's configuration, which
// synthesizing sources use to size and seed the world and replaying
// sources may ignore. Open must be safe for concurrent calls (matrix
// cells run in parallel) and should honor ctx cancellation.
type Source interface {
	// Label names the source in events and errors.
	Label() string
	// Open loads or generates the dataset for one cell configuration.
	Open(ctx context.Context, cfg Config) (*Dataset, error)
}

// cellSource is the internal fast path: built-in sources hand the cell
// runner an internal Pipeline (keeping the full substrate for reports)
// and raw day shards, skipping the exported-record conversion. External
// Source implementations go through Open and adoptFile instead.
type cellSource interface {
	openCell(ctx context.Context, e *Experiment, cfg Config, emit func(Event)) (*Pipeline, [][]iclab.Record, error)
}

// ScenarioSource synthesizes measurements from a scenario world — the
// default source, byte-identical to the pre-Source fused pipeline. The
// world is decided by cfg.Scenario (or the experiment's
// WithScenario/WithScenarioSpec selection) and sized by the usual Config
// dimensions.
type ScenarioSource struct {
	// Spec, when non-nil, overrides the preset-name resolution with an
	// explicitly composed spec (see WithScenarioSpec).
	Spec *ScenarioSpec
}

// defaultSource is the source used when no WithSource option is given.
var defaultSource = &ScenarioSource{}

// Label implements Source.
func (s *ScenarioSource) Label() string {
	if s.Spec != nil {
		return "scenario " + s.Spec.Name
	}
	return "scenario"
}

// openCell implements the internal fast path: exactly the fused
// build-then-measure pipeline, substrate events included.
func (s *ScenarioSource) openCell(ctx context.Context, e *Experiment, cfg Config, emit func(Event)) (*Pipeline, [][]iclab.Record, error) {
	spec, err := s.spec(e, cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.Scenario = spec.Name // the world actually built is the one recorded
	p, err := prepareSpecCtx(ctx, cfg, spec, emit)
	if err != nil {
		return nil, nil, err
	}
	ev := newEvent(StageMeasure)
	ev.Stats.Seed = p.Config.Seed
	emit(ev)
	shards, err := iclab.RunByDayCtx(ctx, p.Scenario, p.Config.platformConfig())
	if err != nil {
		return nil, nil, err
	}
	return p, shards, nil
}

// spec resolves which world to build: the source's own override, the
// experiment's, or the cell config's named preset. The returned spec's
// name is the one results must record — a Spec override would otherwise
// leave cfg.Scenario naming a world that was never built.
func (s *ScenarioSource) spec(e *Experiment, cfg Config) (ScenarioSpec, error) {
	if s.Spec != nil {
		spec := *s.Spec
		if spec.Name == "" {
			spec.Name = "custom" // matches WithScenarioSpec's default
		}
		return spec, nil
	}
	if e != nil {
		return e.cellSpec(cfg)
	}
	return resolveScenario(cfg.Scenario)
}

// Open implements the public Source contract: build the world, run the
// measurement schedule, and return the dataset in exported form. The
// batches are the same records an Experiment using this source analyzes.
func (s *ScenarioSource) Open(ctx context.Context, cfg Config) (*Dataset, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.Progress = nil
	spec, err := s.spec(nil, cfg)
	if err != nil {
		return nil, err
	}
	cfg.Scenario = spec.Name
	p, err := prepareSpecCtx(ctx, cfg, spec, func(Event) {})
	if err != nil {
		return nil, err
	}
	shards, err := iclab.RunByDayCtx(ctx, p.Scenario, p.Config.platformConfig())
	if err != nil {
		return nil, err
	}
	d := fileToPublic(&dataset.File{Header: headerOf(p), Days: shards})
	d.Info.Label = "scenario " + p.Config.Scenario
	return d, nil
}

// FileSource replays a dataset file written by Result.Export (or genlab
// -export): the versioned, gzipped JSONL format of internal/dataset. The
// file's day batches feed every execution mode — batch localization,
// streaming replay through the incremental engine, matrix cells — without
// regenerating the world. The file is decoded once per FileSource and
// cached, so a matrix pays the gzip+JSON cost a single time; a FileSource
// therefore snapshots the file as of its first use.
type FileSource struct {
	Path string

	once   sync.Once
	cached *dataset.File
	err    error
}

// Label implements Source.
func (s *FileSource) Label() string { return s.Path }

// read decodes the file on first use and serves the cache afterwards.
func (s *FileSource) read() (*dataset.File, error) {
	s.once.Do(func() {
		s.cached, s.err = dataset.ReadFile(s.Path)
	})
	return s.cached, s.err
}

// Open implements Source by decoding the file into exported form.
func (s *FileSource) Open(ctx context.Context, cfg Config) (*Dataset, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	f, err := s.read()
	if err != nil {
		return nil, err
	}
	d := fileToPublic(f)
	d.Info.Label = s.Path
	return d, nil
}

// openCell implements the internal fast path: decode once and adopt the
// shards directly, skipping the exported-record round trip. Each cell
// gets its own copy of the record batches — the streaming engine stamps
// record IDs in place, so sharing the cached slices across concurrent
// runs would race.
func (s *FileSource) openCell(ctx context.Context, e *Experiment, cfg Config, emit func(Event)) (*Pipeline, [][]iclab.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ev := newEvent(StageLoad)
	ev.Stats.Seed = cfg.Seed
	ev.Source = s.Path
	emit(ev)
	f, err := s.read()
	if err != nil {
		return nil, nil, fmt.Errorf("churntomo: %w", err)
	}
	p, days, err := adoptFile(cfg, f)
	if err != nil {
		return nil, nil, err
	}
	return p, copyDays(days), nil
}

// copyDays clones the record batches (the records themselves; deep fields
// stay shared read-only).
func copyDays(days [][]iclab.Record) [][]iclab.Record {
	out := make([][]iclab.Record, len(days))
	for d, recs := range days {
		if recs != nil {
			out[d] = append([]iclab.Record(nil), recs...)
		}
	}
	return out
}

// Label implements Source for in-memory datasets.
func (d *Dataset) Label() string {
	if d.Info.Label != "" {
		return d.Info.Label
	}
	return "in-memory dataset"
}

// Open implements Source: the dataset is its own data.
func (d *Dataset) Open(context.Context, Config) (*Dataset, error) { return d, nil }

// WriteFile encodes the dataset to path in the versioned on-disk format
// (conventionally named *.jsonl.gz) — the writer side of FileSource, for
// ingesters that build datasets programmatically.
func (d *Dataset) WriteFile(path string) error {
	f, err := publicToFile(d)
	if err != nil {
		return err
	}
	return dataset.WriteFile(path, f)
}

// LoadDataset decodes a dataset file into memory — the inspection
// counterpart of FileSource, for tooling that wants the records
// themselves rather than an analysis.
func LoadDataset(path string) (*Dataset, error) {
	f, err := dataset.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := fileToPublic(f)
	d.Info.Label = path
	return d, nil
}

// Export writes the run's measured dataset to path in the versioned
// on-disk format, ready for FileSource / churnlab -input to analyze
// without regenerating the world. It applies to single-cell runs (batch
// or streaming); a matrix run has no single dataset to export.
func (r *Result) Export(path string) error {
	f, err := r.exportFile()
	if err != nil {
		return err
	}
	return dataset.WriteFile(path, f)
}

// Dataset returns the run's measured dataset in exported form — what
// Export writes, without the file. The same single-cell restriction
// applies.
func (r *Result) Dataset() (*Dataset, error) {
	f, err := r.exportFile()
	if err != nil {
		return nil, err
	}
	d := fileToPublic(f)
	d.Info.Label = "result " + r.Config.Scenario
	return d, nil
}

// exportFile snapshots the single-cell pipeline as a dataset file.
func (r *Result) exportFile() (*dataset.File, error) {
	if r.Mode == ModeMatrix {
		return nil, fmt.Errorf("churntomo: Export: a matrix run has no single dataset; export per-cell runs instead")
	}
	if len(r.Pipelines) != 1 || r.Pipelines[0] == nil || r.Pipelines[0].Dataset == nil {
		return nil, fmt.Errorf("churntomo: Export: result carries no measured dataset")
	}
	return pipelineToFile(r.Pipelines[0])
}

// Export writes the pipeline's measured dataset to path in the versioned
// on-disk format — the Pipeline-level counterpart of Result.Export, for
// callers (genlab) that measure without localizing. Requires a measured
// Dataset.
func (p *Pipeline) Export(path string) error {
	if p.Dataset == nil {
		return fmt.Errorf("churntomo: Export before Measure: pipeline carries no dataset")
	}
	f, err := pipelineToFile(p)
	if err != nil {
		return err
	}
	return dataset.WriteFile(path, f)
}

// headerOf derives the dataset header from a prepared pipeline's world.
func headerOf(p *Pipeline) dataset.Header {
	h := dataset.Header{
		Scenario: p.Config.Scenario,
		Seed:     p.Config.Seed,
		Start:    p.Scenario.Start.UTC(),
		Days:     p.Scenario.Days(),
	}
	for _, v := range p.Scenario.Vantages {
		h.Vantages = append(h.Vantages, dataset.Vantage{ASN: uint32(v.ASN), Country: v.Country})
	}
	for _, t := range p.Scenario.Targets {
		h.Targets = append(h.Targets, dataset.Target{URL: t.URL.Host, Category: uint8(t.URL.Category), ASN: uint32(t.ASN)})
	}
	if p.Graph != nil {
		for i := range p.Graph.ASes {
			as := &p.Graph.ASes[i]
			h.ASes = append(h.ASes, dataset.ASMeta{
				ASN: uint32(as.ASN), Name: as.Name, Country: as.Country, Class: as.Class.String(),
			})
		}
	}
	if p.Censors != nil {
		for _, asn := range p.Censors.ASNs() {
			h.TruthCensors = append(h.TruthCensors, uint32(asn))
		}
	}
	return h
}

// pipelineToFile snapshots a measured pipeline, splitting the merged
// record sequence back into the day batches a replay consumes.
func pipelineToFile(p *Pipeline) (*dataset.File, error) {
	h := headerOf(p)
	f := &dataset.File{Header: h, Days: make([][]iclab.Record, h.Days)}
	start := p.Scenario.Start.UTC()
	for i := range p.Dataset.Records {
		rec := p.Dataset.Records[i]
		day := int(rec.At.UTC().Sub(start) / (24 * time.Hour))
		if day < 0 || day >= h.Days {
			return nil, fmt.Errorf("churntomo: Export: record %d at %v falls outside the %d-day period starting %v",
				rec.ID, rec.At, h.Days, start)
		}
		f.Days[day] = append(f.Days[day], rec)
	}
	return f, nil
}

// classByName parses the CAIDA-style class names the AS table carries.
var classByName = map[string]topology.Class{
	"":           topology.ClassTransit,
	"transit":    topology.ClassTransit,
	"content":    topology.ClassContent,
	"enterprise": topology.ClassEnterprise,
}

// adoptFile reconstructs the skeleton pipeline a decoded dataset runs
// under: a lookup-only metadata graph, a ground-truth registry, and a
// scenario shell carrying the period and the vantage/target tables —
// everything the solve, churn, leakage and report stages read, with no
// routing substrate (none is needed after measurement).
func adoptFile(cfg Config, f *dataset.File) (*Pipeline, [][]iclab.Record, error) {
	h := &f.Header
	if h.Scenario != "" {
		cfg.Scenario = h.Scenario
	}
	if h.Seed != 0 {
		cfg.Seed = h.Seed
	}
	if h.Days > 0 {
		cfg.Days = h.Days
	} else {
		cfg.Days = len(f.Days)
	}
	if !h.Start.IsZero() {
		cfg.Start = h.Start.UTC()
	}
	if n := len(h.Vantages); n > 0 {
		cfg.Vantages = n
	}
	if n := len(h.Targets); n > 0 {
		cfg.URLs = n
	}
	countries := map[string]bool{}
	ases := make([]topology.AS, 0, len(h.ASes))
	for _, m := range h.ASes {
		class, ok := classByName[m.Class]
		if !ok {
			return nil, nil, fmt.Errorf("churntomo: dataset AS%d carries unknown class %q", m.ASN, m.Class)
		}
		as := topology.AS{ASN: ASN(m.ASN), Name: m.Name, Country: m.Country, Class: class}
		if c, ok := topology.CountryByCode(m.Country); ok {
			as.Region = c.Region
		}
		ases = append(ases, as)
		countries[m.Country] = true
	}
	if len(h.ASes) > 0 {
		cfg.ASes = len(h.ASes)
		cfg.Countries = len(countries)
	}
	cfg.fillDefaults()

	g := topology.MetadataGraph(ases)
	reg := censor.NewRegistry()
	for _, asn := range h.TruthCensors {
		reg.Add(censor.NewPolicy(ASN(asn), g.CountryOf(ASN(asn)), censor.Behavior{}, 0, 0))
	}
	s := &iclab.Scenario{
		Graph:   g,
		Censors: reg,
		Start:   cfg.Start,
		End:     cfg.Start.AddDate(0, 0, cfg.Days),
		Seed:    h.Seed,
	}
	for _, v := range h.Vantages {
		s.Vantages = append(s.Vantages, iclab.Vantage{ASN: ASN(v.ASN), Country: v.Country})
	}
	for _, t := range h.Targets {
		if int(t.Category) >= int(webcat.NumCategories) {
			return nil, nil, fmt.Errorf("churntomo: dataset target %q carries unknown category code %d", t.URL, t.Category)
		}
		s.Targets = append(s.Targets, iclab.Target{
			URL: webcat.URL{Host: t.URL, Category: Category(t.Category)}, ASN: ASN(t.ASN),
		})
	}
	p := &Pipeline{Config: cfg, Graph: g, Censors: reg, Scenario: s}
	return p, f.Days, nil
}

// fileToPublic converts a decoded file into the exported Dataset shape.
func fileToPublic(f *dataset.File) *Dataset {
	h := &f.Header
	d := &Dataset{Info: SourceInfo{
		Scenario: h.Scenario,
		Seed:     h.Seed,
		Start:    h.Start.UTC(),
		Days:     h.Days,
	}}
	for _, v := range h.Vantages {
		d.Info.Vantages = append(d.Info.Vantages, VantageInfo{ASN: ASN(v.ASN), Country: v.Country})
	}
	for _, t := range h.Targets {
		d.Info.Targets = append(d.Info.Targets, TargetInfo{URL: t.URL, Category: Category(t.Category), ASN: ASN(t.ASN)})
	}
	for _, m := range h.ASes {
		d.Info.ASes = append(d.Info.ASes, ASInfo{ASN: ASN(m.ASN), Name: m.Name, Country: m.Country, Class: m.Class})
	}
	for _, asn := range h.TruthCensors {
		d.Info.TruthCensors = append(d.Info.TruthCensors, ASN(asn))
	}
	d.Days = make([][]Measurement, len(f.Days))
	for day, recs := range f.Days {
		if len(recs) == 0 {
			continue
		}
		batch := make([]Measurement, len(recs))
		for i := range recs {
			batch[i] = measurementOf(&recs[i])
		}
		d.Days[day] = batch
	}
	return d
}

// measurementOf converts one internal record to exported form.
func measurementOf(r *iclab.Record) Measurement {
	m := Measurement{
		Vantage:        r.Vantage,
		VantageCountry: r.VantageCountry,
		TargetASN:      r.TargetASN,
		TargetIdx:      r.TargetIdx,
		URL:            r.URL,
		Category:       r.Category,
		At:             r.At,
		Anomalies:      r.Anomalies,
		ASPath:         append([]ASN(nil), r.ASPath...),
		Fail:           r.Fail,
		TruePath:       append([]ASN(nil), r.TruePath...),
		Unreachable:    r.Unreachable,
	}
	for _, act := range r.TrueActs {
		m.TrueActs = append(m.TrueActs, TruthAct{ASN: act.ASN, Kinds: act.Kinds})
	}
	return m
}

// publicToFile converts an exported Dataset back to the internal file
// shape — the adapter every external Source implementation feeds.
func publicToFile(d *Dataset) (*dataset.File, error) {
	if d == nil {
		return nil, fmt.Errorf("churntomo: nil Dataset")
	}
	info := &d.Info
	days := info.Days
	if days == 0 {
		days = len(d.Days)
	}
	if days < len(d.Days) {
		return nil, fmt.Errorf("churntomo: dataset declares %d days but carries %d day batches", days, len(d.Days))
	}
	h := dataset.Header{
		Scenario: info.Scenario,
		Seed:     info.Seed,
		Start:    info.Start.UTC(),
		Days:     days,
	}
	for _, v := range info.Vantages {
		h.Vantages = append(h.Vantages, dataset.Vantage{ASN: uint32(v.ASN), Country: v.Country})
	}
	for _, t := range info.Targets {
		if int(t.Category) >= int(webcat.NumCategories) {
			return nil, fmt.Errorf("churntomo: dataset target %q carries unknown category %d", t.URL, t.Category)
		}
		h.Targets = append(h.Targets, dataset.Target{URL: t.URL, Category: uint8(t.Category), ASN: uint32(t.ASN)})
	}
	for _, m := range info.ASes {
		if _, ok := classByName[m.Class]; !ok {
			return nil, fmt.Errorf("churntomo: dataset AS%d carries unknown class %q", m.ASN, m.Class)
		}
		h.ASes = append(h.ASes, dataset.ASMeta{ASN: uint32(m.ASN), Name: m.Name, Country: m.Country, Class: m.Class})
	}
	for _, asn := range info.TruthCensors {
		h.TruthCensors = append(h.TruthCensors, uint32(asn))
	}
	f := &dataset.File{Header: h, Days: make([][]iclab.Record, days)}
	for day, batch := range d.Days {
		if len(batch) == 0 {
			continue
		}
		recs := make([]iclab.Record, len(batch))
		for i := range batch {
			recs[i] = recordOf(&batch[i])
		}
		f.Days[day] = recs
	}
	return f, nil
}

// recordOf converts one exported measurement to the internal record.
func recordOf(m *Measurement) iclab.Record {
	r := iclab.Record{
		Vantage:        m.Vantage,
		VantageCountry: m.VantageCountry,
		TargetASN:      m.TargetASN,
		TargetIdx:      m.TargetIdx,
		URL:            m.URL,
		Category:       m.Category,
		At:             m.At,
		Anomalies:      m.Anomalies,
		ASPath:         append([]ASN(nil), m.ASPath...),
		Fail:           m.Fail,
		TruePath:       append([]ASN(nil), m.TruePath...),
		Unreachable:    m.Unreachable,
	}
	for _, act := range m.TrueActs {
		r.TrueActs = append(r.TrueActs, iclab.GroundTruthAct{ASN: act.ASN, Kinds: act.Kinds})
	}
	return r
}
