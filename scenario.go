package churntomo

// The public face of the pluggable scenario framework. Worlds are built by
// composing four provider axes — topology, churn process, censor regime,
// platform profile — registered behind named presets; experiments select
// one with WithScenario(name) or compose their own with WithScenarioSpec.
// The internal/scenario package owns the interfaces and the registry; this
// file re-exports what external consumers need so they never import
// churntomo/internal (enforced by `make api-check`).

import "churntomo/internal/scenario"

// ScenarioBaseline names the default preset: the paper's original
// pipeline, byte for byte.
const ScenarioBaseline = scenario.DefaultName

// ScenarioSpec composes one world generator from the four provider axes
// (topology, churn, censors, platform). A nil axis means the
// paper-baseline provider, so overriding a single axis is a one-liner.
// Pass a spec to WithScenarioSpec, or fetch a registered preset's spec
// with ScenarioByName and swap axes before running.
type ScenarioSpec = scenario.Spec

// ScenarioInfo describes one registered preset for catalogs: its identity,
// what it models, and the four resolved provider names.
type ScenarioInfo struct {
	// Name keys the registry (churnlab -scenario <name>).
	Name string
	// Description is a one-line summary of the modeled world.
	Description string
	// Echoes names the paper section or related work the preset models.
	Echoes string
	// Topology, Churn, Censors and Platform are the resolved provider
	// names on each axis ("paper" = the baseline implementation).
	Topology, Churn, Censors, Platform string
}

// Scenarios lists every registered preset in catalog order
// (paper-baseline first).
func Scenarios() []ScenarioInfo {
	names := scenario.Names()
	out := make([]ScenarioInfo, 0, len(names))
	for _, name := range names {
		spec, ok := scenario.Preset(name)
		if !ok {
			continue
		}
		c := spec.Components()
		out = append(out, ScenarioInfo{
			Name: spec.Name, Description: spec.Description, Echoes: spec.Echoes,
			Topology: c[0], Churn: c[1], Censors: c[2], Platform: c[3],
		})
	}
	return out
}

// ScenarioByName returns the named preset's spec, for running as-is via
// WithScenarioSpec or as a base to swap axes on.
func ScenarioByName(name string) (ScenarioSpec, error) {
	return resolveScenario(name)
}

// RegisterScenario adds a preset to the registry, making it addressable by
// WithScenario and visible to Scenarios (and to churnlab/genlab). Names
// must be unique; registering over a taken name errors.
func RegisterScenario(spec ScenarioSpec) error {
	return scenario.Register(spec)
}
