package churntomo

// Tests for the pluggable scenario framework's public surface: the preset
// catalog, end-to-end smoke runs of every preset, the determinism
// regression (same preset + same seed twice = byte-identical identified
// censors), streaming/batch agreement under a non-default preset, and the
// paper-baseline equivalence with a scenario-less run.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// requiredPresets is the catalog the issue and README promise.
var requiredPresets = []string{
	"paper-baseline", "national-firewall", "transit-leakage",
	"bgp-storm", "regional-outage", "policy-flap", "path-diverse",
	"routing-shift", "ecmp-multipath", "chokepoint",
}

// smokeConfig is the smallest configuration that still runs the whole
// pipeline: every preset must survive it.
func smokeConfig() Config {
	return Config{
		Seed: 1, ASes: 80, Countries: 12,
		Vantages: 8, URLs: 10, Days: 8, URLsPerDay: 4, RepeatsPerDay: 1,
	}
}

// censorFingerprint serializes an identification map into a canonical byte
// string, so "byte-identical" comparisons are literal.
func censorFingerprint(m map[ASN]*IdentifiedCensor) string {
	asns := make([]ASN, 0, len(m))
	for a := range m {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	var b strings.Builder
	for _, a := range asns {
		c := m[a]
		urls := make([]string, 0, len(c.URLs))
		for u := range c.URLs {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		fmt.Fprintf(&b, "%v kinds=%v cnfs=%d urls=%v\n", a, c.Kinds, c.CNFs, urls)
	}
	return b.String()
}

func TestScenarioCatalog(t *testing.T) {
	infos := Scenarios()
	if len(infos) < 6 {
		t.Fatalf("only %d presets registered, want >= 6", len(infos))
	}
	byName := map[string]ScenarioInfo{}
	for _, info := range infos {
		byName[info.Name] = info
		if info.Description == "" || info.Echoes == "" {
			t.Errorf("preset %q lacks catalog text: %+v", info.Name, info)
		}
		for _, axis := range []string{info.Topology, info.Churn, info.Censors, info.Platform} {
			if axis == "" {
				t.Errorf("preset %q has an unnamed provider axis: %+v", info.Name, info)
			}
		}
	}
	for _, name := range requiredPresets {
		if _, ok := byName[name]; !ok {
			t.Errorf("required preset %q missing from catalog", name)
		}
	}
	if infos[0].Name != ScenarioBaseline {
		t.Errorf("catalog starts with %q, want %q", infos[0].Name, ScenarioBaseline)
	}
	if _, err := ScenarioByName("no-such-world"); err == nil {
		t.Error("unknown preset name resolved")
	}
}

func TestScenarioPresetsSmoke(t *testing.T) {
	for _, name := range requiredPresets {
		name := name
		t.Run(name, func(t *testing.T) {
			exp, err := New(WithConfig(smokeConfig()), WithScenario(name))
			if err != nil {
				t.Fatal(err)
			}
			res, err := exp.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Summary.Scenario != name {
				t.Errorf("Summary.Scenario = %q, want %q", res.Summary.Scenario, name)
			}
			if res.Summary.Measurements == 0 {
				t.Error("no measurements recorded")
			}
			if res.Summary.CNFs == 0 {
				t.Error("no CNFs built")
			}
		})
	}
}

// TestScenarioDeterminism pins the repo's core guarantee for a non-default
// preset: same preset + same seed, run twice, yields byte-identical
// IdentifiedCensor maps.
func TestScenarioDeterminism(t *testing.T) {
	run := func() string {
		exp, err := New(WithConfig(smokeConfig()), WithScenario("bgp-storm"), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return censorFingerprint(res.Identified)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same preset + seed not byte-identical:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// TestScenarioStreamingMatchesBatch pins mode-independence under a
// non-default preset: a cumulative streaming replay's final window equals
// the batch identifications byte for byte.
func TestScenarioStreamingMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("two end-to-end runs in -short mode")
	}
	batch, err := New(WithConfig(smokeConfig()), WithScenario("regional-outage"))
	if err != nil {
		t.Fatal(err)
	}
	bres, err := batch.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	streamExp, err := New(WithConfig(smokeConfig()), WithScenario("regional-outage"), WithWindow(0))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := streamExp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := censorFingerprint(sres.Identified), censorFingerprint(bres.Identified); got != want {
		t.Fatalf("streaming final window differs from batch:\n--- stream ---\n%s--- batch ---\n%s", got, want)
	}
	if sres.Summary.Scenario != bres.Summary.Scenario {
		t.Errorf("modes disagree on scenario: %q vs %q", sres.Summary.Scenario, bres.Summary.Scenario)
	}
}

// TestScenarioBaselineMatchesDefault pins the refactor's compatibility
// promise: selecting paper-baseline explicitly is byte-identical to not
// mentioning scenarios at all.
func TestScenarioBaselineMatchesDefault(t *testing.T) {
	implicit, err := New(WithConfig(smokeConfig()))
	if err != nil {
		t.Fatal(err)
	}
	ires, err := implicit.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := New(WithConfig(smokeConfig()), WithScenario(ScenarioBaseline))
	if err != nil {
		t.Fatal(err)
	}
	eres, err := explicit.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := censorFingerprint(eres.Identified), censorFingerprint(ires.Identified); got != want {
		t.Fatalf("explicit paper-baseline differs from default:\n--- explicit ---\n%s--- default ---\n%s", got, want)
	}
	if ires.Summary.Scenario != ScenarioBaseline {
		t.Errorf("default run recorded scenario %q, want %q", ires.Summary.Scenario, ScenarioBaseline)
	}
}

// TestScenarioSpecComposition runs an ad-hoc composed spec: a preset
// fetched by name with one axis swapped, the framework's whole point.
func TestScenarioSpecComposition(t *testing.T) {
	spec, err := ScenarioByName("bgp-storm")
	if err != nil {
		t.Fatal(err)
	}
	storm, err := ScenarioByName("national-firewall")
	if err != nil {
		t.Fatal(err)
	}
	spec.Name = "firewall-under-storm"
	spec.Censors = storm.Censors
	spec.Platform = storm.Platform

	exp, err := New(WithConfig(smokeConfig()), WithScenarioSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Scenario != "firewall-under-storm" {
		t.Errorf("Summary.Scenario = %q, want the composed spec's name", res.Summary.Scenario)
	}
}

func TestWithScenarioValidation(t *testing.T) {
	if _, err := New(WithScenario("no-such-world")); err == nil {
		t.Error("unknown scenario accepted by New")
	}
	if _, err := New(WithScenario("")); err == nil {
		t.Error("empty scenario name accepted by New")
	}
	cfg := smokeConfig()
	cfg.Scenario = "no-such-world"
	if _, err := New(WithConfig(cfg)); err == nil {
		t.Error("unknown Config.Scenario accepted by New")
	}
	bad := smokeConfig()
	bad.Scenario = "no-such-world"
	if _, err := New(WithConfigs(smokeConfig(), bad)); err == nil {
		t.Error("unknown scenario in a matrix cell accepted by New")
	}
	if _, err := Run(Config{Scenario: "no-such-world"}); err == nil {
		t.Error("unknown scenario accepted by deprecated Run")
	}
}

// TestScenarioMatrixCells runs a seed sweep under a preset and checks the
// scenario name survives into every cell config.
func TestScenarioMatrixCells(t *testing.T) {
	exp, err := New(WithConfig(smokeConfig()), WithScenario("path-diverse"), WithSeedSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix == nil || res.Matrix.Failed != 0 {
		t.Fatalf("matrix run failed: %+v", res.Matrix)
	}
	for _, cell := range res.Cells {
		if cell.Config.Scenario != "path-diverse" {
			t.Errorf("cell %d lost the scenario: %q", cell.Index, cell.Config.Scenario)
		}
	}
}

// TestRegisterScenarioRoundTrip registers a custom preset and runs it by
// name through the same option as the built-ins.
func TestRegisterScenarioRoundTrip(t *testing.T) {
	spec := ScenarioSpec{
		Name:        "test-registered",
		Description: "registry round-trip fixture",
		Echoes:      "this test",
	}
	if err := RegisterScenario(spec); err != nil {
		t.Fatal(err)
	}
	if err := RegisterScenario(spec); err == nil {
		t.Error("duplicate registration accepted")
	}
	exp, err := New(WithConfig(smokeConfig()), WithScenario("test-registered"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Scenario != "test-registered" {
		t.Errorf("Summary.Scenario = %q", res.Summary.Scenario)
	}
	// The fixture leaves all axes nil, so its world must equal baseline's.
	base, err := New(WithConfig(smokeConfig()))
	if err != nil {
		t.Fatal(err)
	}
	bres, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if censorFingerprint(res.Identified) != censorFingerprint(bres.Identified) {
		t.Error("all-default registered spec differs from baseline")
	}
}

// TestScenarioSpecSurvivesWithConfig pins option-order robustness: a
// WithConfig after WithScenarioSpec replaces the base config, but the
// explicit spec still decides the world and stays recorded.
func TestScenarioSpecSurvivesWithConfig(t *testing.T) {
	spec, err := ScenarioByName("bgp-storm")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := New(WithScenarioSpec(spec), WithConfig(smokeConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Scenario != "bgp-storm" {
		t.Errorf("Summary.Scenario = %q, want the overriding spec's name", res.Summary.Scenario)
	}
}

// TestScenarioOptionOrderIndependence pins that scenario selection, named
// or composed, survives a later WithConfig: the last scenario option
// decides the world regardless of where WithConfig sits.
func TestScenarioOptionOrderIndependence(t *testing.T) {
	before, err := New(WithScenario("bgp-storm"), WithConfig(smokeConfig()))
	if err != nil {
		t.Fatal(err)
	}
	bres, err := before.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(WithConfig(smokeConfig()), WithScenario("bgp-storm"))
	if err != nil {
		t.Fatal(err)
	}
	ares, err := after.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bres.Summary.Scenario != "bgp-storm" {
		t.Errorf("WithScenario before WithConfig lost: Summary.Scenario = %q", bres.Summary.Scenario)
	}
	if got, want := censorFingerprint(bres.Identified), censorFingerprint(ares.Identified); got != want {
		t.Fatalf("option order changed the world:\n--- scenario-first ---\n%s--- config-first ---\n%s", got, want)
	}
}

// TestScenarioSpecConflictsWithCellNames pins that an explicit spec
// override refuses to silently shadow a cell's own scenario request.
func TestScenarioSpecConflictsWithCellNames(t *testing.T) {
	spec, err := ScenarioByName("bgp-storm")
	if err != nil {
		t.Fatal(err)
	}
	named := smokeConfig()
	named.Scenario = "transit-leakage"
	if _, err := New(WithConfigs(smokeConfig(), named), WithScenarioSpec(spec)); err == nil {
		t.Error("conflicting cell scenario accepted alongside WithScenarioSpec")
	}
	// Cells that name nothing (or the same scenario) are fine and get the
	// override recorded.
	same := smokeConfig()
	same.Scenario = "bgp-storm"
	exp, err := New(WithConfigs(smokeConfig(), same), WithScenarioSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range res.Cells {
		if cell.Config.Scenario != "bgp-storm" {
			t.Errorf("cell %d records scenario %q, want the override's name", cell.Index, cell.Config.Scenario)
		}
	}
}

// TestScenarioCellInheritance pins that WithScenario flows into WithConfigs
// cells that do not name their own scenario, while explicit cell names win.
func TestScenarioCellInheritance(t *testing.T) {
	named := smokeConfig()
	named.Scenario = "transit-leakage"
	exp, err := New(WithConfigs(smokeConfig(), named), WithScenario("path-diverse"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cells[0].Config.Scenario; got != "path-diverse" {
		t.Errorf("unnamed cell records %q, want the experiment-level preset", got)
	}
	if got := res.Cells[1].Config.Scenario; got != "transit-leakage" {
		t.Errorf("explicitly named cell records %q, want its own preset", got)
	}
}
